// Command ftrbench regenerates every table and figure of the paper at
// the configured scale, writing one text file (and optionally CSV) per
// experiment into an output directory, plus an index summarizing the
// run. This is the one-shot "reproduce the evaluation section" tool.
//
// Usage:
//
//	ftrbench [-out results] [-n 16384] [-trials 5] [-msgs 100] [-seed 1] [-csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ftrbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out    = fs.String("out", "results", "output directory")
		n      = fs.Int("n", 0, "network size override (0 = per-experiment default)")
		trials = fs.Int("trials", 0, "trials override")
		msgs   = fs.Int("msgs", 0, "messages override")
		seed   = fs.Uint64("seed", 0, "rng seed (0 = 1)")
		csv    = fs.Bool("csv", false, "also write CSV files")
		only   = fs.String("only", "", "comma-separated experiment ids (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "ftrbench:", err)
		return 1
	}
	ids := experiments.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	params := experiments.Params{N: *n, Trials: *trials, Msgs: *msgs, Seed: *seed}

	var index strings.Builder
	fmt.Fprintf(&index, "ftrbench run %s\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(&index, "params: %+v\n\n", params)
	failed := 0
	for _, id := range ids {
		e, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			failed++
			continue
		}
		start := time.Now()
		fmt.Fprintf(stdout, "running %-28s", e.ID)
		table, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(stdout, " ERROR: %v\n", err)
			fmt.Fprintf(&index, "%-28s ERROR: %v\n", e.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Fprintf(stdout, " ok (%s)\n", elapsed)
		fmt.Fprintf(&index, "%-28s ok  %-10s %s\n", e.ID, elapsed, e.Artifact)

		base := strings.ReplaceAll(e.ID, ".", "_")
		if err := writeTable(filepath.Join(*out, base+".txt"), table.String()); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			return 1
		}
		if *csv {
			var b strings.Builder
			if err := table.WriteCSV(&b); err == nil {
				if err := writeTable(filepath.Join(*out, base+".csv"), b.String()); err != nil {
					fmt.Fprintln(stderr, "ftrbench:", err)
					return 1
				}
			}
		}
	}
	if err := writeTable(filepath.Join(*out, "INDEX.txt"), index.String()); err != nil {
		fmt.Fprintln(stderr, "ftrbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s/\n", *out)
	if failed > 0 {
		fmt.Fprintf(stderr, "ftrbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}

func writeTable(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
