// Command ftrbench regenerates every table and figure of the paper at
// the configured scale, writing one text file (and optionally CSV) per
// experiment into an output directory, plus an index summarizing the
// run. This is the one-shot "reproduce the evaluation section" tool.
//
// Besides the per-experiment tables it emits BENCH_load.json, a
// machine-readable headline of the traffic subsystem (max-load ratio
// and p99 queueing latency of greedy vs load-aware routing under Zipf
// traffic) so the bench trajectory of the load scenario family is
// recorded run over run.
//
// Usage:
//
//	ftrbench [-out results] [-n 16384] [-trials 5] [-msgs 100] [-seed 1] [-csv]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ftrbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out    = fs.String("out", "results", "output directory")
		n      = fs.Int("n", 0, "network size override (0 = per-experiment default)")
		trials = fs.Int("trials", 0, "trials override")
		msgs   = fs.Int("msgs", 0, "messages override")
		seed   = fs.Uint64("seed", 0, "rng seed (0 = 1)")
		csv    = fs.Bool("csv", false, "also write CSV files")
		only   = fs.String("only", "", "comma-separated experiment ids (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "ftrbench:", err)
		return 1
	}
	ids := experiments.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	params := experiments.Params{N: *n, Trials: *trials, Msgs: *msgs, Seed: *seed}

	var index strings.Builder
	fmt.Fprintf(&index, "ftrbench run %s\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(&index, "params: %+v\n\n", params)
	failed := 0
	for _, id := range ids {
		e, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			failed++
			continue
		}
		start := time.Now()
		fmt.Fprintf(stdout, "running %-28s", e.ID)
		table, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(stdout, " ERROR: %v\n", err)
			fmt.Fprintf(&index, "%-28s ERROR: %v\n", e.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Fprintf(stdout, " ok (%s)\n", elapsed)
		fmt.Fprintf(&index, "%-28s ok  %-10s %s\n", e.ID, elapsed, e.Artifact)

		base := strings.ReplaceAll(e.ID, ".", "_")
		if err := writeTable(filepath.Join(*out, base+".txt"), table.String()); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			return 1
		}
		if *csv {
			var b strings.Builder
			if err := table.WriteCSV(&b); err == nil {
				if err := writeTable(filepath.Join(*out, base+".csv"), b.String()); err != nil {
					fmt.Fprintln(stderr, "ftrbench:", err)
					return 1
				}
			}
		}
	}
	// The headline rides along with full runs and with load-focused
	// -only filters; a run narrowed to unrelated experiments should not
	// pay for two extra traffic simulations.
	if *only == "" || strings.Contains(*only, "ext.load.") {
		if err := writeLoadHeadline(filepath.Join(*out, "BENCH_load.json"), *n, *msgs, *seed); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			failed++
			fmt.Fprintf(&index, "%-28s ERROR: %v\n", "BENCH_load.json", err)
		} else {
			fmt.Fprintf(stdout, "wrote BENCH_load.json\n")
			fmt.Fprintf(&index, "%-28s ok  %-10s %s\n", "BENCH_load.json", "", "traffic headline (greedy vs load-aware)")
		}
	}
	if err := writeTable(filepath.Join(*out, "INDEX.txt"), index.String()); err != nil {
		fmt.Fprintln(stderr, "ftrbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s/\n", *out)
	if failed > 0 {
		fmt.Fprintf(stderr, "ftrbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}

func writeTable(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// loadHeadline is the BENCH_load.json schema: one seeded Zipf-traffic
// scenario routed twice — hop-optimal greedy and the congestion-
// penalized load-aware policy — with the numbers later scaling PRs are
// measured against. Values are deterministic in (n, messages, seed).
type loadHeadline struct {
	Experiment         string  `json:"experiment"`
	N                  int     `json:"n"`
	Links              int     `json:"links"`
	Messages           int     `json:"messages"`
	Seed               uint64  `json:"seed"`
	Workload           string  `json:"workload"`
	MaxLoadGreedy      int     `json:"max_load_greedy"`
	MaxLoadAware       int     `json:"max_load_aware"`
	MaxMeanRatioGreedy float64 `json:"max_mean_ratio_greedy"`
	MaxMeanRatioAware  float64 `json:"max_mean_ratio_aware"`
	P99LatencyGreedy   float64 `json:"p99_latency_greedy"`
	P99LatencyAware    float64 `json:"p99_latency_aware"`
	MeanHopsGreedy     float64 `json:"mean_hops_greedy"`
	MeanHopsAware      float64 `json:"mean_hops_aware"`
	MaxQueueDepth      int     `json:"max_queue_depth_greedy"`
}

// writeLoadHeadline runs the canonical load scenario (Zipf traffic on a
// healthy ring, backtrack routing) under both policies and writes the
// JSON headline. Zero n/msgs/seed take the same defaults as the
// ext.load.* experiments.
func writeLoadHeadline(path string, n, msgs int, seed uint64) error {
	if n == 0 {
		n = 1 << 12
	}
	if msgs == 0 {
		msgs = 1000
	}
	if seed == 0 {
		seed = 1
	}
	links := mathx.ILog2(n)
	if links < 1 {
		links = 1
	}
	ring, err := metric.NewRing(n)
	if err != nil {
		return err
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(links), rng.New(seed))
	if err != nil {
		return err
	}
	run := func(penalty float64) (*load.Result, error) {
		return load.Run(g, load.Zipf(1.0), load.Config{
			Messages: msgs,
			Penalty:  penalty,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}, seed+1000)
	}
	greedy, err := run(0)
	if err != nil {
		return err
	}
	aware, err := run(1)
	if err != nil {
		return err
	}
	h := loadHeadline{
		Experiment:         "load.headline",
		N:                  n,
		Links:              links,
		Messages:           msgs,
		Seed:               seed,
		Workload:           greedy.Workload,
		MaxLoadGreedy:      greedy.MaxLoad,
		MaxLoadAware:       aware.MaxLoad,
		MaxMeanRatioGreedy: greedy.MaxMeanRatio(),
		MaxMeanRatioAware:  aware.MaxMeanRatio(),
		P99LatencyGreedy:   greedy.LatencyP99,
		P99LatencyAware:    aware.LatencyP99,
		MeanHopsGreedy:     greedy.Search.MeanHops(),
		MeanHopsAware:      aware.Search.MeanHops(),
		MaxQueueDepth:      greedy.MaxQueueDepth,
	}
	buf, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
