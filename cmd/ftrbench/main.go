// Command ftrbench regenerates every table and figure of the paper at
// the configured scale, writing one text file (and optionally CSV) per
// experiment into an output directory, plus an index summarizing the
// run. This is the one-shot "reproduce the evaluation section" tool.
// Any experiment failure or headline write failure makes the run exit
// nonzero, so CI can gate on it.
//
// Besides the per-experiment tables it emits four machine-readable
// headlines so the bench trajectory is recorded run over run:
// BENCH_load.json (max-load ratio and p99 queueing latency of greedy vs
// load-aware routing under Zipf traffic), BENCH_saturation.json (the
// capacity knee — offered rate, knee throughput, and p99 at 80% of the
// knee — of greedy vs load-aware vs depth-aware routing),
// BENCH_replica.json (the flood-knee lift of k = 4 hot-key replicas
// plus cache-on-path over the unreplicated baseline on a 30%-failed
// torus), and BENCH_engine.json (the same replicated flood scenario
// swept in the discrete-event engine's four modes — batch-snapshot,
// live per-hop state, live with same-key service aggregation, and live
// with the pending-interest response path — whose headlines are the
// aggregated knee's lift over the snapshot k=4+cache baseline and the
// PIT knee rate's lift over the aggregation knee rate, plus a
// shard-scaling section timing the live loop sequentially and at
// -shards shards on a larger torus and recording
// events_per_sec_per_core — with a churn-scaling subsection repeating
// the timed contrast under background churn, a correlated kill, a
// flash-crowd join, gossip, and link repair (churn ops are window
// barriers, so the run shards; events_per_sec_churn_sharded records
// the multi-core churn rate) — plus a churn-recovery section measuring how
// fast gossip-membership repair restores flood-knee throughput after a
// correlated kill of 30% of the network, against the never-repaired
// baseline).
//
// -validate checks previously written headline files: they must parse,
// no headline metric may be NaN, infinite, or zero, every knee
// throughput must be at least the minimal-load baseline recorded
// alongside it, every knee_lift_* field must be at least 1 (a lift
// below its own baseline means the feature regressed), and the
// engine headline's recovery section must show gossip repair actually
// recovering — recovery_time finite and positive and recovered_frac at
// least recover_frac. The CI
// bench-regression job runs ftrbench, then ftrbench -validate, and
// uploads the headlines as artifacts.
//
// -cpuprofile/-memprofile write pprof profiles of the whole run
// (`go tool pprof ftrbench cpu.out`), the supported workflow for
// hunting engine hot spots at realistic scale; -shards partitions the
// live event loop (and the scaling measurement) across cores.
//
// Usage:
//
//	ftrbench [-out results] [-n 16384] [-trials 5] [-msgs 100] [-seed 1] [-csv] [-shards 4]
//	ftrbench -only ext.engine.flood -cpuprofile cpu.out -memprofile mem.out
//	ftrbench -validate results/BENCH_load.json,results/BENCH_saturation.json,results/BENCH_replica.json,results/BENCH_engine.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ftrbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "results", "output directory")
		n          = fs.Int("n", 0, "network size override (0 = per-experiment default)")
		trials     = fs.Int("trials", 0, "trials override")
		msgs       = fs.Int("msgs", 0, "messages override")
		seed       = fs.Uint64("seed", 0, "rng seed (0 = 1)")
		csv        = fs.Bool("csv", false, "also write CSV files")
		only       = fs.String("only", "", "comma-separated experiment ids (default: all)")
		validate   = fs.String("validate", "", "comma-separated BENCH_*.json files to validate instead of running")
		shards     = fs.Int("shards", 0, "live event-loop shards for the experiments and the engine scaling headline (0 = NumCPU for the headline, 1 for the experiments)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards < 0 {
		fmt.Fprintln(stderr, "ftrbench: -shards must be non-negative")
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		// Taken after the run (and a forced GC) so the profile shows
		// retained structures, not transient garbage.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "ftrbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "ftrbench:", err)
			}
		}()
	}
	if *validate != "" {
		code := 0
		for _, path := range strings.Split(*validate, ",") {
			path = strings.TrimSpace(path)
			if err := validateHeadline(path); err != nil {
				fmt.Fprintln(stderr, "ftrbench:", err)
				code = 1
				continue
			}
			fmt.Fprintf(stdout, "%s ok\n", path)
		}
		return code
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "ftrbench:", err)
		return 1
	}
	ids := experiments.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	params := experiments.Params{N: *n, Trials: *trials, Msgs: *msgs, Seed: *seed, Shards: *shards}

	var index strings.Builder
	fmt.Fprintf(&index, "ftrbench run %s\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(&index, "params: %+v\n\n", params)
	failed := 0
	for _, id := range ids {
		e, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			failed++
			continue
		}
		start := time.Now()
		fmt.Fprintf(stdout, "running %-28s", e.ID)
		table, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(stdout, " ERROR: %v\n", err)
			fmt.Fprintf(&index, "%-28s ERROR: %v\n", e.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Fprintf(stdout, " ok (%s)\n", elapsed)
		fmt.Fprintf(&index, "%-28s ok  %-10s %s\n", e.ID, elapsed, e.Artifact)

		base := strings.ReplaceAll(e.ID, ".", "_")
		if err := writeTable(filepath.Join(*out, base+".txt"), table.String()); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			return 1
		}
		if *csv {
			var b strings.Builder
			if err := table.WriteCSV(&b); err != nil {
				// A CSV marshalling failure must fail the run, not
				// silently drop the file.
				fmt.Fprintln(stderr, "ftrbench:", err)
				fmt.Fprintf(&index, "%-28s ERROR: %v\n", base+".csv", err)
				failed++
			} else if err := writeTable(filepath.Join(*out, base+".csv"), b.String()); err != nil {
				fmt.Fprintln(stderr, "ftrbench:", err)
				return 1
			}
		}
	}
	// The headlines ride along with full runs and with matching -only
	// filters; a run narrowed to unrelated experiments should not pay
	// for the extra traffic simulations.
	if *only == "" || strings.Contains(*only, "ext.load.") {
		if err := writeLoadHeadline(filepath.Join(*out, "BENCH_load.json"), *n, *msgs, *seed); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			failed++
			fmt.Fprintf(&index, "%-28s ERROR: %v\n", "BENCH_load.json", err)
		} else {
			fmt.Fprintf(stdout, "wrote BENCH_load.json\n")
			fmt.Fprintf(&index, "%-28s ok  %-10s %s\n", "BENCH_load.json", "", "traffic headline (greedy vs load-aware)")
		}
	}
	if *only == "" || strings.Contains(*only, "ext.saturation.") {
		if err := writeSaturationHeadline(filepath.Join(*out, "BENCH_saturation.json"), *n, *msgs, *seed); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			failed++
			fmt.Fprintf(&index, "%-28s ERROR: %v\n", "BENCH_saturation.json", err)
		} else {
			fmt.Fprintf(stdout, "wrote BENCH_saturation.json\n")
			fmt.Fprintf(&index, "%-28s ok  %-10s %s\n", "BENCH_saturation.json", "", "capacity-knee headline (greedy vs load-aware vs depth-aware)")
		}
	}
	if *only == "" || strings.Contains(*only, "ext.replica.") {
		if err := writeReplicaHeadline(filepath.Join(*out, "BENCH_replica.json"), *n, *msgs, *seed); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			failed++
			fmt.Fprintf(&index, "%-28s ERROR: %v\n", "BENCH_replica.json", err)
		} else {
			fmt.Fprintf(stdout, "wrote BENCH_replica.json\n")
			fmt.Fprintf(&index, "%-28s ok  %-10s %s\n", "BENCH_replica.json", "", "flood-knee replication headline (k=1 vs k=4+cache)")
		}
	}
	if *only == "" || strings.Contains(*only, "ext.engine.") {
		if err := writeEngineHeadline(filepath.Join(*out, "BENCH_engine.json"), *n, *msgs, *seed, *shards); err != nil {
			fmt.Fprintln(stderr, "ftrbench:", err)
			failed++
			fmt.Fprintf(&index, "%-28s ERROR: %v\n", "BENCH_engine.json", err)
		} else {
			fmt.Fprintf(stdout, "wrote BENCH_engine.json\n")
			fmt.Fprintf(&index, "%-28s ok  %-10s %s\n", "BENCH_engine.json", "", "engine-mode headline (snapshot vs live vs live+aggregate vs live+pit)")
		}
	}
	if err := writeTable(filepath.Join(*out, "INDEX.txt"), index.String()); err != nil {
		fmt.Fprintln(stderr, "ftrbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s/\n", *out)
	if failed > 0 {
		fmt.Fprintf(stderr, "ftrbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}

func writeTable(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// loadHeadline is the BENCH_load.json schema: one seeded Zipf-traffic
// scenario routed twice — hop-optimal greedy and the congestion-
// penalized load-aware policy — with the numbers later scaling PRs are
// measured against. Values are deterministic in (n, messages, seed).
type loadHeadline struct {
	Experiment         string  `json:"experiment"`
	N                  int     `json:"n"`
	Links              int     `json:"links"`
	Messages           int     `json:"messages"`
	Seed               uint64  `json:"seed"`
	Workload           string  `json:"workload"`
	MaxLoadGreedy      int     `json:"max_load_greedy"`
	MaxLoadAware       int     `json:"max_load_aware"`
	MaxMeanRatioGreedy float64 `json:"max_mean_ratio_greedy"`
	MaxMeanRatioAware  float64 `json:"max_mean_ratio_aware"`
	P99LatencyGreedy   float64 `json:"p99_latency_greedy"`
	P99LatencyAware    float64 `json:"p99_latency_aware"`
	MeanHopsGreedy     float64 `json:"mean_hops_greedy"`
	MeanHopsAware      float64 `json:"mean_hops_aware"`
	MaxQueueDepth      int     `json:"max_queue_depth_greedy"`
}

// writeLoadHeadline runs the canonical load scenario (Zipf traffic on a
// healthy ring, backtrack routing) under both policies and writes the
// JSON headline. Zero n/msgs/seed take the same defaults as the
// ext.load.* experiments.
func writeLoadHeadline(path string, n, msgs int, seed uint64) error {
	if n == 0 {
		n = 1 << 12
	}
	if msgs == 0 {
		msgs = 1000
	}
	if seed == 0 {
		seed = 1
	}
	links := mathx.ILog2(n)
	if links < 1 {
		links = 1
	}
	ring, err := metric.NewRing(n)
	if err != nil {
		return err
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(links), rng.New(seed))
	if err != nil {
		return err
	}
	run := func(penalty float64) (*load.Result, error) {
		return load.Run(g, load.Zipf(1.0), load.Config{
			Messages: msgs,
			Penalty:  penalty,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}, seed+1000)
	}
	greedy, err := run(0)
	if err != nil {
		return err
	}
	aware, err := run(1)
	if err != nil {
		return err
	}
	return writeJSON(path, loadHeadline{
		Experiment:         "load.headline",
		N:                  n,
		Links:              links,
		Messages:           msgs,
		Seed:               seed,
		Workload:           greedy.Workload,
		MaxLoadGreedy:      greedy.MaxLoad,
		MaxLoadAware:       aware.MaxLoad,
		MaxMeanRatioGreedy: greedy.MaxMeanRatio(),
		MaxMeanRatioAware:  aware.MaxMeanRatio(),
		P99LatencyGreedy:   greedy.LatencyP99,
		P99LatencyAware:    aware.LatencyP99,
		MeanHopsGreedy:     greedy.Search.MeanHops(),
		MeanHopsAware:      aware.Search.MeanHops(),
		MaxQueueDepth:      greedy.MaxQueueDepth,
	})
}

func writeJSON(path string, v interface{}) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// saturationHeadline is the BENCH_saturation.json schema: the capacity
// knee of the canonical Zipf-on-a-ring scenario under open-loop Poisson
// arrivals, located for the paper's hop-optimal greedy and for the
// load-aware and depth-aware congestion policies. KneeRate is the
// largest offered load still keeping up, KneeThroughput the delivered
// rate there, and P99Backoff the tail latency at 80% of the knee — the
// operating point a production deployment would pick. Values are
// deterministic in (n, messages, seed).
type saturationHeadline struct {
	Experiment          string  `json:"experiment"`
	N                   int     `json:"n"`
	Links               int     `json:"links"`
	Messages            int     `json:"messages"`
	Seed                uint64  `json:"seed"`
	Workload            string  `json:"workload"`
	Model               string  `json:"arrival_model"`
	KneeRateGreedy      float64 `json:"knee_rate_greedy"`
	KneeRateAware       float64 `json:"knee_rate_aware"`
	KneeRateDepth       float64 `json:"knee_rate_depth"`
	KneeThroughputG     float64 `json:"knee_throughput_greedy"`
	KneeThroughputAware float64 `json:"knee_throughput_aware"`
	KneeThroughputDepth float64 `json:"knee_throughput_depth"`
	// The minimal-load throughput of each sweep: a sanity floor the
	// validator holds the knee throughput to (a knee below it means the
	// sweep mis-located the capacity).
	BaselineThroughputG     float64 `json:"baseline_throughput_greedy"`
	BaselineThroughputAware float64 `json:"baseline_throughput_aware"`
	BaselineThroughputDepth float64 `json:"baseline_throughput_depth"`
	P99BackoffGreedy        float64 `json:"p99_at_80pct_knee_greedy"`
	P99BackoffAware         float64 `json:"p99_at_80pct_knee_aware"`
	P99BackoffDepth         float64 `json:"p99_at_80pct_knee_depth"`
}

// writeSaturationHeadline sweeps the canonical scenario (Zipf traffic on
// a healthy ring, backtrack routing, Poisson arrivals) under the three
// policies and writes the JSON headline. Zero n/seed take the
// ext.saturation.* defaults; the message budget defaults to 3·n so the
// sweep can observe saturation (an explicit -msgs override is respected
// but small values make the knee a lower bound).
func writeSaturationHeadline(path string, n, msgs int, seed uint64) error {
	if n == 0 {
		n = 1 << 10
	}
	if msgs == 0 {
		msgs = 3 * n
	}
	if seed == 0 {
		seed = 1
	}
	links := mathx.ILog2(n)
	if links < 1 {
		links = 1
	}
	ring, err := metric.NewRing(n)
	if err != nil {
		return err
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(links), rng.New(seed))
	if err != nil {
		return err
	}
	h := saturationHeadline{
		Experiment: "saturation.headline",
		N:          n,
		Links:      links,
		Messages:   msgs,
		Seed:       seed,
		Workload:   "zipf(1)",
		Model:      "poisson",
	}
	sweep := func(penalty, depth float64) (knee, thr, baseline, p99Backoff float64, err error) {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages:     msgs,
				Penalty:      penalty,
				DepthPenalty: depth,
				Route:        route.Options{DeadEnd: route.Backtrack},
			},
			Model: "poisson",
		}
		res, err := load.Sweep(g, load.Zipf(1.0), cfg, seed+2000)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if res.KneePoint() == nil {
			return 0, 0, 0, 0, fmt.Errorf(
				"saturation headline: no finite knee (minimum load already unstable at n=%d msgs=%d; raise -msgs)",
				n, msgs)
		}
		backoffCfg := cfg.Config
		backoffCfg.Arrival = load.Poisson(0.8 * res.Knee)
		backoff, err := load.Run(g, load.Zipf(1.0), backoffCfg, seed+2000)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		return res.Knee, res.KneeThroughput, res.Points[0].Result.Throughput, backoff.LatencyP99, nil
	}
	if h.KneeRateGreedy, h.KneeThroughputG, h.BaselineThroughputG, h.P99BackoffGreedy, err = sweep(0, 0); err != nil {
		return err
	}
	if h.KneeRateAware, h.KneeThroughputAware, h.BaselineThroughputAware, h.P99BackoffAware, err = sweep(1, 0); err != nil {
		return err
	}
	if h.KneeRateDepth, h.KneeThroughputDepth, h.BaselineThroughputDepth, h.P99BackoffDepth, err = sweep(1, 1); err != nil {
		return err
	}
	return writeJSON(path, h)
}

// replicaHeadline is the BENCH_replica.json schema: the flood-knee lift
// of hot-key replication on the acceptance scenario — a 30%-failed 2-D
// torus under a single-target flood, swept unreplicated (k = 1) and
// with k = 4 hash-spread replicas plus popularity-triggered
// cache-on-path, nearest-replica greedy routing throughout. KneeLift is
// the headline claim (>= 3x); the baseline throughputs are the
// minimal-load floors the validator checks the knees against. Values
// are deterministic in (n, messages, seed).
type replicaHeadline struct {
	Experiment         string  `json:"experiment"`
	N                  int     `json:"n"`
	Side               int     `json:"side"`
	Links              int     `json:"links"`
	Messages           int     `json:"messages"`
	Seed               uint64  `json:"seed"`
	Workload           string  `json:"workload"`
	Model              string  `json:"arrival_model"`
	FailFrac           float64 `json:"fail_frac"`
	Replicas           int     `json:"replicas"`
	CacheThreshold     int     `json:"cache_threshold"`
	CacheCopies        int     `json:"cache_copies"`
	KneeRateK1         float64 `json:"knee_rate_k1"`
	KneeRateK4         float64 `json:"knee_rate_k4"`
	KneeThroughputK1   float64 `json:"knee_throughput_k1"`
	KneeThroughputK4   float64 `json:"knee_throughput_k4"`
	BaselineThroughput float64 `json:"baseline_throughput"`
	KneeLift           float64 `json:"knee_lift"`
}

// writeReplicaHeadline sweeps the acceptance scenario with and without
// replication and writes the JSON headline. Zero n/msgs/seed take the
// ext.replica.flood defaults.
func writeReplicaHeadline(path string, n, msgs int, seed uint64) error {
	if n == 0 {
		n = 1 << 10
	}
	if seed == 0 {
		seed = 1
	}
	side := int(math.Round(math.Sqrt(float64(n))))
	if side < 8 {
		side = 8
	}
	if msgs == 0 {
		msgs = 3 * side * side
	}
	links := mathx.ILog2(side * side)
	if links < 1 {
		links = 1
	}
	torus, err := metric.NewTorus(side, 2)
	if err != nil {
		return err
	}
	src := rng.New(seed)
	g, err := graph.BuildIdeal(torus, graph.PaperConfigFor(torus, links), src)
	if err != nil {
		return err
	}
	if _, err := failure.FailNodesFraction(g, 0.3, src.Derive(1)); err != nil {
		return err
	}
	h := replicaHeadline{
		Experiment:     "replica.headline",
		N:              side * side,
		Side:           side,
		Links:          links,
		Messages:       msgs,
		Seed:           seed,
		Workload:       "flood",
		Model:          "poisson",
		FailFrac:       0.3,
		Replicas:       4,
		CacheThreshold: 16,
		CacheCopies:    8,
	}
	sweep := func(opt *replica.Options) (*load.SweepResult, error) {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages: msgs,
				Route:    route.Options{DeadEnd: route.Backtrack},
			},
			Model: "poisson",
		}
		cfg.Replication = opt
		res, err := load.Sweep(g, load.Flood(), cfg, seed+3000)
		if err != nil {
			return nil, err
		}
		if res.KneePoint() == nil {
			return nil, fmt.Errorf(
				"replica headline: no finite knee (minimum load already unstable at n=%d msgs=%d; raise -msgs)",
				n, msgs)
		}
		return res, nil
	}
	base, err := sweep(nil)
	if err != nil {
		return err
	}
	repl, err := sweep(&replica.Options{
		K:              h.Replicas,
		CacheThreshold: h.CacheThreshold,
		CacheCopies:    h.CacheCopies,
	})
	if err != nil {
		return err
	}
	h.KneeRateK1, h.KneeThroughputK1 = base.Knee, base.KneeThroughput
	h.KneeRateK4, h.KneeThroughputK4 = repl.Knee, repl.KneeThroughput
	h.BaselineThroughput = base.Points[0].Result.Throughput
	h.KneeLift = repl.KneeThroughput / base.KneeThroughput
	return writeJSON(path, h)
}

// engineHeadline is the BENCH_engine.json schema: the replicated flood
// acceptance scenario (30%-failed 2-D torus, single-target flood,
// k = 4 hash-spread replicas plus cache-on-path) swept in the
// discrete-event engine's four modes. KneeLiftLive and
// KneeLiftAggregate compare the live modes' knee throughput to the
// snapshot baseline — the snapshot row is the pre-engine pipeline
// byte-for-byte, so KneeLiftAggregate is the headline claim: same-key
// service aggregation lifts the flood knee past what replication alone
// (PR 4's 13.58 msgs/tick at this scale's defaults) buys. The
// response-path fields gate the PIT claim on knee rates (see the
// section comment below). Values are deterministic in (n, messages,
// seed).
type engineHeadline struct {
	Experiment            string  `json:"experiment"`
	N                     int     `json:"n"`
	Side                  int     `json:"side"`
	Links                 int     `json:"links"`
	Messages              int     `json:"messages"`
	Seed                  uint64  `json:"seed"`
	Workload              string  `json:"workload"`
	Model                 string  `json:"arrival_model"`
	FailFrac              float64 `json:"fail_frac"`
	Replicas              int     `json:"replicas"`
	CacheThreshold        int     `json:"cache_threshold"`
	CacheCopies           int     `json:"cache_copies"`
	KneeRateSnapshot      float64 `json:"knee_rate_snapshot"`
	KneeRateLive          float64 `json:"knee_rate_live"`
	KneeRateAggregate     float64 `json:"knee_rate_live_aggregate"`
	KneeThroughputSnap    float64 `json:"knee_throughput_snapshot"`
	KneeThroughputLive    float64 `json:"knee_throughput_live"`
	KneeThroughputAgg     float64 `json:"knee_throughput_live_aggregate"`
	AggregatedAtKnee      int     `json:"aggregated_at_knee"`
	BaselineThroughput    float64 `json:"baseline_throughput"`
	KneeLiftAggregate     float64 `json:"knee_lift_aggregate"`
	LiveOverSnapshotRatio float64 `json:"live_over_snapshot_ratio"`
	// Response-path section: the same sweep in live+pit mode, where
	// every request service plants a pending interest, later same-key
	// lookups park on it network-wide, and the answer retraces the
	// reverse path, multicasting to every recorded waiter. KneeLiftPIT
	// is the ≥1 acceptance gate, and it compares knee RATES against the
	// live+aggregate row — not knee throughputs, because aggregation's
	// merged completions are never charged an answer leg, so its
	// throughput counts return-trip work the response path actually
	// performs. PITKneeSaturated records whether the sweep observed
	// instability above the knee; false means suppression kept every
	// tested rate stable and the knee ran into the sweep's bracket cap,
	// a lower bound on capacity. The suppression ledger at the knee
	// balances: pit_suppressed = pit_multicast_fanout + pit_expired
	// (expiries can legitimately be zero).
	KneeRatePIT        float64 `json:"knee_rate_live_pit"`
	KneeThroughputPIT  float64 `json:"knee_throughput_live_pit"`
	PITKneeSaturated   bool    `json:"pit_knee_saturated"`
	PITInterestLife    float64 `json:"pit_interest_lifetime"`
	PITSuppressed      int     `json:"pit_suppressed"`
	PITMulticastFanout int     `json:"pit_multicast_fanout"`
	PITExpired         int     `json:"pit_expired"`
	KneeLiftPIT        float64 `json:"knee_lift_pit"`
	// Shard-scaling section: the live engine timed on a larger healthy
	// torus under uniform open-loop traffic — a parallel-eligible
	// configuration, so the sharded run's tables are byte-identical to
	// the sequential reference — once at Shards = 1 and once at
	// ScalingShards (ftrbench -shards; 0 = NumCPU). Events are per-hop
	// services; EventsPerSecPerCore = EventsPerSecSharded/ScalingShards
	// is the core-efficiency number the bench-regression gate requires
	// present and nonzero. ShardSpeedup is wall-clock dependent and
	// therefore recorded but not gated.
	ScalingNodes        int     `json:"scaling_nodes"`
	ScalingMessages     int     `json:"scaling_messages"`
	ScalingShards       int     `json:"scaling_shards"`
	EventsPerSecShards1 float64 `json:"events_per_sec_shards1"`
	EventsPerSecSharded float64 `json:"events_per_sec_sharded"`
	ShardSpeedup        float64 `json:"shard_speedup"`
	EventsPerSecPerCore float64 `json:"events_per_sec_per_core"`
	// Churn-scaling subsection: the same timed contrast with the full
	// membership layer engaged — background Poisson churn, a correlated
	// regional kill, a flash-crowd join, gossip dissemination, and link
	// repair. Churn ops run as window barriers, so the run stays
	// shard-eligible as long as the probe timeout covers one service
	// time (the load default, 4 service times, does); the headline
	// writer fails the run if the sharded timing fell back to the
	// sequential plan or diverged from the sequential reference. Events
	// here include gossip transmissions — each is a FIFO service the
	// shard drains process — and -validate gates both
	// events_per_sec_churn_* rates nonzero via the events_per_sec
	// headline-key rule.
	ChurnScalingNodes        int     `json:"churn_scaling_nodes"`
	ChurnScalingMessages     int     `json:"churn_scaling_messages"`
	ChurnScalingCrashes      int     `json:"churn_scaling_crashes"`
	ChurnScalingJoins        int     `json:"churn_scaling_joins"`
	ChurnScalingGossipSends  int     `json:"churn_scaling_gossip_sends"`
	EventsPerSecChurnShards1 float64 `json:"events_per_sec_churn_shards1"`
	EventsPerSecChurnSharded float64 `json:"events_per_sec_churn_sharded"`
	ChurnShardSpeedup        float64 `json:"churn_shard_speedup"`
	// Scheduler is the telemetry profile of the timed sharded run:
	// per-shard drain wall time, barrier wait, cross-shard handoff
	// volume, and the window-occupancy histogram. Wall-clock dependent
	// (like ShardSpeedup), so -validate checks shape and invariants —
	// barrier_wait_frac in [0, 1], positive drains, shard-count
	// consistency — never magnitudes.
	Scheduler *schedSection `json:"scheduler"`
	// Recovery is the churn headline: flood traffic at the healthy
	// knee, a correlated kill of 30% of the ring (the flood target
	// protected), and gossip-membership repair racing to restore
	// delivered throughput. -validate gates recovery_time finite and
	// positive and recovered_frac ≥ recover_frac for the repaired run
	// — the never-repaired baseline fields are recorded for contrast
	// (baseline_recovery_time is -1 when the baseline never got back
	// above the threshold).
	Recovery *recoverySection `json:"recovery"`
}

// schedSection is the headline's scheduler profile, filled from
// telemetry.SchedStats. Only the sharded timed run carries a recorder
// — the sequential reference runs bare, so the byte-equality check in
// measureScaling doubles as the telemetry non-perturbation gate.
type schedSection struct {
	Shards          int       `json:"shards"`
	Windows         int       `json:"windows"`
	Events          int       `json:"events"`
	BarrierWaitFrac float64   `json:"barrier_wait_frac"`
	DrainSecs       []float64 `json:"drain_secs"`
	BarrierWaitSecs []float64 `json:"barrier_wait_secs"`
	Handoffs        []int     `json:"handoffs,omitempty"`
	// OccupancyMeanEvents is the mean events a shard processed per
	// window it was active in; OccupancyWindows is the log-bucketed
	// histogram of those per-shard-window event counts.
	OccupancyMeanEvents float64          `json:"occupancy_mean_events"`
	OccupancyWindows    map[string]int64 `json:"occupancy_windows,omitempty"`
}

// recoverySection is the headline's churn-recovery profile, filled
// from experiments.MeasureRecovery (the same helper behind
// ext.churn.recovery, so the table and the headline can never drift
// apart). All times are virtual ticks; a recovery time of -1 means the
// run never returned to recover_frac of its pre-kill throughput.
type recoverySection struct {
	Nodes                 int     `json:"nodes"`
	KillFrac              float64 `json:"kill_frac"`
	KillAt                float64 `json:"kill_at"`
	RecoverFrac           float64 `json:"recover_frac"`
	KneeRate              float64 `json:"knee_rate"`
	PreKillThroughput     float64 `json:"pre_kill_throughput"`
	FloorThroughput       float64 `json:"floor_throughput"`
	RecoveryTime          float64 `json:"recovery_time"`
	RecoveredFrac         float64 `json:"recovered_frac"`
	BaselineRecoveryTime  float64 `json:"baseline_recovery_time"`
	BaselineRecoveredFrac float64 `json:"baseline_recovered_frac"`
	Crashes               int     `json:"crashes"`
	LinksRebuilt          int     `json:"links_rebuilt"`
	GossipSends           int     `json:"gossip_sends"`
	MembershipLag         float64 `json:"membership_lag"`
}

// measureRecovery fills the headline's recovery section: the repaired
// run and the never-repaired baseline of the same kill.
func measureRecovery(h *engineHeadline, n, msgs int, seed uint64) error {
	p := experiments.Params{N: n, Msgs: msgs, Seed: seed}
	on, err := experiments.MeasureRecovery(p, true)
	if err != nil {
		return err
	}
	off, err := experiments.MeasureRecovery(p, false)
	if err != nil {
		return err
	}
	h.Recovery = &recoverySection{
		Nodes:                 n,
		KillFrac:              0.3,
		KillAt:                on.KillAt,
		RecoverFrac:           experiments.RecoverFrac,
		KneeRate:              on.Knee,
		PreKillThroughput:     on.PreKill,
		FloorThroughput:       on.Floor,
		RecoveryTime:          on.RecoveryTime,
		RecoveredFrac:         on.Recovered,
		BaselineRecoveryTime:  off.RecoveryTime,
		BaselineRecoveredFrac: off.Recovered,
		Crashes:               on.Crashes,
		LinksRebuilt:          on.LinksRebuilt,
		GossipSends:           on.GossipSends,
		MembershipLag:         on.MembershipLag,
	}
	return nil
}

// schedSectionFrom flattens a telemetry scheduler profile into the
// JSON headline shape.
func schedSectionFrom(s *telemetry.SchedStats) *schedSection {
	if s == nil {
		return nil
	}
	sec := &schedSection{
		Shards:          s.Shards,
		Windows:         s.Windows,
		Events:          s.TotalEvents(),
		BarrierWaitFrac: s.BarrierWaitFrac(),
		DrainSecs:       s.Drain,
		BarrierWaitSecs: s.Wait,
		Handoffs:        s.Handoffs,
	}
	if s.Occupancy != nil && s.Occupancy.Total() > 0 {
		sec.OccupancyMeanEvents = float64(sec.Events) / float64(s.Occupancy.Total())
		sec.OccupancyWindows = make(map[string]int64)
		for i := 0; i < s.Occupancy.Buckets(); i++ {
			if c := s.Occupancy.Count(i); c > 0 {
				sec.OccupancyWindows[s.Occupancy.BucketLabel(i)] = c
			}
		}
	}
	return sec
}

// measureScaling times the live engine on a healthy torus of roughly
// 16·n nodes under uniform open-loop traffic (8 messages per node at a
// periodic rate of nodes/4 per tick), once sequential and once at the
// given shard count, and fills the headline's scaling fields. The
// configuration is parallel-eligible — no congestion penalties, no
// caching, no closed-loop aggregation — so both runs produce identical
// tables; the function errors if they do not, turning any determinism
// regression into a failed bench run. The default scale keeps full runs
// quick; `-n 8192` restores the acceptance scale (≈1.3e5 nodes, ≈1e6
// messages).
func measureScaling(h *engineHeadline, n int, seed uint64, shards int) error {
	if shards == 0 {
		shards = runtime.NumCPU()
	}
	side := 4 * int(math.Round(math.Sqrt(float64(n))))
	if side < 32 {
		side = 32
	}
	nodes := side * side
	msgs := 8 * nodes
	links := mathx.ILog2(nodes)
	torus, err := metric.NewTorus(side, 2)
	if err != nil {
		return err
	}
	g, err := graph.BuildIdeal(torus, graph.PaperConfigFor(torus, links), rng.New(seed+5000))
	if err != nil {
		return err
	}
	timed := func(s int, tel *telemetry.Recorder) (*load.Result, float64, error) {
		cfg := load.Config{
			Messages:  msgs,
			Shards:    s,
			Live:      true,
			Arrival:   load.Periodic(float64(nodes) / 4),
			Route:     route.Options{DeadEnd: route.Backtrack},
			Telemetry: tel,
		}
		start := time.Now()
		res, err := load.Run(g, load.Uniform(), cfg, seed+5000)
		if err != nil {
			return nil, 0, err
		}
		return res, time.Since(start).Seconds(), nil
	}
	// Only the sharded run carries the recorder; the bare sequential
	// reference makes the divergence check below double as the
	// telemetry non-perturbation gate.
	tel := telemetry.New(telemetry.Options{})
	seq, seqSecs, err := timed(1, nil)
	if err != nil {
		return err
	}
	par, parSecs, err := timed(shards, tel)
	if err != nil {
		return err
	}
	if seq.Delivered != par.Delivered || seq.Makespan != par.Makespan ||
		seq.MaxLoad != par.MaxLoad || seq.LatencyP99 != par.LatencyP99 {
		return fmt.Errorf(
			"engine headline: sharded run diverged from the sequential reference (shards=%d: delivered %d vs %d, makespan %g vs %g)",
			shards, par.Delivered, seq.Delivered, par.Makespan, seq.Makespan)
	}
	events := 0
	for _, l := range seq.Loads {
		events += l
	}
	h.ScalingNodes = nodes
	h.ScalingMessages = msgs
	h.ScalingShards = shards
	h.EventsPerSecShards1 = float64(events) / seqSecs
	h.EventsPerSecSharded = float64(events) / parSecs
	h.ShardSpeedup = seqSecs / parSecs
	h.EventsPerSecPerCore = h.EventsPerSecSharded / float64(shards)
	h.Scheduler = schedSectionFrom(tel.Scheduler())
	return nil
}

// measureChurnScaling times the live engine with the membership layer
// live — background churn, a correlated regional kill, a flash-crowd
// join, gossip dissemination, and link repair — on a healthy torus
// under uniform open-loop traffic, once sequential and once at the
// given shard count, and fills the headline's churn-scaling fields.
// Churn ops are window barriers, and the load default probe timeout
// (4 service times) covers the 1-service-time window horizon, so the
// run is parallel-eligible; the function errors if the sharded run
// fell back to the sequential plan or diverged from the sequential
// reference in tables or churn ledger, turning an eligibility or
// determinism regression into a failed bench run. Each timed run
// rebuilds the graph from the same seed because churn mutates it.
func measureChurnScaling(h *engineHeadline, n int, seed uint64, shards int) error {
	if shards == 0 {
		shards = runtime.NumCPU()
	}
	side := 2 * int(math.Round(math.Sqrt(float64(n))))
	if side < 32 {
		side = 32
	}
	nodes := side * side
	msgs := 4 * nodes
	links := mathx.ILog2(nodes)
	rate := float64(nodes) / 8
	horizon := float64(msgs) / rate
	churn := failure.ChurnSpec{
		Rate:           4 / horizon,
		Horizon:        horizon,
		KillFrac:       0.15,
		KillAt:         horizon / 4,
		FlashJoin:      nodes / 64,
		FlashAt:        horizon / 2,
		GossipInterval: 1,
		GossipFanout:   2,
		Repair:         true,
	}
	timed := func(s int) (*load.Result, float64, error) {
		torus, err := metric.NewTorus(side, 2)
		if err != nil {
			return nil, 0, err
		}
		g, err := graph.BuildIdeal(torus, graph.PaperConfigFor(torus, links), rng.New(seed+7000))
		if err != nil {
			return nil, 0, err
		}
		cfg := load.Config{
			Messages: msgs,
			Shards:   s,
			Live:     true,
			Arrival:  load.Poisson(rate),
			Route:    route.Options{DeadEnd: route.Backtrack},
			Churn:    churn,
		}
		start := time.Now()
		res, err := load.Run(g, load.Uniform(), cfg, seed+7000)
		if err != nil {
			return nil, 0, err
		}
		return res, time.Since(start).Seconds(), nil
	}
	seq, seqSecs, err := timed(1)
	if err != nil {
		return err
	}
	par, parSecs, err := timed(shards)
	if err != nil {
		return err
	}
	// On a single-core runner the "sharded" timing is legitimately the
	// sequential plan; everywhere else a fallback means the scenario
	// lost its shard eligibility — fail loudly instead of recording two
	// sequential timings as a speedup of 1.
	if shards > 1 && par.Plan != engine.PlanLiveSharded.String() {
		return fmt.Errorf(
			"engine headline: churn scaling run fell back to plan %q (%s); the default probe timeout must keep churn shard-eligible",
			par.Plan, par.PlanReason)
	}
	if seq.Delivered != par.Delivered || seq.Makespan != par.Makespan ||
		seq.MaxLoad != par.MaxLoad || seq.LatencyP99 != par.LatencyP99 ||
		seq.Crashes != par.Crashes || seq.Joins != par.Joins ||
		seq.GossipSends != par.GossipSends || seq.LinksRebuilt != par.LinksRebuilt ||
		seq.MembershipLag != par.MembershipLag {
		return fmt.Errorf(
			"engine headline: sharded churn run diverged from the sequential reference (shards=%d: delivered %d vs %d, crashes %d vs %d, gossip %d vs %d)",
			shards, par.Delivered, seq.Delivered, par.Crashes, seq.Crashes, par.GossipSends, seq.GossipSends)
	}
	if seq.Crashes == 0 || seq.Joins == 0 || seq.GossipSends == 0 || seq.LinksRebuilt == 0 {
		return fmt.Errorf(
			"engine headline: churn scaling scenario was vacuous (crashes=%d joins=%d gossip=%d links=%d); every churn mechanism must exercise",
			seq.Crashes, seq.Joins, seq.GossipSends, seq.LinksRebuilt)
	}
	events := seq.GossipSends
	for _, l := range seq.Loads {
		events += l
	}
	h.ChurnScalingNodes = nodes
	h.ChurnScalingMessages = msgs
	h.ChurnScalingCrashes = seq.Crashes
	h.ChurnScalingJoins = seq.Joins
	h.ChurnScalingGossipSends = seq.GossipSends
	h.EventsPerSecChurnShards1 = float64(events) / seqSecs
	h.EventsPerSecChurnSharded = float64(events) / parSecs
	h.ChurnShardSpeedup = seqSecs / parSecs
	return nil
}

// writeEngineHeadline sweeps the acceptance scenario in all four
// engine modes, times the shard-scaling scenario, and writes the JSON
// headline. Zero n/msgs/seed take the ext.engine.flood defaults (which
// match ext.replica.flood's, so the snapshot row is comparable to
// BENCH_replica.json's k=4+cache row); zero shards times the scaling
// scenario at NumCPU.
func writeEngineHeadline(path string, n, msgs int, seed uint64, shards int) error {
	if n == 0 {
		n = 1 << 10
	}
	if seed == 0 {
		seed = 1
	}
	side := int(math.Round(math.Sqrt(float64(n))))
	if side < 8 {
		side = 8
	}
	if msgs == 0 {
		msgs = 3 * side * side
	}
	links := mathx.ILog2(side * side)
	if links < 1 {
		links = 1
	}
	torus, err := metric.NewTorus(side, 2)
	if err != nil {
		return err
	}
	src := rng.New(seed)
	g, err := graph.BuildIdeal(torus, graph.PaperConfigFor(torus, links), src)
	if err != nil {
		return err
	}
	if _, err := failure.FailNodesFraction(g, 0.3, src.Derive(1)); err != nil {
		return err
	}
	h := engineHeadline{
		Experiment:     "engine.headline",
		N:              side * side,
		Side:           side,
		Links:          links,
		Messages:       msgs,
		Seed:           seed,
		Workload:       "flood",
		Model:          "poisson",
		FailFrac:       0.3,
		Replicas:       4,
		CacheThreshold: 16,
		CacheCopies:    8,
	}
	sweep := func(live, aggregate, pit bool) (*load.SweepResult, error) {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages:  msgs,
				Live:      live,
				Aggregate: aggregate,
				PIT:       pit,
				Route:     route.Options{DeadEnd: route.Backtrack},
			},
			Model: "poisson",
		}
		cfg.Replication = &replica.Options{
			K:              h.Replicas,
			CacheThreshold: h.CacheThreshold,
			CacheCopies:    h.CacheCopies,
		}
		res, err := load.Sweep(g, load.Flood(), cfg, seed+4000)
		if err != nil {
			return nil, err
		}
		if res.KneePoint() == nil {
			return nil, fmt.Errorf(
				"engine headline: no finite knee (minimum load already unstable at n=%d msgs=%d; raise -msgs)",
				n, msgs)
		}
		return res, nil
	}
	snap, err := sweep(false, false, false)
	if err != nil {
		return err
	}
	live, err := sweep(true, false, false)
	if err != nil {
		return err
	}
	agg, err := sweep(true, true, false)
	if err != nil {
		return err
	}
	pit, err := sweep(true, false, true)
	if err != nil {
		return err
	}
	h.KneeRateSnapshot, h.KneeThroughputSnap = snap.Knee, snap.KneeThroughput
	h.KneeRateLive, h.KneeThroughputLive = live.Knee, live.KneeThroughput
	h.KneeRateAggregate, h.KneeThroughputAgg = agg.Knee, agg.KneeThroughput
	h.AggregatedAtKnee = agg.KneePoint().Result.Aggregated
	h.BaselineThroughput = snap.Points[0].Result.Throughput
	h.KneeLiftAggregate = agg.KneeThroughput / snap.KneeThroughput
	h.LiveOverSnapshotRatio = live.KneeThroughput / snap.KneeThroughput
	pk := pit.KneePoint().Result
	h.KneeRatePIT, h.KneeThroughputPIT = pit.Knee, pit.KneeThroughput
	h.PITKneeSaturated = pit.Saturated
	h.PITInterestLife = load.Config{PIT: true}.ResolvedPITTimeout()
	h.PITSuppressed = pk.Suppressed
	h.PITMulticastFanout = pk.MulticastFanout
	h.PITExpired = pk.PITExpired
	h.KneeLiftPIT = pit.Knee / agg.Knee
	if err := measureScaling(&h, n, seed, shards); err != nil {
		return err
	}
	if err := measureChurnScaling(&h, n, seed, shards); err != nil {
		return err
	}
	if err := measureRecovery(&h, n, msgs, seed); err != nil {
		return err
	}
	return writeJSON(path, h)
}

// headlineKey reports whether a zero value for the given BENCH_*.json
// field indicates a broken run rather than a legitimate zero (ids,
// seeds and labels are exempt).
func headlineKey(k string) bool {
	for _, marker := range []string{"knee", "max_load", "max_mean", "p99", "mean_hops", "throughput", "queue_depth", "events_per_sec"} {
		if strings.Contains(k, marker) {
			return true
		}
	}
	return false
}

// validateHeadline parses one BENCH_*.json file and rejects NaN,
// infinite, or zero-valued headline metrics, and any knee throughput
// below the minimal-load baseline recorded next to it — the CI
// bench-regression gate. Encoding NaN would already fail at write time
// (encoding/json rejects it), so the finiteness check guards
// hand-edited or truncated files.
func validateHeadline(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var fields map[string]interface{}
	if err := json.Unmarshal(raw, &fields); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if _, ok := fields["experiment"].(string); !ok {
		return fmt.Errorf("%s: missing experiment id", path)
	}
	// The headline loop below sees only top-level numbers; the nested
	// scheduler section needs its own descent.
	if raw, present := fields["scheduler"]; present && raw != nil {
		sched, ok := raw.(map[string]interface{})
		if !ok {
			return fmt.Errorf("%s: scheduler section is not an object", path)
		}
		if err := checkScheduler(sched, fields); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	}
	if raw, present := fields["recovery"]; present && raw != nil {
		rec, ok := raw.(map[string]interface{})
		if !ok {
			return fmt.Errorf("%s: recovery section is not an object", path)
		}
		if err := checkRecovery(rec); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	}
	checked := 0
	for k, v := range fields {
		f, ok := v.(float64)
		if !ok {
			continue
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("%s: field %q is %v", path, k, f)
		}
		if headlineKey(k) {
			checked++
			if f == 0 {
				return fmt.Errorf("%s: headline field %q is zero", path, k)
			}
		}
		// A knee_lift_* field below 1 means the feature undercut its own
		// baseline — the engine-mode and replication headlines gate on it.
		if strings.HasPrefix(k, "knee_lift") && f < 1 {
			return fmt.Errorf("%s: headline field %q = %g is below 1 (feature regressed its baseline)", path, k, f)
		}
		if err := checkKneeBaseline(fields, k, f); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	}
	if checked == 0 {
		return fmt.Errorf("%s: no headline metrics found", path)
	}
	return nil
}

// checkScheduler validates the BENCH_engine.json scheduler section's
// shape and invariants: a positive integer shard count consistent with
// the headline's scaling_shards, a barrier-wait fraction in [0, 1],
// per-shard drain times positive and finite, waits non-negative and
// finite, and handoff counts (when present) non-negative integers.
// Magnitudes are wall-clock dependent and never gated.
func checkScheduler(sched, fields map[string]interface{}) error {
	shards, ok := sched["shards"].(float64)
	if !ok || shards < 1 || shards != math.Trunc(shards) {
		return fmt.Errorf("scheduler.shards %v must be a positive integer", sched["shards"])
	}
	if outer, ok := fields["scaling_shards"].(float64); ok && outer != shards {
		return fmt.Errorf("scheduler.shards %g disagrees with scaling_shards %g", shards, outer)
	}
	frac, ok := sched["barrier_wait_frac"].(float64)
	if !ok || math.IsNaN(frac) || frac < 0 || frac > 1 {
		return fmt.Errorf("scheduler.barrier_wait_frac %v must lie in [0, 1]", sched["barrier_wait_frac"])
	}
	if ev, ok := sched["events"].(float64); !ok || !(ev > 0) {
		return fmt.Errorf("scheduler.events %v must be positive", sched["events"])
	}
	drain, err := schedFloats(sched, "drain_secs", int(shards))
	if err != nil {
		return err
	}
	for i, d := range drain {
		if !(d > 0) || math.IsInf(d, 0) {
			return fmt.Errorf("scheduler.drain_secs[%d] = %g must be positive and finite", i, d)
		}
	}
	wait, err := schedFloats(sched, "barrier_wait_secs", int(shards))
	if err != nil {
		return err
	}
	for i, w := range wait {
		if !(w >= 0) || math.IsInf(w, 0) {
			return fmt.Errorf("scheduler.barrier_wait_secs[%d] = %g must be non-negative and finite", i, w)
		}
	}
	if raw, present := sched["handoffs"]; present && raw != nil {
		hs, ok := raw.([]interface{})
		if !ok || len(hs) != int(shards) {
			return fmt.Errorf("scheduler.handoffs must be an array of shards = %g entries", shards)
		}
		for i, h := range hs {
			f, ok := h.(float64)
			if !ok || f < 0 || f != math.Trunc(f) {
				return fmt.Errorf("scheduler.handoffs[%d] = %v must be a non-negative integer", i, h)
			}
		}
	}
	return nil
}

// checkRecovery validates the BENCH_engine.json recovery section —
// the churn acceptance gate. The repaired run must have recovered:
// recovery_time finite and positive, recovered_frac at least
// recover_frac, and the repair ledger (crashes, links_rebuilt,
// gossip_sends) nonzero, over a sane scenario (kill_frac and
// recover_frac in (0, 1], positive knee and pre-kill throughput). The
// baseline fields only need to be well-formed: baseline_recovery_time
// is either positive or the -1 "never recovered" sentinel.
func checkRecovery(rec map[string]interface{}) error {
	num := func(key string) (float64, error) {
		f, ok := rec[key].(float64)
		if !ok || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("recovery.%s %v must be a finite number", key, rec[key])
		}
		return f, nil
	}
	for _, key := range []string{"kill_frac", "recover_frac"} {
		f, err := num(key)
		if err != nil {
			return err
		}
		if f <= 0 || f > 1 {
			return fmt.Errorf("recovery.%s = %g must lie in (0, 1]", key, f)
		}
	}
	for _, key := range []string{"knee_rate", "pre_kill_throughput", "kill_at"} {
		f, err := num(key)
		if err != nil {
			return err
		}
		if f <= 0 {
			return fmt.Errorf("recovery.%s = %g must be positive", key, f)
		}
	}
	rt, err := num("recovery_time")
	if err != nil {
		return err
	}
	if rt <= 0 {
		return fmt.Errorf("recovery.recovery_time = %g: repair never restored %v of the pre-kill throughput",
			rt, rec["recover_frac"])
	}
	frac, err := num("recovered_frac")
	if err != nil {
		return err
	}
	if want, _ := rec["recover_frac"].(float64); frac < want {
		return fmt.Errorf("recovery.recovered_frac = %g is below recover_frac %g", frac, want)
	}
	for _, key := range []string{"crashes", "links_rebuilt", "gossip_sends"} {
		f, err := num(key)
		if err != nil {
			return err
		}
		if f < 1 || f != math.Trunc(f) {
			return fmt.Errorf("recovery.%s = %v must be a positive integer (the repair machinery must have run)", key, rec[key])
		}
	}
	for _, key := range []string{"floor_throughput", "membership_lag", "baseline_recovered_frac"} {
		f, err := num(key)
		if err != nil {
			return err
		}
		if f < 0 {
			return fmt.Errorf("recovery.%s = %g must be non-negative", key, f)
		}
	}
	if bt, err := num("baseline_recovery_time"); err != nil {
		return err
	} else if bt <= 0 && bt != -1 {
		return fmt.Errorf("recovery.baseline_recovery_time = %g must be positive or the -1 sentinel", bt)
	}
	return nil
}

// schedFloats extracts a length-n numeric array from the scheduler
// section.
func schedFloats(sched map[string]interface{}, key string, n int) ([]float64, error) {
	raw, ok := sched[key].([]interface{})
	if !ok {
		return nil, fmt.Errorf("scheduler.%s missing or not an array", key)
	}
	if len(raw) != n {
		return nil, fmt.Errorf("scheduler.%s has %d entries, want shards = %d", key, len(raw), n)
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		f, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("scheduler.%s[%d] is not a number", key, i)
		}
		out[i] = f
	}
	return out, nil
}

// checkKneeBaseline rejects a knee_throughput_* field that sits below
// its own sweep's minimal-load throughput: the knee is by definition
// the largest stable load, so its throughput can never undercut the
// minimum's — a headline violating that was produced by a broken sweep
// (or a hand-edited file). The baseline is looked up under the matching
// suffix (baseline_throughput_<suffix>) or the file-wide
// baseline_throughput; headlines without a baseline field pass, so
// older BENCH_load.json-style files stay valid.
func checkKneeBaseline(fields map[string]interface{}, key string, knee float64) error {
	const kneePrefix = "knee_throughput"
	if !strings.HasPrefix(key, kneePrefix) {
		return nil
	}
	baseKey := "baseline_throughput" + strings.TrimPrefix(key, kneePrefix)
	base, ok := fields[baseKey].(float64)
	if !ok {
		base, ok = fields["baseline_throughput"].(float64)
	}
	if !ok {
		return nil
	}
	if knee < base {
		return fmt.Errorf("headline field %q = %g is below its minimal-load baseline %g (%s)",
			key, knee, base, baseKey)
	}
	return nil
}
