package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesResults(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{
		"-out", dir,
		"-only", "table1.nofail.detb,fig5b,ext.load.workloads",
		"-n", "512", "-trials", "1", "-msgs", "20",
		"-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, f := range []string{
		"table1_nofail_detb.txt", "table1_nofail_detb.csv",
		"fig5b.txt", "fig5b.csv", "ext_load_workloads.txt", "INDEX.txt",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output file %s: %v", f, err)
		}
	}
	index, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(index), "table1.nofail.detb") {
		t.Errorf("index missing experiment entry:\n%s", index)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("stdout missing progress:\n%s", out.String())
	}
	var headline map[string]interface{}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_load.json"))
	if err != nil {
		t.Fatalf("missing BENCH_load.json: %v", err)
	}
	if err := json.Unmarshal(raw, &headline); err != nil {
		t.Fatalf("BENCH_load.json is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"max_load_greedy", "max_load_aware",
		"max_mean_ratio_greedy", "max_mean_ratio_aware",
		"p99_latency_greedy", "p99_latency_aware",
	} {
		if _, ok := headline[key]; !ok {
			t.Errorf("BENCH_load.json missing %q:\n%s", key, raw)
		}
	}
	if !strings.Contains(string(index), "BENCH_load.json") {
		t.Errorf("index missing load headline entry:\n%s", index)
	}
}

func TestRunOnlySkipsLoadHeadline(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{
		"-out", dir,
		"-only", "fig5b",
		"-n", "512", "-trials", "1", "-msgs", "20",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_load.json")); err == nil {
		t.Error("a -only run without load experiments should not write BENCH_load.json")
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_saturation.json")); err == nil {
		t.Error("a -only run without saturation experiments should not write BENCH_saturation.json")
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_replica.json")); err == nil {
		t.Error("a -only run without replica experiments should not write BENCH_replica.json")
	}
}

func TestRunWritesSaturationHeadline(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{
		"-out", dir,
		"-only", "ext.saturation.knee",
		"-n", "512", "-seed", "3",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	path := filepath.Join(dir, "BENCH_saturation.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing BENCH_saturation.json: %v", err)
	}
	var headline map[string]interface{}
	if err := json.Unmarshal(raw, &headline); err != nil {
		t.Fatalf("BENCH_saturation.json is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"knee_rate_greedy", "knee_rate_aware", "knee_rate_depth",
		"knee_throughput_greedy", "knee_throughput_aware", "knee_throughput_depth",
		"p99_at_80pct_knee_greedy", "p99_at_80pct_knee_aware", "p99_at_80pct_knee_depth",
	} {
		v, ok := headline[key].(float64)
		if !ok || v <= 0 {
			t.Errorf("BENCH_saturation.json field %q = %v, want positive number", key, headline[key])
		}
	}
	// The freshly written headline must satisfy the validator the CI
	// gate runs.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-validate", path}, &out, &errOut); code != 0 {
		t.Errorf("-validate rejected a fresh headline: %s", errOut.String())
	}
}

func TestRunWritesReplicaHeadline(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{
		"-out", dir,
		"-only", "ext.replica.churn",
		"-n", "400", "-msgs", "900", "-seed", "1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	path := filepath.Join(dir, "BENCH_replica.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing BENCH_replica.json: %v", err)
	}
	var headline map[string]interface{}
	if err := json.Unmarshal(raw, &headline); err != nil {
		t.Fatalf("BENCH_replica.json is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"knee_rate_k1", "knee_rate_k4",
		"knee_throughput_k1", "knee_throughput_k4",
		"baseline_throughput", "knee_lift",
	} {
		v, ok := headline[key].(float64)
		if !ok || v <= 0 {
			t.Errorf("BENCH_replica.json field %q = %v, want positive number", key, headline[key])
		}
	}
	// The freshly written headline must satisfy the validator the CI
	// gate runs, including the knee-above-baseline rule.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-validate", path}, &out, &errOut); code != 0 {
		t.Errorf("-validate rejected a fresh replica headline: %s", errOut.String())
	}
}

func TestValidateRejectsBrokenHeadlines(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"missing.json":  "", // not written at all
		"garbage.json":  "{not json",
		"zero.json":     `{"experiment":"x","knee_rate_greedy":0}`,
		"headless.json": `{"experiment":"x","n":512}`,
		"anon.json":     `{"knee_rate_greedy":1}`,
		// The knee-vs-baseline gate: a knee throughput below the sweep's
		// own minimal-load throughput is a broken sweep, whether the
		// baseline is suffix-matched or file-wide.
		"sunkknee.json":  `{"experiment":"x","knee_throughput_greedy":1.5,"baseline_throughput_greedy":2.0}`,
		"sunkknee2.json": `{"experiment":"x","knee_throughput_k4":0.4,"baseline_throughput":0.5}`,
		// The response-path acceptance gate: a PIT knee-rate lift below 1
		// means suppression regressed the aggregation baseline.
		"sunklift.json": `{"experiment":"x","knee_rate_live_pit":90,"knee_lift_pit":0.9}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if content != "" {
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		var out, errOut strings.Builder
		if code := run([]string{"-validate", path}, &out, &errOut); code != 1 {
			t.Errorf("%s: exit = %d, want 1 (stderr %q)", name, code, errOut.String())
		}
	}
	// A knee at or above its baseline passes; a headline without any
	// baseline field is still valid (the older schemas).
	okCases := map[string]string{
		"atbase.json": `{"experiment":"x","knee_throughput_greedy":2.0,"baseline_throughput_greedy":2.0}`,
		"nobase.json": `{"experiment":"x","knee_throughput_greedy":2.0}`,
		// pit_knee_saturated is a bool (no numeric gate applies despite
		// the "knee" in its name) and a zero expiry count is legitimate —
		// an answer can beat every interest's lifetime.
		"pitok.json": `{"experiment":"x","knee_rate_live_pit":292,"pit_knee_saturated":false,"pit_expired":0,"knee_lift_pit":3.07}`,
	}
	for name, content := range okCases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut strings.Builder
		if code := run([]string{"-validate", path}, &out, &errOut); code != 0 {
			t.Errorf("%s: exit = %d, want 0 (stderr %q)", name, code, errOut.String())
		}
	}
	// One bad file fails the whole list even when another is fine.
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"experiment":"x","knee_rate_greedy":2.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-validate", good}, &out, &errOut); code != 0 {
		t.Fatalf("good headline rejected: %s", errOut.String())
	}
	if code := run([]string{"-validate", good + "," + filepath.Join(dir, "zero.json")}, &out, &errOut); code != 1 {
		t.Error("a bad file in the list should fail validation")
	}
}

func TestRunExitsNonzeroWhenHeadlineWriteFails(t *testing.T) {
	dir := t.TempDir()
	// Occupy the headline paths with directories so WriteFile fails.
	for _, f := range []string{"BENCH_load.json", "BENCH_saturation.json"} {
		if err := os.MkdirAll(filepath.Join(dir, f), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	var out, errOut strings.Builder
	code := run([]string{
		"-out", dir,
		"-only", "ext.load.workloads,ext.saturation.knee",
		"-n", "512", "-trials", "1", "-msgs", "40",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 when headline writes fail (stderr %q)", code, errOut.String())
	}
	index, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"BENCH_load.json", "BENCH_saturation.json"} {
		if !strings.Contains(string(index), f) {
			t.Errorf("index missing failed headline %s:\n%s", f, index)
		}
	}
}

func TestRunUnknownOnly(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{"-out", dir, "-only", "nope"}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown id") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-zzz"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestValidateRecoverySection(t *testing.T) {
	dir := t.TempDir()
	// A complete, healthy recovery section; each bad case below patches
	// one field of it.
	good := map[string]interface{}{
		"nodes": 1024, "kill_frac": 0.3, "kill_at": 642.5, "recover_frac": 0.9,
		"knee_rate": 2.125, "pre_kill_throughput": 2.174, "floor_throughput": 1.0,
		"recovery_time": 37.5, "recovered_frac": 1.38,
		"baseline_recovery_time": -1.0, "baseline_recovered_frac": 0.62,
		"crashes": 307, "links_rebuilt": 705, "gossip_sends": 9892,
		"membership_lag": 11.0,
	}
	wrap := func(patch map[string]interface{}) string {
		rec := make(map[string]interface{}, len(good))
		for k, v := range good {
			rec[k] = v
		}
		for k, v := range patch {
			if v == nil {
				delete(rec, k)
			} else {
				rec[k] = v
			}
		}
		buf, err := json.Marshal(map[string]interface{}{
			"experiment": "x", "knee_rate_live": 1.0, "recovery": rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	okCases := map[string]string{
		"good.json": wrap(nil),
		// A baseline that also recovered (slower) is legitimate.
		"baserec.json": wrap(map[string]interface{}{"baseline_recovery_time": 45.5}),
		// Absent section stays valid (older files).
		"norec.json": `{"experiment":"x","knee_rate_live":1}`,
	}
	for name, content := range okCases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut strings.Builder
		if code := run([]string{"-validate", path}, &out, &errOut); code != 0 {
			t.Errorf("%s: exit = %d, want 0 (stderr %q)", name, code, errOut.String())
		}
	}
	badCases := map[string]string{
		"notobj.json": `{"experiment":"x","knee_rate_live":1,"recovery":5}`,
		// The headline gate: repair must recover, in finite positive time.
		"neverrec.json":  wrap(map[string]interface{}{"recovery_time": -1}),
		"zerorec.json":   wrap(map[string]interface{}{"recovery_time": 0}),
		"norectime.json": wrap(map[string]interface{}{"recovery_time": nil}),
		"lowfrac.json":   wrap(map[string]interface{}{"recovered_frac": 0.85}),
		// Scenario sanity.
		"killhigh.json":  wrap(map[string]interface{}{"kill_frac": 1.5}),
		"killzero.json":  wrap(map[string]interface{}{"kill_frac": 0}),
		"zeroknee.json":  wrap(map[string]interface{}{"knee_rate": 0}),
		"zeropre.json":   wrap(map[string]interface{}{"pre_kill_throughput": 0}),
		"negfloor.json":  wrap(map[string]interface{}{"floor_throughput": -0.1}),
		"badbase.json":   wrap(map[string]interface{}{"baseline_recovery_time": -2}),
		"fracrange.json": wrap(map[string]interface{}{"recover_frac": 0}),
		// The repair machinery must actually have run.
		"nocrash.json":   wrap(map[string]interface{}{"crashes": 0}),
		"norebuild.json": wrap(map[string]interface{}{"links_rebuilt": 0}),
		"nogossip.json":  wrap(map[string]interface{}{"gossip_sends": 0}),
		"fraccount.json": wrap(map[string]interface{}{"crashes": 3.5}),
	}
	for name, content := range badCases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut strings.Builder
		if code := run([]string{"-validate", path}, &out, &errOut); code != 1 {
			t.Errorf("%s: exit = %d, want 1 (stderr %q)", name, code, errOut.String())
		}
	}
}

func TestValidateSchedulerSection(t *testing.T) {
	dir := t.TempDir()
	// The common prelude keeps each case focused on one scheduler field.
	wrap := func(sched string) string {
		return `{"experiment":"x","knee_rate_greedy":1,"scaling_shards":2,"scheduler":` + sched + `}`
	}
	okCases := map[string]string{
		"good.json": wrap(`{"shards":2,"windows":10,"events":100,"barrier_wait_frac":0.25,
			"drain_secs":[0.5,0.4],"barrier_wait_secs":[0,0.1],"handoffs":[3,4]}`),
		// The sequential fallback: one shard, no windows, no handoffs.
		"seq.json": `{"experiment":"x","knee_rate_greedy":1,"scheduler":{"shards":1,"windows":0,
			"events":7,"barrier_wait_frac":0,"drain_secs":[0.01],"barrier_wait_secs":[0]}}`,
		// Absent section stays valid (older files).
		"nosched.json": `{"experiment":"x","knee_rate_greedy":1}`,
	}
	for name, content := range okCases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut strings.Builder
		if code := run([]string{"-validate", path}, &out, &errOut); code != 0 {
			t.Errorf("%s: exit = %d, want 0 (stderr %q)", name, code, errOut.String())
		}
	}
	badCases := map[string]string{
		"notobj.json":    wrap(`5`),
		"noshards.json":  wrap(`{"barrier_wait_frac":0,"drain_secs":[1],"barrier_wait_secs":[0],"events":1}`),
		"fracneg.json":   wrap(`{"shards":2,"events":1,"barrier_wait_frac":-0.1,"drain_secs":[1,1],"barrier_wait_secs":[0,0]}`),
		"frachigh.json":  wrap(`{"shards":2,"events":1,"barrier_wait_frac":1.5,"drain_secs":[1,1],"barrier_wait_secs":[0,0]}`),
		"zerodrain.json": wrap(`{"shards":2,"events":1,"barrier_wait_frac":0,"drain_secs":[1,0],"barrier_wait_secs":[0,0]}`),
		"negwait.json":   wrap(`{"shards":2,"events":1,"barrier_wait_frac":0,"drain_secs":[1,1],"barrier_wait_secs":[0,-1]}`),
		"shortarr.json":  wrap(`{"shards":2,"events":1,"barrier_wait_frac":0,"drain_secs":[1],"barrier_wait_secs":[0,0]}`),
		"noevents.json":  wrap(`{"shards":2,"barrier_wait_frac":0,"drain_secs":[1,1],"barrier_wait_secs":[0,0]}`),
		"badhand.json":   wrap(`{"shards":2,"events":1,"barrier_wait_frac":0,"drain_secs":[1,1],"barrier_wait_secs":[0,0],"handoffs":[1,-2]}`),
		// shards disagreeing with the headline's scaling_shards.
		"mismatch.json": wrap(`{"shards":3,"events":1,"barrier_wait_frac":0,"drain_secs":[1,1,1],"barrier_wait_secs":[0,0,0]}`),
	}
	for name, content := range badCases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut strings.Builder
		if code := run([]string{"-validate", path}, &out, &errOut); code != 1 {
			t.Errorf("%s: exit = %d, want 1 (stderr %q)", name, code, errOut.String())
		}
	}
}
