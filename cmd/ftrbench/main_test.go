package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesResults(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{
		"-out", dir,
		"-only", "table1.nofail.detb,fig5b",
		"-n", "512", "-trials", "1", "-msgs", "20",
		"-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, f := range []string{
		"table1_nofail_detb.txt", "table1_nofail_detb.csv",
		"fig5b.txt", "fig5b.csv", "INDEX.txt",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output file %s: %v", f, err)
		}
	}
	index, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(index), "table1.nofail.detb") {
		t.Errorf("index missing experiment entry:\n%s", index)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("stdout missing progress:\n%s", out.String())
	}
}

func TestRunUnknownOnly(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{"-out", dir, "-only", "nope"}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown id") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-zzz"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}
