package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesResults(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{
		"-out", dir,
		"-only", "table1.nofail.detb,fig5b,ext.load.workloads",
		"-n", "512", "-trials", "1", "-msgs", "20",
		"-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, f := range []string{
		"table1_nofail_detb.txt", "table1_nofail_detb.csv",
		"fig5b.txt", "fig5b.csv", "ext_load_workloads.txt", "INDEX.txt",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output file %s: %v", f, err)
		}
	}
	index, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(index), "table1.nofail.detb") {
		t.Errorf("index missing experiment entry:\n%s", index)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("stdout missing progress:\n%s", out.String())
	}
	var headline map[string]interface{}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_load.json"))
	if err != nil {
		t.Fatalf("missing BENCH_load.json: %v", err)
	}
	if err := json.Unmarshal(raw, &headline); err != nil {
		t.Fatalf("BENCH_load.json is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"max_load_greedy", "max_load_aware",
		"max_mean_ratio_greedy", "max_mean_ratio_aware",
		"p99_latency_greedy", "p99_latency_aware",
	} {
		if _, ok := headline[key]; !ok {
			t.Errorf("BENCH_load.json missing %q:\n%s", key, raw)
		}
	}
	if !strings.Contains(string(index), "BENCH_load.json") {
		t.Errorf("index missing load headline entry:\n%s", index)
	}
}

func TestRunOnlySkipsLoadHeadline(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{
		"-out", dir,
		"-only", "fig5b",
		"-n", "512", "-trials", "1", "-msgs", "20",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_load.json")); err == nil {
		t.Error("a -only run without load experiments should not write BENCH_load.json")
	}
}

func TestRunUnknownOnly(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{"-out", dir, "-only", "nope"}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown id") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-zzz"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}
