package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, id := range []string{"fig6a", "table1.nofail.l1", "ext.byzantine"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestRunMissingExp(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-exp required") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown id") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestRunDim2Sweep(t *testing.T) {
	args := []string{"-exp", "fig6a", "-dim", "2", "-side", "12", "-trials", "1", "-msgs", "10"}
	var out1, out2, errOut strings.Builder
	if code := run(args, &out1, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out1.String(), "torus d=2 side=12") {
		t.Errorf("2-D output must record the space:\n%s", out1.String())
	}
	if code := run(args, &out2, &errOut); code != 0 {
		t.Fatalf("second run exit = %d", code)
	}
	if out1.String() != out2.String() {
		t.Error("seeded 2-D sweep must be deterministic")
	}
}

func TestRunLoadExperiment(t *testing.T) {
	args := []string{"-exp", "ext.load.zipf", "-n", "512", "-msgs", "80", "-workload", "flood", "-capacity", "2"}
	var out1, out2, errOut strings.Builder
	if code := run(args, &out1, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, col := range []string{"max load", "mean load", "p99 lat", "flood"} {
		if !strings.Contains(out1.String(), col) {
			t.Errorf("load table missing %q:\n%s", col, out1.String())
		}
	}
	if code := run(args, &out2, &errOut); code != 0 {
		t.Fatalf("second run exit = %d", code)
	}
	if out1.String() != out2.String() {
		t.Error("seeded load experiment must be byte-identical across runs")
	}
}

func TestRunReplicaExperiment(t *testing.T) {
	// The churn ladder through the CLI, with the replica count and cache
	// threshold overridden via -replicas/-cache.
	args := []string{"-exp", "ext.replica.churn", "-n", "256", "-msgs", "120",
		"-replicas", "3", "-cache", "20"}
	var out1, out2, errOut strings.Builder
	if code := run(args, &out1, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"k=3", "delivered", "serving", "max load"} {
		if !strings.Contains(out1.String(), want) {
			t.Errorf("replica table missing %q:\n%s", want, out1.String())
		}
	}
	if code := run(args, &out2, &errOut); code != 0 {
		t.Fatalf("second run exit = %d", code)
	}
	if out1.String() != out2.String() {
		t.Error("seeded replica experiment must be byte-identical across runs")
	}
}

func TestRunRejectsNegativeLoadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "ext.load.zipf", "-skew", "-1"},
		{"-exp", "ext.load.zipf", "-depth", "-1"},
		{"-exp", "ext.saturation.knee", "-rate", "-2"},
		{"-exp", "ext.saturation.knee", "-clients", "-3"},
		{"-exp", "ext.saturation.knee", "-think", "-0.5"},
		{"-exp", "ext.replica.flood", "-replicas", "-2"},
		{"-exp", "ext.replica.flood", "-cache", "-1"},
		{"-exp", "ext.load.zipf", "-live", "-churn", "-0.1"},
		{"-exp", "ext.load.zipf", "-live", "-killfrac", "-0.3"},
		{"-exp", "ext.load.zipf", "-live", "-killfrac", "1.5"},
		{"-exp", "ext.load.zipf", "-live", "-killat", "-10"},
		{"-exp", "ext.load.zipf", "-live", "-gossipfanout", "-1"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("%v: exit = %d, want 2", args, code)
		}
	}
}

func TestRunChurnExperiment(t *testing.T) {
	// Live traffic with background churn and a correlated kill through
	// the CLI. The same args must be byte-identical across reruns, and
	// churn without -live must fail with the load layer's error.
	args := []string{"-exp", "ext.load.zipf", "-n", "512", "-msgs", "200",
		"-live", "-churn", "0.05", "-killfrac", "0.2", "-killat", "40", "-gossipfanout", "3"}
	var out1, out2, errOut strings.Builder
	if code := run(args, &out1, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, col := range []string{"max load", "p99 lat"} {
		if !strings.Contains(out1.String(), col) {
			t.Errorf("churn table missing %q:\n%s", col, out1.String())
		}
	}
	if code := run(args, &out2, &errOut); code != 0 {
		t.Fatalf("second run exit = %d", code)
	}
	if out1.String() != out2.String() {
		t.Error("seeded churn run must be byte-identical across reruns")
	}
	errOut.Reset()
	if code := run([]string{"-exp", "ext.load.zipf", "-churn", "0.05"}, &out1, &errOut); code != 1 {
		t.Errorf("churn without -live should fail the experiment, got exit %d", code)
	}
	if !strings.Contains(errOut.String(), "live") {
		t.Errorf("stderr should explain the live requirement: %q", errOut.String())
	}
}

func TestRunRecoveryExperiment(t *testing.T) {
	args := []string{"-exp", "ext.churn.recovery", "-n", "512", "-msgs", "1024"}
	var out1, out2, errOut strings.Builder
	if code := run(args, &out1, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"repair on", "repair off (baseline)", "recovery time", "recovered"} {
		if !strings.Contains(out1.String(), want) {
			t.Errorf("recovery table missing %q:\n%s", want, out1.String())
		}
	}
	if code := run(args, &out2, &errOut); code != 0 {
		t.Fatalf("second run exit = %d", code)
	}
	if out1.String() != out2.String() {
		t.Error("seeded recovery experiment must be byte-identical across reruns")
	}
}

func TestRunSaturationExperiment(t *testing.T) {
	// The knee sweep through the CLI, with the arrival family switched
	// to the closed-loop model via -arrival/-clients/-think.
	args := []string{"-exp", "ext.saturation.knee", "-n", "256", "-msgs", "768",
		"-arrival", "closed", "-think", "2"}
	var out, errOut strings.Builder
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"offered", "throughput", "KNEE", "p99 lat"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("saturation table missing %q:\n%s", want, out.String())
		}
	}
	if code := run([]string{"-exp", "ext.saturation.knee", "-arrival", "bogus"}, &out, &errOut); code != 1 {
		t.Errorf("unknown arrival model should fail the experiment, got exit %d", code)
	}
}

func TestRunExperimentTextAndCSV(t *testing.T) {
	args := []string{"-exp", "table1.nofail.detb", "-n", "512", "-trials", "1", "-msgs", "20"}
	var text, errOut strings.Builder
	if code := run(args, &text, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(text.String(), "base b") {
		t.Errorf("text output missing header:\n%s", text.String())
	}
	var csv strings.Builder
	if code := run(append(args, "-csv"), &csv, &errOut); code != 0 {
		t.Fatalf("csv exit = %d", code)
	}
	if !strings.HasPrefix(csv.String(), "# ") || !strings.Contains(csv.String(), "\nbase b,") {
		t.Errorf("csv output must lead with the title comment then the header:\n%s", csv.String())
	}
}

func TestRunTelemetryJSONL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.jsonl")
	args := []string{"-exp", "ext.load.zipf", "-n", "256", "-msgs", "256",
		"-live", "-shards", "2", "-seed", "7", "-telemetry", path}
	var out, errOut strings.Builder
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	// The panel and worst-flight summary follow the table.
	for _, want := range []string{"telemetry:", "windows (", "in-flight", "worst sampled flights:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	types := map[string]int{}
	for i, line := range lines {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		typ, _ := rec["type"].(string)
		types[typ]++
	}
	if types["run"] == 0 || types["window"] == 0 || types["flight"] == 0 {
		t.Errorf("record mix off: %v", types)
	}

	// Telemetry only observes: the table is byte-identical without it,
	// and the sampled-flight / window stream is itself deterministic.
	tableOf := func(s string) string { return strings.SplitN(s, "\ntelemetry:", 2)[0] }
	var plain, plainErr strings.Builder
	if code := run(args[:len(args)-2], &plain, &plainErr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, plainErr.String())
	}
	if plain.String() != tableOf(out.String()) {
		t.Error("telemetry perturbed the experiment table")
	}
	path2 := filepath.Join(dir, "telemetry2.jsonl")
	var out2, errOut2 strings.Builder
	args2 := append(append([]string{}, args[:len(args)-1]...), path2)
	if code := run(args2, &out2, &errOut2); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut2.String())
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	stripWall := regexp.MustCompile(`"wall_secs":[0-9.e-]+`)
	if !bytes.Equal(stripWall.ReplaceAll(data, nil), stripWall.ReplaceAll(data2, nil)) {
		t.Error("telemetry stream not deterministic net of wall-clock fields")
	}
}

func TestRunTelemetryCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.csv")
	var out, errOut strings.Builder
	code := run([]string{"-exp", "ext.load.zipf", "-n", "256", "-msgs", "128",
		"-telemetry", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("CSV unparseable: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("CSV has %d rows, want header + windows", len(rows))
	}
	if rows[0][0] != "run" {
		t.Errorf("header = %v", rows[0])
	}
}

func TestRunTelemetryUnwritablePath(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-exp", "ext.load.zipf", "-n", "256", "-msgs", "64",
		"-telemetry", filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if errOut.String() == "" {
		t.Error("expected an error on stderr")
	}
}
