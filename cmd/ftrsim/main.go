// Command ftrsim runs one reproduction experiment from the registry and
// prints its table.
//
// Usage:
//
//	ftrsim -list
//	ftrsim -exp fig6a [-n 131072] [-links 17] [-trials 1000] [-msgs 100] [-seed 1] [-csv]
//
// Defaults are scaled for quick runs; the flags restore the paper's
// scale (Figure 6 used n=2^17, 1000 simulations of 100 messages).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ftrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list   = fs.Bool("list", false, "list experiment ids and exit")
		exp    = fs.String("exp", "", "experiment id to run (see -list)")
		n      = fs.Int("n", 0, "network size (0 = experiment default)")
		links  = fs.Int("links", 0, "long links per node (0 = lg n)")
		trials = fs.Int("trials", 0, "independent networks (0 = experiment default)")
		msgs   = fs.Int("msgs", 0, "searches per network (0 = experiment default)")
		seed   = fs.Uint64("seed", 0, "rng seed (0 = 1)")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		w := tabwriter.NewWriter(stdout, 0, 4, 2, ' ', 0)
		for _, id := range experiments.IDs() {
			e, err := experiments.Get(id)
			if err != nil {
				fmt.Fprintln(stderr, "ftrsim:", err)
				return 1
			}
			fmt.Fprintf(w, "%s\t%s\n", e.ID, e.Artifact)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(stderr, "ftrsim:", err)
			return 1
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "ftrsim: -exp required (or -list); e.g. ftrsim -exp fig6a")
		return 2
	}
	table, err := experiments.Run(*exp, experiments.Params{
		N: *n, Links: *links, Trials: *trials, Msgs: *msgs, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ftrsim:", err)
		return 1
	}
	if *csv {
		err = table.WriteCSV(stdout)
	} else {
		err = table.WriteText(stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, "ftrsim:", err)
		return 1
	}
	return 0
}
