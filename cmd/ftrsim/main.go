// Command ftrsim runs one reproduction experiment from the registry and
// prints its table.
//
// Usage:
//
//	ftrsim -list
//	ftrsim -exp fig6a [-n 131072] [-links 17] [-trials 1000] [-msgs 100] [-seed 1] [-csv]
//	ftrsim -exp fig6a -dim 2 -side 64   # the same sweep on a 64×64 torus
//	ftrsim -exp ext.load.zipf -workload flood -capacity 2   # traffic & congestion
//	ftrsim -exp ext.saturation.knee                         # find the capacity knee
//	ftrsim -exp ext.saturation.knee -arrival closed -think 4
//	ftrsim -exp ext.replica.flood -replicas 8               # hot-key replication ladder
//	ftrsim -exp ext.load.zipf -replicas 4 -cache 25         # replicate any traffic run
//	ftrsim -exp ext.engine.flood                            # snapshot vs live vs live+aggregate vs live+pit knees
//	ftrsim -exp ext.saturation.knee -live -aggregate        # any sweep on the live engine
//	ftrsim -exp ext.pit.suppression -pittimeout 16          # the response path's suppression ledger
//	ftrsim -exp ext.load.zipf -live -churn 0.1              # traffic under live node churn
//	ftrsim -exp ext.churn.recovery -killfrac 0.3            # recovery after a correlated kill
//
// Defaults are scaled for quick runs; the flags restore the paper's
// scale (Figure 6 used n=2^17, 1000 simulations of 100 messages).
// -dim/-side select the metric space for the dimension-aware
// experiments (fig6*, fig7, ext.2d); the table header records the
// space, so text and CSV output carry the dimension.
// -workload/-skew/-capacity/-penalty/-depth parameterize the
// ext.load.* traffic experiments (internal/load);
// -arrival/-rate/-clients/-think select the arrival model — open-loop
// periodic or Poisson at -rate, or a closed loop of -clients with
// -think ticks between lookups — for both the fixed-rate experiments
// and the ext.saturation.* sweeps. -replicas/-cache turn on hot-key
// replication (internal/replica): k static replicas per key and/or
// popularity-triggered cache-on-path, routed to the nearest live copy.
//
// -live switches any traffic experiment to the discrete-event engine's
// live mode (internal/engine): messages advance hop-by-hop at their
// service completions and every forwarding decision — congestion
// penalties, queue-depth probes, nearest-replica targets — reads live
// state instead of a batch snapshot. -aggregate additionally coalesces
// same-key lookups that meet in a node's queue into one aggregated
// service (it implies -live). -pit switches on the pending-interest
// response path instead: every request service plants a pending
// interest, later same-key lookups park on it network-wide, and the
// answer retraces the reverse path, multicasting to every recorded
// waiter; -pittimeout and -pitwaiters tune the interest lifetime and
// the waiter-list bound (the ext.pit.* experiments switch the
// response path on themselves, so the knobs work there without
// -pit). Without the flags, the engine runs in
// snapshot mode, which reproduces the historical route-then-replay
// results byte-for-byte.
//
// -churn/-killfrac/-killat/-gossipfanout attach node dynamics to any
// live traffic experiment (internal/failure's ChurnSpec): nodes crash
// and rejoin as engine events on the same virtual clock as the
// traffic, failures are detected by probe timeout and disseminated by
// gossip membership, and repair redraws the §5 long-range links.
// Churn without -live is rejected by the load layer (snapshot mode
// routes whole paths against a static graph). Churn combines with
// -shards: membership mutations apply at the window barriers of the
// partitioned loop, which stays byte-identical to the sequential
// reference as long as the probe timeout covers one service time
// (faster probes fall back to the sequential loop).
//
// The engine experiments annotate their tables with the execution
// plan each run resolved to ("note: plan=... — ..."), so a -shards
// request that fell back to the sequential loop — caching, congestion
// feedback, or a fast churn probe — says so instead of silently
// running single-core.
//
// All traffic tables are byte-identical for a fixed seed regardless of
// worker count or machine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/experiments"
	"repro/internal/mathx"
	"repro/internal/telemetry"
	"repro/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ftrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list experiment ids and exit")
		exp      = fs.String("exp", "", "experiment id to run (see -list)")
		n        = fs.Int("n", 0, "network size (0 = experiment default)")
		dim      = fs.Int("dim", 0, "metric-space dimension: 1 = ring, >= 2 = torus (0 = experiment default)")
		side     = fs.Int("side", 0, "torus side length for -dim >= 2 (0 = derive from -n)")
		links    = fs.Int("links", 0, "long links per node (0 = lg n)")
		trials   = fs.Int("trials", 0, "independent networks (0 = experiment default)")
		msgs     = fs.Int("msgs", 0, "searches per network (0 = experiment default)")
		seed     = fs.Uint64("seed", 0, "rng seed (0 = 1)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		workload = fs.String("workload", "", "traffic pattern for ext.load.* experiments: uniform, zipf, sources, flood (empty = experiment default)")
		skew     = fs.Float64("skew", 0, "Zipf exponent of skewed workloads (0 = 1.0)")
		capacity = fs.Float64("capacity", 0, "per-node service capacity in message-hops per virtual tick (0 = 1)")
		penalty  = fs.Float64("penalty", 0, "congestion-penalty weight of the load-aware policy (0 = 1)")
		depth    = fs.Float64("depth", 0, "instantaneous-queue-depth penalty of the depth-aware policy (0 = 1)")
		arrival  = fs.String("arrival", "", "arrival model for the traffic experiments: periodic, poisson, closed (empty = experiment default)")
		rate     = fs.Float64("rate", 0, "open-loop injection rate in messages per virtual tick (0 = experiment default)")
		clients  = fs.Int("clients", 0, "closed-loop client population for -arrival closed (0 = 16)")
		think    = fs.Float64("think", 0, "closed-loop think time in ticks between a client's lookups")
		replicas = fs.Int("replicas", 0, "hot-key replica count k for the traffic experiments (0/1 = no static replication)")
		cache    = fs.Int("cache", 0, "popularity threshold of cache-on-path replication (0 = experiment default / off)")
		live     = fs.Bool("live", false, "event-driven engine mode: forwarding decisions read live load/depth/replica state instead of batch snapshots")
		agg      = fs.Bool("aggregate", false, "coalesce same-key lookups queued at one node into a single aggregated service (implies -live)")
		pit      = fs.Bool("pit", false, "pending-interest response path: suppress same-key lookups network-wide behind a pending interest and answer along the reverse path (implies -live)")
		pitTO    = fs.Float64("pittimeout", 0, "interest lifetime in virtual ticks before a suppressed lookup re-forwards (0 = 64 service times)")
		pitWait  = fs.Int("pitwaiters", 0, "bound on one pending interest's waiter list; arrivals past it forward normally (0 = 16)")
		shards   = fs.Int("shards", 0, "partition the live event loop across this many cores (0 = 1, the sequential reference; results are identical for every value)")
		telem    = fs.String("telemetry", "", "record virtual-time telemetry to this file (JSONL, or CSV when the path ends in .csv) and print the window panel; observation only — tables are byte-identical with or without it")
		churn    = fs.Float64("churn", 0, "background churn rate in node lifecycle events per virtual tick, with gossip membership repair (requires -live; 0 = no background churn)")
		killFrac = fs.Float64("killfrac", 0, "crash this fraction of the alive nodes in one correlated regional kill (requires -live; 0 = no kill)")
		killAt   = fs.Float64("killat", 0, "virtual time of the -killfrac kill (0 = one third of the injection horizon)")
		fanout   = fs.Int("gossipfanout", 0, "membership rumor push fanout of churn repair (0 = 2)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		w := tabwriter.NewWriter(stdout, 0, 4, 2, ' ', 0)
		for _, id := range experiments.IDs() {
			e, err := experiments.Get(id)
			if err != nil {
				fmt.Fprintln(stderr, "ftrsim:", err)
				return 1
			}
			fmt.Fprintf(w, "%s\t%s\n", e.ID, e.Artifact)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(stderr, "ftrsim:", err)
			return 1
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "ftrsim: -exp required (or -list); e.g. ftrsim -exp fig6a")
		return 2
	}
	if *dim < 0 || *side < 0 {
		fmt.Fprintf(stderr, "ftrsim: -dim %d / -side %d must be non-negative\n", *dim, *side)
		return 2
	}
	if *side > 0 && *dim < 2 {
		fmt.Fprintln(stderr, "ftrsim: -side applies to -dim >= 2 only (1-D networks are sized with -n)")
		return 2
	}
	if *dim >= 2 && *side > 0 && *n > 0 && *n != mathx.IPow(*side, *dim) {
		fmt.Fprintf(stderr, "ftrsim: -n %d disagrees with -side^(-dim) = %d; drop one of them\n",
			*n, mathx.IPow(*side, *dim))
		return 2
	}
	if *skew < 0 || *capacity < 0 || *penalty < 0 || *depth < 0 {
		fmt.Fprintln(stderr, "ftrsim: -skew, -capacity, -penalty and -depth must be non-negative")
		return 2
	}
	if *rate < 0 || *clients < 0 || *think < 0 {
		fmt.Fprintln(stderr, "ftrsim: -rate, -clients and -think must be non-negative")
		return 2
	}
	if *replicas < 0 || *cache < 0 {
		fmt.Fprintln(stderr, "ftrsim: -replicas and -cache must be non-negative")
		return 2
	}
	if *shards < 0 {
		fmt.Fprintln(stderr, "ftrsim: -shards must be non-negative")
		return 2
	}
	if *pitTO < 0 || *pitWait < 0 {
		fmt.Fprintln(stderr, "ftrsim: -pittimeout and -pitwaiters must be non-negative")
		return 2
	}
	if *churn < 0 || *killAt < 0 || *fanout < 0 {
		fmt.Fprintln(stderr, "ftrsim: -churn, -killat and -gossipfanout must be non-negative")
		return 2
	}
	if *killFrac < 0 || *killFrac > 1 {
		fmt.Fprintf(stderr, "ftrsim: -killfrac %g must lie in [0, 1]\n", *killFrac)
		return 2
	}
	var tel *telemetry.Recorder
	if *telem != "" {
		tel = telemetry.New(telemetry.Options{})
	}
	table, err := experiments.Run(*exp, experiments.Params{
		N: *n, Dim: *dim, Side: *side, Links: *links, Trials: *trials, Msgs: *msgs, Seed: *seed,
		Workload: *workload, Skew: *skew, Capacity: *capacity, Penalty: *penalty,
		DepthPenalty: *depth, Arrival: *arrival, Rate: *rate, Clients: *clients, Think: *think,
		Replicas: *replicas, Cache: *cache, Live: *live, Aggregate: *agg, Shards: *shards,
		PIT: *pit, PITTimeout: *pitTO, PITWaiters: *pitWait,
		ChurnRate: *churn, KillFrac: *killFrac, KillAt: *killAt, GossipFanout: *fanout,
		Telemetry: tel,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ftrsim:", err)
		return 1
	}
	if *csv {
		// The title carries the experiment parameters (space,
		// dimension, n, ℓ); emit it as a comment so CSV consumers keep
		// a plain header row.
		if table.Title != "" {
			fmt.Fprintf(stdout, "# %s\n", table.Title)
		}
		err = table.WriteCSV(stdout)
	} else {
		err = table.WriteText(stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, "ftrsim:", err)
		return 1
	}
	if tel != nil {
		if err := writeTelemetry(tel, *telem); err != nil {
			fmt.Fprintln(stderr, "ftrsim:", err)
			return 1
		}
		printTelemetry(stdout, tel, *telem)
	}
	return 0
}

// writeTelemetry dumps the recorder to path: CSV when the extension
// says so, JSONL (runs, windows, worst flights) otherwise.
func writeTelemetry(tel *telemetry.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = tel.WriteCSV(f)
	} else {
		err = tel.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// printTelemetry renders the busiest run's window panel and the
// worst-latency sampled flights after the experiment table.
func printTelemetry(stdout io.Writer, tel *telemetry.Recorder, path string) {
	label, names, series := tel.PanelSeries()
	fmt.Fprintf(stdout, "\ntelemetry: %d run(s) -> %s\n", len(tel.Runs()), path)
	if panel := viz.Timeline(names, series, 64); panel != "" {
		fmt.Fprintf(stdout, "windows (%s):\n%s", label, panel)
	}
	flights := tel.WorstFlights(0) // 0 = the recorder's WorstK default
	if len(flights) == 0 {
		return
	}
	fmt.Fprintf(stdout, "worst sampled flights:\n")
	for _, f := range flights {
		fmt.Fprintf(stdout, "  run %d msg %d: latency %.3f hops %d served %s delivered %v\n",
			f.Run, f.Msg, f.Latency, len(f.Hops), f.Served, f.Delivered)
	}
}
