// Command ftrnode runs a live overlay demo over real TCP sockets: it
// starts a configurable number of nodes on loopback, joins them into a
// network with the §5 protocol, stores a set of key/value pairs,
// crashes a fraction of the nodes, runs self-healing, and verifies the
// surviving data is still reachable — the paper's fault-tolerance story
// end to end on a real transport.
//
// Usage:
//
//	ftrnode [-nodes 24] [-ring 4096] [-links 6] [-keys 32] [-crash 0.25] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metric"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nodes    = flag.Int("nodes", 24, "number of TCP nodes to start")
		ringSize = flag.Int("ring", 4096, "identifier ring size")
		links    = flag.Int("links", 6, "long links per node")
		keys     = flag.Int("keys", 32, "key/value pairs to store")
		crash    = flag.Float64("crash", 0.25, "fraction of nodes to crash")
		seed     = flag.Uint64("seed", 1, "rng seed")
	)
	flag.Parse()
	if err := demo(*nodes, *ringSize, *links, *keys, *crash, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ftrnode:", err)
		return 1
	}
	return 0
}

func demo(nodes, ringSize, links, keys int, crash float64, seed uint64) error {
	ring, err := metric.NewRing(ringSize)
	if err != nil {
		return err
	}
	tr := transport.NewTCP()
	cluster, err := overlay.NewCluster(overlay.Config{
		Ring:        ring,
		Links:       links,
		Seed:        seed,
		CallTimeout: 2 * time.Second,
	}, tr)
	if err != nil {
		return err
	}
	defer cluster.Close()
	src := rng.New(seed)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Printf("starting %d TCP nodes on a ring of %d ids...\n", nodes, ringSize)
	points := map[metric.Point]bool{}
	for len(points) < nodes {
		p := metric.Point(src.Intn(ringSize))
		if points[p] {
			continue
		}
		if _, err := cluster.AddNode(ctx, p); err != nil {
			return fmt.Errorf("add node %d: %w", p, err)
		}
		points[p] = true
	}
	cluster.MaintainAll(ctx)
	if addr, ok := tr.Addr(transport.NodeID(cluster.Nodes()[0])); ok {
		fmt.Printf("  e.g. node %d listens on %s\n", cluster.Nodes()[0], addr)
	}

	fmt.Printf("storing %d keys...\n", keys)
	writer, err := cluster.RandomNode()
	if err != nil {
		return err
	}
	stored := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("resource-%03d", i)
		v := fmt.Sprintf("payload-%03d", i)
		if _, err := writer.Put(ctx, k, v); err != nil {
			return fmt.Errorf("put %q: %w", k, err)
		}
		stored[k] = v
	}

	toCrash := int(crash * float64(cluster.Size()))
	fmt.Printf("crashing %d of %d nodes without warning...\n", toCrash, cluster.Size())
	for i := 0; i < toCrash; i++ {
		pts := cluster.Nodes()
		victim := pts[src.Intn(len(pts))]
		if victim == writer.ID() {
			continue
		}
		if err := cluster.CrashNode(victim); err != nil {
			return err
		}
	}

	fmt.Println("running self-healing maintenance...")
	cluster.MaintainAll(ctx)
	cluster.MaintainAll(ctx)

	fmt.Println("verifying lookups after damage...")
	reader, err := cluster.RandomNode()
	if err != nil {
		return err
	}
	found, lost := 0, 0
	for k, want := range stored {
		v, ok, err := reader.Get(ctx, k)
		if err != nil {
			return fmt.Errorf("get %q: %w", k, err)
		}
		if ok && v == want {
			found++
		} else {
			lost++ // key lived on a crashed node: data loss without replication
		}
	}
	fmt.Printf("  %d/%d keys still resolvable (%d lost with their crashed owners)\n",
		found, len(stored), lost)
	fmt.Println("note: lost keys held by crashed owners are expected — the paper's design")
	fmt.Println("routes around failures; durability would need replication on top.")
	return nil
}
