package main

import "testing"

// The demo is an end-to-end smoke of the TCP overlay: nodes start,
// join, store, crash, heal, and verify — any protocol regression shows
// up here as an error.
func TestDemoSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP demo")
	}
	if err := demo(8, 1024, 4, 8, 0.25, 3); err != nil {
		t.Fatal(err)
	}
}

func TestDemoNoCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP demo")
	}
	if err := demo(4, 256, 3, 4, 0, 5); err != nil {
		t.Fatal(err)
	}
}
