package repro

// Benchmark harness: one benchmark per paper table row / figure /
// ablation, each delegating to the shared experiment registry at a
// bench-friendly scale. `go test -bench=. -benchmem` regenerates the
// full evaluation; per-experiment tables land in the benchmark log via
// b.Log at -v, and cmd/ftrbench writes them to files.
//
// Custom metrics: benchmarks report ns/op for one full experiment run
// plus, where meaningful, the headline scalar of the artifact
// (mean-hops or failed-fraction) via b.ReportMetric, so regressions in
// routing quality — not just speed — show up in benchstat diffs.

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

// benchParams keeps every experiment fast enough to run repeatedly
// under -bench while preserving the paper's qualitative shape.
func benchParams() experiments.Params {
	return experiments.Params{N: 1 << 11, Trials: 2, Msgs: 50, Seed: 1, Workers: 4}
}

// runExperiment is the shared benchmark body.
func runExperiment(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	p := benchParams()
	var last *sim.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id, p)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil && metricCol >= 0 && len(last.Rows) > 0 {
		row := last.Rows[len(last.Rows)-1]
		if metricCol < len(row) {
			if v, err := strconv.ParseFloat(row[metricCol], 64); err == nil {
				b.ReportMetric(v, metricName)
			}
		}
	}
	if last != nil {
		b.Log("\n" + last.String())
	}
}

// --- Table 1 ---------------------------------------------------------

func BenchmarkTable1SingleLink(b *testing.B) {
	runExperiment(b, "table1.nofail.l1", 1, "mean-hops")
}

func BenchmarkTable1MultiLink(b *testing.B) {
	runExperiment(b, "table1.nofail.multi", 1, "mean-hops")
}

func BenchmarkTable1Deterministic(b *testing.B) {
	runExperiment(b, "table1.nofail.detb", 1, "mean-hops")
}

func BenchmarkTable1LinkFailure(b *testing.B) {
	runExperiment(b, "table1.linkfail.multi", 1, "mean-hops")
}

func BenchmarkTable1DetLinkFailure(b *testing.B) {
	runExperiment(b, "table1.linkfail.detb", 1, "mean-hops")
}

func BenchmarkTable1BinomialNodes(b *testing.B) {
	runExperiment(b, "table1.nodefail.binomial", 1, "mean-hops")
}

func BenchmarkTable1GeneralNodeFailure(b *testing.B) {
	runExperiment(b, "table1.nodefail.general", 1, "mean-hops")
}

// --- Figures ---------------------------------------------------------

func BenchmarkFigure5Construction(b *testing.B) {
	runExperiment(b, "fig5a", -1, "")
}

func BenchmarkFigure5Error(b *testing.B) {
	runExperiment(b, "fig5b", -1, "")
}

func BenchmarkFigure6FailedSearches(b *testing.B) {
	runExperiment(b, "fig6a", 3, "failed-frac-backtrack-p0.8")
}

func BenchmarkFigure6DeliveryTime(b *testing.B) {
	runExperiment(b, "fig6b", 3, "mean-hops-backtrack-p0.8")
}

func BenchmarkFigure7HeuristicVsIdeal(b *testing.B) {
	runExperiment(b, "fig7", 1, "failed-frac-constructed-p0.9")
}

// --- Ablations and comparisons --------------------------------------

func BenchmarkAblationReplacement(b *testing.B) {
	runExperiment(b, "ablation.replacement", -1, "")
}

func BenchmarkAblationBacktrackMemory(b *testing.B) {
	runExperiment(b, "ablation.backtrack", 1, "failed-frac-mem20")
}

func BenchmarkAblationSidedness(b *testing.B) {
	runExperiment(b, "ablation.sidedness", -1, "")
}

func BenchmarkAblationExponent(b *testing.B) {
	runExperiment(b, "ablation.exponent", -1, "")
}

func BenchmarkBaselines(b *testing.B) {
	runExperiment(b, "baselines", -1, "")
}

func BenchmarkTheoryCrossCheck(b *testing.B) {
	runExperiment(b, "theory", -1, "")
}

func BenchmarkFaultToleranceComparison(b *testing.B) {
	runExperiment(b, "ext.faultcompare", 1, "failed-frac-backtrack-p0.7")
}

func BenchmarkExtension2D(b *testing.B) {
	runExperiment(b, "ext.2d", -1, "")
}

func BenchmarkExtensionByzantine(b *testing.B) {
	runExperiment(b, "ext.byzantine", 3, "success-4copies-p0.3")
}

func BenchmarkExtensionPhysicalFailures(b *testing.B) {
	runExperiment(b, "ext.physical", -1, "")
}

func BenchmarkAblationSpace(b *testing.B) {
	runExperiment(b, "ablation.space", -1, "")
}

func BenchmarkExtensionChurn(b *testing.B) {
	runExperiment(b, "ext.churn", 1, "failed-frac-final")
}

func BenchmarkTable1Bounds(b *testing.B) {
	runExperiment(b, "table1.bounds", -1, "")
}

// --- Micro-benchmarks of the primitives ------------------------------
// These isolate the costs behind the experiment numbers: building a
// network, one greedy search, one arrival.

func BenchmarkMicroBuildIdeal(b *testing.B) {
	ring, err := metric.NewRing(1 << 14)
	if err != nil {
		b.Fatal(err)
	}
	cfg := graph.PaperConfig(14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.BuildIdeal(ring, cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSearch(b *testing.B) {
	const n = 1 << 14
	ring, err := metric.NewRing(n)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(14), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := route.New(g, route.Options{})
	src := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := metric.Point(src.Intn(n))
		to := metric.Point(src.Intn(n))
		if _, err := r.Route(src, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSearchDamaged(b *testing.B) {
	const n = 1 << 14
	ring, err := metric.NewRing(n)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(14), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	for i := 0; i < n/2; i++ {
		g.Fail(metric.Point(src.Intn(n)))
	}
	r := route.New(g, route.Options{DeadEnd: route.Backtrack})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, ok := g.RandomAlive(src)
		if !ok {
			b.Fatal("no live nodes")
		}
		to, ok := g.RandomAlive(src)
		if !ok || from == to {
			continue
		}
		if _, err := r.Route(src, from, to); err != nil {
			b.Fatal(err)
		}
	}
}
