// Package viz renders small ASCII visualizations for the examples and
// CLI output: sparklines of value series, horizontal bar charts of
// histograms, and ring diagrams of search paths. Pure text, no
// terminal-control sequences, safe to pipe into files.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mathx"
	"repro/internal/metric"
)

// sparkLevels are the eighth-block glyphs, lowest to highest.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip, scaling to the
// observed min/max. Empty input yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Bars renders label/value pairs as a horizontal bar chart of at most
// `width` characters per bar, scaled to the maximum value.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if width < 1 {
		width = 40
	}
	var max float64
	labelWidth := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s %s %v\n", labelWidth, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}

// HistogramBars renders the first `buckets` non-empty buckets of a
// histogram as bars of probability mass.
func HistogramBars(h *mathx.Histogram, buckets, width int) string {
	if h == nil || buckets < 1 {
		return ""
	}
	var labels []string
	var values []float64
	for i := 0; i < h.Buckets() && len(labels) < buckets; i++ {
		if h.Count(i) == 0 {
			continue
		}
		labels = append(labels, h.BucketLabel(i))
		values = append(values, h.Probability(i))
	}
	return Bars(labels, values, width)
}

// LoadProfile renders a per-node load histogram (e.g.
// load.Result.LoadHistogram) as a bar chart: one bar per bucket, sized
// by the number of nodes whose load falls in it, preceded by the
// idle-node count (load.Result.IdleNodes). Empty when no node carried
// load.
func LoadProfile(h *mathx.Histogram, idle, width int) string {
	if h == nil || h.Total() == 0 {
		return ""
	}
	labels := []string{"idle"}
	values := []float64{float64(idle)}
	for i := 0; i < h.Buckets(); i++ {
		if h.Count(i) == 0 {
			continue
		}
		labels = append(labels, "load "+h.BucketLabel(i))
		values = append(values, float64(h.Count(i)))
	}
	return Bars(labels, values, width)
}

// ThroughputLatency renders a latency-vs-throughput curve (e.g. the
// points of a load.SweepResult) as a fixed-size ASCII scatter plot:
// throughput on the x axis, latency on the y axis, one '*' per point.
// The capacity knee reads as the column where the points turn vertical —
// throughput stops growing while latency climbs. Axis extents are
// printed in the margins; mismatched or empty inputs yield "".
func ThroughputLatency(throughput, latency []float64, width, height int) string {
	if len(throughput) == 0 || len(throughput) != len(latency) {
		return ""
	}
	if width < 8 {
		width = 48
	}
	if height < 4 {
		height = 12
	}
	maxX, maxY := 0.0, 0.0
	for i := range throughput {
		if math.IsNaN(throughput[i]) || math.IsNaN(latency[i]) {
			continue
		}
		if throughput[i] > maxX {
			maxX = throughput[i]
		}
		if latency[i] > maxY {
			maxY = latency[i]
		}
	}
	if maxX == 0 || maxY == 0 {
		return ""
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for i := range throughput {
		// NaN points are unplottable (int(NaN) is poison); a negative or
		// overscale coordinate would index out of the grid.
		if math.IsNaN(throughput[i]) || math.IsNaN(latency[i]) {
			continue
		}
		c := int(throughput[i] / maxX * float64(width-1))
		r := int(latency[i] / maxY * float64(height-1))
		if c < 0 || c >= width || r < 0 || r >= height {
			continue
		}
		grid[height-1-r][c] = '*'
	}
	var b strings.Builder
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%8.1f |", maxY)
		case height - 1:
			fmt.Fprintf(&b, "%8.1f |", 0.0)
		default:
			b.WriteString("         |")
		}
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("         +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "          0%*s\n", width-1, fmt.Sprintf("%.1f", maxX))
	fmt.Fprintf(&b, "          p99 latency (ticks) vs throughput (msgs/tick)\n")
	return b.String()
}

// Timeline renders a panel of aligned sparkline rows over a shared
// virtual-time axis — one row per series, each scaled to its own
// min/max (annotated in the right margin) — the rendering behind the
// telemetry window panel (telemetry.Recorder.PanelSeries). Series
// longer than width are downsampled by taking each bucket's maximum,
// which keeps spikes visible; NaN cells render as blanks and never
// contribute to a row's scale. Empty input, zero-length series, or
// mismatched label/series or series/series lengths yield "".
func Timeline(labels []string, series [][]float64, width int) string {
	if len(labels) == 0 || len(labels) != len(series) {
		return ""
	}
	n := len(series[0])
	if n == 0 {
		return ""
	}
	for _, s := range series {
		if len(s) != n {
			return ""
		}
	}
	if width < 8 {
		width = 64
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for i, s := range series {
		row := downsampleMax(s, width)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		var spark strings.Builder
		for _, v := range row {
			if math.IsNaN(v) {
				spark.WriteByte(' ')
				continue
			}
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkLevels) {
				idx = len(sparkLevels) - 1
			}
			spark.WriteRune(sparkLevels[idx])
		}
		if hi < lo {
			// Every cell was NaN: no scale to annotate.
			fmt.Fprintf(&b, "%-*s %s\n", labelWidth, labels[i], spark.String())
			continue
		}
		fmt.Fprintf(&b, "%-*s %s  [%.4g, %.4g]\n", labelWidth, labels[i], spark.String(), lo, hi)
	}
	return b.String()
}

// downsampleMax shrinks s to at most width cells, each the maximum of
// its contiguous source bucket (NaN entries ignored; an all-NaN bucket
// stays NaN so Timeline renders it blank).
func downsampleMax(s []float64, width int) []float64 {
	if len(s) <= width {
		return s
	}
	out := make([]float64, width)
	for i := range out {
		lo := i * len(s) / width
		hi := (i + 1) * len(s) / width
		best, any := 0.0, false
		for _, v := range s[lo:hi] {
			if math.IsNaN(v) {
				continue
			}
			if !any || v > best {
				best, any = v, true
			}
		}
		if !any {
			out[i] = math.NaN()
			continue
		}
		out[i] = best
	}
	return out
}

// ReplicaOverlay renders the delivery fan-out of replicated traffic
// (load.Result.ServedBy): a point-index strip marking every serving
// point with 'R' ('·' elsewhere), followed by one bar per serving
// point sized by the deliveries it absorbed, hottest first. A single
// bar means all traffic still converges on one copy; k balanced bars
// are replication doing its job. Empty when nothing was served.
func ReplicaOverlay(servedBy []int, width int) string {
	n := len(servedBy)
	if n == 0 {
		return ""
	}
	if width < 8 {
		width = 48
	}
	type server struct {
		at    metric.Point
		count int
	}
	var servers []server
	for p, c := range servedBy {
		if c > 0 {
			servers = append(servers, server{metric.Point(p), c})
		}
	}
	if len(servers) == 0 {
		return ""
	}
	cells := make([]rune, width)
	for i := range cells {
		cells[i] = '·'
	}
	for _, s := range servers {
		c := int(s.at) * width / n
		if c >= width {
			c = width - 1
		}
		cells[c] = 'R'
	}
	sort.Slice(servers, func(i, j int) bool {
		if servers[i].count != servers[j].count {
			return servers[i].count > servers[j].count
		}
		return servers[i].at < servers[j].at
	})
	labels := make([]string, len(servers))
	values := make([]float64, len(servers))
	for i, s := range servers {
		labels[i] = fmt.Sprintf("@%d", s.at)
		values[i] = float64(s.count)
	}
	return string(cells) + "\n" + Bars(labels, values, width)
}

// KneeLadder renders a capacity-knee comparison across configurations
// (e.g. the engine's snapshot / live / live+aggregate modes): one bar
// per configuration sized by its knee throughput, annotated with the
// multiplier over the first row — the baseline. Mismatched or empty
// inputs yield "".
func KneeLadder(labels []string, knees []float64, width int) string {
	if len(labels) != len(knees) || len(labels) == 0 {
		return ""
	}
	if width < 8 {
		width = 40
	}
	base := knees[0]
	annotated := make([]string, len(labels))
	for i, l := range labels {
		annotated[i] = l
		if i > 0 && base > 0 {
			annotated[i] = fmt.Sprintf("%s (%.2fx)", l, knees[i]/base)
		}
	}
	return Bars(annotated, knees, width)
}

// RingPath draws a search path over a ring of n points as a fixed-width
// strip: '·' for untouched regions, '*' for intermediate hops, 'S' for
// the source and 'T' for the target (overriding hops at the same cell).
func RingPath(n int, path []metric.Point, width int) string {
	if n < 1 || width < 3 || len(path) == 0 {
		return ""
	}
	cells := make([]rune, width)
	for i := range cells {
		cells[i] = '·'
	}
	cell := func(p metric.Point) int {
		c := int(p) * width / n
		if c >= width {
			c = width - 1
		}
		return c
	}
	if len(path) > 2 {
		for _, p := range path[1 : len(path)-1] {
			cells[cell(p)] = '*'
		}
	}
	cells[cell(path[0])] = 'S'
	if len(path) > 1 {
		cells[cell(path[len(path)-1])] = 'T'
	}
	return string(cells)
}
