package viz

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mathx"
	"repro/internal/metric"
)

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	// Constant series stays at the floor glyph.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series rendered %q", string(flat))
		}
	}
}

func TestBars(t *testing.T) {
	if Bars([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Error("mismatched lengths should render empty")
	}
	out := Bars([]string{"one", "two"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "one") || !strings.Contains(lines[1], "██") {
		t.Errorf("bars output:\n%s", out)
	}
	// The max bar should be ~twice the min bar.
	c1 := strings.Count(lines[0], "█")
	c2 := strings.Count(lines[1], "█")
	if c2 != 2*c1 {
		t.Errorf("bar scaling wrong: %d vs %d", c1, c2)
	}
	if Bars([]string{"z"}, []float64{3}, 0) == "" {
		t.Error("zero width should fall back to default")
	}
}

func TestHistogramBars(t *testing.T) {
	h := mathx.NewLogHistogram(64)
	for v := 1; v <= 64; v++ {
		h.Add(v)
	}
	out := HistogramBars(h, 3, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 buckets, got %d:\n%s", len(lines), out)
	}
	if HistogramBars(nil, 3, 20) != "" || HistogramBars(h, 0, 20) != "" {
		t.Error("degenerate inputs should render empty")
	}
}

func TestLoadProfile(t *testing.T) {
	if LoadProfile(nil, 0, 20) != "" || LoadProfile(mathx.NewLogHistogram(8), 3, 20) != "" {
		t.Error("loadless profile should render empty")
	}
	// Two idle nodes, two with load 1, one with load 5.
	h := mathx.NewLogHistogram(5)
	h.Add(1)
	h.Add(1)
	h.Add(5)
	out := LoadProfile(h, 2, 20)
	if !strings.Contains(out, "idle") || !strings.Contains(out, "2") {
		t.Errorf("missing idle line:\n%s", out)
	}
	if !strings.Contains(out, "load 1") || !strings.Contains(out, "load 4-7") {
		t.Errorf("missing load buckets:\n%s", out)
	}
}

func TestRingPath(t *testing.T) {
	if RingPath(0, nil, 10) != "" || RingPath(10, nil, 10) != "" || RingPath(10, []metric.Point{1}, 2) != "" {
		t.Error("degenerate inputs should render empty")
	}
	out := RingPath(100, []metric.Point{10, 50, 90}, 50)
	if len([]rune(out)) != 50 {
		t.Fatalf("width = %d", len([]rune(out)))
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "T") || !strings.Contains(out, "*") {
		t.Errorf("markers missing: %q", out)
	}
	// Single-point path renders just the source marker.
	solo := RingPath(100, []metric.Point{42}, 50)
	if strings.Count(solo, "S") != 1 || strings.Contains(solo, "T") {
		t.Errorf("solo path: %q", solo)
	}
	// Two-point path: S and T, no intermediate.
	pair := RingPath(100, []metric.Point{5, 95}, 50)
	if !strings.Contains(pair, "S") || !strings.Contains(pair, "T") || strings.Contains(pair, "*") {
		t.Errorf("pair path: %q", pair)
	}
}

func TestThroughputLatency(t *testing.T) {
	if ThroughputLatency(nil, nil, 40, 10) != "" {
		t.Error("empty input should render empty")
	}
	if ThroughputLatency([]float64{1}, []float64{1, 2}, 40, 10) != "" {
		t.Error("mismatched input should render empty")
	}
	if ThroughputLatency([]float64{0}, []float64{0}, 40, 10) != "" {
		t.Error("all-zero input should render empty")
	}
	// A classic knee: throughput grows then plateaus while latency
	// explodes.
	thr := []float64{1, 2, 4, 8, 15, 16, 16.5, 16.6}
	lat := []float64{8, 8, 8, 9, 12, 30, 60, 120}
	out := ThroughputLatency(thr, lat, 40, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // 10 grid rows + axis + x labels + caption
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if strings.Count(out, "*") == 0 || strings.Count(out, "*") > len(thr) {
		t.Errorf("point count off:\n%s", out)
	}
	if !strings.Contains(lines[0], "120.0") || !strings.Contains(lines[9], "0.0") {
		t.Errorf("y-axis extents missing:\n%s", out)
	}
	if !strings.Contains(lines[11], "16.6") {
		t.Errorf("x-axis extent missing:\n%s", out)
	}
	// The loaded corner: the max-latency point sits in the top row.
	if !strings.Contains(lines[0], "*") {
		t.Errorf("top row should hold the saturated point:\n%s", out)
	}
}

func TestReplicaOverlay(t *testing.T) {
	served := make([]int, 100)
	served[10] = 40
	served[60] = 80
	served[90] = 20
	out := ReplicaOverlay(served, 50)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("overlay lines = %d, want strip + 3 bars:\n%s", len(lines), out)
	}
	if strings.Count(lines[0], "R") != 3 {
		t.Errorf("strip should mark 3 replicas: %q", lines[0])
	}
	// Bars are hottest-first.
	for i, want := range []string{"@60", "@10", "@90"} {
		if !strings.HasPrefix(lines[i+1], want) {
			t.Errorf("bar %d = %q, want prefix %q", i, lines[i+1], want)
		}
	}
	if ReplicaOverlay(nil, 40) != "" {
		t.Error("empty input should render empty")
	}
	if ReplicaOverlay(make([]int, 8), 40) != "" {
		t.Error("all-zero input should render empty")
	}
}

func TestKneeLadder(t *testing.T) {
	s := KneeLadder([]string{"snapshot", "live", "live+aggregate"}, []float64{10, 9.5, 25}, 30)
	if s == "" {
		t.Fatal("empty ladder for valid input")
	}
	for _, want := range []string{"snapshot", "live (0.95x)", "live+aggregate (2.50x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("ladder missing %q:\n%s", want, s)
		}
	}
	if KneeLadder([]string{"a"}, []float64{1, 2}, 30) != "" {
		t.Error("mismatched inputs should yield empty output")
	}
	if KneeLadder(nil, nil, 30) != "" {
		t.Error("empty inputs should yield empty output")
	}
	// A zero baseline must not divide by zero — bars render unannotated.
	if s := KneeLadder([]string{"a", "b"}, []float64{0, 2}, 30); s == "" || strings.Contains(s, "x)") {
		t.Errorf("zero baseline mishandled:\n%s", s)
	}
}

func TestTimeline(t *testing.T) {
	if Timeline(nil, nil, 40) != "" {
		t.Error("empty input should render empty")
	}
	if Timeline([]string{"a"}, [][]float64{{1}, {2}}, 40) != "" {
		t.Error("mismatched label/series counts should render empty")
	}
	if Timeline([]string{"a", "b"}, [][]float64{{1, 2}, {1}}, 40) != "" {
		t.Error("ragged series should render empty")
	}
	if Timeline([]string{"a"}, [][]float64{{}}, 40) != "" {
		t.Error("zero-length series should render empty")
	}
	// A single point renders one flat cell without dividing by zero.
	one := Timeline([]string{"solo"}, [][]float64{{5}}, 40)
	if one == "" || !strings.Contains(one, "solo") || !strings.Contains(one, "[5, 5]") {
		t.Errorf("single-point panel off:\n%q", one)
	}
	labels := []string{"in-flight", "inject"}
	series := [][]float64{
		{0, 1, 2, 4, 8, 4, 2, 1},
		{1, 1, 1, 1, 1, 1, 1, 1},
	}
	out := Timeline(labels, series, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "in-flight") || !strings.HasPrefix(lines[1], "inject") {
		t.Errorf("labels off:\n%s", out)
	}
	if !strings.Contains(lines[0], "[0, 8]") || !strings.Contains(lines[1], "[1, 1]") {
		t.Errorf("min/max annotations off:\n%s", out)
	}
	// Each row scales independently: the flat row stays flat.
	if strings.Contains(lines[1], "█") && strings.Contains(lines[1], "▁") {
		t.Errorf("flat series should render one level:\n%s", out)
	}
}

func TestTimelineNaNAndDownsample(t *testing.T) {
	nan := math.NaN()
	out := Timeline([]string{"gaps"}, [][]float64{{1, nan, 3, nan}}, 40)
	if out == "" || !strings.Contains(out, "[1, 3]") {
		t.Fatalf("NaN cells should be skipped in scale:\n%q", out)
	}
	if !strings.Contains(out, " ") {
		t.Errorf("NaN cells should render blank:\n%q", out)
	}
	// An all-NaN series renders blanks and no scale annotation.
	blank := Timeline([]string{"void"}, [][]float64{{nan, nan}}, 40)
	if blank == "" || strings.Contains(blank, "[") {
		t.Errorf("all-NaN row should carry no annotation:\n%q", blank)
	}
	// Longer-than-width series downsample by bucket max: the lone spike
	// survives.
	long := make([]float64, 400)
	long[237] = 9
	ds := Timeline([]string{"spike"}, [][]float64{long}, 40)
	if !strings.Contains(ds, "█") || !strings.Contains(ds, "[0, 9]") {
		t.Errorf("downsample lost the spike:\n%q", ds)
	}
	row := strings.TrimRight(strings.SplitN(ds, "\n", 2)[0], "\n")
	if n := len([]rune(row)); n > len("spike")+1+40+len("  [0, 9]") {
		t.Errorf("row not downsampled to width: %d runes:\n%q", n, ds)
	}
}

func TestThroughputLatencyNaN(t *testing.T) {
	nan := math.NaN()
	// NaN points are dropped; the finite ones still plot.
	out := ThroughputLatency([]float64{1, nan, 4}, []float64{2, 3, nan}, 40, 10)
	if out == "" {
		t.Fatal("finite points should still render")
	}
	if got := strings.Count(out, "*"); got != 1 {
		t.Errorf("plotted %d points, want 1 (the all-finite one):\n%s", got, out)
	}
	// All-NaN input has no extent to scale against.
	if ThroughputLatency([]float64{nan}, []float64{nan}, 40, 10) != "" {
		t.Error("all-NaN input should render empty")
	}
	// A single finite point renders without dividing by zero.
	if ThroughputLatency([]float64{3}, []float64{5}, 40, 10) == "" {
		t.Error("single point should render")
	}
}

func TestKneeLadderSinglePoint(t *testing.T) {
	s := KneeLadder([]string{"only"}, []float64{7}, 30)
	if s == "" || !strings.Contains(s, "only") {
		t.Fatalf("single-point ladder off:\n%q", s)
	}
	// The baseline row carries no self-referential (1.00x) suffix... or
	// if it does, it must at least be well-formed; pin current behavior:
	if strings.Count(s, "\n") != 1 {
		t.Errorf("want exactly one row:\n%q", s)
	}
}
