package sim

import (
	"container/heap"
	"errors"
	"math"

	"repro/internal/rng"
)

// Discrete-event churn simulation: the paper's setting has "nodes
// arrive and depart at a high rate" (§1). EventSim schedules arrivals
// and departures as Poisson processes over virtual time and drives
// caller-supplied handlers, so churn experiments can model sustained,
// overlapping membership change rather than synchronized batch cycles.

// EventKind distinguishes scheduled events.
type EventKind int

const (
	// Arrive adds one node.
	Arrive EventKind = iota + 1
	// Depart removes one node.
	Depart
	// Probe is a measurement tick.
	Probe
)

// Event is one scheduled occurrence.
type Event struct {
	Time float64
	Kind EventKind
}

// eventQueue is a min-heap over event time.
type eventQueue []Event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].Time < q[j].Time }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(Event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// ChurnConfig parameterizes an event-driven churn run.
type ChurnConfig struct {
	// ArrivalRate and DepartureRate are Poisson intensities (events
	// per unit virtual time).
	ArrivalRate   float64
	DepartureRate float64
	// ProbeInterval schedules measurement ticks; 0 disables probes.
	ProbeInterval float64
	// Horizon is the virtual end time.
	Horizon float64
}

// Validate checks the configuration.
func (c ChurnConfig) Validate() error {
	if c.ArrivalRate < 0 || c.DepartureRate < 0 {
		return errors.New("sim: negative churn rate")
	}
	if c.Horizon <= 0 {
		return errors.New("sim: horizon must be positive")
	}
	if c.ProbeInterval < 0 {
		return errors.New("sim: negative probe interval")
	}
	return nil
}

// ChurnHandlers receive the events. A handler returning an error aborts
// the run. Handlers may be nil to ignore an event kind.
type ChurnHandlers struct {
	OnArrive func(t float64) error
	OnDepart func(t float64) error
	OnProbe  func(t float64) error
}

// RunChurn executes the event simulation: exponential inter-event times
// for arrivals and departures, fixed-interval probes, all merged in
// time order. It returns the number of events dispatched per kind.
func RunChurn(cfg ChurnConfig, h ChurnHandlers, src *rng.Source) (map[EventKind]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q := &eventQueue{}
	heap.Init(q)
	expo := func(rate float64) float64 {
		if rate <= 0 {
			return math.Inf(1)
		}
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		return -math.Log(u) / rate
	}
	if t := expo(cfg.ArrivalRate); t <= cfg.Horizon {
		heap.Push(q, Event{Time: t, Kind: Arrive})
	}
	if t := expo(cfg.DepartureRate); t <= cfg.Horizon {
		heap.Push(q, Event{Time: t, Kind: Depart})
	}
	if cfg.ProbeInterval > 0 && cfg.ProbeInterval <= cfg.Horizon {
		heap.Push(q, Event{Time: cfg.ProbeInterval, Kind: Probe})
	}

	counts := map[EventKind]int{}
	for q.Len() > 0 {
		ev := heap.Pop(q).(Event)
		if ev.Time > cfg.Horizon {
			continue
		}
		var handler func(float64) error
		switch ev.Kind {
		case Arrive:
			handler = h.OnArrive
			if t := ev.Time + expo(cfg.ArrivalRate); t <= cfg.Horizon {
				heap.Push(q, Event{Time: t, Kind: Arrive})
			}
		case Depart:
			handler = h.OnDepart
			if t := ev.Time + expo(cfg.DepartureRate); t <= cfg.Horizon {
				heap.Push(q, Event{Time: t, Kind: Depart})
			}
		case Probe:
			handler = h.OnProbe
			if t := ev.Time + cfg.ProbeInterval; t <= cfg.Horizon {
				heap.Push(q, Event{Time: t, Kind: Probe})
			}
		}
		counts[ev.Kind]++
		if handler != nil {
			if err := handler(ev.Time); err != nil {
				return counts, err
			}
		}
	}
	return counts, nil
}
