package sim

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

func TestSearchStatsRecordAndMerge(t *testing.T) {
	var s SearchStats
	s.Record(route.Result{Delivered: true, Hops: 5, Reroutes: 1})
	s.Record(route.Result{Delivered: false, Hops: 3, Backtracks: 2})
	if s.Searches != 2 || s.Delivered != 1 || s.HopsOK != 5 || s.HopsFail != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.Reroutes != 1 || s.Backtracks != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.FailedFraction() != 0.5 {
		t.Errorf("failed fraction = %v", s.FailedFraction())
	}
	if s.MeanHops() != 5 {
		t.Errorf("mean hops = %v", s.MeanHops())
	}
	var other SearchStats
	other.Record(route.Result{Delivered: true, Hops: 7})
	s.Merge(other)
	if s.Searches != 3 || s.Delivered != 2 || s.HopsOK != 12 {
		t.Errorf("after merge = %+v", s)
	}
}

func TestSearchStatsZeroValues(t *testing.T) {
	var s SearchStats
	if s.FailedFraction() != 0 || s.MeanHops() != 0 {
		t.Error("zero stats should report zeros")
	}
}

func TestRunAggregates(t *testing.T) {
	stats, err := Run(1, 10, 4, func(trial int, src *rng.Source) (SearchStats, error) {
		var s SearchStats
		s.Record(route.Result{Delivered: true, Hops: trial})
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Searches != 10 || stats.Delivered != 10 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.HopsOK != 45 { // 0+1+...+9
		t.Errorf("hops = %d, want 45", stats.HopsOK)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(trial int, src *rng.Source) (SearchStats, error) {
		var s SearchStats
		s.Record(route.Result{Delivered: src.Bool(0.5), Hops: src.Intn(100)})
		return s, nil
	}
	a, err := Run(7, 50, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(7, 50, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("worker count changed results: %+v vs %+v", a, b)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	var calls int32
	_, err := Run(1, 100, 4, func(trial int, src *rng.Source) (SearchStats, error) {
		atomic.AddInt32(&calls, 1)
		if trial == 3 {
			return SearchStats{}, sentinel
		}
		return SearchStats{}, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
	if atomic.LoadInt32(&calls) == 100 {
		t.Error("error should abort remaining trials (at least sometimes)")
	}
}

func TestRunValidatesTrials(t *testing.T) {
	if _, err := Run(1, 0, 1, nil); err == nil {
		t.Error("zero trials should error")
	}
}

func TestMeasureSearches(t *testing.T) {
	sp, err := metric.NewRing(256)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(sp, graph.PaperConfig(8), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	r := route.New(g, route.Options{})
	stats, err := MeasureSearches(g, r, rng.New(3), 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Searches != 100 || stats.Delivered != 100 {
		t.Errorf("failure-free network should deliver all: %+v", stats)
	}
	if stats.MeanHops() <= 0 {
		t.Error("mean hops should be positive")
	}
}

func TestMeasureSearchesNeedsTwoNodes(t *testing.T) {
	sp, err := metric.NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(sp)
	g.Fail(1)
	g.Fail(2)
	g.Fail(3)
	r := route.New(g, route.Options{})
	if _, err := MeasureSearches(g, r, rng.New(1), 10); err == nil {
		t.Error("single live node should error")
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Add("1", "2")
	tb.AddValues(3.14159, 42)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting wrong: %q", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("int formatting wrong: %q", out)
	}
}

func TestTableShortRowPadding(t *testing.T) {
	tb := NewTable("", "x", "y", "z")
	tb.Add("only")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "col,1", "col2")
	tb.Add(`va"l`, "plain")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"col,1"`) {
		t.Errorf("comma header not quoted: %q", out)
	}
	if !strings.Contains(out, `"va""l"`) {
		t.Errorf("quote not escaped: %q", out)
	}
	if !strings.HasSuffix(out, "plain\n") {
		t.Errorf("csv = %q", out)
	}
}

func TestFFormats(t *testing.T) {
	if F(3) != "3" || F("x") != "x" || F(2.0) != "2" || F(float32(1.5)) != "1.5" {
		t.Error("F formatting broken")
	}
	if F(true) != "true" {
		t.Error("default formatting broken")
	}
}
