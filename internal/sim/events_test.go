package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestChurnConfigValidation(t *testing.T) {
	bad := []ChurnConfig{
		{ArrivalRate: -1, Horizon: 10},
		{DepartureRate: -1, Horizon: 10},
		{ArrivalRate: 1, Horizon: 0},
		{ArrivalRate: 1, Horizon: 10, ProbeInterval: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, cfg)
		}
	}
	if _, err := RunChurn(ChurnConfig{}, ChurnHandlers{}, rng.New(1)); err == nil {
		t.Error("invalid config should abort RunChurn")
	}
}

func TestChurnEventRates(t *testing.T) {
	cfg := ChurnConfig{ArrivalRate: 5, DepartureRate: 2, Horizon: 1000}
	counts, err := RunChurn(cfg, ChurnHandlers{}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	wantArrive := cfg.ArrivalRate * cfg.Horizon
	wantDepart := cfg.DepartureRate * cfg.Horizon
	if math.Abs(float64(counts[Arrive])-wantArrive) > 5*math.Sqrt(wantArrive) {
		t.Errorf("arrivals = %d, want ≈ %v", counts[Arrive], wantArrive)
	}
	if math.Abs(float64(counts[Depart])-wantDepart) > 5*math.Sqrt(wantDepart) {
		t.Errorf("departures = %d, want ≈ %v", counts[Depart], wantDepart)
	}
}

func TestChurnProbesAreRegular(t *testing.T) {
	var times []float64
	cfg := ChurnConfig{ProbeInterval: 2.5, Horizon: 20}
	_, err := RunChurn(cfg, ChurnHandlers{
		OnProbe: func(tm float64) error { times = append(times, tm); return nil },
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 8 { // 2.5, 5, …, 20
		t.Fatalf("probes = %v", times)
	}
	for i, tm := range times {
		if math.Abs(tm-2.5*float64(i+1)) > 1e-9 {
			t.Errorf("probe %d at %v", i, tm)
		}
	}
}

func TestChurnEventsInTimeOrder(t *testing.T) {
	last := -1.0
	cfg := ChurnConfig{ArrivalRate: 3, DepartureRate: 3, ProbeInterval: 1, Horizon: 50}
	check := func(tm float64) error {
		if tm < last {
			t.Fatalf("time went backwards: %v after %v", tm, last)
		}
		last = tm
		return nil
	}
	if _, err := RunChurn(cfg, ChurnHandlers{OnArrive: check, OnDepart: check, OnProbe: check}, rng.New(4)); err != nil {
		t.Fatal(err)
	}
}

func TestChurnHandlerErrorAborts(t *testing.T) {
	sentinel := errors.New("stop")
	n := 0
	cfg := ChurnConfig{ArrivalRate: 10, Horizon: 100}
	counts, err := RunChurn(cfg, ChurnHandlers{
		OnArrive: func(tm float64) error {
			n++
			if n == 3 {
				return sentinel
			}
			return nil
		},
	}, rng.New(5))
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	if counts[Arrive] != 3 {
		t.Errorf("dispatched %d arrivals before abort, want 3", counts[Arrive])
	}
}

func TestChurnZeroRates(t *testing.T) {
	counts, err := RunChurn(ChurnConfig{Horizon: 10, ProbeInterval: 5}, ChurnHandlers{}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if counts[Arrive] != 0 || counts[Depart] != 0 {
		t.Errorf("zero rates should produce no churn: %v", counts)
	}
	if counts[Probe] != 2 {
		t.Errorf("probes = %d, want 2", counts[Probe])
	}
}
