package sim

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned results table with text and CSV
// renderers; every experiment emits one Table per figure or table row
// group.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form annotations rendered after the rows — the
	// text renderer prints each as a "note: " line, the CSV renderer as
	// a trailing "# " comment — used for run metadata that applies to
	// the table as a whole, like the engine execution plan a sweep
	// resolved to and why.
	Notes []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row. Short rows are padded with empty cells; long rows
// are kept as-is (the renderer widens).
func (t *Table) Add(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	for len(row) < len(t.Columns) {
		row = append(row, "")
	}
	t.Rows = append(t.Rows, row)
}

// AddValues appends a row, formatting each value with F.
func (t *Table) AddValues(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = F(v)
	}
	t.Add(cells...)
}

// Note appends one formatted annotation line, skipping exact
// duplicates (a sweep resolving every row to the same plan notes it
// once).
func (t *Table) Note(format string, args ...interface{}) {
	note := fmt.Sprintf(format, args...)
	for _, n := range t.Notes {
		if n == note {
			return
		}
	}
	t.Notes = append(t.Notes, note)
}

// F formats a value for table output: floats get four significant
// digits, everything else uses the default formatting.
func F(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case int:
		return strconv.Itoa(x)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

func formatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e12 && x > -1e12 {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', 4, 64)
}

// WriteText renders the table as aligned text.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when
// needed). Notes become trailing "# " comment lines — outside the
// rectangular data, but preserved for a human reading the file.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		b.WriteString("# ")
		b.WriteString(note)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return "<table render error>"
	}
	return b.String()
}
