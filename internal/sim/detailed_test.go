package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/route"
)

func TestRunDetailedPreservesOrder(t *testing.T) {
	stats, err := RunDetailed(1, 8, 3, func(trial int, src *rng.Source) (SearchStats, error) {
		var s SearchStats
		s.Record(route.Result{Delivered: true, Hops: trial})
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 8 {
		t.Fatalf("len = %d", len(stats))
	}
	for i, s := range stats {
		if s.HopsOK != i {
			t.Errorf("trial %d landed at index with hops %d", i, s.HopsOK)
		}
	}
}

func TestRunDetailedMatchesRun(t *testing.T) {
	fn := func(trial int, src *rng.Source) (SearchStats, error) {
		var s SearchStats
		for i := 0; i < 10; i++ {
			s.Record(route.Result{Delivered: src.Bool(0.7), Hops: src.Intn(20)})
		}
		return s, nil
	}
	agg, err := Run(5, 12, 4, fn)
	if err != nil {
		t.Fatal(err)
	}
	detailed, err := RunDetailed(5, 12, 4, fn)
	if err != nil {
		t.Fatal(err)
	}
	var folded SearchStats
	for _, s := range detailed {
		folded.Merge(s)
	}
	if folded != agg {
		t.Errorf("detailed fold %+v != aggregate %+v", folded, agg)
	}
}

func TestRunDetailedErrors(t *testing.T) {
	if _, err := RunDetailed(1, 0, 1, nil); err == nil {
		t.Error("zero trials should error")
	}
	sentinel := errors.New("boom")
	if _, err := RunDetailed(1, 10, 2, func(trial int, src *rng.Source) (SearchStats, error) {
		return SearchStats{}, sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestFailedFractionInterval(t *testing.T) {
	mk := func(searches, delivered int) SearchStats {
		return SearchStats{Searches: searches, Delivered: delivered}
	}
	iv := FailedFractionInterval([]SearchStats{mk(10, 5), mk(10, 7), mk(10, 9)})
	// fractions: 0.5, 0.3, 0.1 — mean 0.3.
	if math.Abs(iv.Mean-0.3) > 1e-12 {
		t.Errorf("mean = %v", iv.Mean)
	}
	if iv.Trials != 3 || iv.StdErr <= 0 {
		t.Errorf("interval = %+v", iv)
	}
	if iv.Lo() >= iv.Mean || iv.Hi() <= iv.Mean {
		t.Error("bounds must straddle the mean")
	}
	// Empty trials are skipped.
	iv = FailedFractionInterval([]SearchStats{{}, mk(10, 10)})
	if iv.Trials != 1 || iv.Mean != 0 || iv.StdErr != 0 {
		t.Errorf("single-trial interval = %+v", iv)
	}
	if iv := FailedFractionInterval(nil); iv.Trials != 0 {
		t.Error("empty input should yield zero interval")
	}
}

func TestMeanHopsInterval(t *testing.T) {
	a := SearchStats{Searches: 5, Delivered: 5, HopsOK: 25} // mean 5
	b := SearchStats{Searches: 5, Delivered: 5, HopsOK: 35} // mean 7
	undelivered := SearchStats{Searches: 5}
	iv := MeanHopsInterval([]SearchStats{a, b, undelivered})
	if iv.Trials != 2 || math.Abs(iv.Mean-6) > 1e-12 {
		t.Errorf("interval = %+v", iv)
	}
}

// Shrinking standard error with more trials — the reason the harness
// exposes intervals at all.
func TestIntervalShrinksWithTrials(t *testing.T) {
	fn := func(trial int, src *rng.Source) (SearchStats, error) {
		var s SearchStats
		for i := 0; i < 50; i++ {
			s.Record(route.Result{Delivered: src.Bool(0.5)})
		}
		return s, nil
	}
	few, err := RunDetailed(9, 4, 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunDetailed(9, 64, 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	ivFew := FailedFractionInterval(few)
	ivMany := FailedFractionInterval(many)
	if ivMany.StdErr >= ivFew.StdErr {
		t.Errorf("stderr should shrink: %v (4 trials) vs %v (64 trials)",
			ivFew.StdErr, ivMany.StdErr)
	}
}
