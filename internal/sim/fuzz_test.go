package sim

import (
	"strings"
	"testing"
)

// FuzzTableRendering: arbitrary cell content must render without panics
// and CSV must round-trip structurally (same number of rows, commas
// quoted away).
func FuzzTableRendering(f *testing.F) {
	f.Add("plain", "with,comma", `with"quote`)
	f.Add("", "\n", "multi\nline")
	f.Add("ünïcödé", "…", "🦫")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		tb := NewTable("fuzz", "x", "y")
		tb.Add(a, b)
		tb.Add(c)
		var text, csv strings.Builder
		if err := tb.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := tb.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		// CSV line count: header + one line per row, plus any embedded
		// newlines (which must appear only inside quotes).
		out := csv.String()
		if !strings.HasPrefix(out, "x,y\n") {
			t.Fatalf("csv header mangled: %q", out)
		}
	})
}
