// Package sim is the Monte Carlo experiment harness: it runs repeated
// routing trials over freshly built networks (in parallel across
// deterministic per-trial rng streams), aggregates delivery statistics,
// and renders the text/CSV tables the paper's figures are read from.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

// SearchStats aggregates the outcomes of a set of searches. The zero
// value is ready to use; merge partial results with Merge.
type SearchStats struct {
	Searches   int
	Delivered  int
	HopsOK     int // total hops over delivered searches
	HopsFail   int // total hops over failed searches
	Reroutes   int
	Backtracks int
}

// Record accumulates one search result.
func (s *SearchStats) Record(res route.Result) {
	s.Searches++
	if res.Delivered {
		s.Delivered++
		s.HopsOK += res.Hops
	} else {
		s.HopsFail += res.Hops
	}
	s.Reroutes += res.Reroutes
	s.Backtracks += res.Backtracks
}

// Merge folds other into s.
func (s *SearchStats) Merge(other SearchStats) {
	s.Searches += other.Searches
	s.Delivered += other.Delivered
	s.HopsOK += other.HopsOK
	s.HopsFail += other.HopsFail
	s.Reroutes += other.Reroutes
	s.Backtracks += other.Backtracks
}

// FailedFraction returns the fraction of searches that failed — the
// y-axis of Figure 6(a) and Figure 7.
func (s SearchStats) FailedFraction() float64 {
	if s.Searches == 0 {
		return 0
	}
	return float64(s.Searches-s.Delivered) / float64(s.Searches)
}

// MeanHops returns the mean delivery time of successful searches — the
// y-axis of Figure 6(b). It returns 0 when nothing was delivered.
func (s SearchStats) MeanHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.HopsOK) / float64(s.Delivered)
}

// TrialFunc runs one independent trial (typically: build a network,
// damage it, route some messages) using the provided deterministic rng
// stream, and returns the trial's statistics.
type TrialFunc func(trial int, src *rng.Source) (SearchStats, error)

// Run executes trials Monte Carlo repetitions of fn, fanning them out
// over workers goroutines. Trial i always receives the rng stream
// derived as New(seed).Derive(i), so results are independent of the
// worker count and fully reproducible. The first trial error aborts the
// run and is returned.
func Run(seed uint64, trials, workers int, fn TrialFunc) (SearchStats, error) {
	if trials <= 0 {
		return SearchStats{}, errors.New("sim: trials must be positive")
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > trials {
		workers = trials
	}
	root := rng.New(seed)

	var (
		mu       sync.Mutex
		total    SearchStats
		firstErr error
	)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				stats, err := fn(i, root.Derive(uint64(i)))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				total.Merge(stats)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < trials; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return SearchStats{}, firstErr
	}
	return total, nil
}

// MeasureSearches routes msgs messages between uniformly random live
// source/destination pairs of g using router r, and returns the
// aggregated statistics. This is the inner loop of every experiment in
// §6 ("we repeatedly choose random source and destination nodes that
// have not failed and route a message between them").
func MeasureSearches(g *graph.Graph, r *route.Router, src *rng.Source, msgs int) (SearchStats, error) {
	var stats SearchStats
	if g.AliveCount() < 2 {
		return stats, errors.New("sim: need at least two live nodes")
	}
	for i := 0; i < msgs; i++ {
		from, ok := g.RandomAlive(src)
		if !ok {
			return stats, errors.New("sim: no live source")
		}
		to, ok := randomAliveOther(g, src, from)
		if !ok {
			return stats, errors.New("sim: no live destination")
		}
		res, err := r.Route(src, from, to)
		if err != nil {
			return stats, fmt.Errorf("sim: search %d: %w", i, err)
		}
		stats.Record(res)
	}
	return stats, nil
}

func randomAliveOther(g *graph.Graph, src *rng.Source, not metric.Point) (metric.Point, bool) {
	for i := 0; i < 64; i++ {
		p, ok := g.RandomAlive(src)
		if !ok {
			return 0, false
		}
		if p != not {
			return p, true
		}
	}
	return 0, false
}
