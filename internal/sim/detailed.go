package sim

import (
	"errors"
	"math"
	"sync"

	"repro/internal/rng"
)

// RunDetailed is Run, but preserves each trial's statistics instead of
// folding them together, so callers can attach confidence intervals to
// experiment tables. Trial i's stats land at index i regardless of the
// worker count.
func RunDetailed(seed uint64, trials, workers int, fn TrialFunc) ([]SearchStats, error) {
	if trials <= 0 {
		return nil, errors.New("sim: trials must be positive")
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > trials {
		workers = trials
	}
	root := rng.New(seed)
	out := make([]SearchStats, trials)

	var (
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				stats, err := fn(i, root.Derive(uint64(i)))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				out[i] = stats
			}
		}()
	}
	for i := 0; i < trials; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Interval is a mean with a standard error over trials.
type Interval struct {
	Mean   float64
	StdErr float64
	Trials int
}

// Lo and Hi return the ±2·stderr bounds (≈95 % under normality).
func (iv Interval) Lo() float64 { return iv.Mean - 2*iv.StdErr }

// Hi returns the upper ≈95 % bound.
func (iv Interval) Hi() float64 { return iv.Mean + 2*iv.StdErr }

// FailedFractionInterval aggregates per-trial failed fractions into a
// mean ± stderr interval.
func FailedFractionInterval(trials []SearchStats) Interval {
	return intervalOf(trials, func(s SearchStats) (float64, bool) {
		if s.Searches == 0 {
			return 0, false
		}
		return s.FailedFraction(), true
	})
}

// MeanHopsInterval aggregates per-trial mean delivery times into a mean
// ± stderr interval; trials with no deliveries are skipped.
func MeanHopsInterval(trials []SearchStats) Interval {
	return intervalOf(trials, func(s SearchStats) (float64, bool) {
		if s.Delivered == 0 {
			return 0, false
		}
		return s.MeanHops(), true
	})
}

func intervalOf(trials []SearchStats, metric func(SearchStats) (float64, bool)) Interval {
	values := make([]float64, 0, len(trials))
	for _, s := range trials {
		if v, ok := metric(s); ok {
			values = append(values, v)
		}
	}
	n := len(values)
	if n == 0 {
		return Interval{}
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	if n == 1 {
		return Interval{Mean: mean, Trials: 1}
	}
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n-1))
	return Interval{Mean: mean, StdErr: std / math.Sqrt(float64(n)), Trials: n}
}
