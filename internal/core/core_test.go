package core

import (
	"testing"

	"repro/internal/construct"
)

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Nodes: 1024}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Links != 10 {
		t.Errorf("default links = %d, want lg 1024 = 10", cfg.Links)
	}
	if cfg.Exponent != 1 {
		t.Errorf("default exponent = %v, want 1", cfg.Exponent)
	}
	cfg, err = Config{Nodes: 16, Exponent: ExponentUniform}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Exponent != 0 {
		t.Errorf("uniform exponent = %v, want 0 internally", cfg.Exponent)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1}); err == nil {
		t.Error("single node should error")
	}
	if _, err := New(Config{Nodes: 16, Links: -1}); err == nil {
		t.Error("negative links should error")
	}
	if _, err := New(Config{Nodes: 16, Construction: Heuristic, Exponent: 2}); err == nil {
		t.Error("heuristic with exponent != 1 should error")
	}
}

func TestIdealNetworkSearch(t *testing.T) {
	nw, err := New(Config{Nodes: 1 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Search(3, 700, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Error("failure-free search should deliver")
	}
	if res.Hops <= 0 || res.Hops > 100 {
		t.Errorf("hops = %d", res.Hops)
	}
	st := nw.Stats()
	if st.Nodes != 1024 || st.Alive != 1024 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanDegree != 10 {
		t.Errorf("mean degree = %v, want 10", st.MeanDegree)
	}
	if nw.Config().Links != 10 {
		t.Error("resolved config not exposed")
	}
}

func TestRandomSearchWorkload(t *testing.T) {
	nw, err := New(Config{Nodes: 512, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		res, err := nw.RandomSearch(SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Fatal("failure-free random search failed")
		}
	}
}

func TestLineSpace(t *testing.T) {
	nw, err := New(Config{Nodes: 256, Space: Line, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Search(0, 255, SearchOptions{Sidedness: OneSided})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Error("line one-sided search failed")
	}
}

func TestFailureInjection(t *testing.T) {
	nw, err := New(Config{Nodes: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := nw.FailNodes(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if crashed != 300 || nw.Alive() != 700 {
		t.Errorf("crashed %d, alive %d", crashed, nw.Alive())
	}
	down, err := nw.FailLinks(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if down == 0 {
		t.Error("expected some links down")
	}
	more, err := nw.FailNodesProb(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if more == 0 {
		t.Error("expected some probabilistic crashes")
	}
	// Searches still mostly work with backtracking.
	delivered := 0
	for i := 0; i < 50; i++ {
		res, err := nw.RandomSearch(SearchOptions{DeadEnd: Backtrack})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			delivered++
		}
	}
	if delivered < 25 {
		t.Errorf("only %d/50 delivered under moderate damage", delivered)
	}
}

func TestHeuristicNetworkChurn(t *testing.T) {
	nw, err := New(Config{Nodes: 256, Construction: Heuristic, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Alive() != 256 {
		t.Fatalf("alive = %d", nw.Alive())
	}
	// Churn through the facade.
	if err := nw.RemoveNode(17); err != nil {
		t.Fatal(err)
	}
	if nw.Alive() != 255 {
		t.Errorf("alive after removal = %d", nw.Alive())
	}
	if err := nw.AddNode(17); err != nil {
		t.Fatal(err)
	}
	if nw.Alive() != 256 {
		t.Errorf("alive after re-add = %d", nw.Alive())
	}
	res, err := nw.RandomSearch(SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Error("search over churned heuristic network failed")
	}
}

func TestHeuristicReplacementStrategy(t *testing.T) {
	nw, err := New(Config{
		Nodes:        128,
		Construction: Heuristic,
		Replacement:  construct.Oldest,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.RandomSearch(SearchOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestIdealNetworkRejectsChurn(t *testing.T) {
	nw, err := New(Config{Nodes: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.AddNode(3); err == nil {
		t.Error("ideal network AddNode should error")
	}
	if err := nw.RemoveNode(3); err == nil {
		t.Error("ideal network RemoveNode should error")
	}
}

func TestDeterministicReproducibility(t *testing.T) {
	build := func() (Stats, Result) {
		nw, err := New(Config{Nodes: 512, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Search(1, 400, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Stats(), res
	}
	s1, r1 := build()
	s2, r2 := build()
	if s1 != s2 || r1.Hops != r2.Hops || r1.Delivered != r2.Delivered {
		t.Error("same seed should rebuild the identical network")
	}
}

func TestConfigDimDefaults(t *testing.T) {
	cfg, err := Config{Dim: 2, Side: 32}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 1024 {
		t.Errorf("derived nodes = %d, want 32^2 = 1024", cfg.Nodes)
	}
	if cfg.Links != 10 {
		t.Errorf("default links = %d, want lg 1024 = 10", cfg.Links)
	}
	if cfg.Exponent != 2 {
		t.Errorf("default exponent = %v, want the 2-D harmonic exponent 2", cfg.Exponent)
	}
	if _, err := (Config{Dim: 2}).withDefaults(); err == nil {
		t.Error("dim 2 without side should error")
	}
	if _, err := (Config{Dim: 2, Side: 8, Nodes: 17}).withDefaults(); err == nil {
		t.Error("nodes disagreeing with side^dim should error")
	}
	if _, err := (Config{Dim: 2, Side: 8, Space: Line}).withDefaults(); err == nil {
		t.Error("line with dim >= 2 should error")
	}
	if _, err := (Config{Nodes: 64, Side: 8}).withDefaults(); err == nil {
		t.Error("side on a 1-D config should error")
	}
	if _, err := (Config{Dim: -1, Nodes: 64}).withDefaults(); err == nil {
		t.Error("negative dim should error")
	}
}

func TestTorusNetworkEndToEnd(t *testing.T) {
	nw, err := New(Config{Dim: 2, Side: 24, Links: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Space().Dim() != 2 || nw.Space().Name() != "torus2d" {
		t.Errorf("space = %s dim %d", nw.Space().Name(), nw.Space().Dim())
	}
	if nw.Stats().Nodes != 576 {
		t.Errorf("nodes = %d, want 576", nw.Stats().Nodes)
	}
	// Healthy torus searches always deliver.
	for i := 0; i < 50; i++ {
		res, err := nw.RandomSearch(SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Fatal("failure-free 2-D search failed")
		}
	}
	// The §6 damage model and recovery strategies run unchanged.
	if _, err := nw.FailNodes(0.3); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 50; i++ {
		res, err := nw.RandomSearch(SearchOptions{DeadEnd: Backtrack})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			delivered++
		}
	}
	if delivered < 40 {
		t.Errorf("backtracking delivered only %d/50 after 30%% failures", delivered)
	}
	// One-sided routing is undefined on a torus and must error.
	if _, err := nw.RandomSearch(SearchOptions{Sidedness: OneSided}); err == nil {
		t.Error("one-sided routing on a torus should error")
	}
}

func TestTorusHeuristicConstruction(t *testing.T) {
	nw, err := New(Config{Dim: 2, Side: 12, Links: 3, Construction: Heuristic, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.RandomSearch(SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Error("heuristic 2-D network failed a healthy search")
	}
	// Membership changes run through the same §5 protocol.
	if err := nw.RemoveNode(7); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddNode(7); err != nil {
		t.Fatal(err)
	}
}
