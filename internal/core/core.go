// Package core is the library facade for the paper's fault-tolerant
// peer-to-peer routing system. It bundles the metric-space embedding,
// random-graph construction (directly sampled or the §5 incremental
// heuristic), greedy routing with dead-end recovery, and failure
// injection behind one Network type, so applications can use the system
// without touching the lower-level packages.
//
// A minimal session:
//
//	nw, err := core.New(core.Config{Nodes: 1 << 14, Seed: 42})
//	// handle err
//	res, err := nw.RandomSearch(core.SearchOptions{})
//	fmt.Println(res.Delivered, res.Hops)
//
// The same facade builds higher-dimensional networks (§7): Config{Dim:
// 2, Side: 128} embeds the overlay in a 128×128 torus, with every
// failure model, dead-end strategy, and statistic unchanged.
//
// Lower-level building blocks remain available for specialized use:
// package graph (overlay structure), route (routing policies), failure
// (damage models), construct (dynamic arrivals/departures), overlay
// (live message-passing nodes over in-memory or TCP transports), and
// analysis (the paper's bounds as formulas).
package core

import (
	"errors"
	"fmt"

	"repro/internal/construct"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

// Point identifies a location of the metric space; re-exported so
// applications need not import internal/metric.
type Point = metric.Point

// SearchOptions configures routing; it is route.Options re-exported.
type SearchOptions = route.Options

// Result is the outcome of one search; it is route.Result re-exported.
type Result = route.Result

// Dead-end policies, re-exported from package route.
const (
	Terminate     = route.Terminate
	RandomReroute = route.RandomReroute
	Backtrack     = route.Backtrack
)

// Sidedness variants, re-exported from package route.
const (
	TwoSided = route.TwoSided
	OneSided = route.OneSided
)

// SpaceKind selects the 1-D metric space; Config.Dim >= 2 selects a
// torus instead.
type SpaceKind int

const (
	// Ring is the boundary-free circle (default; Chord-like).
	Ring SpaceKind = iota
	// Line is the paper's primary analysis space, with boundaries.
	Line
)

// Construction selects how the overlay is built.
type Construction int

const (
	// Ideal samples every node's links directly from the target
	// distribution — the networks §6 calls "ideal".
	Ideal Construction = iota
	// Heuristic grows the network one node at a time with the §5
	// arrival protocol — the networks §6 calls "constructed".
	Heuristic
)

// Config parameterizes a Network.
type Config struct {
	// Nodes is the number of grid points (and, initially, nodes). For
	// Dim >= 2 it may be left zero and is derived as Side^Dim; when
	// both are given they must agree.
	Nodes int
	// Dim is the dimension of the metric space. Zero and 1 select the
	// paper's 1-D spaces (Ring or Line, per Space); >= 2 selects a
	// Side^Dim torus, §7's higher-dimensional extension.
	Dim int
	// Side is the torus side length, used only when Dim >= 2.
	Side int
	// Links is ℓ, the long-link budget per node. Zero defaults to
	// ⌈lg Nodes⌉, the paper's experimental choice.
	Links int
	// Exponent is the link-length distribution exponent. Zero
	// defaults to the space's harmonic exponent — 1 in one dimension
	// (the paper's provably near-optimal value), Dim in general
	// (Kleinberg's d-dimensional optimum); set ExponentUniform for a
	// uniform distribution.
	Exponent float64
	// Space selects Ring (default) or Line for 1-D networks. A Dim of
	// 2 or more requires Ring (tori have no boundary).
	Space SpaceKind
	// Construction selects Ideal (default) or Heuristic.
	Construction Construction
	// Replacement is the §5 link-replacement strategy for Heuristic
	// construction; zero defaults to inverse-distance.
	Replacement construct.ReplacementStrategy
	// Seed drives all randomness; equal configs with equal seeds
	// build identical networks.
	Seed uint64
}

// ExponentUniform requests a uniform link-length distribution (the
// internal representation of exponent 0, which Config treats as
// "default" instead).
const ExponentUniform = -1

func (c Config) withDefaults() (Config, error) {
	if c.Dim == 0 {
		c.Dim = 1
	}
	if c.Dim < 1 {
		return c, fmt.Errorf("core: dimension must be >= 1, got %d", c.Dim)
	}
	if c.Dim == 1 {
		if c.Side != 0 {
			return c, fmt.Errorf("core: Side applies to Dim >= 2 only; set Nodes for 1-D networks")
		}
	} else {
		if c.Space == Line {
			return c, fmt.Errorf("core: Line is 1-D only; Dim %d needs the torus (Space: Ring)", c.Dim)
		}
		if c.Side < 2 {
			return c, fmt.Errorf("core: Dim %d needs Side >= 2, got %d", c.Dim, c.Side)
		}
		n := mathx.IPow(c.Side, c.Dim)
		if c.Nodes != 0 && c.Nodes != n {
			return c, fmt.Errorf("core: Nodes %d disagrees with Side^Dim = %d", c.Nodes, n)
		}
		c.Nodes = n
	}
	if c.Nodes < 2 {
		return c, fmt.Errorf("core: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Links == 0 {
		for v := c.Nodes - 1; v > 0; v >>= 1 {
			c.Links++
		}
	}
	if c.Links < 0 {
		return c, fmt.Errorf("core: negative link budget %d", c.Links)
	}
	switch c.Exponent {
	case 0:
		c.Exponent = float64(c.Dim)
	case ExponentUniform:
		c.Exponent = 0
	}
	return c, nil
}

// Network is a simulated overlay network: a built graph plus the
// machinery to search it, damage it, and (for Heuristic construction)
// change its membership. It is not safe for concurrent use: searches
// consume the network's rng stream. Concurrent workloads build one
// Network per goroutine (cheap, deterministic by seed) or use the
// lower-level route.Router, which is safe over an immutable graph.
type Network struct {
	cfg     Config
	space   metric.Space
	g       *graph.Graph
	builder *construct.Builder // non-nil for Heuristic construction
	src     *rng.Source
}

// New builds a network per cfg: a 1-D ring or line, or a d-dimensional
// torus, all through the same metric.Space pipeline.
func New(cfg Config) (*Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var space metric.Space
	switch {
	case cfg.Dim >= 2:
		space, err = metric.NewTorus(cfg.Side, cfg.Dim)
	case cfg.Space == Line:
		space, err = metric.NewLine(cfg.Nodes)
	default:
		space, err = metric.NewRing(cfg.Nodes)
	}
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	nw := &Network{cfg: cfg, space: space, src: src}
	switch cfg.Construction {
	case Heuristic:
		if cfg.Exponent != float64(cfg.Dim) {
			return nil, errors.New("core: heuristic construction supports the harmonic exponent only (1 in 1-D, dim in general — the paper's §5 protocol)")
		}
		b, err := construct.NewBuilder(space, construct.Config{
			Links:    cfg.Links,
			Strategy: cfg.Replacement,
		}, src.Derive(1))
		if err != nil {
			return nil, err
		}
		for _, i := range src.Derive(2).Perm(cfg.Nodes) {
			if err := b.Add(Point(i)); err != nil {
				return nil, err
			}
		}
		nw.builder = b
		nw.g = b.Graph()
	default:
		g, err := graph.BuildIdeal(space, graph.BuildConfig{
			Links:    cfg.Links,
			Exponent: cfg.Exponent,
		}, src.Derive(1))
		if err != nil {
			return nil, err
		}
		nw.g = g
	}
	return nw, nil
}

// Config returns the resolved configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Graph exposes the underlying overlay for advanced use (histograms,
// custom routing). Callers must not mutate membership behind a
// Heuristic network's back.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Space returns the metric space the network is embedded in.
func (nw *Network) Space() metric.Space { return nw.space }

// Alive returns the number of live nodes.
func (nw *Network) Alive() int { return nw.g.AliveCount() }

// Search routes a message from one live node to another and reports
// the outcome. Zero-valued options take the paper's defaults
// (two-sided greedy, terminate on dead ends).
func (nw *Network) Search(from, to Point, opt SearchOptions) (Result, error) {
	r := route.New(nw.g, opt)
	return r.Route(nw.src, from, to)
}

// RandomSearch routes between uniformly random live endpoints, the §6
// workload.
func (nw *Network) RandomSearch(opt SearchOptions) (Result, error) {
	from, ok := nw.g.RandomAlive(nw.src)
	if !ok {
		return Result{}, errors.New("core: no live nodes")
	}
	to, ok := nw.g.RandomAlive(nw.src)
	if !ok {
		return Result{}, errors.New("core: no live nodes")
	}
	if from == to {
		return Result{Delivered: true}, nil
	}
	return nw.Search(from, to, opt)
}

// FailNodes crashes an exact fraction of the live nodes uniformly at
// random (the §6 damage model). It returns the number crashed.
func (nw *Network) FailNodes(fraction float64) (int, error) {
	return failure.FailNodesFraction(nw.g, fraction, nw.src.Derive(3))
}

// FailNodesProb crashes each live node independently with probability
// p (Theorem 18's model). It returns the number crashed.
func (nw *Network) FailNodesProb(p float64) (int, error) {
	return failure.FailNodesProb(nw.g, p, nw.src.Derive(4))
}

// FailLinks keeps each long link with probability p and takes the rest
// down (Theorem 15's model). It returns the number taken down.
func (nw *Network) FailLinks(p float64) (int, error) {
	return failure.FailLinks(nw.g, p, nw.src.Derive(5))
}

// AddNode runs the §5 arrival protocol for point p. It requires
// Heuristic construction.
func (nw *Network) AddNode(p Point) error {
	if nw.builder == nil {
		return errors.New("core: AddNode requires Construction: Heuristic")
	}
	return nw.builder.Add(p)
}

// RemoveNode runs the §5 departure protocol (links into the departed
// node are regenerated). It requires Heuristic construction.
func (nw *Network) RemoveNode(p Point) error {
	if nw.builder == nil {
		return errors.New("core: RemoveNode requires Construction: Heuristic")
	}
	return nw.builder.Remove(p)
}

// Stats summarizes the network state.
type Stats struct {
	Nodes      int     // grid points
	Alive      int     // live nodes
	LongLinks  int     // total long links
	MeanDegree float64 // long links per existing node
}

// Stats returns a snapshot of the network state.
func (nw *Network) Stats() Stats {
	return Stats{
		Nodes:      nw.g.Size(),
		Alive:      nw.g.AliveCount(),
		LongLinks:  nw.g.LongLinkCount(),
		MeanDegree: nw.g.AvgOutDegree(),
	}
}
