package graph

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
)

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(7)
	if cfg.Links != 7 || cfg.Exponent != 1 {
		t.Errorf("PaperConfig = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	if err := (BuildConfig{Links: -1}).Validate(); err == nil {
		t.Error("negative links should fail validation")
	}
}

func TestBuildIdealDegree(t *testing.T) {
	src := rng.New(1)
	g, err := BuildIdeal(mustRing(t, 256), PaperConfig(5), src)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.Size(); p++ {
		if got := len(g.Long(metric.Point(p))); got != 5 {
			t.Fatalf("node %d has %d long links, want 5", p, got)
		}
		for _, lk := range g.Long(metric.Point(p)) {
			if lk.To == metric.Point(p) {
				t.Fatalf("self link at %d", p)
			}
			if !lk.Up {
				t.Fatalf("fresh link should be up")
			}
		}
	}
}

func TestBuildIdealRejectsBadConfig(t *testing.T) {
	if _, err := BuildIdeal(mustRing(t, 8), BuildConfig{Links: -2}, rng.New(1)); err == nil {
		t.Error("invalid config should error")
	}
}

func TestBuildIdealZeroLinks(t *testing.T) {
	g, err := BuildIdeal(mustRing(t, 8), BuildConfig{Links: 0, Exponent: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.LongLinkCount() != 0 {
		t.Error("zero-link build should have no long links")
	}
}

// The headline invariant of the construction: link lengths follow the
// inverse power law with exponent 1, i.e. P(d) ≈ 1/(d·H_max).
func TestBuildIdealLinkLengthDistribution(t *testing.T) {
	const n = 1 << 12
	src := rng.New(42)
	g, err := BuildIdeal(mustRing(t, n), PaperConfig(8), src)
	if err != nil {
		t.Fatal(err)
	}
	h := g.LinkLengthHistogram()
	maxD := (n - 1) / 2
	hmax := mathx.Harmonic(maxD)
	for _, d := range []int{1, 2, 4, 8, 32, 128} {
		want := 1 / (float64(d) * hmax)
		got := h.Probability(d - 1)
		if math.Abs(got-want) > want/3+0.002 {
			t.Errorf("P(len=%d) = %v, want ≈ %v", d, got, want)
		}
	}
}

func TestBuildIdealLineRespectsBoundaries(t *testing.T) {
	src := rng.New(7)
	g, err := BuildIdeal(mustLine(t, 128), PaperConfig(4), src)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.Size(); p++ {
		for _, lk := range g.Long(metric.Point(p)) {
			if !g.Space().Contains(lk.To) {
				t.Fatalf("link from %d leaves the line: %d", p, lk.To)
			}
		}
	}
}

func TestBuildIdealLineBoundaryNodeLinks(t *testing.T) {
	// Node 0 of a line can only link rightward.
	src := rng.New(9)
	g, err := BuildIdeal(mustLine(t, 64), PaperConfig(6), src)
	if err != nil {
		t.Fatal(err)
	}
	for _, lk := range g.Long(0) {
		if lk.To <= 0 {
			t.Fatalf("node 0 linked to %d", lk.To)
		}
	}
	for _, lk := range g.Long(63) {
		if lk.To >= 63 {
			t.Fatalf("node 63 linked to %d", lk.To)
		}
	}
}

func TestBuildIdealWithPresenceLinksOnlyExisting(t *testing.T) {
	const n = 256
	src := rng.New(3)
	present := make([]bool, n)
	for i := range present {
		present[i] = src.Bool(0.5)
	}
	present[0] = true // ensure at least one
	g, err := BuildIdealWithPresence(mustRing(t, n), PaperConfig(4), present, src)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		if !g.Exists(metric.Point(p)) {
			if len(g.Long(metric.Point(p))) != 0 {
				t.Fatalf("absent point %d has links", p)
			}
			continue
		}
		for _, lk := range g.Long(metric.Point(p)) {
			if !g.Exists(lk.To) {
				t.Fatalf("link from %d to absent point %d", p, lk.To)
			}
		}
	}
}

func TestBuildIdealWithPresenceValidates(t *testing.T) {
	if _, err := BuildIdealWithPresence(mustRing(t, 8), PaperConfig(2), make([]bool, 4), rng.New(1)); err == nil {
		t.Error("presence length mismatch should error")
	}
}

func TestBuildDeterministicDigits(t *testing.T) {
	const n, b = 64, 2
	g, err := BuildDeterministic(mustRing(t, n), b, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Base 2: distances 1,2,4,8,16,32 in both directions; on a ring of
	// 64, ±32 coincide. Every node must reach points at powers of two.
	want := map[int]bool{1: false, 2: false, 4: false, 8: false, 16: false, 32: false}
	for _, lk := range g.Long(0) {
		d := g.Space().Distance(0, lk.To)
		if _, ok := want[d]; ok {
			want[d] = true
		}
	}
	for d, seen := range want {
		if !seen {
			t.Errorf("node 0 missing link at distance %d", d)
		}
	}
}

func TestBuildDeterministicBaseValidation(t *testing.T) {
	if _, err := BuildDeterministic(mustRing(t, 8), 1, rng.New(1)); err == nil {
		t.Error("base 1 should error")
	}
	if _, err := BuildDeterministicPowers(mustRing(t, 8), 0); err == nil {
		t.Error("base 0 should error")
	}
}

func TestBuildDeterministicPowers(t *testing.T) {
	const n, b = 81, 3
	g, err := BuildDeterministicPowers(mustRing(t, n), b)
	if err != nil {
		t.Fatal(err)
	}
	dists := map[int]bool{}
	for _, lk := range g.Long(0) {
		dists[g.Space().Distance(0, lk.To)] = true
	}
	for _, d := range []int{1, 3, 9, 27} {
		if !dists[d] {
			t.Errorf("missing power-of-%d link at distance %d", b, d)
		}
	}
}

func TestBuildDeterministicLine(t *testing.T) {
	g, err := BuildDeterministic(mustLine(t, 32), 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Boundary node 0 has no leftward links.
	for _, lk := range g.Long(0) {
		if lk.To < 0 || lk.To > 31 {
			t.Fatalf("line link out of range: %d", lk.To)
		}
	}
}

func TestBuildIdealUniformExponent(t *testing.T) {
	// Exponent 0 = uniform link lengths: long links should NOT
	// concentrate at short distances.
	const n = 1 << 10
	g, err := BuildIdeal(mustRing(t, n), BuildConfig{Links: 8, Exponent: 0}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	h := g.LinkLengthHistogram()
	short := float64(h.Count(0)) / float64(h.Total()) // P(len=1)
	if short > 0.01 {
		t.Errorf("uniform exponent should spread mass; P(len=1) = %v", short)
	}
}

func TestBuildIdealExponentTwoConcentrates(t *testing.T) {
	const n = 1 << 10
	g2, err := BuildIdeal(mustRing(t, n), BuildConfig{Links: 8, Exponent: 2}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := BuildIdeal(mustRing(t, n), PaperConfig(8), rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	p2 := float64(g2.LinkLengthHistogram().Count(0)) / float64(g2.LinkLengthHistogram().Total())
	p1 := float64(g1.LinkLengthHistogram().Count(0)) / float64(g1.LinkLengthHistogram().Total())
	if p2 <= p1 {
		t.Errorf("exponent 2 should concentrate more at distance 1: p2=%v p1=%v", p2, p1)
	}
}

func BenchmarkBuildIdeal(b *testing.B) {
	sp := mustRing(b, 1<<14)
	cfg := PaperConfig(14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIdeal(sp, cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
