package graph

import (
	"math"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

func TestInDegreeBasics(t *testing.T) {
	g := New(mustRing(t, 16))
	if g.InDegree(5) != 0 {
		t.Error("fresh node has in-degree 0")
	}
	if err := g.AddLong(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLong(1, 5); err != nil {
		t.Fatal(err)
	}
	if g.InDegree(5) != 2 {
		t.Errorf("in-degree = %d, want 2", g.InDegree(5))
	}
	// Down links don't count.
	if err := g.SetLongUp(0, 0, false); err != nil {
		t.Fatal(err)
	}
	if g.InDegree(5) != 1 {
		t.Errorf("in-degree after down = %d, want 1", g.InDegree(5))
	}
	if g.InDegree(-1) != 0 || g.InDegree(99) != 0 {
		t.Error("out-of-range in-degree must be 0")
	}
}

// The §5 assumption, validated: in the ideal construction the in-degree
// of a node is approximately Poisson(ℓ) — mean ℓ and variance ℓ.
func TestIdealInDegreeIsPoisson(t *testing.T) {
	const n, links = 1 << 12, 8
	g, err := BuildIdeal(mustRing(t, n), PaperConfig(links), rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		d := float64(g.InDegree(metric.Point(i)))
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-links) > 0.2 {
		t.Errorf("in-degree mean = %v, want ℓ = %d", mean, links)
	}
	// Poisson: variance ≈ mean. The inverse power-law concentration
	// near each node adds a little extra dispersion; allow 40%.
	if variance < float64(links)*0.6 || variance > float64(links)*1.8 {
		t.Errorf("in-degree variance = %v, want ≈ ℓ = %d (Poisson)", variance, links)
	}
	// P(deg = 0) ≈ e^{-ℓ} — essentially none at ℓ=8.
	zeros := 0
	for i := 0; i < n; i++ {
		if g.InDegree(metric.Point(i)) == 0 {
			zeros++
		}
	}
	if float64(zeros)/n > 0.01 {
		t.Errorf("%d of %d nodes have no in-links; Poisson(8) predicts ~0.03%%", zeros, n)
	}
}
