package graph

import (
	"fmt"

	"repro/internal/metric"
)

// NewEmpty returns a graph over space in which no grid point hosts a
// node yet. Nodes arrive later through AddNode — the starting state of
// the §5 incremental construction.
func NewEmpty(space metric.Space) *Graph {
	return &Graph{space: space, nodes: make([]node, space.Size())}
}

// AddNode marks point p as hosting a live node. It returns an error if
// p is out of range or already hosts a node.
func (g *Graph) AddNode(p metric.Point) error {
	if !g.inRange(p) {
		return fmt.Errorf("graph: AddNode(%d) out of range [0,%d)", p, len(g.nodes))
	}
	if g.nodes[p].exists {
		return fmt.Errorf("graph: node %d already exists", p)
	}
	g.nodes[p].exists = true
	g.nodes[p].failed = false
	g.aliveCount++
	return nil
}

// RemoveNode deletes the node at p entirely: its outgoing long links are
// dropped and the point stops hosting a node (unlike Fail, which models
// a crash that leaves the point occupied but dead). Links from other
// nodes toward p become dangling; ForEachNeighbor already hides them,
// and the construction heuristic repairs them. It returns an error if p
// hosts no node.
func (g *Graph) RemoveNode(p metric.Point) error {
	if !g.inRange(p) || !g.nodes[p].exists {
		return fmt.Errorf("graph: RemoveNode(%d): no such node", p)
	}
	if !g.nodes[p].failed {
		g.aliveCount--
	}
	// Drop the reverse-index entries of p's outgoing links so the
	// index does not accumulate dead references under churn.
	for i, lk := range g.nodes[p].long {
		if lk.Up {
			g.dropRev(lk.To, revRef{from: p, idx: i})
		}
	}
	// Take every incoming link down: the connection to a departed
	// node is gone for good. The slot stays in its owner's link list
	// (pointing at the vacated point, down) until the §5 repair
	// redirects it — so a later arrival at the same point does not
	// silently resurrect stale connections.
	for _, ref := range g.nodes[p].rev {
		if g.inRange(ref.from) && ref.idx < len(g.nodes[ref.from].long) {
			lk := &g.nodes[ref.from].long[ref.idx]
			if lk.To == p {
				lk.Up = false
			}
		}
	}
	g.nodes[p] = node{}
	return nil
}
