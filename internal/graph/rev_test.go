package graph

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

// bruteForceInNeighbors scans every node's forward links to find the up
// in-neighbours of p — the ground truth the reverse index must match.
func bruteForceInNeighbors(g *Graph, p metric.Point) map[metric.Point]int {
	in := map[metric.Point]int{}
	for i := 0; i < g.Size(); i++ {
		q := metric.Point(i)
		if !g.Exists(q) || q == p {
			continue
		}
		for _, lk := range g.Long(q) {
			if lk.To == p && lk.Up {
				in[q]++
			}
		}
	}
	return in
}

// symmetricNeighborsViaIndex extracts the in-link part of
// ForEachNeighbor by subtracting the out-neighbour enumeration.
func symmetricNeighborsViaIndex(g *Graph, p metric.Point) map[metric.Point]int {
	all := map[metric.Point]int{}
	g.ForEachNeighbor(p, func(q metric.Point) { all[q]++ })
	g.ForEachOutNeighbor(p, func(q metric.Point) { all[q]-- })
	for q, c := range all {
		if c == 0 {
			delete(all, q)
		}
	}
	return all
}

func requireIndexConsistent(t *testing.T, g *Graph, step int) {
	t.Helper()
	for i := 0; i < g.Size(); i++ {
		p := metric.Point(i)
		if !g.Exists(p) {
			continue
		}
		want := bruteForceInNeighbors(g, p)
		got := symmetricNeighborsViaIndex(g, p)
		for q, n := range want {
			if got[q] != n {
				t.Fatalf("step %d: node %d in-neighbour %d: index says %d, truth %d",
					step, p, q, got[q], n)
			}
		}
		for q, n := range got {
			if want[q] != n {
				t.Fatalf("step %d: node %d phantom in-neighbour %d (count %d)", step, p, q, n)
			}
		}
	}
}

// The reverse index must agree with a brute-force scan after any
// sequence of AddLong / ReplaceLong / SetLongUp / Fail / RemoveNode /
// AddNode operations.
func TestReverseIndexInvariantUnderChurn(t *testing.T) {
	const n = 24
	sp, err := metric.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	g := New(sp)
	src := rng.New(77)
	for step := 0; step < 600; step++ {
		p := metric.Point(src.Intn(n))
		switch src.Intn(6) {
		case 0: // add a long link from a random existing node
			if g.Exists(p) {
				to := metric.Point(src.Intn(n))
				if to != p {
					if err := g.AddLong(p, to); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 1: // redirect a random link
			if g.Exists(p) && len(g.Long(p)) > 0 {
				i := src.Intn(len(g.Long(p)))
				to := metric.Point(src.Intn(n))
				if to != p {
					if err := g.ReplaceLong(p, i, to); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 2: // toggle a link's up flag
			if g.Exists(p) && len(g.Long(p)) > 0 {
				i := src.Intn(len(g.Long(p)))
				if err := g.SetLongUp(p, i, src.Bool(0.5)); err != nil {
					t.Fatal(err)
				}
			}
		case 3: // crash / revive
			if src.Bool(0.5) {
				g.Fail(p)
			} else {
				g.Revive(p)
			}
		case 4: // remove the node entirely
			if g.Exists(p) && g.AliveCount() > 2 {
				if err := g.RemoveNode(p); err != nil {
					t.Fatal(err)
				}
			}
		case 5: // re-add
			if !g.Exists(p) {
				if err := g.AddNode(p); err != nil {
					t.Fatal(err)
				}
			}
		}
		if step%50 == 0 {
			requireIndexConsistent(t, g, step)
		}
	}
	requireIndexConsistent(t, g, 600)
}

func TestDynamicAddRemoveValidation(t *testing.T) {
	sp, err := metric.NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	g := NewEmpty(sp)
	if g.AliveCount() != 0 {
		t.Error("empty graph should have no nodes")
	}
	if err := g.AddNode(3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(3); err == nil {
		t.Error("duplicate AddNode should error")
	}
	if err := g.AddNode(99); err == nil {
		t.Error("out-of-range AddNode should error")
	}
	if err := g.RemoveNode(5); err == nil {
		t.Error("removing a missing node should error")
	}
	if err := g.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if g.AliveCount() != 0 || g.Exists(3) {
		t.Error("RemoveNode did not clear the node")
	}
}

func TestRemoveFailedNodeKeepsAliveCount(t *testing.T) {
	sp, err := metric.NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	g := New(sp)
	g.Fail(1)
	if g.AliveCount() != 3 {
		t.Fatal("setup")
	}
	if err := g.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if g.AliveCount() != 3 {
		t.Errorf("removing an already-failed node must not change alive count: %d", g.AliveCount())
	}
}

// Symmetric routing sees an in-link even when the only link between two
// nodes is directed the other way.
func TestForEachNeighborSeesInLinks(t *testing.T) {
	sp, err := metric.NewRing(32)
	if err != nil {
		t.Fatal(err)
	}
	g := New(sp)
	if err := g.AddLong(5, 20); err != nil {
		t.Fatal(err)
	}
	seen := false
	g.ForEachNeighbor(20, func(q metric.Point) {
		if q == 5 {
			seen = true
		}
	})
	if !seen {
		t.Error("node 20 should see in-neighbour 5")
	}
	// But the directed enumeration must not.
	seen = false
	g.ForEachOutNeighbor(20, func(q metric.Point) {
		if q == 5 {
			seen = true
		}
	})
	if seen {
		t.Error("out enumeration must not include in-links")
	}
	// Downing the link hides it from both sides.
	if err := g.SetLongUp(5, 0, false); err != nil {
		t.Fatal(err)
	}
	seen = false
	g.ForEachNeighbor(20, func(q metric.Point) {
		if q == 5 {
			seen = true
		}
	})
	if seen {
		t.Error("down in-link should be hidden")
	}
}
