// Package graph implements the paper's overlay structure: nodes embedded
// at the grid points of a metric space (the 1-D line and ring of the
// paper's analysis, or a d-dimensional torus per §7), each connected to
// its grid neighbours (short links, always present per §4.3.3 — two per
// axis) and to a set of long-distance links drawn from a configurable
// distribution.
//
// The graph is a value-type store of links plus liveness bookkeeping;
// the routing algorithms live in package route, failure models in
// package failure, and the dynamic construction heuristic of §5 in
// package construct.
package graph

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
)

// Link is a directed long-distance link. Up distinguishes a link that
// exists in the overlay from one whose underlying connection has failed
// (§4.3.3's independent link-failure model). Seq records creation order
// for the "replace oldest link" strategy of §5.
type Link struct {
	To  metric.Point
	Up  bool
	Seq int64
}

type node struct {
	exists    bool // the point hosts a node at all (§4.3.4.1 binomial model)
	failed    bool // the node crashed after the graph was built
	malicious bool // Byzantine: alive but silently drops messages
	long      []Link
	// rev indexes incoming long links: each entry names a node whose
	// long link at the given slot points here. Entries can go stale
	// (the slot redirected elsewhere); readers re-validate against the
	// forward link, so staleness is harmless.
	rev []revRef
}

// revRef locates one incoming long link: nodes[from].long[idx].
type revRef struct {
	from metric.Point
	idx  int
}

// Graph is an overlay network over a metric space of any dimension.
// It is not safe for concurrent mutation; experiment code builds one
// graph per goroutine.
type Graph struct {
	space      metric.Space
	nodes      []node
	aliveCount int
	seq        int64
	// nearestMark/nearestQueue are reusable scratch for the d >= 2
	// NearestExisting BFS (a point is visited when its mark equals
	// nearestGen). NearestExisting is §5 construction machinery and
	// shares the Graph's single-goroutine mutation contract.
	nearestMark  []uint32
	nearestQueue []metric.Point
	nearestGen   uint32
}

// New returns a graph over space in which every grid point hosts a node
// and no long links exist yet.
func New(space metric.Space) *Graph {
	g := &Graph{space: space, nodes: make([]node, space.Size())}
	for i := range g.nodes {
		g.nodes[i].exists = true
	}
	g.aliveCount = len(g.nodes)
	return g
}

// NewWithPresence returns a graph in which point i hosts a node exactly
// when present[i] is true (the binomially-distributed node model of
// §4.3.4.1). It returns an error if len(present) != space.Size() or if
// no point is present.
func NewWithPresence(space metric.Space, present []bool) (*Graph, error) {
	if len(present) != space.Size() {
		return nil, fmt.Errorf("graph: presence mask has %d entries for space of size %d",
			len(present), space.Size())
	}
	g := &Graph{space: space, nodes: make([]node, space.Size())}
	for i, p := range present {
		g.nodes[i].exists = p
		if p {
			g.aliveCount++
		}
	}
	if g.aliveCount == 0 {
		return nil, fmt.Errorf("graph: presence mask admits no nodes")
	}
	return g, nil
}

// Space returns the underlying metric space.
func (g *Graph) Space() metric.Space { return g.space }

// Size returns the number of grid points (present or not).
func (g *Graph) Size() int { return g.space.Size() }

// Exists reports whether point p hosts a node (failed or not).
func (g *Graph) Exists(p metric.Point) bool {
	return g.inRange(p) && g.nodes[p].exists
}

// Alive reports whether point p hosts a live node.
func (g *Graph) Alive(p metric.Point) bool {
	return g.inRange(p) && g.nodes[p].exists && !g.nodes[p].failed
}

// AliveCount returns the number of live nodes.
func (g *Graph) AliveCount() int { return g.aliveCount }

func (g *Graph) inRange(p metric.Point) bool { return p >= 0 && int(p) < len(g.nodes) }

// Fail marks the node at p as crashed. Failing an absent or already
// failed node is a no-op. It returns true if the node transitioned from
// alive to failed.
func (g *Graph) Fail(p metric.Point) bool {
	if !g.Alive(p) {
		return false
	}
	g.nodes[p].failed = true
	g.aliveCount--
	return true
}

// Revive clears the failed flag of the node at p. It returns true if
// the node transitioned from failed to alive.
func (g *Graph) Revive(p metric.Point) bool {
	if !g.inRange(p) || !g.nodes[p].exists || !g.nodes[p].failed {
		return false
	}
	g.nodes[p].failed = false
	g.aliveCount++
	return true
}

// SetMalicious marks the live node at p as Byzantine: it participates
// in the overlay (others link and route to it) but silently drops every
// message it receives. Used by the §7-motivated robustness extension.
func (g *Graph) SetMalicious(p metric.Point, malicious bool) error {
	if !g.Alive(p) {
		return fmt.Errorf("graph: SetMalicious(%d): not a live node", p)
	}
	g.nodes[p].malicious = malicious
	return nil
}

// Malicious reports whether p hosts a Byzantine node.
func (g *Graph) Malicious(p metric.Point) bool {
	return g.inRange(p) && g.nodes[p].malicious
}

// AddLong appends a long-distance link from p to to. Self-links are
// rejected with an error; duplicate links are permitted (the paper's
// randomized strategy samples with replacement, Theorem 13).
func (g *Graph) AddLong(p, to metric.Point) error {
	if !g.inRange(p) || !g.inRange(to) {
		return fmt.Errorf("graph: link %d->%d out of range [0,%d)", p, to, len(g.nodes))
	}
	if p == to {
		return fmt.Errorf("graph: self-link at %d", p)
	}
	g.seq++
	g.nodes[p].long = append(g.nodes[p].long, Link{To: to, Up: true, Seq: g.seq})
	g.nodes[to].rev = append(g.nodes[to].rev, revRef{from: p, idx: len(g.nodes[p].long) - 1})
	return nil
}

// Long returns the long-link slice of p. The caller must not mutate it;
// use ReplaceLong or SetLongUp for modifications.
func (g *Graph) Long(p metric.Point) []Link {
	if !g.inRange(p) {
		return nil
	}
	return g.nodes[p].long
}

// ReplaceLong redirects p's i-th long link to point to, stamping a fresh
// sequence number. It is the primitive behind §5's link-redirection
// heuristic.
func (g *Graph) ReplaceLong(p metric.Point, i int, to metric.Point) error {
	if !g.inRange(p) || i < 0 || i >= len(g.nodes[p].long) {
		return fmt.Errorf("graph: ReplaceLong(%d, %d) out of range", p, i)
	}
	if p == to || !g.inRange(to) {
		return fmt.Errorf("graph: invalid redirect target %d for node %d", to, p)
	}
	g.dropRev(g.nodes[p].long[i].To, revRef{from: p, idx: i})
	g.seq++
	g.nodes[p].long[i] = Link{To: to, Up: true, Seq: g.seq}
	g.nodes[to].rev = append(g.nodes[to].rev, revRef{from: p, idx: i})
	return nil
}

// dropRev removes one reverse-index entry, if present.
func (g *Graph) dropRev(at metric.Point, ref revRef) {
	if !g.inRange(at) {
		return
	}
	rev := g.nodes[at].rev
	for i, r := range rev {
		if r == ref {
			rev[i] = rev[len(rev)-1]
			g.nodes[at].rev = rev[:len(rev)-1]
			return
		}
	}
}

// SetLongUp sets the Up flag of p's i-th long link (link-failure
// injection), keeping the reverse index in step: only up links are
// indexed.
func (g *Graph) SetLongUp(p metric.Point, i int, up bool) error {
	if !g.inRange(p) || i < 0 || i >= len(g.nodes[p].long) {
		return fmt.Errorf("graph: SetLongUp(%d, %d) out of range", p, i)
	}
	lk := &g.nodes[p].long[i]
	if lk.Up == up {
		return nil
	}
	lk.Up = up
	ref := revRef{from: p, idx: i}
	if up {
		g.nodes[lk.To].rev = append(g.nodes[lk.To].rev, ref)
	} else {
		g.dropRev(lk.To, ref)
	}
	return nil
}

// ShortNeighbor returns the nearest present node along the signed axis
// direction dir (±1..±Dim) from p, skipping absent grid points, along
// with whether one exists. Short links bind each node to the closest
// *present* node along every grid direction, so in the
// binomial-presence model the short chain skips holes.
func (g *Graph) ShortNeighbor(p metric.Point, dir int) (metric.Point, bool) {
	cur := p
	for i := 0; i < g.Size(); i++ {
		q, ok := g.space.Step(cur, dir)
		if !ok {
			return 0, false // line boundary
		}
		if q == p {
			return 0, false // wrapped all the way around
		}
		if g.nodes[q].exists {
			return q, true
		}
		cur = q
	}
	return 0, false
}

// ForEachOutNeighbor invokes fn for every outgoing overlay neighbour of
// p: the short neighbours — two per axis, always up, per the paper's
// assumption that immediate links never fail — and every long link that
// is up. fn receives the neighbouring point; absent points never
// appear. Neighbour liveness is NOT filtered here — routing decides
// what to do with dead neighbours. This is the directed model analyzed
// in §4.
func (g *Graph) ForEachOutNeighbor(p metric.Point, fn func(q metric.Point)) {
	if !g.inRange(p) || !g.nodes[p].exists {
		return
	}
	for axis := 1; axis <= g.space.Dim(); axis++ {
		neg, okN := g.ShortNeighbor(p, -axis)
		if okN {
			fn(neg)
		}
		if pos, okP := g.ShortNeighbor(p, +axis); okP && (!okN || pos != neg) {
			fn(pos)
		}
	}
	for _, lk := range g.nodes[p].long {
		if lk.Up && g.nodes[lk.To].exists {
			fn(lk.To)
		}
	}
}

// ForEachNeighbor invokes fn for every physical neighbour of p: the
// outgoing set of ForEachOutNeighbor plus every node holding an up long
// link INTO p. A long link is a network connection, and §5's protocol
// has link targets participate in link management, so both endpoints
// know each other; the §6 simulations route over this symmetric
// neighbour set. In-links can repeat out-links; fn may be called more
// than once per point (greedy selection is idempotent, so callers don't
// care).
func (g *Graph) ForEachNeighbor(p metric.Point, fn func(q metric.Point)) {
	g.ForEachOutNeighbor(p, fn)
	if !g.inRange(p) || !g.nodes[p].exists {
		return
	}
	for _, ref := range g.nodes[p].rev {
		if !g.inRange(ref.from) || !g.nodes[ref.from].exists || ref.from == p {
			continue
		}
		long := g.nodes[ref.from].long
		// Re-validate: the slot must still point here and be up.
		if ref.idx < len(long) && long[ref.idx].To == p && long[ref.idx].Up {
			fn(ref.from)
		}
	}
}

// NearestExisting returns the present point closest to target (the
// "basin of attraction" rule of §5: a link aimed at an absent point
// connects to the nearest present one). In one dimension ties break
// toward the lower side; in higher dimensions toward the first point
// reached by a breadth-first expansion that scans −axis before +axis.
// ok is false only if no node exists at all.
func (g *Graph) NearestExisting(target metric.Point) (metric.Point, bool) {
	if !g.inRange(target) {
		return 0, false
	}
	if g.nodes[target].exists {
		return target, true
	}
	if g.space.Dim() == 1 {
		left, okL := g.ShortNeighbor(target, -1)
		right, okR := g.ShortNeighbor(target, +1)
		switch {
		case okL && okR:
			if g.space.Distance(left, target) <= g.space.Distance(right, target) {
				return left, true
			}
			return right, true
		case okL:
			return left, true
		case okR:
			return right, true
		}
		return 0, false
	}
	// d >= 2: breadth-first over unit grid steps. Grid steps are unit
	// moves under L1, so BFS level k is exactly the sphere of radius k
	// around the target and the first present point found is nearest.
	// The mark/queue scratch is reused across calls: §5 construction
	// invokes this once per sampled link, and a fresh O(n) allocation
	// each time would dominate the build.
	if g.nearestMark == nil {
		g.nearestMark = make([]uint32, len(g.nodes))
	}
	g.nearestGen++
	if g.nearestGen == 0 { // wrapped: stale marks could collide
		for i := range g.nearestMark {
			g.nearestMark[i] = 0
		}
		g.nearestGen = 1
	}
	gen := g.nearestGen
	queue := g.nearestQueue[:0]
	g.nearestMark[target] = gen
	queue = append(queue, target)
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		if g.nodes[p].exists {
			g.nearestQueue = queue[:0]
			return p, true
		}
		for axis := 1; axis <= g.space.Dim(); axis++ {
			for _, dir := range [2]int{-axis, +axis} {
				if q, ok := g.space.Step(p, dir); ok && g.nearestMark[q] != gen {
					g.nearestMark[q] = gen
					queue = append(queue, q)
				}
			}
		}
	}
	g.nearestQueue = queue[:0]
	return 0, false
}

// RandomAlive returns a uniformly random live node, or ok=false when
// none are alive. It rejects dead points by resampling, which is fast
// whenever a constant fraction of nodes are alive; a linear fallback
// guards the near-extinct case.
func (g *Graph) RandomAlive(src *rng.Source) (metric.Point, bool) {
	if g.aliveCount == 0 {
		return 0, false
	}
	if g.aliveCount*8 >= len(g.nodes) {
		for {
			p := metric.Point(src.Intn(len(g.nodes)))
			if g.Alive(p) {
				return p, true
			}
		}
	}
	k := src.Intn(g.aliveCount)
	for i := range g.nodes {
		if g.nodes[i].exists && !g.nodes[i].failed {
			if k == 0 {
				return metric.Point(i), true
			}
			k--
		}
	}
	return 0, false
}

// LinkLengthHistogram accumulates the metric length of every long link
// (up or down) into a linear histogram with one bucket per distance.
// Figure 5 plots exactly this.
func (g *Graph) LinkLengthHistogram() *mathx.Histogram {
	maxD := g.space.Size() // safe upper bound for every space
	h := mathx.NewHistogram(maxD)
	for p := range g.nodes {
		for _, lk := range g.nodes[p].long {
			h.Add(g.space.Distance(metric.Point(p), lk.To))
		}
	}
	return h
}

// AvgOutDegree returns the mean number of long links per existing node.
func (g *Graph) AvgOutDegree() float64 {
	var links, nodes int
	for p := range g.nodes {
		if g.nodes[p].exists {
			nodes++
			links += len(g.nodes[p].long)
		}
	}
	if nodes == 0 {
		return 0
	}
	return float64(links) / float64(nodes)
}

// InDegree returns the number of up long links pointing at p from
// existing nodes. For the ideal construction this is approximately
// Poisson(l)-distributed — the very assumption §5's arrival protocol
// makes when a newcomer estimates how many in-links it "should" have.
func (g *Graph) InDegree(p metric.Point) int {
	if !g.inRange(p) || !g.nodes[p].exists {
		return 0
	}
	count := 0
	for _, ref := range g.nodes[p].rev {
		if !g.inRange(ref.from) || !g.nodes[ref.from].exists || ref.from == p {
			continue
		}
		long := g.nodes[ref.from].long
		if ref.idx < len(long) && long[ref.idx].To == p && long[ref.idx].Up {
			count++
		}
	}
	return count
}

// LongLinkCount returns the total number of long links in the graph.
func (g *Graph) LongLinkCount() int {
	var c int
	for p := range g.nodes {
		c += len(g.nodes[p].long)
	}
	return c
}
