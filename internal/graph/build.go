package graph

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
)

// BuildConfig parameterizes the ideal (directly sampled) random-graph
// builders.
type BuildConfig struct {
	// Links is the number ℓ of long-distance links per node. The
	// paper's randomized strategy draws them independently with
	// replacement (Theorem 13).
	Links int
	// Exponent is the inverse power-law exponent of the link-length
	// distribution, used literally: the space's dimension d is the
	// paper's distribution generalized à la Kleinberg (Pr[v] ∝ 1/d(u,v)
	// in 1-D), 0 is uniform, etc. How it is sampled is the space's
	// business (metric.Space.NewLinkSampler); 1-D spaces use an O(log)
	// analytic sampler for exponent 1 and a shared table otherwise.
	// Use PaperConfig (1-D) or PaperConfigFor to get the paper's
	// defaults.
	Exponent float64
}

// PaperConfig returns the configuration the paper analyzes in one
// dimension: links long links per node drawn from the inverse power law
// with exponent 1.
func PaperConfig(links int) BuildConfig {
	return BuildConfig{Links: links, Exponent: 1}
}

// PaperConfigFor returns the paper's configuration generalized to
// space: exponent equal to the dimension, the harmonic (routing-optimal)
// member of the power-law family for any d.
func PaperConfigFor(space metric.Space, links int) BuildConfig {
	return BuildConfig{Links: links, Exponent: float64(space.Dim())}
}

// Validate checks the configuration.
func (c BuildConfig) Validate() error {
	if c.Links < 0 {
		return fmt.Errorf("graph: negative link count %d", c.Links)
	}
	return nil
}

// BuildIdeal constructs the paper's idealized overlay over space: every
// grid point hosts a node; each node gets cfg.Links long links whose
// targets follow the inverse power law with cfg.Exponent (directions
// chosen by the mass on each side of a 1-D space — so line boundary
// nodes are handled exactly — and uniformly on a sphere of a torus).
func BuildIdeal(space metric.Space, cfg BuildConfig, src *rng.Source) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := New(space)
	if err := populateLinks(g, cfg, src, nil); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildIdealWithPresence constructs the binomial-node-model overlay of
// §4.3.4.1: only present points host nodes, and every link sampled
// toward an absent point is redirected to the nearest present node (the
// basin-of-attraction rule), so links connect only existing nodes.
func BuildIdealWithPresence(space metric.Space, cfg BuildConfig, present []bool, src *rng.Source) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := NewWithPresence(space, present)
	if err != nil {
		return nil, err
	}
	redirect := func(g *Graph, from, target metric.Point) (metric.Point, bool) {
		q, ok := g.NearestExisting(target)
		if !ok || q == from {
			return 0, false
		}
		return q, true
	}
	if err := populateLinks(g, cfg, src, redirect); err != nil {
		return nil, err
	}
	return g, nil
}

// populateLinks draws cfg.Links long links for every existing node from
// the space's target sampler. redirect, when non-nil, maps a sampled
// target to the point actually linked (or rejects it); the sample is
// retried a bounded number of times on rejection.
func populateLinks(g *Graph, cfg BuildConfig, src *rng.Source, redirect func(*Graph, metric.Point, metric.Point) (metric.Point, bool)) error {
	if cfg.Links == 0 {
		return nil
	}
	sampler, err := g.space.NewLinkSampler(cfg.Exponent)
	if err != nil {
		return err
	}
	for i := 0; i < g.Size(); i++ {
		p := metric.Point(i)
		if !g.Exists(p) {
			continue
		}
		for k := 0; k < cfg.Links; k++ {
			const retries = 32
			linked := false
			for attempt := 0; attempt < retries; attempt++ {
				target, ok := sampler.Sample(p, src)
				if !ok {
					break
				}
				if redirect != nil {
					target, ok = redirect(g, p, target)
					if !ok {
						continue
					}
				}
				if err := g.AddLong(p, target); err != nil {
					return err
				}
				linked = true
				break
			}
			if !linked && g.AliveCount() > 1 {
				// Fall back to a short-range link so the degree
				// invariant holds even in pathological presence
				// masks, scanning every grid direction (a torus row
				// can be empty while another axis has a neighbour).
			fallback:
				for axis := 1; axis <= g.space.Dim(); axis++ {
					for _, dir := range [2]int{+axis, -axis} {
						if q, ok := g.ShortNeighbor(p, dir); ok {
							if err := g.AddLong(p, q); err != nil {
								return err
							}
							break fallback
						}
					}
				}
			}
		}
	}
	return nil
}

// BuildDeterministic constructs the deterministic overlay of Theorem 14:
// with base b, every node links to the points at distances j·b^i for
// j ∈ 1..b−1 and i ∈ 0..⌈log_b n⌉−1 along both directions of every axis
// (links that would leave a line are dropped). Routing over this graph
// eliminates one base-b digit of the remaining per-axis distance per
// hop.
func BuildDeterministic(space metric.Space, b int, src *rng.Source) (*Graph, error) {
	if b < 2 {
		return nil, fmt.Errorf("graph: deterministic base must be >= 2, got %d", b)
	}
	g := New(space)
	n := space.Size()
	levels := mathx.CeilLog(n, b)
	for i := 0; i < n; i++ {
		p := metric.Point(i)
		for lvl := 0; lvl < levels; lvl++ {
			step := mathx.IPow(b, lvl)
			for j := 1; j < b; j++ {
				d := j * step
				if d >= n {
					break
				}
				for axis := 1; axis <= space.Dim(); axis++ {
					for _, dir := range [2]int{+axis, -axis} {
						q, ok := space.Offset(p, dir, d)
						if ok && q != p {
							if err := g.AddLong(p, q); err != nil {
								return nil, err
							}
						}
					}
				}
			}
		}
	}
	return g, nil
}

// BuildDeterministicPowers constructs the simplified deterministic
// overlay of Theorem 16: links at distances b^0, b^1, …, b^⌊log_b n⌋
// only (both directions of every axis). This is the variant the paper
// analyzes under link failures.
func BuildDeterministicPowers(space metric.Space, b int) (*Graph, error) {
	if b < 2 {
		return nil, fmt.Errorf("graph: deterministic base must be >= 2, got %d", b)
	}
	g := New(space)
	n := space.Size()
	for i := 0; i < n; i++ {
		p := metric.Point(i)
		for step := 1; step < n; step *= b {
			for axis := 1; axis <= space.Dim(); axis++ {
				for _, dir := range [2]int{+axis, -axis} {
					q, ok := space.Offset(p, dir, step)
					if ok && q != p {
						if err := g.AddLong(p, q); err != nil {
							return nil, err
						}
					}
				}
			}
			if step > n/b {
				break
			}
		}
	}
	return g, nil
}
