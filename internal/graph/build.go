package graph

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
)

// BuildConfig parameterizes the ideal (directly sampled) random-graph
// builders.
type BuildConfig struct {
	// Links is the number ℓ of long-distance links per node. The
	// paper's randomized strategy draws them independently with
	// replacement (Theorem 13).
	Links int
	// Exponent is the inverse power-law exponent of the link-length
	// distribution, used literally: 1 is the paper's distribution
	// (Pr[d] ∝ 1/d), 0 is uniform, 2 matches Kleinberg's 1-D-inapt
	// exponent, etc. Exponent 1 uses the O(log) analytic sampler;
	// other values fall back to a table sampler shared across nodes.
	// Use PaperConfig to get the paper's defaults.
	Exponent float64
}

// PaperConfig returns the configuration the paper analyzes: links long
// links per node drawn from the inverse power law with exponent 1.
func PaperConfig(links int) BuildConfig {
	return BuildConfig{Links: links, Exponent: 1}
}

// Validate checks the configuration.
func (c BuildConfig) Validate() error {
	if c.Links < 0 {
		return fmt.Errorf("graph: negative link count %d", c.Links)
	}
	return nil
}

// BuildIdeal constructs the paper's idealized overlay over space: every
// grid point hosts a node; each node gets cfg.Links long links whose
// lengths follow the inverse power law with cfg.Exponent, directions
// chosen by the mass on each side (uniform on a ring; proportional to
// the harmonic mass of each side on a line, so boundary nodes are
// handled exactly).
func BuildIdeal(space metric.Space1D, cfg BuildConfig, src *rng.Source) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := New(space)
	if err := populateLinks(g, cfg, src, nil); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildIdealWithPresence constructs the binomial-node-model overlay of
// §4.3.4.1: only present points host nodes, and every link sampled
// toward an absent point is redirected to the nearest present node (the
// basin-of-attraction rule), so links connect only existing nodes.
func BuildIdealWithPresence(space metric.Space1D, cfg BuildConfig, present []bool, src *rng.Source) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := NewWithPresence(space, present)
	if err != nil {
		return nil, err
	}
	redirect := func(g *Graph, from, target metric.Point) (metric.Point, bool) {
		q, ok := g.NearestExisting(target)
		if !ok || q == from {
			return 0, false
		}
		return q, true
	}
	if err := populateLinks(g, cfg, src, redirect); err != nil {
		return nil, err
	}
	return g, nil
}

// populateLinks draws cfg.Links long links for every existing node.
// redirect, when non-nil, maps a sampled target to the point actually
// linked (or rejects it); the sample is retried a bounded number of
// times on rejection.
func populateLinks(g *Graph, cfg BuildConfig, src *rng.Source, redirect func(*Graph, metric.Point, metric.Point) (metric.Point, bool)) error {
	if cfg.Links == 0 {
		return nil
	}
	var table *rng.PowerLawSampler
	if cfg.Exponent != 0 && cfg.Exponent != 1 {
		var err error
		table, err = rng.NewPowerLawSampler(maxSampleDistance(g.space, 0), cfg.Exponent)
		if err != nil {
			return err
		}
	}
	for i := 0; i < g.Size(); i++ {
		p := metric.Point(i)
		if !g.Exists(p) {
			continue
		}
		for k := 0; k < cfg.Links; k++ {
			const retries = 32
			linked := false
			for attempt := 0; attempt < retries; attempt++ {
				target, ok := sampleTarget(g.space, p, cfg.Exponent, table, src)
				if !ok {
					break
				}
				if redirect != nil {
					target, ok = redirect(g, p, target)
					if !ok {
						continue
					}
				}
				if err := g.AddLong(p, target); err != nil {
					return err
				}
				linked = true
				break
			}
			if !linked && g.AliveCount() > 1 {
				// Fall back to a short-range link so the degree
				// invariant holds even in pathological presence masks.
				if q, ok := g.ShortNeighbor(p, +1); ok {
					if err := g.AddLong(p, q); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// SamplePaperTarget draws one long-link target for node p under the
// paper's distribution (inverse power law, exponent 1) over the whole
// space. ok is false when the space has no other point. The dynamic
// construction heuristic (package construct) uses this to aim both
// outgoing links and incoming-link requests.
func SamplePaperTarget(space metric.Space1D, p metric.Point, src *rng.Source) (metric.Point, bool) {
	return sampleTarget(space, p, 1, nil, src)
}

// maxSampleDistance returns the largest admissible link distance from a
// node of the space. On a ring every node sees ⌈(n−1)/2⌉ distinct
// distances per side; on a line the bound depends on the position, so
// callers pass pos >= 0 for per-node bounds and 0 for a global bound.
func maxSampleDistance(space metric.Space1D, _ int) int {
	n := space.Size()
	if _, isRing := space.(*metric.Ring); isRing {
		m := (n - 1) / 2
		if m < 1 {
			m = 1
		}
		return m
	}
	if n-1 < 1 {
		return 1
	}
	return n - 1
}

// sampleTarget draws one long-link target for node p under the inverse
// power law Pr[v] ∝ d(p,v)^(-exponent), normalized over all points
// v ≠ p of the space (§4.3: "each long-distance neighbor v is chosen
// with probability inversely proportional to the distance between u and
// v"). ok is false when the space has no other point.
func sampleTarget(space metric.Space1D, p metric.Point, exponent float64, table *rng.PowerLawSampler, src *rng.Source) (metric.Point, bool) {
	n := space.Size()
	if n < 2 {
		return 0, false
	}
	switch s := space.(type) {
	case *metric.Ring:
		// By symmetry each side carries equal mass; the (even-n)
		// antipodal point is reachable from either side, which double
		// counts a single O(1/n) mass — negligible and unbiased.
		maxD := (n - 1) / 2
		if maxD < 1 {
			maxD = 1
		}
		d := sampleDistance(src, maxD, exponent, table)
		dir := 1
		if src.Bool(0.5) {
			dir = -1
		}
		return s.Add(p, dir*d), true
	default:
		// Line: the left side offers distances 1..p, the right side
		// 1..n-1-p. Choose the side in proportion to its total mass,
		// then the distance within the side.
		left := int(p)
		right := n - 1 - int(p)
		if left == 0 && right == 0 {
			return 0, false
		}
		lMass := sideMass(left, exponent, table)
		rMass := sideMass(right, exponent, table)
		goLeft := src.Float64()*(lMass+rMass) < lMass
		if goLeft && left > 0 {
			return p - metric.Point(sampleDistance(src, left, exponent, table)), true
		}
		if right > 0 {
			return p + metric.Point(sampleDistance(src, right, exponent, table)), true
		}
		return p - metric.Point(sampleDistance(src, left, exponent, table)), true
	}
}

// sideMass returns the unnormalized probability mass of distances
// 1..max under the configured exponent.
func sideMass(max int, exponent float64, table *rng.PowerLawSampler) float64 {
	if max <= 0 {
		return 0
	}
	if exponent == 1 || table == nil && exponent == 0 {
		if exponent == 1 {
			return mathx.Harmonic(max)
		}
		return float64(max)
	}
	// General exponent: use the table's CDF by rescaling. The table is
	// normalized over [1, table.Max()]; relative masses are what we
	// need, so cumulative probability up to max is proportional.
	var m float64
	if table != nil {
		for d := 1; d <= max && d <= table.Max(); d++ {
			m += table.Prob(d)
		}
	}
	return m
}

// sampleDistance draws a link length in [1, max].
func sampleDistance(src *rng.Source, max int, exponent float64, table *rng.PowerLawSampler) int {
	switch {
	case exponent == 1:
		return rng.SampleHarmonic(src, max)
	case exponent == 0:
		return src.Intn(max) + 1
	default:
		for i := 0; i < 64; i++ {
			if d := table.Sample(src); d <= max {
				return d
			}
		}
		return src.Intn(max) + 1
	}
}

// BuildDeterministic constructs the deterministic overlay of Theorem 14:
// with base b, every node links to the points at distances j·b^i for
// j ∈ 1..b−1 and i ∈ 0..⌈log_b n⌉−1 in both directions (links that
// would leave a line are dropped). Routing over this graph eliminates
// one base-b digit of the remaining distance per hop.
func BuildDeterministic(space metric.Space1D, b int, src *rng.Source) (*Graph, error) {
	if b < 2 {
		return nil, fmt.Errorf("graph: deterministic base must be >= 2, got %d", b)
	}
	g := New(space)
	n := space.Size()
	levels := mathx.CeilLog(n, b)
	for i := 0; i < n; i++ {
		p := metric.Point(i)
		for lvl := 0; lvl < levels; lvl++ {
			step := mathx.IPow(b, lvl)
			for j := 1; j < b; j++ {
				d := j * step
				if d >= n {
					break
				}
				for _, dir := range []int{+1, -1} {
					q, ok := offsetPoint(space, p, dir*d)
					if ok && q != p {
						if err := g.AddLong(p, q); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return g, nil
}

// BuildDeterministicPowers constructs the simplified deterministic
// overlay of Theorem 16: links at distances b^0, b^1, …, b^⌊log_b n⌋
// only (both directions). This is the variant the paper analyzes under
// link failures.
func BuildDeterministicPowers(space metric.Space1D, b int) (*Graph, error) {
	if b < 2 {
		return nil, fmt.Errorf("graph: deterministic base must be >= 2, got %d", b)
	}
	g := New(space)
	n := space.Size()
	for i := 0; i < n; i++ {
		p := metric.Point(i)
		for step := 1; step < n; step *= b {
			for _, dir := range []int{+1, -1} {
				q, ok := offsetPoint(space, p, dir*step)
				if ok && q != p {
					if err := g.AddLong(p, q); err != nil {
						return nil, err
					}
				}
			}
			if step > n/b {
				break
			}
		}
	}
	return g, nil
}

// offsetPoint returns the point at signed offset delta from p, when it
// exists (rings wrap; lines reject out-of-range offsets).
func offsetPoint(space metric.Space1D, p metric.Point, delta int) (metric.Point, bool) {
	if r, ok := space.(*metric.Ring); ok {
		return r.Add(p, delta), true
	}
	q := metric.Point(int(p) + delta)
	if !space.Contains(q) {
		return 0, false
	}
	return q, true
}
