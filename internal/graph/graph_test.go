package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/metric"
	"repro/internal/rng"
)

func mustRing(t testing.TB, n int) *metric.Ring {
	t.Helper()
	r, err := metric.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustLine(t testing.TB, n int) *metric.Line {
	t.Helper()
	l, err := metric.NewLine(n)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewAllPresent(t *testing.T) {
	g := New(mustRing(t, 16))
	if g.Size() != 16 || g.AliveCount() != 16 {
		t.Fatalf("size/alive = %d/%d", g.Size(), g.AliveCount())
	}
	for p := 0; p < 16; p++ {
		if !g.Exists(metric.Point(p)) || !g.Alive(metric.Point(p)) {
			t.Errorf("point %d should exist and be alive", p)
		}
	}
	if g.Exists(-1) || g.Exists(16) || g.Alive(99) {
		t.Error("out-of-range points must not exist")
	}
}

func TestNewWithPresence(t *testing.T) {
	sp := mustRing(t, 8)
	if _, err := NewWithPresence(sp, make([]bool, 3)); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewWithPresence(sp, make([]bool, 8)); err == nil {
		t.Error("empty presence should error")
	}
	present := []bool{true, false, true, false, false, true, false, false}
	g, err := NewWithPresence(sp, present)
	if err != nil {
		t.Fatal(err)
	}
	if g.AliveCount() != 3 {
		t.Errorf("alive = %d, want 3", g.AliveCount())
	}
	if g.Exists(1) || !g.Exists(2) {
		t.Error("presence mask not honored")
	}
}

func TestFailRevive(t *testing.T) {
	g := New(mustRing(t, 4))
	if !g.Fail(2) {
		t.Error("first Fail should report transition")
	}
	if g.Fail(2) {
		t.Error("second Fail should be a no-op")
	}
	if g.Alive(2) || !g.Exists(2) {
		t.Error("failed node should exist but not be alive")
	}
	if g.AliveCount() != 3 {
		t.Errorf("alive = %d", g.AliveCount())
	}
	if !g.Revive(2) {
		t.Error("Revive should report transition")
	}
	if g.Revive(2) {
		t.Error("double Revive should be a no-op")
	}
	if g.AliveCount() != 4 {
		t.Errorf("alive after revive = %d", g.AliveCount())
	}
	if g.Fail(99) || g.Revive(99) {
		t.Error("out-of-range Fail/Revive must be no-ops")
	}
}

func TestAddLongValidation(t *testing.T) {
	g := New(mustRing(t, 4))
	if err := g.AddLong(0, 0); err == nil {
		t.Error("self-link should error")
	}
	if err := g.AddLong(0, 99); err == nil {
		t.Error("out-of-range link should error")
	}
	if err := g.AddLong(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLong(0, 2); err != nil {
		t.Fatal("duplicate links must be permitted:", err)
	}
	links := g.Long(0)
	if len(links) != 2 || links[0].To != 2 || !links[0].Up {
		t.Errorf("links = %+v", links)
	}
	if links[0].Seq >= links[1].Seq {
		t.Error("sequence numbers must increase")
	}
	if g.Long(-1) != nil {
		t.Error("Long out of range should be nil")
	}
	if g.LongLinkCount() != 2 {
		t.Errorf("LongLinkCount = %d", g.LongLinkCount())
	}
}

func TestReplaceLong(t *testing.T) {
	g := New(mustRing(t, 8))
	if err := g.AddLong(0, 3); err != nil {
		t.Fatal(err)
	}
	oldSeq := g.Long(0)[0].Seq
	if err := g.ReplaceLong(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	lk := g.Long(0)[0]
	if lk.To != 5 || !lk.Up || lk.Seq <= oldSeq {
		t.Errorf("after replace: %+v", lk)
	}
	if err := g.ReplaceLong(0, 1, 5); err == nil {
		t.Error("bad index should error")
	}
	if err := g.ReplaceLong(0, 0, 0); err == nil {
		t.Error("redirect to self should error")
	}
}

func TestSetLongUp(t *testing.T) {
	g := New(mustRing(t, 8))
	if err := g.AddLong(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLongUp(0, 0, false); err != nil {
		t.Fatal(err)
	}
	if g.Long(0)[0].Up {
		t.Error("link should be down")
	}
	if err := g.SetLongUp(0, 5, false); err == nil {
		t.Error("bad index should error")
	}
}

func TestShortNeighborSkipsHoles(t *testing.T) {
	sp := mustRing(t, 8)
	present := []bool{true, false, false, true, true, false, false, false}
	g, err := NewWithPresence(sp, present)
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := g.ShortNeighbor(0, +1); !ok || q != 3 {
		t.Errorf("right neighbor of 0 = %v,%v, want 3", q, ok)
	}
	if q, ok := g.ShortNeighbor(0, -1); !ok || q != 4 {
		t.Errorf("left neighbor of 0 = %v,%v, want 4 (wrap)", q, ok)
	}
}

func TestShortNeighborLineBoundary(t *testing.T) {
	g := New(mustLine(t, 4))
	if _, ok := g.ShortNeighbor(0, -1); ok {
		t.Error("no left neighbor at line start")
	}
	if q, ok := g.ShortNeighbor(0, +1); !ok || q != 1 {
		t.Errorf("right neighbor of 0 = %v,%v", q, ok)
	}
	if _, ok := g.ShortNeighbor(3, +1); ok {
		t.Error("no right neighbor at line end")
	}
}

func TestShortNeighborSingleNode(t *testing.T) {
	sp := mustRing(t, 4)
	present := []bool{true, false, false, false}
	g, err := NewWithPresence(sp, present)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.ShortNeighbor(0, +1); ok {
		t.Error("single node must have no neighbor")
	}
}

func TestForEachNeighborDedupes(t *testing.T) {
	sp := mustRing(t, 8)
	present := []bool{true, false, false, false, true, false, false, false}
	g, err := NewWithPresence(sp, present)
	if err != nil {
		t.Fatal(err)
	}
	var got []metric.Point
	g.ForEachNeighbor(0, func(q metric.Point) { got = append(got, q) })
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("neighbors of 0 = %v, want [4] exactly once", got)
	}
}

func TestForEachNeighborIncludesUpLongLinks(t *testing.T) {
	g := New(mustRing(t, 16))
	if err := g.AddLong(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLong(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLongUp(0, 1, false); err != nil {
		t.Fatal(err)
	}
	count := map[metric.Point]int{}
	g.ForEachNeighbor(0, func(q metric.Point) { count[q]++ })
	if count[5] != 1 {
		t.Error("up long link missing")
	}
	if count[9] != 0 {
		t.Error("down long link must be hidden")
	}
	if count[1] != 1 || count[15] != 1 {
		t.Errorf("short neighbors wrong: %v", count)
	}
	// Dead neighbours are still enumerated; routing filters them.
	g.Fail(5)
	count = map[metric.Point]int{}
	g.ForEachNeighbor(0, func(q metric.Point) { count[q]++ })
	if count[5] != 1 {
		t.Error("dead neighbour should still be enumerated")
	}
}

func TestNearestExisting(t *testing.T) {
	sp := mustRing(t, 8)
	present := []bool{true, false, false, true, false, false, false, false}
	g, err := NewWithPresence(sp, present)
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := g.NearestExisting(3); !ok || q != 3 {
		t.Error("existing target should map to itself")
	}
	if q, ok := g.NearestExisting(2); !ok || q != 3 {
		t.Errorf("nearest to 2 = %v, want 3", q)
	}
	if q, ok := g.NearestExisting(1); !ok || q != 0 {
		t.Errorf("nearest to 1 = %v, want 0 (tie breaks low side)", q)
	}
	if _, ok := g.NearestExisting(-1); ok {
		t.Error("out of range should fail")
	}
}

func TestRandomAliveUniform(t *testing.T) {
	g := New(mustRing(t, 8))
	g.Fail(0)
	g.Fail(1)
	src := rng.New(5)
	counts := map[metric.Point]int{}
	const draws = 12000
	for i := 0; i < draws; i++ {
		p, ok := g.RandomAlive(src)
		if !ok {
			t.Fatal("RandomAlive failed with live nodes present")
		}
		if !g.Alive(p) {
			t.Fatalf("RandomAlive returned dead node %d", p)
		}
		counts[p]++
	}
	want := draws / 6
	for p, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %d drawn %d times, want ~%d", p, c, want)
		}
	}
}

func TestRandomAliveSparse(t *testing.T) {
	g := New(mustRing(t, 64))
	for p := 0; p < 63; p++ {
		g.Fail(metric.Point(p))
	}
	src := rng.New(6)
	for i := 0; i < 10; i++ {
		p, ok := g.RandomAlive(src)
		if !ok || p != 63 {
			t.Fatalf("RandomAlive = %v,%v, want 63", p, ok)
		}
	}
	g.Fail(63)
	if _, ok := g.RandomAlive(src); ok {
		t.Error("RandomAlive must fail with no live nodes")
	}
}

func TestAvgOutDegree(t *testing.T) {
	g := New(mustRing(t, 4))
	if g.AvgOutDegree() != 0 {
		t.Error("fresh graph degree should be 0")
	}
	if err := g.AddLong(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLong(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.AvgOutDegree(); got != 0.5 {
		t.Errorf("AvgOutDegree = %v, want 0.5", got)
	}
}

func TestLinkLengthHistogram(t *testing.T) {
	g := New(mustRing(t, 10))
	if err := g.AddLong(0, 1); err != nil { // distance 1
		t.Fatal(err)
	}
	if err := g.AddLong(0, 5); err != nil { // distance 5
		t.Fatal(err)
	}
	if err := g.AddLong(3, 9); err != nil { // distance 4
		t.Fatal(err)
	}
	h := g.LinkLengthHistogram()
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(0) != 1 || h.Count(4) != 1 || h.Count(3) != 1 {
		t.Errorf("histogram counts wrong: d1=%d d5=%d d4=%d", h.Count(0), h.Count(4), h.Count(3))
	}
}

// Property: NearestExisting always returns an existing point whose
// distance to the target is minimal among existing points.
func TestNearestExistingIsNearest(t *testing.T) {
	sp := mustRing(t, 32)
	f := func(mask uint32, tt uint8) bool {
		present := make([]bool, 32)
		any := false
		for i := 0; i < 32; i++ {
			present[i] = mask&(1<<uint(i)) != 0
			any = any || present[i]
		}
		if !any {
			return true
		}
		g, err := NewWithPresence(sp, present)
		if err != nil {
			return false
		}
		target := metric.Point(tt % 32)
		got, ok := g.NearestExisting(target)
		if !ok {
			return false
		}
		best := 1 << 30
		for i := 0; i < 32; i++ {
			if present[i] {
				if d := sp.Distance(metric.Point(i), target); d < best {
					best = d
				}
			}
		}
		return g.Exists(got) && sp.Distance(got, target) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
