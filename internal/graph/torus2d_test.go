// These tests migrated from the deleted internal/highdim adapter: the
// same 2-D behavioural guarantees — build shape, delivery, small-world
// speedup, failure bookkeeping, dead-end recovery — expressed directly
// against the generic metric.NewTorus + graph + route + failure
// pipeline the adapter used to wrap.
package graph_test

import (
	"testing"
	"testing/quick"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

// build2D constructs a side×side torus overlay with the given link
// count and exponent (0 = uniform targets).
func build2D(t testing.TB, side, links int, exponent float64, seed uint64) *graph.Graph {
	t.Helper()
	torus, err := metric.NewTorus(side, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(torus, graph.BuildConfig{Links: links, Exponent: exponent}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// route2D runs one two-sided greedy search with the torus-scale hop cap
// the old adapter applied (4·side + 64).
func route2D(t testing.TB, g *graph.Graph, from, to metric.Point, backtrack bool) route.Result {
	t.Helper()
	side := 0
	if tor, ok := g.Space().(*metric.Torus); ok {
		side = tor.Side()
	}
	opt := route.Options{DeadEnd: route.Terminate, MaxHops: 4*side + 64}
	if backtrack {
		opt.DeadEnd = route.Backtrack
	}
	res, err := route.New(g, opt).Route(rng.New(0), from, to)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTorusBuildShape(t *testing.T) {
	g := build2D(t, 16, 3, 2, 1)
	if g.Size() != 256 || g.AliveCount() != 256 {
		t.Errorf("size/alive = %d/%d", g.Size(), g.AliveCount())
	}
	for p := 0; p < g.Size(); p++ {
		if got := len(g.Long(metric.Point(p))); got != 3 {
			t.Fatalf("node %d has %d long links", p, got)
		}
	}
}

func TestTorusRouteAlwaysDeliversNoFailures(t *testing.T) {
	g := build2D(t, 32, 2, 2, 2)
	space := g.Space()
	src := rng.New(3)
	for i := 0; i < 100; i++ {
		from := metric.Point(src.Intn(g.Size()))
		to := metric.Point(src.Intn(g.Size()))
		res := route2D(t, g, from, to, false)
		if !res.Delivered {
			t.Fatalf("failure-free 2-D search %d->%d failed", from, to)
		}
		if res.Hops > space.Distance(from, to) {
			t.Fatalf("greedy exceeded grid distance: %d > %d",
				res.Hops, space.Distance(from, to))
		}
	}
}

func TestTorusRouteValidatesEndpoints(t *testing.T) {
	g := build2D(t, 8, 1, 2, 4)
	r := route.New(g, route.Options{})
	if _, err := r.Route(rng.New(0), 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := failure.FailNodesFraction(g, 1.0/64.0, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	var dead metric.Point = -1
	for p := 0; p < g.Size(); p++ {
		if !g.Alive(metric.Point(p)) {
			dead = metric.Point(p)
			break
		}
	}
	if dead == -1 {
		t.Fatal("no node failed")
	}
	if _, err := r.Route(rng.New(0), dead, 5); err == nil {
		t.Error("dead origin should error")
	}
}

func TestTorusSmallWorldSpeedup(t *testing.T) {
	// With exponent 2, mean hops must beat the torus diameter scale
	// (Θ(side)) and the too-local exponent 3. The asymptotic win of
	// exponent 2 over uniform targets only emerges at grid sizes far
	// beyond unit-test scale (Kleinberg's separation is log²n vs
	// n^{1/3}), so the uniform comparison is left to the ext.2d
	// experiment, which records the measured sweep.
	const side = 48
	measure := func(exponent float64) float64 {
		g := build2D(t, side, 4, exponent, 6)
		src := rng.New(7)
		total := 0
		const searches = 150
		for i := 0; i < searches; i++ {
			from := metric.Point(src.Intn(g.Size()))
			to := metric.Point(src.Intn(g.Size()))
			res := route2D(t, g, from, to, false)
			if !res.Delivered {
				t.Fatal("failure-free search failed")
			}
			total += res.Hops
		}
		return float64(total) / searches
	}
	critical := measure(2)
	tooLocal := measure(3)
	if critical >= tooLocal {
		t.Errorf("exponent 2 (%v hops) should beat exponent 3 (%v hops) in 2-D", critical, tooLocal)
	}
	if critical > side/2 {
		t.Errorf("exponent-2 routing took %v hops, should be far below diameter", critical)
	}
}

func TestTorusFailFractionBookkeeping(t *testing.T) {
	g := build2D(t, 16, 2, 2, 8)
	crashed, err := failure.FailNodesFraction(g, 0.25, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if crashed != 64 || g.AliveCount() != 192 {
		t.Errorf("crashed %d, alive %d", crashed, g.AliveCount())
	}
	if _, err := failure.FailNodesFraction(g, 2, rng.New(9)); err == nil {
		t.Error("invalid fraction should error")
	}
	count := 0
	for p := 0; p < g.Size(); p++ {
		if !g.Alive(metric.Point(p)) {
			count++
		}
	}
	if count != 64 {
		t.Errorf("dead count = %d", count)
	}
}

func TestTorusBacktrackBeatsTerminate(t *testing.T) {
	const side = 32
	src := rng.New(10)
	g := build2D(t, side, 5, 2, 11)
	if _, err := failure.FailNodesFraction(g, 0.4, rng.New(12)); err != nil {
		t.Fatal(err)
	}
	failedT, failedB := 0, 0
	const searches = 200
	for i := 0; i < searches; i++ {
		from, ok1 := g.RandomAlive(src)
		to, ok2 := g.RandomAlive(src)
		if !ok1 || !ok2 || from == to {
			continue
		}
		if !route2D(t, g, from, to, false).Delivered {
			failedT++
		}
		if !route2D(t, g, from, to, true).Delivered {
			failedB++
		}
	}
	if failedB > failedT {
		t.Errorf("backtracking (%d failures) should not lose to terminate (%d)", failedB, failedT)
	}
}

func TestTorusRandomAliveProperty(t *testing.T) {
	g := build2D(t, 8, 1, 2, 13)
	if _, err := failure.FailNodesFraction(g, 0.9, rng.New(14)); err != nil {
		t.Fatal(err)
	}
	src := rng.New(15)
	f := func(_ uint8) bool {
		p, ok := g.RandomAlive(src)
		return ok && g.Alive(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
