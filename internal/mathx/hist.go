package mathx

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram over integer values in [1, Max].
// Bucket i (zero-based) covers exactly the value i+1 when Log is false;
// when Log is true buckets are powers of two: bucket i covers
// [2^i, 2^{i+1}).
//
// The zero value is not usable; construct with NewHistogram or
// NewLogHistogram.
type Histogram struct {
	counts []int64
	total  int64
	max    int
	log    bool
}

// NewHistogram returns a linear histogram over values in [1, max].
func NewHistogram(max int) *Histogram {
	if max < 1 {
		max = 1
	}
	return &Histogram{counts: make([]int64, max), max: max}
}

// NewLogHistogram returns a power-of-two bucketed histogram over values
// in [1, max].
func NewLogHistogram(max int) *Histogram {
	if max < 1 {
		max = 1
	}
	buckets := ILog2(max) + 1
	return &Histogram{counts: make([]int64, buckets), max: max, log: true}
}

// Add records one observation of value v. Values outside [1, Max] are
// clamped into range so that totals stay consistent.
func (h *Histogram) Add(v int) {
	if v < 1 {
		v = 1
	}
	if v > h.max {
		v = h.max
	}
	idx := v - 1
	if h.log {
		idx = ILog2(v)
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
	}
	h.counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Count returns the raw count in bucket i.
func (h *Histogram) Count(i int) int64 {
	if i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i]
}

// Probability returns the empirical probability mass of bucket i.
func (h *Histogram) Probability(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(i)) / float64(h.total)
}

// BucketLabel returns a human-readable label for bucket i.
func (h *Histogram) BucketLabel(i int) string {
	if !h.log {
		return fmt.Sprintf("%d", i+1)
	}
	lo := 1 << uint(i)
	hi := lo*2 - 1
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// MaxAbsError returns the largest absolute difference between this
// histogram's bucket probabilities and other's. Histograms must have the
// same shape; otherwise it returns +Inf.
func (h *Histogram) MaxAbsError(other *Histogram) float64 {
	if other == nil || len(h.counts) != len(other.counts) || h.log != other.log {
		return math.Inf(1)
	}
	var worst float64
	for i := range h.counts {
		d := math.Abs(h.Probability(i) - other.Probability(i))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// String renders the histogram as an ASCII table of probabilities,
// skipping empty buckets.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "histogram (n=%d)\n", h.total)
	for i := range h.counts {
		if h.counts[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12s %10d  %.6f\n", h.BucketLabel(i), h.counts[i], h.Probability(i))
	}
	return b.String()
}
