package mathx

import (
	"sort"
	"testing"
)

func TestHeapSortsInts(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b }, 4)
	in := []int{5, 3, 8, 1, 9, 2, 7, 2, 0, 6}
	for _, v := range in {
		h.Push(v)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	if h.Peek() != 0 {
		t.Fatalf("Peek = %d, want 0", h.Peek())
	}
	want := append([]int(nil), in...)
	sort.Ints(want)
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after draining = %d", h.Len())
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	// The discrete-event pattern: pushes never precede the last pop, so
	// pops must come out non-decreasing.
	h := NewHeap(func(a, b int) bool { return a < b }, 0)
	h.Push(1)
	h.Push(4)
	last := -1
	for i := 0; h.Len() > 0; i++ {
		v := h.Pop()
		if v < last {
			t.Fatalf("pop %d went backward: %d after %d", i, v, last)
		}
		last = v
		if i < 5 {
			h.Push(v + 3)
			h.Push(v + 2)
		}
	}
}

func TestHeapReset(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b }, 2)
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push(7)
	if h.Pop() != 7 {
		t.Fatal("heap unusable after Reset")
	}
}
