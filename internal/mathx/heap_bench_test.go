package mathx

import "testing"

// heapEvent mirrors the engine's event struct so the benchmarks
// measure the exact value shape the hot loop moves.
type heapEvent struct {
	time float64
	msg  int
	idx  int
}

func heapEventLess(a, b heapEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.msg != b.msg {
		return a.msg < b.msg
	}
	return a.idx < b.idx
}

// lcg is a tiny deterministic generator so benchmark times are not
// rng-package noise.
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// BenchmarkHeapPushPop measures the steady-state event-loop pattern:
// one pop, one push, heap size constant — the per-event heap cost of
// the engine.
func BenchmarkHeapPushPop(b *testing.B) {
	h := NewHeap(heapEventLess, 1024)
	x := uint64(1)
	for i := 0; i < 1024; i++ {
		x = lcg(x)
		h.Push(heapEvent{time: float64(x % (1 << 20)), msg: i, idx: 0})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := h.Pop()
		e.time += 64
		e.idx++
		h.Push(e)
	}
}

// BenchmarkHeapPushAll measures pure insertion into a pre-reserved
// heap — the admission burst at a window barrier.
func BenchmarkHeapPushAll(b *testing.B) {
	h := NewHeap(heapEventLess, b.N)
	h.Reserve(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	x := uint64(1)
	for i := 0; i < b.N; i++ {
		x = lcg(x)
		h.Push(heapEvent{time: float64(x % (1 << 20)), msg: i, idx: 0})
	}
}

// TestHeapSteadyStateAllocs asserts the engine's allocation contract:
// once the backing slice is warm, pop-then-push cycles allocate
// nothing, and Reserve makes a known-size push burst allocation-free.
func TestHeapSteadyStateAllocs(t *testing.T) {
	h := NewHeap(heapEventLess, 256)
	x := uint64(1)
	for i := 0; i < 256; i++ {
		x = lcg(x)
		h.Push(heapEvent{time: float64(x % (1 << 16)), msg: i, idx: 0})
	}
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e := h.Pop()
			e.time += 16
			e.idx++
			h.Push(e)
		}
	}); avg != 0 {
		t.Errorf("steady-state pop/push allocates %.2f per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		h.Reserve(h.Len() + 128)
		for i := 0; i < 128; i++ {
			h.Push(heapEvent{time: float64(i), msg: i, idx: 0})
		}
		for i := 0; i < 128; i++ {
			h.Pop()
		}
	}); avg != 0 {
		t.Errorf("reserved push burst allocates %.2f per run, want 0", avg)
	}
}

// TestHeapReserve pins Reserve's semantics: contents survive, capacity
// reaches the request, and a smaller request is a no-op.
func TestHeapReserve(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b }, 0)
	for i := 16; i > 0; i-- {
		h.Push(i)
	}
	h.Reserve(500)
	if got := cap(h.s); got < 500 {
		t.Errorf("capacity %d after Reserve(500)", got)
	}
	h.Reserve(4) // no-op: already larger
	for want := 1; want <= 16; want++ {
		if got := h.Pop(); got != want {
			t.Fatalf("pop %d after Reserve, want %d", got, want)
		}
	}
}
