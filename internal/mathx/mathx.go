// Package mathx provides small numeric helpers shared across the
// repository: harmonic numbers, integer logarithms, descriptive
// statistics, histograms, and least-squares fits.
//
// Everything in this package is deterministic and allocation-conscious;
// the experiment harness calls these helpers in inner loops.
package mathx

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics helpers that require at least one sample.
var ErrEmpty = errors.New("mathx: empty sample set")

// Harmonic returns the n-th harmonic number H_n = sum_{i=1..n} 1/i.
// For n <= 0 it returns 0. For large n it uses the asymptotic expansion
// H_n ≈ ln n + γ + 1/(2n) − 1/(12n²), which is accurate to well below
// 1e-10 for n ≥ 256; below that it sums directly.
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n < 256 {
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	fn := float64(n)
	return math.Log(fn) + EulerGamma + 1/(2*fn) - 1/(12*fn*fn)
}

// EulerGamma is the Euler–Mascheroni constant γ.
const EulerGamma = 0.57721566490153286060651209008240243

// HarmonicRange returns H_b − H_a = sum_{i=a+1..b} 1/i for 0 <= a <= b.
func HarmonicRange(a, b int) float64 {
	if a < 0 {
		a = 0
	}
	if b <= a {
		return 0
	}
	return Harmonic(b) - Harmonic(a)
}

// Log2 returns the base-2 logarithm of n as a float. n must be positive.
func Log2(n int) float64 { return math.Log2(float64(n)) }

// ILog2 returns floor(log2(n)) for n >= 1, and -1 for n <= 0.
func ILog2(n int) int {
	if n <= 0 {
		return -1
	}
	k := -1
	for n > 0 {
		n >>= 1
		k++
	}
	return k
}

// CeilLog returns ceil(log_b(n)) for n >= 1 and base b >= 2.
// CeilLog(1, b) == 0.
func CeilLog(n, b int) int {
	if n <= 1 {
		return 0
	}
	k, p := 0, 1
	for p < n {
		// Guard against overflow: if p would overflow, the next power
		// certainly exceeds n, so one more step suffices.
		if p > (1<<62)/b {
			return k + 1
		}
		p *= b
		k++
	}
	return k
}

// IPow returns base^exp for non-negative exp using binary exponentiation.
// It does not guard against overflow; callers keep operands small.
func IPow(base, exp int) int {
	r := 1
	for exp > 0 {
		if exp&1 == 1 {
			r *= base
		}
		base *= base
		exp >>= 1
	}
	return r
}

// AbsInt returns |x|.
func AbsInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// MinInt returns the smaller of a and b.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MaxInt returns the larger of a and b.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Summary holds descriptive statistics of a float sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes descriptive statistics over xs.
// It returns ErrEmpty when xs is empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s, nil
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// slice using linear interpolation between closest ranks. The slice must
// be non-empty and sorted; Percentile does not verify either.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// NearestRank returns the nearest-rank q-quantile (0 <= q <= 1) of an
// ascending-sorted slice: the sample at rank round(q·n), clamped into
// range, with no interpolation. This is the estimator the traffic
// pipeline's latency summaries have always pinned in their seeded
// goldens; Percentile is the interpolating alternative. Returns 0 on
// empty input.
func NearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a, slope b, and the coefficient of determination R².
// It returns ErrEmpty if fewer than two points are supplied.
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("mathx: mismatched slice lengths")
	}
	if len(xs) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errors.New("mathx: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	// R² = 1 − SS_res/SS_tot.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	if ssTot == 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2, nil
}

// PowerFit fits y = c * x^k by linear regression in log-log space and
// returns (c, k, r2). All xs and ys must be positive.
func PowerFit(xs, ys []float64) (c, k, r2 float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || i >= len(ys) || ys[i] <= 0 {
			return 0, 0, 0, errors.New("mathx: PowerFit requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b, r2, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return math.Exp(a), b, r2, nil
}
