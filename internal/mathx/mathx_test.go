package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicSmall(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{2, 1.5},
		{3, 1.0 + 0.5 + 1.0/3.0},
		{10, 2.9289682539682538},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHarmonicAsymptoticMatchesDirect(t *testing.T) {
	// The asymptotic branch kicks in at n=256; compare against a direct
	// sum at several sizes spanning the switch.
	for _, n := range []int{255, 256, 257, 1000, 10000} {
		direct := 0.0
		for i := 1; i <= n; i++ {
			direct += 1 / float64(i)
		}
		if got := Harmonic(n); math.Abs(got-direct) > 1e-9 {
			t.Errorf("Harmonic(%d) = %v, direct sum %v", n, got, direct)
		}
	}
}

func TestHarmonicMonotone(t *testing.T) {
	f := func(n uint16) bool {
		m := int(n%5000) + 1
		return Harmonic(m+1) > Harmonic(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarmonicRange(t *testing.T) {
	if got := HarmonicRange(2, 4); math.Abs(got-(1.0/3+1.0/4)) > 1e-12 {
		t.Errorf("HarmonicRange(2,4) = %v", got)
	}
	if got := HarmonicRange(4, 4); got != 0 {
		t.Errorf("HarmonicRange(4,4) = %v, want 0", got)
	}
	if got := HarmonicRange(-1, 2); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("HarmonicRange(-1,2) = %v, want 1.5", got)
	}
}

func TestILog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, -1}, {-3, -1}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := ILog2(c.n); got != c.want {
			t.Errorf("ILog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestILog2Property(t *testing.T) {
	f := func(v uint32) bool {
		n := int(v%1000000) + 1
		k := ILog2(n)
		return 1<<uint(k) <= n && n < 1<<uint(k+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilLog(t *testing.T) {
	cases := []struct{ n, b, want int }{
		{1, 2, 0}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2}, {5, 2, 3},
		{8, 2, 3}, {9, 2, 4}, {16384, 2, 14},
		{1, 10, 0}, {10, 10, 1}, {11, 10, 2}, {100, 10, 2}, {101, 10, 3},
		{27, 3, 3}, {28, 3, 4},
	}
	for _, c := range cases {
		if got := CeilLog(c.n, c.b); got != c.want {
			t.Errorf("CeilLog(%d,%d) = %d, want %d", c.n, c.b, got, c.want)
		}
	}
}

func TestIPow(t *testing.T) {
	cases := []struct{ b, e, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {10, 3, 1000}, {1, 100, 1}, {7, 1, 7},
	}
	for _, c := range cases {
		if got := IPow(c.b, c.e); got != c.want {
			t.Errorf("IPow(%d,%d) = %d, want %d", c.b, c.e, got, c.want)
		}
	}
}

func TestIPowCeilLogInverse(t *testing.T) {
	f := func(v uint16, bb uint8) bool {
		n := int(v%60000) + 1
		b := int(bb%14) + 2
		k := CeilLog(n, b)
		return IPow(b, k) >= n && (k == 0 || IPow(b, k-1) < n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
	s, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestPercentileBounds(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if got := Percentile(sorted, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(sorted, 1); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(sorted, 0.5); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, pr uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sortFloats(xs)
		p := float64(pr) / 255
		v := Percentile(xs, p)
		return v >= xs[0] && v <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = (%v,%v,%v), want (3,2,1)", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("want error for degenerate x")
	}
}

func TestPowerFitExact(t *testing.T) {
	// y = 4 x^1.5
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 4 * math.Pow(x, 1.5)
	}
	c, k, r2, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-4) > 1e-9 || math.Abs(k-1.5) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("power fit = (%v,%v,%v)", c, k, r2)
	}
}

func TestPowerFitRejectsNonPositive(t *testing.T) {
	if _, _, _, err := PowerFit([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("want error for non-positive x")
	}
	if _, _, _, err := PowerFit([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("want error for non-positive y")
	}
}

func TestMinMaxAbs(t *testing.T) {
	if MinInt(3, -2) != -2 || MaxInt(3, -2) != 3 {
		t.Error("MinInt/MaxInt broken")
	}
	if AbsInt(-7) != 7 || AbsInt(7) != 7 || AbsInt(0) != 0 {
		t.Error("AbsInt broken")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean broken")
	}
}

func TestNearestRank(t *testing.T) {
	if got := NearestRank(nil, 0.5); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	// The pinned contract of the traffic pipeline's latency summaries:
	// over 1..100, the nearest-rank p50/p95/p99 are exactly 50/95/99.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.50, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	} {
		if got := NearestRank(xs, tc.q); got != tc.want {
			t.Errorf("NearestRank(1..100, %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := NearestRank([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element = %v, want 7", got)
	}
}

func TestNearestRankWithinRange(t *testing.T) {
	f := func(raw []float64, qr uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sortFloats(xs)
		q := float64(qr) / 255
		v := NearestRank(xs, q)
		return v >= xs[0] && v <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
