package mathx

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramLinear(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{1, 2, 2, 3, 4, 4, 4, 9, 0} {
		h.Add(v) // 9 clamps to 4, 0 clamps to 1
	}
	if h.Total() != 9 {
		t.Fatalf("total = %d", h.Total())
	}
	wantCounts := []int64{2, 2, 1, 4}
	for i, w := range wantCounts {
		if h.Count(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Count(i), w)
		}
	}
	if p := h.Probability(3); math.Abs(p-4.0/9.0) > 1e-12 {
		t.Errorf("P(bucket 3) = %v", p)
	}
	if h.Count(-1) != 0 || h.Count(100) != 0 {
		t.Error("out-of-range Count should be 0")
	}
}

func TestHistogramLog(t *testing.T) {
	h := NewLogHistogram(16)
	// buckets: [1],[2,3],[4,7],[8,15],[16,31]
	if h.Buckets() != 5 {
		t.Fatalf("buckets = %d, want 5", h.Buckets())
	}
	for v := 1; v <= 16; v++ {
		h.Add(v)
	}
	want := []int64{1, 2, 4, 8, 1}
	for i, w := range want {
		if h.Count(i) != w {
			t.Errorf("log bucket %d = %d, want %d", i, h.Count(i), w)
		}
	}
	if got := h.BucketLabel(0); got != "1" {
		t.Errorf("label(0) = %q", got)
	}
	if got := h.BucketLabel(2); got != "4-7" {
		t.Errorf("label(2) = %q", got)
	}
}

func TestHistogramMaxAbsError(t *testing.T) {
	a := NewHistogram(3)
	b := NewHistogram(3)
	for i := 0; i < 10; i++ {
		a.Add(1)
		b.Add(1)
	}
	if e := a.MaxAbsError(b); e != 0 {
		t.Errorf("identical histograms error = %v", e)
	}
	b.Add(3) // shifts mass
	if e := a.MaxAbsError(b); e <= 0 {
		t.Errorf("error should be positive, got %v", e)
	}
	c := NewHistogram(4)
	if !math.IsInf(a.MaxAbsError(c), 1) {
		t.Error("mismatched shapes should yield +Inf")
	}
	if !math.IsInf(a.MaxAbsError(nil), 1) {
		t.Error("nil other should yield +Inf")
	}
}

func TestHistogramProbabilitySumsToOne(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewLogHistogram(1 << 14)
		for _, v := range vals {
			h.Add(int(v) + 1)
		}
		var sum float64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.Probability(i)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(2)
	h.Add(1)
	s := h.String()
	if !strings.Contains(s, "n=1") {
		t.Errorf("String() = %q", s)
	}
}

func TestHistogramDegenerateMax(t *testing.T) {
	h := NewHistogram(0)
	h.Add(5)
	if h.Total() != 1 || h.Count(0) != 1 {
		t.Error("degenerate max histogram should clamp")
	}
	lh := NewLogHistogram(-3)
	lh.Add(1)
	if lh.Total() != 1 {
		t.Error("degenerate log histogram should clamp")
	}
}
