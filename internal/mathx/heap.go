package mathx

// Heap is a binary min-heap over T under an explicit strict ordering,
// the generics replacement for the container/heap boilerplate the
// virtual-time replays used to carry: Push and Pop move concrete
// values, so there is no interface{} boxing on the hot path, and the
// backing slice is preallocated and reused across Pops instead of
// reallocated per operation.
//
// When less is a strict total order (no two distinct pushed elements
// compare equal in both directions), the sequence of Pops is uniquely
// determined by the multiset of pushed elements — independent of push
// order and of the heap's internal layout. The discrete-event engine
// (internal/engine) leans on exactly that property for determinism,
// and internal/engine's property tests pin it.
type Heap[T any] struct {
	less func(a, b T) bool
	s    []T
}

// NewHeap returns an empty heap ordered by less, with room for
// capacity elements before the backing slice grows.
func NewHeap[T any](less func(a, b T) bool, capacity int) *Heap[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Heap[T]{less: less, s: make([]T, 0, capacity)}
}

// Len returns the number of elements held.
func (h *Heap[T]) Len() int { return len(h.s) }

// Push adds v to the heap.
func (h *Heap[T]) Push(v T) {
	h.s = append(h.s, v)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.s[i], h.s[parent]) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

// Peek returns the minimum element without removing it. It must not be
// called on an empty heap.
func (h *Heap[T]) Peek() T { return h.s[0] }

// Pop removes and returns the minimum element. It must not be called
// on an empty heap. The backing slice is retained for reuse.
func (h *Heap[T]) Pop() T {
	top := h.s[0]
	n := len(h.s) - 1
	h.s[0] = h.s[n]
	var zero T
	h.s[n] = zero // release references held by pointer-bearing T
	h.s = h.s[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(h.s[left], h.s[smallest]) {
			smallest = left
		}
		if right < n && h.less(h.s[right], h.s[smallest]) {
			smallest = right
		}
		if smallest == i {
			break
		}
		h.s[i], h.s[smallest] = h.s[smallest], h.s[i]
		i = smallest
	}
	return top
}

// Reserve grows the backing slice to hold at least capacity elements,
// so a burst of Pushes up to that size cannot reallocate mid-loop. The
// sharded event engine calls it when cross-shard handoff batches are
// admitted: the batch size is known before the pushes start, and a
// shard's heap lives for the whole run, so paying the growth once
// keeps the per-event path allocation-free.
func (h *Heap[T]) Reserve(capacity int) {
	if capacity <= cap(h.s) {
		return
	}
	s := make([]T, len(h.s), capacity)
	copy(s, h.s)
	h.s = s
}

// Reset empties the heap, keeping the backing slice for reuse.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.s {
		h.s[i] = zero
	}
	h.s = h.s[:0]
}
