package chain

// Empirical verification of the Theorem 2 machinery on the aggregate
// chain: the quantity Y_t = T(X_t) (zeroed after any long jump) must
// satisfy E[Y_t − Y_{t+1}] ≤ εY_0 + (1−ε) — the submartingale drift
// bound (equation (13)) from which the lower bound follows.

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// tFunc evaluates the T(x) integral of Theorem 2 for the aggregate
// chain with f(S) = ln|S|, using the constant m_z = ln a as a valid
// (if crude) speed bound: each short step shrinks ln|S| by less than
// ln a by definition of the conditioning, so 1/m_z = 1/ln a underesti-
// mates the time only up to the theorem's own slack.
func tFunc(size int, lna float64) float64 {
	if size <= 1 {
		return 0
	}
	return math.Log(float64(size)) / lna
}

func TestTheorem2DriftBound(t *testing.T) {
	const n = 1 << 10
	d := harmonic(t, n, 4)
	ell := d.ExpectedSize()
	a := 3 * ell * math.Pow(math.Log(n), 3)
	lna := math.Log(a)
	eps := 3 * ell / a // Lemma 6's bound on the long-jump probability

	src := rng.New(21)
	y0 := tFunc(n, lna)
	var driftSum float64
	var steps int
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s := Interval{Lo: 1, Hi: n}
		longJumped := false
		y := y0
		for !s.IsTarget() && y > 0 {
			prev := s.Size()
			var err error
			s, err = AggregateStep(s, d, OneSided, src)
			if err != nil {
				t.Fatal(err)
			}
			var yNext float64
			if longJumped || float64(prev)/float64(s.Size()) >= a {
				longJumped = true
				yNext = 0
			} else {
				yNext = tFunc(s.Size(), lna)
			}
			driftSum += y - yNext
			steps++
			y = yNext
		}
	}
	meanDrift := driftSum / float64(steps)
	bound := eps*y0 + (1 - eps)
	if meanDrift > bound*1.05 { // 5% sampling slack
		t.Errorf("mean one-step drift %v exceeds Theorem 2 bound %v", meanDrift, bound)
	}
	// And the resulting lower bound must hold: E[τ] ≥ Y0/(εY0+(1−ε)).
	// Measure τ directly.
	src2 := rng.New(22)
	var tauSum int
	for trial := 0; trial < trials; trial++ {
		sizes, err := AggregateRun(n, d, OneSided, src2, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		tauSum += len(sizes) - 1
	}
	meanTau := float64(tauSum) / trials
	lower := y0 / (eps*y0 + (1 - eps))
	if meanTau < lower {
		t.Errorf("measured E[tau] = %v below the Theorem 2 lower bound %v", meanTau, lower)
	}
}
