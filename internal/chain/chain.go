// Package chain implements the combinatorial machinery behind the
// paper's lower bound (§4.2): the single-point greedy trajectory chain
// X^t, the aggregate interval chain S^t that tracks all starting points
// at once, and the boundary-point analysis of Lemma 7.
//
// The package exists to make the proof's objects runnable: tests verify
// Lemma 4 (the aggregate chain faithfully represents the single-point
// chain), Lemma 5 (aggregate states stay intervals of one sign), and
// Lemma 6 (the interval rarely shrinks by a large ratio in one step) by
// direct simulation, turning the paper's most technical section into
// checked code.
//
// Model (§4.2.2): node x has outgoing links to x−δ for each δ in its
// offset set ∆, drawn fresh at every visit from a common distribution;
// ±1 are always present. One-sided routing moves to the node x−∆i with
// the smallest non-negative label; two-sided to the label with the
// smallest absolute value.
package chain

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// OffsetDist draws offset sets ∆. Implementations must always include
// +1 and −1 (the short links).
type OffsetDist interface {
	// Sample returns the offsets of a fresh node, in any order.
	// The slice may be reused by the caller.
	Sample(src *rng.Source) []int
	// ExpectedSize returns E[|∆|] = ℓ, used by the Lemma 6 bound.
	ExpectedSize() float64
}

// BernoulliDist includes each offset δ independently with probability
// p(δ) — the product-form distribution §4.2.2 assumes for the two-sided
// bound: symmetric about 0, unimodal, p(±1) = 1.
type BernoulliDist struct {
	// Probs maps |δ| ≥ 2 to inclusion probability; ±1 are implicit.
	// The same probability applies to +δ and −δ (symmetry).
	Probs map[int]float64
}

// NewHarmonicBernoulli returns the paper's motivating instance:
// p(δ) = c/|δ| for 2 ≤ |δ| ≤ max, scaled so the expected number of long
// links per side is links/2. Inclusion probabilities are capped at 1.
func NewHarmonicBernoulli(max, links int) (*BernoulliDist, error) {
	if max < 2 {
		return nil, fmt.Errorf("chain: max offset must be >= 2, got %d", max)
	}
	if links < 0 {
		return nil, fmt.Errorf("chain: negative link count %d", links)
	}
	var h float64
	for d := 2; d <= max; d++ {
		h += 1 / float64(d)
	}
	c := float64(links) / 2 / h
	probs := make(map[int]float64, max-1)
	for d := 2; d <= max; d++ {
		p := c / float64(d)
		if p > 1 {
			p = 1
		}
		probs[d] = p
	}
	return &BernoulliDist{Probs: probs}, nil
}

// Sample implements OffsetDist.
func (b *BernoulliDist) Sample(src *rng.Source) []int {
	out := []int{1, -1}
	// Deterministic iteration order for reproducibility.
	ds := make([]int, 0, len(b.Probs))
	for d := range b.Probs {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	for _, d := range ds {
		p := b.Probs[d]
		if src.Bool(p) {
			out = append(out, d)
		}
		if src.Bool(p) {
			out = append(out, -d)
		}
	}
	return out
}

// ExpectedSize implements OffsetDist.
func (b *BernoulliDist) ExpectedSize() float64 {
	e := 2.0
	for _, p := range b.Probs {
		e += 2 * p
	}
	return e
}

// Sidedness selects the greedy variant (§4.2.1).
type Sidedness int

const (
	// OneSided never moves past the target at 0.
	OneSided Sidedness = iota + 1
	// TwoSided minimizes |label|, ties broken toward the positive
	// side.
	TwoSided
)

// Step applies the §4.2.1 successor function s(x, ∆): from label x
// (target at 0), with offset set delta, return the next label.
func Step(x int, delta []int, side Sidedness) int {
	best := x
	bestAbs := abs(x)
	for _, d := range delta {
		y := x - d
		if side == OneSided {
			// Never pass 0: candidates must satisfy 0 <= y < x for
			// positive x (symmetrically for negative).
			if x > 0 && (y < 0 || y >= x) {
				continue
			}
			if x < 0 && (y > 0 || y <= x) {
				continue
			}
		}
		a := abs(y)
		if a < bestAbs || (a == bestAbs && y > best) {
			best, bestAbs = y, a
		}
	}
	return best
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Trajectory runs the single-point chain X^t from start until it
// reaches 0 or maxSteps elapse, returning the number of steps taken and
// whether 0 was reached.
func Trajectory(start int, dist OffsetDist, side Sidedness, src *rng.Source, maxSteps int) (steps int, reached bool) {
	x := start
	for t := 0; t < maxSteps; t++ {
		if x == 0 {
			return t, true
		}
		x = Step(x, dist.Sample(src), side)
	}
	return maxSteps, x == 0
}

// Interval is an aggregate state: the contiguous set {Lo..Hi} of
// same-sign labels (§4.2.3). Lo <= Hi always; the zero state is
// {0..0}.
type Interval struct {
	Lo, Hi int
}

// Size returns |S| = Hi − Lo + 1.
func (iv Interval) Size() int { return iv.Hi - iv.Lo + 1 }

// IsTarget reports the absorbing state {0}.
func (iv Interval) IsTarget() bool { return iv.Lo == 0 && iv.Hi == 0 }

// Validate checks the §4.2.3 state invariant: a single-sign interval.
func (iv Interval) Validate() error {
	if iv.Lo > iv.Hi {
		return fmt.Errorf("chain: interval [%d,%d] inverted", iv.Lo, iv.Hi)
	}
	if iv.Lo < 0 && iv.Hi > 0 {
		return fmt.Errorf("chain: interval [%d,%d] mixes signs", iv.Lo, iv.Hi)
	}
	return nil
}

// AggregateStep performs one transition of the aggregate chain S^t
// (equation (14)): draw one ∆, split S into the subranges that share a
// successor-and-sign, pick a subrange with probability proportional to
// its size, and move it. It returns the new interval.
func AggregateStep(s Interval, dist OffsetDist, side Sidedness, src *rng.Source) (Interval, error) {
	if err := s.Validate(); err != nil {
		return s, err
	}
	if s.IsTarget() {
		return s, nil
	}
	delta := dist.Sample(src)
	// Group the points of S by (offset taken, successor sign) — the
	// subranges S_{∆iσ} of §4.2.3. The greedy rule is deterministic
	// given ∆, so each point lands in exactly one group; contiguity
	// (Lemma 5) would let us track only endpoints, but grouping
	// explicitly keeps the code checkable against the paper.
	type gk struct {
		di   int
		sign int
	}
	byGroup := make(map[gk][]int)
	for x := s.Lo; x <= s.Hi; x++ {
		if x == 0 {
			continue
		}
		next := Step(x, delta, side)
		di := x - next // the offset actually taken
		byGroup[gk{di: di, sign: sign(next)}] = append(byGroup[gk{di: di, sign: sign(next)}], x)
	}
	if len(byGroup) == 0 {
		return Interval{}, nil // S was exactly {0}
	}
	// Select a group ∝ size.
	total := 0
	keys := make([]gk, 0, len(byGroup))
	for k := range byGroup {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].di != keys[j].di {
			return keys[i].di < keys[j].di
		}
		return keys[i].sign < keys[j].sign
	})
	for _, k := range keys {
		total += len(byGroup[k])
	}
	r := src.Intn(total)
	var chosen gk
	for _, k := range keys {
		if r < len(byGroup[k]) {
			chosen = k
			break
		}
		r -= len(byGroup[k])
	}
	members := byGroup[chosen]
	// S^{t+1} = S_{∆iσ} − ∆i: shift every member by the common offset.
	lo, hi := members[0]-chosen.di, members[0]-chosen.di
	for _, x := range members[1:] {
		y := x - chosen.di
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	next := Interval{Lo: lo, Hi: hi}
	if err := next.Validate(); err != nil {
		return next, err
	}
	return next, nil
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// AggregateRun iterates the aggregate chain from {1..n} until the
// target absorbs it or maxSteps elapse, returning the trajectory of
// interval sizes (|S^0|, |S^1|, …).
func AggregateRun(n int, dist OffsetDist, side Sidedness, src *rng.Source, maxSteps int) ([]int, error) {
	s := Interval{Lo: 1, Hi: n}
	sizes := []int{s.Size()}
	for t := 0; t < maxSteps && !s.IsTarget(); t++ {
		var err error
		s, err = AggregateStep(s, dist, side, src)
		if err != nil {
			return sizes, err
		}
		sizes = append(sizes, s.Size())
	}
	return sizes, nil
}

// BoundaryPoints computes the β set of Lemma 7 for a fixed ∆: the
// midpoints β_i = ⌈(∆_i + ∆_{i+1})/2⌉ over consecutive positive
// offsets, and the mirrored ⌊·⌋ midpoints over negative offsets. These
// are the only points (besides the offsets themselves and min(S)) where
// the greedy successor function can split an interval.
func BoundaryPoints(delta []int) []int {
	pos := make([]int, 0, len(delta))
	neg := make([]int, 0, len(delta))
	for _, d := range delta {
		if d > 0 {
			pos = append(pos, d)
		} else if d < 0 {
			neg = append(neg, d)
		}
	}
	sort.Ints(pos)
	sort.Sort(sort.Reverse(sort.IntSlice(neg))) // −1, −2, …
	var beta []int
	for i := 0; i+1 < len(pos); i++ {
		sum := pos[i] + pos[i+1]
		beta = append(beta, (sum+1)/2) // ceil for positives
	}
	for i := 0; i+1 < len(neg); i++ {
		sum := neg[i] + neg[i+1]
		beta = append(beta, -((-sum + 1) / 2)) // floor for negatives
	}
	return beta
}
