package chain

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func harmonic(t testing.TB, max, links int) *BernoulliDist {
	t.Helper()
	d, err := NewHarmonicBernoulli(max, links)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewHarmonicBernoulliValidation(t *testing.T) {
	if _, err := NewHarmonicBernoulli(1, 4); err == nil {
		t.Error("max < 2 should error")
	}
	if _, err := NewHarmonicBernoulli(16, -1); err == nil {
		t.Error("negative links should error")
	}
}

func TestBernoulliSampleAlwaysHasShortLinks(t *testing.T) {
	d := harmonic(t, 64, 4)
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		delta := d.Sample(src)
		has1, hasM1 := false, false
		for _, o := range delta {
			if o == 1 {
				has1 = true
			}
			if o == -1 {
				hasM1 = true
			}
		}
		if !has1 || !hasM1 {
			t.Fatalf("∆ = %v missing ±1", delta)
		}
	}
}

func TestBernoulliExpectedSize(t *testing.T) {
	d := harmonic(t, 256, 6)
	src := rng.New(2)
	var total int
	const draws = 20000
	for i := 0; i < draws; i++ {
		total += len(d.Sample(src))
	}
	got := float64(total) / draws
	want := d.ExpectedSize()
	if math.Abs(got-want) > 0.1 {
		t.Errorf("empirical E|∆| = %v, declared %v", got, want)
	}
	// Construction: ~links long offsets plus the two short ones.
	if want < 6 || want > 9 {
		t.Errorf("ExpectedSize = %v, want ≈ links+2 = 8", want)
	}
}

func TestStepOneSidedNeverPasses(t *testing.T) {
	f := func(xx uint16, seed uint64) bool {
		x := int(xx%1000) + 1
		d := BernoulliDist{Probs: map[int]float64{2: 0.5, 7: 0.5, 30: 0.5}}
		delta := d.Sample(rng.New(seed))
		y := Step(x, delta, OneSided)
		return y >= 0 && y < x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepTwoSidedMinimizesAbs(t *testing.T) {
	// x=10, offsets {1,-1,12}: candidates 9, 11, -2. Two-sided picks
	// -2 (|−2| < |9|); one-sided refuses to pass 0 and picks 9.
	delta := []int{1, -1, 12}
	if got := Step(10, delta, TwoSided); got != -2 {
		t.Errorf("two-sided Step = %d, want -2", got)
	}
	if got := Step(10, delta, OneSided); got != 9 {
		t.Errorf("one-sided Step = %d, want 9", got)
	}
}

func TestStepExactHit(t *testing.T) {
	delta := []int{1, -1, 10}
	if got := Step(10, delta, TwoSided); got != 0 {
		t.Errorf("Step = %d, want exact hit 0", got)
	}
	if got := Step(10, delta, OneSided); got != 0 {
		t.Errorf("one-sided Step = %d, want 0", got)
	}
}

func TestTrajectoryReachesTarget(t *testing.T) {
	d := harmonic(t, 512, 6)
	src := rng.New(3)
	steps, reached := Trajectory(500, d, TwoSided, src, 100000)
	if !reached {
		t.Fatal("±1 links guarantee eventual arrival")
	}
	if steps <= 0 || steps > 600 {
		t.Errorf("steps = %d; greedy should be far below the distance bound", steps)
	}
}

func TestTrajectoryOneSided(t *testing.T) {
	d := harmonic(t, 512, 6)
	src := rng.New(4)
	if _, reached := Trajectory(300, d, OneSided, src, 100000); !reached {
		t.Fatal("one-sided trajectory should arrive")
	}
	if steps, reached := Trajectory(0, d, OneSided, src, 10); !reached || steps != 0 {
		t.Error("starting at the target is a zero-step trajectory")
	}
}

// Lemma 5: aggregate states remain single-sign intervals under both
// sidedness variants.
func TestAggregateStatesStayIntervals(t *testing.T) {
	d := harmonic(t, 256, 4)
	for _, side := range []Sidedness{OneSided, TwoSided} {
		src := rng.New(5)
		s := Interval{Lo: 1, Hi: 200}
		for step := 0; step < 500 && !s.IsTarget(); step++ {
			var err error
			s, err = AggregateStep(s, d, side, src)
			if err != nil {
				t.Fatalf("side %v step %d: %v", side, step, err)
			}
		}
	}
}

// Lemma 4: the aggregate chain represents the single-point chain — the
// expected absorption time from a uniform start matches the expected
// absorption time of the aggregate chain within sampling error.
func TestAggregateMatchesSinglePoint(t *testing.T) {
	const n = 128
	d := harmonic(t, n, 4)

	// Single-point: mean steps from uniform random start.
	src := rng.New(6)
	var singleTotal int
	const trials = 800
	for i := 0; i < trials; i++ {
		start := src.Intn(n) + 1
		steps, reached := Trajectory(start, d, OneSided, src, 100000)
		if !reached {
			t.Fatal("trajectory did not arrive")
		}
		singleTotal += steps
	}
	singleMean := float64(singleTotal) / trials

	// Aggregate: mean steps until {1..n} collapses to {0}.
	src2 := rng.New(7)
	var aggTotal int
	for i := 0; i < trials; i++ {
		sizes, err := AggregateRun(n, d, OneSided, src2, 100000)
		if err != nil {
			t.Fatal(err)
		}
		aggTotal += len(sizes) - 1
	}
	aggMean := float64(aggTotal) / trials

	if math.Abs(singleMean-aggMean) > 0.25*singleMean {
		t.Errorf("Lemma 4 violated beyond noise: single-point mean %v vs aggregate mean %v",
			singleMean, aggMean)
	}
}

// Lemma 6: Pr[|S^{t+1}| <= |S^t|/a] <= 3ℓ/a. Verified empirically at
// a = 8.
func TestLemma6ShrinkProbability(t *testing.T) {
	const n, a = 512, 8.0
	d := harmonic(t, n, 4)
	src := rng.New(8)
	bigDrops, steps := 0, 0
	for trial := 0; trial < 300; trial++ {
		s := Interval{Lo: 1, Hi: n}
		for !s.IsTarget() && s.Size() > 8 {
			prev := s.Size()
			var err error
			s, err = AggregateStep(s, d, OneSided, src)
			if err != nil {
				t.Fatal(err)
			}
			steps++
			if float64(s.Size()) <= float64(prev)/a {
				bigDrops++
			}
		}
	}
	bound := 3 * d.ExpectedSize() / a
	got := float64(bigDrops) / float64(steps)
	if got > bound {
		t.Errorf("Lemma 6 violated: empirical big-drop rate %v exceeds 3ℓ/a = %v", got, bound)
	}
}

// Lemma 7 (via BoundaryPoints): the minimum elements of the subranges
// S_{∆iσ} are covered by {min(S)} ∪ {∆i} ∪ {∆i+1} ∪ {βi, βi+1}.
func TestBoundaryPointsCoverSplits(t *testing.T) {
	d := BernoulliDist{Probs: map[int]float64{3: 1, 9: 1, 27: 1}}
	src := rng.New(9)
	delta := d.Sample(src) // deterministic: all offsets present
	beta := BoundaryPoints(delta)
	allowed := map[int]bool{}
	for _, v := range delta {
		allowed[v] = true
		allowed[v+1] = true
	}
	for _, b := range beta {
		allowed[b] = true
		allowed[b+1] = true
	}
	const lo, hi = 1, 100
	allowed[lo] = true
	// Compute the subrange minima directly.
	type gk struct{ di, sign int }
	mins := map[gk]int{}
	for x := lo; x <= hi; x++ {
		next := Step(x, delta, TwoSided)
		k := gk{di: x - next, sign: sign(next)}
		if m, ok := mins[k]; !ok || x < m {
			mins[k] = x
		}
	}
	for k, m := range mins {
		if !allowed[m] {
			t.Errorf("subrange %+v has min %d not covered by Lemma 7's candidate set %v ∪ ∆=%v",
				k, m, beta, delta)
		}
	}
}

func TestBoundaryPointsSymmetry(t *testing.T) {
	beta := BoundaryPoints([]int{1, -1, 5, -5, 11, -11})
	// Positive midpoints: ceil((1+5)/2)=3, ceil((5+11)/2)=8.
	// Negative: floor((-1-5)/2)=-3, floor((-5-11)/2)=-8.
	want := map[int]bool{3: true, 8: true, -3: true, -8: true}
	if len(beta) != 4 {
		t.Fatalf("beta = %v", beta)
	}
	for _, b := range beta {
		if !want[b] {
			t.Errorf("unexpected boundary point %d in %v", b, beta)
		}
	}
}

func TestIntervalValidate(t *testing.T) {
	if err := (Interval{Lo: 3, Hi: 1}).Validate(); err == nil {
		t.Error("inverted interval should fail")
	}
	if err := (Interval{Lo: -2, Hi: 2}).Validate(); err == nil {
		t.Error("mixed-sign interval should fail")
	}
	if err := (Interval{Lo: 0, Hi: 0}).Validate(); err != nil {
		t.Error("target interval should validate")
	}
	if !(Interval{Lo: 0, Hi: 0}).IsTarget() {
		t.Error("IsTarget wrong")
	}
}

// The punchline of §4.2: measured one-sided routing time from a uniform
// start grows at least like the Theorem 10 integrand predicts — here we
// simply check the time grows superlinearly in lg n (i.e. ~log²),
// which separates it from the O(log n) of Chord-style structures.
func TestLowerBoundGrowth(t *testing.T) {
	means := map[int]float64{}
	for _, n := range []int{64, 512, 4096} {
		d := harmonic(t, n, 4)
		src := rng.New(10)
		var total int
		const trials = 300
		for i := 0; i < trials; i++ {
			start := src.Intn(n) + 1
			steps, reached := Trajectory(start, d, OneSided, src, 1000000)
			if !reached {
				t.Fatal("no arrival")
			}
			total += steps
		}
		means[n] = float64(total) / trials
	}
	// lg n grows 6→9→12; if T were Θ(log n) the ratios would be 1.5
	// and 1.33; log² predicts 2.25 and 1.78. Demand clearly more than
	// linear-in-log growth.
	r1 := means[512] / means[64]
	r2 := means[4096] / means[512]
	if r1 < 1.7 || r2 < 1.5 {
		t.Errorf("growth ratios %v, %v too small for a log² law (means: %v)", r1, r2, means)
	}
}
