// Package proptest is the repository's property-based testing harness:
// seeded generators of random-but-reproducible universes — metric
// spaces, built overlay graphs, traffic workloads, replica target sets
// — plus the invariant checks the routing and traffic layers must
// uphold on every one of them:
//
//   - greedy progress: a forward greedy walk never increases the
//     distance to its target set (strict decrease per hop);
//   - endpoint integrity: a delivered search's path starts at the
//     source and ends at a member of the target set;
//   - replay determinism: a traffic run is byte-identical across
//     worker counts and live event-loop shard counts, in snapshot and
//     live engine modes alike;
//   - engine equivalence: the discrete-event engine in snapshot mode
//     reproduces the pre-engine route-then-replay pipeline (preserved
//     as an executable oracle in internal/load's tests) byte-for-byte,
//     and the engine's event heap pops in its strict total order
//     regardless of push order.
//
// Everything is driven by an explicit seed, so a failing case is
// reproduced by its (seed, iteration) pair alone — no corpus files.
// The TestProp* tests here and in packages route, load, and engine are
// re-run with -count=2 in CI to catch state leaking between runs.
package proptest

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

// Gen draws random-but-reproducible test universes from one seeded
// stream. Not safe for concurrent use.
type Gen struct {
	src *rng.Source
}

// New returns a generator seeded with seed.
func New(seed uint64) *Gen { return &Gen{src: rng.New(seed)} }

// Space draws a metric space: the paper's ring (n in [16, 512]), a 2-D
// torus (side in [4, 22]), or a 3-D torus (side in [3, 8]).
func (g *Gen) Space(t testing.TB) metric.Space {
	t.Helper()
	var (
		s   metric.Space
		err error
	)
	switch g.src.Intn(3) {
	case 0:
		s, err = metric.NewRing(16 + g.src.Intn(497))
	case 1:
		s, err = metric.NewTorus(4+g.src.Intn(19), 2)
	default:
		s, err = metric.NewTorus(3+g.src.Intn(6), 3)
	}
	if err != nil {
		t.Fatalf("proptest: space: %v", err)
	}
	return s
}

// Graph draws a built overlay over a random space: 2-8 long links per
// node at the dimension-harmonic exponent, with up to 40% of the nodes
// crashed (always leaving at least two alive).
func (g *Gen) Graph(t testing.TB) *graph.Graph {
	t.Helper()
	space := g.Space(t)
	links := 2 + g.src.Intn(7)
	gr, err := graph.BuildIdeal(space, graph.PaperConfigFor(space, links), g.src.Derive(1))
	if err != nil {
		t.Fatalf("proptest: graph: %v", err)
	}
	if frac := float64(g.src.Intn(5)) / 10; frac > 0 {
		if _, err := failure.FailNodesFraction(gr, frac, g.src.Derive(2)); err != nil {
			t.Fatalf("proptest: failures: %v", err)
		}
	}
	return gr
}

// Workload draws one of the four traffic generators, with a random
// skew for the Zipf-based ones.
func (g *Gen) Workload() load.Generator {
	skew := 0.5 + g.src.Float64()
	switch g.src.Intn(4) {
	case 0:
		return load.Uniform()
	case 1:
		return load.Zipf(skew)
	case 2:
		return load.SkewedSources(skew)
	default:
		return load.Flood()
	}
}

// AlivePoint draws a uniformly random live node of gr.
func (g *Gen) AlivePoint(t testing.TB, gr *graph.Graph) metric.Point {
	t.Helper()
	p, ok := gr.RandomAlive(g.src)
	if !ok {
		t.Fatal("proptest: graph has no live nodes")
	}
	return p
}

// Targets draws a replica-style target set of 1-5 live points
// (duplicates allowed — the router must canonicalize).
func (g *Gen) Targets(t testing.TB, gr *graph.Graph) []metric.Point {
	t.Helper()
	n := 1 + g.src.Intn(5)
	out := make([]metric.Point, n)
	for i := range out {
		out[i] = g.AlivePoint(t, gr)
	}
	return out
}

// setDistance is the multi-target greedy objective: the metric
// distance to the closest live member of targets.
func setDistance(gr *graph.Graph, p metric.Point, targets []metric.Point) int {
	best := -1
	for _, tg := range targets {
		if !gr.Alive(tg) {
			continue
		}
		if d := gr.Space().Distance(p, tg); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// CheckGreedyProgress verifies the core greedy invariant on a traced
// two-sided Terminate-policy result: every hop strictly decreases the
// metric distance to the (live members of the) target set. It is the
// termination argument of the paper's greedy rule, and the
// congestion-penalized and multi-target variants must preserve it hop
// for hop. (One-sided routing minimizes forward distance instead, so
// this checker does not apply to it; Backtrack and RandomReroute
// results contain backward moves by design.)
func CheckGreedyProgress(t testing.TB, gr *graph.Graph, targets []metric.Point, res route.Result) {
	t.Helper()
	if len(res.Path) == 0 {
		t.Fatal("proptest: CheckGreedyProgress needs a traced path (route.Options.TracePath)")
	}
	prev := setDistance(gr, res.Path[0], targets)
	for i, p := range res.Path[1:] {
		d := setDistance(gr, p, targets)
		if d >= prev {
			t.Errorf("hop %d: distance to targets %v went %d -> %d at %d (path %v)",
				i+1, targets, prev, d, p, res.Path)
			return
		}
		prev = d
	}
}

// CheckEndpoints verifies delivery bookkeeping: a delivered search's
// path starts at the source and ends at Result.Target, which must be a
// live member of the target set; a failed search must not name a
// target. It needs a traced path.
func CheckEndpoints(t testing.TB, gr *graph.Graph, from metric.Point, targets []metric.Point, res route.Result) {
	t.Helper()
	if len(res.Path) == 0 {
		t.Fatal("proptest: CheckEndpoints needs a traced path (route.Options.TracePath)")
	}
	if res.Path[0] != from {
		t.Errorf("path starts at %d, want source %d", res.Path[0], from)
	}
	if !res.Delivered {
		if res.Target != -1 {
			t.Errorf("failed search names target %d", res.Target)
		}
		return
	}
	last := res.Path[len(res.Path)-1]
	if last != res.Target {
		t.Errorf("delivered path ends at %d, Result.Target = %d", last, res.Target)
	}
	if !gr.Alive(res.Target) {
		t.Errorf("delivered to dead point %d", res.Target)
	}
	found := false
	for _, tg := range targets {
		if tg == res.Target {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("delivered to %d, not a member of the target set %v", res.Target, targets)
	}
}

// CheckWorkerInvariance runs one traffic configuration at 1, 2 and 8
// workers and fails unless all three results — loads, latencies,
// search statistics, everything — are deeply equal. It returns the
// single-worker result for further assertions.
func CheckWorkerInvariance(t testing.TB, gr *graph.Graph, gen load.Generator, cfg load.Config, seed uint64) *load.Result {
	t.Helper()
	var want *load.Result
	for _, workers := range []int{1, 2, 8} {
		c := cfg
		c.Workers = workers
		got, err := load.Run(gr, gen, c, seed)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d diverged from workers=1:\n%s", workers, diffSummary(want, got))
		}
	}
	return want
}

// CheckShardInvariance runs one traffic configuration at 1, 2, 4 and 7
// live event-loop shards and fails unless all four results — loads,
// latencies, search statistics, everything — are deeply equal. This is
// the sharded engine's contract: partitioning the live loop across
// cores is a wall-clock optimization, never a semantic one.
// Configurations outside the parallel-eligible subset (congestion
// penalties, caching, closed-loop aggregation) fall back to the
// sequential loop at every shard count, so the check holds trivially
// there while still pinning that the eligibility gate itself never
// disturbs results. It returns the single-shard result for further
// assertions.
func CheckShardInvariance(t testing.TB, gr *graph.Graph, gen load.Generator, cfg load.Config, seed uint64) *load.Result {
	t.Helper()
	var want *load.Result
	for _, shards := range []int{1, 2, 4, 7} {
		c := cfg
		c.Shards = shards
		got, err := load.Run(gr, gen, c, seed)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if want == nil {
			want = got
			continue
		}
		// The resolved execution plan is *supposed* to differ across
		// shard counts (one shard is the sequential plan by definition);
		// the invariance contract covers every simulation output.
		got.Plan, got.PlanReason = want.Plan, want.PlanReason
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d diverged from shards=1:\n%s", shards, diffSummary(want, got))
		}
	}
	return want
}

// diffSummary names the fields that diverged, keeping failures
// readable without dumping two full load vectors.
func diffSummary(a, b *load.Result) string {
	av, bv := reflect.ValueOf(*a), reflect.ValueOf(*b)
	s := ""
	for i := 0; i < av.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			s += fmt.Sprintf("  field %s differs\n", av.Type().Field(i).Name)
		}
	}
	if s == "" {
		s = "  (no field-level diff?)"
	}
	return s
}
