package proptest

import (
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/load"
)

// ChurnSpec draws a seeded churn schedule description: background
// Poisson churn over an explicit horizon, optionally a correlated
// regional kill and a flash-crowd join, with resolved gossip knobs.
// The horizon is always explicit — never left for load's
// Messages/Rate defaulting — so a test can re-expand the schedule with
// failure.ChurnSpec.Generate and reproduce the engine's exact event
// list.
func (g *Gen) ChurnSpec(t testing.TB) failure.ChurnSpec {
	t.Helper()
	spec := failure.ChurnSpec{
		Rate:           0.05 + 0.2*g.src.Float64(),
		Horizon:        40 + 80*g.src.Float64(),
		ProbeTimeout:   1 + 3*g.src.Float64(),
		GossipInterval: 0.5 + g.src.Float64(),
		GossipFanout:   1 + g.src.Intn(3),
		Repair:         g.src.Bool(0.5),
	}
	if g.src.Bool(0.5) {
		spec.KillFrac = 0.1 + 0.2*g.src.Float64()
		spec.KillAt = spec.Horizon * g.src.Float64()
	}
	if g.src.Bool(0.4) {
		spec.FlashJoin = 1 + g.src.Intn(20)
		spec.FlashAt = spec.Horizon * g.src.Float64()
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("proptest: drew an invalid churn spec: %v", err)
	}
	return spec
}

// CheckShardInvarianceChurn is CheckShardInvariance for runs that
// mutate their graph: churn applies crashes, joins, and link repairs
// to the graph in place, so the shard counts cannot share one graph —
// each run gets a fresh, deterministically rebuilt copy from build.
// Results must still be deeply equal at 1, 2, 4 and 7 shards: churn
// runs shard whenever ProbeTimeout covers the service time (membership
// mutations apply at window barriers, windows clip at churn-op
// instants), so this fuzzes the sharded churn loop against its
// sequential reference byte-for-byte; fast-probe draws exercise the
// sequential fallback gate instead. Returns the single-shard result.
func CheckShardInvarianceChurn(t testing.TB, build func(testing.TB) *graph.Graph,
	gen load.Generator, cfg load.Config, seed uint64) *load.Result {
	t.Helper()
	var want *load.Result
	for _, shards := range []int{1, 2, 4, 7} {
		c := cfg
		c.Shards = shards
		got, err := load.Run(build(t), gen, c, seed)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if want == nil {
			want = got
			continue
		}
		// One shard resolves via the single-shard reason, several via the
		// sharded plan (or the fast-probe fallback); the invariance
		// contract covers every simulation output, not the plan's label.
		got.Plan, got.PlanReason = want.Plan, want.PlanReason
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d diverged from shards=1:\n%s", shards, diffSummary(want, got))
		}
	}
	return want
}

// CheckChurnLedger asserts the churn conservation identities every run
// must satisfy exactly: message conservation, the strand ledger, and
// rumor resolution (every applied event's rumor ends converged or
// abandoned — the run drains to membership quiescence).
func CheckChurnLedger(t testing.TB, res *load.Result) {
	t.Helper()
	if res.Injected != res.Delivered+res.Failed {
		t.Errorf("conservation broke: injected %d != delivered %d + failed %d",
			res.Injected, res.Delivered, res.Failed)
	}
	if res.Stranded != res.StrandResumed+res.StrandDropped {
		t.Errorf("strand ledger broke: stranded %d != resumed %d + dropped %d",
			res.Stranded, res.StrandResumed, res.StrandDropped)
	}
	if res.RumorsConverged+res.RumorsAbandoned != res.Crashes+res.Joins {
		t.Errorf("rumor ledger broke: %d converged + %d abandoned != %d crashes + %d joins",
			res.RumorsConverged, res.RumorsAbandoned, res.Crashes, res.Joins)
	}
}
