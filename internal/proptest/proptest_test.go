package proptest

import (
	"testing"

	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
)

// TestPropReplicaRoutingInvariants drives nearest-replica routing over
// random universes: plain and congestion-penalized greedy walks must
// make strict set-distance progress, and every delivery must end on a
// live member of its target set.
func TestPropReplicaRoutingInvariants(t *testing.T) {
	for iter := 0; iter < 60; iter++ {
		gen := New(uint64(1000 + iter))
		g := gen.Graph(t)
		opt := route.Options{TracePath: true}
		if iter%3 == 1 {
			opt.Congestion = func(q metric.Point) float64 { return float64(q % 5) }
		}
		if iter%3 == 2 {
			opt.DirectedOnly = true
		}
		r := route.New(g, opt)
		for i := 0; i < 20; i++ {
			from := gen.AlivePoint(t, g)
			targets := gen.Targets(t, g)
			res, err := r.RouteAny(rng.New(uint64(i)), from, targets)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			CheckGreedyProgress(t, g, targets, res)
			CheckEndpoints(t, g, from, targets, res)
			if t.Failed() {
				t.Fatalf("iter %d message %d failed (seed %d)", iter, i, 1000+iter)
			}
		}
	}
}

// TestPropDeliveredEndpointsAllPolicies extends the endpoint invariant
// to every dead-end policy (whose paths may move backward, so only the
// endpoint check applies).
func TestPropDeliveredEndpointsAllPolicies(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		gen := New(uint64(2000 + iter))
		g := gen.Graph(t)
		for _, policy := range []route.DeadEndPolicy{route.Terminate, route.RandomReroute, route.Backtrack} {
			r := route.New(g, route.Options{DeadEnd: policy, TracePath: true})
			for i := 0; i < 10; i++ {
				from := gen.AlivePoint(t, g)
				targets := gen.Targets(t, g)
				res, err := r.RouteAny(rng.New(uint64(i)), from, targets)
				if err != nil {
					t.Fatalf("iter %d %s: %v", iter, policy, err)
				}
				CheckEndpoints(t, g, from, targets, res)
				if t.Failed() {
					t.Fatalf("iter %d %s message %d failed (seed %d)", iter, policy, i, 2000+iter)
				}
			}
		}
	}
}

// TestPropQueueReplayWorkerInvariance fuzzes the full traffic pipeline
// — random graphs, workloads, congestion penalties, replication and
// caching — and requires byte-identical results across 1/2/8 workers.
func TestPropQueueReplayWorkerInvariance(t *testing.T) {
	for iter := 0; iter < 12; iter++ {
		gen := New(uint64(3000 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 100 + gen.src.Intn(200),
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		if gen.src.Bool(0.5) {
			cfg.Penalty = 1
		}
		if gen.src.Bool(0.3) {
			cfg.DepthPenalty = 1
		}
		switch gen.src.Intn(3) {
		case 1:
			cfg.Replication = &replica.Options{K: 2 + gen.src.Intn(3)}
		case 2:
			cfg.Replication = &replica.Options{K: 2, CacheThreshold: 10, CacheCopies: 3}
		}
		res := CheckWorkerInvariance(t, g, wl, cfg, uint64(4000+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d, workload %s)", iter, 3000+iter, wl.Name())
		}
		if res.Injected != res.Delivered+res.Failed {
			t.Fatalf("iter %d: conservation broke: %d != %d + %d",
				iter, res.Injected, res.Delivered, res.Failed)
		}
	}
}

// TestPropSingleAndMultiTargetAgree pins the fallback contract on
// random universes: RouteAny with a single-member set must equal Route
// with that target, for every dead-end policy.
func TestPropSingleAndMultiTargetAgree(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		gen := New(uint64(5000 + iter))
		g := gen.Graph(t)
		policy := []route.DeadEndPolicy{route.Terminate, route.RandomReroute, route.Backtrack}[iter%3]
		r := route.New(g, route.Options{DeadEnd: policy, TracePath: true})
		for i := 0; i < 10; i++ {
			from := gen.AlivePoint(t, g)
			to := gen.AlivePoint(t, g)
			single, err := r.Route(rng.New(uint64(i)), from, to)
			if err != nil {
				t.Fatal(err)
			}
			set, err := r.RouteAny(rng.New(uint64(i)), from, []metric.Point{to})
			if err != nil {
				t.Fatal(err)
			}
			if single.Delivered != set.Delivered || single.Hops != set.Hops ||
				single.Target != set.Target {
				t.Fatalf("iter %d: Route=%+v RouteAny=%+v (seed %d)", iter, single, set, 5000+iter)
			}
		}
	}
}
