package proptest

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
)

// TestPropReplicaRoutingInvariants drives nearest-replica routing over
// random universes: plain and congestion-penalized greedy walks must
// make strict set-distance progress, and every delivery must end on a
// live member of its target set.
func TestPropReplicaRoutingInvariants(t *testing.T) {
	for iter := 0; iter < 60; iter++ {
		gen := New(uint64(1000 + iter))
		g := gen.Graph(t)
		opt := route.Options{TracePath: true}
		if iter%3 == 1 {
			opt.Congestion = func(q metric.Point) float64 { return float64(q % 5) }
		}
		if iter%3 == 2 {
			opt.DirectedOnly = true
		}
		r := route.New(g, opt)
		for i := 0; i < 20; i++ {
			from := gen.AlivePoint(t, g)
			targets := gen.Targets(t, g)
			res, err := r.RouteAny(rng.New(uint64(i)), from, targets)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			CheckGreedyProgress(t, g, targets, res)
			CheckEndpoints(t, g, from, targets, res)
			if t.Failed() {
				t.Fatalf("iter %d message %d failed (seed %d)", iter, i, 1000+iter)
			}
		}
	}
}

// TestPropDeliveredEndpointsAllPolicies extends the endpoint invariant
// to every dead-end policy (whose paths may move backward, so only the
// endpoint check applies).
func TestPropDeliveredEndpointsAllPolicies(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		gen := New(uint64(2000 + iter))
		g := gen.Graph(t)
		for _, policy := range []route.DeadEndPolicy{route.Terminate, route.RandomReroute, route.Backtrack} {
			r := route.New(g, route.Options{DeadEnd: policy, TracePath: true})
			for i := 0; i < 10; i++ {
				from := gen.AlivePoint(t, g)
				targets := gen.Targets(t, g)
				res, err := r.RouteAny(rng.New(uint64(i)), from, targets)
				if err != nil {
					t.Fatalf("iter %d %s: %v", iter, policy, err)
				}
				CheckEndpoints(t, g, from, targets, res)
				if t.Failed() {
					t.Fatalf("iter %d %s message %d failed (seed %d)", iter, policy, i, 2000+iter)
				}
			}
		}
	}
}

// TestPropQueueReplayWorkerInvariance fuzzes the full traffic pipeline
// — random graphs, workloads, congestion penalties, replication and
// caching — and requires byte-identical results across 1/2/8 workers.
func TestPropQueueReplayWorkerInvariance(t *testing.T) {
	for iter := 0; iter < 12; iter++ {
		gen := New(uint64(3000 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 100 + gen.src.Intn(200),
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		if gen.src.Bool(0.5) {
			cfg.Penalty = 1
		}
		if gen.src.Bool(0.3) {
			cfg.DepthPenalty = 1
		}
		switch gen.src.Intn(3) {
		case 1:
			cfg.Replication = &replica.Options{K: 2 + gen.src.Intn(3)}
		case 2:
			cfg.Replication = &replica.Options{K: 2, CacheThreshold: 10, CacheCopies: 3}
		}
		res := CheckWorkerInvariance(t, g, wl, cfg, uint64(4000+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d, workload %s)", iter, 3000+iter, wl.Name())
		}
		if res.Injected != res.Delivered+res.Failed {
			t.Fatalf("iter %d: conservation broke: %d != %d + %d",
				iter, res.Injected, res.Delivered, res.Failed)
		}
	}
}

// TestPropShardInvariance fuzzes the live engine across event-loop
// shard counts: random graphs, workloads, arrival models, aggregation
// and static replication, each run at 1/2/4/7 shards, must produce
// byte-identical results. Sequential-fallback configurations —
// congestion penalties, closed-loop aggregation — are drawn too, so
// the eligibility gate itself is pinned never to disturb results.
func TestPropShardInvariance(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		gen := New(uint64(6000 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 100 + gen.src.Intn(200),
			Live:     true,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		if gen.src.Bool(0.4) {
			cfg.Aggregate = true
		}
		switch gen.src.Intn(4) {
		case 1:
			cfg.Arrival = load.Periodic(1 + 4*gen.src.Float64())
		case 2:
			cfg.Arrival = load.Poisson(1 + 4*gen.src.Float64())
		case 3:
			cfg.Arrival = load.ClosedLoop(2+gen.src.Intn(15), gen.src.Float64())
		}
		if gen.src.Bool(0.3) {
			cfg.Replication = &replica.Options{K: 2 + gen.src.Intn(3)}
		}
		if gen.src.Bool(0.25) {
			cfg.Penalty = 1 // a sequential-fallback draw
		}
		res := CheckShardInvariance(t, g, wl, cfg, uint64(7000+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d, workload %s)", iter, 6000+iter, wl.Name())
		}
		if res.Injected != res.Delivered+res.Failed {
			t.Fatalf("iter %d: conservation broke: %d != %d + %d",
				iter, res.Injected, res.Delivered, res.Failed)
		}
	}
}

// TestPropShardInvariancePIT fuzzes the response path across shard
// counts: random graphs and workloads (floods included, where
// suppression is heaviest) under ModeLivePIT, with random interest
// lifetimes and waiter bounds — short lifetimes make timeouts race
// answer services, tight bounds overflow waiter lists — and a mix of
// open- and closed-loop arrivals (PIT, unlike aggregation, stays
// sharded under closed loops). Results must be byte-identical at
// 1/2/4/7 shards, with the suppression ledger balanced.
func TestPropShardInvariancePIT(t *testing.T) {
	suppressed := 0
	for iter := 0; iter < 10; iter++ {
		gen := New(uint64(6600 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 100 + gen.src.Intn(200),
			Live:     true,
			PIT:      true,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		switch gen.src.Intn(3) {
		case 0:
			cfg.PITTimeout = 0.5 + 4*gen.src.Float64() // races answer services
		case 1:
			cfg.PITTimeout = 64
		}
		if gen.src.Bool(0.3) {
			cfg.PITWaiters = 1 + gen.src.Intn(3) // overflows under floods
		}
		switch gen.src.Intn(4) {
		case 1:
			cfg.Arrival = load.Periodic(1 + 4*gen.src.Float64())
		case 2:
			cfg.Arrival = load.Poisson(1 + 4*gen.src.Float64())
		case 3:
			cfg.Arrival = load.ClosedLoop(2+gen.src.Intn(15), gen.src.Float64())
		}
		if gen.src.Bool(0.3) {
			cfg.Replication = &replica.Options{K: 2 + gen.src.Intn(3)}
		}
		res := CheckShardInvariance(t, g, wl, cfg, uint64(7600+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d, workload %s)", iter, 6600+iter, wl.Name())
		}
		if res.Injected != res.Delivered+res.Failed {
			t.Fatalf("iter %d: conservation broke: %d != %d + %d",
				iter, res.Injected, res.Delivered, res.Failed)
		}
		if res.Suppressed != res.MulticastFanout+res.PITExpired {
			t.Fatalf("iter %d: suppression imbalance: %d != %d + %d",
				iter, res.Suppressed, res.MulticastFanout, res.PITExpired)
		}
		suppressed += res.Suppressed
	}
	if suppressed == 0 {
		t.Error("no iteration suppressed anything; the PIT fuzz is vacuous")
	}
}

// movingFlood floods victim a for the first half of the run and victim
// b for the second — the moving-hotspot workload behind internal/load's
// cache-decay scenario, rebuilt over the public Generator interface.
type movingFlood struct {
	g      *graph.Graph
	a, b   metric.Point
	drawn  int
	halfAt int
}

func (f *movingFlood) Name() string { return "moving-flood" }

func (f *movingFlood) Bind(g *graph.Graph, src *rng.Source) error {
	f.g = g
	var ok bool
	if f.a, ok = g.RandomAlive(src); !ok {
		return fmt.Errorf("moving-flood: no live nodes")
	}
	for {
		if f.b, ok = g.RandomAlive(src); !ok {
			return fmt.Errorf("moving-flood: no second live node")
		}
		if f.b != f.a {
			break
		}
	}
	f.drawn = 0
	return nil
}

func (f *movingFlood) Pair(src *rng.Source) (metric.Point, metric.Point, error) {
	target := f.a
	if f.drawn >= f.halfAt {
		target = f.b
	}
	f.drawn++
	for i := 0; i < 256; i++ {
		if from, ok := f.g.RandomAlive(src); ok && from != target {
			return from, target, nil
		}
	}
	return 0, 0, fmt.Errorf("moving-flood: no source distinct from %d", target)
}

// TestPropShardInvarianceMovingHotspot pins shard-count invariance on
// the moving-hotspot cache-decay scenario: live mode with
// popularity-triggered caching and decay, where the flood victim moves
// mid-run. Caching makes this a sequential-fallback configuration at
// every shard count — the point is that cache churn and decay cadence
// stay byte-identical however many shards are requested.
func TestPropShardInvarianceMovingHotspot(t *testing.T) {
	const msgs = 400
	ring, err := metric.NewRing(512)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(9), rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	for _, aggregate := range []bool{false, true} {
		cfg := load.Config{
			Messages:  msgs,
			Live:      true,
			Aggregate: aggregate,
			Route:     route.Options{DeadEnd: route.Backtrack},
			Replication: &replica.Options{
				CacheThreshold: 16, CacheCopies: 4, CacheDecay: true,
			},
		}
		res := CheckShardInvariance(t, g, &movingFlood{halfAt: msgs / 2}, cfg, 34)
		if t.Failed() {
			t.Fatalf("aggregate=%v diverged", aggregate)
		}
		if res.CachedKeys == 0 {
			t.Errorf("aggregate=%v: the decay scenario never cached a key; the invariance run is vacuous", aggregate)
		}
	}
}

// TestPropSingleAndMultiTargetAgree pins the fallback contract on
// random universes: RouteAny with a single-member set must equal Route
// with that target, for every dead-end policy.
func TestPropSingleAndMultiTargetAgree(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		gen := New(uint64(5000 + iter))
		g := gen.Graph(t)
		policy := []route.DeadEndPolicy{route.Terminate, route.RandomReroute, route.Backtrack}[iter%3]
		r := route.New(g, route.Options{DeadEnd: policy, TracePath: true})
		for i := 0; i < 10; i++ {
			from := gen.AlivePoint(t, g)
			to := gen.AlivePoint(t, g)
			single, err := r.Route(rng.New(uint64(i)), from, to)
			if err != nil {
				t.Fatal(err)
			}
			set, err := r.RouteAny(rng.New(uint64(i)), from, []metric.Point{to})
			if err != nil {
				t.Fatal(err)
			}
			if single.Delivered != set.Delivered || single.Hops != set.Hops ||
				single.Target != set.Target {
				t.Fatalf("iter %d: Route=%+v RouteAny=%+v (seed %d)", iter, single, set, 5000+iter)
			}
		}
	}
}
