package proptest

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
)

// TestPropShardInvarianceChurn fuzzes the churn layer across shard
// counts: random universes under random churn schedules — background
// Poisson churn, regional kills, flash crowds, gossip repair — must
// produce deeply-equal results at 1/2/4/7 shards (every generated
// probe timeout covers the service time, so multi-shard draws run the
// sharded churn loop against the sequential reference), with every
// conservation ledger balancing exactly. Each shard count rebuilds its
// own graph:
// churn mutates the graph in place, which is exactly why the shared-
// graph CheckShardInvariance cannot be used here.
func TestPropShardInvarianceChurn(t *testing.T) {
	churned, stranded := 0, 0
	for iter := 0; iter < 8; iter++ {
		seed := uint64(8000 + iter)
		build := func(tb testing.TB) *graph.Graph { return New(seed).Graph(tb) }
		gen := New(seed)
		gen.Graph(t) // advance the stream past the graph draw, mirroring build
		wl := gen.Workload()
		spec := gen.ChurnSpec(t)
		cfg := load.Config{
			Messages: 100 + gen.src.Intn(150),
			Live:     true,
			Route:    route.Options{DeadEnd: route.Backtrack},
			Churn:    spec,
		}
		switch gen.src.Intn(3) {
		case 1:
			cfg.Aggregate = true
		case 2:
			cfg.PIT = true
			cfg.PITTimeout = 2 + 6*gen.src.Float64()
			cfg.PITWaiters = 1 + gen.src.Intn(4)
		}
		switch gen.src.Intn(3) {
		case 1:
			cfg.Arrival = load.Periodic(1 + 4*gen.src.Float64())
		case 2:
			cfg.Arrival = load.Poisson(1 + 4*gen.src.Float64())
		}
		if gen.src.Bool(0.3) {
			cfg.Replication = &replica.Options{K: 2 + gen.src.Intn(3)}
		}
		res := CheckShardInvarianceChurn(t, build, wl, cfg, uint64(9000+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d, workload %s)", iter, seed, wl.Name())
		}
		CheckChurnLedger(t, res)
		if t.Failed() {
			t.Fatalf("iter %d ledger failed (seed %d)", iter, seed)
		}
		churned += res.Crashes + res.Joins
		stranded += res.Stranded
	}
	if churned == 0 {
		t.Error("no iteration applied any churn event; the fuzz is vacuous")
	}
	if stranded == 0 {
		t.Error("no iteration stranded a message; the strand path went unexercised")
	}
}

// TestPropChurnMembershipConverges pins the membership layer's truth:
// once churn stops (and the run drains to quiescence), the graph's
// final alive set must equal the churn schedule replayed over the
// initial alive set — the engine applied exactly the generated events,
// and gossip resolved every rumor.
func TestPropChurnMembershipConverges(t *testing.T) {
	churned := 0
	for iter := 0; iter < 6; iter++ {
		seed := uint64(8300 + iter)
		build := func(tb testing.TB) *graph.Graph { return New(seed).Graph(tb) }
		gen := New(seed)
		g := gen.Graph(t)
		wl := gen.Workload()
		spec := gen.ChurnSpec(t)
		cfg := load.Config{
			Messages: 120,
			Live:     true,
			Route:    route.Options{DeadEnd: route.Backtrack},
			Churn:    spec,
		}
		runSeed := uint64(9300 + iter)
		res, err := load.Run(g, wl, cfg, runSeed)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		CheckChurnLedger(t, res)
		// Re-expand the schedule exactly as load.Run did (root stream 4,
		// fresh graph — the spec's horizon is explicit, so defaulting
		// changes nothing) and replay it over the initial alive set.
		fresh := build(t)
		events, err := spec.Generate(fresh, rng.New(runSeed).Derive(4))
		if err != nil {
			t.Fatalf("iter %d: re-expansion: %v", iter, err)
		}
		if res.Crashes+res.Joins != len(events) {
			t.Errorf("iter %d: engine applied %d+%d events, schedule has %d",
				iter, res.Crashes, res.Joins, len(events))
		}
		view := failure.NewAliveView(fresh)
		for i, ev := range events {
			if !view.Apply(ev) {
				t.Fatalf("iter %d: generated event %d is not a valid transition", iter, i)
			}
		}
		for p := 0; p < g.Size(); p++ {
			pt := metric.Point(p)
			if g.Alive(pt) != view.Alive(pt) {
				t.Fatalf("iter %d: node %d alive=%v in the run's graph, %v in the replay",
					iter, p, g.Alive(pt), view.Alive(pt))
			}
		}
		churned += len(events)
	}
	if churned == 0 {
		t.Error("no iteration generated any churn event; the convergence check is vacuous")
	}
}

// TestPropChurnJoinDuringMovingHotspot extends the moving-hotspot
// cache-decay scenario with node dynamics: a regional kill while the
// first victim is hot, then a flash-crowd join while the hotspot is
// moving to the second victim, with gossip repair on. Caching forces
// the sequential fallback (churn alone no longer does); the invariance
// run pins that cache churn, decay cadence, and membership repair stay
// deterministic at every requested shard count — and that the
// scenario actually exercises caching, crashes, and joins at once.
func TestPropChurnJoinDuringMovingHotspot(t *testing.T) {
	const msgs = 400
	build := func(tb testing.TB) *graph.Graph {
		ring, err := metric.NewRing(512)
		if err != nil {
			tb.Fatal(err)
		}
		g, err := graph.BuildIdeal(ring, graph.PaperConfig(9), rng.New(33))
		if err != nil {
			tb.Fatal(err)
		}
		// A pre-existing dead pool, so the flash crowd has nodes to revive
		// beyond the kill's victims.
		if _, err := failure.FailNodesFraction(g, 0.2, rng.New(35)); err != nil {
			tb.Fatal(err)
		}
		return g
	}
	spec := failure.ChurnSpec{
		KillFrac: 0.1, KillAt: 30,
		FlashJoin: 40, FlashAt: 60,
		ProbeTimeout: 2, GossipInterval: 1, GossipFanout: 2,
		Repair: true,
	}
	cfg := load.Config{
		Messages: msgs,
		Live:     true,
		Arrival:  load.Poisson(4),
		Route:    route.Options{DeadEnd: route.Backtrack},
		Replication: &replica.Options{
			CacheThreshold: 16, CacheCopies: 4, CacheDecay: true,
		},
		Churn: spec,
	}
	res := CheckShardInvarianceChurn(t, build, &movingFlood{halfAt: msgs / 2}, cfg, 34)
	if t.Failed() {
		t.FailNow()
	}
	CheckChurnLedger(t, res)
	if res.CachedKeys == 0 {
		t.Error("the scenario never cached a key; the cache-decay half is vacuous")
	}
	if res.Crashes == 0 {
		t.Error("the regional kill crashed nothing")
	}
	if res.Joins == 0 {
		t.Error("the flash crowd joined nothing; the join-during-hotspot half is vacuous")
	}
	if res.LinksRebuilt == 0 {
		t.Error("repair rebuilt no links")
	}
}
