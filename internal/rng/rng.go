// Package rng provides the repository's deterministic random-number
// machinery: a splittable 64-bit PRNG and the samplers the paper's
// constructions need (inverse power-law link lengths, Poisson in-degree
// estimates, uniform choices and shuffles).
//
// Determinism matters here: every experiment in the paper is a Monte
// Carlo simulation, and reproducing a figure requires that the same seed
// regenerate the same network. We therefore avoid the global math/rand
// state entirely; every component owns an *rng.Source derived from an
// experiment seed via Derive, so experiments are reproducible and
// parallelizable without locking.
package rng

import "math"

// Source is a small, fast, deterministic PRNG (splitmix64 used to seed a
// xoshiro256**-like state). It is NOT safe for concurrent use; derive
// one Source per goroutine with Derive.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns a well-mixed 64-bit value. It is the
// standard seeding generator for xoshiro-family PRNGs.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Two Sources built
// from equal seeds produce identical streams.
func New(seed uint64) *Source {
	var s Source
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	// A xoshiro state of all zeros would be absorbing; splitmix64 cannot
	// produce four zero outputs in a row, so no further guard is needed.
	return &s
}

// Derive returns a new independent Source keyed by (the parent's seed
// material, stream). Use it to hand each worker goroutine or each
// simulated node its own generator.
func (s *Source) Derive(stream uint64) *Source {
	x := s.s0 ^ rotl(s.s2, 17) ^ (stream * 0x9E3779B97F4A7C15)
	return New(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers validate n at construction time.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + lo1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Poisson returns a Poisson-distributed value with rate lambda using
// Knuth's method for small rates and a normal approximation (rounded,
// clamped at 0) for large ones. The paper uses Poisson(ℓ) to estimate a
// joining node's in-degree (§5), so lambda is small in practice.
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation for large lambda.
	v := lambda + math.Sqrt(lambda)*s.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// NormFloat64 returns a standard normal variate via the Box–Muller
// transform (polar form).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials; p must be in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}
