package rng

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mathx"
)

// HarmonicSampler draws integer distances d in [1, max] with probability
// proportional to 1/d — the inverse power-law distribution with exponent
// 1 that the paper proves is (nearly) optimal for greedy routing.
//
// Sampling inverts the CDF H_d / H_max. Because H_d is monotone and
// cheap to evaluate (mathx.Harmonic), a binary search gives O(log max)
// draws with no precomputed tables, so a sampler per node costs nothing.
type HarmonicSampler struct {
	max  int
	hmax float64
}

// NewHarmonicSampler returns a sampler over distances [1, max].
// It returns an error if max < 1.
func NewHarmonicSampler(max int) (*HarmonicSampler, error) {
	if max < 1 {
		return nil, fmt.Errorf("rng: harmonic sampler needs max >= 1, got %d", max)
	}
	return &HarmonicSampler{max: max, hmax: mathx.Harmonic(max)}, nil
}

// Max returns the largest distance the sampler can produce.
func (hs *HarmonicSampler) Max() int { return hs.max }

// Sample draws one distance from src.
func (hs *HarmonicSampler) Sample(src *Source) int {
	target := src.Float64() * hs.hmax
	// Find the smallest d with H_d > target. H_0 = 0 < target for
	// target > 0, so the search is well-defined; target == 0 yields d=1.
	d := sort.Search(hs.max, func(i int) bool {
		return mathx.Harmonic(i+1) > target
	})
	return d + 1
}

// Prob returns the probability mass of distance d under the sampler.
func (hs *HarmonicSampler) Prob(d int) float64 {
	if d < 1 || d > hs.max {
		return 0
	}
	return 1 / (float64(d) * hs.hmax)
}

// SampleHarmonic draws a distance in [1, max] with probability
// proportional to 1/d, without allocating a sampler. It is the helper
// the graph builders use when the admissible distance range depends on
// the node's position (e.g. near a line boundary). For max <= 1 it
// returns 1.
func SampleHarmonic(src *Source, max int) int {
	if max <= 1 {
		return 1
	}
	target := src.Float64() * mathx.Harmonic(max)
	d := sort.Search(max, func(i int) bool {
		return mathx.Harmonic(i+1) > target
	})
	return d + 1
}

// PowerLawSampler draws distances d in [1, max] with probability
// proportional to d^(-exponent) for an arbitrary exponent. It
// precomputes the cumulative mass table once (O(max) memory), so it is
// intended for ablation experiments that sweep the exponent, not for
// per-node use at large n.
type PowerLawSampler struct {
	max      int
	exponent float64
	cdf      []float64 // cdf[i] = P(d <= i+1), cdf[max-1] == 1
}

// NewPowerLawSampler builds a sampler over [1, max] with the given
// exponent. exponent may be any real value (0 gives uniform).
func NewPowerLawSampler(max int, exponent float64) (*PowerLawSampler, error) {
	if max < 1 {
		return nil, fmt.Errorf("rng: power-law sampler needs max >= 1, got %d", max)
	}
	cdf := make([]float64, max)
	var total float64
	for d := 1; d <= max; d++ {
		total += powNeg(float64(d), exponent)
		cdf[d-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &PowerLawSampler{max: max, exponent: exponent, cdf: cdf}, nil
}

// powNeg returns x^(-e), special-casing the common exponents so table
// construction avoids math.Pow in the usual cases.
func powNeg(x, e float64) float64 {
	switch e {
	case 0:
		return 1
	case 1:
		return 1 / x
	case 2:
		return 1 / (x * x)
	}
	return math.Pow(x, -e)
}

// Max returns the largest distance the sampler can produce.
func (ps *PowerLawSampler) Max() int { return ps.max }

// Exponent returns the sampler's exponent.
func (ps *PowerLawSampler) Exponent() float64 { return ps.exponent }

// Sample draws one distance from src.
func (ps *PowerLawSampler) Sample(src *Source) int {
	u := src.Float64()
	i := sort.SearchFloat64s(ps.cdf, u)
	if i >= ps.max {
		i = ps.max - 1
	}
	return i + 1
}

// Prob returns the probability mass of distance d.
func (ps *PowerLawSampler) Prob(d int) float64 {
	if d < 1 || d > ps.max {
		return 0
	}
	if d == 1 {
		return ps.cdf[0]
	}
	return ps.cdf[d-1] - ps.cdf[d-2]
}

// DistanceSampler is the common interface of the two samplers above:
// anything that can draw link lengths in [1, Max].
type DistanceSampler interface {
	Sample(src *Source) int
	Prob(d int) float64
	Max() int
}

var (
	_ DistanceSampler = (*HarmonicSampler)(nil)
	_ DistanceSampler = (*PowerLawSampler)(nil)
)
