package rng

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestHarmonicSamplerValidation(t *testing.T) {
	if _, err := NewHarmonicSampler(0); err == nil {
		t.Error("max=0 should error")
	}
	if _, err := NewHarmonicSampler(-5); err == nil {
		t.Error("negative max should error")
	}
	hs, err := NewHarmonicSampler(1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(1)
	for i := 0; i < 10; i++ {
		if d := hs.Sample(s); d != 1 {
			t.Fatalf("max=1 sampler produced %d", d)
		}
	}
}

func TestHarmonicSamplerRange(t *testing.T) {
	f := func(seed uint64, mm uint16) bool {
		max := int(mm%4096) + 1
		hs, err := NewHarmonicSampler(max)
		if err != nil {
			return false
		}
		s := New(seed)
		for i := 0; i < 20; i++ {
			d := hs.Sample(s)
			if d < 1 || d > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHarmonicSamplerDistribution verifies that empirical frequencies of
// small distances match 1/(d·H_max) — the paper's exponent-1 inverse
// power law.
func TestHarmonicSamplerDistribution(t *testing.T) {
	const max, draws = 1024, 400000
	hs, err := NewHarmonicSampler(max)
	if err != nil {
		t.Fatal(err)
	}
	s := New(99)
	counts := make([]int, max+1)
	for i := 0; i < draws; i++ {
		counts[hs.Sample(s)]++
	}
	hmax := mathx.Harmonic(max)
	for _, d := range []int{1, 2, 3, 5, 10, 50} {
		want := 1 / (float64(d) * hmax)
		got := float64(counts[d]) / draws
		tol := 5 * math.Sqrt(want*(1-want)/draws)
		if math.Abs(got-want) > tol+0.001 {
			t.Errorf("P(d=%d): got %v, want %v (tol %v)", d, got, want, tol)
		}
	}
}

func TestHarmonicSamplerProb(t *testing.T) {
	hs, err := NewHarmonicSampler(100)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for d := 1; d <= 100; d++ {
		sum += hs.Prob(d)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if hs.Prob(0) != 0 || hs.Prob(101) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
	if hs.Max() != 100 {
		t.Error("Max() wrong")
	}
}

func TestPowerLawSamplerValidation(t *testing.T) {
	if _, err := NewPowerLawSampler(0, 1); err == nil {
		t.Error("max=0 should error")
	}
}

func TestPowerLawSamplerUniform(t *testing.T) {
	// exponent 0 reduces to the uniform distribution.
	ps, err := NewPowerLawSampler(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 10; d++ {
		if math.Abs(ps.Prob(d)-0.1) > 1e-9 {
			t.Errorf("P(%d) = %v, want 0.1", d, ps.Prob(d))
		}
	}
}

func TestPowerLawSamplerMatchesHarmonic(t *testing.T) {
	// exponent 1 must agree exactly with the analytic harmonic sampler.
	const max = 257
	ps, err := NewPowerLawSampler(max, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewHarmonicSampler(max)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= max; d++ {
		if math.Abs(ps.Prob(d)-hs.Prob(d)) > 1e-9 {
			t.Errorf("P(%d): table %v vs analytic %v", d, ps.Prob(d), hs.Prob(d))
		}
	}
	if ps.Exponent() != 1 || ps.Max() != max {
		t.Error("accessors wrong")
	}
}

func TestPowerLawSamplerRange(t *testing.T) {
	ps, err := NewPowerLawSampler(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(4)
	for i := 0; i < 5000; i++ {
		d := ps.Sample(s)
		if d < 1 || d > 64 {
			t.Fatalf("sample %d out of range", d)
		}
	}
	if ps.Prob(0) != 0 || ps.Prob(65) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestPowerLawSamplerHighExponentConcentrates(t *testing.T) {
	ps, err := NewPowerLawSampler(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := New(8)
	small := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if ps.Sample(s) <= 3 {
			small++
		}
	}
	if float64(small)/draws < 0.9 {
		t.Errorf("exponent-3 law should concentrate near 1; P(d<=3) = %v", float64(small)/draws)
	}
}

func BenchmarkHarmonicSample(b *testing.B) {
	hs, err := NewHarmonicSampler(1 << 17)
	if err != nil {
		b.Fatal(err)
	}
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs.Sample(s)
	}
}

func BenchmarkPowerLawSample(b *testing.B) {
	ps, err := NewPowerLawSampler(1<<17, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Sample(s)
	}
}
