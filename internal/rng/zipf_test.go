package rng

import (
	"math"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative skew should error")
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	z, err := NewZipf(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 8; r++ {
		if math.Abs(z.Prob(r)-0.125) > 1e-9 {
			t.Errorf("P(%d) = %v, want 0.125", r, z.Prob(r))
		}
	}
	if z.N() != 8 || z.Skew() != 0 {
		t.Error("accessors wrong")
	}
}

func TestZipfSkewConcentratesOnHead(t *testing.T) {
	z, err := NewZipf(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With s=1, P(1)/P(2) = 2.
	if ratio := z.Prob(1) / z.Prob(2); math.Abs(ratio-2) > 1e-9 {
		t.Errorf("P(1)/P(2) = %v, want 2", ratio)
	}
	src := New(1)
	head := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if z.Sample(src) <= 10 {
			head++
		}
	}
	// Top-10 mass under Zipf(1, 1000): H_10/H_1000 ≈ 2.93/7.49 ≈ 0.39.
	frac := float64(head) / draws
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("top-10 mass = %v, want ≈ 0.39", frac)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z, err := NewZipf(100, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for r := 1; r <= 100; r++ {
		sum += z.Prob(r)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mass sums to %v", sum)
	}
	if z.Prob(0) != 0 || z.Prob(101) != 0 {
		t.Error("out-of-range mass must be 0")
	}
}

func TestZipfSampleInRange(t *testing.T) {
	z, err := NewZipf(16, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := New(2)
	for i := 0; i < 5000; i++ {
		if r := z.Sample(src); r < 1 || r > 16 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}
