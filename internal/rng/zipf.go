package rng

import (
	"fmt"
	"math"
	"sort"
)

// ZipfSampler draws ranks r in [1, n] with probability proportional to
// r^(−s) — the classic model of resource popularity in file-sharing
// workloads (a small set of hot items attracts most queries), used by
// the examples to generate realistic query streams.
type ZipfSampler struct {
	cdf []float64
	s   float64
}

// NewZipf returns a sampler over ranks [1, n] with skew s >= 0
// (s = 0 is uniform; s ≈ 1 matches measured P2P workloads).
func NewZipf(n int, s float64) (*ZipfSampler, error) {
	if n < 1 {
		return nil, fmt.Errorf("rng: zipf needs n >= 1, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("rng: zipf skew must be >= 0, got %v", s)
	}
	cdf := make([]float64, n)
	total := 0.0
	for r := 1; r <= n; r++ {
		total += math.Pow(float64(r), -s)
		cdf[r-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &ZipfSampler{cdf: cdf, s: s}, nil
}

// N returns the number of ranks.
func (z *ZipfSampler) N() int { return len(z.cdf) }

// Skew returns the exponent s.
func (z *ZipfSampler) Skew() float64 { return z.s }

// Sample draws one rank.
func (z *ZipfSampler) Sample(src *Source) int {
	u := src.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i + 1
}

// Prob returns the probability mass of rank r.
func (z *ZipfSampler) Prob(r int) float64 {
	if r < 1 || r > len(z.cdf) {
		return 0
	}
	if r == 1 {
		return z.cdf[0]
	}
	return z.cdf[r-1] - z.cdf[r-2]
}
