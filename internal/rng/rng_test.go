package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d equal values out of 100", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	c1again := New(7).Derive(1)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatal("Derive is not deterministic")
		}
	}
	// Streams 1 and 2 should differ.
	c1 = New(7).Derive(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("derived streams 1 and 2 nearly identical (%d/100 equal)", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 4*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBool(t *testing.T) {
	s := New(9)
	if s.Bool(0) || s.Bool(-1) {
		t.Error("Bool(<=0) must be false")
	}
	if !s.Bool(1) || !s.Bool(1.5) {
		t.Error("Bool(>=1) must be true")
	}
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nn uint8) bool {
		n := int(nn%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(13)
	for _, lambda := range []float64{1, 5, 14, 50} {
		const draws = 20000
		var sum int
		for i := 0; i < draws; i++ {
			sum += s.Poisson(lambda)
		}
		mean := float64(sum) / draws
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/draws)*math.Sqrt(lambda)+0.2 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("Poisson(<=0) must be 0")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const draws = 100000
	var sum, sum2 float64
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / draws
	variance := sum2/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestGeometric(t *testing.T) {
	s := New(23)
	if s.Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
	const draws = 50000
	p := 0.25
	var sum int
	for i := 0; i < draws; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / draws
	want := (1 - p) / p // mean failures before success
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want %v", p, mean, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) should panic")
		}
	}()
	s.Geometric(0)
}
