package transport

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip: writeFrame/readFrame must round-trip any payload
// under the size cap and reject oversized or corrupt frames without
// panicking.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > maxFrame {
			t.Skip()
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(payload), err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip corrupted %d-byte payload", len(payload))
		}
	})
}

// FuzzReadFrameGarbage: arbitrary bytes as a frame stream never panic
// and never return more data than the stream held.
func FuzzReadFrameGarbage(f *testing.F) {
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 5, 'a'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		got, err := readFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		if len(got) > len(stream) {
			t.Fatalf("read %d bytes from a %d-byte stream", len(got), len(stream))
		}
	})
}
