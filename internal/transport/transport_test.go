package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoHandler(req []byte) ([]byte, error) { return req, nil }

func testTransportBasics(t *testing.T, tr Transport) {
	t.Helper()
	closer, err := tr.Listen(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()

	ctx := context.Background()
	resp, err := tr.Call(ctx, 1, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello" {
		t.Errorf("echo = %q", resp)
	}
	if _, err := tr.Call(ctx, 99, []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Errorf("unknown node err = %v, want ErrUnreachable", err)
	}
	if _, err := tr.Listen(1, echoHandler); err == nil {
		t.Error("double listen should error")
	}
	if _, err := tr.Listen(2, nil); err == nil {
		t.Error("nil handler should error")
	}
}

func TestInMemBasics(t *testing.T) { testTransportBasics(t, NewInMem(1)) }
func TestTCPBasics(t *testing.T)   { testTransportBasics(t, NewTCP()) }

func TestInMemCloseUnregisters(t *testing.T) {
	tr := NewInMem(2)
	closer, err := tr.Listen(7, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	closer()
	if _, err := tr.Call(context.Background(), 7, nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("closed node err = %v", err)
	}
	// Re-listen after close must succeed.
	closer, err = tr.Listen(7, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	closer()
}

func TestInMemDropInjection(t *testing.T) {
	tr := NewInMem(3)
	closer, err := tr.Listen(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	tr.SetDropProb(1)
	if _, err := tr.Call(context.Background(), 1, nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("drop-all call err = %v", err)
	}
	tr.SetDropProb(0)
	if _, err := tr.Call(context.Background(), 1, nil); err != nil {
		t.Errorf("drop disabled, err = %v", err)
	}
}

func TestInMemDropProbability(t *testing.T) {
	tr := NewInMem(4)
	closer, err := tr.Listen(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	tr.SetDropProb(0.5)
	drops := 0
	const calls = 2000
	for i := 0; i < calls; i++ {
		if _, err := tr.Call(context.Background(), 1, nil); err != nil {
			drops++
		}
	}
	if drops < 850 || drops > 1150 {
		t.Errorf("drops = %d of %d, want ≈ 1000", drops, calls)
	}
}

func TestInMemLatencyAndContext(t *testing.T) {
	tr := NewInMem(5)
	closer, err := tr.Listen(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	tr.SetLatency(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := tr.Call(ctx, 1, nil); err == nil {
		t.Error("call should respect context deadline under latency")
	}
	tr.SetLatency(time.Millisecond)
	if _, err := tr.Call(context.Background(), 1, nil); err != nil {
		t.Errorf("latency call failed: %v", err)
	}
}

func TestInMemConcurrentCalls(t *testing.T) {
	tr := NewInMem(6)
	closer, err := tr.Listen(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("m%d", i))
			resp, err := tr.Call(context.Background(), 1, msg)
			if err != nil {
				errs <- err
				return
			}
			if string(resp) != string(msg) {
				errs <- fmt.Errorf("got %q want %q", resp, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPHandlerError(t *testing.T) {
	tr := NewTCP()
	closer, err := tr.Listen(1, func(req []byte) ([]byte, error) {
		return nil, errors.New("handler boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	_, err = tr.Call(context.Background(), 1, []byte("x"))
	if err == nil {
		t.Fatal("want remote error")
	}
	if want := "handler boom"; !strings.Contains(err.Error(), want) {
		t.Errorf("err %q should mention %q", err, want)
	}
}

func TestTCPCloseStopsServing(t *testing.T) {
	tr := NewTCP()
	closer, err := tr.Listen(3, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Addr(3); !ok {
		t.Error("Addr should be registered while listening")
	}
	closer()
	if _, ok := tr.Addr(3); ok {
		t.Error("Addr should be gone after close")
	}
	if _, err := tr.Call(context.Background(), 3, nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call after close err = %v", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	tr := NewTCP()
	closer, err := tr.Listen(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	big := make([]byte, 1<<18) // 256 KiB
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := tr.Call(context.Background(), 1, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(big) {
		t.Errorf("len = %d, want %d", len(resp), len(big))
	}
	for i := range resp {
		if resp[i] != big[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestTCPConcurrentNodes(t *testing.T) {
	tr := NewTCP()
	const nodes = 8
	closers := make([]func(), 0, nodes)
	for i := 0; i < nodes; i++ {
		id := NodeID(i)
		closer, err := tr.Listen(id, func(req []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("node-%d", id)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		closers = append(closers, closer)
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, nodes*4)
	for i := 0; i < nodes*4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			to := NodeID(i % nodes)
			resp, err := tr.Call(context.Background(), to, nil)
			if err != nil {
				errs <- err
				return
			}
			if want := fmt.Sprintf("node-%d", to); string(resp) != want {
				errs <- fmt.Errorf("got %q want %q", resp, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
