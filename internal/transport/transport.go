// Package transport abstracts the request/response messaging layer the
// live overlay (package overlay) runs on. Two implementations are
// provided: an in-memory transport for simulating hundreds of nodes in
// one process (with failure injection), and a TCP transport
// (length-prefixed JSON over loopback or a real network) demonstrating
// the same protocol on sockets.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
)

// NodeID identifies an overlay node on a transport. The overlay uses
// the node's metric-space point as its id.
type NodeID uint64

// Handler processes one request and returns the response payload.
// Handlers must be safe for concurrent use.
type Handler func(req []byte) ([]byte, error)

// ErrUnreachable is returned by Call when the destination is not
// registered, has closed, or the (injected or real) network dropped the
// request.
var ErrUnreachable = errors.New("transport: destination unreachable")

// Transport delivers requests between nodes.
type Transport interface {
	// Listen registers h as the handler for node id and returns a
	// function that unregisters it. Listening twice on one id is an
	// error.
	Listen(id NodeID, h Handler) (close func(), err error)
	// Call sends req to node `to` and waits for its response.
	Call(ctx context.Context, to NodeID, req []byte) ([]byte, error)
}

// InMem is a process-local Transport with failure injection. The zero
// value is not usable; construct with NewInMem.
type InMem struct {
	mu       sync.RWMutex
	handlers map[NodeID]Handler
	dropProb float64
	latency  time.Duration
	rngMu    sync.Mutex
	src      *rng.Source
}

// NewInMem returns an in-memory transport. seed drives the drop
// decisions so failure-injection runs are reproducible.
func NewInMem(seed uint64) *InMem {
	return &InMem{handlers: make(map[NodeID]Handler), src: rng.New(seed)}
}

// SetDropProb makes every subsequent Call fail with probability p.
func (t *InMem) SetDropProb(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropProb = p
}

// SetLatency adds a fixed delay to every Call (0 disables).
func (t *InMem) SetLatency(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.latency = d
}

// Listen implements Transport.
func (t *InMem) Listen(id NodeID, h Handler) (func(), error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.handlers[id]; exists {
		return nil, fmt.Errorf("transport: node %d already listening", id)
	}
	t.handlers[id] = h
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		delete(t.handlers, id)
	}, nil
}

// Call implements Transport.
func (t *InMem) Call(ctx context.Context, to NodeID, req []byte) ([]byte, error) {
	t.mu.RLock()
	h, ok := t.handlers[to]
	drop := t.dropProb
	latency := t.latency
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: node %d", ErrUnreachable, to)
	}
	if drop > 0 {
		t.rngMu.Lock()
		dropped := t.src.Bool(drop)
		t.rngMu.Unlock()
		if dropped {
			return nil, fmt.Errorf("%w: dropped (injected)", ErrUnreachable)
		}
	}
	if latency > 0 {
		timer := time.NewTimer(latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h(req)
}

var _ Transport = (*InMem)(nil)
