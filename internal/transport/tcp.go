package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is a Transport over real sockets: every listening node owns a TCP
// listener; calls open a connection, send one length-prefixed request,
// and read one length-prefixed response. A shared address registry maps
// node ids to listen addresses; in a real deployment the registry would
// be the bootstrap mechanism (static peers, DNS, …), which is out of
// scope for the paper.
type TCP struct {
	mu      sync.RWMutex
	addrs   map[NodeID]string
	servers map[NodeID]*tcpServer
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
}

// NewTCP returns an empty TCP transport registry.
func NewTCP() *TCP {
	return &TCP{
		addrs:       make(map[NodeID]string),
		servers:     make(map[NodeID]*tcpServer),
		DialTimeout: 2 * time.Second,
	}
}

// maxFrame bounds a single message to 16 MiB, far above anything the
// overlay protocol sends, guarding against corrupt length prefixes.
const maxFrame = 16 << 20

type tcpServer struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	closed  chan struct{}
}

// Listen implements Transport: it binds a loopback TCP listener for id
// and serves requests until the returned close function is called.
func (t *TCP) Listen(id NodeID, h Handler) (func(), error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.servers[id]; exists {
		return nil, fmt.Errorf("transport: node %d already listening", id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	srv := &tcpServer{ln: ln, handler: h, closed: make(chan struct{})}
	t.servers[id] = srv
	t.addrs[id] = ln.Addr().String()
	srv.wg.Add(1)
	go srv.acceptLoop()

	closeFn := func() {
		t.mu.Lock()
		delete(t.servers, id)
		delete(t.addrs, id)
		t.mu.Unlock()
		close(srv.closed)
		_ = srv.ln.Close()
		srv.wg.Wait()
	}
	return closeFn, nil
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				// Transient accept error; back off briefly.
				time.Sleep(5 * time.Millisecond)
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	req, err := readFrame(conn)
	if err != nil {
		return
	}
	resp, err := s.handler(req)
	if err != nil {
		// Error responses are framed with a 1-byte status prefix.
		_ = writeFrame(conn, append([]byte{1}, []byte(err.Error())...))
		return
	}
	_ = writeFrame(conn, append([]byte{0}, resp...))
}

// Addr returns the listen address of node id, for diagnostics.
func (t *TCP) Addr(id NodeID) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.addrs[id]
	return a, ok
}

// Call implements Transport.
func (t *TCP) Call(ctx context.Context, to NodeID, req []byte) ([]byte, error) {
	t.mu.RLock()
	addr, ok := t.addrs[to]
	timeout := t.DialTimeout
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: node %d not registered", ErrUnreachable, to)
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	defer func() { _ = conn.Close() }()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	} else {
		_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	}
	if err := writeFrame(conn, req); err != nil {
		return nil, fmt.Errorf("%w: write: %v", ErrUnreachable, err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: read: %v", ErrUnreachable, err)
	}
	if len(resp) == 0 {
		return nil, errors.New("transport: empty response frame")
	}
	if resp[0] != 0 {
		return nil, fmt.Errorf("transport: remote error: %s", resp[1:])
	}
	return resp[1:], nil
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

var _ Transport = (*TCP)(nil)
