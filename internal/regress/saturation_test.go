package regress

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

// runSweepScenario executes the seeded saturation sweep — the
// acceptance scenario, a 1024-node ring under Zipf(1.0) Poisson traffic
// — and returns one line per evaluated load level plus a knee summary.
// The golden values pin the whole saturation pipeline: the arrival
// models' injection schedules, the stability criterion, the bisection
// trajectory, and the queue replay underneath.
func runSweepScenario(t *testing.T, workers int) []string {
	t.Helper()
	ring, err := metric.NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(10), rng.New(200))
	if err != nil {
		t.Fatal(err)
	}
	cfg := load.SweepConfig{
		Config: load.Config{
			Messages: 2048,
			Workers:  workers,
			Route:    route.Options{DeadEnd: route.Backtrack},
		},
		Model:      "poisson",
		Bisections: 4,
	}
	res, err := load.Sweep(g, load.Zipf(1.0), cfg, 201)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, p := range res.Points {
		out = append(out, fmt.Sprintf(
			"load=%.4f stable=%v thr=%.4f p50=%.2f p99=%.2f depth=%d makespan=%.2f fp=%#x",
			p.Load, p.Stable, p.Result.Throughput, p.Result.LatencyP50,
			p.Result.LatencyP99, p.Result.MaxQueueDepth, p.Result.Makespan,
			loadFingerprint(p.Result.Loads)))
	}
	out = append(out, fmt.Sprintf("knee=%.4f thr=%.4f p99=%.2f bound=%.2f saturated=%v",
		res.Knee, res.KneeThroughput, res.KneeP99, res.P99Bound, res.Saturated))
	return out
}

// goldenSweep holds the values captured when the saturation subsystem
// was introduced. Worker-count variants must agree by construction; the
// literals pin everything else. The load fingerprint repeats across
// levels by design: without congestion penalties the routed paths do
// not depend on the injection rate — only the queueing outcome does.
var goldenSweep = []string{
	"load=0.5000 stable=true thr=0.5157 p50=4.00 p99=8.00 depth=2 makespan=3971.14 fp=0x503637205fa206f1",
	"load=1.0000 stable=true thr=1.0301 p50=4.00 p99=8.00 depth=2 makespan=1988.07 fp=0x503637205fa206f1",
	"load=2.0000 stable=true thr=2.0551 p50=4.00 p99=8.00 depth=2 makespan=996.54 fp=0x503637205fa206f1",
	"load=4.0000 stable=true thr=4.0893 p50=4.00 p99=8.00 depth=3 makespan=500.82 fp=0x503637205fa206f1",
	"load=8.0000 stable=true thr=8.0706 p50=4.00 p99=8.00 depth=4 makespan=253.76 fp=0x503637205fa206f1",
	"load=16.0000 stable=true thr=15.5868 p50=4.00 p99=8.69 depth=7 makespan=131.39 fp=0x503637205fa206f1",
	"load=20.0000 stable=true thr=18.4183 p50=4.03 p99=9.72 depth=10 makespan=111.19 fp=0x503637205fa206f1",
	"load=22.0000 stable=true thr=19.1667 p50=4.20 p99=12.28 depth=13 makespan=106.85 fp=0x503637205fa206f1",
	"load=23.0000 stable=false thr=19.3449 p50=4.32 p99=13.67 depth=16 makespan=105.87 fp=0x503637205fa206f1",
	"load=24.0000 stable=false thr=19.5283 p50=4.37 p99=15.23 depth=18 makespan=104.87 fp=0x503637205fa206f1",
	"load=32.0000 stable=false thr=20.0822 p50=4.89 p99=28.95 depth=35 makespan=101.98 fp=0x503637205fa206f1",
	"knee=22.0000 thr=19.1667 p99=12.28 bound=64.00 saturated=true",
}

func TestSeededSweepGolden(t *testing.T) {
	got := runSweepScenario(t, 1)
	if len(goldenSweep) == 0 {
		for _, line := range got {
			t.Logf("golden: %q,", line)
		}
		t.Fatal("goldenSweep is empty; paste the logged lines above")
	}
	if len(got) != len(goldenSweep) {
		t.Fatalf("sweep point count changed: got %d, want %d", len(got), len(goldenSweep))
	}
	for i := range got {
		if got[i] != goldenSweep[i] {
			t.Errorf("sweep line %d diverged:\n  got  %s\n  want %s", i, got[i], goldenSweep[i])
		}
	}
}

func TestSweepWorkerCountInvariance(t *testing.T) {
	one := runSweepScenario(t, 1)
	eight := runSweepScenario(t, 8)
	if len(one) != len(eight) {
		t.Fatalf("line counts differ: %d vs %d", len(one), len(eight))
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Errorf("workers=8 line %d diverged:\n  got  %s\n  want %s", i, eight[i], one[i])
		}
	}
}
