package regress

import (
	"fmt"
	"testing"

	"repro/internal/failure"
	"repro/internal/load"
	"repro/internal/replica"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// appendEngineLine formats one sweep's knee line exactly as the golden
// runners in engine_test.go do, so churn-variant lines are comparable
// byte-for-byte against goldenEngine/goldenEngineSharded.
func appendEngineLine(t *testing.T, out []string, label string, pit bool, res *load.SweepResult) []string {
	t.Helper()
	kp := res.KneePoint()
	if kp == nil {
		t.Fatalf("%s: no knee found", label)
	}
	line := fmt.Sprintf(
		"%s: knee=%.4f thr=%.4f p99=%.2f serving=%d aggregated=%d fp=%#x",
		label, res.Knee, res.KneeThroughput, res.KneeP99,
		kp.Result.ServingPoints(), kp.Result.Aggregated,
		loadFingerprint(kp.Result.Loads))
	if pit {
		line += fmt.Sprintf(" sup=%d fan=%d exp=%d",
			kp.Result.Suppressed, kp.Result.MulticastFanout, kp.Result.PITExpired)
	}
	return append(out, line)
}

func liftLine(label string, lift float64) string {
	return fmt.Sprintf("%s lift=%.4f", label, lift)
}

// This file is the churn layer's differential gate: a churn spec with
// gossip knobs but zero rate, no kill, and no flash attaches the
// engine's whole churn machinery — the op queue, the membership state,
// the stream-5 rng derivation — without scheduling a single dynamics
// event, and against the same statically pre-applied failure mask the
// goldens were captured under, every scenario line must stay
// byte-identical to the churn-free goldens. The knobs-only spec is
// attached to the live rows only (churn requires the live loop; the
// snapshot row keeps its static mask semantics by definition).

// knobsOnlyChurn is the differential-test spec: machinery, no events.
var knobsOnlyChurn = failure.ChurnSpec{
	ProbeTimeout: 4, GossipInterval: 1, GossipFanout: 2,
}

// runEngineScenarioChurn is runEngineScenario with the knobs-only
// churn spec attached to every live row.
func runEngineScenarioChurn(t *testing.T, workers, shards int, tel *telemetry.Recorder) []string {
	t.Helper()
	g := buildEngineScenarioGraph(t)
	var out []string
	var base float64
	for _, tc := range []struct {
		label                string
		live, aggregate, pit bool
	}{
		{"snapshot", false, false, false},
		{"live", true, false, false},
		{"live+aggregate", true, true, false},
		{"live+pit", true, false, true},
	} {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages:  2048,
				Workers:   workers,
				Shards:    shards,
				Live:      tc.live,
				Aggregate: tc.aggregate,
				PIT:       tc.pit,
				Route:     route.Options{DeadEnd: route.Backtrack},
				Telemetry: tel,
			},
			Model:      "poisson",
			Bisections: 4,
		}
		if tc.live {
			cfg.Churn = knobsOnlyChurn
		}
		cfg.Replication = &replica.Options{K: 4, CacheThreshold: 16, CacheCopies: 8}
		res, err := load.Sweep(g, load.Flood(), cfg, 302)
		if err != nil {
			t.Fatal(err)
		}
		out = appendEngineLine(t, out, tc.label, tc.pit, res)
		if !tc.live {
			base = res.KneeThroughput
		} else {
			out = append(out, liftLine(tc.label, res.KneeThroughput/base))
		}
	}
	return out
}

// runEngineShardScenarioChurn is runEngineShardScenario with the
// knobs-only churn spec attached to every row (all are live).
func runEngineShardScenarioChurn(t *testing.T, shards int, tel *telemetry.Recorder) []string {
	t.Helper()
	g := buildEngineScenarioGraph(t)
	var out []string
	for _, tc := range []struct {
		label          string
		aggregate, pit bool
	}{
		{"live", false, false},
		{"live+aggregate", true, false},
		{"live+pit", false, true},
	} {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages:  2048,
				Shards:    shards,
				Live:      true,
				Aggregate: tc.aggregate,
				PIT:       tc.pit,
				Route:     route.Options{DeadEnd: route.Backtrack},
				Telemetry: tel,
			},
			Model:      "poisson",
			Bisections: 4,
		}
		cfg.Churn = knobsOnlyChurn
		res, err := load.Sweep(g, load.Flood(), cfg, 302)
		if err != nil {
			t.Fatal(err)
		}
		out = appendEngineLine(t, out, tc.label, tc.pit, res)
	}
	return out
}

// eventfulChurn is the golden dynamics schedule: background Poisson
// churn with a regional kill mid-flood and a flash-crowd join, gossip
// repair on. ProbeTimeout 4 ≥ the service time (Capacity defaults to
// 1), so every shard count > 1 takes the partitioned loop — these
// goldens pin the sharded churn barrier's arithmetic itself.
var eventfulChurn = failure.ChurnSpec{
	Rate: 0.2, Horizon: 60,
	KillFrac: 0.25, KillAt: 8,
	FlashJoin: 12, FlashAt: 30,
	ProbeTimeout: 4, GossipInterval: 1, GossipFanout: 2,
	Repair: true,
}

// runEngineChurnEventsScenario runs the eventful-churn acceptance
// scenario — the engine-scenario torus under the eventfulChurn
// schedule, flooded at a fixed Poisson rate — in the three live modes
// at the given shard count, one line per mode. Each row rebuilds the
// graph: churn mutates it in place.
func runEngineChurnEventsScenario(t *testing.T, shards int, tel *telemetry.Recorder) []string {
	t.Helper()
	var out []string
	for _, tc := range []struct {
		label          string
		aggregate, pit bool
	}{
		{"live", false, false},
		{"live+aggregate", true, false},
		{"live+pit", false, true},
	} {
		g := buildEngineScenarioGraph(t)
		cfg := load.Config{
			Messages:  1024,
			Shards:    shards,
			Live:      true,
			Aggregate: tc.aggregate,
			PIT:       tc.pit,
			Arrival:   load.Poisson(24),
			Route:     route.Options{DeadEnd: route.Backtrack},
			Telemetry: tel,
			Churn:     eventfulChurn,
		}
		res, err := load.Run(g, load.Flood(), cfg, 302)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf(
			"%s: del=%d crash=%d join=%d str=%d/%d/%d gos=%d links=%d rum=%d/%d lag=%.2f fp=%#x",
			tc.label, res.Delivered, res.Crashes, res.Joins,
			res.Stranded, res.StrandResumed, res.StrandDropped,
			res.GossipSends, res.LinksRebuilt,
			res.RumorsConverged, res.RumorsAbandoned,
			res.MembershipLag, loadFingerprint(res.Loads)))
	}
	return out
}

// goldenEngineChurn pins the eventful-churn scenario, captured at
// shards = 1 (the sequential reference loop). Strands appear on the
// PIT row only: request legs pick their next hop among alive nodes at
// decision time, so a request strands only on an exact crash-instant
// tie, while answer legs retrace their recorded path through whatever
// churn has since killed.
var goldenEngineChurn = []string{
	"live: del=1020 crash=28 join=18 str=0/0/0 gos=58150 links=359 rum=46/0 lag=11.16 fp=0x91f58e67ed78b042",
	"live+aggregate: del=1010 crash=28 join=18 str=0/0/0 gos=58150 links=359 rum=46/0 lag=11.16 fp=0x87dd6c89e07becc3",
	"live+pit: del=1020 crash=28 join=18 str=13/13/0 gos=58150 links=359 rum=46/0 lag=11.16 fp=0x1573b6bb0abc4e15",
}

// TestSeededEngineChurnGolden pins the eventful-churn scenario itself,
// and asserts it actually exercises the dynamics: crashes, joins,
// strands, gossip, and repair must all be non-zero or the golden is
// vacuous.
func TestSeededEngineChurnGolden(t *testing.T) {
	got := runEngineChurnEventsScenario(t, 1, nil)
	if len(goldenEngineChurn) == 0 {
		for _, line := range got {
			t.Logf("golden: %q,", line)
		}
		t.Fatal("goldenEngineChurn is empty; paste the logged lines above")
	}
	if len(got) != len(goldenEngineChurn) {
		t.Fatalf("scenario line count changed: got %d, want %d", len(got), len(goldenEngineChurn))
	}
	for i := range got {
		if got[i] != goldenEngineChurn[i] {
			t.Errorf("line %d diverged:\n  got  %s\n  want %s", i, got[i], goldenEngineChurn[i])
		}
	}
	var crashes, joins, strands, gossip, links int
	for _, line := range got {
		var label string
		var del, cr, jo, st, re, dr, gs, lk, rc, ra int
		var lag float64
		var fp uint64
		if _, err := fmt.Sscanf(line,
			"%s del=%d crash=%d join=%d str=%d/%d/%d gos=%d links=%d rum=%d/%d lag=%f fp=0x%x",
			&label, &del, &cr, &jo, &st, &re, &dr, &gs, &lk, &rc, &ra, &lag, &fp); err != nil {
			t.Fatalf("unparseable scenario line %q: %v", line, err)
		}
		crashes, joins, strands, gossip, links = crashes+cr, joins+jo, strands+st, gossip+gs, links+lk
	}
	if crashes == 0 || joins == 0 || strands == 0 || gossip == 0 || links == 0 {
		t.Errorf("vacuous golden: crashes=%d joins=%d strands=%d gossip=%d links=%d — every dynamics path must fire",
			crashes, joins, strands, gossip, links)
	}
}

// TestEngineChurnEventsShardInvariance is the sharded-churn acceptance
// matrix: the eventful-churn scenario must be byte-identical to the
// sequential reference at shard counts {1, 2, 4, 7}, with the
// telemetry recorder both absent and attached. Shard counts > 1 take
// the partitioned loop (eventfulChurn's probe timeout covers the
// lookahead), so this holds the window-clipping, barrier-mutation, and
// strand-deferral machinery to the sequential loop's exact bytes. The
// "Churn" in the name opts the test into CI's race-detector pass.
func TestEngineChurnEventsShardInvariance(t *testing.T) {
	want := runEngineChurnEventsScenario(t, 1, nil)
	for _, shards := range []int{1, 2, 4, 7} {
		for _, withTel := range []bool{false, true} {
			var tel *telemetry.Recorder
			if withTel {
				tel = telemetry.New(telemetry.Options{})
			}
			got := runEngineChurnEventsScenario(t, shards, tel)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("shards=%d tel=%v line %d diverged:\n  got  %s\n  want %s",
						shards, withTel, i, got[i], want[i])
				}
			}
			if withTel && len(tel.Runs())+tel.Skipped() == 0 {
				t.Errorf("shards=%d: recorder saw no runs", shards)
			}
		}
	}
}

// TestEngineChurnKnobsDifferential holds the knobs-only churn variant
// of both seeded engine scenarios to the churn-free goldens, at the
// acceptance shard counts and with the telemetry recorder both absent
// and attached. Any byte of drift means the churn machinery perturbs
// event-free runs — the machinery must be attachable for free. The
// "Churn" in the name opts the test into CI's race-detector pass.
func TestEngineChurnKnobsDifferential(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		for _, withTel := range []bool{false, true} {
			var tel *telemetry.Recorder
			if withTel {
				tel = telemetry.New(telemetry.Options{})
			}
			got := runEngineScenarioChurn(t, 1, shards, tel)
			if len(got) != len(goldenEngine) {
				t.Fatalf("shards=%d tel=%v: cached line count %d, want %d",
					shards, withTel, len(got), len(goldenEngine))
			}
			for i := range got {
				if got[i] != goldenEngine[i] {
					t.Errorf("shards=%d tel=%v: cached scenario line %d diverged:\n  got  %s\n  want %s",
						shards, withTel, i, got[i], goldenEngine[i])
				}
			}
			if withTel {
				tel = telemetry.New(telemetry.Options{})
			}
			got = runEngineShardScenarioChurn(t, shards, tel)
			if len(got) != len(goldenEngineSharded) {
				t.Fatalf("shards=%d tel=%v: eligible line count %d, want %d",
					shards, withTel, len(got), len(goldenEngineSharded))
			}
			for i := range got {
				if got[i] != goldenEngineSharded[i] {
					t.Errorf("shards=%d tel=%v: eligible scenario line %d diverged:\n  got  %s\n  want %s",
						shards, withTel, i, got[i], goldenEngineSharded[i])
				}
			}
		}
	}
}
