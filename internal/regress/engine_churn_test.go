package regress

import (
	"fmt"
	"testing"

	"repro/internal/failure"
	"repro/internal/load"
	"repro/internal/replica"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// appendEngineLine formats one sweep's knee line exactly as the golden
// runners in engine_test.go do, so churn-variant lines are comparable
// byte-for-byte against goldenEngine/goldenEngineSharded.
func appendEngineLine(t *testing.T, out []string, label string, pit bool, res *load.SweepResult) []string {
	t.Helper()
	kp := res.KneePoint()
	if kp == nil {
		t.Fatalf("%s: no knee found", label)
	}
	line := fmt.Sprintf(
		"%s: knee=%.4f thr=%.4f p99=%.2f serving=%d aggregated=%d fp=%#x",
		label, res.Knee, res.KneeThroughput, res.KneeP99,
		kp.Result.ServingPoints(), kp.Result.Aggregated,
		loadFingerprint(kp.Result.Loads))
	if pit {
		line += fmt.Sprintf(" sup=%d fan=%d exp=%d",
			kp.Result.Suppressed, kp.Result.MulticastFanout, kp.Result.PITExpired)
	}
	return append(out, line)
}

func liftLine(label string, lift float64) string {
	return fmt.Sprintf("%s lift=%.4f", label, lift)
}

// This file is the churn layer's differential gate: a churn spec with
// gossip knobs but zero rate, no kill, and no flash attaches the
// engine's whole churn machinery — the op queue, the membership state,
// the stream-5 rng derivation — without scheduling a single dynamics
// event, and against the same statically pre-applied failure mask the
// goldens were captured under, every scenario line must stay
// byte-identical to the churn-free goldens. The knobs-only spec is
// attached to the live rows only (churn requires the live loop; the
// snapshot row keeps its static mask semantics by definition).

// knobsOnlyChurn is the differential-test spec: machinery, no events.
var knobsOnlyChurn = failure.ChurnSpec{
	ProbeTimeout: 4, GossipInterval: 1, GossipFanout: 2,
}

// runEngineScenarioChurn is runEngineScenario with the knobs-only
// churn spec attached to every live row.
func runEngineScenarioChurn(t *testing.T, workers, shards int, tel *telemetry.Recorder) []string {
	t.Helper()
	g := buildEngineScenarioGraph(t)
	var out []string
	var base float64
	for _, tc := range []struct {
		label                string
		live, aggregate, pit bool
	}{
		{"snapshot", false, false, false},
		{"live", true, false, false},
		{"live+aggregate", true, true, false},
		{"live+pit", true, false, true},
	} {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages:  2048,
				Workers:   workers,
				Shards:    shards,
				Live:      tc.live,
				Aggregate: tc.aggregate,
				PIT:       tc.pit,
				Route:     route.Options{DeadEnd: route.Backtrack},
				Telemetry: tel,
			},
			Model:      "poisson",
			Bisections: 4,
		}
		if tc.live {
			cfg.Churn = knobsOnlyChurn
		}
		cfg.Replication = &replica.Options{K: 4, CacheThreshold: 16, CacheCopies: 8}
		res, err := load.Sweep(g, load.Flood(), cfg, 302)
		if err != nil {
			t.Fatal(err)
		}
		out = appendEngineLine(t, out, tc.label, tc.pit, res)
		if !tc.live {
			base = res.KneeThroughput
		} else {
			out = append(out, liftLine(tc.label, res.KneeThroughput/base))
		}
	}
	return out
}

// runEngineShardScenarioChurn is runEngineShardScenario with the
// knobs-only churn spec attached to every row (all are live).
func runEngineShardScenarioChurn(t *testing.T, shards int, tel *telemetry.Recorder) []string {
	t.Helper()
	g := buildEngineScenarioGraph(t)
	var out []string
	for _, tc := range []struct {
		label          string
		aggregate, pit bool
	}{
		{"live", false, false},
		{"live+aggregate", true, false},
		{"live+pit", false, true},
	} {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages:  2048,
				Shards:    shards,
				Live:      true,
				Aggregate: tc.aggregate,
				PIT:       tc.pit,
				Route:     route.Options{DeadEnd: route.Backtrack},
				Telemetry: tel,
			},
			Model:      "poisson",
			Bisections: 4,
		}
		cfg.Churn = knobsOnlyChurn
		res, err := load.Sweep(g, load.Flood(), cfg, 302)
		if err != nil {
			t.Fatal(err)
		}
		out = appendEngineLine(t, out, tc.label, tc.pit, res)
	}
	return out
}

// TestEngineChurnKnobsDifferential holds the knobs-only churn variant
// of both seeded engine scenarios to the churn-free goldens, at the
// acceptance shard counts and with the telemetry recorder both absent
// and attached. Any byte of drift means the churn machinery perturbs
// event-free runs — the machinery must be attachable for free. The
// "Churn" in the name opts the test into CI's race-detector pass.
func TestEngineChurnKnobsDifferential(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		for _, withTel := range []bool{false, true} {
			var tel *telemetry.Recorder
			if withTel {
				tel = telemetry.New(telemetry.Options{})
			}
			got := runEngineScenarioChurn(t, 1, shards, tel)
			if len(got) != len(goldenEngine) {
				t.Fatalf("shards=%d tel=%v: cached line count %d, want %d",
					shards, withTel, len(got), len(goldenEngine))
			}
			for i := range got {
				if got[i] != goldenEngine[i] {
					t.Errorf("shards=%d tel=%v: cached scenario line %d diverged:\n  got  %s\n  want %s",
						shards, withTel, i, got[i], goldenEngine[i])
				}
			}
			if withTel {
				tel = telemetry.New(telemetry.Options{})
			}
			got = runEngineShardScenarioChurn(t, shards, tel)
			if len(got) != len(goldenEngineSharded) {
				t.Fatalf("shards=%d tel=%v: eligible line count %d, want %d",
					shards, withTel, len(got), len(goldenEngineSharded))
			}
			for i := range got {
				if got[i] != goldenEngineSharded[i] {
					t.Errorf("shards=%d tel=%v: eligible scenario line %d diverged:\n  got  %s\n  want %s",
						shards, withTel, i, got[i], goldenEngineSharded[i])
				}
			}
		}
	}
}
