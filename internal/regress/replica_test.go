package regress

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
)

// runReplicaScenario executes the seeded replica-flood acceptance
// scenario — a 32x32 torus with 30% of its nodes failed, flooded with
// lookups for one key, swept unreplicated and with k = 4 hash-spread
// replicas plus cache-on-path — and returns one line per sweep knee
// plus the headline lift. The golden values pin the whole replica
// pipeline: placement resolution, nearest-replica routing, cache
// promotion at batch boundaries, and the queue replay underneath.
func runReplicaScenario(t *testing.T, workers int) []string {
	t.Helper()
	torus, err := metric.NewTorus(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(300)
	g, err := graph.BuildIdeal(torus, graph.PaperConfigFor(torus, 10), src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := failure.FailNodesFraction(g, 0.3, src.Derive(1)); err != nil {
		t.Fatal(err)
	}
	var out []string
	var base float64
	for _, tc := range []struct {
		label string
		opt   *replica.Options
	}{
		{"k1", nil},
		{"k4+cache", &replica.Options{K: 4, CacheThreshold: 16, CacheCopies: 8}},
	} {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages: 2048,
				Workers:  workers,
				Route:    route.Options{DeadEnd: route.Backtrack},
			},
			Model:      "poisson",
			Bisections: 4,
		}
		cfg.Replication = tc.opt
		res, err := load.Sweep(g, load.Flood(), cfg, 302)
		if err != nil {
			t.Fatal(err)
		}
		kp := res.KneePoint()
		if kp == nil {
			t.Fatalf("%s: no knee found", tc.label)
		}
		out = append(out, fmt.Sprintf(
			"%s: knee=%.4f thr=%.4f p99=%.2f serving=%d cached=%d fp=%#x",
			tc.label, res.Knee, res.KneeThroughput, res.KneeP99,
			kp.Result.ServingPoints(), kp.Result.CacheCopies,
			loadFingerprint(kp.Result.Loads)))
		if tc.opt == nil {
			base = res.KneeThroughput
		} else {
			out = append(out, fmt.Sprintf("lift=%.4f", res.KneeThroughput/base))
		}
	}
	return out
}

// goldenReplica holds the values captured when the replica subsystem
// was introduced. The final line is the acceptance headline: k = 4
// replicas with cache-on-path lift the flood knee throughput >= 3x.
var goldenReplica = []string{
	"k1: knee=4.0000 thr=3.7302 p99=47.72 serving=1 cached=0 fp=0xb23fd3357ac92610",
	"k4+cache: knee=15.5000 thr=13.8504 p99=18.86 serving=10 cached=8 fp=0x504dc355a476b8c7",
	"lift=3.7130",
}

func TestSeededReplicaGolden(t *testing.T) {
	got := runReplicaScenario(t, 1)
	if len(goldenReplica) == 0 {
		for _, line := range got {
			t.Logf("golden: %q,", line)
		}
		t.Fatal("goldenReplica is empty; paste the logged lines above")
	}
	if len(got) != len(goldenReplica) {
		t.Fatalf("scenario line count changed: got %d, want %d", len(got), len(goldenReplica))
	}
	for i := range got {
		if got[i] != goldenReplica[i] {
			t.Errorf("line %d diverged:\n  got  %s\n  want %s", i, got[i], goldenReplica[i])
		}
	}
}

// TestReplicaKneeLiftAcceptance asserts the acceptance criterion
// directly (independently of the pinned literals): >= 3x knee
// throughput at k = 4 (+cache) on the 30%-failed torus.
func TestReplicaKneeLiftAcceptance(t *testing.T) {
	lines := runReplicaScenario(t, 1)
	var lift float64
	if _, err := fmt.Sscanf(lines[len(lines)-1], "lift=%f", &lift); err != nil {
		t.Fatalf("no lift line: %v (%q)", err, lines[len(lines)-1])
	}
	if lift < 3 {
		t.Errorf("flood knee lift %.4f, want >= 3", lift)
	}
}

func TestReplicaWorkerCountInvariance(t *testing.T) {
	one := runReplicaScenario(t, 1)
	for _, workers := range []int{2, 8} {
		other := runReplicaScenario(t, workers)
		if len(one) != len(other) {
			t.Fatalf("line counts differ: %d vs %d", len(one), len(other))
		}
		for i := range one {
			if one[i] != other[i] {
				t.Errorf("workers=%d line %d diverged:\n  got  %s\n  want %s", workers, i, other[i], one[i])
			}
		}
	}
}

// fixedFlood is a flood workload with a caller-chosen victim, so the
// fallback test can kill that key's replicas deliberately.
type fixedFlood struct {
	target metric.Point
	alive  []metric.Point
}

func (f *fixedFlood) Name() string { return "fixed-flood" }

func (f *fixedFlood) Bind(g *graph.Graph, _ *rng.Source) error {
	f.alive = f.alive[:0]
	for i := 0; i < g.Size(); i++ {
		if p := metric.Point(i); g.Alive(p) {
			f.alive = append(f.alive, p)
		}
	}
	if !g.Alive(f.target) {
		return fmt.Errorf("fixed-flood: target %d is dead", f.target)
	}
	return nil
}

func (f *fixedFlood) Pair(src *rng.Source) (metric.Point, metric.Point, error) {
	for {
		if p := f.alive[src.Intn(len(f.alive))]; p != f.target {
			return p, f.target, nil
		}
	}
}

// TestAllReplicasDeadFallbackGolden pins the fallback contract: with
// every extra replica of the hot key dead, a replicated run must be
// byte-identical to the unreplicated one — nearest-replica routing
// degrades to plain greedy on the primary. The fingerprint literal
// pins the scenario itself against drift.
func TestAllReplicasDeadFallbackGolden(t *testing.T) {
	const (
		replicaSeed = 88
		key         = metric.Point(123)
	)
	ring, err := metric.NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(10), rng.New(310))
	if err != nil {
		t.Fatal(err)
	}
	// Kill exactly the key's k = 4 hash-spread replicas (resolved from
	// the same placement the run will build).
	opts := replica.Options{K: 4}
	placement, err := replica.NewPlacement(ring, opts, replicaSeed)
	if err != nil {
		t.Fatal(err)
	}
	targets := placement.Targets(key)
	if len(targets) != 4 {
		t.Fatalf("placement resolved %d targets, want 4", len(targets))
	}
	for _, p := range targets[1:] {
		if !g.Fail(p) {
			t.Fatalf("could not fail replica %d", p)
		}
	}
	run := func(replicated bool) *load.Result {
		t.Helper()
		cfg := load.Config{
			Messages: 400,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		if replicated {
			cfg.Replication = &opts
			cfg.ReplicaSeed = replicaSeed
		}
		r, err := load.Run(g, &fixedFlood{target: key}, cfg, 311)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := run(false)
	repl := run(true)
	// The replication label is the only field allowed to differ.
	repl.Replication = plain.Replication
	if !reflect.DeepEqual(plain, repl) {
		t.Error("dead-replica run diverged from plain greedy")
	}
	got := fmt.Sprintf("delivered=%d failed=%d max=%d fp=%#x",
		plain.Delivered, plain.Failed, plain.MaxLoad, loadFingerprint(plain.Loads))
	const want = "delivered=400 failed=0 max=216 fp=0x3f464a65a4c726f2"
	if got != want {
		t.Errorf("fallback scenario drifted:\n  got  %s\n  want %s", got, want)
	}
}
