package regress

import (
	"fmt"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// runEngineScenario executes the engine-mode acceptance scenario — the
// PR-4 replica-flood setup (32x32 torus, 30% failed, single-target
// flood, k = 4 hash-spread replicas plus cache-on-path) swept in the
// engine's three modes — and returns one line per knee plus the
// headline lifts over the snapshot baseline. The snapshot row is the
// same sweep goldenReplica pins as "k4+cache", so any drift there is
// caught twice.
// A non-nil tel attaches the telemetry recorder to every run of the
// sweep; the recorder only observes, so the returned lines must be
// byte-identical either way (TestEngineTelemetryShardEquivalence).
func runEngineScenario(t *testing.T, workers, shards int, tel *telemetry.Recorder) []string {
	t.Helper()
	g := buildEngineScenarioGraph(t)
	var out []string
	var base float64
	for _, tc := range []struct {
		label                string
		live, aggregate, pit bool
	}{
		{"snapshot", false, false, false},
		{"live", true, false, false},
		{"live+aggregate", true, true, false},
		{"live+pit", true, false, true},
	} {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages:  2048,
				Workers:   workers,
				Shards:    shards,
				Live:      tc.live,
				Aggregate: tc.aggregate,
				PIT:       tc.pit,
				Route:     route.Options{DeadEnd: route.Backtrack},
				Telemetry: tel,
			},
			Model:      "poisson",
			Bisections: 4,
		}
		cfg.Replication = &replica.Options{K: 4, CacheThreshold: 16, CacheCopies: 8}
		res, err := load.Sweep(g, load.Flood(), cfg, 302)
		if err != nil {
			t.Fatal(err)
		}
		kp := res.KneePoint()
		if kp == nil {
			t.Fatalf("%s: no knee found", tc.label)
		}
		line := fmt.Sprintf(
			"%s: knee=%.4f thr=%.4f p99=%.2f serving=%d aggregated=%d fp=%#x",
			tc.label, res.Knee, res.KneeThroughput, res.KneeP99,
			kp.Result.ServingPoints(), kp.Result.Aggregated,
			loadFingerprint(kp.Result.Loads))
		if tc.pit {
			line += fmt.Sprintf(" sup=%d fan=%d exp=%d",
				kp.Result.Suppressed, kp.Result.MulticastFanout, kp.Result.PITExpired)
		}
		out = append(out, line)
		if !tc.live {
			base = res.KneeThroughput
		} else {
			out = append(out, fmt.Sprintf("%s lift=%.4f", tc.label, res.KneeThroughput/base))
		}
	}
	return out
}

// buildEngineScenarioGraph constructs the engine scenarios' shared
// network: the PR-4 acceptance torus, seeded at 300 with 30% of nodes
// failed.
func buildEngineScenarioGraph(t *testing.T) *graph.Graph {
	t.Helper()
	torus, err := metric.NewTorus(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(300)
	g, err := graph.BuildIdeal(torus, graph.PaperConfigFor(torus, 10), src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := failure.FailNodesFraction(g, 0.3, src.Derive(1)); err != nil {
		t.Fatal(err)
	}
	return g
}

// runEngineShardScenario executes a parallel-eligible variant of the
// engine scenario — the same 30%-failed torus flood without
// replication, swept in live and live+aggregate modes under open-loop
// Poisson arrivals — at the given shard count. Unlike
// runEngineScenario, whose caching forces the sequential fallback at
// every shard count, these sweeps take the partitioned loop whenever
// shards > 1, so the goldens pin the sharded engine's arithmetic
// itself.
func runEngineShardScenario(t *testing.T, shards int, tel *telemetry.Recorder) []string {
	t.Helper()
	g := buildEngineScenarioGraph(t)
	var out []string
	for _, tc := range []struct {
		label          string
		aggregate, pit bool
	}{
		{"live", false, false},
		{"live+aggregate", true, false},
		{"live+pit", false, true},
	} {
		cfg := load.SweepConfig{
			Config: load.Config{
				Messages:  2048,
				Shards:    shards,
				Live:      true,
				Aggregate: tc.aggregate,
				PIT:       tc.pit,
				Route:     route.Options{DeadEnd: route.Backtrack},
				Telemetry: tel,
			},
			Model:      "poisson",
			Bisections: 4,
		}
		res, err := load.Sweep(g, load.Flood(), cfg, 302)
		if err != nil {
			t.Fatal(err)
		}
		kp := res.KneePoint()
		if kp == nil {
			t.Fatalf("%s: no knee found", tc.label)
		}
		line := fmt.Sprintf(
			"%s: knee=%.4f thr=%.4f p99=%.2f serving=%d aggregated=%d fp=%#x",
			tc.label, res.Knee, res.KneeThroughput, res.KneeP99,
			kp.Result.ServingPoints(), kp.Result.Aggregated,
			loadFingerprint(kp.Result.Loads))
		if tc.pit {
			line += fmt.Sprintf(" sup=%d fan=%d exp=%d",
				kp.Result.Suppressed, kp.Result.MulticastFanout, kp.Result.PITExpired)
		}
		out = append(out, line)
	}
	return out
}

// goldenEngine holds the values captured when the engine was
// introduced. The snapshot knee throughput equals goldenReplica's
// "k4+cache" row by construction (the engine's snapshot mode is the
// pre-engine pipeline); the final line is the acceptance headline —
// live+aggregate lifts the flood knee above that baseline.
var goldenEngine = []string{
	"snapshot: knee=15.5000 thr=13.8504 p99=18.86 serving=10 aggregated=0 fp=0x504dc355a476b8c7",
	"live: knee=11.0000 thr=9.6725 p99=22.77 serving=10 aggregated=0 fp=0x6a43adc2fd12f22d",
	"live lift=0.6984",
	"live+aggregate: knee=116.0000 thr=90.6302 p99=5.00 serving=10 aggregated=1426 fp=0xa49891465d1c6287",
	"live+aggregate lift=6.5435",
	// The PIT knee runs into the sweep's bracket cap (Min × 2^12)
	// unsaturated: network-wide suppression collapses the flood at
	// every tested rate, even though caching is inert under PIT
	// (answers retrace the recorded path, so there is no cache-on-path
	// insertion) and every lookup pays the answer round trip. The
	// throughput lift over snapshot is modest for exactly that reason —
	// the knee-rate lift is what suppression buys.
	"live+pit: knee=2048.0000 thr=21.3789 p99=19.72 serving=10 aggregated=0 fp=0x64a2e07b4da25e8c sup=1981 fan=1958 exp=23",
	"live+pit lift=1.5436",
}

func TestSeededEngineGolden(t *testing.T) {
	got := runEngineScenario(t, 1, 1, nil)
	if len(goldenEngine) == 0 {
		for _, line := range got {
			t.Logf("golden: %q,", line)
		}
		t.Fatal("goldenEngine is empty; paste the logged lines above")
	}
	if len(got) != len(goldenEngine) {
		t.Fatalf("scenario line count changed: got %d, want %d", len(got), len(goldenEngine))
	}
	for i := range got {
		if got[i] != goldenEngine[i] {
			t.Errorf("line %d diverged:\n  got  %s\n  want %s", i, got[i], goldenEngine[i])
		}
	}
}

// TestEngineAggregateKneeLiftAcceptance asserts the PR's acceptance
// criterion directly, independent of the pinned literals: on the
// 30%-failed torus flood, live+aggregate must lift the knee throughput
// above the k = 4 + cache snapshot baseline (13.85 msgs/tick here,
// 13.58 at the bench scale).
func TestEngineAggregateKneeLiftAcceptance(t *testing.T) {
	lines := runEngineScenario(t, 1, 1, nil)
	lift := 0.0
	for _, line := range lines {
		if _, err := fmt.Sscanf(line, "live+aggregate lift=%f", &lift); err == nil {
			break
		}
	}
	if lift == 0 {
		t.Fatalf("no live+aggregate lift line in %q", lines)
	}
	if lift <= 1 {
		t.Errorf("live+aggregate knee lift %.4f over the snapshot k=4+cache baseline, want > 1", lift)
	}
}

// TestEnginePITKneeLiftAcceptance asserts this PR's acceptance
// criterion directly, independent of the pinned literals: on the
// parallel-eligible 30%-failed torus flood, PIT suppression must lift
// the flood knee — the largest offered rate the network absorbs —
// above the live+aggregate baseline. Aggregation merges same-queue
// duplicates but still saturates once distinct queues fill; PIT
// suppresses network-wide and answers along the reverse path, so every
// sweep load stays stable and its knee runs into the bracket cap, a
// lower bound that already clears the aggregate knee severalfold.
// (Knee rates, not knee throughputs, are compared: aggregation's
// merged completions are never charged an answer leg, so its
// throughput counts work PIT actually performs.)
func TestEnginePITKneeLiftAcceptance(t *testing.T) {
	lines := runEngineShardScenario(t, 1, nil)
	knees := map[string]float64{}
	for _, label := range []string{"live", "live+aggregate", "live+pit"} {
		for _, line := range lines {
			var knee float64
			if _, err := fmt.Sscanf(line, label+": knee=%f", &knee); err == nil {
				knees[label] = knee
				break
			}
		}
		if knees[label] == 0 {
			t.Fatalf("no %s knee line in %q", label, lines)
		}
	}
	if lift := knees["live+pit"] / knees["live+aggregate"]; lift <= 1 {
		t.Errorf("live+pit knee lift %.4f over the live+aggregate flood knee, want > 1", lift)
	}
	if lift := knees["live+pit"] / knees["live"]; lift <= 1 {
		t.Errorf("live+pit knee lift %.4f over the plain live flood knee, want > 1", lift)
	}
}

// TestEngineWorkerCountInvariance runs the engine scenario at the
// acceptance worker counts {1, 4, 16}: snapshot mode parallelizes path
// computation, live modes take their parallelism from Shards instead,
// and neither may move a byte.
func TestEngineWorkerCountInvariance(t *testing.T) {
	one := runEngineScenario(t, 1, 1, nil)
	for _, workers := range []int{4, 16} {
		other := runEngineScenario(t, workers, 1, nil)
		if len(one) != len(other) {
			t.Fatalf("line counts differ: %d vs %d", len(one), len(other))
		}
		for i := range one {
			if one[i] != other[i] {
				t.Errorf("workers=%d line %d diverged:\n  got  %s\n  want %s", workers, i, other[i], one[i])
			}
		}
	}
}

// goldenEngineSharded pins the parallel-eligible live scenario's knees,
// captured at shards = 1. TestEngineShardCountInvariance holds every
// other shard count to these exact lines.
var goldenEngineSharded = []string{
	"live: knee=4.0000 thr=3.7302 p99=47.72 serving=1 aggregated=0 fp=0xb23fd3357ac92610",
	"live+aggregate: knee=176.0000 thr=107.5872 p99=7.00 serving=1 aggregated=1932 fp=0x4695a9fff8b2ff29",
	// The PIT knee sits at the sweep's bracket cap (Min × 2^12) with the
	// sweep unsaturated: suppression collapses the single-key flood so
	// completely that no tested rate builds backlog — even an
	// instantaneous burst of all 2048 lookups keeps the deepest queue
	// near twenty entries — so the pinned knee is a lower bound on
	// capacity, not a measured saturation point.
	"live+pit: knee=2048.0000 thr=15.5600 p99=109.86 serving=1 aggregated=0 fp=0x9b050fba3d77890b sup=2035 fan=2000 exp=35",
}

// TestSeededEngineShardedGolden pins the parallel-eligible scenario
// itself, so the sharded goldens fail loudly on semantic drift rather
// than only relative to each other.
func TestSeededEngineShardedGolden(t *testing.T) {
	got := runEngineShardScenario(t, 1, nil)
	if len(goldenEngineSharded) == 0 {
		for _, line := range got {
			t.Logf("golden: %q,", line)
		}
		t.Fatal("goldenEngineSharded is empty; paste the logged lines above")
	}
	if len(got) != len(goldenEngineSharded) {
		t.Fatalf("scenario line count changed: got %d, want %d", len(got), len(goldenEngineSharded))
	}
	for i := range got {
		if got[i] != goldenEngineSharded[i] {
			t.Errorf("line %d diverged:\n  got  %s\n  want %s", i, got[i], goldenEngineSharded[i])
		}
	}
}

// TestEngineShardCountInvariance is the sharded engine's acceptance
// matrix: both seeded engine scenarios — the cached one (which falls
// back to the sequential loop, pinning the eligibility gate) and the
// parallel-eligible one (which takes the partitioned loop) — must be
// byte-identical at shard counts {1, 2, 4, 7}.
func TestEngineShardCountInvariance(t *testing.T) {
	cached := runEngineScenario(t, 1, 1, nil)
	eligible := runEngineShardScenario(t, 1, nil)
	for _, shards := range []int{2, 4, 7} {
		got := runEngineScenario(t, 1, shards, nil)
		for i := range cached {
			if cached[i] != got[i] {
				t.Errorf("cached scenario shards=%d line %d diverged:\n  got  %s\n  want %s",
					shards, i, got[i], cached[i])
			}
		}
		got = runEngineShardScenario(t, shards, nil)
		for i := range eligible {
			if eligible[i] != got[i] {
				t.Errorf("eligible scenario shards=%d line %d diverged:\n  got  %s\n  want %s",
					shards, i, got[i], eligible[i])
			}
		}
	}
}

// TestSnapshotGoldensWorkerInvariance re-runs the pre-engine golden
// scenario suites at workers 4 and 16 — the acceptance matrix the
// engine refactor must hold: the goldens above pin workers 1 (and 8
// where historical), these pin the rest.
func TestSnapshotGoldensWorkerInvariance(t *testing.T) {
	base := runSweepScenario(t, 1)
	for _, workers := range []int{4, 16} {
		got := runSweepScenario(t, workers)
		for i := range base {
			if base[i] != got[i] {
				t.Errorf("sweep workers=%d line %d diverged:\n  got  %s\n  want %s", workers, i, got[i], base[i])
			}
		}
	}
	replicaBase := runReplicaScenario(t, 1)
	for _, workers := range []int{4, 16} {
		got := runReplicaScenario(t, workers)
		for i := range replicaBase {
			if replicaBase[i] != got[i] {
				t.Errorf("replica workers=%d line %d diverged:\n  got  %s\n  want %s", workers, i, got[i], replicaBase[i])
			}
		}
	}
}

// TestEngineTelemetryShardEquivalence is the observability layer's
// acceptance gate: attaching a telemetry recorder must not move a byte
// of either seeded engine scenario at any shard count — the cached one
// (sequential fallback, snapshot + live + live+aggregate modes) and
// the parallel-eligible one (the partitioned loop) — while the
// recorder itself must come back non-empty. The "Shard" in the name
// opts the test into CI's race-detector pass, which exercises the
// per-shard telemetry views under -race.
func TestEngineTelemetryShardEquivalence(t *testing.T) {
	cached := runEngineScenario(t, 1, 1, nil)
	eligible := runEngineShardScenario(t, 1, nil)
	for _, shards := range []int{1, 2, 4, 7} {
		tel := telemetry.New(telemetry.Options{})
		got := runEngineScenario(t, 1, shards, tel)
		for i := range cached {
			if cached[i] != got[i] {
				t.Errorf("telemetry moved cached scenario shards=%d line %d:\n  got  %s\n  want %s",
					shards, i, got[i], cached[i])
			}
		}
		if len(tel.Runs())+tel.Skipped() == 0 {
			t.Errorf("shards=%d: cached-scenario recorder saw no runs", shards)
		}
		tel = telemetry.New(telemetry.Options{})
		got = runEngineShardScenario(t, shards, tel)
		for i := range eligible {
			if eligible[i] != got[i] {
				t.Errorf("telemetry moved eligible scenario shards=%d line %d:\n  got  %s\n  want %s",
					shards, i, got[i], eligible[i])
			}
		}
		if len(tel.Runs())+tel.Skipped() == 0 {
			t.Errorf("shards=%d: eligible-scenario recorder saw no runs", shards)
		}
		if shards > 1 {
			// The live sweep takes the partitioned loop, so some run must
			// carry a real shard profile. (The live+aggregate sweep runs
			// after it and falls back to the sequential loop — its
			// closed-loop-capable Completed hook makes it ineligible — so
			// the last-run Scheduler() accessor is not the right probe.)
			profiled := false
			for _, run := range tel.Runs() {
				if sc := run.Sched(); sc.Shards == shards && sc.Windows > 0 {
					profiled = true
					break
				}
			}
			if !profiled {
				t.Errorf("shards=%d: no run carries a %d-shard scheduler profile", shards, shards)
			}
		}
	}
}
