package regress

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

// loadFingerprint folds the full per-node load vector into an FNV-1a
// hash — any change to routing, workload sampling, or queue charging
// moves it.
func loadFingerprint(loads []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, l := range loads {
		v := uint64(l)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// histLine renders the log-bucketed load histogram compactly:
// "bucketLabel=count" for every non-empty bucket.
func histLine(r *load.Result) string {
	h := r.LoadHistogram()
	if h == nil {
		return "empty"
	}
	s := ""
	for i := 0; i < h.Buckets(); i++ {
		if c := h.Count(i); c > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%d", h.BucketLabel(i), c)
		}
	}
	return s
}

// runLoadScenarios executes the seeded traffic suite over one damaged
// ring and returns one line per observation. The golden values pin the
// whole load pipeline: workload sampling, routing (plain and
// congestion-penalized), FIFO queue replay, and the quantile summary.
func runLoadScenarios(t *testing.T) []string {
	t.Helper()
	ring, err := metric.NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(10), rng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := failure.FailNodesFraction(g, 0.2, rng.New(101)); err != nil {
		t.Fatal(err)
	}

	var out []string
	measure := func(label string, gen load.Generator, penalty float64, workers int) {
		cfg := load.Config{
			Messages: 400,
			Workers:  workers,
			Penalty:  penalty,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		r, err := load.Run(g, gen, cfg, 102)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		out = append(out,
			fmt.Sprintf("%s: injected=%d delivered=%d failed=%d max=%d mean=%.4f depth=%d p50=%.2f p95=%.2f p99=%.2f fp=%#x",
				label, r.Injected, r.Delivered, r.Failed, r.MaxLoad, r.MeanLoad,
				r.MaxQueueDepth, r.LatencyP50, r.LatencyP95, r.LatencyP99,
				loadFingerprint(r.Loads)),
			fmt.Sprintf("%s: hist %s", label, histLine(r)))
	}

	measure("zipf/greedy", load.Zipf(1.0), 0, 1)
	measure("zipf/greedy/w8", load.Zipf(1.0), 0, 8)
	measure("zipf/aware", load.Zipf(1.0), 1, 1)
	measure("zipf/aware/w8", load.Zipf(1.0), 1, 8)
	measure("flood/greedy", load.Flood(), 0, 4)
	measure("uniform/greedy", load.Uniform(), 0, 4)
	return out
}

// goldenLoad holds the values captured when the load subsystem was
// introduced. Worker-count variants must agree pairwise by
// construction; the literals pin everything else.
var goldenLoad = []string{
	"zipf/greedy: injected=400 delivered=396 failed=4 max=26 mean=2.2780 depth=2 p50=4.00 p95=7.00 p99=9.00 fp=0x7adfb175c75be681",
	"zipf/greedy: hist 1=227 2-3=282 4-7=142 8-15=21 16-31=4",
	"zipf/greedy/w8: injected=400 delivered=396 failed=4 max=26 mean=2.2780 depth=2 p50=4.00 p95=7.00 p99=9.00 fp=0x7adfb175c75be681",
	"zipf/greedy/w8: hist 1=227 2-3=282 4-7=142 8-15=21 16-31=4",
	"zipf/aware: injected=400 delivered=396 failed=4 max=22 mean=2.3537 depth=2 p50=4.00 p95=8.00 p99=9.00 fp=0xaad29a92609cb8c7",
	"zipf/aware: hist 1=213 2-3=308 4-7=150 8-15=18 16-31=4",
	"zipf/aware/w8: injected=400 delivered=396 failed=4 max=22 mean=2.3537 depth=2 p50=4.00 p95=8.00 p99=9.00 fp=0xaad29a92609cb8c7",
	"zipf/aware/w8: hist 1=213 2-3=308 4-7=150 8-15=18 16-31=4",
	"flood/greedy: injected=400 delivered=399 failed=1 max=183 mean=2.1939 depth=2 p50=5.00 p95=8.00 p99=9.00 fp=0x5b4af5661f7c69da",
	"flood/greedy: hist 1=248 2-3=123 4-7=66 8-15=21 16-31=10 32-63=6 64-127=2 128-255=1",
	"uniform/greedy: injected=400 delivered=397 failed=3 max=17 mean=2.4634 depth=2 p50=4.00 p95=8.00 p99=11.00 fp=0x7fe9c118452df6bd",
	"uniform/greedy: hist 1=184 2-3=358 4-7=168 8-15=15 16-31=1",
}

func TestSeededLoadGolden(t *testing.T) {
	got := runLoadScenarios(t)
	if len(goldenLoad) == 0 {
		for _, line := range got {
			t.Logf("golden: %q,", line)
		}
		t.Fatal("goldenLoad is empty; paste the logged lines above")
	}
	if len(got) != len(goldenLoad) {
		t.Fatalf("scenario count changed: got %d, want %d", len(got), len(goldenLoad))
	}
	for i := range got {
		if got[i] != goldenLoad[i] {
			t.Errorf("scenario %d diverged:\n  got  %s\n  want %s", i, got[i], goldenLoad[i])
		}
	}
}
