// Package regress pins the exact seeded behaviour of the 1-D pipeline:
// graph construction (ideal, presence-masked, heuristic, deterministic),
// failure injection, and every routing policy. The golden values below
// were captured from the seed implementation; any refactor of the
// metric/graph/route/failure/construct layers must reproduce them
// bit-for-bit, proving the dimension-generic Space path is
// behaviour-preserving for d=1.
package regress

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/construct"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

// fingerprint folds every long link (owner, target, up) of g, in point
// order, into an FNV-1a hash — a strong structural identity for the
// built overlay.
func fingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	for i := 0; i < g.Size(); i++ {
		p := metric.Point(i)
		for _, lk := range g.Long(p) {
			up := byte(0)
			if lk.Up {
				up = 1
			}
			buf = append(buf[:0],
				byte(i), byte(i>>8), byte(i>>16),
				byte(lk.To), byte(lk.To>>8), byte(lk.To>>16),
				up)
			h.Write(buf)
		}
	}
	return h.Sum64()
}

func statLine(label string, s sim.SearchStats) string {
	return fmt.Sprintf("%s: searches=%d delivered=%d hopsOK=%d hopsFail=%d reroutes=%d backtracks=%d",
		label, s.Searches, s.Delivered, s.HopsOK, s.HopsFail, s.Reroutes, s.Backtracks)
}

// run1DScenarios executes the full seeded scenario suite and returns one
// line per observation.
func run1DScenarios(t *testing.T) []string {
	t.Helper()
	var out []string
	add := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...))
	}

	measure := func(label string, g *graph.Graph, opt route.Options, seed uint64, msgs int) {
		r := route.New(g, opt)
		stats, err := sim.MeasureSearches(g, r, rng.New(seed), msgs)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		out = append(out, statLine(label, stats))
	}

	// --- Ideal ring, mass node failure, all three dead-end policies.
	ring, err := metric.NewRing(4096)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(12), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	add("ideal-ring: links=%d fp=%#x", g.LongLinkCount(), fingerprint(g))
	if _, err := failure.FailNodesFraction(g, 0.3, rng.New(43)); err != nil {
		t.Fatal(err)
	}
	add("ideal-ring: alive=%d", g.AliveCount())
	measure("ideal-ring/terminate", g, route.Options{DeadEnd: route.Terminate}, 44, 300)
	measure("ideal-ring/reroute", g, route.Options{DeadEnd: route.RandomReroute, MaxReroutes: 3}, 44, 300)
	measure("ideal-ring/backtrack", g, route.Options{DeadEnd: route.Backtrack}, 44, 300)
	measure("ideal-ring/one-sided", g, route.Options{Sidedness: route.OneSided, DeadEnd: route.Backtrack}, 45, 300)
	measure("ideal-ring/directed", g, route.Options{DirectedOnly: true, DeadEnd: route.Backtrack}, 46, 300)

	// --- Ideal line (boundary handling), healthy, both sidedness modes.
	line, err := metric.NewLine(2048)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := graph.BuildIdeal(line, graph.PaperConfig(11), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	add("ideal-line: links=%d fp=%#x", gl.LongLinkCount(), fingerprint(gl))
	measure("ideal-line/two-sided", gl, route.Options{}, 8, 300)
	measure("ideal-line/one-sided", gl, route.Options{Sidedness: route.OneSided}, 9, 300)

	// --- Non-harmonic exponent (table sampler path).
	ge, err := graph.BuildIdeal(ring, graph.BuildConfig{Links: 6, Exponent: 1.5}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	add("ideal-exp1.5: links=%d fp=%#x", ge.LongLinkCount(), fingerprint(ge))
	gu, err := graph.BuildIdeal(ring, graph.BuildConfig{Links: 6, Exponent: 0}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	add("ideal-uniform: links=%d fp=%#x", gu.LongLinkCount(), fingerprint(gu))

	// --- Binomial presence (basin-of-attraction redirect path).
	mask, err := failure.BinomialPresence(4096, 0.7, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	gp, err := graph.BuildIdealWithPresence(ring, graph.PaperConfig(12), mask, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	add("presence-ring: alive=%d links=%d fp=%#x", gp.AliveCount(), gp.LongLinkCount(), fingerprint(gp))
	measure("presence-ring/terminate", gp, route.Options{}, 14, 300)

	// --- Heuristic §5 construction (arrival protocol + NearestExisting).
	small, err := metric.NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := construct.Grow(small, construct.Config{Links: 8}, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	add("heuristic-ring: links=%d fp=%#x", gh.LongLinkCount(), fingerprint(gh))
	measure("heuristic-ring/backtrack", gh, route.Options{DeadEnd: route.Backtrack}, 16, 300)

	// --- Heuristic churn: departures regenerate links.
	b, err := construct.NewBuilder(small, construct.Config{Links: 6, Strategy: construct.Oldest}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rng.New(18).Perm(1024) {
		if err := b.Add(metric.Point(i)); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 1024; p += 3 {
		if err := b.Remove(metric.Point(p)); err != nil {
			t.Fatal(err)
		}
	}
	add("heuristic-churn: alive=%d links=%d fp=%#x", b.Graph().AliveCount(), b.Graph().LongLinkCount(), fingerprint(b.Graph()))

	// --- Deterministic overlays + link failures (Theorems 14–16).
	gd, err := graph.BuildDeterministic(ring, 2, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	add("det-b2-ring: links=%d fp=%#x", gd.LongLinkCount(), fingerprint(gd))
	gdp, err := graph.BuildDeterministicPowers(line, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := failure.FailLinks(gdp, 0.8, rng.New(20)); err != nil {
		t.Fatal(err)
	}
	add("detpow-b3-line: links=%d fp=%#x", gdp.LongLinkCount(), fingerprint(gdp))
	measure("detpow-b3-line/terminate", gdp, route.Options{}, 21, 300)

	// --- Link-length histogram of the ideal build (Figure 5's measurement).
	h := g.LinkLengthHistogram()
	var moment int64
	for d := 0; d < 64; d++ {
		moment += h.Count(d)
	}
	add("ideal-ring: histTotal=%d histHead=%d", h.Total(), moment)

	return out
}

// golden1D holds the values captured from the seed implementation
// (commit 293e9f2) before the dimension-generic refactor.
var golden1D = []string{
	"ideal-ring: links=49152 fp=0x8b873249fa6beb58",
	"ideal-ring: alive=2868",
	"ideal-ring/terminate: searches=300 delivered=263 hopsOK=1438 hopsFail=167 reroutes=0 backtracks=0",
	"ideal-ring/reroute: searches=300 delivered=295 hopsOK=1816 hopsFail=121 reroutes=55 backtracks=0",
	"ideal-ring/backtrack: searches=300 delivered=298 hopsOK=1899 hopsFail=25 reroutes=0 backtracks=119",
	"ideal-ring/one-sided: searches=300 delivered=277 hopsOK=2198 hopsFail=769 reroutes=0 backtracks=419",
	"ideal-ring/directed: searches=300 delivered=285 hopsOK=2642 hopsFail=427 reroutes=0 backtracks=370",
	"ideal-line: links=22528 fp=0x84ccfb93f56c7432",
	"ideal-line/two-sided: searches=300 delivered=300 hopsOK=1391 hopsFail=0 reroutes=0 backtracks=0",
	"ideal-line/one-sided: searches=300 delivered=300 hopsOK=1694 hopsFail=0 reroutes=0 backtracks=0",
	"ideal-exp1.5: links=24576 fp=0x83325ff2452ae644",
	"ideal-uniform: links=24576 fp=0xad0e1e186399455b",
	"presence-ring: alive=2835 links=34020 fp=0x2717e1c4258eaab3",
	"presence-ring/terminate: searches=300 delivered=300 hopsOK=1355 hopsFail=0 reroutes=0 backtracks=0",
	"heuristic-ring: links=8192 fp=0xbf36ad177e098e9e",
	"heuristic-ring/backtrack: searches=300 delivered=300 hopsOK=1352 hopsFail=0 reroutes=0 backtracks=0",
	"heuristic-churn: alive=682 links=4092 fp=0xec61404892ea8657",
	"det-b2-ring: links=98304 fp=0x4be983c0c35861c5",
	"detpow-b3-line: links=26486 fp=0x9479ee6e51eb6d90",
	"detpow-b3-line/terminate: searches=300 delivered=300 hopsOK=1545 hopsFail=0 reroutes=0 backtracks=0",
	"ideal-ring: histTotal=49152 histHead=28226",
}

func TestSeededPipelineGolden(t *testing.T) {
	got := run1DScenarios(t)
	if len(golden1D) == 0 {
		for _, line := range got {
			t.Logf("golden: %q,", line)
		}
		t.Fatal("golden1D is empty; paste the logged lines above")
	}
	if len(got) != len(golden1D) {
		t.Fatalf("scenario count changed: got %d, want %d", len(got), len(golden1D))
	}
	for i := range got {
		if got[i] != golden1D[i] {
			t.Errorf("scenario %d diverged:\n  got  %s\n  want %s", i, got[i], golden1D[i])
		}
	}
}
