package construct

import (
	"testing"
	"testing/quick"

	"repro/internal/metric"
	"repro/internal/rng"
)

// Property: under any random churn script, the builder maintains its
// invariants — no node exceeds the link budget, no up link dangles at a
// departed node, and alive counts match membership.
func TestBuilderInvariantsProperty(t *testing.T) {
	const n, links = 64, 4
	f := func(seed uint64, script []byte) bool {
		sp, err := metric.NewRing(n)
		if err != nil {
			return false
		}
		b, err := NewBuilder(sp, Config{Links: links}, rng.New(seed))
		if err != nil {
			return false
		}
		present := map[metric.Point]bool{}
		// Seed a few nodes so removals have targets.
		for _, i := range rng.New(seed).Perm(n)[:8] {
			if err := b.Add(metric.Point(i)); err != nil {
				return false
			}
			present[metric.Point(i)] = true
		}
		for _, op := range script {
			p := metric.Point(int(op) % n)
			if present[p] {
				if len(present) <= 1 {
					continue
				}
				if err := b.Remove(p); err != nil {
					return false
				}
				delete(present, p)
			} else {
				if err := b.Add(p); err != nil {
					return false
				}
				present[p] = true
			}
		}
		g := b.Graph()
		if g.AliveCount() != len(present) {
			return false
		}
		for i := 0; i < n; i++ {
			pt := metric.Point(i)
			if g.Exists(pt) != present[pt] {
				return false
			}
			if len(g.Long(pt)) > links {
				return false
			}
			for _, lk := range g.Long(pt) {
				if lk.Up && !present[lk.To] {
					return false // dangling up link
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the in-degree soliciting never pushes a node's out-degree
// above the budget, for either replacement strategy.
func TestSolicitRespectsBudgetProperty(t *testing.T) {
	for _, strat := range []ReplacementStrategy{InverseDistance, Oldest} {
		strat := strat
		f := func(seed uint64) bool {
			sp, err := metric.NewRing(128)
			if err != nil {
				return false
			}
			b, err := NewBuilder(sp, Config{Links: 3, Strategy: strat}, rng.New(seed))
			if err != nil {
				return false
			}
			for _, i := range rng.New(seed ^ 0xabc).Perm(128) {
				if err := b.Add(metric.Point(i)); err != nil {
					return false
				}
			}
			g := b.Graph()
			for i := 0; i < 128; i++ {
				if len(g.Long(metric.Point(i))) > 3 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("strategy %v: %v", strat, err)
		}
	}
}
