// Package construct implements the dynamic graph-construction heuristic
// of §5 of the paper.
//
// Nodes (points of the metric space) arrive one at a time. An arriving
// point v:
//
//  1. draws its outgoing long links from the inverse power-law
//     distribution with exponent 1, redirecting any link aimed at an
//     absent point to the nearest present one (the "basin of
//     attraction" rule);
//  2. estimates how many incoming links it "should" have by drawing
//     from a Poisson distribution with rate ℓ;
//  3. selects that many earlier points, again ∝ 1/d, and asks each for
//     an incoming link.
//
// A solicited node u with long links at distances d₁…d_k accepts the
// request from v at distance d_{k+1} with probability
// p_{k+1}/Σ_{j=1..k+1} p_j (p_i = 1/d_i), and on acceptance redirects
// one of its existing links to v — chosen with probability
// p_i/Σ_{j=1..k} p_j (strategy InverseDistance, the paper's default,
// after Sarshar et al.) or simply its oldest link (strategy Oldest, the
// alternative §5 reports performs nearly as well). The same machinery
// regenerates links when a node departs.
package construct

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
)

// ReplacementStrategy selects which existing link a solicited node
// redirects toward a newcomer.
type ReplacementStrategy int

const (
	// InverseDistance redirects link i with probability proportional
	// to 1/d_i — the paper's strategy, preserving the power-law
	// invariant in expectation.
	InverseDistance ReplacementStrategy = iota + 1
	// Oldest redirects the link with the smallest creation sequence
	// number.
	Oldest
)

// String returns the strategy name used in experiment output.
func (s ReplacementStrategy) String() string {
	switch s {
	case InverseDistance:
		return "inverse-distance"
	case Oldest:
		return "oldest-link"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config parameterizes the builder.
type Config struct {
	// Links is ℓ, the number of outgoing long links per node.
	Links int
	// Strategy defaults to InverseDistance when zero.
	Strategy ReplacementStrategy
}

func (c Config) withDefaults() Config {
	if c.Strategy == 0 {
		c.Strategy = InverseDistance
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Links < 0 {
		return fmt.Errorf("construct: negative link count %d", c.Links)
	}
	switch c.withDefaults().Strategy {
	case InverseDistance, Oldest:
		return nil
	default:
		return fmt.Errorf("construct: unknown replacement strategy %d", c.Strategy)
	}
}

// Builder grows and shrinks an overlay incrementally. It is not safe
// for concurrent use.
type Builder struct {
	g       *graph.Graph
	cfg     Config
	src     *rng.Source
	sampler metric.LinkSampler
	dim     int
	// inLinks is a reverse index: inLinks[v] lists nodes that (as of
	// the last time we touched them) held a long link to v. Entries go
	// stale when links are redirected elsewhere; readers re-verify
	// against the graph, so staleness only costs a skipped scan entry.
	inLinks map[metric.Point][]metric.Point
}

// NewBuilder returns a Builder over an initially empty space of any
// dimension. Link targets (and the acceptance/replacement weights of
// the §5 protocol) use the space's harmonic exponent — 1/d(u,v) in one
// dimension, 1/d(u,v)^dim in general, after Kleinberg's d-dimensional
// small-world theorem.
func NewBuilder(space metric.Space, cfg Config, src *rng.Source) (*Builder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sampler, err := space.NewLinkSampler(float64(space.Dim()))
	if err != nil {
		return nil, err
	}
	return &Builder{
		g:       graph.NewEmpty(space),
		cfg:     cfg.withDefaults(),
		src:     src,
		sampler: sampler,
		dim:     space.Dim(),
		inLinks: make(map[metric.Point][]metric.Point),
	}, nil
}

// weight returns the §5 link weight of distance d: d^(−dim), the
// harmonic member of the power-law family for the builder's space.
func (b *Builder) weight(d int) float64 {
	w := float64(d)
	for i := 1; i < b.dim; i++ {
		w *= float64(d)
	}
	return 1 / w
}

// Graph exposes the overlay under construction. Callers may route over
// it and inject failures, but must not add or remove nodes behind the
// Builder's back.
func (b *Builder) Graph() *graph.Graph { return b.g }

// Size returns the number of nodes currently present.
func (b *Builder) Size() int { return b.g.AliveCount() }

// Add runs the §5 arrival protocol for point p.
func (b *Builder) Add(p metric.Point) error {
	if err := b.g.AddNode(p); err != nil {
		return err
	}
	// (1) Outgoing links.
	for k := 0; k < b.cfg.Links; k++ {
		if to, ok := b.sampleExisting(p); ok {
			if err := b.addLink(p, to); err != nil {
				return err
			}
		}
	}
	// (2) Estimate the in-degree this node "should" have.
	want := b.src.Poisson(float64(b.cfg.Links))
	// (3) Solicit that many earlier points for incoming links.
	for k := 0; k < want; k++ {
		u, ok := b.sampleExisting(p)
		if !ok {
			break
		}
		if err := b.solicit(u, p); err != nil {
			return err
		}
	}
	return nil
}

// Remove runs the departure protocol: the node leaves, and every node
// that held a long link to it redraws that link (the §5 heuristic
// "can be used for regeneration of links when a node crashes").
func (b *Builder) Remove(p metric.Point) error {
	holders := b.inLinks[p]
	delete(b.inLinks, p)
	if err := b.g.RemoveNode(p); err != nil {
		return err
	}
	for _, u := range holders {
		if !b.g.Exists(u) {
			continue
		}
		for i, lk := range b.g.Long(u) {
			if lk.To != p {
				continue
			}
			// Redraw this link from the distribution.
			to, ok := b.sampleExisting(u)
			if !ok {
				continue
			}
			if err := b.g.ReplaceLong(u, i, to); err != nil {
				return err
			}
			b.inLinks[to] = append(b.inLinks[to], u)
		}
	}
	return nil
}

// sampleExisting draws a link target for node p: a point sampled from
// the inverse power law, redirected to the nearest present node other
// than p itself. ok is false when p is the only node.
func (b *Builder) sampleExisting(p metric.Point) (metric.Point, bool) {
	const retries = 8
	for i := 0; i < retries; i++ {
		target, ok := b.sampler.Sample(p, b.src)
		if !ok {
			return 0, false
		}
		q, ok := b.nearestOther(target, p)
		if ok {
			return q, true
		}
	}
	return 0, false
}

// nearestOther returns the present point nearest to target, excluding
// self. When the basin lands exactly on self, the closest present short
// neighbour of self (scanning −axis before +axis, nearer to target
// wins) is used instead.
func (b *Builder) nearestOther(target, self metric.Point) (metric.Point, bool) {
	q, ok := b.g.NearestExisting(target)
	if !ok {
		return 0, false
	}
	if q != self {
		return q, true
	}
	sp := b.g.Space()
	best, bestD, found := metric.Point(0), 0, false
	for axis := 1; axis <= b.dim; axis++ {
		for _, dir := range [2]int{-axis, +axis} {
			cand, ok := b.g.ShortNeighbor(self, dir)
			if !ok || cand == self {
				continue
			}
			if d := sp.Distance(cand, target); !found || d < bestD {
				best, bestD, found = cand, d, true
			}
		}
	}
	return best, found
}

// addLink records a long link and indexes it.
func (b *Builder) addLink(from, to metric.Point) error {
	if err := b.g.AddLong(from, to); err != nil {
		return err
	}
	b.inLinks[to] = append(b.inLinks[to], from)
	return nil
}

// solicit asks node u to redirect one of its links to newcomer v,
// applying the acceptance and replacement probabilities of §5.
func (b *Builder) solicit(u, v metric.Point) error {
	if u == v {
		return nil
	}
	sp := b.g.Space()
	pNew := b.weight(sp.Distance(u, v))
	long := b.g.Long(u)

	// A node still below its link budget simply adds the link: in the
	// paper's steady state every node owns exactly ℓ links, so the
	// replacement rule assumes a full set; topping up first preserves
	// that invariant during early growth.
	if len(long) < b.cfg.Links {
		return b.addLink(u, v)
	}
	if len(long) == 0 {
		return nil
	}

	sum := pNew
	for _, lk := range long {
		sum += b.weight(sp.Distance(u, lk.To))
	}
	if !b.src.Bool(pNew / sum) {
		return nil // u declines to redirect
	}

	// Choose the victim link.
	victim := -1
	switch b.cfg.Strategy {
	case Oldest:
		var oldest int64
		for i, lk := range long {
			if victim == -1 || lk.Seq < oldest {
				victim, oldest = i, lk.Seq
			}
		}
	default: // InverseDistance
		var mass float64
		for _, lk := range long {
			mass += b.weight(sp.Distance(u, lk.To))
		}
		r := b.src.Float64() * mass
		for i, lk := range long {
			r -= b.weight(sp.Distance(u, lk.To))
			if r <= 0 {
				victim = i
				break
			}
		}
		if victim == -1 {
			victim = len(long) - 1
		}
	}
	if err := b.g.ReplaceLong(u, victim, v); err != nil {
		return err
	}
	b.inLinks[v] = append(b.inLinks[v], u)
	return nil
}

// Grow builds a complete overlay by adding every point of the space in
// a uniformly random arrival order. It is the setup used by Figure 5
// and Figure 7's "constructed network".
func Grow(space metric.Space, cfg Config, src *rng.Source) (*graph.Graph, error) {
	b, err := NewBuilder(space, cfg, src)
	if err != nil {
		return nil, err
	}
	for _, i := range src.Perm(space.Size()) {
		if err := b.Add(metric.Point(i)); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}
