package construct

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
)

func mustRing(t testing.TB, n int) *metric.Ring {
	t.Helper()
	r, err := metric.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Links: -1}).Validate(); err == nil {
		t.Error("negative links should error")
	}
	if err := (Config{Links: 3}).Validate(); err != nil {
		t.Error("zero strategy should default and validate:", err)
	}
	if err := (Config{Links: 3, Strategy: 99}).Validate(); err == nil {
		t.Error("unknown strategy should error")
	}
	if InverseDistance.String() != "inverse-distance" || Oldest.String() != "oldest-link" {
		t.Error("strategy names wrong")
	}
	if ReplacementStrategy(42).String() == "" {
		t.Error("unknown strategy should stringify")
	}
}

func TestBuilderFirstNode(t *testing.T) {
	b, err := NewBuilder(mustRing(t, 16), Config{Links: 3}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(5); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 1 {
		t.Errorf("size = %d", b.Size())
	}
	if got := len(b.Graph().Long(5)); got != 0 {
		t.Errorf("first node has %d links, want 0 (nobody to link to)", got)
	}
	if err := b.Add(5); err == nil {
		t.Error("duplicate Add should error")
	}
}

func TestBuilderSecondNodeLinks(t *testing.T) {
	b, err := NewBuilder(mustRing(t, 16), Config{Links: 3}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(8); err != nil {
		t.Fatal(err)
	}
	// The newcomer must link to the only other node.
	for _, lk := range b.Graph().Long(8) {
		if lk.To != 0 {
			t.Errorf("link to %d, want 0", lk.To)
		}
	}
	if len(b.Graph().Long(8)) != 3 {
		t.Errorf("newcomer has %d links, want 3", len(b.Graph().Long(8)))
	}
}

func TestGrowFullOccupancy(t *testing.T) {
	const n, links = 512, 6
	g, err := Grow(mustRing(t, n), Config{Links: links}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.AliveCount() != n {
		t.Fatalf("alive = %d, want %d", g.AliveCount(), n)
	}
	// Every node has at most `links` outgoing links and most have all.
	short := 0
	for i := 0; i < n; i++ {
		l := len(g.Long(metric.Point(i)))
		if l > links {
			t.Fatalf("node %d has %d links, budget %d", i, l, links)
		}
		if l < links {
			short++
		}
	}
	if short > n/50 {
		t.Errorf("%d of %d nodes below link budget", short, n)
	}
	// All links point at existing nodes, never self.
	for i := 0; i < n; i++ {
		for _, lk := range g.Long(metric.Point(i)) {
			if lk.To == metric.Point(i) || !g.Exists(lk.To) {
				t.Fatalf("bad link %d -> %d", i, lk.To)
			}
		}
	}
}

// The central claim of §5 (Figure 5): the constructed network's
// link-length distribution tracks the ideal inverse power law with
// exponent 1 closely. The paper reports a maximum absolute error of
// roughly 0.022 at n=2^14; we check a scaled-down instance stays within
// a few times that.
func TestGrowDistributionTracksIdeal(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution test needs a medium-size network")
	}
	const n, links = 1 << 11, 11
	g, err := Grow(mustRing(t, n), Config{Links: links}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	h := g.LinkLengthHistogram()
	maxD := (n - 1) / 2
	hm := mathx.Harmonic(maxD)
	var worst float64
	for d := 1; d <= maxD; d++ {
		ideal := 1 / (float64(d) * hm)
		got := h.Probability(d - 1)
		if e := math.Abs(got - ideal); e > worst {
			worst = e
		}
	}
	if worst > 0.08 {
		t.Errorf("max abs error vs ideal = %v, want < 0.08", worst)
	}
}

func TestRemoveRepairsLinks(t *testing.T) {
	const n, links = 256, 5
	b, err := NewBuilder(mustRing(t, n), Config{Links: links}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rng.New(6).Perm(n) {
		if err := b.Add(metric.Point(i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := metric.Point(17)
	if err := b.Remove(victim); err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	if g.Exists(victim) {
		t.Fatal("removed node still exists")
	}
	// No link may still point at the departed node.
	for i := 0; i < n; i++ {
		for _, lk := range g.Long(metric.Point(i)) {
			if lk.To == victim {
				t.Fatalf("dangling link %d -> %d survived repair", i, victim)
			}
		}
	}
	if err := b.Remove(victim); err == nil {
		t.Error("double Remove should error")
	}
}

func TestChurnMaintainsIntegrity(t *testing.T) {
	const n, links = 128, 4
	src := rng.New(7)
	b, err := NewBuilder(mustRing(t, n), Config{Links: links}, src)
	if err != nil {
		t.Fatal(err)
	}
	present := map[metric.Point]bool{}
	// Seed half the ring.
	for _, i := range src.Perm(n)[:n/2] {
		if err := b.Add(metric.Point(i)); err != nil {
			t.Fatal(err)
		}
		present[metric.Point(i)] = true
	}
	// Churn: random arrivals and departures.
	for step := 0; step < 300; step++ {
		p := metric.Point(src.Intn(n))
		if present[p] {
			if len(present) > 1 {
				if err := b.Remove(p); err != nil {
					t.Fatal(err)
				}
				delete(present, p)
			}
		} else {
			if err := b.Add(p); err != nil {
				t.Fatal(err)
			}
			present[p] = true
		}
	}
	g := b.Graph()
	if g.AliveCount() != len(present) {
		t.Fatalf("alive = %d, want %d", g.AliveCount(), len(present))
	}
	for i := 0; i < n; i++ {
		p := metric.Point(i)
		if g.Exists(p) != present[p] {
			t.Fatalf("presence mismatch at %d", i)
		}
		for _, lk := range g.Long(p) {
			if !present[lk.To] {
				t.Fatalf("link %d -> %d points at departed node", i, lk.To)
			}
		}
	}
}

func TestOldestStrategy(t *testing.T) {
	const n, links = 256, 4
	g, err := Grow(mustRing(t, n), Config{Links: links, Strategy: Oldest}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if g.AliveCount() != n {
		t.Fatal("grow incomplete")
	}
	// Sanity: distribution still heavily favors short links.
	h := g.LinkLengthHistogram()
	if h.Probability(0) < h.Probability(9) {
		t.Error("oldest-link strategy lost the inverse-distance shape")
	}
}

// Routing over a constructed network must work end to end.
func TestGrowSupportsRouting(t *testing.T) {
	const n, links = 512, 9
	g, err := Grow(mustRing(t, n), Config{Links: links}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// Greedy progress via short links alone guarantees delivery.
	var hops int
	cur := metric.Point(3)
	to := metric.Point(400)
	sp := g.Space()
	for cur != to && hops < n {
		best := cur
		bestD := sp.Distance(cur, to)
		g.ForEachNeighbor(cur, func(q metric.Point) {
			if d := sp.Distance(q, to); d < bestD {
				best, bestD = q, d
			}
		})
		if best == cur {
			t.Fatal("stuck in failure-free constructed network")
		}
		cur = best
		hops++
	}
	if cur != to {
		t.Fatal("never arrived")
	}
	if hops > 60 {
		t.Errorf("took %d hops; constructed network should be small-world", hops)
	}
}

func BenchmarkGrow(b *testing.B) {
	sp := mustRing(b, 1<<12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Grow(sp, Config{Links: 12}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
