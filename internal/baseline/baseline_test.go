package baseline

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestChordValidation(t *testing.T) {
	if _, err := NewChord(0); err == nil {
		t.Error("m=0 should error")
	}
	if _, err := NewChord(31); err == nil {
		t.Error("m=31 should error")
	}
}

func TestChordDelivers(t *testing.T) {
	c, err := NewChord(10) // 1024 ids
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "chord" || c.Nodes() != 1024 {
		t.Error("accessors wrong")
	}
	src := rng.New(1)
	for i := 0; i < 200; i++ {
		from := src.Intn(1024)
		to := src.Intn(1024)
		res := c.Route(src, from, to)
		if !res.Delivered {
			t.Fatalf("chord failed %d->%d", from, to)
		}
		if res.Hops > 10 {
			t.Fatalf("chord took %d hops, max is m=10", res.Hops)
		}
	}
}

func TestChordHopsAreBitCount(t *testing.T) {
	// On a fully populated circle, hops = popcount of the clockwise
	// distance.
	c, err := NewChord(8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	res := c.Route(src, 0, 255) // distance 255 = 8 ones
	if res.Hops != 8 {
		t.Errorf("hops to 255 = %d, want 8", res.Hops)
	}
	res = c.Route(src, 0, 128) // one bit
	if res.Hops != 1 {
		t.Errorf("hops to 128 = %d, want 1", res.Hops)
	}
	res = c.Route(src, 5, 5)
	if !res.Delivered || res.Hops != 0 {
		t.Errorf("self route = %+v", res)
	}
}

func TestKleinbergValidation(t *testing.T) {
	if _, err := NewKleinberg(1, 1, rng.New(1)); err == nil {
		t.Error("side=1 should error")
	}
	if _, err := NewKleinberg(8, -1, rng.New(1)); err == nil {
		t.Error("negative q should error")
	}
}

func TestKleinbergDelivers(t *testing.T) {
	k, err := NewKleinberg(32, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "kleinberg" || k.Nodes() != 1024 {
		t.Error("accessors wrong")
	}
	src := rng.New(4)
	var totalHops int
	const searches = 200
	for i := 0; i < searches; i++ {
		from := src.Intn(1024)
		to := src.Intn(1024)
		res := k.Route(src, from, to)
		if !res.Delivered {
			t.Fatalf("kleinberg failed %d->%d (grid links guarantee progress)", from, to)
		}
		totalHops += res.Hops
	}
	mean := float64(totalHops) / searches
	// Grid diameter is 32; small-world links should beat it clearly.
	if mean > 20 {
		t.Errorf("kleinberg mean hops = %v, want well under grid diameter", mean)
	}
}

func TestCANDelivers(t *testing.T) {
	c, err := NewCAN(16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "can" || c.Nodes() != 256 {
		t.Error("accessors wrong")
	}
	src := rng.New(5)
	for i := 0; i < 100; i++ {
		from := src.Intn(256)
		to := src.Intn(256)
		res := c.Route(src, from, to)
		if !res.Delivered {
			t.Fatalf("CAN failed %d->%d", from, to)
		}
		if res.Hops > 16 { // torus L1 diameter = side/2 + side/2
			t.Fatalf("CAN took %d hops on a 16x16 torus", res.Hops)
		}
	}
	if _, err := NewCAN(1); err == nil {
		t.Error("side=1 should error")
	}
}

func TestCANHopsEqualsManhattan(t *testing.T) {
	c, err := NewCAN(8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	res := c.Route(src, 0, 3) // (0,0)->(0,3): distance 3
	if res.Hops != 3 {
		t.Errorf("hops = %d, want 3", res.Hops)
	}
}

func TestFloodValidation(t *testing.T) {
	if _, err := NewFlood(1, 4, 5, rng.New(1)); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := NewFlood(10, 1, 5, rng.New(1)); err == nil {
		t.Error("degree=1 should error")
	}
	if _, err := NewFlood(10, 4, 0, rng.New(1)); err == nil {
		t.Error("ttl=0 should error")
	}
}

func TestFloodFindsWithGenerousTTL(t *testing.T) {
	f, err := NewFlood(500, 6, 20, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "flood" || f.Nodes() != 500 || f.TTL() != 20 {
		t.Error("accessors wrong")
	}
	src := rng.New(8)
	found := 0
	var messages int
	for i := 0; i < 50; i++ {
		from := src.Intn(500)
		to := src.Intn(500)
		res := f.Route(src, from, to)
		if res.Delivered {
			found++
			messages += res.Messages
		}
	}
	if found < 48 {
		t.Errorf("flood with TTL 20 on 500 nodes found only %d/50", found)
	}
	// The pathology the paper points out: flooding touches a large
	// fraction of the network per search.
	if mean := float64(messages) / float64(found); mean < 50 {
		t.Errorf("flooding should be expensive, mean messages = %v", mean)
	}
}

func TestFloodTTLCutsOff(t *testing.T) {
	f, err := NewFlood(1000, 4, 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(10)
	failures := 0
	for i := 0; i < 100; i++ {
		from := src.Intn(1000)
		to := src.Intn(1000)
		if from == to {
			continue
		}
		if !f.Route(src, from, to).Delivered {
			failures++
		}
	}
	if failures < 80 {
		t.Errorf("TTL=1 should fail most searches on 1000 nodes, failed %d", failures)
	}
}

func TestFloodSelfRoute(t *testing.T) {
	f, err := NewFlood(16, 4, 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	res := f.Route(rng.New(1), 3, 3)
	if !res.Delivered || res.Hops != 0 {
		t.Errorf("self route = %+v", res)
	}
}

func TestCentral(t *testing.T) {
	c, err := NewCentral(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "central" || c.Nodes() != 100 {
		t.Error("accessors wrong")
	}
	res := c.Route(rng.New(1), 1, 2)
	if !res.Delivered || res.Hops != 2 || res.Messages != 2 {
		t.Errorf("central route = %+v", res)
	}
	c.ServerUp = false
	if c.Route(rng.New(1), 1, 2).Delivered {
		t.Error("server-down lookup must fail")
	}
	if _, err := NewCentral(1); err == nil {
		t.Error("n=1 should error")
	}
}

// Comparative shape check across systems the paper discusses: Chord and
// Kleinberg scale logarithmically, CAN scales like √n, flooding costs
// explode. This mirrors the qualitative claims of §3.
func TestBaselineScalingShape(t *testing.T) {
	src := rng.New(12)
	chord, err := NewChord(14) // 16384 ids
	if err != nil {
		t.Fatal(err)
	}
	can, err := NewCAN(128) // 16384 zones
	if err != nil {
		t.Fatal(err)
	}
	meanHops := func(r Router) float64 {
		var total, n int
		for i := 0; i < 100; i++ {
			from := src.Intn(r.Nodes())
			to := src.Intn(r.Nodes())
			res := r.Route(src, from, to)
			if res.Delivered {
				total += res.Hops
				n++
			}
		}
		if n == 0 {
			return math.Inf(1)
		}
		return float64(total) / float64(n)
	}
	ch := meanHops(chord)
	ca := meanHops(can)
	if ch >= ca {
		t.Errorf("chord (%v hops) should beat CAN (%v hops) at n=16384", ch, ca)
	}
	if ca < 20 {
		t.Errorf("CAN mean hops = %v, want Θ(√n) ≈ 64 on the torus", ca)
	}
}
