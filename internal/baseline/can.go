package baseline

import (
	"fmt"

	"repro/internal/metric"
	"repro/internal/rng"
)

// CAN models the content-addressable network of §3 with a fully
// populated 2-dimensional torus of zones: every node knows only its 2d
// adjacent zone owners and routes greedily, giving the paper-quoted
// O(d·n^{1/d}) delivery time (here d = 2, so O(√n)).
type CAN struct {
	grid *metric.Torus
}

// NewCAN returns a CAN over a side×side zone grid.
func NewCAN(side int) (*CAN, error) {
	if side < 2 {
		return nil, fmt.Errorf("baseline: CAN needs side >= 2, got %d", side)
	}
	grid, err := metric.NewTorus(side, 2)
	if err != nil {
		return nil, err
	}
	return &CAN{grid: grid}, nil
}

// Name returns "can".
func (c *CAN) Name() string { return "can" }

// Nodes returns side².
func (c *CAN) Nodes() int { return c.grid.Size() }

// Route performs greedy routing over zone adjacency only.
func (c *CAN) Route(_ *rng.Source, from, to int) Result {
	cur := metric.Point(from)
	target := metric.Point(to)
	hops := 0
	for cur != target {
		best := cur
		bestD := c.grid.Distance(cur, target)
		x, y := c.grid.Coord(cur, 0), c.grid.Coord(cur, 1)
		for _, q := range []metric.Point{
			c.grid.At(x+1, y), c.grid.At(x-1, y),
			c.grid.At(x, y+1), c.grid.At(x, y-1),
		} {
			if d := c.grid.Distance(q, target); d < bestD {
				best, bestD = q, d
			}
		}
		if best == cur {
			return Result{Delivered: false, Hops: hops, Messages: hops}
		}
		cur = best
		hops++
	}
	return Result{Delivered: true, Hops: hops, Messages: hops}
}

var _ Router = (*CAN)(nil)
