package baseline

import (
	"testing"

	"repro/internal/rng"
)

func TestChordFailNodes(t *testing.T) {
	c, err := NewChord(10)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	crashed, err := c.FailNodes(0.5, src, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if crashed != 512 {
		t.Errorf("crashed = %d, want 512", crashed)
	}
	if !c.Alive(0) || !c.Alive(512) {
		t.Error("protected nodes were crashed")
	}
	if _, err := c.FailNodes(-1, src); err == nil {
		t.Error("invalid fraction should error")
	}
}

func TestChordDegradesUnderFailure(t *testing.T) {
	src := rng.New(2)
	c, err := NewChord(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNodes(0.5, src); err != nil {
		t.Fatal(err)
	}
	failed, total := 0, 0
	for i := 0; i < 300; i++ {
		from := src.Intn(c.Nodes())
		to := src.Intn(c.Nodes())
		if !c.Alive(from) || !c.Alive(to) || from == to {
			continue
		}
		total++
		if !c.Route(src, from, to).Delivered {
			failed++
		}
	}
	if total == 0 {
		t.Fatal("no usable endpoint pairs")
	}
	frac := float64(failed) / float64(total)
	// Chord without stabilization should visibly degrade at 50% dead:
	// its route to the target's vicinity runs through exact finger
	// positions (compare: the paper's backtracking stays near 0.04).
	if frac < 0.1 {
		t.Errorf("chord failed frac = %v; expected heavy degradation without repair", frac)
	}
}

func TestChordAliveDefault(t *testing.T) {
	c, err := NewChord(6)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Alive(5) {
		t.Error("all nodes alive before FailNodes")
	}
	// Routing unchanged before failures.
	if !c.Route(rng.New(1), 0, 63).Delivered {
		t.Error("failure-free chord should deliver")
	}
}

func TestKleinbergFailNodes(t *testing.T) {
	src := rng.New(3)
	k, err := NewKleinberg(32, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := k.FailNodes(0.3, src)
	if err != nil {
		t.Fatal(err)
	}
	if crashed != 307 {
		t.Errorf("crashed = %d", crashed)
	}
	failed, total := 0, 0
	for i := 0; i < 300; i++ {
		from := src.Intn(k.Nodes())
		to := src.Intn(k.Nodes())
		if !k.Alive(from) || !k.Alive(to) || from == to {
			continue
		}
		total++
		if !k.Route(src, from, to).Delivered {
			failed++
		}
	}
	if total == 0 {
		t.Fatal("no usable endpoint pairs")
	}
	if failed == 0 {
		t.Error("kleinberg with 30% dead and q=1 should sometimes dead-end")
	}
	if float64(failed)/float64(total) > 0.95 {
		t.Error("kleinberg should still deliver sometimes")
	}
}

func TestAliveSetExhaustion(t *testing.T) {
	a := newAliveSet(4)
	crashed, err := a.failFraction(1, rng.New(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if crashed != 3 {
		t.Errorf("crashed = %d, want 3 (one protected)", crashed)
	}
	if !a.alive(2) || a.alive(0) && a.alive(1) && a.alive(3) {
		t.Error("wrong nodes crashed")
	}
	if a.alive(-1) || a.alive(4) {
		t.Error("out of range must not be alive")
	}
}
