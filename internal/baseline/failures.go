package baseline

import (
	"fmt"

	"repro/internal/metric"
	"repro/internal/rng"
)

// FailureInjector is implemented by baselines that support node
// crashes, enabling the fault-tolerance comparison the paper motivates
// in §3: structured systems like Chord make no performance guarantees
// between failures and repair, while the random-graph overlay degrades
// gracefully.
type FailureInjector interface {
	// FailNodes crashes an exact fraction of the live nodes, never
	// touching protected ids, and returns the number crashed.
	FailNodes(fraction float64, src *rng.Source, protect ...int) (int, error)
	// Alive reports whether node id survives.
	Alive(id int) bool
}

// aliveSet is the shared crash bookkeeping.
type aliveSet struct {
	dead  []bool
	nDead int
}

func newAliveSet(n int) *aliveSet { return &aliveSet{dead: make([]bool, n)} }

func (a *aliveSet) alive(id int) bool { return id >= 0 && id < len(a.dead) && !a.dead[id] }

func (a *aliveSet) failFraction(fraction float64, src *rng.Source, protect ...int) (int, error) {
	if fraction < 0 || fraction > 1 {
		return 0, fmt.Errorf("baseline: fraction %v outside [0,1]", fraction)
	}
	protected := make(map[int]bool, len(protect))
	for _, p := range protect {
		protected[p] = true
	}
	candidates := make([]int, 0, len(a.dead))
	for id := range a.dead {
		if !a.dead[id] && !protected[id] {
			candidates = append(candidates, id)
		}
	}
	target := int(fraction * float64(len(a.dead)-a.nDead))
	if target > len(candidates) {
		target = len(candidates)
	}
	for i := 0; i < target; i++ {
		j := i + src.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		a.dead[candidates[i]] = true
		a.nDead++
	}
	return target, nil
}

// --- Chord under failures ---------------------------------------------

// FailNodes implements FailureInjector.
func (c *Chord) FailNodes(fraction float64, src *rng.Source, protect ...int) (int, error) {
	if c.failed == nil {
		c.failed = newAliveSet(c.Nodes())
	}
	return c.failed.failFraction(fraction, src, protect...)
}

// Alive implements FailureInjector.
func (c *Chord) Alive(id int) bool {
	return c.failed == nil || c.failed.alive(id)
}

// routeWithFailures is Chord routing without stabilization: at each hop
// take the farthest LIVE finger that does not overshoot the target
// clockwise; dead-end (and fail) when every admissible finger is dead.
func (c *Chord) routeWithFailures(from, to int) Result {
	cur := metric.Point(from)
	target := metric.Point(to)
	hops := 0
	for cur != target {
		remaining := c.ring.ClockwiseDistance(cur, target)
		next := cur
		for i := c.m - 1; i >= 0; i-- {
			jump := 1 << uint(i)
			if jump > remaining {
				continue
			}
			cand := c.ring.Add(cur, jump)
			if c.Alive(int(cand)) {
				next = cand
				break
			}
		}
		if next == cur {
			return Result{Delivered: false, Hops: hops, Messages: hops}
		}
		cur = next
		hops++
		if hops > c.ring.Size() {
			return Result{Delivered: false, Hops: hops, Messages: hops}
		}
	}
	return Result{Delivered: true, Hops: hops, Messages: hops}
}

// --- Kleinberg under failures ------------------------------------------

// FailNodes implements FailureInjector.
func (k *Kleinberg) FailNodes(fraction float64, src *rng.Source, protect ...int) (int, error) {
	if k.failed == nil {
		k.failed = newAliveSet(k.Nodes())
	}
	return k.failed.failFraction(fraction, src, protect...)
}

// Alive implements FailureInjector.
func (k *Kleinberg) Alive(id int) bool {
	return k.failed == nil || k.failed.alive(id)
}

var (
	_ FailureInjector = (*Chord)(nil)
	_ FailureInjector = (*Kleinberg)(nil)
)
