package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPlaxtonValidation(t *testing.T) {
	if _, err := NewPlaxton(1, 4); err == nil {
		t.Error("base 1 should error")
	}
	if _, err := NewPlaxton(4, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := NewPlaxton(2, 40); err == nil {
		t.Error("2^40 ids should error")
	}
}

func TestPlaxtonBasics(t *testing.T) {
	p, err := NewPlaxton(4, 5) // 1024 ids
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "plaxton" || p.Nodes() != 1024 {
		t.Error("accessors wrong")
	}
	if p.TableSize() != 15 { // (4-1)*5
		t.Errorf("table size = %d, want 15", p.TableSize())
	}
}

func TestPlaxtonAlwaysDeliversWithinK(t *testing.T) {
	p, err := NewPlaxton(4, 6) // 4096 ids
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	f := func(a, b uint16) bool {
		from := int(a) % p.Nodes()
		to := int(b) % p.Nodes()
		res := p.Route(src, from, to)
		return res.Delivered && res.Hops <= 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlaxtonHopsAreDigitDistance(t *testing.T) {
	p, err := NewPlaxton(10, 3) // decimal ids 000..999
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	cases := []struct{ from, to, want int }{
		{123, 123, 0},
		{123, 124, 1}, // one digit differs
		{123, 153, 1},
		{123, 456, 3}, // all digits differ
		{100, 900, 1},
		{0, 999, 3},
	}
	for _, c := range cases {
		res := p.Route(src, c.from, c.to)
		if !res.Delivered || res.Hops != c.want {
			t.Errorf("route %d->%d = %+v, want %d hops", c.from, c.to, res, c.want)
		}
	}
}

func TestPlaxtonSelfRoute(t *testing.T) {
	p, err := NewPlaxton(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Route(rng.New(3), 77, 77)
	if !res.Delivered || res.Hops != 0 {
		t.Errorf("self route = %+v", res)
	}
}
