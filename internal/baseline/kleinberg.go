package baseline

import (
	"fmt"

	"repro/internal/metric"
	"repro/internal/rng"
)

// Kleinberg models the small-world construction of Kleinberg [5] that
// the paper builds on: nodes on a side×side torus, each with its four
// grid neighbours plus q long-range contacts drawn with probability
// proportional to d^(-2) (the critical exponent for two dimensions),
// routed with two-sided greedy forwarding on L1 distance.
type Kleinberg struct {
	grid   *metric.Torus
	long   [][]metric.Point // long contacts per node
	failed *aliveSet        // nil until FailNodes is called
}

// NewKleinberg builds a torus of side×side nodes with q long-range
// contacts per node, using src for the random construction.
func NewKleinberg(side, q int, src *rng.Source) (*Kleinberg, error) {
	if side < 2 {
		return nil, fmt.Errorf("baseline: kleinberg needs side >= 2, got %d", side)
	}
	if q < 0 {
		return nil, fmt.Errorf("baseline: negative contact count %d", q)
	}
	grid, err := metric.NewTorus(side, 2)
	if err != nil {
		return nil, err
	}
	k := &Kleinberg{grid: grid, long: make([][]metric.Point, grid.Size())}
	// P(contact at L1 distance d) ∝ (#points at distance d)·d^(-2).
	// On a torus the shell at distance d holds ~4d points for
	// d < side/2, so the distance marginal is ∝ 4/d: harmonic again.
	maxD := side / 2
	if maxD < 1 {
		maxD = 1
	}
	for p := 0; p < grid.Size(); p++ {
		contacts := make([]metric.Point, 0, q)
		for j := 0; j < q; j++ {
			d := rng.SampleHarmonic(src, maxD)
			contacts = append(contacts, k.randomAtDistance(metric.Point(p), d, src))
		}
		k.long[p] = contacts
	}
	return k, nil
}

// randomAtDistance picks a near-uniform point on the L1 shell of radius
// d around p.
func (k *Kleinberg) randomAtDistance(p metric.Point, d int, src *rng.Source) metric.Point {
	px, py := k.grid.Coord(p, 0), k.grid.Coord(p, 1)
	dx := src.Intn(2*d+1) - d // dx ∈ [-d, d]
	rest := d - abs(dx)
	dy := rest
	if rest > 0 && src.Bool(0.5) {
		dy = -rest
	}
	return k.grid.At(px+dx, py+dy)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Name returns "kleinberg".
func (k *Kleinberg) Name() string { return "kleinberg" }

// Nodes returns side².
func (k *Kleinberg) Nodes() int { return k.grid.Size() }

// Route performs greedy L1 routing using grid neighbours and long
// contacts.
func (k *Kleinberg) Route(_ *rng.Source, from, to int) Result {
	cur := metric.Point(from)
	target := metric.Point(to)
	hops := 0
	for cur != target {
		best := cur
		bestD := k.grid.Distance(cur, target)
		consider := func(q metric.Point) {
			if !k.Alive(int(q)) {
				return
			}
			if d := k.grid.Distance(q, target); d < bestD {
				best, bestD = q, d
			}
		}
		x, y := k.grid.Coord(cur, 0), k.grid.Coord(cur, 1)
		consider(k.grid.At(x+1, y))
		consider(k.grid.At(x-1, y))
		consider(k.grid.At(x, y+1))
		consider(k.grid.At(x, y-1))
		for _, q := range k.long[cur] {
			consider(q)
		}
		if best == cur {
			return Result{Delivered: false, Hops: hops, Messages: hops}
		}
		cur = best
		hops++
		if hops > k.grid.Size() {
			return Result{Delivered: false, Hops: hops, Messages: hops}
		}
	}
	return Result{Delivered: true, Hops: hops, Messages: hops}
}

var _ Router = (*Kleinberg)(nil)
