package baseline

import (
	"fmt"

	"repro/internal/rng"
)

// Flood models Gnutella-style unstructured search (§3): nodes form a
// random graph of average degree `degree`, and a lookup floods the
// graph breadth-first with a TTL. The delivery path length is the BFS
// depth at which the target is found, but the real cost — the reason
// the paper calls flooding unscalable — is Messages, the number of
// query messages forwarded.
type Flood struct {
	adj [][]int
	ttl int
}

// NewFlood builds a connected-ish random graph of n nodes with the
// given even average degree and flood TTL.
func NewFlood(n, degree, ttl int, src *rng.Source) (*Flood, error) {
	if n < 2 {
		return nil, fmt.Errorf("baseline: flood needs n >= 2, got %d", n)
	}
	if degree < 2 || degree >= n {
		return nil, fmt.Errorf("baseline: flood degree %d out of range [2,%d)", degree, n)
	}
	if ttl < 1 {
		return nil, fmt.Errorf("baseline: flood TTL must be >= 1, got %d", ttl)
	}
	f := &Flood{adj: make([][]int, n), ttl: ttl}
	// Ring + random chords: guarantees connectivity and approximates
	// the Gnutella topology.
	for i := 0; i < n; i++ {
		f.addEdge(i, (i+1)%n)
	}
	extra := (degree - 2) / 2
	for i := 0; i < n; i++ {
		for j := 0; j < extra; j++ {
			k := src.Intn(n)
			if k != i {
				f.addEdge(i, k)
			}
		}
	}
	return f, nil
}

func (f *Flood) addEdge(a, b int) {
	f.adj[a] = append(f.adj[a], b)
	f.adj[b] = append(f.adj[b], a)
}

// Name returns "flood".
func (f *Flood) Name() string { return "flood" }

// Nodes returns the node count.
func (f *Flood) Nodes() int { return len(f.adj) }

// TTL returns the flood time-to-live.
func (f *Flood) TTL() int { return f.ttl }

// Route floods from `from` until `to` is reached or the TTL expires.
func (f *Flood) Route(_ *rng.Source, from, to int) Result {
	if from == to {
		return Result{Delivered: true}
	}
	visited := make([]bool, len(f.adj))
	visited[from] = true
	frontier := []int{from}
	messages := 0
	for depth := 1; depth <= f.ttl; depth++ {
		var next []int
		for _, u := range frontier {
			for _, v := range f.adj[u] {
				messages++ // every forward is a message, even to visited nodes
				if visited[v] {
					continue
				}
				if v == to {
					return Result{Delivered: true, Hops: depth, Messages: messages}
				}
				visited[v] = true
				next = append(next, v)
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return Result{Delivered: false, Hops: f.ttl, Messages: messages}
}

var _ Router = (*Flood)(nil)
