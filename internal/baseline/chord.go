package baseline

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
)

// Chord models the Chord DHT of §3 on a fully populated identifier
// circle of n = 2^m points: node p keeps a finger to the first node at
// or after p + 2^(i−1) for i = 1..m, and routes greedily clockwise to
// the farthest finger that does not pass the target. With every
// identifier occupied the i-th finger is exactly p + 2^(i−1), giving
// the textbook O(log n) delivery time.
type Chord struct {
	ring   *metric.Ring
	m      int
	failed *aliveSet // nil until FailNodes is called
}

// NewChord returns a Chord instance over 2^m identifiers.
func NewChord(m int) (*Chord, error) {
	if m < 1 || m > 30 {
		return nil, fmt.Errorf("baseline: chord needs m in [1,30], got %d", m)
	}
	ring, err := metric.NewRing(1 << uint(m))
	if err != nil {
		return nil, err
	}
	return &Chord{ring: ring, m: m}, nil
}

// Name returns "chord".
func (c *Chord) Name() string { return "chord" }

// Nodes returns 2^m.
func (c *Chord) Nodes() int { return c.ring.Size() }

// Route performs the Chord lookup: repeatedly jump to the farthest
// finger that does not overshoot the target clockwise. Once failures
// have been injected, fingers to dead nodes are skipped and a hop with
// no live admissible finger dead-ends.
func (c *Chord) Route(_ *rng.Source, from, to int) Result {
	if c.failed != nil {
		return c.routeWithFailures(from, to)
	}
	cur := metric.Point(from)
	target := metric.Point(to)
	hops := 0
	for cur != target {
		remaining := c.ring.ClockwiseDistance(cur, target)
		// Largest power of two not exceeding the remaining distance.
		jump := 1 << uint(mathx.ILog2(remaining))
		cur = c.ring.Add(cur, jump)
		hops++
		if hops > c.ring.Size() {
			return Result{Delivered: false, Hops: hops, Messages: hops}
		}
	}
	return Result{Delivered: true, Hops: hops, Messages: hops}
}

var _ Router = (*Chord)(nil)
