package baseline

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// Plaxton models the Plaxton/Tapestry scheme of §3: identifiers are
// digit strings in base b, and a message is forwarded deterministically
// to a node whose identifier matches one more trailing digit of the
// target per hop (suffix routing). With all n = b^k identifiers
// occupied, the node fixing the next digit always exists, so every
// lookup takes at most k = log_b n hops and each node keeps a routing
// table of (b−1)·log_b n entries.
type Plaxton struct {
	b, k, n int
}

// NewPlaxton returns a Plaxton mesh over b^k identifiers.
func NewPlaxton(b, k int) (*Plaxton, error) {
	if b < 2 {
		return nil, fmt.Errorf("baseline: plaxton base must be >= 2, got %d", b)
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: plaxton needs k >= 1 digits, got %d", k)
	}
	n := mathx.IPow(b, k)
	if n <= 0 || n > 1<<28 {
		return nil, fmt.Errorf("baseline: plaxton b^k = %d out of range", n)
	}
	return &Plaxton{b: b, k: k, n: n}, nil
}

// Name returns "plaxton".
func (p *Plaxton) Name() string { return "plaxton" }

// Nodes returns b^k.
func (p *Plaxton) Nodes() int { return p.n }

// TableSize returns the routing-table entries per node, (b−1)·k.
func (p *Plaxton) TableSize() int { return (p.b - 1) * p.k }

// Route forwards by fixing one trailing base-b digit per hop: the next
// hop keeps the already-matched suffix and adopts the target's next
// digit. Hops = number of positions where the identifiers disagree.
func (p *Plaxton) Route(_ *rng.Source, from, to int) Result {
	cur := from
	hops := 0
	pow := 1
	for i := 0; i < p.k; i++ {
		curDigit := (cur / pow) % p.b
		toDigit := (to / pow) % p.b
		if curDigit != toDigit {
			// Replace digit i of cur with the target's digit —
			// exactly the neighbour the routing table stores.
			cur += (toDigit - curDigit) * pow
			hops++
		}
		pow *= p.b
	}
	if cur != to {
		return Result{Delivered: false, Hops: hops, Messages: hops}
	}
	return Result{Delivered: true, Hops: hops, Messages: hops}
}

var _ Router = (*Plaxton)(nil)
