package baseline

import (
	"fmt"

	"repro/internal/rng"
)

// Central models a Napster-style central index (§3): every lookup is
// one round trip to the server plus the direct transfer, independent of
// n. ServerUp lets experiments demonstrate the single point of failure
// the paper criticizes: with the server down, every lookup fails.
type Central struct {
	n        int
	ServerUp bool
}

// NewCentral returns a central-index system over n nodes with the
// server initially up.
func NewCentral(n int) (*Central, error) {
	if n < 2 {
		return nil, fmt.Errorf("baseline: central index needs n >= 2, got %d", n)
	}
	return &Central{n: n, ServerUp: true}, nil
}

// Name returns "central".
func (c *Central) Name() string { return "central" }

// Nodes returns the node count.
func (c *Central) Nodes() int { return c.n }

// Route asks the server for the owner (1 message), then contacts the
// owner (1 message).
func (c *Central) Route(_ *rng.Source, from, to int) Result {
	if !c.ServerUp {
		return Result{Delivered: false, Hops: 0, Messages: 1}
	}
	return Result{Delivered: true, Hops: 2, Messages: 2}
}

var _ Router = (*Central)(nil)
