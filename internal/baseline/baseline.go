// Package baseline implements the peer-to-peer systems the paper
// surveys in §3, each reduced to its routing core, so the experiment
// harness can compare the paper's random-graph overlay against them on
// the same workloads:
//
//   - Chord (Stoica et al.): identifier circle with power-of-two finger
//     tables and one-sided clockwise greedy routing.
//   - Kleinberg's small world: 2-D torus with grid links plus long
//     links drawn ∝ d^(-2), two-sided greedy routing.
//   - CAN (Ratnasamy et al.): d-dimensional torus with only adjacent
//     zone neighbours, greedy routing — O(d·n^{1/d}) hops.
//   - Gnutella-style flooding: TTL-bounded breadth-first flood over an
//     unstructured random graph; the cost is counted in messages.
//   - Napster-style central index: one round trip to the server, then
//     direct transfer.
//
// All systems expose the same Router interface over integer node ids.
package baseline

import "repro/internal/rng"

// Result reports the outcome of one baseline lookup.
type Result struct {
	// Delivered is true when the lookup reached the target.
	Delivered bool
	// Hops is the length of the delivery path.
	Hops int
	// Messages is the total number of messages sent; for unicast
	// routers it equals Hops, for flooding it is the flood size.
	Messages int
}

// Router is a baseline peer-to-peer lookup system over nodes 0..Nodes()-1.
type Router interface {
	// Name identifies the system in experiment output.
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Route performs one lookup from node `from` for the resource held
	// by node `to`.
	Route(src *rng.Source, from, to int) Result
}
