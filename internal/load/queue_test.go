package load

import (
	"math"
	"testing"

	"repro/internal/metric"
)

func TestSimulateQueuesSingleMessage(t *testing.T) {
	// One message over three nodes at capacity 1: one tick of service
	// per node, no queueing, latency 3.
	msgs := []queuedMessage{{
		inject:    0,
		path:      []metric.Point{0, 1, 2},
		delivered: true,
	}}
	out := simulateQueues(4, msgs, 1)
	if out.services != 3 {
		t.Errorf("services = %d, want 3", out.services)
	}
	for p, want := range []int{1, 1, 1, 0} {
		if out.loads[p] != want {
			t.Errorf("loads[%d] = %d, want %d", p, out.loads[p], want)
		}
	}
	if out.maxQueueDepth != 1 {
		t.Errorf("maxQueueDepth = %d, want 1", out.maxQueueDepth)
	}
	if len(out.latencies) != 1 || out.latencies[0] != 3 {
		t.Errorf("latencies = %v, want [3]", out.latencies)
	}
}

func TestSimulateQueuesContention(t *testing.T) {
	// Two messages injected simultaneously through the same single
	// node: FIFO order by message id, the second waits a full service.
	msgs := []queuedMessage{
		{inject: 0, path: []metric.Point{5}, delivered: true},
		{inject: 0, path: []metric.Point{5}, delivered: true},
	}
	out := simulateQueues(8, msgs, 2)
	if out.loads[5] != 2 {
		t.Errorf("loads[5] = %d, want 2", out.loads[5])
	}
	if out.maxQueueDepth != 2 {
		t.Errorf("maxQueueDepth = %d, want 2", out.maxQueueDepth)
	}
	want := []float64{2, 4}
	if len(out.latencies) != 2 || out.latencies[0] != want[0] || out.latencies[1] != want[1] {
		t.Errorf("latencies = %v, want %v", out.latencies, want)
	}
}

func TestSimulateQueuesFailedMessageChargesLoad(t *testing.T) {
	msgs := []queuedMessage{
		{inject: 0, path: []metric.Point{1, 2}, delivered: false},
	}
	out := simulateQueues(4, msgs, 1)
	if out.loads[1] != 1 || out.loads[2] != 1 {
		t.Errorf("failed message should still be charged: %v", out.loads)
	}
	if len(out.latencies) != 0 {
		t.Errorf("failed message must not contribute latency: %v", out.latencies)
	}
}

func TestSimulateQueuesIdleServerDrains(t *testing.T) {
	// Two messages far apart in time never queue behind each other.
	msgs := []queuedMessage{
		{inject: 0, path: []metric.Point{3}, delivered: true},
		{inject: 100, path: []metric.Point{3}, delivered: true},
	}
	out := simulateQueues(4, msgs, 1)
	if out.maxQueueDepth != 1 {
		t.Errorf("maxQueueDepth = %d, want 1", out.maxQueueDepth)
	}
	if out.latencies[1] != 1 {
		t.Errorf("second latency = %v, want 1 (no waiting)", out.latencies[1])
	}
}

func TestLatencySummary(t *testing.T) {
	mean, p50, p95, p99 := latencySummary(nil)
	if mean != 0 || p50 != 0 || p95 != 0 || p99 != 0 {
		t.Error("empty summary should be all zero")
	}
	lat := make([]float64, 100)
	for i := range lat {
		lat[i] = float64(i + 1) // 1..100
	}
	mean, p50, p95, p99 = latencySummary(lat)
	if math.Abs(mean-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", mean)
	}
	if p50 != 50 || p95 != 95 || p99 != 99 {
		t.Errorf("quantiles = %v/%v/%v, want 50/95/99", p50, p95, p99)
	}
}
