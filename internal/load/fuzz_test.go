package load

import (
	"math"
	"testing"

	"repro/internal/replica"
)

// FuzzLoadConfigValidate: Validate must never panic, must accept
// exactly the configurations Run can execute (finite positive capacity
// and rate, non-negative everything else), and resolving defaults from
// any non-negative raw config must always yield a valid one — the
// contract between Config's zero values and Run.
func FuzzLoadConfigValidate(f *testing.F) {
	f.Add(256, 1.0, 1.0, 0.0, 0.0, 32, 0, 0, 0)
	f.Add(0, 0.0, 0.0, 0.0, 0.0, 0, 0, 0, 0)
	f.Add(-1, 2.0, 0.5, 1.0, 1.0, 8, 4, 16, 8)
	f.Add(100, math.Inf(1), 1.0, 0.0, 0.0, 0, 0, 0, 0)
	f.Add(100, 1.0, math.NaN(), 0.0, 0.0, 0, 2, 0, 0)
	f.Add(100, 1.0, 1.0, -0.5, 0.0, 0, -3, -1, -2)
	f.Fuzz(func(t *testing.T, messages int, capacity, rate, penalty, depth float64, batch, k, cacheT, cacheC int) {
		cfg := Config{
			Messages:     messages,
			Capacity:     capacity,
			Rate:         rate,
			Penalty:      penalty,
			DepthPenalty: depth,
			BatchSize:    batch,
		}
		if k != 0 || cacheT != 0 || cacheC != 0 {
			cfg.Replication = &replica.Options{K: k, CacheThreshold: cacheT, CacheCopies: cacheC}
		}
		err := cfg.Validate() // must not panic on any input

		finitePos := func(v float64) bool { return v > 0 && !math.IsInf(v, 0) }
		finiteNonNeg := func(v float64) bool { return v >= 0 && !math.IsInf(v, 0) }
		valid := messages >= 0 &&
			finitePos(capacity) && finitePos(rate) &&
			finiteNonNeg(penalty) && finiteNonNeg(depth) &&
			batch >= 0 &&
			(cfg.Replication == nil || (k >= 0 && cacheT >= 0 && cacheC >= 0))
		if valid && err != nil {
			t.Fatalf("Validate rejected a valid config %+v: %v", cfg, err)
		}
		if !valid && err == nil {
			t.Fatalf("Validate accepted an invalid config %+v", cfg)
		}

		// Defaults resolution: any config whose raw fields are
		// non-negative (zero meaning "default") must resolve valid, and
		// resolution must be idempotent.
		defaultable := messages >= 0 &&
			finiteNonNeg(capacity) && finiteNonNeg(rate) &&
			finiteNonNeg(penalty) && finiteNonNeg(depth) &&
			batch >= 0 &&
			(cfg.Replication == nil || (k >= 0 && cacheT >= 0 && cacheC >= 0))
		resolved := cfg.withDefaults()
		if defaultable {
			if err := resolved.Validate(); err != nil {
				t.Fatalf("withDefaults broke a defaultable config %+v: %v", cfg, err)
			}
		}
		// Resolution must be idempotent (compare the scalar fields — the
		// struct itself holds func-typed route options — bitwise, so a
		// propagated NaN still counts as unchanged).
		again := resolved.withDefaults()
		sameF := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
		if again.Messages != resolved.Messages || !sameF(again.Capacity, resolved.Capacity) ||
			!sameF(again.Rate, resolved.Rate) || again.Workers != resolved.Workers ||
			again.BatchSize != resolved.BatchSize {
			t.Fatalf("withDefaults not idempotent: %+v vs %+v", resolved, again)
		}
	})
}
