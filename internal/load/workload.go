package load

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
)

// Generator produces the (from, to) lookup pairs of a traffic pattern.
// Implementations are dimension-generic: they draw from the live nodes
// of whatever graph they are bound to, so the same workload runs on the
// paper's ring and on a d-dimensional torus.
//
// Bind is called once per run, before any Pair call; Pair draws one
// lookup. Both consume only the rng sources they are handed, so a
// generator is deterministic under a fixed seed.
type Generator interface {
	// Name identifies the workload in tables and CLI flags.
	Name() string
	// Bind prepares the generator for one run over g (collecting live
	// nodes, shuffling popularity ranks, electing flood targets).
	Bind(g *graph.Graph, src *rng.Source) error
	// Pair draws one lookup. from and to are live nodes with from != to.
	Pair(src *rng.Source) (from, to metric.Point, err error)
}

// pairRetries bounds the resampling that enforces from != to.
const pairRetries = 256

// population is the shared Bind machinery: the live nodes of the bound
// graph plus a popularity permutation mapping Zipf ranks to points
// (rank 1 = the hottest node).
type population struct {
	alive  []metric.Point
	byRank []metric.Point
}

func (pop *population) bind(g *graph.Graph, src *rng.Source, ranked bool) error {
	pop.alive = pop.alive[:0]
	for i := 0; i < g.Size(); i++ {
		if p := metric.Point(i); g.Alive(p) {
			pop.alive = append(pop.alive, p)
		}
	}
	if len(pop.alive) < 2 {
		return fmt.Errorf("load: need at least two live nodes, have %d", len(pop.alive))
	}
	if ranked {
		pop.byRank = append(pop.byRank[:0], pop.alive...)
		src.Shuffle(len(pop.byRank), func(i, j int) {
			pop.byRank[i], pop.byRank[j] = pop.byRank[j], pop.byRank[i]
		})
	}
	return nil
}

func (pop *population) uniform(src *rng.Source) metric.Point {
	return pop.alive[src.Intn(len(pop.alive))]
}

// distinct retries pick until it returns a point different from not.
func distinct(src *rng.Source, not metric.Point, pick func(*rng.Source) metric.Point) (metric.Point, error) {
	for i := 0; i < pairRetries; i++ {
		if p := pick(src); p != not {
			return p, nil
		}
	}
	return 0, fmt.Errorf("load: could not draw two distinct live nodes")
}

// uniformGen is all-uniform traffic: both endpoints uniform over the
// live nodes, the baseline every skewed workload is compared against.
type uniformGen struct{ pop population }

// Uniform returns the uniform-traffic generator.
func Uniform() Generator { return &uniformGen{} }

func (u *uniformGen) Name() string { return "uniform" }

func (u *uniformGen) Bind(g *graph.Graph, src *rng.Source) error {
	return u.pop.bind(g, src, false)
}

func (u *uniformGen) Pair(src *rng.Source) (metric.Point, metric.Point, error) {
	from := u.pop.uniform(src)
	to, err := distinct(src, from, u.pop.uniform)
	return from, to, err
}

// zipfGen models hotspot keys: destinations are drawn Zipf(skew) over a
// random popularity ranking of the live nodes (a few hot resources
// attract most lookups, the classic file-sharing popularity curve);
// sources are uniform.
type zipfGen struct {
	pop  population
	skew float64
	z    *rng.ZipfSampler
}

// Zipf returns the hotspot-destination generator with the given skew
// (s = 0 degenerates to uniform; s ≈ 1 matches measured P2P workloads).
func Zipf(skew float64) Generator { return &zipfGen{skew: skew} }

func (z *zipfGen) Name() string { return fmt.Sprintf("zipf(%g)", z.skew) }

func (z *zipfGen) Bind(g *graph.Graph, src *rng.Source) error {
	if err := z.pop.bind(g, src, true); err != nil {
		return err
	}
	sampler, err := rng.NewZipf(len(z.pop.byRank), z.skew)
	if err != nil {
		return err
	}
	z.z = sampler
	return nil
}

func (z *zipfGen) Pair(src *rng.Source) (metric.Point, metric.Point, error) {
	to := z.pop.byRank[z.z.Sample(src)-1]
	from, err := distinct(src, to, z.pop.uniform)
	return from, to, err
}

// skewedSourcesGen models a skewed client population: sources are drawn
// Zipf(skew) over a random ranking (a few chatty nodes originate most
// traffic), destinations uniform. Load concentrates around the heavy
// senders' neighbourhoods instead of a hot key.
type skewedSourcesGen struct {
	pop  population
	skew float64
	z    *rng.ZipfSampler
}

// SkewedSources returns the skewed-source-population generator.
func SkewedSources(skew float64) Generator { return &skewedSourcesGen{skew: skew} }

func (s *skewedSourcesGen) Name() string { return fmt.Sprintf("sources(%g)", s.skew) }

func (s *skewedSourcesGen) Bind(g *graph.Graph, src *rng.Source) error {
	if err := s.pop.bind(g, src, true); err != nil {
		return err
	}
	sampler, err := rng.NewZipf(len(s.pop.byRank), s.skew)
	if err != nil {
		return err
	}
	s.z = sampler
	return nil
}

func (s *skewedSourcesGen) Pair(src *rng.Source) (metric.Point, metric.Point, error) {
	from := s.pop.byRank[s.z.Sample(src)-1]
	to, err := distinct(src, from, s.pop.uniform)
	return from, to, err
}

// floodGen is the adversarial workload: every message targets one node
// (elected uniformly at Bind), sources uniform — a single-target flood
// that stresses the victim's whole in-neighbourhood.
type floodGen struct {
	pop    population
	target metric.Point
}

// Flood returns the single-target flood generator.
func Flood() Generator { return &floodGen{} }

func (f *floodGen) Name() string { return "flood" }

func (f *floodGen) Bind(g *graph.Graph, src *rng.Source) error {
	if err := f.pop.bind(g, src, false); err != nil {
		return err
	}
	f.target = f.pop.uniform(src)
	return nil
}

func (f *floodGen) Pair(src *rng.Source) (metric.Point, metric.Point, error) {
	from, err := distinct(src, f.target, f.pop.uniform)
	return from, f.target, err
}

// FloodTarget reports the flood generator's elected victim; ok is
// false for any other workload or before Bind. Churn experiments use
// it to protect the target from a correlated kill, so a recovery
// measurement observes routing repair rather than the loss of the only
// copy of the hot key. Bind is deterministic in (graph, stream), so a
// caller that pre-binds with the stream Run will use (rng.New(seed)
// .Derive(0)) learns the same target Run elects.
func FloodTarget(gen Generator) (metric.Point, bool) {
	f, ok := gen.(*floodGen)
	if !ok || len(f.pop.alive) == 0 {
		return 0, false
	}
	return f.target, true
}

// NewGenerator resolves a workload by CLI name: "uniform", "zipf",
// "sources" (skewed source population) or "flood". skew parameterizes
// the Zipf-based workloads; 0 selects the P2P-typical 1.0.
func NewGenerator(name string, skew float64) (Generator, error) {
	if skew == 0 {
		skew = 1.0
	}
	switch name {
	case "", "uniform":
		return Uniform(), nil
	case "zipf", "hotspot":
		return Zipf(skew), nil
	case "sources":
		return SkewedSources(skew), nil
	case "flood":
		return Flood(), nil
	default:
		return nil, fmt.Errorf("load: unknown workload %q (uniform, zipf, sources, flood)", name)
	}
}
