package load

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// SweepConfig parameterizes a saturation sweep: repeated Runs of the
// embedded Config at increasing load, hunting for the capacity knee.
// The sweep owns Config.Arrival and Config.Rate; everything else
// (workload routing policy, penalties, capacity, workers) is taken as
// given, so the same sweep compares routing policies like-for-like.
type SweepConfig struct {
	Config
	// Model selects the arrival family swept: "periodic" (the
	// fixed-rate default), "poisson" (open-loop λ sweeps), or "closed"
	// (client-count sweeps with Think ticks between a client's
	// lookups).
	Model string
	// Think is the closed-loop think time in ticks; ignored otherwise.
	Think float64
	// Min and Max bracket the swept load — offered rate λ in messages
	// per tick for the open-loop models, client count for "closed".
	// Zero Min selects 1/2 (one client for closed-loop); zero Max
	// doubles from Min until instability, capped at 2^12 × Min.
	//
	// A sweep can only observe saturation that has time to build:
	// Config.Messages must be deep enough that an overloaded hot node
	// accumulates a backlog well past the p99 bound (a few times the
	// network size is a good rule of thumb for Zipf traffic).
	Min, Max float64
	// Bisections is how many times the bracket around the knee is
	// halved once an unstable load is found; zero selects 6.
	Bisections int
	// P99Bound is the latency half of the stability criterion: a load
	// is stable only when its run's p99 latency stays at or below the
	// bound. Zero self-calibrates to 8× the p99 measured at Min load
	// (at least 8 service times), so the criterion scales with the
	// network's zero-load path length instead of hard-coding one.
	//
	// Open-loop loads must additionally keep up: delivered throughput
	// at least throughputTrackFrac of the offered rate (scaled by the
	// delivered fraction, so routing failures are not mistaken for
	// congestion). That is the "queues drain" half — past the knee the
	// network serves at its capacity no matter how fast messages
	// arrive, so measured throughput decouples from λ. The throughput
	// is measured over the makespan minus the baseline drain tail
	// calibrated at Min load, so the fixed cost of draining the last
	// in-flight messages does not masquerade as saturation on short
	// runs.
	P99Bound float64
}

// throughputTrackFrac is how closely an open-loop run's delivered
// throughput must track the offered rate to count as keeping up.
const throughputTrackFrac = 0.9

// SweepPoint is one evaluated load level of the latency-vs-throughput
// curve.
type SweepPoint struct {
	// Load is the offered load: λ in messages per tick for open-loop
	// sweeps, the client count for closed-loop sweeps.
	Load float64
	// Stable reports whether Result met the sweep's p99 bound.
	Stable bool
	// Result is the full traffic report at this load.
	Result *Result
}

// SweepResult reports one saturation sweep.
type SweepResult struct {
	// Model echoes the arrival family swept.
	Model string
	// P99Bound is the resolved stability criterion in ticks.
	P99Bound float64
	// Points holds every load evaluated, ascending — the
	// latency-vs-throughput curve (viz.ThroughputLatency renders it).
	Points []SweepPoint
	// Knee is the largest stable load evaluated — the capacity knee.
	// Zero when even Min was unstable.
	Knee float64
	// KneeThroughput and KneeP99 summarize the run at the knee.
	KneeThroughput, KneeP99 float64
	// Saturated reports whether an unstable load was observed above the
	// knee. False means the sweep ran into Max while still stable, so
	// Knee is only a lower bound on capacity.
	Saturated bool
}

// KneePoint returns the evaluated point at the knee, nil when even the
// minimum load was unstable.
func (s *SweepResult) KneePoint() *SweepPoint {
	for i := range s.Points {
		if s.Points[i].Load == s.Knee && s.Points[i].Stable {
			return &s.Points[i]
		}
	}
	return nil
}

// Sweep locates the capacity knee of (g, gen, cfg): the largest offered
// load at which queues still drain and tail latency stays bounded. It
// evaluates cfg.Min first (calibrating the p99 bound when unset),
// doubles the load until a run goes unstable or cfg.Max is reached, then
// bisects the bracket. Every evaluation reuses the same seed, so
// workload pairs are identical across load levels and the sweep isolates
// the effect of injection pressure; like Run, the whole sweep is
// deterministic in (g, gen, cfg minus Workers and Shards, seed).
func Sweep(g *graph.Graph, gen Generator, cfg SweepConfig, seed uint64) (*SweepResult, error) {
	model := cfg.Model
	if model == "" {
		model = "periodic"
	}
	// Normalize the same aliases NewArrival resolves, so a flag value
	// valid for the fixed-rate experiments is valid here too.
	switch model {
	case "periodic", "poisson", "closed":
	case "open":
		model = "poisson"
	case "closed-loop":
		model = "closed"
	default:
		return nil, fmt.Errorf("load: unknown arrival model %q (periodic, poisson, closed)", model)
	}
	closed := model == "closed"
	if cfg.Min <= 0 {
		if closed {
			cfg.Min = 1
		} else {
			cfg.Min = 0.5
		}
	}
	if cfg.Bisections == 0 {
		cfg.Bisections = 6
	}
	maxLoad := cfg.Max
	if maxLoad <= 0 {
		maxLoad = cfg.Min * float64(int64(1)<<12)
	}
	if closed {
		cfg.Min = math.Round(cfg.Min)
		maxLoad = math.Round(maxLoad)
	}
	if cfg.Min > maxLoad {
		return nil, fmt.Errorf("load: sweep bracket [%g, %g] is empty", cfg.Min, maxLoad)
	}

	res := &SweepResult{Model: model}
	// judge applies the two-sided stability criterion; only valid once
	// res.P99Bound and baselineDrain are calibrated. The effective
	// serving window discounts the baseline drain — the time the last
	// in-flight messages need to land even with empty queues — so only
	// backlog growth beyond it counts against the load.
	var baselineDrain float64
	judge := func(at float64, r *Result) bool {
		if r.LatencyP99 > res.P99Bound {
			return false
		}
		if closed {
			return true // a closed-loop population self-limits its rate
		}
		if r.Delivered == 0 {
			return false
		}
		window := r.Makespan - baselineDrain
		if window < r.LastInject {
			window = r.LastInject
		}
		if window <= 0 {
			return false
		}
		offered := at * float64(r.Delivered) / float64(r.Injected)
		return float64(r.Delivered)/window >= throughputTrackFrac*offered
	}
	evaluated := map[float64]*SweepPoint{}
	eval := func(at float64) (*SweepPoint, error) {
		if closed {
			at = math.Round(at)
		}
		if p, ok := evaluated[at]; ok {
			return p, nil
		}
		run := cfg.Config
		switch {
		case closed:
			run.Arrival = ClosedLoop(int(at), cfg.Think)
		case model == "poisson":
			run.Arrival = Poisson(at)
		default:
			run.Arrival = Periodic(at)
		}
		r, err := Run(g, gen, run, seed)
		if err != nil {
			return nil, err
		}
		p := &SweepPoint{Load: at, Result: r}
		if res.P99Bound > 0 {
			p.Stable = judge(at, r)
		}
		evaluated[at] = p
		res.Points = append(res.Points, *p)
		return p, nil
	}

	// Calibrate the stability bound on the minimum-load run, then
	// re-judge that run against it.
	base, err := eval(cfg.Min)
	if err != nil {
		return nil, err
	}
	resolved := cfg.Config.withDefaults()
	res.P99Bound = cfg.P99Bound
	if res.P99Bound == 0 {
		serviceTime := 1 / resolved.Capacity
		res.P99Bound = 8 * math.Max(base.Result.LatencyP99, serviceTime)
		if cfg.Config.PIT {
			// A suppressed lookup whose carrier strands lawfully waits
			// out the full interest lifetime before re-forwarding —
			// protocol-mandated latency a single strand adds with zero
			// congestion. The minimum-load calibration rarely sees a
			// strand (few lookups are concurrent enough to park), so the
			// self-calibrated bound widens by one lifetime; an explicit
			// P99Bound is taken verbatim.
			res.P99Bound += resolved.PITTimeout
		}
	}
	baselineDrain = base.Result.Makespan - base.Result.LastInject
	if baselineDrain < 0 {
		baselineDrain = 0
	}
	if cfg.Config.PIT && res.P99Bound > baselineDrain {
		// The strand tail shows up in the makespan too, as a fixed
		// protocol cost: a waiter parked behind a stranded carrier
		// lawfully sits out the interest lifetime before its retry walk,
		// so a run's makespan trails its last injection by up to one full
		// lawful latency — a constant of the protocol, not backlog
		// growth. The minimum-load calibration cannot see that tail (few
		// lookups are concurrent enough to park), so under PIT the drain
		// discount is the sweep's own latency ceiling: any tail within
		// the lawful latency of the last injected lookup is protocol.
		// Genuine saturation still registers twice over — backlog
		// stretches the makespan past the bound without limit, and the
		// p99 half of the criterion trips as latencies cross it.
		baselineDrain = res.P99Bound
	}
	base.Stable = judge(base.Load, base.Result)
	res.Points[0].Stable = base.Stable

	if base.Stable {
		// Double until unstable (or the bracket cap), then bisect.
		lo, cur := cfg.Min, cfg.Min
		var hi float64
		for hi == 0 && cur < maxLoad {
			cur *= 2
			if cur > maxLoad {
				cur = maxLoad
			}
			p, err := eval(cur)
			if err != nil {
				return nil, err
			}
			if p.Stable {
				lo = p.Load
			} else {
				hi = p.Load
			}
		}
		if hi > 0 {
			res.Saturated = true
			for i := 0; i < cfg.Bisections; i++ {
				if closed && hi-lo <= 1 {
					break
				}
				p, err := eval((lo + hi) / 2)
				if err != nil {
					return nil, err
				}
				if p.Load <= lo || p.Load >= hi {
					break // integer rounding stopped making progress
				}
				if p.Stable {
					lo = p.Load
				} else {
					hi = p.Load
				}
			}
		}
		res.Knee = lo
	} else {
		res.Saturated = true
	}

	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].Load < res.Points[j].Load })
	// Re-stamp stability flags: points evaluated before the bound was
	// calibrated (just the first) were judged above; copy from the map
	// to keep the slice and the knee consistent.
	for i := range res.Points {
		res.Points[i].Stable = evaluated[res.Points[i].Load].Stable
	}
	if kp := res.KneePoint(); kp != nil {
		res.KneeThroughput = kp.Result.Throughput
		res.KneeP99 = kp.Result.LatencyP99
	}
	return res, nil
}
