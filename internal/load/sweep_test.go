package load

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/route"
)

func sweepConfig(messages, workers int) SweepConfig {
	return SweepConfig{
		Config: Config{
			Messages: messages,
			Workers:  workers,
			Route:    route.Options{DeadEnd: route.Backtrack},
		},
		Model:      "poisson",
		Bisections: 4,
	}
}

func TestSweepFindsFiniteKnee(t *testing.T) {
	// The acceptance scenario: a seeded 1024-node ring under Zipf
	// traffic must saturate at a finite, positive offered rate.
	g := buildRing(t, 1024, 10, 21)
	res, err := Sweep(g, Zipf(1.0), sweepConfig(3000, 0), 22)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Error("sweep never saturated; the knee is only a lower bound")
	}
	if res.Knee <= 0 || math.IsInf(res.Knee, 0) {
		t.Fatalf("knee = %v, want finite and positive", res.Knee)
	}
	if res.KneeThroughput <= 0 {
		t.Errorf("knee throughput = %v, want positive", res.KneeThroughput)
	}
	kp := res.KneePoint()
	if kp == nil {
		t.Fatal("no knee point recorded")
	}
	if kp.Result.LatencyP99 > res.P99Bound {
		t.Errorf("knee p99 %.2f violates bound %.2f", kp.Result.LatencyP99, res.P99Bound)
	}
	// Points ascend in load, and some point above the knee is unstable.
	unstableAbove := false
	for i, p := range res.Points {
		if i > 0 && p.Load <= res.Points[i-1].Load {
			t.Errorf("points not ascending at %d: %v after %v", i, p.Load, res.Points[i-1].Load)
		}
		if !p.Stable && p.Load > res.Knee {
			unstableAbove = true
		}
		if p.Stable && p.Load > res.Knee {
			t.Errorf("stable point %v above knee %v", p.Load, res.Knee)
		}
	}
	if !unstableAbove {
		t.Error("no unstable point above the knee")
	}
}

func TestSweepWorkerIndependence(t *testing.T) {
	g := buildRing(t, 512, 9, 23)
	var want *SweepResult
	for _, workers := range []int{1, 3, 8} {
		res, err := Sweep(g, Zipf(1.0), sweepConfig(1200, workers), 24)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(want, res) {
			t.Errorf("workers=%d sweep diverged from workers=1", workers)
		}
	}
}

func TestSweepClosedLoop(t *testing.T) {
	g := buildRing(t, 512, 9, 25)
	res, err := Sweep(g, Uniform(), SweepConfig{
		Config: Config{Messages: 300, Route: route.Options{DeadEnd: route.Backtrack}},
		Model:  "closed",
		Think:  2,
		Max:    1 << 10,
	}, 26)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "closed" {
		t.Errorf("model = %q", res.Model)
	}
	for _, p := range res.Points {
		if p.Load != math.Round(p.Load) {
			t.Errorf("closed-loop load %v is not an integer client count", p.Load)
		}
		if p.Result.Injected != 300 {
			t.Errorf("closed-loop run injected %d, want 300", p.Result.Injected)
		}
	}
	if res.Knee < 1 {
		t.Errorf("closed-loop knee = %v, want >= 1 client", res.Knee)
	}
}

func TestSweepDepthAwareChangesRouting(t *testing.T) {
	// The depth-aware policy must actually feed the instantaneous-depth
	// signal into routing: under saturating load its paths (and hence
	// load profile) diverge from plain greedy's, while delivery stays
	// conservation-clean.
	g := damagedTorus(t, 32, 10, 27, 0.3)
	cfg := Config{
		Messages:     2000,
		Arrival:      Poisson(32),
		Route:        route.Options{DeadEnd: route.Backtrack},
		DepthPenalty: 1,
	}
	depth, err := Run(g, Zipf(1.0), cfg, 28)
	if err != nil {
		t.Fatal(err)
	}
	plain := cfg
	plain.DepthPenalty = 0
	greedy, err := Run(g, Zipf(1.0), plain, 28)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(depth.Loads, greedy.Loads) {
		t.Error("depth penalty did not change the load profile")
	}
	if depth.Delivered+depth.Failed != depth.Injected {
		t.Errorf("conservation broken: %d+%d != %d", depth.Delivered, depth.Failed, depth.Injected)
	}
	if depth.MaxQueueDepth >= greedy.MaxQueueDepth {
		t.Errorf("depth-aware peak queue %d should beat greedy %d under overload",
			depth.MaxQueueDepth, greedy.MaxQueueDepth)
	}
}

func TestSweepRejectsEmptyBracket(t *testing.T) {
	g := buildRing(t, 64, 4, 29)
	if _, err := Sweep(g, Uniform(), SweepConfig{Min: 8, Max: 2}, 30); err == nil {
		t.Error("inverted bracket should be rejected")
	}
}
