package load

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
)

// replicatedConfig is the shared flood-replication configuration of
// these tests.
func replicatedConfig(k int, cache int) Config {
	return Config{
		Messages:    600,
		Route:       route.Options{DeadEnd: route.Backtrack},
		Replication: &replica.Options{K: k, CacheThreshold: cache},
	}
}

// TestReplicationFansOutFlood: under a single-target flood, k = 4
// replicas must spread deliveries across several replica points and cut
// the hottest node's load versus k = 1.
func TestReplicationFansOutFlood(t *testing.T) {
	g := buildRing(t, 1024, 10, 21)
	plain, err := Run(g, Flood(), Config{
		Messages: 600,
		Route:    route.Options{DeadEnd: route.Backtrack},
	}, 22)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := Run(g, Flood(), replicatedConfig(4, 0), 22)
	if err != nil {
		t.Fatal(err)
	}
	if repl.Replication == "" || plain.Replication != "" {
		t.Errorf("replication labels: plain=%q replicated=%q", plain.Replication, repl.Replication)
	}
	servers := 0
	for _, c := range repl.ServedBy {
		if c > 0 {
			servers++
		}
	}
	if servers < 2 {
		t.Errorf("flood with k=4 served by %d points, want >= 2", servers)
	}
	plainServers := 0
	for _, c := range plain.ServedBy {
		if c > 0 {
			plainServers++
		}
	}
	if plainServers != 1 {
		t.Errorf("plain flood served by %d points, want exactly the victim", plainServers)
	}
	if repl.MaxLoad >= plain.MaxLoad {
		t.Errorf("replication did not cut the hottest node: k=4 max %d vs k=1 max %d",
			repl.MaxLoad, plain.MaxLoad)
	}
	if repl.Delivered+repl.Failed != repl.Injected {
		t.Errorf("conservation broke: %d + %d != %d", repl.Delivered, repl.Failed, repl.Injected)
	}
}

// TestReplicationWorkerInvariance: the replica pipeline (static spread
// plus cache-on-path promotion at batch boundaries) must stay
// byte-identical across worker counts.
func TestReplicationWorkerInvariance(t *testing.T) {
	g := buildTorus(t, 24, 9, 23)
	run := func(workers int) *Result {
		cfg := replicatedConfig(4, 32)
		cfg.Workers = workers
		cfg.Penalty = 1 // congestion-aware batching on top of replication
		r, err := Run(g, Zipf(1.0), cfg, 24)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	one := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(one, got) {
			t.Errorf("workers=%d diverged from workers=1", w)
		}
	}
}

// TestCacheOnPathPlacesCopies: a flooded key must cross the popularity
// threshold and earn cached copies, which then absorb deliveries.
func TestCacheOnPathPlacesCopies(t *testing.T) {
	g := buildRing(t, 1024, 10, 25)
	r, err := Run(g, Flood(), replicatedConfig(0, 50), 26)
	if err != nil {
		t.Fatal(err)
	}
	if r.CachedKeys != 1 {
		t.Errorf("cached keys = %d, want 1 (the flood victim)", r.CachedKeys)
	}
	if r.CacheCopies == 0 {
		t.Error("no cache copies placed despite the threshold being crossed")
	}
	servers := 0
	for _, c := range r.ServedBy {
		if c > 0 {
			servers++
		}
	}
	if servers < 2 {
		t.Errorf("cache-on-path flood served by %d points, want >= 2", servers)
	}
}

// TestReplicationValidate: bad replica options must be rejected by
// Config.Validate via Run.
func TestReplicationValidate(t *testing.T) {
	g := buildRing(t, 64, 3, 27)
	cfg := Config{Replication: &replica.Options{K: -2}}
	if _, err := Run(g, Uniform(), cfg, 1); err == nil {
		t.Error("negative replica count accepted")
	}
	cfg = Config{Replication: &replica.Options{K: 2, Strategy: "bogus"}}
	if _, err := Run(g, Uniform(), cfg, 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestReplicationDisabledMatchesPlain: a nil-equivalent (disabled)
// replication config must leave results bit-identical to no config at
// all — the fallback the regress goldens rely on.
func TestReplicationDisabledMatchesPlain(t *testing.T) {
	g := buildRing(t, 512, 9, 28)
	base, err := Run(g, Zipf(1.0), Config{Messages: 300}, 29)
	if err != nil {
		t.Fatal(err)
	}
	disabled, err := Run(g, Zipf(1.0), Config{
		Messages:    300,
		Replication: &replica.Options{K: 1},
	}, 29)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, disabled) {
		t.Error("disabled replication changed the run")
	}
}

// TestReplicationServedByMatchesTargets: every delivery lands on a
// point the placement offered for that key.
func TestReplicationServedByMatchesTargets(t *testing.T) {
	g := buildRing(t, 512, 9, 30)
	cfg := replicatedConfig(3, 0)
	cfg.ReplicaSeed = 77
	r, err := Run(g, Flood(), cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	placement, err := replica.NewPlacement(g.Space(), *cfg.Replication, 77)
	if err != nil {
		t.Fatal(err)
	}
	// The flood victim is the only key; find it as the served point
	// that is a primary of some target set containing all other served
	// points.
	var victim metric.Point = -1
	for p, c := range r.ServedBy {
		if c == 0 {
			continue
		}
		for q, cq := range r.ServedBy {
			if cq == 0 {
				continue
			}
			found := false
			for _, tg := range placement.Targets(metric.Point(p)) {
				if tg == metric.Point(q) {
					found = true
					break
				}
			}
			if !found {
				goto next
			}
		}
		victim = metric.Point(p)
		break
	next:
	}
	if victim < 0 {
		t.Errorf("no served point explains all deliveries; ServedBy nonzeros: %v", nonzero(r.ServedBy))
	}
}

func nonzero(counts []int) map[int]int {
	out := map[int]int{}
	for i, c := range counts {
		if c > 0 {
			out[i] = c
		}
	}
	return out
}

// phaseFlood floods victim A for the first half of the run and victim
// B for the second — the moving-hotspot workload the cache-decay tests
// pin. Victims are drawn at Bind, so the workload is seeded like every
// other generator.
type phaseFlood struct {
	pop    population
	a, b   metric.Point
	drawn  int
	halfAt int
}

func (f *phaseFlood) Name() string { return "phase-flood" }

func (f *phaseFlood) Bind(g *graph.Graph, src *rng.Source) error {
	if err := f.pop.bind(g, src, false); err != nil {
		return err
	}
	f.a = f.pop.uniform(src)
	f.b, _ = distinct(src, f.a, f.pop.uniform)
	f.drawn = 0
	return nil
}

func (f *phaseFlood) Pair(src *rng.Source) (metric.Point, metric.Point, error) {
	target := f.a
	if f.drawn >= f.halfAt {
		target = f.b
	}
	f.drawn++
	from, err := distinct(src, target, f.pop.uniform)
	return from, target, err
}

// TestCacheDecayFollowsMovingHotspot is the seeded decay scenario: the
// flood victim moves mid-run. Without decay the dead hotspot's copies
// linger to the end; with decay they are evicted and only the current
// victim stays cached — in snapshot and live mode alike.
func TestCacheDecayFollowsMovingHotspot(t *testing.T) {
	const msgs = 600
	for _, live := range []bool{false, true} {
		g := buildRing(t, 1024, 10, 33)
		run := func(decay bool) *Result {
			t.Helper()
			cfg := Config{
				Messages: msgs,
				Live:     live,
				Route:    route.Options{DeadEnd: route.Backtrack},
				Replication: &replica.Options{
					CacheThreshold: 16, CacheCopies: 4, CacheDecay: decay,
				},
			}
			r, err := Run(g, &phaseFlood{halfAt: msgs / 2}, cfg, 34)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		sticky := run(false)
		if sticky.CachedKeys != 2 {
			t.Fatalf("live=%v: without decay both victims should stay cached, got %d keys",
				live, sticky.CachedKeys)
		}
		decayed := run(true)
		if decayed.CachedKeys != 1 {
			t.Errorf("live=%v: with decay only the current victim should stay cached, got %d keys",
				live, decayed.CachedKeys)
		}
		if decayed.CacheCopies == 0 {
			t.Errorf("live=%v: current victim lost its copies entirely", live)
		}
		if decayed.Delivered+decayed.Failed != decayed.Injected {
			t.Errorf("live=%v: conservation broke", live)
		}
	}
}
