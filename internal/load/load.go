package load

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

// Config parameterizes one traffic run. The zero value of every field
// selects a sensible default; Workers never affects results, only
// wall-clock time.
type Config struct {
	// Messages is the number of lookups injected. Zero defaults to 256.
	Messages int
	// Capacity is the per-node service capacity in message-hops per
	// virtual tick; a node serves one message every 1/Capacity ticks.
	// Zero defaults to 1.
	Capacity float64
	// Rate is the network-wide injection rate in messages per virtual
	// tick (message i is injected at tick i/Rate). Zero defaults to 1.
	Rate float64
	// Workers bounds path-computation parallelism; zero uses
	// GOMAXPROCS. Results are byte-identical for every value.
	Workers int
	// Route configures the underlying router. TracePath is forced on
	// (the queue replay needs the visited sequence); Congestion and
	// CongestionWeight are overwritten when Penalty > 0.
	Route route.Options
	// Penalty, when positive, enables load-aware routing: greedy with
	// congestion-penalized detours (route.Options.Congestion). The
	// congestion of a node is its charged load divided by the mean
	// live-node load, times Penalty — so Penalty is the detour budget
	// in distance units per multiple-of-mean load, independent of how
	// much traffic has accumulated. Zero keeps the paper's hop-optimal
	// greedy.
	Penalty float64
	// BatchSize is how many messages route against one frozen
	// congestion snapshot when Penalty > 0 — the staleness of load
	// information in a real system. Zero defaults to 32.
	BatchSize int
}

func (c Config) withDefaults() Config {
	if c.Messages == 0 {
		c.Messages = 256
	}
	if c.Capacity == 0 {
		c.Capacity = 1
	}
	if c.Rate == 0 {
		c.Rate = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	return c
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.Messages < 0 {
		return fmt.Errorf("load: negative message count %d", c.Messages)
	}
	if c.Capacity < 0 || c.Rate < 0 {
		return fmt.Errorf("load: capacity %g and rate %g must be non-negative", c.Capacity, c.Rate)
	}
	if c.Penalty < 0 {
		return fmt.Errorf("load: negative congestion penalty %g", c.Penalty)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("load: negative batch size %d", c.BatchSize)
	}
	return nil
}

// Result reports one traffic run: routing outcomes (the familiar
// sim.SearchStats), the per-node load profile, and the queueing-delay
// picture of the virtual-time replay.
type Result struct {
	// Workload names the generator that produced the traffic.
	Workload string
	// Search aggregates the underlying route results exactly as the
	// single-message experiments do.
	Search sim.SearchStats
	// Injected = Delivered + Failed always holds (the conservation
	// property the tests pin).
	Injected, Delivered, Failed int
	// Loads counts message-hop services per grid point (index =
	// metric.Point; absent or untouched points hold 0).
	Loads []int
	// MaxLoad is the hottest node's service count; MeanLoad averages
	// over the live nodes. Their ratio is the imbalance headline.
	MaxLoad  int
	MeanLoad float64
	// IdleNodes counts live nodes that serviced nothing.
	IdleNodes int
	// MaxQueueDepth is the deepest any node's FIFO got (including the
	// message in service).
	MaxQueueDepth int
	// Latency quantiles of delivered messages, in virtual ticks
	// (nearest-rank on the completion-time distribution). Zero when
	// nothing was delivered.
	LatencyMean, LatencyP50, LatencyP95, LatencyP99 float64
}

// MaxMeanRatio returns MaxLoad/MeanLoad, the load-imbalance headline
// (1 ≈ perfectly balanced). Zero when no load was charged.
func (r *Result) MaxMeanRatio() float64 {
	if r.MeanLoad == 0 {
		return 0
	}
	return float64(r.MaxLoad) / r.MeanLoad
}

// Run injects cfg.Messages lookups from gen into g and replays them
// against per-node FIFO queues in virtual time. See the package comment
// for the model; the run is deterministic in (g, gen, cfg, seed) and
// independent of cfg.Workers.
func Run(g *graph.Graph, gen Generator, cfg Config, seed uint64) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(seed)
	if err := gen.Bind(g, root.Derive(0)); err != nil {
		return nil, err
	}

	// Draw every lookup pair up front from one sequential stream: the
	// workload is then fixed before any parallelism starts.
	pairSrc := root.Derive(1)
	pairs := make([]lookup, cfg.Messages)
	for i := range pairs {
		from, to, err := gen.Pair(pairSrc)
		if err != nil {
			return nil, err
		}
		pairs[i] = lookup{from, to}
	}

	// Route all messages, in congestion-snapshot batches when the
	// load-aware policy is on (one batch of everything otherwise).
	// Message i always routes from stream Derive(16+i), so the paths —
	// and everything downstream — are independent of worker count.
	ropt := cfg.Route
	ropt.TracePath = true
	if cfg.Penalty > 0 {
		// The congestion feedback owns these fields (Config.Route's
		// documented contract); drop any caller-supplied signal so the
		// first, zero-load batch routes hop-optimally.
		ropt.Congestion = nil
		ropt.CongestionWeight = 0
	}
	results := make([]route.Result, cfg.Messages)
	charged := make([]int, g.Size())
	batch := cfg.Messages
	if cfg.Penalty > 0 {
		batch = cfg.BatchSize
	}
	for start := 0; start < cfg.Messages; start += batch {
		end := start + batch
		if end > cfg.Messages {
			end = cfg.Messages
		}
		opt := ropt
		if cfg.Penalty > 0 {
			// The congestion signal is the node's charged load relative
			// to the mean live-node load of the snapshot — dimensionless,
			// so the detour pressure stays constant as traffic
			// accumulates instead of drowning the distance term.
			snapshot := append([]int(nil), charged...)
			var total int
			for i, c := range snapshot {
				if g.Alive(metric.Point(i)) {
					total += c
				}
			}
			if total > 0 {
				scale := cfg.Penalty * float64(g.AliveCount()) / float64(total)
				opt.Congestion = func(q metric.Point) float64 { return float64(snapshot[q]) * scale }
				opt.CongestionWeight = 1
			}
		}
		if err := routeRange(g, opt, root, pairs[start:end], results[start:end], start, cfg.Workers); err != nil {
			return nil, err
		}
		for i := start; i < end; i++ {
			for _, p := range forwarders(results[i]) {
				charged[p]++
			}
		}
	}

	// Replay against the FIFO queues and assemble the report.
	msgs := make([]queuedMessage, cfg.Messages)
	interarrival := 1 / cfg.Rate
	for i, res := range results {
		msgs[i] = queuedMessage{
			inject:    float64(i) * interarrival,
			path:      forwarders(res),
			delivered: res.Delivered,
		}
	}
	out := simulateQueues(g.Size(), msgs, 1/cfg.Capacity)

	r := &Result{
		Workload:      gen.Name(),
		Injected:      cfg.Messages,
		Loads:         out.loads,
		MaxQueueDepth: out.maxQueueDepth,
	}
	for _, res := range results {
		r.Search.Record(res)
		if res.Delivered {
			r.Delivered++
		} else {
			r.Failed++
		}
	}
	alive := g.AliveCount()
	var total int
	for i, l := range out.loads {
		if l > r.MaxLoad {
			r.MaxLoad = l
		}
		total += l
		if l == 0 && g.Alive(metric.Point(i)) {
			r.IdleNodes++
		}
	}
	if alive > 0 {
		r.MeanLoad = float64(total) / float64(alive)
	}
	r.LatencyMean, r.LatencyP50, r.LatencyP95, r.LatencyP99 = latencySummary(out.latencies)
	return r, nil
}

// lookup is one (source, destination) pair of the workload.
type lookup struct{ from, to metric.Point }

// forwarders returns the nodes whose FIFO queues a search occupies: the
// hop u→v is charged to u, the node doing the routing work. A delivered
// message therefore charges every visited node except its destination
// (which consumes the message; its application-level work is not
// routing load), while a failed search charges everything it touched —
// the last node too received the message and hunted for a next hop.
func forwarders(res route.Result) []metric.Point {
	if res.Delivered && len(res.Path) > 0 {
		return res.Path[:len(res.Path)-1]
	}
	return res.Path
}

// routeRange routes pairs[i] into results[i] across workers goroutines.
// offset is the global index of pairs[0], which keys each message's rng
// stream — the assignment of messages to workers is irrelevant.
func routeRange(g *graph.Graph, opt route.Options, root *rng.Source, pairs []lookup, results []route.Result, offset, workers int) error {
	router := route.New(g, opt)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for i := range pairs {
			res, err := router.Route(root.Derive(16+uint64(offset+i)), pairs[i].from, pairs[i].to)
			if err != nil {
				return err
			}
			results[i] = res
		}
		return nil
	}
	var (
		next     int64 = -1
		firstErr error
		mu       sync.Mutex
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(pairs) {
					return
				}
				res, err := router.Route(root.Derive(16+uint64(offset+i)), pairs[i].from, pairs[i].to)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	return firstErr
}
