package load

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

// Config parameterizes one traffic run. The zero value of every field
// selects a sensible default; Workers never affects results, only
// wall-clock time.
type Config struct {
	// Messages is the number of lookups injected. Zero defaults to 256.
	Messages int
	// Capacity is the per-node service capacity in message-hops per
	// virtual tick; a node serves one message every 1/Capacity ticks.
	// Zero defaults to 1.
	Capacity float64
	// Rate is the network-wide injection rate in messages per virtual
	// tick (message i is injected at tick i/Rate). Zero defaults to 1.
	// Ignored when Arrival is non-nil.
	Rate float64
	// Arrival selects the arrival model feeding the queue replay; nil
	// defaults to the fixed-rate open-loop model Periodic(Rate). Poisson
	// and ClosedLoop select the saturation-sweep arrival regimes.
	Arrival Arrival
	// Workers bounds path-computation parallelism; zero uses
	// GOMAXPROCS. Results are byte-identical for every value.
	Workers int
	// Route configures the underlying router. TracePath is forced on
	// (the queue replay needs the visited sequence); Congestion and
	// CongestionWeight are overwritten when Penalty > 0.
	Route route.Options
	// Penalty, when positive, enables load-aware routing: greedy with
	// congestion-penalized detours (route.Options.Congestion). The
	// congestion of a node is its charged load divided by the mean
	// live-node load, times Penalty — so Penalty is the detour budget
	// in distance units per multiple-of-mean load, independent of how
	// much traffic has accumulated. Zero keeps the paper's hop-optimal
	// greedy.
	Penalty float64
	// DepthPenalty, when positive, adds an instantaneous-queue-depth
	// term to the congestion signal: a candidate node costs an extra
	// DepthPenalty distance units per message sitting in its queue when
	// the batch's congestion snapshot was taken. Where Penalty reacts to
	// cumulative charged load, DepthPenalty reacts to the backlog right
	// now — the signal that matters near saturation. Both compose (and
	// compose with any dead-end policy, since the congestion-penalized
	// greedy preserves strict metric progress).
	DepthPenalty float64
	// BatchSize is how many messages route against one frozen
	// congestion snapshot when Penalty or DepthPenalty is positive —
	// the staleness of load information in a real system. Zero defaults
	// to 32. Cache-on-path replication shares the same batching: cached
	// copies placed during one batch serve traffic from the next.
	BatchSize int
	// Replication, when non-nil and enabled (K > 1 or a positive
	// CacheThreshold), replicates every lookup key through
	// replica.NewPlacement and routes each message to the nearest live
	// replica (route.RouteAny). Dead replicas degrade the set toward
	// plain greedy on the primary; delivered messages feed the
	// placement's popularity counters at batch boundaries, so
	// cache-on-path stays deterministic and worker-count independent.
	Replication *replica.Options
	// ReplicaSeed seeds the hash-spread placement; zero derives it from
	// the run seed, so a fixed (cfg, seed) still pins every replica.
	ReplicaSeed uint64
}

func (c Config) withDefaults() Config {
	if c.Messages == 0 {
		c.Messages = 256
	}
	if c.Capacity == 0 {
		c.Capacity = 1
	}
	if c.Rate == 0 {
		c.Rate = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	return c
}

// Validate rejects nonsensical configurations. It checks a resolved
// configuration: zero-valued fields mean "use the default" to Run, which
// resolves them before validating, so a zero Capacity or Rate here is an
// error, not a default.
func (c Config) Validate() error {
	if c.Messages < 0 {
		return fmt.Errorf("load: negative message count %d", c.Messages)
	}
	for name, v := range map[string]float64{
		"capacity": c.Capacity, "rate": c.Rate,
		"penalty": c.Penalty, "depth penalty": c.DepthPenalty,
	} {
		// NaN slips through ordered comparisons and an infinite rate or
		// capacity degenerates the virtual-time replay, so both are
		// configuration errors, not values to compute with.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("load: %s %g is not finite", name, v)
		}
	}
	if c.Capacity <= 0 || c.Rate <= 0 {
		return fmt.Errorf("load: capacity %g and rate %g must be positive", c.Capacity, c.Rate)
	}
	if c.Penalty < 0 || c.DepthPenalty < 0 {
		return fmt.Errorf("load: congestion penalties %g/%g must be non-negative", c.Penalty, c.DepthPenalty)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("load: negative batch size %d", c.BatchSize)
	}
	if c.Replication != nil {
		if err := c.Replication.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result reports one traffic run: routing outcomes (the familiar
// sim.SearchStats), the per-node load profile, and the queueing-delay
// picture of the virtual-time replay.
type Result struct {
	// Workload names the generator that produced the traffic.
	Workload string
	// Arrival names the arrival model that timed the injections.
	Arrival string
	// Replication names the replica placement ("" when disabled).
	Replication string
	// Search aggregates the underlying route results exactly as the
	// single-message experiments do.
	Search sim.SearchStats
	// Injected = Delivered + Failed always holds (the conservation
	// property the tests pin).
	Injected, Delivered, Failed int
	// Loads counts message-hop services per grid point (index =
	// metric.Point; absent or untouched points hold 0).
	Loads []int
	// ServedBy counts, per grid point, the delivered messages that
	// point consumed — under replication, how the hot key's traffic
	// fanned out across its replicas (index = metric.Point).
	ServedBy []int
	// CachedKeys and CacheCopies report the popularity-triggered
	// cache placements made during the run (zero without a cache
	// threshold).
	CachedKeys, CacheCopies int
	// MaxLoad is the hottest node's service count; MeanLoad averages
	// over the live nodes. Their ratio is the imbalance headline.
	MaxLoad  int
	MeanLoad float64
	// IdleNodes counts live nodes that serviced nothing.
	IdleNodes int
	// MaxQueueDepth is the deepest any node's FIFO got (including the
	// message in service).
	MaxQueueDepth int
	// Latency quantiles of delivered messages, in virtual ticks
	// (nearest-rank on the completion-time distribution). Zero when
	// nothing was delivered.
	LatencyMean, LatencyP50, LatencyP95, LatencyP99 float64
	// Makespan is the virtual time at which the last service completed;
	// LastInject is the time of the final injection. Their difference
	// is how long the network needed to drain its backlog once
	// injections stopped.
	Makespan, LastInject float64
	// Throughput is delivered messages per virtual tick of Makespan —
	// the y-axis the saturation sweeps plot the knee on.
	Throughput float64
}

// MaxMeanRatio returns MaxLoad/MeanLoad, the load-imbalance headline
// (1 ≈ perfectly balanced). Zero when no load was charged.
func (r *Result) MaxMeanRatio() float64 {
	if r.MeanLoad == 0 {
		return 0
	}
	return float64(r.MaxLoad) / r.MeanLoad
}

// Run injects cfg.Messages lookups from gen into g and replays them
// against per-node FIFO queues in virtual time. See the package comment
// for the model; the run is deterministic in (g, gen, cfg, seed) and
// independent of cfg.Workers.
func Run(g *graph.Graph, gen Generator, cfg Config, seed uint64) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(seed)
	if err := gen.Bind(g, root.Derive(0)); err != nil {
		return nil, err
	}

	// Draw every lookup pair up front from one sequential stream: the
	// workload is then fixed before any parallelism starts.
	pairSrc := root.Derive(1)
	pairs := make([]lookup, cfg.Messages)
	for i := range pairs {
		from, to, err := gen.Pair(pairSrc)
		if err != nil {
			return nil, err
		}
		pairs[i] = lookup{from, to}
	}

	// Resolve the arrival model and draw its schedule from one
	// dedicated sequential stream, fixing the injection times (and, for
	// Poisson, their randomness) before any parallelism starts.
	arr := cfg.Arrival
	if arr == nil {
		arr = Periodic(cfg.Rate)
	}
	// Config.Validate covers Rate but not a caller-supplied Arrival;
	// the built-in models know how to reject their own bad parameters
	// (a non-positive rate would prime Inf/NaN injection times).
	if v, ok := arr.(interface{ validate() error }); ok {
		if err := v.validate(); err != nil {
			return nil, err
		}
	}
	primed := arr.Prime(cfg.Messages, root.Derive(2))
	serviceTime := 1 / cfg.Capacity

	// Resolve the replica placement, if any. The placement is consulted
	// and fed back only from this goroutine at batch boundaries, so
	// replica-aware runs keep the worker-count independence contract.
	var placement *replica.Placement
	if cfg.Replication != nil && cfg.Replication.Enabled() {
		rseed := cfg.ReplicaSeed
		if rseed == 0 {
			rseed = root.Derive(3).Uint64()
		}
		var err error
		placement, err = replica.NewPlacement(g.Space(), *cfg.Replication, rseed)
		if err != nil {
			return nil, err
		}
	}

	// Route all messages, in congestion-snapshot batches when a
	// congestion-aware policy is on (one batch of everything otherwise;
	// cache-on-path replication also batches, so copies placed during
	// one batch serve the next). Message i always routes from stream
	// Derive(16+i), so the paths — and everything downstream — are
	// independent of worker count.
	aware := cfg.Penalty > 0 || cfg.DepthPenalty > 0
	caching := placement != nil && cfg.Replication.CacheThreshold > 0
	ropt := cfg.Route
	ropt.TracePath = true
	if aware {
		// The congestion feedback owns these fields (Config.Route's
		// documented contract); drop any caller-supplied signal so the
		// first, zero-load batch routes hop-optimally.
		ropt.Congestion = nil
		ropt.CongestionWeight = 0
	}
	results := make([]route.Result, cfg.Messages)
	msgs := make([]queuedMessage, cfg.Messages)
	charged := make([]int, g.Size())
	batch := cfg.Messages
	if aware || caching {
		batch = cfg.BatchSize
	}
	for start := 0; start < cfg.Messages; start += batch {
		end := start + batch
		if end > cfg.Messages {
			end = cfg.Messages
		}
		opt := ropt
		if aware && start > 0 {
			// The cumulative congestion signal is the node's charged
			// load relative to the mean live-node load of the snapshot —
			// dimensionless, so the detour pressure stays constant as
			// traffic accumulates instead of drowning the distance term.
			snapshot := append([]int(nil), charged...)
			var loadScale float64
			if cfg.Penalty > 0 {
				var total int
				for i, c := range snapshot {
					if g.Alive(metric.Point(i)) {
						total += c
					}
				}
				if total > 0 {
					loadScale = cfg.Penalty * float64(g.AliveCount()) / float64(total)
				}
			}
			// The instantaneous signal replays the traffic routed so far
			// and probes each node's queue depth as this batch begins.
			var depth []int
			if cfg.DepthPenalty > 0 {
				depth = depthSnapshot(g.Size(), msgs, primed, arr, serviceTime, start)
			}
			if loadScale > 0 || depth != nil {
				depthPenalty := cfg.DepthPenalty
				opt.Congestion = func(q metric.Point) float64 {
					s := float64(snapshot[q]) * loadScale
					if depth != nil {
						s += depthPenalty * float64(depth[q])
					}
					return s
				}
				opt.CongestionWeight = 1
			}
		}
		// Freeze this batch's replica sets before any parallelism: the
		// placement may gain cached copies only between batches.
		var targets [][]metric.Point
		if placement != nil {
			targets = make([][]metric.Point, end-start)
			for i := start; i < end; i++ {
				targets[i-start] = placement.Targets(pairs[i].to)
			}
		}
		if err := routeRange(g, opt, root, pairs[start:end], targets, results[start:end], start, cfg.Workers); err != nil {
			return nil, err
		}
		for i := start; i < end; i++ {
			msgs[i] = queuedMessage{path: forwarders(results[i]), delivered: results[i].Delivered}
			for _, p := range msgs[i].path {
				charged[p]++
			}
			if caching && results[i].Delivered {
				placement.Observe(pairs[i].to, results[i].Path)
			}
		}
	}

	// Replay against the FIFO queues and assemble the report.
	out := simulateQueues(g.Size(), msgs, serviceTime, primed, arr.Completed, -1)

	r := &Result{
		Workload:      gen.Name(),
		Arrival:       arr.Name(),
		Injected:      cfg.Messages,
		Loads:         out.loads,
		ServedBy:      make([]int, g.Size()),
		MaxQueueDepth: out.maxQueueDepth,
		Makespan:      out.makespan,
		LastInject:    out.lastInject,
	}
	if placement != nil {
		r.Replication = placement.Name()
		r.CachedKeys = placement.CachedKeys()
		r.CacheCopies = placement.CachedCopies()
	}
	for _, res := range results {
		r.Search.Record(res)
		if res.Delivered {
			r.Delivered++
			r.ServedBy[res.Target]++
		} else {
			r.Failed++
		}
	}
	alive := g.AliveCount()
	var total int
	for i, l := range out.loads {
		if l > r.MaxLoad {
			r.MaxLoad = l
		}
		total += l
		if l == 0 && g.Alive(metric.Point(i)) {
			r.IdleNodes++
		}
	}
	if alive > 0 {
		r.MeanLoad = float64(total) / float64(alive)
	}
	r.LatencyMean, r.LatencyP50, r.LatencyP95, r.LatencyP99 = latencySummary(out.latencies)
	if out.makespan > 0 {
		r.Throughput = float64(r.Delivered) / out.makespan
	}
	return r, nil
}

// depthSnapshot estimates each node's instantaneous queue depth at the
// moment message `start` is about to be routed: it replays the traffic
// routed so far (messages [0, start)) and probes the queues at that
// batch's injection time. For open-loop models — every message primed up
// front — the probe is message start's scheduled time; for closed-loop
// it is the latest injection the prefix replay produced, found by a
// first untimed replay. The prefix replay is an estimate, not the final
// replay's exact prefix (later messages can interleave), which models
// the staleness of queue-depth gossip in a real system; what matters is
// that it is a pure function of already-routed traffic, keeping Run
// deterministic and worker-count independent.
//
// Cost: replaying the prefix at every batch makes a depth-aware Run
// O(Messages²/BatchSize) heap operations overall (double that on the
// closed-loop branch, which needs a first replay to learn the probe
// time) — about 100 ms at the default scales, paid only when
// DepthPenalty > 0.
func depthSnapshot(size int, msgs []queuedMessage, primed []Injection, arr Arrival, serviceTime float64, start int) []int {
	initial := make([]Injection, 0, start)
	for _, inj := range primed {
		if inj.Msg < start {
			initial = append(initial, inj)
		}
	}
	completed := func(m int, at float64) (Injection, bool) {
		next, ok := arr.Completed(m, at)
		if !ok || next.Msg >= start {
			return Injection{}, false
		}
		return next, true
	}
	var probe float64
	if len(primed) == len(msgs) && start < len(primed) {
		probe = primed[start].Time
	} else {
		probe = simulateQueues(size, msgs, serviceTime, initial, completed, -1).lastInject
	}
	return simulateQueues(size, msgs, serviceTime, initial, completed, probe).probeDepths
}

// lookup is one (source, destination) pair of the workload.
type lookup struct{ from, to metric.Point }

// forwarders returns the nodes whose FIFO queues a search occupies: the
// hop u→v is charged to u, the node doing the routing work. A delivered
// message therefore charges every visited node except its destination
// (which consumes the message; its application-level work is not
// routing load), while a failed search charges everything it touched —
// the last node too received the message and hunted for a next hop.
func forwarders(res route.Result) []metric.Point {
	if res.Delivered && len(res.Path) > 0 {
		return res.Path[:len(res.Path)-1]
	}
	return res.Path
}

// routeRange routes pairs[i] into results[i] across workers goroutines.
// offset is the global index of pairs[0], which keys each message's rng
// stream — the assignment of messages to workers is irrelevant. A
// non-nil targets slice carries each message's frozen replica set;
// message i then routes to the nearest live member of targets[i]
// instead of pairs[i].to.
func routeRange(g *graph.Graph, opt route.Options, root *rng.Source, pairs []lookup, targets [][]metric.Point, results []route.Result, offset, workers int) error {
	router := route.New(g, opt)
	routeOne := func(i int) (route.Result, error) {
		src := root.Derive(16 + uint64(offset+i))
		if targets != nil {
			return router.RouteAny(src, pairs[i].from, targets[i])
		}
		return router.Route(src, pairs[i].from, pairs[i].to)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for i := range pairs {
			res, err := routeOne(i)
			if err != nil {
				return err
			}
			results[i] = res
		}
		return nil
	}
	var (
		next     int64 = -1
		firstErr error
		mu       sync.Mutex
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(pairs) {
					return
				}
				res, err := routeOne(i)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	return firstErr
}
