package load

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config parameterizes one traffic run. The zero value of every field
// selects a sensible default; Workers never affects results, only
// wall-clock time.
type Config struct {
	// Messages is the number of lookups injected. Zero defaults to 256.
	Messages int
	// Capacity is the per-node service capacity in message-hops per
	// virtual tick; a node serves one message every 1/Capacity ticks.
	// Zero defaults to 1.
	Capacity float64
	// Rate is the network-wide injection rate in messages per virtual
	// tick (message i is injected at tick i/Rate). Zero defaults to 1.
	// Ignored when Arrival is non-nil.
	Rate float64
	// Arrival selects the arrival model feeding the event loop; nil
	// defaults to the fixed-rate open-loop model Periodic(Rate). Poisson
	// and ClosedLoop select the saturation-sweep arrival regimes.
	Arrival Arrival
	// Workers bounds path-computation parallelism in snapshot mode;
	// zero uses GOMAXPROCS. Live mode ignores it — its parallelism
	// comes from Shards. Results are byte-identical for every value.
	Workers int
	// Shards partitions the live event loop across cores: nodes split
	// into Shards contiguous regions of the space's point order, each
	// draining its own event heap in lockstep virtual-time windows one
	// service time long. Zero defaults to 1, the sequential reference
	// mode; results are byte-identical for every value. Live
	// configurations whose forwarding decisions read global state
	// (Penalty, DepthPenalty, a Route.Congestion hook, cache-on-path
	// replication, or closed-loop arrivals under Aggregate) fall back
	// to the sequential loop whatever Shards says, and snapshot mode
	// ignores Shards entirely (a no-op, not an error). Must not exceed
	// the node count in live mode.
	Shards int
	// Route configures the underlying router. TracePath is forced on
	// (the engine needs the visited sequence); Congestion and
	// CongestionWeight are overwritten when Penalty or DepthPenalty is
	// positive.
	Route route.Options
	// Penalty, when positive, enables load-aware routing: greedy with
	// congestion-penalized detours (route.Options.Congestion). The
	// congestion of a node is its charged load divided by the mean
	// live-node load, times Penalty — so Penalty is the detour budget
	// in distance units per multiple-of-mean load, independent of how
	// much traffic has accumulated. Zero keeps the paper's hop-optimal
	// greedy.
	Penalty float64
	// DepthPenalty, when positive, adds an instantaneous-queue-depth
	// term to the congestion signal: a candidate node costs an extra
	// DepthPenalty distance units per message sitting in its queue.
	// Where Penalty reacts to cumulative charged load, DepthPenalty
	// reacts to the backlog right now — the signal that matters near
	// saturation. Both compose (and compose with any dead-end policy,
	// since the congestion-penalized greedy preserves strict metric
	// progress). In snapshot mode the depth is read at each batch
	// boundary from the engine's own queues; in live mode at every
	// forwarding decision.
	DepthPenalty float64
	// BatchSize is how many messages route against one frozen
	// congestion snapshot when Penalty or DepthPenalty is positive —
	// the staleness of load information in a real system. Zero defaults
	// to 32. Cache-on-path replication shares the same batching: cached
	// copies placed during one batch serve traffic from the next, and
	// cache decay (replica.Options.CacheDecay) ages popularity at the
	// same boundaries. Live mode reuses it only as the decay cadence.
	BatchSize int
	// Live switches the engine to event-driven routing: messages
	// advance hop-by-hop at their service completions, and every
	// forwarding decision (Penalty, DepthPenalty, nearest-replica
	// targets, cache observation) reads live state instead of a batch
	// snapshot. Off, the engine reproduces the classic
	// route-then-replay pipeline byte-for-byte.
	Live bool
	// Aggregate, in live mode, coalesces same-key lookups that meet in
	// a node's queue into a single aggregated service: the duplicates
	// ride along and complete when their carrier completes. Requires
	// Live; Result.Aggregated counts the coalesced lookups.
	Aggregate bool
	// PIT, in live mode, gives every node a pending-interest table and
	// makes the response leg first-class traffic: a delivered lookup
	// spawns an answer retracing the reverse path hop by hop through
	// the same FIFO capacity, every request service plants a pending
	// interest at its node, a same-key request arriving while one is
	// pending parks as a waiter instead of forwarding (the network-wide
	// generalization of Aggregate's per-queue merge), and a returning
	// answer multicasts to every recorded waiter. Requires Live, and
	// supersedes Aggregate when both are set (the in-queue merge is a
	// special case of the in-network suppression). Latencies are then
	// measured to answer receipt at the origin, not to delivery.
	PIT bool
	// PITTimeout is the pending-interest lifetime in virtual ticks:
	// how long an entry suppresses duplicates after the service that
	// planted it, and how long a suppressed waiter waits before
	// re-forwarding on its own. Zero defaults to 64 service times
	// (64/Capacity). Meaningful only with PIT.
	PITTimeout float64
	// PITWaiters bounds one pending interest's waiter list; arrivals
	// beyond it forward normally. Zero defaults to 16. Meaningful only
	// with PIT.
	PITWaiters int
	// Churn, when enabled (any field set — see failure.ChurnSpec),
	// schedules node dynamics on the run's virtual clock: background
	// Poisson crash/join churn, an optional correlated regional kill,
	// and an optional flash-crowd join, detected and repaired by the
	// engine's gossip membership layer. Requires Live. The concrete
	// event list is drawn from the run seed (stream 4) before traffic
	// starts, so a fixed (cfg, seed) pins the whole timeline. Note that
	// the engine applies the events to the caller's graph as they fire:
	// after Run returns, g reflects the post-churn world. ProbeTimeout
	// defaults to 4 service times, GossipInterval to 1 service time,
	// GossipFanout to 2, and Horizon (needed by a positive Rate) to the
	// injection span Messages/Rate.
	Churn failure.ChurnSpec
	// Replication, when non-nil and enabled (K > 1 or a positive
	// CacheThreshold), replicates every lookup key through
	// replica.NewPlacement and routes each message to the nearest live
	// replica (route.RouteAny). Dead replicas degrade the set toward
	// plain greedy on the primary; delivered messages feed the
	// placement's popularity counters (at batch boundaries in snapshot
	// mode, per delivery in live mode), so cache-on-path stays
	// deterministic and worker-count independent.
	Replication *replica.Options
	// ReplicaSeed seeds the hash-spread placement; zero derives it from
	// the run seed, so a fixed (cfg, seed) still pins every replica.
	ReplicaSeed uint64
	// Telemetry, when non-nil, attaches the virtual-time observability
	// layer (internal/telemetry) to the engine run: window timeseries,
	// sampled message flights, and the sharded loop's scheduler
	// profile. The recorder only observes — results are byte-identical
	// with it nil or set — and a nil recorder costs nothing.
	Telemetry *telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.Messages == 0 {
		c.Messages = 256
	}
	if c.Capacity == 0 {
		c.Capacity = 1
	}
	if c.Rate == 0 {
		c.Rate = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.PIT {
		// Resolved only under PIT so the zero-value contract holds: a
		// config without PIT carries zero knobs through to the engine.
		if c.PITTimeout == 0 {
			c.PITTimeout = 64 / c.Capacity
		}
		if c.PITWaiters == 0 {
			c.PITWaiters = 16
		}
	}
	if c.Churn.Enabled() {
		// Same discipline as the PIT knobs: resolved only when churn is
		// on, so a churn-free config carries a zero spec to the engine.
		if c.Churn.ProbeTimeout == 0 {
			c.Churn.ProbeTimeout = 4 / c.Capacity
		}
		if c.Churn.GossipInterval == 0 {
			c.Churn.GossipInterval = 1 / c.Capacity
		}
		if c.Churn.GossipFanout == 0 {
			c.Churn.GossipFanout = 2
		}
		if c.Churn.Rate > 0 && c.Churn.Horizon == 0 {
			c.Churn.Horizon = float64(c.Messages) / c.Rate
		}
	}
	return c
}

// ResolvedPITTimeout reports the interest lifetime the configuration
// will actually run with, resolving the zero-value default — what the
// PIT experiments print when the caller left the knob unset.
func (c Config) ResolvedPITTimeout() float64 {
	return c.withDefaults().PITTimeout
}

// Validate rejects nonsensical configurations. It checks a resolved
// configuration: zero-valued fields mean "use the default" to Run, which
// resolves them before validating, so a zero Capacity or Rate here is an
// error, not a default.
func (c Config) Validate() error {
	if c.Messages < 0 {
		return fmt.Errorf("load: negative message count %d", c.Messages)
	}
	for name, v := range map[string]float64{
		"capacity": c.Capacity, "rate": c.Rate,
		"penalty": c.Penalty, "depth penalty": c.DepthPenalty,
	} {
		// NaN slips through ordered comparisons and an infinite rate or
		// capacity degenerates the virtual-time replay, so both are
		// configuration errors, not values to compute with.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("load: %s %g is not finite", name, v)
		}
	}
	if c.Capacity <= 0 || c.Rate <= 0 {
		return fmt.Errorf("load: capacity %g and rate %g must be positive", c.Capacity, c.Rate)
	}
	if c.Penalty < 0 || c.DepthPenalty < 0 {
		return fmt.Errorf("load: congestion penalties %g/%g must be non-negative", c.Penalty, c.DepthPenalty)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("load: negative batch size %d", c.BatchSize)
	}
	if c.Shards < 0 {
		return fmt.Errorf("load: negative shard count %d", c.Shards)
	}
	if c.Aggregate && !c.Live {
		return fmt.Errorf("load: aggregation requires live mode (Config.Live)")
	}
	if c.PIT && !c.Live {
		return fmt.Errorf("load: pending-interest tables require live mode (Config.Live)")
	}
	if math.IsNaN(c.PITTimeout) || math.IsInf(c.PITTimeout, 0) || c.PITTimeout < 0 {
		return fmt.Errorf("load: PIT timeout %g must be finite and non-negative", c.PITTimeout)
	}
	if c.PITWaiters < 0 {
		return fmt.Errorf("load: negative PIT waiter bound %d", c.PITWaiters)
	}
	if !c.PIT && (c.PITTimeout != 0 || c.PITWaiters != 0) {
		return fmt.Errorf("load: PIT knobs (timeout %g, waiters %d) are only meaningful with Config.PIT",
			c.PITTimeout, c.PITWaiters)
	}
	if c.Churn.Enabled() {
		if !c.Live {
			return fmt.Errorf("load: churn requires live mode (Config.Live)")
		}
		if err := c.Churn.Validate(); err != nil {
			return err
		}
	}
	if c.Replication != nil {
		if err := c.Replication.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result reports one traffic run: routing outcomes (the familiar
// sim.SearchStats), the per-node load profile, and the queueing-delay
// picture of the virtual-time event loop.
type Result struct {
	// Workload names the generator that produced the traffic.
	Workload string
	// Arrival names the arrival model that timed the injections.
	Arrival string
	// Replication names the replica placement ("" when disabled).
	Replication string
	// Mode names the engine mode: "snapshot", "live", "live+aggregate",
	// or "live+pit".
	Mode string
	// Plan names the execution plan the engine resolved to
	// ("snapshot", "live-sequential", or "live-sharded") and PlanReason
	// the engine's pinned explanation — how a Shards request actually
	// ran (see engine.Config.Plan).
	Plan, PlanReason string
	// Search aggregates the underlying route results exactly as the
	// single-message experiments do.
	Search sim.SearchStats
	// Injected = Delivered + Failed always holds (the conservation
	// property the tests pin).
	Injected, Delivered, Failed int
	// Aggregated counts the lookups coalesced onto a same-key carrier
	// (zero outside live+aggregate mode). Aggregated lookups still
	// count as delivered or failed with their carrier.
	Aggregated int
	// Suppressed counts PIT suppression events (request arrivals that
	// parked on a pending same-key interest), MulticastFanout the
	// waiters released by returning answers, and PITExpired the waits
	// that ended by timeout instead. All zero outside live+pit mode.
	Suppressed, MulticastFanout, PITExpired int
	// Churn ledger (all zero without Config.Churn). Crashes/Joins count
	// applied schedule events; Stranded counts arrivals that found
	// their node dead, partitioned exactly into StrandResumed +
	// StrandDropped; Reattached counts injections re-homed from a dead
	// source; GossipSends counts membership transmissions (each also a
	// FIFO service); LinksRebuilt counts long links redrawn by repair
	// and rejoin; RumorsConverged/RumorsAbandoned partition the resolved
	// rumors and MembershipLag is the worst event-to-convergence time.
	Crashes, Joins                         int
	Stranded, StrandResumed, StrandDropped int
	Reattached, GossipSends, LinksRebuilt  int
	RumorsConverged, RumorsAbandoned       int
	MembershipLag                          float64
	// Loads counts message-hop services per grid point (index =
	// metric.Point; absent or untouched points hold 0).
	Loads []int
	// ServedBy counts, per grid point, the delivered messages that
	// point consumed — under replication, how the hot key's traffic
	// fanned out across its replicas (index = metric.Point).
	ServedBy []int
	// CachedKeys and CacheCopies report the popularity-triggered
	// cache placements live at the end of the run (zero without a
	// cache threshold; decay may have evicted earlier placements).
	CachedKeys, CacheCopies int
	// MaxLoad is the hottest node's service count; MeanLoad averages
	// over the live nodes. Their ratio is the imbalance headline.
	MaxLoad  int
	MeanLoad float64
	// IdleNodes counts live nodes that serviced nothing.
	IdleNodes int
	// MaxQueueDepth is the deepest any node's FIFO got (including the
	// message in service).
	MaxQueueDepth int
	// Latency quantiles of delivered messages, in virtual ticks
	// (nearest-rank on the completion-time distribution). Zero when
	// nothing was delivered. Under live+pit a lookup completes at
	// answer receipt — the answer service at its origin — so these
	// include the response leg, not just the request's delivery.
	LatencyMean, LatencyP50, LatencyP95, LatencyP99 float64
	// Makespan is the virtual time at which the last service completed;
	// LastInject is the time of the final injection. Their difference
	// is how long the network needed to drain its backlog once
	// injections stopped.
	Makespan, LastInject float64
	// Throughput is delivered messages per virtual tick of Makespan —
	// the y-axis the saturation sweeps plot the knee on.
	Throughput float64
}

// MaxMeanRatio returns MaxLoad/MeanLoad, the load-imbalance headline
// (1 ≈ perfectly balanced). Zero when no load was charged.
func (r *Result) MaxMeanRatio() float64 {
	if r.MeanLoad == 0 {
		return 0
	}
	return float64(r.MaxLoad) / r.MeanLoad
}

// modeName names the engine mode a config selects. PIT supersedes
// Aggregate: with both set the run is live+pit.
func (c Config) modeName() string {
	return c.engineMode().String()
}

// engineMode maps the Live/Aggregate/PIT switches onto the engine's
// Mode enum.
func (c Config) engineMode() engine.Mode {
	switch {
	case c.Live && c.PIT:
		return engine.ModeLivePIT
	case c.Live && c.Aggregate:
		return engine.ModeLiveAggregate
	case c.Live:
		return engine.ModeLive
	default:
		return engine.ModeSnapshot
	}
}

// Run injects cfg.Messages lookups from gen into g and drives them
// through the discrete-event engine (internal/engine). See the package
// comment for the model; the run is deterministic in (g, gen, cfg,
// seed) and independent of cfg.Workers and cfg.Shards.
func Run(g *graph.Graph, gen Generator, cfg Config, seed uint64) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(seed)
	if err := gen.Bind(g, root.Derive(0)); err != nil {
		return nil, err
	}

	// Draw every lookup pair up front from one sequential stream: the
	// workload is then fixed before any parallelism starts.
	pairSrc := root.Derive(1)
	msgs := make([]engine.Message, cfg.Messages)
	for i := range msgs {
		from, to, err := gen.Pair(pairSrc)
		if err != nil {
			return nil, err
		}
		msgs[i] = engine.Message{From: from, Key: to}
	}

	// Resolve the arrival model and draw its schedule from one
	// dedicated sequential stream, fixing the injection times (and, for
	// Poisson, their randomness) before any parallelism starts.
	arr := cfg.Arrival
	if arr == nil {
		arr = Periodic(cfg.Rate)
	}
	// Config.Validate covers Rate but not a caller-supplied Arrival;
	// the built-in models know how to reject their own bad parameters
	// (a non-positive rate would prime Inf/NaN injection times).
	if v, ok := arr.(interface{ validate() error }); ok {
		if err := v.validate(); err != nil {
			return nil, err
		}
	}
	primed := arr.Prime(cfg.Messages, root.Derive(2))

	// Resolve the replica placement, if any. The placement is fed back
	// (cache observations, decay) only from the engine's sequential
	// event loop and its batch boundaries — caching configurations are
	// ineligible for the sharded live loop, which consults static
	// placements read-only — so replica-aware runs keep the worker- and
	// shard-count independence contracts.
	var placement *replica.Placement
	if cfg.Replication != nil && cfg.Replication.Enabled() {
		rseed := cfg.ReplicaSeed
		if rseed == 0 {
			rseed = root.Derive(3).Uint64()
		}
		var err error
		placement, err = replica.NewPlacement(g.Space(), *cfg.Replication, rseed)
		if err != nil {
			return nil, err
		}
	}

	// Expand the churn spec into its concrete event list from stream 4,
	// over the graph's pre-traffic alive set. A knobs-only spec (no
	// rate, kill, or flash) attaches the machinery with zero events —
	// byte-identical to a churn-free run (the differential-test
	// configuration) — and consumes no randomness beyond the unused
	// Derive.
	var churn engine.ChurnConfig
	if cfg.Churn.Enabled() {
		events, err := cfg.Churn.Generate(g, root.Derive(4))
		if err != nil {
			return nil, err
		}
		churn = engine.ChurnConfig{
			Events:         events,
			ProbeTimeout:   cfg.Churn.ProbeTimeout,
			GossipInterval: cfg.Churn.GossipInterval,
			GossipFanout:   cfg.Churn.GossipFanout,
			Repair:         cfg.Churn.Repair,
		}
	}

	if cfg.Telemetry != nil {
		cfg.Telemetry.Label(fmt.Sprintf("%s/%s/%s", gen.Name(), arr.Name(), cfg.modeName()))
	}
	out, err := engine.Run(g, msgs, engine.Schedule{Initial: primed, Completed: arr.Completed},
		engine.Config{
			Capacity:     cfg.Capacity,
			Workers:      cfg.Workers,
			Shards:       cfg.Shards,
			Route:        cfg.Route,
			Penalty:      cfg.Penalty,
			DepthPenalty: cfg.DepthPenalty,
			BatchSize:    cfg.BatchSize,
			Mode:         cfg.engineMode(),
			PITTimeout:   cfg.PITTimeout,
			PITWaiters:   cfg.PITWaiters,
			Churn:        churn,
			Placement:    placement,
			Telemetry:    cfg.Telemetry,
		}, root)
	if err != nil {
		return nil, err
	}

	r := &Result{
		Workload:        gen.Name(),
		Arrival:         arr.Name(),
		Mode:            cfg.modeName(),
		Plan:            out.Plan.String(),
		PlanReason:      out.PlanReason,
		Injected:        cfg.Messages,
		Aggregated:      out.Aggregated,
		Suppressed:      out.Suppressed,
		MulticastFanout: out.MulticastFanout,
		PITExpired:      out.PITExpired,
		Crashes:         out.Crashes,
		Joins:           out.Joins,
		Stranded:        out.Stranded,
		StrandResumed:   out.StrandResumed,
		StrandDropped:   out.StrandDropped,
		Reattached:      out.Reattached,
		GossipSends:     out.GossipSends,
		LinksRebuilt:    out.LinksRebuilt,
		RumorsConverged: out.RumorsConverged,
		RumorsAbandoned: out.RumorsAbandoned,
		MembershipLag:   out.MembershipLag,
		Loads:           out.Loads,
		ServedBy:        make([]int, g.Size()),
		MaxQueueDepth:   out.MaxQueueDepth,
		Makespan:        out.Makespan,
		LastInject:      out.LastInject,
	}
	if placement != nil {
		r.Replication = placement.Name()
		r.CachedKeys = placement.CachedKeys()
		r.CacheCopies = placement.CachedCopies()
	}
	for _, res := range out.Results {
		r.Search.Record(res)
		if res.Delivered {
			r.Delivered++
			r.ServedBy[res.Target]++
		} else {
			r.Failed++
		}
	}
	alive := g.AliveCount()
	var total int
	for i, l := range out.Loads {
		if l > r.MaxLoad {
			r.MaxLoad = l
		}
		total += l
		if l == 0 && g.Alive(metric.Point(i)) {
			r.IdleNodes++
		}
	}
	if alive > 0 {
		r.MeanLoad = float64(total) / float64(alive)
	}
	r.LatencyMean, r.LatencyP50, r.LatencyP95, r.LatencyP99 = latencySummary(out.Latencies)
	if out.Makespan > 0 {
		r.Throughput = float64(r.Delivered) / out.Makespan
	}
	return r, nil
}
