package load

import (
	"math"
	"testing"

	"repro/internal/route"
)

// TestPITConfigValidation pins the load-layer PIT contract: PIT
// requires live mode, the knobs are meaningless without PIT, and a
// zero-valued PIT config resolves working defaults.
func TestPITConfigValidation(t *testing.T) {
	g := buildRing(t, 64, 4, 18)
	bad := []Config{
		{Messages: 10, PIT: true},                             // snapshot + PIT
		{Messages: 10, PITTimeout: 8},                         // knob without PIT
		{Messages: 10, PITWaiters: 4},                         // knob without PIT
		{Messages: 10, Live: true, PIT: true, PITTimeout: -1}, // negative lifetime
		{Messages: 10, Live: true, PIT: true, PITWaiters: -2}, // negative bound
		{Messages: 10, Live: true, PIT: true, PITTimeout: math.NaN()},
		{Messages: 10, Live: true, PIT: true, PITTimeout: math.Inf(1)},
	}
	for i, cfg := range bad {
		if _, err := Run(g, Uniform(), cfg, 1); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	// The zero-value contract: Config{Live, PIT} alone resolves the
	// default interest lifetime and waiter bound.
	res, err := Run(g, Uniform(), Config{Messages: 20, Live: true, PIT: true}, 1)
	if err != nil {
		t.Fatalf("zero-valued PIT config should use defaults: %v", err)
	}
	if res.Mode != "live+pit" {
		t.Errorf("Mode = %q, want %q", res.Mode, "live+pit")
	}
	if res.Plan == "" || res.PlanReason == "" {
		t.Errorf("plan not recorded: %q / %q", res.Plan, res.PlanReason)
	}
}

// TestPITFloodSuppression exercises the response path end to end at
// the load layer: a flood under PIT suppresses most redundant
// forwarding, answers everything, balances the suppression ledger, and
// measures latency to answer receipt — strictly beyond the
// request-only latency of the same flood without PIT.
func TestPITFloodSuppression(t *testing.T) {
	g := buildRing(t, 256, 8, 21)
	cfg := Config{
		Messages: 400,
		Live:     true,
		Route:    route.Options{DeadEnd: route.Backtrack},
	}
	live, err := Run(g, Flood(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PIT = true
	pit, err := Run(g, Flood(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pit.Injected != pit.Delivered+pit.Failed {
		t.Fatalf("conservation broke: %d != %d + %d", pit.Injected, pit.Delivered, pit.Failed)
	}
	if pit.Suppressed == 0 || pit.MulticastFanout == 0 {
		t.Fatalf("flood exercised no suppression: suppressed %d fanout %d",
			pit.Suppressed, pit.MulticastFanout)
	}
	if pit.Suppressed != pit.MulticastFanout+pit.PITExpired {
		t.Fatalf("suppression imbalance: %d != %d + %d",
			pit.Suppressed, pit.MulticastFanout, pit.PITExpired)
	}
	if pit.LatencyMean <= 0 {
		t.Fatal("no answer-receipt latency recorded")
	}
	// The request-only regression: with PIT off the counters stay
	// silent and nothing about the live run changed.
	if live.Suppressed != 0 || live.MulticastFanout != 0 || live.PITExpired != 0 {
		t.Fatalf("PIT counters leaked into a non-PIT run: %d/%d/%d",
			live.Suppressed, live.MulticastFanout, live.PITExpired)
	}
	if live.Mode != "live" {
		t.Errorf("Mode = %q, want %q", live.Mode, "live")
	}
}

// TestPITLatencyIsAnswerReceipt pins the accounting on an uncontended
// run: with every key distinct nothing is suppressed, so each PIT
// latency is its request latency plus one full answer leg — the mean
// must strictly exceed the request-only mean, while the request-only
// run itself is untouched by the PIT code existing.
func TestPITLatencyIsAnswerReceipt(t *testing.T) {
	g := buildRing(t, 256, 8, 21)
	cfg := Config{
		Messages: 200,
		Live:     true,
		Rate:     0.25, // light load: answer legs traverse idle queues
		Route:    route.Options{DeadEnd: route.Backtrack},
	}
	live, err := Run(g, Uniform(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PIT = true
	pit, err := Run(g, Uniform(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pit.Delivered != live.Delivered {
		t.Fatalf("delivery set changed: %d vs %d", pit.Delivered, live.Delivered)
	}
	if pit.LatencyMean <= live.LatencyMean {
		t.Errorf("answer-receipt mean %g not beyond request-only mean %g",
			pit.LatencyMean, live.LatencyMean)
	}
	if pit.LatencyP99 <= live.LatencyP99 {
		t.Errorf("answer-receipt p99 %g not beyond request-only p99 %g",
			pit.LatencyP99, live.LatencyP99)
	}
}
