package load_test

// The property harness (internal/proptest) retrofitted onto the
// traffic pipeline: random graphs and workloads, the
// byte-identical-across-workers replay contract. Runs under the CI
// `go test -run Prop -count=2` determinism step.

import (
	"testing"

	"repro/internal/load"
	"repro/internal/proptest"
	"repro/internal/route"
)

func TestPropLoadWorkerInvariance(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		gen := proptest.New(uint64(700 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 150,
			Penalty:  float64(iter % 2),
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		res := proptest.CheckWorkerInvariance(t, g, wl, cfg, uint64(800+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d, workload %s)", iter, 700+iter, wl.Name())
		}
		if res.Injected != res.Delivered+res.Failed {
			t.Fatalf("iter %d: conservation broke", iter)
		}
	}
}

func TestPropArrivalModelsWorkerInvariance(t *testing.T) {
	for iter := 0; iter < 6; iter++ {
		gen := proptest.New(uint64(900 + iter))
		g := gen.Graph(t)
		cfg := load.Config{Messages: 150, Route: route.Options{DeadEnd: route.Backtrack}}
		switch iter % 3 {
		case 0:
			cfg.Arrival = load.Poisson(2)
		case 1:
			cfg.Arrival = load.ClosedLoop(8, 1)
		default:
			cfg.Arrival = load.Periodic(4)
		}
		proptest.CheckWorkerInvariance(t, g, gen.Workload(), cfg, uint64(950+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d)", iter, 900+iter)
		}
	}
}
