package load_test

// The property harness (internal/proptest) retrofitted onto the
// traffic pipeline: random graphs and workloads, the
// byte-identical-across-workers replay contract, and the engine
// equivalence oracle — the engine's snapshot mode against the
// preserved pre-engine pipeline (legacy_test.go). Runs under the CI
// `go test -run Prop -count=2` determinism step.

import (
	"reflect"
	"testing"

	"repro/internal/load"
	"repro/internal/proptest"
	"repro/internal/replica"
	"repro/internal/route"
)

func TestPropLoadWorkerInvariance(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		gen := proptest.New(uint64(700 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 150,
			Penalty:  float64(iter % 2),
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		res := proptest.CheckWorkerInvariance(t, g, wl, cfg, uint64(800+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d, workload %s)", iter, 700+iter, wl.Name())
		}
		if res.Injected != res.Delivered+res.Failed {
			t.Fatalf("iter %d: conservation broke", iter)
		}
	}
}

// TestPropEngineMatchesLegacyPipeline is the refactor's acceptance
// property: on random universes — every workload, congestion policy,
// batching cadence, arrival model, and replication mix — the engine in
// snapshot mode must reproduce the pre-engine route-then-replay
// pipeline byte-for-byte, including the quadratic prefix-replay depth
// probes it replaced with frontier lookups.
func TestPropEngineMatchesLegacyPipeline(t *testing.T) {
	for iter := 0; iter < 14; iter++ {
		gen := proptest.New(uint64(8100 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 180,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		switch iter % 4 {
		case 1:
			cfg.Penalty = 1
		case 2:
			cfg.DepthPenalty = 1
			cfg.BatchSize = 16
		case 3:
			cfg.Penalty = 0.5
			cfg.DepthPenalty = 2
			cfg.BatchSize = 48
		}
		switch iter % 3 {
		case 1:
			cfg.Arrival = load.Poisson(4)
		case 2:
			cfg.Arrival = load.ClosedLoop(6, 0.5)
		}
		switch iter % 5 {
		case 1:
			cfg.Replication = &replica.Options{K: 3}
		case 2:
			cfg.Replication = &replica.Options{K: 2, CacheThreshold: 8, CacheCopies: 2}
		case 3:
			cfg.Replication = &replica.Options{K: 2, CacheThreshold: 8, CacheCopies: 2, CacheDecay: true}
		}
		seed := uint64(8200 + iter)
		want, err := legacyRun(g, wl, cfg, seed)
		if err != nil {
			t.Fatalf("iter %d: legacy: %v", iter, err)
		}
		// Reusing wl across both runs is safe because every
		// Generator.Bind fully resets its state from the seed — the
		// second Bind redraws the identical workload.
		got, err := load.Run(g, wl, cfg, seed)
		if err != nil {
			t.Fatalf("iter %d: engine: %v", iter, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("iter %d (seed %d, workload %s, cfg %+v): engine diverged from legacy pipeline",
				iter, 8100+iter, wl.Name(), cfg)
		}
	}
}

// TestPropLiveWorkerInvariance pins the live modes' determinism
// contract: the live loop takes its parallelism from Shards, never
// from Workers, so Workers must not change a byte, with and without
// aggregation, penalties, and replication.
func TestPropLiveWorkerInvariance(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		gen := proptest.New(uint64(8300 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 150,
			Live:     true,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		if iter%2 == 1 {
			cfg.Aggregate = true
		}
		if iter%3 == 1 {
			cfg.Penalty = 1
			cfg.DepthPenalty = 1
		}
		if iter%4 == 2 {
			cfg.Replication = &replica.Options{K: 2, CacheThreshold: 10}
		}
		res := proptest.CheckWorkerInvariance(t, g, wl, cfg, uint64(8400+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d, workload %s)", iter, 8300+iter, wl.Name())
		}
		if res.Injected != res.Delivered+res.Failed {
			t.Fatalf("iter %d: conservation broke", iter)
		}
	}
}

// TestPropLivePlainMatchesSnapshot pins the modes' structural
// agreement: without congestion feedback, caching, or aggregation the
// per-hop decisions are identical, so live and snapshot runs must be
// byte-identical (only the mode label differs).
func TestPropLivePlainMatchesSnapshot(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		gen := proptest.New(uint64(8500 + iter))
		g := gen.Graph(t)
		wl := gen.Workload()
		cfg := load.Config{
			Messages: 150,
			Route:    route.Options{DeadEnd: route.Backtrack},
		}
		if iter%2 == 1 {
			cfg.Arrival = load.Poisson(3)
		}
		if iter%4 == 2 {
			cfg.Replication = &replica.Options{K: 3}
		}
		seed := uint64(8600 + iter)
		snap, err := load.Run(g, wl, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Live = true
		live, err := load.Run(g, wl, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		// The mode label and the resolved plan are the only fields
		// allowed to differ.
		live.Mode = snap.Mode
		live.Plan, live.PlanReason = snap.Plan, snap.PlanReason
		if !reflect.DeepEqual(snap, live) {
			t.Fatalf("iter %d (seed %d, workload %s): plain live diverged from snapshot",
				iter, 8500+iter, wl.Name())
		}
	}
}

func TestPropArrivalModelsWorkerInvariance(t *testing.T) {
	for iter := 0; iter < 6; iter++ {
		gen := proptest.New(uint64(900 + iter))
		g := gen.Graph(t)
		cfg := load.Config{Messages: 150, Route: route.Options{DeadEnd: route.Backtrack}}
		switch iter % 3 {
		case 0:
			cfg.Arrival = load.Poisson(2)
		case 1:
			cfg.Arrival = load.ClosedLoop(8, 1)
		default:
			cfg.Arrival = load.Periodic(4)
		}
		proptest.CheckWorkerInvariance(t, g, gen.Workload(), cfg, uint64(950+iter))
		if t.Failed() {
			t.Fatalf("iter %d failed (seed %d)", iter, 900+iter)
		}
	}
}
