package load_test

// legacyRun is the pre-engine traffic pipeline — route every message
// against a frozen batch congestion snapshot, then replay all hops
// through per-node FIFO queues, probing instantaneous depth by
// re-replaying traffic prefixes — preserved verbatim as an executable
// oracle. The equivalence property (prop_test.go) drives it and the
// engine-backed load.Run over the same generated universes and
// requires byte-identical results: the refactor's core
// behaviour-preservation claim, checked continuously rather than
// trusted once.

import (
	"container/heap"
	"runtime"
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
)

type legacyQueuedMessage struct {
	inject    float64
	path      []metric.Point
	delivered bool
}

type legacyArrival struct {
	time float64
	msg  int
	idx  int
}

type legacyArrivalHeap []legacyArrival

func (h legacyArrivalHeap) Len() int { return len(h) }
func (h legacyArrivalHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].msg != h[j].msg {
		return h[i].msg < h[j].msg
	}
	return h[i].idx < h[j].idx
}
func (h legacyArrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyArrivalHeap) Push(x interface{}) { *h = append(*h, x.(legacyArrival)) }
func (h *legacyArrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type legacyNodeQueue struct {
	busyUntil float64
	finish    []float64
	head      int
}

func (q *legacyNodeQueue) depthAt(t float64) int {
	for q.head < len(q.finish) && q.finish[q.head] <= t {
		q.head++
	}
	if q.head == len(q.finish) {
		q.finish = q.finish[:0]
		q.head = 0
	}
	return len(q.finish) - q.head
}

type legacyQueueOutcome struct {
	loads         []int
	maxQueueDepth int
	latencies     []float64
	lastInject    float64
	makespan      float64
	probeDepths   []int
}

func legacySimulateQueues(size int, msgs []legacyQueuedMessage, serviceTime float64,
	initial []load.Injection, completed func(msg int, at float64) (load.Injection, bool),
	probe float64) legacyQueueOutcome {
	out := legacyQueueOutcome{loads: make([]int, size)}
	if probe >= 0 {
		out.probeDepths = make([]int, size)
	}
	queues := make([]legacyNodeQueue, size)
	h := make(legacyArrivalHeap, 0, len(initial))
	enqueue := func(inj load.Injection) {
		for {
			msgs[inj.Msg].inject = inj.Time
			if inj.Time > out.lastInject {
				out.lastInject = inj.Time
			}
			if len(msgs[inj.Msg].path) > 0 {
				heap.Push(&h, legacyArrival{time: inj.Time, msg: inj.Msg, idx: 0})
				return
			}
			if completed == nil {
				return
			}
			next, ok := completed(inj.Msg, inj.Time)
			if !ok {
				return
			}
			inj = next
		}
	}
	for _, inj := range initial {
		enqueue(inj)
	}
	for h.Len() > 0 {
		a := heap.Pop(&h).(legacyArrival)
		msg := &msgs[a.msg]
		node := msg.path[a.idx]
		q := &queues[node]
		if depth := q.depthAt(a.time) + 1; depth > out.maxQueueDepth {
			out.maxQueueDepth = depth
		}
		start := a.time
		if q.busyUntil > start {
			start = q.busyUntil
		}
		finish := start + serviceTime
		q.busyUntil = finish
		q.finish = append(q.finish, finish)
		out.loads[node]++
		if finish > out.makespan {
			out.makespan = finish
		}
		if out.probeDepths != nil && a.time <= probe && probe < finish {
			out.probeDepths[node]++
		}
		if a.idx+1 < len(msg.path) {
			heap.Push(&h, legacyArrival{time: finish, msg: a.msg, idx: a.idx + 1})
			continue
		}
		if msg.delivered {
			out.latencies = append(out.latencies, finish-msg.inject)
		}
		if completed != nil {
			if next, ok := completed(a.msg, finish); ok {
				enqueue(next)
			}
		}
	}
	return out
}

// legacyDepthSnapshot is the quadratic prefix-replay probe the engine
// replaced: replay messages [0, start) from scratch and read queue
// depths at the batch's injection time.
func legacyDepthSnapshot(size int, msgs []legacyQueuedMessage, primed []load.Injection,
	arr load.Arrival, serviceTime float64, start int) []int {
	initial := make([]load.Injection, 0, start)
	for _, inj := range primed {
		if inj.Msg < start {
			initial = append(initial, inj)
		}
	}
	completed := func(m int, at float64) (load.Injection, bool) {
		next, ok := arr.Completed(m, at)
		if !ok || next.Msg >= start {
			return load.Injection{}, false
		}
		return next, true
	}
	var probe float64
	if len(primed) == len(msgs) && start < len(primed) {
		probe = primed[start].Time
	} else {
		probe = legacySimulateQueues(size, msgs, serviceTime, initial, completed, -1).lastInject
	}
	return legacySimulateQueues(size, msgs, serviceTime, initial, completed, probe).probeDepths
}

type legacyLookup struct{ from, to metric.Point }

func legacyForwarders(res route.Result) []metric.Point {
	if res.Delivered && len(res.Path) > 0 {
		return res.Path[:len(res.Path)-1]
	}
	return res.Path
}

func legacyLatencySummary(latencies []float64) (mean, p50, p95, p99 float64) {
	if len(latencies) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	var total float64
	for _, v := range sorted {
		total += v
	}
	q := func(q float64) float64 {
		rank := int(q*float64(len(sorted))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		return sorted[rank]
	}
	return total / float64(len(sorted)), q(0.50), q(0.95), q(0.99)
}

// legacyRun reproduces the pre-engine load.Run: sequential pair and
// schedule draws, batch-snapshot routing with per-message rng streams,
// prefix-replay depth probes, batch-boundary cache observation, and a
// single whole-schedule queue replay at the end.
func legacyRun(g *graph.Graph, gen load.Generator, cfg load.Config, seed uint64) (*load.Result, error) {
	if cfg.Messages == 0 {
		cfg.Messages = 256
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 1
	}
	if cfg.Rate == 0 {
		cfg.Rate = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	root := rng.New(seed)
	if err := gen.Bind(g, root.Derive(0)); err != nil {
		return nil, err
	}
	pairSrc := root.Derive(1)
	pairs := make([]legacyLookup, cfg.Messages)
	for i := range pairs {
		from, to, err := gen.Pair(pairSrc)
		if err != nil {
			return nil, err
		}
		pairs[i] = legacyLookup{from, to}
	}
	arr := cfg.Arrival
	if arr == nil {
		arr = load.Periodic(cfg.Rate)
	}
	primed := arr.Prime(cfg.Messages, root.Derive(2))
	serviceTime := 1 / cfg.Capacity

	var placement *replica.Placement
	if cfg.Replication != nil && cfg.Replication.Enabled() {
		rseed := cfg.ReplicaSeed
		if rseed == 0 {
			rseed = root.Derive(3).Uint64()
		}
		var err error
		placement, err = replica.NewPlacement(g.Space(), *cfg.Replication, rseed)
		if err != nil {
			return nil, err
		}
	}

	aware := cfg.Penalty > 0 || cfg.DepthPenalty > 0
	caching := placement != nil && cfg.Replication.CacheThreshold > 0
	ropt := cfg.Route
	ropt.TracePath = true
	if aware {
		ropt.Congestion = nil
		ropt.CongestionWeight = 0
	}
	results := make([]route.Result, cfg.Messages)
	msgs := make([]legacyQueuedMessage, cfg.Messages)
	charged := make([]int, g.Size())
	batch := cfg.Messages
	if aware || caching {
		batch = cfg.BatchSize
	}
	for start := 0; start < cfg.Messages; start += batch {
		end := start + batch
		if end > cfg.Messages {
			end = cfg.Messages
		}
		if placement != nil && placement.Decaying() && start > 0 {
			placement.Decay()
		}
		opt := ropt
		if aware && start > 0 {
			snapshot := append([]int(nil), charged...)
			var loadScale float64
			if cfg.Penalty > 0 {
				var total int
				for i, c := range snapshot {
					if g.Alive(metric.Point(i)) {
						total += c
					}
				}
				if total > 0 {
					loadScale = cfg.Penalty * float64(g.AliveCount()) / float64(total)
				}
			}
			var depth []int
			if cfg.DepthPenalty > 0 {
				depth = legacyDepthSnapshot(g.Size(), msgs, primed, arr, serviceTime, start)
			}
			if loadScale > 0 || depth != nil {
				depthPenalty := cfg.DepthPenalty
				opt.Congestion = func(q metric.Point) float64 {
					s := float64(snapshot[q]) * loadScale
					if depth != nil {
						s += depthPenalty * float64(depth[q])
					}
					return s
				}
				opt.CongestionWeight = 1
			}
		}
		router := route.New(g, opt)
		for i := start; i < end; i++ {
			src := root.Derive(16 + uint64(i))
			var res route.Result
			var err error
			if placement != nil {
				res, err = router.RouteAny(src, pairs[i].from, placement.Targets(pairs[i].to))
			} else {
				res, err = router.Route(src, pairs[i].from, pairs[i].to)
			}
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		for i := start; i < end; i++ {
			msgs[i] = legacyQueuedMessage{path: legacyForwarders(results[i]), delivered: results[i].Delivered}
			for _, p := range msgs[i].path {
				charged[p]++
			}
			if caching && results[i].Delivered {
				placement.Observe(pairs[i].to, results[i].Path)
			}
		}
	}

	out := legacySimulateQueues(g.Size(), msgs, serviceTime, primed, arr.Completed, -1)

	r := &load.Result{
		Workload:      gen.Name(),
		Arrival:       arr.Name(),
		Mode:          "snapshot",
		Plan:          "snapshot",
		PlanReason:    engine.PlanReasonSnapshot,
		Injected:      cfg.Messages,
		Loads:         out.loads,
		ServedBy:      make([]int, g.Size()),
		MaxQueueDepth: out.maxQueueDepth,
		Makespan:      out.makespan,
		LastInject:    out.lastInject,
	}
	if placement != nil {
		r.Replication = placement.Name()
		r.CachedKeys = placement.CachedKeys()
		r.CacheCopies = placement.CachedCopies()
	}
	for _, res := range results {
		r.Search.Record(res)
		if res.Delivered {
			r.Delivered++
			r.ServedBy[res.Target]++
		} else {
			r.Failed++
		}
	}
	alive := g.AliveCount()
	var total int
	for i, l := range out.loads {
		if l > r.MaxLoad {
			r.MaxLoad = l
		}
		total += l
		if l == 0 && g.Alive(metric.Point(i)) {
			r.IdleNodes++
		}
	}
	if alive > 0 {
		r.MeanLoad = float64(total) / float64(alive)
	}
	r.LatencyMean, r.LatencyP50, r.LatencyP95, r.LatencyP99 = legacyLatencySummary(out.latencies)
	if out.makespan > 0 {
		r.Throughput = float64(r.Delivered) / out.makespan
	}
	return r, nil
}
