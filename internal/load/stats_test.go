package load

import (
	"math"
	"testing"
)

func TestLatencySummary(t *testing.T) {
	mean, p50, p95, p99 := latencySummary(nil)
	if mean != 0 || p50 != 0 || p95 != 0 || p99 != 0 {
		t.Error("empty summary should be all zero")
	}
	lat := make([]float64, 100)
	for i := range lat {
		lat[i] = float64(i + 1) // 1..100
	}
	mean, p50, p95, p99 = latencySummary(lat)
	if math.Abs(mean-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", mean)
	}
	if p50 != 50 || p95 != 95 || p99 != 99 {
		t.Errorf("quantiles = %v/%v/%v, want 50/95/99", p50, p95, p99)
	}
}
