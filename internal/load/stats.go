package load

import (
	"sort"

	"repro/internal/mathx"
	"repro/internal/metric"
)

// latencySummary returns the mean and the nearest-rank p50/p95/p99 of
// the given latencies. All zeros on empty input (nothing delivered).
func latencySummary(latencies []float64) (mean, p50, p95, p99 float64) {
	if len(latencies) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	var total float64
	for _, v := range sorted {
		total += v
	}
	return total / float64(len(sorted)),
		mathx.NearestRank(sorted, 0.50),
		mathx.NearestRank(sorted, 0.95),
		mathx.NearestRank(sorted, 0.99)
}

// LoadHistogram buckets the per-node service counts into a power-of-two
// histogram over the loaded nodes (idle nodes are in Result.IdleNodes).
// Nil when nothing was loaded.
func (r *Result) LoadHistogram() *mathx.Histogram {
	if r.MaxLoad == 0 {
		return nil
	}
	h := mathx.NewLogHistogram(r.MaxLoad)
	for _, l := range r.Loads {
		if l > 0 {
			h.Add(l)
		}
	}
	return h
}

// MaxServed returns the largest per-point delivery count — how
// concentrated the consumption side of the traffic is. Replicating a
// hot key splits its deliveries across replicas, so MaxServed drops
// while total deliveries stay put.
func (r *Result) MaxServed() int {
	max := 0
	for _, c := range r.ServedBy {
		if c > max {
			max = c
		}
	}
	return max
}

// ServingPoints returns how many points consumed at least one delivered
// message — under a flood, the number of replicas actually absorbing
// the hot key's traffic.
func (r *Result) ServingPoints() int {
	n := 0
	for _, c := range r.ServedBy {
		if c > 0 {
			n++
		}
	}
	return n
}

// HottestNodes returns the k most-loaded points, hottest first (load
// ties break toward the lower point id). Useful for flood diagnostics
// and the hotspot example.
func (r *Result) HottestNodes(k int) []metric.Point {
	type nodeLoad struct {
		p metric.Point
		l int
	}
	loaded := make([]nodeLoad, 0, k)
	for i, l := range r.Loads {
		if l > 0 {
			loaded = append(loaded, nodeLoad{metric.Point(i), l})
		}
	}
	sort.Slice(loaded, func(i, j int) bool {
		if loaded[i].l != loaded[j].l {
			return loaded[i].l > loaded[j].l
		}
		return loaded[i].p < loaded[j].p
	})
	if k > len(loaded) {
		k = len(loaded)
	}
	out := make([]metric.Point, k)
	for i := 0; i < k; i++ {
		out[i] = loaded[i].p
	}
	return out
}
