// Package load models the system under sustained traffic — the
// production question the paper's single-message experiments leave open:
// which nodes melt first, and does fault-tolerant greedy routing also
// balance load?
//
// The subsystem has three parts:
//
//   - Workload generators (Generator): seeded, dimension-generic sources
//     of (from, to) lookup pairs — uniform traffic, Zipf-popular hotspot
//     keys, skewed source populations, and an adversarial single-target
//     flood.
//
//   - A virtual-time queueing simulator (Run): it injects Messages
//     concurrent lookups into a built graph.Graph at a configurable
//     rate, routes each one with package route, then replays every hop
//     against the transit node's FIFO queue under a per-node service
//     capacity. It reports per-node load (hops serviced), max/mean
//     load, peak queue depth, and p50/p95/p99 end-to-end latency
//     alongside the ordinary sim.SearchStats.
//
//   - A congestion feedback loop: with Config.Penalty > 0 the router
//     runs route's congestion-penalized greedy (Options.Congestion),
//     fed by the loads the simulator has already charged; congestion
//     snapshots refresh every Config.BatchSize messages, modelling the
//     stale load information a real system would gossip.
//
// Determinism: a run is a pure function of (graph, generator, Config
// minus Workers, seed). Worker goroutines only parallelize per-message
// path computation, and every message routes from its own derived rng
// stream, so results are byte-identical for any Workers value — the
// property the regression suite pins.
package load
