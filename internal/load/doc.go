// Package load models the system under sustained traffic — the
// production question the paper's single-message experiments leave open:
// which nodes melt first, at what offered load does the network stop
// keeping up, and does fault-tolerant greedy routing also balance load?
//
// The subsystem has five parts:
//
//   - Workload generators (Generator): seeded, dimension-generic sources
//     of (from, to) lookup pairs — uniform traffic, Zipf-popular hotspot
//     keys, skewed source populations, and an adversarial single-target
//     flood.
//
//   - Arrival models (Arrival): when those lookups enter the network.
//     Periodic and Poisson are open-loop — every injection time is fixed
//     up front at offered rate λ, so a saturated network builds
//     unbounded queues. ClosedLoop models N clients with think time,
//     whose offered load self-limits as latency grows.
//
//   - The discrete-event engine (internal/engine, driven by Run): one
//     virtual-time event loop in which routing, FIFO queueing,
//     replication, and cache-on-path share a clock. Run injects
//     Messages lookups under the arrival model and reports per-node
//     load (hops serviced), max/mean load, peak queue depth,
//     p50/p95/p99 end-to-end latency — injection to delivery, or to
//     answer receipt at the origin when the response path is on —
//     makespan and delivered throughput alongside the ordinary
//     sim.SearchStats.
//
//   - Node dynamics (Config.Churn, a failure.ChurnSpec): background
//     crash/join churn, correlated regional kills, and flash-crowd
//     joins, expanded into a seeded event schedule and applied inside
//     the engine's event loop on the same virtual clock as the
//     traffic. Failures are detected by probe timeout, disseminated by
//     gossip membership (each send a service on the sender's FIFO),
//     and repaired by redrawing the §5 long-range links; in-flight
//     messages at a dying node strand and re-forward. Churn requires
//     Live — snapshot mode routes whole paths against a static graph —
//     and the Result churn ledger (Crashes through MembershipLag)
//     accounts exactly for every event, strand, and rumor.
//
//   - A saturation sweep (Sweep): repeated runs at stepped-then-bisected
//     load hunting the capacity knee — the largest offered load at which
//     queues still drain (delivered throughput tracks λ) and the p99
//     tail stays bounded. The sweep reports the whole
//     latency-vs-throughput curve (viz.ThroughputLatency plots it) plus
//     the knee, per routing policy and engine mode.
//
// # Snapshot vs live semantics
//
// With Config.Live off (the default), messages route in congestion-
// snapshot batches of Config.BatchSize and then flow through the
// queues — the classic route-then-replay pipeline, reproduced
// byte-for-byte by the engine's snapshot mode. The congestion feedback
// loops are batch-grained: Config.Penalty feeds routing the cumulative
// loads charged by earlier batches, Config.DepthPenalty the queue
// depths at the batch boundary (read in O(1) off the engine's own
// queues), and cache-on-path placements made during one batch serve
// the next; replica.Options.CacheDecay ages popularity at the same
// boundaries. The staleness is the model: a real system gossips load
// information, it does not observe it instantaneously.
//
// With Config.Live on, there are no batches: each message advances
// hop-by-hop at its service completions (route.Walker), and every
// forwarding decision reads the load, queue depth, and replica
// placement of that instant — the paper's online routing model
// extended to congestion state. Config.Aggregate additionally
// coalesces same-key lookups that meet in a node's queue into one
// aggregated service, the NDN-style batching that breaks the flood
// knee past what replication alone buys (Result.Aggregated counts the
// coalesced lookups).
//
// Config.PIT instead turns on the pending-interest response path
// (engine.ModeLivePIT): every request service plants a pending
// interest at its node, later same-key lookups park on a pending
// interest anywhere in the network instead of forwarding
// (Result.Suppressed), and the answer retraces the reverse path
// through the same per-node FIFOs, multicasting to recorded waiters as
// it goes (Result.MulticastFanout releases, Result.PITExpired
// timeouts; the three counters balance exactly). Latencies and
// percentiles then measure to answer receipt, so PIT results are
// charged the full round trip — sweeps account for the protocol's
// fixed strand tail (one interest lifetime) when judging stability,
// see SweepConfig.P99Bound. Config.PITTimeout and Config.PITWaiters
// bound an interest's lifetime and waiter list.
//
// Determinism: a run is a pure function of (graph, generator, Config
// minus Workers and Shards, seed). Snapshot mode parallelizes
// per-message path computation over Workers goroutines, but every
// message routes from its own derived rng stream and all schedules are
// drawn before routing starts; the live loop runs sequentially at
// Shards <= 1 and, for parallel-eligible configurations, partitions
// across Shards cores in conservative virtual-time windows at higher
// counts (see Config.Shards). Results are byte-identical for any
// Workers and Shards values — the property the regression suite pins
// for Run and Sweep alike, and the engine-vs-legacy equivalence
// property (prop_test.go) holds snapshot mode to the exact behaviour
// of the pre-engine pipeline.
package load
