// Package load models the system under sustained traffic — the
// production question the paper's single-message experiments leave open:
// which nodes melt first, at what offered load does the network stop
// keeping up, and does fault-tolerant greedy routing also balance load?
//
// The subsystem has four parts:
//
//   - Workload generators (Generator): seeded, dimension-generic sources
//     of (from, to) lookup pairs — uniform traffic, Zipf-popular hotspot
//     keys, skewed source populations, and an adversarial single-target
//     flood.
//
//   - Arrival models (Arrival): when those lookups enter the network.
//     Periodic and Poisson are open-loop — every injection time is fixed
//     up front at offered rate λ, so a saturated network builds
//     unbounded queues. ClosedLoop models N clients with think time,
//     whose offered load self-limits as latency grows.
//
//   - A virtual-time queueing simulator (Run): it injects Messages
//     lookups into a built graph.Graph under the arrival model, routes
//     each one with package route, then replays every hop against the
//     transit node's FIFO queue under a per-node service capacity. It
//     reports per-node load (hops serviced), max/mean load, peak queue
//     depth, p50/p95/p99 end-to-end latency, makespan and delivered
//     throughput alongside the ordinary sim.SearchStats.
//
//   - A saturation sweep (Sweep): repeated runs at stepped-then-bisected
//     load hunting the capacity knee — the largest offered load at which
//     queues still drain (delivered throughput tracks λ) and the p99
//     tail stays bounded. The sweep reports the whole
//     latency-vs-throughput curve (viz.ThroughputLatency plots it) plus
//     the knee, per routing policy.
//
// Two congestion feedback loops connect routing to queueing. With
// Config.Penalty > 0 the router runs route's congestion-penalized greedy
// (Options.Congestion) fed by the cumulative loads the simulator has
// already charged. With Config.DepthPenalty > 0 the signal additionally
// includes each node's instantaneous queue depth, probed by replaying
// the traffic routed so far — the backlog right now, which is what
// matters near saturation. Both snapshots refresh every Config.BatchSize
// messages, modelling the stale load information a real system would
// gossip.
//
// Determinism: a run is a pure function of (graph, generator, Config
// minus Workers, seed). Worker goroutines only parallelize per-message
// path computation, every message routes from its own derived rng
// stream, and arrival schedules are drawn from one sequential stream
// before routing starts, so results are byte-identical for any Workers
// value — the property the regression suite pins for Run and Sweep
// alike.
package load
