package load

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

func buildRing(t testing.TB, n, links int, seed uint64) *graph.Graph {
	t.Helper()
	ring, err := metric.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(links), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildTorus(t testing.TB, side, links int, seed uint64) *graph.Graph {
	t.Helper()
	torus, err := metric.NewTorus(side, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(torus, graph.PaperConfigFor(torus, links), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func damagedTorus(t testing.TB, side, links int, seed uint64, failFrac float64) *graph.Graph {
	t.Helper()
	g := buildTorus(t, side, links, seed)
	if _, err := failure.FailNodesFraction(g, failFrac, rng.New(seed+1)); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConservation(t *testing.T) {
	// injected == delivered + failed must hold on healthy and damaged
	// networks, for every workload, in 1-D and 2-D.
	graphs := map[string]*graph.Graph{
		"ring-healthy": buildRing(t, 512, 9, 1),
		"torus":        buildTorus(t, 16, 4, 2),
	}
	damaged := buildRing(t, 512, 9, 3)
	if _, err := failure.FailNodesFraction(damaged, 0.4, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	graphs["ring-damaged"] = damaged

	for gname, g := range graphs {
		for _, gen := range []Generator{Uniform(), Zipf(1.0), SkewedSources(1.2), Flood()} {
			r, err := Run(g, gen, Config{Messages: 200}, 5)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, gen.Name(), err)
			}
			if r.Injected != 200 || r.Delivered+r.Failed != r.Injected {
				t.Errorf("%s/%s: injected=%d delivered=%d failed=%d",
					gname, gen.Name(), r.Injected, r.Delivered, r.Failed)
			}
			if r.Search.Searches != r.Injected || r.Search.Delivered != r.Delivered {
				t.Errorf("%s/%s: SearchStats disagree with counters", gname, gen.Name())
			}
			var total int
			for _, l := range r.Loads {
				total += l
			}
			// Every delivered or failed search visits at least its
			// source; each visit is one service.
			if total < r.Injected {
				t.Errorf("%s/%s: %d services for %d messages", gname, gen.Name(), total, r.Injected)
			}
		}
	}
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	g := buildRing(t, 1024, 10, 7)
	if _, err := failure.FailNodesFraction(g, 0.3, rng.New(8)); err != nil {
		t.Fatal(err)
	}
	for _, penalty := range []float64{0, 2} {
		var want *Result
		for _, workers := range []int{1, 2, 7, 16} {
			cfg := Config{
				Messages: 300,
				Workers:  workers,
				Penalty:  penalty,
				Route:    route.Options{DeadEnd: route.Backtrack},
			}
			r, err := Run(g, Zipf(1.0), cfg, 9)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = r
				continue
			}
			if !reflect.DeepEqual(want, r) {
				t.Errorf("penalty %g: workers=%d diverged from workers=1", penalty, workers)
			}
		}
	}
}

func TestFloodConcentratesLoad(t *testing.T) {
	g := buildRing(t, 1024, 10, 11)
	uni, err := Run(g, Uniform(), Config{Messages: 400}, 12)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Run(g, Flood(), Config{Messages: 400}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if fl.MaxLoad <= uni.MaxLoad {
		t.Errorf("flood max load %d should exceed uniform %d", fl.MaxLoad, uni.MaxLoad)
	}
	// All 400 messages funnel through the target's physical
	// in-neighbourhood, so some last-hop forwarder must be far above
	// the uniform-traffic imbalance.
	if fl.MaxMeanRatio() <= 2*uni.MaxMeanRatio() {
		t.Errorf("flood imbalance %.2f should dwarf uniform %.2f",
			fl.MaxMeanRatio(), uni.MaxMeanRatio())
	}
	if fl.MaxQueueDepth <= uni.MaxQueueDepth {
		t.Errorf("flood queue depth %d should exceed uniform %d", fl.MaxQueueDepth, uni.MaxQueueDepth)
	}
}

func TestZipfSkewsLoad(t *testing.T) {
	g := buildTorus(t, 24, 5, 13)
	uni, err := Run(g, Uniform(), Config{Messages: 600}, 14)
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := Run(g, Zipf(1.2), Config{Messages: 600}, 14)
	if err != nil {
		t.Fatal(err)
	}
	if zipf.MaxMeanRatio() <= uni.MaxMeanRatio() {
		t.Errorf("zipf imbalance %.2f should exceed uniform %.2f",
			zipf.MaxMeanRatio(), uni.MaxMeanRatio())
	}
}

func TestLoadAwareReducesMaxLoad(t *testing.T) {
	// The acceptance scenario: congestion-penalized greedy must cut the
	// hottest node's load versus plain greedy at a bounded mean-hop
	// overhead, on both the ring and the 2-D torus.
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", buildRing(t, 2048, 11, 15)},
		{"torus", buildTorus(t, 32, 6, 16)},
	}
	for _, tc := range cases {
		plain, err := Run(tc.g, Zipf(1.0), Config{Messages: 800}, 17)
		if err != nil {
			t.Fatal(err)
		}
		aware, err := Run(tc.g, Zipf(1.0), Config{Messages: 800, Penalty: 1}, 17)
		if err != nil {
			t.Fatal(err)
		}
		if aware.MaxLoad >= plain.MaxLoad {
			t.Errorf("%s: load-aware max load %d should beat plain %d",
				tc.name, aware.MaxLoad, plain.MaxLoad)
		}
		if aware.Delivered < plain.Delivered {
			t.Errorf("%s: load-aware delivered %d < plain %d",
				tc.name, aware.Delivered, plain.Delivered)
		}
		if aware.Search.MeanHops() > 1.5*plain.Search.MeanHops() {
			t.Errorf("%s: load-aware mean hops %.2f blew past plain %.2f",
				tc.name, aware.Search.MeanHops(), plain.Search.MeanHops())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := buildRing(t, 64, 4, 18)
	bad := []Config{
		{Messages: -1},
		{Capacity: -0.5},
		{Rate: -1},
		{Penalty: -2},
		{DepthPenalty: -1},
		{Penalty: 1, BatchSize: -1},
		{Messages: 10, Shards: -3},
	}
	for i, cfg := range bad {
		if _, err := Run(g, Uniform(), cfg, 1); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	// Validate checks a resolved configuration: zero capacity or rate
	// means "default" only to Run, which resolves before validating; a
	// direct Validate call must reject them along with negatives.
	for i, cfg := range []Config{
		{Messages: 10, Rate: 1},                 // zero capacity
		{Messages: 10, Capacity: 1},             // zero rate
		{Messages: 10, Capacity: -2, Rate: 1},   // negative capacity
		{Messages: 10, Capacity: 1, Rate: -0.5}, // negative rate
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate %d: zero/negative capacity or rate should be rejected", i)
		}
	}
	if err := (Config{Messages: 10, Capacity: 1, Rate: 1}).Validate(); err != nil {
		t.Errorf("resolved config rejected: %v", err)
	}
	// Run still treats zeroes as defaults.
	if _, err := Run(g, Uniform(), Config{Messages: 20}, 1); err != nil {
		t.Errorf("zero-valued Run config should use defaults: %v", err)
	}
}

// TestShardConfigValidation pins the Shards field's contract at the
// load layer: negatives are rejected, a shard count beyond the node
// population is rejected in live mode, and in snapshot mode any legal
// shard count is a documented no-op — same bytes, no error.
func TestShardConfigValidation(t *testing.T) {
	g := buildRing(t, 64, 4, 18)
	if _, err := Run(g, Uniform(), Config{Messages: 10, Shards: -1}, 1); err == nil {
		t.Error("negative shard count should be rejected")
	}
	if _, err := Run(g, Uniform(), Config{Messages: 10, Shards: 65, Live: true}, 1); err == nil {
		t.Error("live run with more shards than nodes should be rejected")
	}
	// Snapshot mode ignores Shards entirely: more shards than nodes is
	// legal, and results match the unsharded run byte for byte.
	base, err := Run(g, Uniform(), Config{Messages: 50}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(g, Uniform(), Config{Messages: 50, Shards: 65}, 2)
	if err != nil {
		t.Fatalf("snapshot run with Shards set should be a no-op, got: %v", err)
	}
	if !reflect.DeepEqual(base, sharded) {
		t.Error("snapshot results changed when Shards was set")
	}
}

func TestArrivalModels(t *testing.T) {
	g := buildRing(t, 256, 8, 30)
	for _, tc := range []struct {
		arr  Arrival
		name string
	}{
		{Periodic(2), "periodic(2)"},
		{Poisson(2), "poisson(2)"},
		{ClosedLoop(8, 1.5), "closed(8,1.5)"},
	} {
		r, err := Run(g, Uniform(), Config{Messages: 200, Arrival: tc.arr}, 31)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if r.Arrival != tc.name {
			t.Errorf("Arrival = %q, want %q", r.Arrival, tc.name)
		}
		if r.Delivered+r.Failed != r.Injected {
			t.Errorf("%s: conservation broken", tc.name)
		}
		if r.Makespan <= 0 || r.Throughput <= 0 {
			t.Errorf("%s: makespan %v / throughput %v should be positive", tc.name, r.Makespan, r.Throughput)
		}
	}
	// The default arrival is Periodic(Rate): byte-identical results.
	implicit, err := Run(g, Uniform(), Config{Messages: 200, Rate: 4}, 31)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(g, Uniform(), Config{Messages: 200, Arrival: Periodic(4)}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(implicit, explicit) {
		t.Error("Config.Rate and explicit Periodic(Rate) diverged")
	}
	// NewArrival resolves CLI names and rejects junk.
	for _, name := range []string{"", "periodic", "poisson", "closed"} {
		if _, err := NewArrival(name, 1, 4, 0); err != nil {
			t.Errorf("NewArrival(%q): %v", name, err)
		}
	}
	if _, err := NewArrival("bogus", 1, 4, 0); err == nil {
		t.Error("unknown arrival model should error")
	}
	// Run must reject degenerate models that would prime Inf/NaN
	// injection schedules, even when constructed directly.
	for _, arr := range []Arrival{Periodic(0), Poisson(-1), ClosedLoop(0, 1), ClosedLoop(4, -1)} {
		if _, err := Run(g, Uniform(), Config{Messages: 20, Arrival: arr}, 1); err == nil {
			t.Errorf("Run accepted degenerate arrival %s", arr.Name())
		}
	}
	if _, err := NewArrival("poisson", -1, 4, 0); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := NewArrival("closed", 1, 4, -2); err == nil {
		t.Error("negative think time should error")
	}
}

func TestClosedLoopLimitsConcurrency(t *testing.T) {
	// A closed loop of k clients can never have more than k messages in
	// flight, so no queue can be deeper than k, regardless of how slow
	// service is.
	g := buildRing(t, 256, 8, 32)
	const clients = 4
	r, err := Run(g, Uniform(), Config{
		Messages: 300,
		Capacity: 0.25, // slow servers: 4 ticks per hop
		Arrival:  ClosedLoop(clients, 0),
	}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxQueueDepth > clients {
		t.Errorf("queue depth %d exceeds the %d-client population", r.MaxQueueDepth, clients)
	}
	open, err := Run(g, Uniform(), Config{
		Messages: 300,
		Capacity: 0.25,
		Arrival:  Poisson(64),
	}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if open.MaxQueueDepth <= clients {
		t.Errorf("open loop at high rate should overrun %d (got depth %d)", clients, open.MaxQueueDepth)
	}
}

func TestTooFewNodes(t *testing.T) {
	ring, err := metric.NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(ring)
	for p := 1; p < 8; p++ {
		g.Fail(metric.Point(p))
	}
	if _, err := Run(g, Uniform(), Config{}, 1); err == nil {
		t.Error("single-node graph should fail Bind")
	}
}

func TestHottestNodesAndHistogram(t *testing.T) {
	g := buildRing(t, 512, 8, 19)
	r, err := Run(g, Flood(), Config{Messages: 300}, 20)
	if err != nil {
		t.Fatal(err)
	}
	hot := r.HottestNodes(3)
	if len(hot) != 3 {
		t.Fatalf("want 3 hottest nodes, got %d", len(hot))
	}
	if r.Loads[hot[0]] != r.MaxLoad {
		t.Errorf("hottest node load %d != MaxLoad %d", r.Loads[hot[0]], r.MaxLoad)
	}
	if r.Loads[hot[0]] < r.Loads[hot[1]] || r.Loads[hot[1]] < r.Loads[hot[2]] {
		t.Error("hottest nodes not sorted by load")
	}
	h := r.LoadHistogram()
	if h == nil {
		t.Fatal("nil histogram for loaded run")
	}
	var nodes int64
	for i := 0; i < h.Buckets(); i++ {
		nodes += h.Count(i)
	}
	loaded := 0
	for _, l := range r.Loads {
		if l > 0 {
			loaded++
		}
	}
	if nodes != int64(loaded) {
		t.Errorf("histogram covers %d nodes, want %d", nodes, loaded)
	}
}

func TestWorkloadNames(t *testing.T) {
	for _, tc := range []struct {
		flag string
		want string
	}{
		{"uniform", "uniform"},
		{"", "uniform"},
		{"zipf", "zipf(1)"},
		{"hotspot", "zipf(1)"},
		{"sources", "sources(1)"},
		{"flood", "flood"},
	} {
		gen, err := NewGenerator(tc.flag, 0)
		if err != nil {
			t.Fatal(err)
		}
		if gen.Name() != tc.want {
			t.Errorf("NewGenerator(%q).Name() = %q, want %q", tc.flag, gen.Name(), tc.want)
		}
	}
	if _, err := NewGenerator("bogus", 0); err == nil {
		t.Error("unknown workload should error")
	}
	if got := fmt.Sprintf("%s", Zipf(0.8).Name()); got != "zipf(0.8)" {
		t.Errorf("Zipf(0.8).Name() = %q", got)
	}
}
