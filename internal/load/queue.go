package load

import (
	"container/heap"

	"repro/internal/metric"
)

// queuedMessage is one lookup entering the queueing replay: an injection
// time in virtual ticks (assigned by the arrival model during the
// replay), the node sequence its search visited, and whether the search
// delivered (failed searches still congest every node they touched; only
// their latency is excluded).
type queuedMessage struct {
	inject    float64
	path      []metric.Point
	delivered bool
}

// arrival is one message reaching the next node of its path.
type arrival struct {
	time float64
	msg  int // message index; the deterministic tie-break
	idx  int // position in the message's path
}

// arrivalHeap orders arrivals by (time, msg, idx) — a total order, so
// the replay is independent of insertion order and fully deterministic.
type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].msg != h[j].msg {
		return h[i].msg < h[j].msg
	}
	return h[i].idx < h[j].idx
}
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// nodeQueue tracks one node's FIFO: the virtual time its server frees
// up, and the finish times of messages still in the system (for queue-
// depth accounting). finish is consumed front-to-back, so a head index
// replaces repeated slicing.
type nodeQueue struct {
	busyUntil float64
	finish    []float64
	head      int
}

// depthAt drains completed services and returns how many messages are
// still queued or in service at time t. A service finishing exactly at t
// has left the system; one arriving exactly at t is in it.
func (q *nodeQueue) depthAt(t float64) int {
	for q.head < len(q.finish) && q.finish[q.head] <= t {
		q.head++
	}
	if q.head == len(q.finish) {
		q.finish = q.finish[:0]
		q.head = 0
	}
	return len(q.finish) - q.head
}

// queueOutcome aggregates one replay.
type queueOutcome struct {
	loads         []int     // services charged per grid point
	maxQueueDepth int       // peak of any node's queue (incl. in service)
	latencies     []float64 // end-to-end latency of each delivered message
	services      int       // total message-hops serviced
	injected      int       // messages the arrival model actually injected
	lastInject    float64   // latest injection time that occurred
	makespan      float64   // finish time of the last service
	probeDepths   []int     // per-node in-system count at the probe time (nil unless probed)
}

// simulateQueues replays routed messages against per-node FIFO queues in
// virtual time. Every node of a message's path serves it for serviceTime
// ticks, one message at a time; the message leaves node i the instant
// its service there completes and joins node i+1's queue. A message's
// latency is the completion of service at its final path node minus its
// injection time (the caller passes forwarding nodes only, so for a
// delivered message that completion is the moment it reaches its
// destination).
//
// Injection times come from `initial` — the schedule known up front —
// plus the `completed` hook: whenever a message's last service finishes
// (delivered or not), completed is consulted for the injection that
// completion unlocks. That is the closed-loop feedback path; open-loop
// models schedule everything in initial and a nil hook is allowed. A
// message with an empty path occupies no queue: it completes the instant
// it is injected, still unlocking its successor.
//
// A non-negative probe time additionally records, per node, how many
// messages were in system (queued or in service) at that instant: a
// service with arrival time ≤ probe and finish > probe counts, matching
// depthAt's boundary convention.
func simulateQueues(size int, msgs []queuedMessage, serviceTime float64,
	initial []Injection, completed func(msg int, at float64) (Injection, bool),
	probe float64) queueOutcome {
	out := queueOutcome{loads: make([]int, size)}
	if probe >= 0 {
		out.probeDepths = make([]int, size)
	}
	queues := make([]nodeQueue, size)
	h := make(arrivalHeap, 0, len(initial))
	// enqueue admits one injection, chasing chains of path-less messages
	// (which complete immediately and may unlock further injections).
	enqueue := func(inj Injection) {
		for {
			msgs[inj.Msg].inject = inj.Time
			out.injected++
			if inj.Time > out.lastInject {
				out.lastInject = inj.Time
			}
			if len(msgs[inj.Msg].path) > 0 {
				heap.Push(&h, arrival{time: inj.Time, msg: inj.Msg, idx: 0})
				return
			}
			if completed == nil {
				return
			}
			next, ok := completed(inj.Msg, inj.Time)
			if !ok {
				return
			}
			inj = next
		}
	}
	for _, inj := range initial {
		enqueue(inj)
	}
	for h.Len() > 0 {
		a := heap.Pop(&h).(arrival)
		msg := &msgs[a.msg]
		node := msg.path[a.idx]
		q := &queues[node]
		if depth := q.depthAt(a.time) + 1; depth > out.maxQueueDepth {
			out.maxQueueDepth = depth
		}
		start := a.time
		if q.busyUntil > start {
			start = q.busyUntil
		}
		finish := start + serviceTime
		q.busyUntil = finish
		q.finish = append(q.finish, finish)
		out.loads[node]++
		out.services++
		if finish > out.makespan {
			out.makespan = finish
		}
		if out.probeDepths != nil && a.time <= probe && probe < finish {
			out.probeDepths[node]++
		}
		if a.idx+1 < len(msg.path) {
			heap.Push(&h, arrival{time: finish, msg: a.msg, idx: a.idx + 1})
			continue
		}
		if msg.delivered {
			out.latencies = append(out.latencies, finish-msg.inject)
		}
		if completed != nil {
			if next, ok := completed(a.msg, finish); ok {
				enqueue(next)
			}
		}
	}
	return out
}
