package load

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/rng"
)

// Injection schedules message Msg to enter the network at virtual time
// Time. It is the engine's injection type re-exported, so arrival
// models prime the event loop directly.
type Injection = engine.Injection

// Arrival models when messages enter the network. Open-loop models fix
// every injection time before the replay starts, so the offered load is
// independent of how the system copes — the regime where a saturated
// network builds unbounded queues. The closed-loop model injects a
// client's next lookup only after its previous one completed, so the
// offered load self-limits as latency grows — the interactive-population
// regime.
//
// Prime is called exactly once per run with the message count and a
// dedicated rng stream; it returns the injections known up front (all of
// them for open-loop models, one per client for closed-loop). Completed
// notifies the model that a message left the system — its last service
// finished, delivered or not — and returns the injection that completion
// unlocks, if any. Both hooks are consulted only from the engine's
// sequential event-loop code (the sharded live loop calls them from
// its admission and barrier phases, never from a parallel drain) and
// draw randomness only from the Prime stream, so the worker- and
// shard-count independence contracts of Run are preserved by
// construction.
type Arrival interface {
	// Name identifies the model in tables and CLI flags.
	Name() string
	// Prime returns the injections known before the replay starts.
	Prime(n int, src *rng.Source) []Injection
	// Completed reports message msg leaving the system at virtual time
	// at; it returns a newly unlocked injection (ok = false when none).
	// The returned time must not precede at.
	Completed(msg int, at float64) (inj Injection, ok bool)
}

// periodicArrival is the fixed-rate open-loop baseline: message i enters
// at exactly i/rate ticks, the deterministic injection the traffic
// subsystem shipped with.
type periodicArrival struct{ rate float64 }

// Periodic returns the deterministic open-loop model injecting one
// message every 1/rate ticks. The rate must be positive; Run rejects
// the model otherwise.
func Periodic(rate float64) Arrival { return &periodicArrival{rate: rate} }

func (p *periodicArrival) validate() error {
	if p.rate <= 0 {
		return fmt.Errorf("load: periodic arrival rate %g must be positive", p.rate)
	}
	return nil
}

func (p *periodicArrival) Name() string { return fmt.Sprintf("periodic(%g)", p.rate) }

func (p *periodicArrival) Prime(n int, _ *rng.Source) []Injection {
	interarrival := 1 / p.rate
	out := make([]Injection, n)
	for i := range out {
		out[i] = Injection{Msg: i, Time: float64(i) * interarrival}
	}
	return out
}

func (p *periodicArrival) Completed(int, float64) (Injection, bool) { return Injection{}, false }

// poissonArrival is the open-loop Poisson process: exponential
// interarrivals at offered rate λ, the memoryless arrivals classical
// queueing results assume. Burstier than periodic at the same λ, so the
// capacity knee sits slightly lower.
type poissonArrival struct{ rate float64 }

// Poisson returns the open-loop Poisson-process model at offered rate λ
// messages per tick. The rate must be positive; Run rejects the model
// otherwise.
func Poisson(rate float64) Arrival { return &poissonArrival{rate: rate} }

func (p *poissonArrival) validate() error {
	if p.rate <= 0 {
		return fmt.Errorf("load: poisson arrival rate %g must be positive", p.rate)
	}
	return nil
}

func (p *poissonArrival) Name() string { return fmt.Sprintf("poisson(%g)", p.rate) }

func (p *poissonArrival) Prime(n int, src *rng.Source) []Injection {
	out := make([]Injection, n)
	t := 0.0
	for i := range out {
		// Inverse-CDF exponential draw; Float64 is in [0,1), so the
		// argument of Log stays in (0,1] and the draw finite.
		t += -math.Log(1-src.Float64()) / p.rate
		out[i] = Injection{Msg: i, Time: t}
	}
	return out
}

func (p *poissonArrival) Completed(int, float64) (Injection, bool) { return Injection{}, false }

// closedLoop models an interactive population: client c injects message
// i (with c = i mod clients), waits for it to complete, thinks for
// think ticks, then injects message i+clients. All clients start at
// tick 0; the (time, msg) heap order of the replay keeps simultaneous
// starts deterministic.
type closedLoop struct {
	clients int
	think   float64
	n       int // message count of the current run, set by Prime
}

// ClosedLoop returns the N-client/think-time closed-loop model. clients
// must be positive and think non-negative; Run rejects the model
// otherwise.
func ClosedLoop(clients int, think float64) Arrival {
	return &closedLoop{clients: clients, think: think}
}

func (c *closedLoop) validate() error {
	if c.clients <= 0 || c.think < 0 {
		return fmt.Errorf("load: closed loop needs positive clients (%d) and non-negative think (%g)",
			c.clients, c.think)
	}
	return nil
}

func (c *closedLoop) Name() string { return fmt.Sprintf("closed(%d,%g)", c.clients, c.think) }

func (c *closedLoop) Prime(n int, _ *rng.Source) []Injection {
	c.n = n
	k := c.clients
	if k > n {
		k = n
	}
	out := make([]Injection, k)
	for i := range out {
		out[i] = Injection{Msg: i}
	}
	return out
}

func (c *closedLoop) Completed(msg int, at float64) (Injection, bool) {
	next := msg + c.clients
	if next >= c.n {
		return Injection{}, false
	}
	return Injection{Msg: next, Time: at + c.think}, true
}

// NewArrival resolves an arrival model by CLI name: "periodic" (or
// empty: the fixed-rate default) and "poisson" are open-loop at the
// given rate; "closed" is the closed-loop model with the given client
// count and think time. Zero rate selects 1 message per tick, zero
// clients 16.
func NewArrival(name string, rate float64, clients int, think float64) (Arrival, error) {
	if rate == 0 {
		rate = 1
	}
	if clients == 0 {
		clients = 16
	}
	if rate < 0 || clients < 0 || think < 0 {
		return nil, fmt.Errorf("load: arrival rate %g, clients %d and think %g must be non-negative",
			rate, clients, think)
	}
	switch name {
	case "", "periodic":
		return Periodic(rate), nil
	case "poisson", "open":
		return Poisson(rate), nil
	case "closed", "closed-loop":
		return ClosedLoop(clients, think), nil
	default:
		return nil, fmt.Errorf("load: unknown arrival model %q (periodic, poisson, closed)", name)
	}
}
