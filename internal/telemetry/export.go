package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonlRun is the "run" line of the JSONL export.
type jsonlRun struct {
	Type     string  `json:"type"`
	Run      int     `json:"run"`
	Label    string  `json:"label,omitempty"`
	Capacity float64 `json:"capacity"`
	Window   float64 `json:"window"` // virtual-time length of one window
	Stride   int     `json:"stride"` // windows per exported bucket
	Messages int     `json:"messages"`
	Shards   int     `json:"shards,omitempty"`
	Windows  int     `json:"windows,omitempty"` // sharded loop windows
	WallSecs float64 `json:"wall_secs"`
}

// jsonlWindow is the "window" line: one timeseries bucket.
type jsonlWindow struct {
	Type        string  `json:"type"`
	Run         int     `json:"run"`
	Start       int     `json:"start"` // window index; ×window for time
	End         int     `json:"end"`
	InFlight    int     `json:"in_flight"`
	Injections  int     `json:"injections"`
	Completions int     `json:"completions"`
	Drops       int     `json:"drops"`
	Services    int     `json:"services"`
	DepthMax    int     `json:"depth_max"`
	DepthMean   float64 `json:"depth_mean"`
	Merges      int     `json:"merges"`
	Suppressed  int     `json:"suppressed"`
	Multicasts  int     `json:"multicasts"`
	PITExpiries int     `json:"pit_expiries"`
	CacheHits   int     `json:"cache_hits"`
	CachePromos int     `json:"cache_promotions"`
	CacheEvicts int     `json:"cache_evictions"`
}

// jsonlFlight is the "flight" line: one of the worst-latency sampled
// messages, full hop trace included.
type jsonlFlight struct {
	Type string `json:"type"`
	Flight
}

func depthMean(c Counters) float64 {
	if c.DepthCount == 0 {
		return 0
	}
	return float64(c.DepthSum) / float64(c.DepthCount)
}

func windowLine(runIdx int, w Window) jsonlWindow {
	return jsonlWindow{
		Type: "window", Run: runIdx,
		Start: w.Start, End: w.End, InFlight: w.InFlight,
		Injections: w.Injections, Completions: w.Completions,
		Drops: w.Drops, Services: w.Services,
		DepthMax: w.DepthMax, DepthMean: depthMean(w.Counters),
		Merges: w.Merges, Suppressed: w.Suppressions,
		Multicasts: w.Multicasts, PITExpiries: w.PITExpiries,
		CacheHits:   w.CacheHits,
		CachePromos: w.CachePromos, CacheEvicts: w.CacheEvicts,
	}
}

// WriteJSONL writes the full export: one "run" line per recorded run,
// its "window" timeseries lines, then the Options.WorstK worst-latency
// "flight" lines across all runs. Every line is a standalone JSON
// object, so the stream greps and tails cleanly.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i, run := range r.runs {
		line := jsonlRun{
			Type: "run", Run: i, Label: run.Label,
			Capacity: run.Capacity, Window: run.WindowLen(),
			Stride: run.win.stride, Messages: run.Messages,
			WallSecs: run.WallSecs,
		}
		if run.sched.Shards > 0 {
			line.Shards = run.sched.Shards
			line.Windows = run.sched.Windows
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		for _, win := range run.Windows() {
			if err := enc.Encode(windowLine(i, win)); err != nil {
				return err
			}
		}
	}
	for _, f := range r.WorstFlights(r.opt.WorstK) {
		if err := enc.Encode(jsonlFlight{Type: "flight", Flight: f}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the window timeseries of every run as one CSV table
// (flights don't tabulate — use the JSONL export for those).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "run,start,end,in_flight,injections,completions,drops,services,depth_max,depth_mean,merges,suppressed,multicasts,pit_expiries,cache_hits,cache_promotions,cache_evictions"); err != nil {
		return err
	}
	for i, run := range r.runs {
		for _, win := range run.Windows() {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d\n",
				i, win.Start, win.End, win.InFlight,
				win.Injections, win.Completions, win.Drops, win.Services,
				win.DepthMax, depthMean(win.Counters),
				win.Merges, win.Suppressions, win.Multicasts, win.PITExpiries,
				win.CacheHits, win.CachePromos, win.CacheEvicts); err != nil {
				return err
			}
		}
	}
	return nil
}
