// Package telemetry is the engine's observability layer: a
// deterministic, virtual-time-keyed recorder the discrete-event core
// (internal/engine) feeds while it runs. Three instruments share one
// Recorder:
//
//   - A window timeseries: counters and gauges (injections,
//     completions, drops, services, queue depth max/mean, aggregation
//     merges, PIT suppressions/multicasts/expiries, cache
//     hits/promotions/evictions) bucketed by
//     virtual-time window — the engine's safe-horizon window of one
//     service time — in a fixed-capacity series that coalesces
//     adjacent buckets as the run outgrows it.
//   - A message flight recorder: per-hop traces (node, arrival and
//     service instants, queue depth seen, forwarding decision) for a
//     bounded reservoir sample of message IDs, exported for the k
//     worst-latency flights.
//   - Scheduler profiling: wall-clock per-shard drain time, barrier
//     wait time, outbox handoff volume, and a window occupancy
//     histogram from the sharded live loop.
//
// Everything keyed by virtual time is a pure function of the event
// multiset, so the recorded series are identical at every shard and
// worker count; only the scheduler profile (wall clock by nature) may
// vary between runs. A Recorder observes — it never feeds anything
// back into the simulation — so attaching one cannot move a golden.
//
// Concurrency contract: the engine's sequential call sites (injection,
// completion, merge replay, cache polling) use the Recorder methods
// directly; its parallel shard drains go through per-shard Views
// handed out before the drain starts and folded back at sequential
// points. Flight hops may be appended from shard goroutines because a
// message is owned by exactly one shard at a time.
package telemetry

import (
	"sort"

	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
)

// Decision labels one forwarding decision for the flight recorder.
type Decision uint8

const (
	// DecisionSnapshot marks a hop along a snapshot-mode path,
	// precomputed per congestion batch rather than decided at service.
	DecisionSnapshot Decision = iota
	// DecisionGreedy is a live greedy forward move. Congestion-penalized
	// detours also report greedy: the scored move preserves strict
	// metric progress, so a detour is a longer greedy path, not a
	// distinct step kind.
	DecisionGreedy
	// DecisionBacktrack is a backward move of the §6 backtracking
	// policy.
	DecisionBacktrack
	// DecisionReroute is a random re-route jump out of a dead end.
	DecisionReroute
	// DecisionAnswer is a response-leg hop: the answer to a delivered
	// lookup retracing the reverse path (ModeLivePIT).
	DecisionAnswer
)

func (d Decision) String() string {
	switch d {
	case DecisionGreedy:
		return "greedy"
	case DecisionBacktrack:
		return "backtrack"
	case DecisionReroute:
		return "reroute"
	case DecisionAnswer:
		return "answer"
	default:
		return "snapshot"
	}
}

// Served labels how a completed lookup was answered.
type Served uint8

const (
	// ServedNone marks a failed search.
	ServedNone Served = iota
	// ServedPrimary: delivered at the key itself.
	ServedPrimary
	// ServedReplica: delivered at a static replica of the key.
	ServedReplica
	// ServedCache: delivered at a cache-on-path copy — a cache hit.
	ServedCache
	// ServedAggregated: answered by riding along with a same-key
	// carrier at an aggregation point.
	ServedAggregated
	// ServedPIT: answered by a pending-interest multicast — the lookup
	// was suppressed at a PIT entry and a returning answer released it
	// (ModeLivePIT).
	ServedPIT
)

func (s Served) String() string {
	switch s {
	case ServedPrimary:
		return "primary"
	case ServedReplica:
		return "replica"
	case ServedCache:
		return "cache"
	case ServedAggregated:
		return "aggregated"
	case ServedPIT:
		return "pit"
	default:
		return "none"
	}
}

// Counters is one window bucket of the timeseries. Every field is
// either additive or a max, so buckets merge exactly: the coalesced
// series is independent of the order increments arrived in.
type Counters struct {
	Injections   int
	Completions  int
	Drops        int // completions that failed (not delivered)
	Services     int
	Merges       int // aggregation ride-alongs
	Suppressions int // PIT suppressions: requests parked as waiters
	Multicasts   int // waiters released by PIT answer multicasts
	PITExpiries  int // waits ended by timeout instead of an answer
	CacheHits    int // deliveries served by a cache-on-path copy
	CachePromos  int
	CacheEvicts  int
	DepthSum     int // sum of queue depths seen at arrival
	DepthCount   int
	DepthMax     int
	Crashes      int // churn crash events applied
	Joins        int // churn join events applied
	GossipSends  int // membership transmissions (gossip pushes + bootstraps)
	Strands      int // arrivals stranded at a dead node
}

func (c *Counters) add(o *Counters) {
	c.Injections += o.Injections
	c.Completions += o.Completions
	c.Drops += o.Drops
	c.Services += o.Services
	c.Merges += o.Merges
	c.Suppressions += o.Suppressions
	c.Multicasts += o.Multicasts
	c.PITExpiries += o.PITExpiries
	c.CacheHits += o.CacheHits
	c.CachePromos += o.CachePromos
	c.CacheEvicts += o.CacheEvicts
	c.DepthSum += o.DepthSum
	c.DepthCount += o.DepthCount
	if o.DepthMax > c.DepthMax {
		c.DepthMax = o.DepthMax
	}
	c.Crashes += o.Crashes
	c.Joins += o.Joins
	c.GossipSends += o.GossipSends
	c.Strands += o.Strands
}

func (c *Counters) empty() bool {
	return c.Injections == 0 && c.Completions == 0 && c.Services == 0 &&
		c.Merges == 0 && c.Suppressions == 0 && c.Multicasts == 0 &&
		c.PITExpiries == 0 && c.CacheHits == 0 && c.CachePromos == 0 &&
		c.CacheEvicts == 0 && c.DepthCount == 0 &&
		c.Crashes == 0 && c.Joins == 0 && c.GossipSends == 0 && c.Strands == 0
}

// series is a fixed-capacity window timeseries anchored at window 0.
// Bucket i covers windows [i·stride, (i+1)·stride); when the run
// outgrows the capacity, adjacent bucket pairs merge and the stride
// doubles. Because buckets only ever merge exactly (Counters.add), the
// final contents are a pure function of the multiset of
// (window, increment) pairs — no eviction order to leak
// nondeterminism.
type series struct {
	stride  int
	buckets []Counters
	used    int
}

func newSeries(capacity int) *series {
	return &series{stride: 1, buckets: make([]Counters, capacity)}
}

// at returns the bucket covering window win, coalescing as needed.
func (s *series) at(win int) *Counters {
	if win < 0 {
		win = 0
	}
	b := win / s.stride
	for b >= len(s.buckets) {
		s.coalesce()
		b = win / s.stride
	}
	if b >= s.used {
		s.used = b + 1
	}
	return &s.buckets[b]
}

// coalesce halves the resolution: bucket i absorbs buckets 2i and
// 2i+1.
func (s *series) coalesce() {
	n := len(s.buckets)
	for i := 0; i < n/2; i++ {
		merged := s.buckets[2*i]
		if 2*i+1 < n {
			merged.add(&s.buckets[2*i+1])
		}
		s.buckets[i] = merged
	}
	for i := n / 2; i < n; i++ {
		s.buckets[i] = Counters{}
	}
	s.stride *= 2
	s.used = (s.used + 1) / 2
}

// merge folds another series into this one, aligning strides first.
func (s *series) merge(o *series) {
	for o.stride < s.stride {
		o.coalesce()
	}
	for s.stride < o.stride {
		s.coalesce()
	}
	for i := 0; i < o.used; i++ {
		if o.buckets[i].empty() {
			continue
		}
		s.at(i * s.stride).add(&o.buckets[i])
	}
}

// Hop is one recorded service of a sampled message.
type Hop struct {
	Node     metric.Point `json:"node"`
	Arrival  float64      `json:"arrival"`
	Start    float64      `json:"start"`
	Finish   float64      `json:"finish"`
	Depth    int          `json:"depth"`
	Decision string       `json:"decision"`
}

// Flight is one sampled message's recorded trajectory.
type Flight struct {
	Run       int          `json:"run"`
	Msg       int          `json:"msg"`
	From      metric.Point `json:"from"`
	Key       metric.Point `json:"key"`
	Inject    float64      `json:"inject"`
	Complete  float64      `json:"complete"`
	Latency   float64      `json:"latency"`
	Delivered bool         `json:"delivered"`
	Merged    bool         `json:"merged"`
	Served    string       `json:"served"`
	Hops      []Hop        `json:"hops"`

	completed bool
}

// maxFlightHops bounds one flight's trace so a pathological walk
// cannot grow recorder memory without bound; hops beyond it are
// counted in the final trace length but not stored.
const maxFlightHops = 512

// SchedStats is the scheduler profile of one run: wall-clock shard
// timings from the partitioned live loop, or a single-"shard" summary
// of a sequential run. Unlike the window and flight instruments it is
// wall-clock data — never fold it into anything that must be
// deterministic.
type SchedStats struct {
	Shards    int
	Windows   int
	Drain     []float64 // per shard: seconds spent draining windows
	Wait      []float64 // per shard: seconds idle at the window barrier
	Events    []int     // per shard: events processed
	Handoffs  []int     // per shard: cross-shard events sent
	Occupancy *mathx.Histogram
}

// BarrierWaitFrac returns the fraction of shard wall-time spent
// waiting at window barriers: Σwait / (Σdrain + Σwait), in [0, 1].
func (s *SchedStats) BarrierWaitFrac() float64 {
	var drain, wait float64
	for _, d := range s.Drain {
		drain += d
	}
	for _, w := range s.Wait {
		wait += w
	}
	if drain+wait <= 0 {
		return 0
	}
	return wait / (drain + wait)
}

// TotalEvents returns the events processed across all shards.
func (s *SchedStats) TotalEvents() int {
	n := 0
	for _, e := range s.Events {
		n += e
	}
	return n
}

// Run is one engine run's recorded telemetry.
type Run struct {
	Label    string
	Capacity float64 // window length is 1/Capacity
	Messages int
	WallSecs float64

	win     *series
	views   []*View
	flights []Flight
	sampled map[int]int32 // message id -> flights index
	sched   SchedStats
}

// WindowLen returns the virtual-time length of one window.
func (r *Run) WindowLen() float64 { return 1 / r.Capacity }

// View is a shard-private window recorder: Service and Hop may be
// called from the shard's drain goroutine without synchronization; the
// series folds into the run's at the next sequential point.
type View struct {
	s   *series
	run *Run
}

// Options configures a Recorder. The zero value is usable: every
// field has a default.
type Options struct {
	// WindowCap is the bucket capacity of each run's window series
	// (default 256). The series covers the whole run regardless —
	// buckets coalesce, trading resolution for range.
	WindowCap int
	// FlightSample is the reservoir size of the flight recorder: how
	// many message IDs per run get full hop traces (default 64).
	FlightSample int
	// FlightSeed seeds the reservoir sampler's own rng stream,
	// independent of the simulation's (default 0xf11e).
	FlightSeed uint64
	// WorstK is how many worst-latency flights exports dump
	// (default 8).
	WorstK int
}

func (o Options) withDefaults() Options {
	if o.WindowCap <= 0 {
		o.WindowCap = 256
	}
	if o.FlightSample <= 0 {
		o.FlightSample = 64
	}
	if o.FlightSeed == 0 {
		o.FlightSeed = 0xf11e
	}
	if o.WorstK <= 0 {
		o.WorstK = 8
	}
	return o
}

// maxRuns bounds how many runs one Recorder retains: a sweep calls the
// engine once per bracket point, so an experiment records tens of
// runs, not thousands. Beyond the bound new runs are counted but not
// recorded.
const maxRuns = 1024

// Recorder accumulates telemetry across one or more engine runs. It
// is not safe for concurrent use except through shard Views as
// documented above. A nil *Recorder is the disabled state: the engine
// guards every call site with a nil check, so disabled telemetry costs
// one predictable branch and zero allocations.
type Recorder struct {
	opt     Options
	label   string // pending label for the next BeginRun
	runs    []*Run
	cur     *Run
	skipped int
	sampler *rng.Source
}

// New returns an enabled Recorder.
func New(opt Options) *Recorder {
	o := opt.withDefaults()
	return &Recorder{opt: o, sampler: rng.New(o.FlightSeed)}
}

// Label sets the label attached to the next BeginRun — the caller that
// knows the scenario (package load) names the run; the engine that
// knows the clock starts it.
func (r *Recorder) Label(label string) { r.label = label }

// BeginRun starts recording a new engine run: capacity fixes the
// window length at 1/capacity, and the flight reservoir is drawn over
// message IDs [0, msgs).
func (r *Recorder) BeginRun(capacity float64, msgs int) {
	if len(r.runs) >= maxRuns {
		r.skipped++
		r.cur = nil
		r.label = ""
		return
	}
	run := &Run{
		Label:    r.label,
		Capacity: capacity,
		Messages: msgs,
		win:      newSeries(r.opt.WindowCap),
		sampled:  make(map[int]int32, r.opt.FlightSample),
	}
	r.label = ""
	// Classic reservoir sample of FlightSample IDs from [0, msgs),
	// from the recorder's own rng stream: sampling consumes randomness,
	// and the simulation's streams must not notice telemetry exists.
	k := r.opt.FlightSample
	ids := make([]int, 0, k)
	for i := 0; i < msgs; i++ {
		if len(ids) < k {
			ids = append(ids, i)
		} else if j := r.sampler.Intn(i + 1); j < k {
			ids[j] = i
		}
	}
	run.flights = make([]Flight, len(ids))
	for slot, id := range ids {
		run.sampled[id] = int32(slot)
		run.flights[slot] = Flight{Run: len(r.runs), Msg: id}
	}
	r.cur = run
	r.runs = append(r.runs, run)
}

// EndRun finalizes the current run: shard views fold into the main
// series, and a run that never went through the sharded loop reports
// its scheduler profile as a single shard that drained for the whole
// wall time with no barrier.
func (r *Recorder) EndRun(wallSecs float64, events int) {
	run := r.cur
	if run == nil {
		return
	}
	run.WallSecs = wallSecs
	for _, v := range run.views {
		run.win.merge(v.s)
	}
	run.views = nil
	if run.sched.Shards == 0 {
		run.sched = SchedStats{
			Shards: 1,
			Drain:  []float64{wallSecs},
			Wait:   []float64{0},
			Events: []int{events},
		}
	}
	r.cur = nil
}

// Runs returns the recorded runs, in order.
func (r *Recorder) Runs() []*Run { return r.runs }

// Skipped returns how many runs arrived after the retention bound.
func (r *Recorder) Skipped() int { return r.skipped }

// window maps a virtual instant to its safe-horizon window index.
func (run *Run) window(t float64) int {
	return int(t * run.Capacity)
}

// ---------------------------------------------------------------------
// Sequential instrument hooks (see the engine call-site map in
// engine/doc.go).
// ---------------------------------------------------------------------

// Inject records one injection at virtual time t.
func (r *Recorder) Inject(msg int, t float64, from, key metric.Point) {
	run := r.cur
	if run == nil {
		return
	}
	run.win.at(run.window(t)).Injections++
	if slot, ok := run.sampled[msg]; ok {
		f := &run.flights[slot]
		f.From, f.Key, f.Inject = from, key, t
	}
}

// Complete records one completion at virtual time t.
func (r *Recorder) Complete(msg int, t float64, delivered bool, served Served) {
	run := r.cur
	if run == nil {
		return
	}
	c := run.win.at(run.window(t))
	c.Completions++
	if !delivered {
		c.Drops++
	}
	if served == ServedCache {
		c.CacheHits++
	}
	if slot, ok := run.sampled[msg]; ok {
		f := &run.flights[slot]
		f.Complete, f.Latency = t, t-f.Inject
		f.Delivered, f.Served, f.completed = delivered, served.String(), true
	}
}

// Merge records one aggregation ride-along at virtual time t.
func (r *Recorder) Merge(msg int, t float64) {
	run := r.cur
	if run == nil {
		return
	}
	run.win.at(run.window(t)).Merges++
	if slot, ok := run.sampled[msg]; ok {
		run.flights[slot].Merged = true
	}
}

// Suppress records one PIT suppression at virtual time t: a request
// parked as a waiter on a pending same-key interest instead of
// forwarding. Sequential-loop form; shard drains use View.Suppress.
func (r *Recorder) Suppress(t float64) {
	if run := r.cur; run != nil {
		run.win.at(run.window(t)).Suppressions++
	}
}

// Multicast records one PIT answer multicast at virtual time t
// releasing fanout waiters.
func (r *Recorder) Multicast(t float64, fanout int) {
	if run := r.cur; run != nil {
		run.win.at(run.window(t)).Multicasts += fanout
	}
}

// PITExpire records one wait ending by timeout at virtual time t.
func (r *Recorder) PITExpire(t float64) {
	if run := r.cur; run != nil {
		run.win.at(run.window(t)).PITExpiries++
	}
}

// Churn records one applied churn event at virtual time t: a node
// crash or a join. Sequential-loop only — churn runs never shard.
func (r *Recorder) Churn(t float64, crash bool) {
	if run := r.cur; run != nil {
		c := run.win.at(run.window(t))
		if crash {
			c.Crashes++
		} else {
			c.Joins++
		}
	}
}

// Gossip records membership transmissions at virtual time t — the
// membership-convergence traffic counter (each send was also charged
// as a FIFO service, so it appears in Services too).
func (r *Recorder) Gossip(t float64, sends int) {
	if run := r.cur; run != nil {
		run.win.at(run.window(t)).GossipSends += sends
	}
}

// Strand records one arrival stranded at a dead node at virtual
// time t.
func (r *Recorder) Strand(t float64) {
	if run := r.cur; run != nil {
		run.win.at(run.window(t)).Strands++
	}
}

// Cache records cache-on-path churn observed at virtual time t:
// promotions and evictions since the last call (the engine polls the
// placement's cumulative counters and reports deltas).
func (r *Recorder) Cache(t float64, promotions, evictions int) {
	run := r.cur
	if run == nil || (promotions == 0 && evictions == 0) {
		return
	}
	c := run.win.at(run.window(t))
	c.CachePromos += promotions
	c.CacheEvicts += evictions
}

// Service records one queue service from a sequential loop (shard
// drains use a View instead).
func (r *Recorder) Service(t float64, depth int) {
	if r.cur == nil {
		return
	}
	r.view(0).Service(t, depth)
}

// Hop records one hop of a sampled message from a sequential loop.
func (r *Recorder) Hop(msg int, node metric.Point, arrival, start, finish float64, depth int, d Decision) {
	if r.cur == nil {
		return
	}
	r.view(0).Hop(msg, node, arrival, start, finish, depth, d)
}

// ---------------------------------------------------------------------
// Shard views — the parallel-safe surface.
// ---------------------------------------------------------------------

// View returns the shard's private recorder view, creating views up
// through the given shard id. Call only from sequential code (the
// engine takes views before starting a window drain); the returned
// View is then safe for its shard goroutine alone.
func (r *Recorder) view(shard int) *View {
	run := r.cur
	for len(run.views) <= shard {
		run.views = append(run.views, &View{s: newSeries(r.opt.WindowCap), run: run})
	}
	return run.views[shard]
}

// View is the exported form of view for the engine's shard setup; it
// returns nil when no run is active.
func (r *Recorder) View(shard int) *View {
	if r.cur == nil {
		return nil
	}
	return r.view(shard)
}

// Service records one queue service: the message arrived at t and saw
// the given queue depth (itself included).
func (v *View) Service(t float64, depth int) {
	c := v.s.at(v.run.window(t))
	c.Services++
	c.DepthSum += depth
	c.DepthCount++
	if depth > c.DepthMax {
		c.DepthMax = depth
	}
}

// Suppress is the shard-drain form of Recorder.Suppress: the counter
// lands in the shard's private series and folds at EndRun.
func (v *View) Suppress(t float64) {
	v.s.at(v.run.window(t)).Suppressions++
}

// Multicast is the shard-drain form of Recorder.Multicast.
func (v *View) Multicast(t float64, fanout int) {
	v.s.at(v.run.window(t)).Multicasts += fanout
}

// PITExpire is the shard-drain form of Recorder.PITExpire.
func (v *View) PITExpire(t float64) {
	v.s.at(v.run.window(t)).PITExpiries++
}

// Hop appends one hop to a sampled message's flight. Safe from the
// owning shard's goroutine: a message is processed by one shard at a
// time, and the sampled map is read-only after BeginRun.
func (v *View) Hop(msg int, node metric.Point, arrival, start, finish float64, depth int, d Decision) {
	slot, ok := v.run.sampled[msg]
	if !ok {
		return
	}
	f := &v.run.flights[slot]
	if len(f.Hops) >= maxFlightHops {
		return
	}
	f.Hops = append(f.Hops, Hop{
		Node: node, Arrival: arrival, Start: start, Finish: finish,
		Depth: depth, Decision: d.String(),
	})
}

// ---------------------------------------------------------------------
// Scheduler profiling hooks.
// ---------------------------------------------------------------------

// SchedInit sizes the scheduler profile for a sharded run.
func (r *Recorder) SchedInit(shards, maxOccupancy int) {
	run := r.cur
	if run == nil {
		return
	}
	run.sched = SchedStats{
		Shards:    shards,
		Drain:     make([]float64, shards),
		Wait:      make([]float64, shards),
		Events:    make([]int, shards),
		Handoffs:  make([]int, shards),
		Occupancy: mathx.NewLogHistogram(maxOccupancy),
	}
}

// SchedWindow records one shard's share of one window: its drain wall
// time, its wait for the window's slowest shard, and the events it
// processed.
func (r *Recorder) SchedWindow(shard int, drainSecs, waitSecs float64, events int) {
	run := r.cur
	if run == nil || run.sched.Shards == 0 {
		return
	}
	run.sched.Drain[shard] += drainSecs
	run.sched.Wait[shard] += waitSecs
	run.sched.Events[shard] += events
	if events > 0 {
		run.sched.Occupancy.Add(events)
	}
}

// SchedWindowDone counts one completed window.
func (r *Recorder) SchedWindowDone() {
	if run := r.cur; run != nil {
		run.sched.Windows++
	}
}

// SchedHandoffs counts cross-shard events a shard sent this window.
func (r *Recorder) SchedHandoffs(shard, n int) {
	run := r.cur
	if run == nil || run.sched.Shards == 0 || n == 0 {
		return
	}
	run.sched.Handoffs[shard] += n
}

// Scheduler returns the scheduler profile of the last finished run,
// or nil when nothing was recorded.
func (r *Recorder) Scheduler() *SchedStats {
	for i := len(r.runs) - 1; i >= 0; i-- {
		if r.runs[i].sched.Shards > 0 {
			return &r.runs[i].sched
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Read-side accessors.
// ---------------------------------------------------------------------

// Window is one exported bucket of a run's timeseries.
type Window struct {
	// Start and End are the covered window-index range [Start, End);
	// multiply by Run.WindowLen for virtual time.
	Start, End int
	Counters
	// InFlight is the in-flight gauge at the bucket's end: cumulative
	// injections minus completions.
	InFlight int
}

// Windows returns the run's timeseries, in window order.
func (run *Run) Windows() []Window {
	out := make([]Window, 0, run.win.used)
	inFlight := 0
	for i := 0; i < run.win.used; i++ {
		c := run.win.buckets[i]
		inFlight += c.Injections - c.Completions
		out = append(out, Window{
			Start:    i * run.win.stride,
			End:      (i + 1) * run.win.stride,
			Counters: c,
			InFlight: inFlight,
		})
	}
	return out
}

// Sched returns the run's scheduler profile (Shards == 0 when the run
// never finished).
func (run *Run) Sched() *SchedStats { return &run.sched }

// WorstFlights returns up to k completed sampled flights, worst
// latency first (ties break toward the lower message id), across all
// runs. A non-positive k selects the recorder's WorstK option.
func (r *Recorder) WorstFlights(k int) []Flight {
	if k <= 0 {
		k = r.opt.WorstK
	}
	var out []Flight
	for _, run := range r.runs {
		for _, f := range run.flights {
			if f.completed {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency > out[j].Latency
		}
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].Msg < out[j].Msg
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// busiestRun returns the recorded run with the most services — the
// one worth rendering when a CLI can show only one panel.
func (r *Recorder) busiestRun() *Run {
	var best *Run
	bestServices := -1
	for _, run := range r.runs {
		n := 0
		for i := 0; i < run.win.used; i++ {
			n += run.win.buckets[i].Services
		}
		if n > bestServices {
			best, bestServices = run, n
		}
	}
	return best
}

// PanelSeries returns the busiest run's label and a set of named
// window series (in-flight, injections, completions, services, depth
// max, merges, cache hits) ready for viz.Timeline. Empty when nothing
// was recorded.
func (r *Recorder) PanelSeries() (label string, names []string, values [][]float64) {
	run := r.busiestRun()
	if run == nil {
		return "", nil, nil
	}
	ws := run.Windows()
	col := func(f func(Window) float64) []float64 {
		xs := make([]float64, len(ws))
		for i, w := range ws {
			xs[i] = f(w)
		}
		return xs
	}
	names = []string{"in-flight", "inject", "complete", "services", "depth max"}
	values = [][]float64{
		col(func(w Window) float64 { return float64(w.InFlight) }),
		col(func(w Window) float64 { return float64(w.Injections) }),
		col(func(w Window) float64 { return float64(w.Completions) }),
		col(func(w Window) float64 { return float64(w.Services) }),
		col(func(w Window) float64 { return float64(w.DepthMax) }),
	}
	var merges, suppressed, multicast, expired, hits, churn, gossip int
	for _, w := range ws {
		merges += w.Merges
		suppressed += w.Suppressions
		multicast += w.Multicasts
		expired += w.PITExpiries
		hits += w.CacheHits
		churn += w.Crashes + w.Joins
		gossip += w.GossipSends
	}
	if merges > 0 {
		names = append(names, "merges")
		values = append(values, col(func(w Window) float64 { return float64(w.Merges) }))
	}
	if suppressed > 0 {
		names = append(names, "suppressed")
		values = append(values, col(func(w Window) float64 { return float64(w.Suppressions) }))
	}
	if multicast > 0 {
		names = append(names, "multicast")
		values = append(values, col(func(w Window) float64 { return float64(w.Multicasts) }))
	}
	if expired > 0 {
		names = append(names, "pit expired")
		values = append(values, col(func(w Window) float64 { return float64(w.PITExpiries) }))
	}
	if hits > 0 {
		names = append(names, "cache hits")
		values = append(values, col(func(w Window) float64 { return float64(w.CacheHits) }))
	}
	if churn > 0 {
		names = append(names, "churn")
		values = append(values, col(func(w Window) float64 { return float64(w.Crashes + w.Joins) }))
	}
	if gossip > 0 {
		names = append(names, "gossip")
		values = append(values, col(func(w Window) float64 { return float64(w.GossipSends) }))
	}
	return run.Label, names, values
}
