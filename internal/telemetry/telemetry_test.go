package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// TestSeriesCoalesce pins the ring's growth contract: totals survive
// every coalescing step and the bucket count never exceeds capacity.
func TestSeriesCoalesce(t *testing.T) {
	s := newSeries(4)
	for win := 0; win < 100; win++ {
		s.at(win).Services += win
	}
	if s.used > len(s.buckets) {
		t.Fatalf("used %d exceeds capacity %d", s.used, len(s.buckets))
	}
	if s.stride != 32 {
		t.Errorf("stride = %d, want 32 (100 windows over 4 buckets)", s.stride)
	}
	total := 0
	for i := 0; i < s.used; i++ {
		total += s.buckets[i].Services
	}
	if want := 99 * 100 / 2; total != want {
		t.Errorf("coalesced total = %d, want %d", total, want)
	}
}

// TestSeriesOrderIndependence is the determinism argument: the final
// buckets are a pure function of the (window, increment) multiset, not
// of arrival order — which is what lets shard views record in parallel
// pop order and still merge byte-identically.
func TestSeriesOrderIndependence(t *testing.T) {
	incr := make([]int, 0, 300)
	for win := 0; win < 100; win++ {
		incr = append(incr, win, 99-win, (win*37)%100)
	}
	forward, backward := newSeries(8), newSeries(8)
	for _, win := range incr {
		c := forward.at(win)
		c.Services++
		if win > c.DepthMax {
			c.DepthMax = win
		}
	}
	for i := len(incr) - 1; i >= 0; i-- {
		c := backward.at(incr[i])
		c.Services++
		if incr[i] > c.DepthMax {
			c.DepthMax = incr[i]
		}
	}
	if forward.stride != backward.stride || forward.used != backward.used {
		t.Fatalf("shape diverged: %d/%d vs %d/%d",
			forward.stride, forward.used, backward.stride, backward.used)
	}
	for i := 0; i < forward.used; i++ {
		if forward.buckets[i] != backward.buckets[i] {
			t.Errorf("bucket %d diverged: %+v vs %+v", i, forward.buckets[i], backward.buckets[i])
		}
	}
}

// TestSeriesMergeAlignsStrides folds a fine view into a coarse main
// series and vice versa.
func TestSeriesMergeAlignsStrides(t *testing.T) {
	coarse := newSeries(4)
	for win := 0; win < 64; win++ {
		coarse.at(win).Services++ // stride grows to 16
	}
	fine := newSeries(4)
	fine.at(0).Services += 5
	fine.at(3).Services += 7
	coarse.merge(fine)
	total := 0
	for i := 0; i < coarse.used; i++ {
		total += coarse.buckets[i].Services
	}
	if total != 64+5+7 {
		t.Errorf("merged total = %d, want 76", total)
	}
	if coarse.buckets[0].Services != 16+5+7 {
		t.Errorf("bucket 0 = %d, want 28 (windows 0..15)", coarse.buckets[0].Services)
	}
}

// TestRecorderRoundTrip drives a tiny synthetic run through the full
// hook surface and checks the exported gauges.
func TestRecorderRoundTrip(t *testing.T) {
	r := New(Options{FlightSample: 4, WorstK: 2})
	r.Label("test-run")
	r.BeginRun(1, 4) // window length 1; every id sampled
	r.Inject(0, 0.5, 1, 9)
	r.Inject(1, 1.5, 2, 9)
	r.Service(0.5, 1)
	r.Hop(0, 3, 0.5, 0.5, 1.5, 1, DecisionGreedy)
	r.Service(1.5, 2)
	r.Hop(1, 3, 1.5, 1.5, 2.5, 2, DecisionBacktrack)
	r.Merge(1, 1.5)
	r.Complete(0, 1.5, true, ServedPrimary)
	r.Complete(1, 2.5, false, ServedNone)
	r.EndRun(0.25, 2)

	runs := r.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0]
	if run.Label != "test-run" {
		t.Errorf("label = %q", run.Label)
	}
	ws := run.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3 (0,1,2)", len(ws))
	}
	if ws[0].Injections != 1 || ws[0].Services != 1 || ws[0].InFlight != 1 {
		t.Errorf("window 0 = %+v", ws[0])
	}
	if ws[1].Injections != 1 || ws[1].Completions != 1 || ws[1].Merges != 1 || ws[1].InFlight != 1 {
		t.Errorf("window 1 = %+v", ws[1])
	}
	if ws[2].Completions != 1 || ws[2].Drops != 1 || ws[2].InFlight != 0 {
		t.Errorf("window 2 = %+v", ws[2])
	}
	if ws[1].DepthMax != 2 || ws[1].DepthSum != 2 || ws[1].DepthCount != 1 {
		t.Errorf("window 1 depth = %+v", ws[1].Counters)
	}
	// Scheduler: a run that never sharded reports one logical shard.
	if s := run.Sched(); s.Shards != 1 || s.Drain[0] != 0.25 || s.Events[0] != 2 {
		t.Errorf("seq sched = %+v", s)
	}
	worst := r.WorstFlights(10)
	if len(worst) != 2 {
		t.Fatalf("worst flights = %d, want 2", len(worst))
	}
	// Msg 0: inject 0.5, complete 1.5 → latency 1. Msg 1: 1.5→2.5 → 1.
	// Tie breaks toward the lower message id.
	if worst[0].Msg != 0 || worst[0].Latency != 1 {
		t.Errorf("worst[0] = %+v", worst[0])
	}
	if len(worst[0].Hops) != 1 || worst[0].Hops[0].Decision != "greedy" {
		t.Errorf("worst[0] hops = %+v", worst[0].Hops)
	}
	if !worst[1].Merged || worst[1].Served != "none" || worst[1].Delivered {
		t.Errorf("worst[1] = %+v", worst[1])
	}
}

// TestReservoirDeterminism: two recorders with the same options sample
// the same message IDs, independent of anything the simulation does.
func TestReservoirDeterminism(t *testing.T) {
	a, b := New(Options{FlightSample: 8}), New(Options{FlightSample: 8})
	a.BeginRun(1, 1000)
	b.BeginRun(1, 1000)
	ra, rb := a.Runs()[0], b.Runs()[0]
	if len(ra.sampled) != 8 || len(rb.sampled) != 8 {
		t.Fatalf("sample sizes %d/%d, want 8", len(ra.sampled), len(rb.sampled))
	}
	for id := range ra.sampled {
		if _, ok := rb.sampled[id]; !ok {
			t.Errorf("id %d sampled by a but not b", id)
		}
	}
}

// TestShardViewsMerge folds two shard views into the main series at
// EndRun.
func TestShardViewsMerge(t *testing.T) {
	r := New(Options{})
	r.BeginRun(2, 10) // window length 0.5
	v0, v1 := r.View(0), r.View(1)
	v0.Service(0.1, 3)
	v1.Service(0.2, 5)
	v1.Service(0.6, 1)
	r.EndRun(0.1, 3)
	ws := r.Runs()[0].Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].Services != 2 || ws[0].DepthMax != 5 || ws[0].DepthSum != 8 {
		t.Errorf("window 0 = %+v", ws[0].Counters)
	}
	if ws[1].Services != 1 {
		t.Errorf("window 1 = %+v", ws[1].Counters)
	}
}

// TestWriteJSONLParses checks every exported line is standalone JSON
// with the expected type tags, and the CSV has one row per bucket.
func TestWriteJSONLParses(t *testing.T) {
	r := New(Options{FlightSample: 2, WorstK: 2})
	r.BeginRun(1, 8)
	r.Inject(0, 0, 1, 2)
	r.Service(0, 1)
	r.Complete(0, 1, true, ServedPrimary)
	r.EndRun(0.01, 1)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		types[line.Type]++
	}
	if types["run"] != 1 || types["window"] == 0 {
		t.Errorf("line types = %v", types)
	}
	if types["flight"] == 0 {
		t.Errorf("no flight lines exported: %v", types)
	}

	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := bytes.Count(buf.Bytes(), []byte("\n"))
	if want := 1 + len(r.Runs()[0].Windows()); rows != want {
		t.Errorf("csv rows = %d, want %d", rows, want)
	}
}

// TestDisabledRecorderHooks: hook calls outside a run are no-ops, and
// a nil scheduler read stays nil.
func TestDisabledRecorderHooks(t *testing.T) {
	r := New(Options{})
	r.Inject(0, 0, 0, 0)
	r.Complete(0, 1, true, ServedPrimary)
	r.Merge(0, 1)
	r.Cache(1, 1, 1)
	r.Service(0, 1)
	r.Hop(0, 0, 0, 0, 0, 1, DecisionGreedy)
	r.SchedInit(2, 10)
	r.SchedWindow(0, 1, 0, 1)
	r.SchedHandoffs(0, 1)
	r.EndRun(1, 1)
	if len(r.Runs()) != 0 {
		t.Errorf("no-run hooks created runs: %d", len(r.Runs()))
	}
	if r.Scheduler() != nil {
		t.Error("Scheduler() non-nil with no runs")
	}
}

// TestBarrierWaitFrac pins the headline fraction's range and zero
// handling.
func TestBarrierWaitFrac(t *testing.T) {
	s := &SchedStats{Drain: []float64{3, 1}, Wait: []float64{0, 2}}
	if got := s.BarrierWaitFrac(); got < 0 || got > 1 {
		t.Errorf("frac %v outside [0,1]", got)
	}
	if got, want := s.BarrierWaitFrac(), 2.0/6.0; got != want {
		t.Errorf("frac = %v, want %v", got, want)
	}
	empty := &SchedStats{}
	if got := empty.BarrierWaitFrac(); got != 0 {
		t.Errorf("empty frac = %v, want 0", got)
	}
}
