package experiments

import (
	"fmt"

	"repro/internal/load"
	"repro/internal/route"
	"repro/internal/sim"
)

// The ext.saturation.* experiments answer the capacity question the
// fixed-rate ext.load.* runs leave open: at what offered load does the
// network stop keeping up, and do the congestion-aware routing policies
// move that point? Each experiment drives load.Sweep — open-loop Poisson
// arrivals by default, -arrival/-clients/-think select other models —
// over seeded networks and tabulates the latency-vs-throughput curve and
// the knee. Like every traffic experiment, results are independent of
// Params.Workers.

// saturationPolicy is one routing policy a sweep compares.
type saturationPolicy struct {
	name           string
	penalty, depth float64
}

// saturationPolicies resolves the greedy / load-aware / depth-aware
// ladder, honouring -penalty and -depth overrides.
func saturationPolicies(p Params) []saturationPolicy {
	penalty := p.Penalty
	if penalty == 0 {
		penalty = 1
	}
	depth := p.DepthPenalty
	if depth == 0 {
		depth = 1
	}
	return []saturationPolicy{
		{"greedy", 0, 0},
		{"load-aware", penalty, 0},
		{"depth-aware", penalty, depth},
	}
}

// sweepConfigFor builds the SweepConfig the saturation experiments
// share. The message budget defaults to 3·n: deep enough for an
// overloaded hot node to push its backlog well past the p99 bound, so
// the sweep can actually observe saturation.
func sweepConfigFor(p Params, pol saturationPolicy) load.SweepConfig {
	msgs := p.Msgs
	if msgs == 0 {
		msgs = 3 * p.N
	}
	model := p.Arrival
	if model == "" {
		model = "poisson"
	}
	// The bracket minimum is -rate for open-loop sweeps and -clients
	// for closed-loop ones; zero lets the sweep pick its own.
	min := p.Rate
	if model == "closed" || model == "closed-loop" {
		min = float64(p.Clients)
	}
	return load.SweepConfig{
		Config: load.Config{
			Messages:     msgs,
			Capacity:     p.Capacity,
			Workers:      p.Workers,
			Shards:       p.Shards,
			Penalty:      pol.penalty,
			DepthPenalty: pol.depth,
			Live:         p.Live || p.Aggregate || p.PIT,
			Aggregate:    p.Aggregate,
			PIT:          p.PIT,
			PITTimeout:   p.PITTimeout,
			PITWaiters:   p.PITWaiters,
			Route:        route.Options{DeadEnd: route.Backtrack},
			Telemetry:    p.Telemetry,
		},
		Model: model,
		Think: p.Think,
		Min:   min,
	}
}

// runSweep executes one policy's sweep over one scenario's network.
func runSweep(sc loadScenario, p Params, pol saturationPolicy, scenarioIdx int) (*load.SweepResult, error) {
	g, err := buildLoadGraph(sc, p, p.Seed+uint64(scenarioIdx))
	if err != nil {
		return nil, err
	}
	gen, err := workloadFor(p, "zipf")
	if err != nil {
		return nil, err
	}
	return load.Sweep(g, gen, sweepConfigFor(p, pol), p.Seed+uint64(4000+scenarioIdx))
}

// kneeMark annotates a sweep point's stability for the tables.
func kneeMark(stable bool) string {
	if stable {
		return "stable"
	}
	return "UNSTABLE"
}

// capMark annotates a knee row: a sweep that never saturated only
// bounds the capacity from below.
func capMark(saturated bool) string {
	if saturated {
		return "knee found"
	}
	return "no saturation (knee ≥ cap)"
}

// addPolicyRows runs every policy over every scenario and appends one
// knee-summary row per (scenario, policy): the knee load, its
// throughput and p99, and the p99 at 80% of the knee — the headroom a
// production operator would actually run at. The scenario's network is
// built once and shared by every policy's sweep and backoff run.
func addPolicyRows(t *sim.Table, p Params, scenarios []loadScenario) error {
	for i, sc := range scenarios {
		g, err := buildLoadGraph(sc, p, p.Seed+uint64(i))
		if err != nil {
			return err
		}
		gen, err := workloadFor(p, "zipf")
		if err != nil {
			return err
		}
		for _, pol := range saturationPolicies(p) {
			cfg := sweepConfigFor(p, pol)
			res, err := load.Sweep(g, gen, cfg, p.Seed+uint64(4000+i))
			if err != nil {
				return err
			}
			if res.KneePoint() == nil {
				t.AddValues(sc.label, pol.name, res.Knee, 0.0, 0.0, 0.0, "UNSTABLE at min load")
				continue
			}
			// Re-run at 80% of the knee: the operating point with
			// headroom. NewArrival re-resolves the swept family; a
			// closed-loop knee is a client count, so 80% rounds to a
			// whole client.
			at := 0.8 * res.Knee
			arr, err := load.NewArrival(cfg.Model, at, int(at+0.5), cfg.Think)
			if err != nil {
				return err
			}
			runCfg := cfg.Config
			runCfg.Arrival = arr
			backoff, err := load.Run(g, gen, runCfg, p.Seed+uint64(4000+i))
			if err != nil {
				return err
			}
			t.AddValues(sc.label, pol.name,
				res.Knee, res.KneeThroughput, res.KneeP99,
				backoff.LatencyP99, capMark(res.Saturated))
		}
	}
	return nil
}

func init() {
	register(Experiment{
		ID:       "ext.saturation.knee",
		Artifact: "saturation extension: the capacity knee of Zipf traffic on healthy networks",
		Description: "open-loop saturation sweep (Poisson arrivals by default) on a healthy ring " +
			"and 2-D torus: every evaluated load level's throughput and latency tail, " +
			"and the located knee — the largest offered rate at which queues still drain",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<10, 1, 0)
			t := sim.NewTable(
				fmt.Sprintf("Capacity knee under Zipf traffic (n≈%d, l=%d, seed=%d)",
					p.N, p.lgLinks(), p.Seed),
				"config", "offered", "throughput", "p50 lat", "p99 lat", "queue depth", "verdict")
			scenarios := []loadScenario{
				{"ring healthy", 1, 0},
				{"torus healthy", 2, 0},
			}
			for i, sc := range scenarios {
				res, err := runSweep(sc, p, saturationPolicy{name: "greedy"}, i)
				if err != nil {
					return nil, err
				}
				for _, pt := range res.Points {
					t.AddValues(sc.label, pt.Load, pt.Result.Throughput,
						pt.Result.LatencyP50, pt.Result.LatencyP99,
						pt.Result.MaxQueueDepth, kneeMark(pt.Stable))
				}
				t.AddValues(sc.label+" KNEE", res.Knee, res.KneeThroughput,
					0.0, res.KneeP99, 0, fmt.Sprintf("p99 bound %.1f", res.P99Bound))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.saturation.policies",
		Artifact: "saturation extension: does congestion-aware routing move the capacity knee?",
		Description: "greedy vs load-aware (cumulative charged load) vs depth-aware (instantaneous " +
			"queue depth) routing on healthy networks: each policy's knee, its throughput, " +
			"and the p99 latency at 80% of the knee",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<10, 1, 0)
			t := sim.NewTable(
				fmt.Sprintf("Knee by routing policy, healthy networks (n≈%d, l=%d, seed=%d)",
					p.N, p.lgLinks(), p.Seed),
				"config", "policy", "knee", "knee thr", "p99@knee", "p99@80%", "verdict")
			scenarios := []loadScenario{
				{"ring healthy", 1, 0},
				{"torus healthy", 2, 0},
			}
			if err := addPolicyRows(t, p, scenarios); err != nil {
				return nil, err
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.saturation.failed",
		Artifact: "saturation extension: the knee under 30% node failures",
		Description: "the same greedy / load-aware / depth-aware knee comparison on 30%-failed " +
			"ring and torus — where dead ends and detours compound queueing, the " +
			"depth-aware policy should hold at least greedy's knee throughput",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<10, 1, 0)
			t := sim.NewTable(
				fmt.Sprintf("Knee by routing policy, 30%% failed (n≈%d, l=%d, seed=%d)",
					p.N, p.lgLinks(), p.Seed),
				"config", "policy", "knee", "knee thr", "p99@knee", "p99@80%", "verdict")
			scenarios := []loadScenario{
				{"ring 30% failed", 1, 0.3},
				{"torus 30% failed", 2, 0.3},
			}
			if err := addPolicyRows(t, p, scenarios); err != nil {
				return nil, err
			}
			return t, nil
		},
	})
}
