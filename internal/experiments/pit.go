package experiments

import (
	"fmt"

	"repro/internal/load"
	"repro/internal/sim"
)

// The ext.pit.* experiments isolate the pending-interest response
// path: suppression of redundant same-key forwarding network-wide,
// answers retracing the reverse path through the same per-node FIFOs,
// and the strand/timeout economics. The flood experiment sweeps the
// knee — where PIT's network-wide collapse beats per-queue aggregation
// on the rate the network absorbs — and the suppression experiment
// fixes the rate and breaks the ledger down: how many lookups parked,
// how many a returning answer released, how many timed out.

func init() {
	register(Experiment{
		ID:       "ext.pit.flood",
		Artifact: "PIT extension: response-path suppression vs the flood knee",
		Description: "single-target flood on a 30%-failed torus, no replication, swept in the " +
			"live, live+aggregate, and live+pit engine modes under open-loop Poisson " +
			"arrivals. The headline is the PIT knee rate: interest suppression collapses " +
			"the flood so completely that the sweep runs into its bracket cap unsaturated, " +
			"a lower bound on capacity already severalfold above the aggregation knee — " +
			"while, unlike aggregation, every delivered lookup is charged its answer's " +
			"return trip",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<10, 1, 0)
			t := sim.NewTable(
				fmt.Sprintf("Flood knee by response-path mode (torus 30%% failed, n≈%d, l=%d, seed=%d)",
					p.N, p.lgLinks(), p.Seed),
				"mode", "plan", "knee", "knee thr", "p99@knee", "suppressed", "fanout",
				"expired", "knee lift", "verdict")
			sc := loadScenario{"torus 30% failed", 2, 0.3}
			g, err := buildLoadGraph(sc, p, p.Seed)
			if err != nil {
				return nil, err
			}
			var base float64
			for _, mode := range engineModes[1:] { // snapshot has no live queues to suppress in
				gen, err := workloadFor(p, "flood")
				if err != nil {
					return nil, err
				}
				cfg := sweepConfigFor(p, saturationPolicy{name: "greedy"})
				cfg.Live = mode.live
				cfg.Aggregate = mode.aggregate
				cfg.PIT = mode.pit
				res, err := load.Sweep(g, gen, cfg, p.Seed+uint64(8500))
				if err != nil {
					return nil, err
				}
				kp := res.KneePoint()
				if kp == nil {
					t.AddValues(mode.label, "", res.Knee, 0.0, 0.0, 0, 0, 0, 0.0, "UNSTABLE at min load")
					continue
				}
				// Lift compares knee RATES against the live+aggregate
				// baseline — the largest offered load each mode absorbs —
				// not knee throughputs: aggregation's merged completions
				// are never charged an answer leg, so its throughput counts
				// work the response path actually performs.
				lift := 0.0
				if mode.aggregate {
					base = res.Knee
					lift = 1
				} else if base > 0 {
					lift = res.Knee / base
				}
				t.AddValues(mode.label, kp.Result.Plan, res.Knee, res.KneeThroughput,
					res.KneeP99, kp.Result.Suppressed, kp.Result.MulticastFanout,
					kp.Result.PITExpired, lift, capMark(res.Saturated))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.pit.suppression",
		Artifact: "PIT extension: the suppression ledger across offered rates and interest lifetimes",
		Description: "fixed-rate single-target floods on a 30%-failed torus under live+pit at " +
			"increasing offered rates and, at the highest rate, decreasing interest " +
			"lifetimes: every suppressed lookup is accounted for — released by an " +
			"answer's multicast or expired into a re-forward — and latency is measured " +
			"to answer receipt. Short lifetimes show the false-expiry regime: interests " +
			"that time out just before their answer arrives re-forward redundantly, " +
			"inflating both the tail and the expiry count",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<10, 1, 2048)
			t := sim.NewTable(
				fmt.Sprintf("PIT suppression ledger (torus 30%% failed flood, n≈%d, l=%d, msgs=%d, seed=%d)",
					p.N, p.lgLinks(), p.Msgs, p.Seed),
				"rate", "lifetime", "delivered", "suppressed", "released", "expired",
				"p99 lat", "queue depth")
			sc := loadScenario{"torus 30% failed", 2, 0.3}
			g, err := buildLoadGraph(sc, p, p.Seed)
			if err != nil {
				return nil, err
			}
			type point struct {
				rate, lifetime float64
			}
			rates := []point{{2, 0}, {8, 0}, {32, 0}, {128, 0}}
			if p.Rate > 0 {
				rates = []point{{p.Rate, 0}}
			}
			top := rates[len(rates)-1].rate
			lifetimes := []float64{16, 4}
			if p.PITTimeout > 0 {
				lifetimes = []float64{p.PITTimeout}
			}
			for _, lt := range lifetimes {
				rates = append(rates, point{top, lt})
			}
			for i, pt := range rates {
				gen, err := workloadFor(p, "flood")
				if err != nil {
					return nil, err
				}
				cfg, err := loadConfig(p)
				if err != nil {
					return nil, err
				}
				cfg.Live = true
				cfg.PIT = true
				cfg.Arrival = load.Poisson(pt.rate)
				if pt.lifetime > 0 {
					cfg.PITTimeout = pt.lifetime
				}
				r, err := load.Run(g, gen, cfg, p.Seed+uint64(8600+i))
				if err != nil {
					return nil, err
				}
				if r.Suppressed != r.MulticastFanout+r.PITExpired {
					return nil, fmt.Errorf("ext.pit.suppression: ledger imbalance: %d != %d + %d",
						r.Suppressed, r.MulticastFanout, r.PITExpired)
				}
				lt := cfg.ResolvedPITTimeout()
				t.AddValues(pt.rate, lt, r.Delivered, r.Suppressed, r.MulticastFanout,
					r.PITExpired, r.LatencyP99, r.MaxQueueDepth)
			}
			return t, nil
		},
	})
}
