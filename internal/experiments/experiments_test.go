package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny returns parameters small enough that every experiment finishes
// in well under a second.
func tiny() Params {
	return Params{N: 1 << 9, Trials: 2, Msgs: 20, Seed: 7, Workers: 2}
}

func TestRegistryComplete(t *testing.T) {
	// Every experiment promised in DESIGN.md's index must be
	// registered.
	want := []string{
		"table1.nofail.l1", "table1.nofail.multi", "table1.nofail.detb",
		"table1.linkfail.multi", "table1.linkfail.detb",
		"table1.nodefail.binomial", "table1.nodefail.general",
		"fig5a", "fig5b", "fig6a", "fig6b", "fig6a.d2", "fig6b.d2", "fig7",
		"ablation.replacement", "ablation.backtrack", "ablation.sidedness",
		"ablation.exponent", "baselines", "theory",
		"ext.faultcompare", "ext.2d", "ext.byzantine", "ext.physical",
		"ablation.space", "ext.churn", "table1.bounds",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(ids) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(ids), len(want))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id should error")
	}
	if _, err := Run("nope", tiny()); err == nil {
		t.Error("Run of unknown id should error")
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tbl, err := Run(id, tiny())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tbl == nil || len(tbl.Rows) == 0 {
				t.Fatalf("%s produced an empty table", id)
			}
			if tbl.Title == "" || len(tbl.Columns) < 2 {
				t.Errorf("%s table missing title/columns", id)
			}
		})
	}
}

func TestExperimentsAreReproducible(t *testing.T) {
	a, err := Run("table1.nofail.multi", tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("table1.nofail.multi", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed produced different tables:\n%s\nvs\n%s", a, b)
	}
}

func TestFig6a2DRunsDeterministically(t *testing.T) {
	// The §6 node-failure sweep at d=2 must run end-to-end through the
	// generic pipeline and reproduce exactly under a fixed seed.
	p := Params{Dim: 2, Side: 16, Trials: 2, Msgs: 30, Seed: 11}
	a, err := Run("fig6a.d2", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig6a.d2", p)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed produced different 2-D tables:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a.Title, "torus d=2 side=16") {
		t.Errorf("2-D table title must record the space, got %q", a.Title)
	}
	// Healthy torus row: no failed searches.
	first := a.Rows[0]
	if parseF(t, first[1]) != 0 || parseF(t, first[3]) != 0 {
		t.Errorf("no failures should mean no failed searches in 2-D: %v", first)
	}
	// -dim on the plain fig6a id selects the torus too.
	c, err := Run("fig6a", p)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != a.String() {
		t.Errorf("fig6a -dim 2 and fig6a.d2 must agree:\n%s\nvs\n%s", c, a)
	}
}

func TestFig6aShapeMatchesPaper(t *testing.T) {
	// The qualitative claims of §6 at moderate scale:
	//  - failed fraction grows with p for every strategy;
	//  - backtracking fails least at high p;
	//  - terminate stays below the failed-node fraction p itself.
	p := Params{N: 1 << 11, Trials: 3, Msgs: 100, Seed: 3}
	tbl, err := Run("fig6a", p)
	if err != nil {
		t.Fatal(err)
	}
	type row struct{ p, term, rr, bt float64 }
	rows := make([]row, 0, len(tbl.Rows))
	for _, cells := range tbl.Rows {
		rows = append(rows, row{
			p:    parseF(t, cells[0]),
			term: parseF(t, cells[1]),
			rr:   parseF(t, cells[2]),
			bt:   parseF(t, cells[3]),
		})
	}
	if len(rows) < 5 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	last := rows[len(rows)-1] // p = 0.8
	if last.p != 0.8 {
		t.Fatalf("last row p = %v", last.p)
	}
	if last.bt >= last.term {
		t.Errorf("backtracking (%v) should beat terminate (%v) at p=0.8", last.bt, last.term)
	}
	// The paper's "failed searches < p" claim holds at its scale
	// (ℓ=17); at this test's reduced ℓ the p=0.8 point can exceed p
	// slightly, so assert the claim at moderate p instead.
	for _, r := range rows {
		if r.p > 0 && r.p <= 0.6 && r.term >= r.p {
			t.Errorf("terminate failed frac %v at p=%v should stay below p", r.term, r.p)
		}
	}
	if rows[0].term != 0 || rows[0].bt != 0 {
		t.Errorf("no failures should mean no failed searches: %+v", rows[0])
	}
	// Monotone-ish growth: last > first for terminate.
	if last.term <= rows[1].term {
		t.Errorf("terminate failures should grow with p: %+v vs %+v", rows[1], last)
	}
}

func TestExponentAblationPrefersOne(t *testing.T) {
	p := Params{N: 1 << 11, Trials: 3, Msgs: 100, Seed: 5}
	tbl, err := Run("ablation.exponent", p)
	if err != nil {
		t.Fatal(err)
	}
	hops := map[string]float64{}
	for _, cells := range tbl.Rows {
		hops[cells[0]] = parseF(t, cells[1])
	}
	// Exponent 1 should beat 0 (uniform) and 2 (too local).
	if hops["1"] >= hops["0"] {
		t.Errorf("exponent 1 (%v hops) should beat uniform (%v hops)", hops["1"], hops["0"])
	}
	if hops["1"] >= hops["2"] {
		t.Errorf("exponent 1 (%v hops) should beat exponent 2 (%v hops)", hops["1"], hops["2"])
	}
}

func TestBaselinesTableContainsAllSystems(t *testing.T) {
	p := Params{N: 1 << 10, Trials: 1, Msgs: 50, Seed: 9}
	tbl, err := Run("baselines", p)
	if err != nil {
		t.Fatal(err)
	}
	text := tbl.String()
	for _, name := range []string{"aspnes-shah", "chord", "kleinberg", "can", "flood", "central"} {
		if !strings.Contains(text, name) {
			t.Errorf("baselines table missing %q:\n%s", name, text)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number", s)
	}
	return v
}
