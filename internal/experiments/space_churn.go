package experiments

import (
	"fmt"

	"repro/internal/construct"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "ablation.space",
		Artifact: "§2/§4 spaces: line (the analysis space) vs ring (the Chord-like space)",
		Description: "same distribution and routing on both 1-D spaces; the line's boundary " +
			"lengthens searches near the edges, the ring is homogeneous",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<13, 5, 150)
			t := sim.NewTable(fmt.Sprintf("Line vs ring (n=%d)", p.N),
				"space", "links", "mean hops", "failed frac @ p=0.5 (backtrack)")
			for _, spaceName := range []string{"ring", "line"} {
				spaceName := spaceName
				for _, links := range []int{1, p.lgLinks()} {
					links := links
					mk := func() (metric.Space, error) {
						if spaceName == "line" {
							return metric.NewLine(p.N)
						}
						return metric.NewRing(p.N)
					}
					healthy, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
						sp, err := mk()
						if err != nil {
							return sim.SearchStats{}, err
						}
						g, err := graph.BuildIdeal(sp, graph.PaperConfig(links), src)
						if err != nil {
							return sim.SearchStats{}, err
						}
						r := route.New(g, route.Options{})
						return sim.MeasureSearches(g, r, src, p.Msgs)
					})
					if err != nil {
						return nil, err
					}
					damaged, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
						sp, err := mk()
						if err != nil {
							return sim.SearchStats{}, err
						}
						g, err := graph.BuildIdeal(sp, graph.PaperConfig(links), src)
						if err != nil {
							return sim.SearchStats{}, err
						}
						if _, err := failure.FailNodesFraction(g, 0.5, src); err != nil {
							return sim.SearchStats{}, err
						}
						r := route.New(g, route.Options{DeadEnd: route.Backtrack})
						return sim.MeasureSearches(g, r, src, p.Msgs)
					})
					if err != nil {
						return nil, err
					}
					t.AddValues(spaceName, links, healthy.MeanHops(), damaged.FailedFraction())
				}
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.churn",
		Artifact: "self-stabilization (§1's goal): routing quality through churn-and-repair cycles",
		Description: "alternate batches of crashes and §5 repair; failed-search fraction " +
			"spikes after damage and returns to zero after healing",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<11, 3, 150)
			links := p.lgLinks()
			const cycles = 4
			type row struct {
				phase      string
				failedFrac float64
				meanHops   float64
			}
			rowsPerTrial := 1 + 2*cycles
			agg := make([]row, rowsPerTrial)

			results := make([][]row, p.Trials)
			_, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
				ring, err := metric.NewRing(p.N)
				if err != nil {
					return sim.SearchStats{}, err
				}
				b, err := construct.NewBuilder(ring, construct.Config{Links: links}, src)
				if err != nil {
					return sim.SearchStats{}, err
				}
				for _, i := range src.Perm(p.N) {
					if err := b.Add(metric.Point(i)); err != nil {
						return sim.SearchStats{}, err
					}
				}
				local := make([]row, 0, rowsPerTrial)
				measure := func(phase string) error {
					r := route.New(b.Graph(), route.Options{DeadEnd: route.Backtrack})
					s, err := sim.MeasureSearches(b.Graph(), r, src, p.Msgs)
					if err != nil {
						return err
					}
					local = append(local, row{phase, s.FailedFraction(), s.MeanHops()})
					return nil
				}
				if err := measure("initial"); err != nil {
					return sim.SearchStats{}, err
				}
				for c := 1; c <= cycles; c++ {
					// Damage: crash 20% of live nodes (no repair yet).
					if _, err := failure.FailNodesFraction(b.Graph(), 0.2, src); err != nil {
						return sim.SearchStats{}, err
					}
					if err := measure(fmt.Sprintf("cycle %d: damaged", c)); err != nil {
						return sim.SearchStats{}, err
					}
					// Repair: departed nodes leave properly (links
					// regenerate) and fresh nodes arrive at the
					// vacated points.
					g := b.Graph()
					for i := 0; i < p.N; i++ {
						pt := metric.Point(i)
						if g.Exists(pt) && !g.Alive(pt) {
							if err := b.Remove(pt); err != nil {
								return sim.SearchStats{}, err
							}
							if err := b.Add(pt); err != nil {
								return sim.SearchStats{}, err
							}
						}
					}
					if err := measure(fmt.Sprintf("cycle %d: repaired", c)); err != nil {
						return sim.SearchStats{}, err
					}
				}
				results[trial] = local
				return sim.SearchStats{}, nil
			})
			if err != nil {
				return nil, err
			}
			// Average phases across trials.
			for _, local := range results {
				for i, r := range local {
					agg[i].phase = r.phase
					agg[i].failedFrac += r.failedFrac / float64(p.Trials)
					agg[i].meanHops += r.meanHops / float64(p.Trials)
				}
			}
			t := sim.NewTable(fmt.Sprintf("Churn and self-repair (n=%d, l=%d, backtracking)", p.N, links),
				"phase", "failed frac", "mean hops")
			for _, r := range agg {
				t.AddValues(r.phase, r.failedFrac, r.meanHops)
			}
			return t, nil
		},
	})
}
