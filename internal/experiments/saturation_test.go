package experiments

import (
	"strings"
	"testing"
)

// TestSaturationExperimentsRegistered pins the ext.saturation.* ids the
// CLI and bench harness depend on.
func TestSaturationExperimentsRegistered(t *testing.T) {
	for _, id := range []string{
		"ext.saturation.knee", "ext.saturation.policies", "ext.saturation.failed",
	} {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
}

// TestSaturationKneeTable runs the knee sweep at a reduced scale and
// checks its shape: a curve of ascending offered loads per scenario, at
// least one unstable point, and a KNEE summary row.
func TestSaturationKneeTable(t *testing.T) {
	table, err := Run("ext.saturation.knee", Params{N: 512, Msgs: 1536, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{"ring healthy", "torus healthy", "KNEE", "UNSTABLE", "stable"} {
		if !strings.Contains(s, want) {
			t.Errorf("knee table missing %q:\n%s", want, s)
		}
	}
}

// TestSaturationKneeDeterministicAcrossWorkers extends the traffic
// determinism contract to the sweep driver: byte-identical tables for
// any worker count.
func TestSaturationKneeDeterministicAcrossWorkers(t *testing.T) {
	small := Params{N: 512, Msgs: 1200, Seed: 7}
	var want string
	for _, workers := range []int{1, 4} {
		p := small
		p.Workers = workers
		table, err := Run("ext.saturation.knee", p)
		if err != nil {
			t.Fatal(err)
		}
		got := table.String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d output diverged:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
}

// TestDepthAwareKneeOnFailedTorus is the acceptance criterion: on the
// 30%-failed torus scenario of ext.saturation.failed (its default
// parameters), the depth-aware policy's knee throughput must be at
// least plain greedy's.
func TestDepthAwareKneeOnFailedTorus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep skipped in -short mode")
	}
	p := Params{}.withDefaults(1<<10, 1, 0)
	sc := loadScenario{"torus 30% failed", 2, 0.3}
	const scenarioIdx = 1 // the torus row of ext.saturation.failed
	greedy, err := runSweep(sc, p, saturationPolicy{name: "greedy"}, scenarioIdx)
	if err != nil {
		t.Fatal(err)
	}
	depth, err := runSweep(sc, p, saturationPolicy{"depth-aware", 1, 1}, scenarioIdx)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.KneeThroughput <= 0 {
		t.Fatalf("greedy knee throughput %v, want positive", greedy.KneeThroughput)
	}
	if depth.KneeThroughput < greedy.KneeThroughput {
		t.Errorf("depth-aware knee throughput %.4f < greedy %.4f",
			depth.KneeThroughput, greedy.KneeThroughput)
	}
}
