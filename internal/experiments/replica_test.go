package experiments

import (
	"strings"
	"testing"

	"repro/internal/load"
)

// TestReplicaExperimentsRegistered pins the ext.replica.* ids the CLI
// and bench harness depend on.
func TestReplicaExperimentsRegistered(t *testing.T) {
	for _, id := range []string{
		"ext.replica.flood", "ext.replica.zipf", "ext.replica.churn",
	} {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
}

// TestReplicaZipfTable runs the placement comparison at a reduced scale
// and checks its shape: every placement row on both scenarios, and the
// cache strategy actually placing copies.
func TestReplicaZipfTable(t *testing.T) {
	table, err := Run("ext.replica.zipf", Params{N: 512, Msgs: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{
		"ring healthy", "torus healthy",
		"none", "hash", "antipodal", "cache-on-path", "max served",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("zipf replica table missing %q:\n%s", want, s)
		}
	}
}

// TestReplicaChurnDeterministicAcrossWorkers extends the worker
// invariance contract to the replica pipeline end to end.
func TestReplicaChurnDeterministicAcrossWorkers(t *testing.T) {
	small := Params{N: 256, Msgs: 200, Seed: 7}
	var want string
	for _, workers := range []int{1, 4} {
		p := small
		p.Workers = workers
		table, err := Run("ext.replica.churn", p)
		if err != nil {
			t.Fatal(err)
		}
		got := table.String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d output diverged:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
}

// TestReplicaFloodKneeLift is the acceptance criterion: on the
// 30%-failed torus scenario of ext.replica.flood (its default
// parameters), k = 4 replicas with cache-on-path must lift the flood
// knee throughput at least 3x over the unreplicated baseline.
func TestReplicaFloodKneeLift(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep skipped in -short mode")
	}
	p := Params{}.withDefaults(1<<10, 1, 0)
	sc := loadScenario{"torus 30% failed", 2, 0.3}
	const scenarioIdx = 0 // the torus row of ext.replica.flood
	g, err := buildLoadGraph(sc, p, p.Seed+uint64(scenarioIdx))
	if err != nil {
		t.Fatal(err)
	}
	ladder := floodLadder(p)
	sweepAt := func(v floodVariant) *load.SweepResult {
		t.Helper()
		cfg := sweepConfigFor(p, saturationPolicy{name: "greedy"})
		cfg.Replication = v.opt
		res, err := load.Sweep(g, load.Flood(), cfg, p.Seed+uint64(5000+scenarioIdx))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := sweepAt(ladder[0])
	replicated := sweepAt(ladder[len(ladder)-1])
	if base.KneeThroughput <= 0 {
		t.Fatalf("baseline knee throughput %v, want positive", base.KneeThroughput)
	}
	lift := replicated.KneeThroughput / base.KneeThroughput
	if lift < 3 {
		t.Errorf("k=4+cache flood knee lift %.3f (thr %.3f vs %.3f), want >= 3",
			lift, replicated.KneeThroughput, base.KneeThroughput)
	}
}
