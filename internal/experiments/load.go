package experiments

import (
	"fmt"
	"math"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

// The ext.load.* experiments ask the production question the paper's
// single-message runs leave open: under sustained traffic, which nodes
// melt first, and does fault-tolerant greedy routing also balance load?
// Each experiment builds seeded networks, injects a workload through
// internal/load's virtual-time queueing simulator, and tabulates the
// per-node load profile and latency quantiles. Results are independent
// of Params.Workers by construction (load.Run's guarantee), so tables
// are byte-identical across machines for a fixed seed.

// loadScenario is one network under test: a space constructor plus a
// fraction of nodes to crash before traffic starts.
type loadScenario struct {
	label    string
	dim      int // 1 = ring, 2 = torus
	failFrac float64
}

// buildLoadGraph constructs the scenario's seeded network: a ring of n
// points for dim 1, a side²-torus of roughly n points for dim 2, with
// lg n long links per node at the dimension-harmonic exponent.
func buildLoadGraph(sc loadScenario, p Params, seed uint64) (*graph.Graph, error) {
	src := rng.New(seed)
	var space metric.Space
	var err error
	if sc.dim >= 2 {
		side := int(math.Round(math.Sqrt(float64(p.N))))
		if side < 8 {
			side = 8
		}
		space, err = metric.NewTorus(side, 2)
	} else {
		space, err = metric.NewRing(p.N)
	}
	if err != nil {
		return nil, err
	}
	g, err := graph.BuildIdeal(space, graph.PaperConfigFor(space, p.lgLinks()), src)
	if err != nil {
		return nil, err
	}
	if sc.failFrac > 0 {
		if _, err := failure.FailNodesFraction(g, sc.failFrac, src.Derive(1)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// loadConfig resolves the shared load.Config from Params.
// -arrival/-rate/-clients/-think reshape the injection process of any
// traffic experiment; empty Arrival with zero Rate keeps the fixed-rate
// default.
func loadConfig(p Params) (load.Config, error) {
	cfg := load.Config{
		Messages:     p.Msgs,
		Capacity:     p.Capacity,
		Rate:         p.Rate,
		Workers:      p.Workers,
		Shards:       p.Shards,
		DepthPenalty: p.DepthPenalty,
		Live:         p.Live || p.Aggregate || p.PIT,
		Aggregate:    p.Aggregate,
		PIT:          p.PIT,
		PITTimeout:   p.PITTimeout,
		PITWaiters:   p.PITWaiters,
		Route:        route.Options{DeadEnd: route.Backtrack},
		Telemetry:    p.Telemetry,
	}
	if p.Replicas > 1 || p.Cache > 0 {
		cfg.Replication = &replica.Options{K: p.Replicas, CacheThreshold: p.Cache}
	}
	// Any churn knob attaches node dynamics with repair on; the load
	// layer resolves the gossip defaults and rejects churn without
	// -live, so a bad combination fails with its error instead of
	// silently running static.
	if p.ChurnRate > 0 || p.KillFrac > 0 {
		cfg.Churn = failure.ChurnSpec{
			Rate:         p.ChurnRate,
			KillFrac:     p.KillFrac,
			KillAt:       p.KillAt,
			GossipFanout: p.GossipFanout,
			Repair:       true,
		}
	}
	if p.Arrival != "" {
		arr, err := load.NewArrival(p.Arrival, p.Rate, p.Clients, p.Think)
		if err != nil {
			return load.Config{}, err
		}
		cfg.Arrival = arr
	}
	return cfg, nil
}

// workloadFor resolves Params.Workload with a per-experiment default.
func workloadFor(p Params, def string) (load.Generator, error) {
	name := p.Workload
	if name == "" {
		name = def
	}
	return load.NewGenerator(name, p.Skew)
}

func init() {
	register(Experiment{
		ID:       "ext.load.zipf",
		Artifact: "traffic extension: hotspot (Zipf) load profile across spaces and failures",
		Description: "Zipf-popular lookups through the virtual-time queueing simulator on a ring " +
			"and a 2-D torus, healthy and 30% failed: per-node max/mean load, latency " +
			"quantiles, and queue depth under backtrack routing",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 1, 1000)
			t := sim.NewTable(
				fmt.Sprintf("Load under Zipf traffic (n≈%d, l=%d, msgs=%d, seed=%d)",
					p.N, p.lgLinks(), p.Msgs, p.Seed),
				"config", "max load", "mean load", "max/mean", "p50 lat", "p99 lat",
				"queue depth", "mean hops", "failed frac")
			scenarios := []loadScenario{
				{"ring healthy", 1, 0},
				{"ring 30% failed", 1, 0.3},
				{"torus healthy", 2, 0},
				{"torus 30% failed", 2, 0.3},
			}
			for i, sc := range scenarios {
				g, err := buildLoadGraph(sc, p, p.Seed+uint64(i))
				if err != nil {
					return nil, err
				}
				gen, err := workloadFor(p, "zipf")
				if err != nil {
					return nil, err
				}
				cfg, err := loadConfig(p)
				if err != nil {
					return nil, err
				}
				r, err := load.Run(g, gen, cfg, p.Seed+uint64(1000+i))
				if err != nil {
					return nil, err
				}
				t.AddValues(fmt.Sprintf("%s, %s", sc.label, r.Workload),
					r.MaxLoad, r.MeanLoad, r.MaxMeanRatio(), r.LatencyP50, r.LatencyP99,
					r.MaxQueueDepth, r.Search.MeanHops(), r.Search.FailedFraction())
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.load.workloads",
		Artifact: "traffic extension: workload generator sweep (uniform / zipf / sources / flood)",
		Description: "all four traffic patterns on one healthy ring: how far each skew pushes " +
			"the hottest node, the deepest queue, and the latency tail",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 1, 1000)
			t := sim.NewTable(
				fmt.Sprintf("Workload sweep (ring n=%d, l=%d, msgs=%d, seed=%d)",
					p.N, p.lgLinks(), p.Msgs, p.Seed),
				"workload", "max load", "mean load", "max/mean", "idle nodes",
				"p99 lat", "queue depth", "mean hops")
			g, err := buildLoadGraph(loadScenario{dim: 1}, p, p.Seed)
			if err != nil {
				return nil, err
			}
			skew := p.Skew
			if skew == 0 {
				skew = 1.0
			}
			for i, gen := range []load.Generator{
				load.Uniform(), load.Zipf(skew), load.SkewedSources(skew), load.Flood(),
			} {
				cfg, err := loadConfig(p)
				if err != nil {
					return nil, err
				}
				r, err := load.Run(g, gen, cfg, p.Seed+uint64(2000+i))
				if err != nil {
					return nil, err
				}
				t.AddValues(r.Workload,
					r.MaxLoad, r.MeanLoad, r.MaxMeanRatio(), r.IdleNodes,
					r.LatencyP99, r.MaxQueueDepth, r.Search.MeanHops())
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.load.policy",
		Artifact: "traffic extension: hop-optimal greedy vs congestion-penalized (load-aware) routing",
		Description: "the same Zipf traffic routed twice per network — plain greedy and greedy " +
			"with congestion-penalized detours — on ring and torus, healthy and 30% " +
			"failed: the load-aware policy should cut max load at a bounded mean-hop cost",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 1, 1000)
			penalty := p.Penalty
			if penalty == 0 {
				penalty = 1
			}
			t := sim.NewTable(
				fmt.Sprintf("Greedy vs load-aware routing (n≈%d, l=%d, msgs=%d, penalty=%g, seed=%d)",
					p.N, p.lgLinks(), p.Msgs, penalty, p.Seed),
				"config", "policy", "max load", "max/mean", "p99 lat", "mean hops", "failed frac")
			scenarios := []loadScenario{
				{"ring healthy", 1, 0},
				{"ring 30% failed", 1, 0.3},
				{"torus healthy", 2, 0},
				{"torus 30% failed", 2, 0.3},
			}
			for i, sc := range scenarios {
				g, err := buildLoadGraph(sc, p, p.Seed+uint64(i))
				if err != nil {
					return nil, err
				}
				for _, aware := range []bool{false, true} {
					gen, err := workloadFor(p, "zipf")
					if err != nil {
						return nil, err
					}
					cfg, err := loadConfig(p)
					if err != nil {
						return nil, err
					}
					policy := "greedy"
					if aware {
						cfg.Penalty = penalty
						policy = "load-aware"
					}
					r, err := load.Run(g, gen, cfg, p.Seed+uint64(3000+i))
					if err != nil {
						return nil, err
					}
					t.AddValues(sc.label, policy,
						r.MaxLoad, r.MaxMeanRatio(), r.LatencyP99,
						r.Search.MeanHops(), r.Search.FailedFraction())
				}
			}
			return t, nil
		},
	})
}
