package experiments

import (
	"fmt"
	"math"

	"repro/internal/failure"
	"repro/internal/load"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// The ext.churn.recovery experiment asks the self-stabilization
// question at traffic scale: after a correlated kill of a fraction of
// the network mid-flood, how long until gossip-membership repair
// restores delivered throughput? The measurement is windowed delivered
// throughput from the telemetry timeseries — (completions − drops) per
// virtual tick — compared between the pre-kill steady state and the
// post-kill windows. Repair on vs repair off is the headline contrast:
// the repaired network must climb back to ≥ 90% of its pre-kill
// flood-knee throughput in finite virtual time.

// RecoverFrac is the recovery threshold: the first post-kill window
// whose delivered throughput reaches this fraction of the pre-kill
// mean marks the network recovered.
const RecoverFrac = 0.9

// RecoveryResult is one measured churn-recovery run. ftrbench's
// BENCH_engine.json recovery section and the ext.churn.recovery table
// are both filled from it.
type RecoveryResult struct {
	// Knee is the healthy network's flood-knee rate (the offered load
	// the measurement runs at) and PreKill the mean delivered
	// throughput over the windows wholly before the kill.
	Knee    float64
	PreKill float64
	// KillAt is the kill's virtual time, Floor the worst post-kill
	// window's delivered throughput.
	KillAt float64
	Floor  float64
	// RecoveryTime is the virtual time from the kill to the end of the
	// first post-kill window back at ≥ RecoverFrac·PreKill, or -1 if
	// the run never recovered. Recovered is the best post-kill
	// window's fraction of PreKill.
	RecoveryTime float64
	Recovered    float64
	// Repair ledger, copied from the run.
	Crashes, Joins, LinksRebuilt, GossipSends int
	MembershipLag                             float64
	// Plan and PlanReason name the execution plan the measurement run
	// resolved to and why — surfaced so a multi-shard request that fell
	// back to the sequential loop is visible, not silent.
	Plan, PlanReason string
}

// recoveryScenario resolves the shared scenario parameters from p:
// a healthy seeded ring under single-target flood traffic.
func recoveryScenario(p Params) (msgs int, killFrac float64, p2 Params) {
	p = p.withDefaults(1<<10, 1, 0)
	msgs = p.Msgs
	if msgs == 0 {
		msgs = 4 * p.N
	}
	killFrac = p.KillFrac
	if killFrac == 0 {
		killFrac = 0.3
	}
	return msgs, killFrac, p
}

// MeasureRecovery runs the churn-recovery scenario once: sweep the
// healthy flood knee, then rerun at the knee rate with a correlated
// kill of killFrac at one third of the injection horizon (Params.KillAt
// overrides), gossip repair on or off, and read the recovery profile
// out of the telemetry windows. The flood target is protected from the
// kill — the measurement is about routing repair, not about losing the
// only copy of the hot key. Deterministic in (Params, repair).
func MeasureRecovery(p Params, repair bool) (*RecoveryResult, error) {
	msgs, killFrac, p := recoveryScenario(p)

	// Phase 1: the healthy knee. The sweep attaches no churn, so the
	// graph comes out untouched and the knee is the pre-kill capacity.
	g, err := buildLoadGraph(loadScenario{dim: 1}, p, p.Seed)
	if err != nil {
		return nil, err
	}
	sweepCfg := load.SweepConfig{
		Config: load.Config{
			Messages: msgs,
			Capacity: p.Capacity,
			Workers:  p.Workers,
			Shards:   p.Shards,
			Live:     true,
			Route:    routeOptions(),
		},
		Model:      "poisson",
		Bisections: 4,
	}
	runSeed := p.Seed + 6000
	res, err := load.Sweep(g, load.Flood(), sweepCfg, runSeed)
	if err != nil {
		return nil, err
	}
	if res.KneePoint() == nil {
		return nil, fmt.Errorf(
			"churn recovery: no finite knee (minimum load already unstable at n=%d msgs=%d; raise -msgs)",
			p.N, msgs)
	}
	knee := res.Knee

	// Phase 2: the kill. Pre-bind a probe flood generator with the
	// stream load.Run will use, so the Protect list names the same
	// victim Run's own Bind elects.
	probe := load.Flood()
	if err := probe.Bind(g, rng.New(runSeed).Derive(0)); err != nil {
		return nil, err
	}
	target, ok := load.FloodTarget(probe)
	if !ok {
		return nil, fmt.Errorf("churn recovery: flood generator did not bind a target")
	}
	horizon := float64(msgs) / knee
	killAt := p.KillAt
	if killAt == 0 {
		killAt = horizon / 3
	}
	tel := telemetry.New(telemetry.Options{})
	cfg := load.Config{
		Messages:  msgs,
		Capacity:  p.Capacity,
		Workers:   p.Workers,
		Shards:    p.Shards,
		Live:      true,
		Arrival:   load.Poisson(knee),
		Route:     routeOptions(),
		Telemetry: tel,
		Churn: failure.ChurnSpec{
			Rate:         p.ChurnRate,
			Horizon:      horizon,
			KillFrac:     killFrac,
			KillAt:       killAt,
			GossipFanout: p.GossipFanout,
			Repair:       repair,
			Protect:      []metric.Point{target},
		},
	}
	run, err := load.Run(g, load.Flood(), cfg, runSeed)
	if err != nil {
		return nil, err
	}
	out := &RecoveryResult{
		Knee:          knee,
		KillAt:        killAt,
		Crashes:       run.Crashes,
		Joins:         run.Joins,
		LinksRebuilt:  run.LinksRebuilt,
		GossipSends:   run.GossipSends,
		MembershipLag: run.MembershipLag,
		Plan:          run.Plan,
		PlanReason:    run.PlanReason,
	}
	if err := out.readWindows(tel, killAt); err != nil {
		return nil, err
	}
	return out, nil
}

// readWindows fills the throughput profile from the run's telemetry
// timeseries. Windows straddling the kill belong to neither regime; a
// warm-up prefix (the first quarter of the pre-kill span, while the
// pipeline fills) is excluded from the pre-kill mean, and trailing
// empty windows (after the last completion drained) never trigger
// recovery because their throughput is zero.
func (r *RecoveryResult) readWindows(tel *telemetry.Recorder, killAt float64) error {
	runs := tel.Runs()
	if len(runs) == 0 {
		return fmt.Errorf("churn recovery: telemetry recorded no run")
	}
	run := runs[len(runs)-1]
	winLen := run.WindowLen()
	warmup := killAt / 4
	var preSum float64
	preN := 0
	r.Floor = math.Inf(1)
	r.RecoveryTime = -1
	for _, w := range run.Windows() {
		start, end := float64(w.Start)*winLen, float64(w.End)*winLen
		thr := float64(w.Completions-w.Drops) / (end - start)
		switch {
		case end <= killAt:
			if start >= warmup {
				preSum += thr
				preN++
			}
		case start >= killAt:
			if thr < r.Floor {
				r.Floor = thr
			}
			if r.PreKill > 0 {
				if frac := thr / r.PreKill; frac > r.Recovered {
					r.Recovered = frac
				}
				if r.RecoveryTime < 0 && thr >= RecoverFrac*r.PreKill {
					r.RecoveryTime = end - killAt
				}
			}
		}
		if preN > 0 {
			r.PreKill = preSum / float64(preN)
		}
	}
	if preN == 0 {
		return fmt.Errorf("churn recovery: no pre-kill windows (kill at %g too early for the window stride)", killAt)
	}
	if math.IsInf(r.Floor, 1) {
		return fmt.Errorf("churn recovery: no post-kill windows (kill at %g past the run)", killAt)
	}
	return nil
}

// routeOptions is the traffic experiments' shared routing policy.
func routeOptions() route.Options {
	return route.Options{DeadEnd: route.Backtrack}
}

// recoveryVerdict summarizes one run for the table.
func recoveryVerdict(r *RecoveryResult) string {
	if r.RecoveryTime < 0 {
		return fmt.Sprintf("never back to %.0f%%", 100*RecoverFrac)
	}
	return fmt.Sprintf("recovered ≥%.0f%% in %.0f ticks", 100*RecoverFrac, r.RecoveryTime)
}

func init() {
	register(Experiment{
		ID:       "ext.churn.recovery",
		Artifact: "churn extension: time to recover flood-knee throughput after a correlated kill",
		Description: "flood traffic at the healthy knee rate, then a correlated kill of 30% of the " +
			"ring (the flood target protected): windowed delivered throughput before and " +
			"after, with gossip membership repair on vs the never-repaired baseline — " +
			"repair must climb back to ≥90% of the pre-kill knee throughput in finite time",
		Run: func(p Params) (*sim.Table, error) {
			_, killFrac, rp := recoveryScenario(p)
			t := sim.NewTable(
				fmt.Sprintf("Churn recovery under flood (ring n=%d, l=%d, kill %.0f%% @ 1/3 horizon, seed=%d)",
					rp.N, rp.lgLinks(), 100*killFrac, rp.Seed),
				"variant", "knee", "pre-kill thr", "floor thr", "recovery time",
				"recovered frac", "crashes", "links rebuilt", "gossip sends", "verdict")
			for _, repair := range []bool{true, false} {
				r, err := MeasureRecovery(p, repair)
				if err != nil {
					return nil, err
				}
				label := "repair on"
				if !repair {
					label = "repair off (baseline)"
				}
				t.AddValues(label, r.Knee, r.PreKill, r.Floor, r.RecoveryTime,
					r.Recovered, r.Crashes, r.LinksRebuilt, r.GossipSends, recoveryVerdict(r))
				t.Note("plan=%s — %s", r.Plan, r.PlanReason)
			}
			return t, nil
		},
	})
}
