package experiments

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:          "baselines",
		Artifact:    "§3 comparison: this paper vs Chord, Kleinberg, CAN, flooding, central index",
		Description: "mean hops and messages per lookup on equal-sized networks",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 1, 300)
			links := p.lgLinks()
			src := rng.New(p.Seed)
			t := sim.NewTable(fmt.Sprintf("Baselines (n=%d, %d lookups)", p.N, p.Msgs),
				"system", "mean hops", "mean msgs", "delivered frac")

			// This paper's overlay.
			ring, err := metric.NewRing(p.N)
			if err != nil {
				return nil, err
			}
			g, err := graph.BuildIdeal(ring, graph.PaperConfig(links), src.Derive(1))
			if err != nil {
				return nil, err
			}
			r := route.New(g, route.Options{})
			stats, err := sim.MeasureSearches(g, r, src.Derive(2), p.Msgs)
			if err != nil {
				return nil, err
			}
			t.AddValues("aspnes-shah (this paper)", stats.MeanHops(), stats.MeanHops(),
				1-stats.FailedFraction())

			// Baselines. All sized to p.N nodes (side = sqrt for grids).
			side := int(math.Sqrt(float64(p.N)))
			m := 0
			for v := p.N; v > 1; v >>= 1 {
				m++
			}
			chord, err := baseline.NewChord(m)
			if err != nil {
				return nil, err
			}
			kleinberg, err := baseline.NewKleinberg(side, 1, src.Derive(3))
			if err != nil {
				return nil, err
			}
			can, err := baseline.NewCAN(side)
			if err != nil {
				return nil, err
			}
			flood, err := baseline.NewFlood(p.N, 6, 8, src.Derive(4))
			if err != nil {
				return nil, err
			}
			central, err := baseline.NewCentral(p.N)
			if err != nil {
				return nil, err
			}
			plaxton, err := baseline.NewPlaxton(2, m)
			if err != nil {
				return nil, err
			}
			for _, sys := range []baseline.Router{chord, plaxton, kleinberg, can, flood, central} {
				var hops, msgs, delivered, counted int
				bsrc := src.Derive(5)
				for i := 0; i < p.Msgs; i++ {
					from := bsrc.Intn(sys.Nodes())
					to := bsrc.Intn(sys.Nodes())
					res := sys.Route(bsrc, from, to)
					counted++
					if res.Delivered {
						delivered++
						hops += res.Hops
						msgs += res.Messages
					}
				}
				meanHops, meanMsgs := 0.0, 0.0
				if delivered > 0 {
					meanHops = float64(hops) / float64(delivered)
					meanMsgs = float64(msgs) / float64(delivered)
				}
				t.AddValues(sys.Name(), meanHops, meanMsgs, float64(delivered)/float64(counted))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.faultcompare",
		Artifact: "§3's missing comparison: fault tolerance of this paper vs Chord vs Kleinberg",
		Description: "failed-search fraction under mass node failure, no repair running " +
			"(the paper argues structured systems make no guarantees between failures and repair)",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<13, 3, 100)
			links := p.lgLinks()
			m := 0
			for v := p.N; v > 1; v >>= 1 {
				m++
			}
			side := int(math.Sqrt(float64(p.N)))
			t := sim.NewTable(
				fmt.Sprintf("Fault-tolerance comparison (n=%d, failed-search fraction)", p.N),
				"p(node fail)", "this paper (backtrack)", "this paper (terminate)", "chord", "kleinberg")
			for _, prob := range []float64{0, 0.1, 0.3, 0.5, 0.7} {
				prob := prob
				// This paper, both headline policies.
				ours := make([]float64, 2)
				for i, pol := range []route.DeadEndPolicy{route.Backtrack, route.Terminate} {
					pol := pol
					stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
						ring, err := metric.NewRing(p.N)
						if err != nil {
							return sim.SearchStats{}, err
						}
						g, err := graph.BuildIdeal(ring, graph.PaperConfig(links), src)
						if err != nil {
							return sim.SearchStats{}, err
						}
						if _, err := failure.FailNodesFraction(g, prob, src); err != nil {
							return sim.SearchStats{}, err
						}
						r := route.New(g, route.Options{DeadEnd: pol})
						return sim.MeasureSearches(g, r, src, p.Msgs)
					})
					if err != nil {
						return nil, err
					}
					ours[i] = stats.FailedFraction()
				}

				// Baselines with injected failures (fresh instance per
				// trial for independence).
				measure := func(mk func(src *rng.Source) (baseline.Router, baseline.FailureInjector, error)) (float64, error) {
					stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
						sys, inj, err := mk(src)
						if err != nil {
							return sim.SearchStats{}, err
						}
						if _, err := inj.FailNodes(prob, src); err != nil {
							return sim.SearchStats{}, err
						}
						var s sim.SearchStats
						for i := 0; i < p.Msgs; i++ {
							from, to, ok := randomAlivePair(sys.Nodes(), inj, src)
							if !ok {
								continue
							}
							res := sys.Route(src, from, to)
							s.Record(route.Result{Delivered: res.Delivered, Hops: res.Hops})
						}
						return s, nil
					})
					if err != nil {
						return 0, err
					}
					return stats.FailedFraction(), nil
				}
				chordFrac, err := measure(func(src *rng.Source) (baseline.Router, baseline.FailureInjector, error) {
					c, err := baseline.NewChord(m)
					return c, c, err
				})
				if err != nil {
					return nil, err
				}
				kleinFrac, err := measure(func(src *rng.Source) (baseline.Router, baseline.FailureInjector, error) {
					k, err := baseline.NewKleinberg(side, links, src)
					return k, k, err
				})
				if err != nil {
					return nil, err
				}
				t.AddValues(prob, ours[0], ours[1], chordFrac, kleinFrac)
			}
			return t, nil
		},
	})
}

// randomAlivePair draws distinct live endpoints, or ok=false after too
// many rejections (nearly extinct network).
func randomAlivePair(n int, inj baseline.FailureInjector, src *rng.Source) (from, to int, ok bool) {
	for i := 0; i < 256; i++ {
		a, b := src.Intn(n), src.Intn(n)
		if a != b && inj.Alive(a) && inj.Alive(b) {
			return a, b, true
		}
	}
	return 0, 0, false
}
