package experiments

import (
	"strings"
	"testing"
)

// TestEngineExperimentsRegistered pins the ext.engine.* ids the CLI
// and bench harness depend on.
func TestEngineExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"ext.engine.flood", "ext.engine.modes"} {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
}

// TestEngineModesTable runs the mode comparison at a reduced scale and
// checks its shape: every mode row on both scenarios, and the
// aggregated column present.
func TestEngineModesTable(t *testing.T) {
	table, err := Run("ext.engine.modes", Params{N: 512, Msgs: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{
		"ring healthy", "torus 30% failed",
		"snapshot", "live", "live+aggregate", "live+pit", "aggregated",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("engine modes table missing %q:\n%s", want, s)
		}
	}
}

// TestEngineFloodDeterministicAcrossWorkers extends the worker
// invariance contract to the engine-mode ladder end to end: the
// snapshot sweep parallelizes path computation, the live sweeps take
// their parallelism from Shards rather than Workers, and the table
// must not move a byte either way.
func TestEngineFloodDeterministicAcrossWorkers(t *testing.T) {
	small := Params{N: 256, Msgs: 600, Seed: 7}
	var want string
	for _, workers := range []int{1, 4} {
		p := small
		p.Workers = workers
		table, err := Run("ext.engine.flood", p)
		if err != nil {
			t.Fatal(err)
		}
		got := table.String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d output diverged:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
}

// TestParamsLiveAggregateThreading checks the flag plumbing: -aggregate
// implies live mode, and the run labels carry the mode.
func TestParamsLiveAggregateThreading(t *testing.T) {
	cfg, err := loadConfig(Params{Msgs: 10, Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Live || !cfg.Aggregate {
		t.Errorf("Aggregate params did not imply live engine config: %+v", cfg)
	}
	cfg, err = loadConfig(Params{Msgs: 10, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Live || cfg.Aggregate {
		t.Errorf("Live params mis-threaded: %+v", cfg)
	}
}
