package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestLoadExperimentsRegistered pins the ext.load.* ids the CLI and
// bench harness depend on.
func TestLoadExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"ext.load.zipf", "ext.load.workloads", "ext.load.policy"} {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
}

// TestLoadZipfDeterministicAcrossWorkers is the acceptance property:
// the rendered table is byte-identical for the same seed regardless of
// the worker count.
func TestLoadZipfDeterministicAcrossWorkers(t *testing.T) {
	small := Params{N: 512, Msgs: 120, Seed: 3}
	var want string
	for _, workers := range []int{1, 3, 8} {
		p := small
		p.Workers = workers
		table, err := Run("ext.load.zipf", p)
		if err != nil {
			t.Fatal(err)
		}
		got := table.String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d output diverged:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
	for _, col := range []string{"max load", "mean load", "p99 lat"} {
		if !strings.Contains(want, col) {
			t.Errorf("table missing column %q:\n%s", col, want)
		}
	}
}

// TestLoadPolicyReducesMaxLoad checks the headline claim row by row:
// load-aware max load strictly below plain greedy on every scenario,
// at no worse delivery.
func TestLoadPolicyReducesMaxLoad(t *testing.T) {
	table, err := Run("ext.load.policy", Params{N: 1024, Msgs: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows)%2 != 0 || len(table.Rows) == 0 {
		t.Fatalf("policy table should pair greedy/load-aware rows, got %d", len(table.Rows))
	}
	for i := 0; i < len(table.Rows); i += 2 {
		greedy, aware := table.Rows[i], table.Rows[i+1]
		if greedy[1] != "greedy" || aware[1] != "load-aware" {
			t.Fatalf("unexpected policy order: %v / %v", greedy[1], aware[1])
		}
		gMax, err1 := strconv.Atoi(greedy[2])
		aMax, err2 := strconv.Atoi(aware[2])
		if err1 != nil || err2 != nil {
			t.Fatalf("non-numeric max load: %q %q", greedy[2], aware[2])
		}
		if aMax >= gMax {
			t.Errorf("%s: load-aware max load %d should beat greedy %d", greedy[0], aMax, gMax)
		}
	}
}

// TestLoadWorkloadsSweep sanity-checks the generator sweep: the flood
// row must dominate the uniform row's max load.
func TestLoadWorkloadsSweep(t *testing.T) {
	table, err := Run("ext.load.workloads", Params{N: 512, Msgs: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	loads := map[string]int{}
	for _, row := range table.Rows {
		v, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("non-numeric max load %q", row[1])
		}
		loads[row[0]] = v
	}
	if loads["flood"] <= loads["uniform"] {
		t.Errorf("flood max load %d should exceed uniform %d", loads["flood"], loads["uniform"])
	}
}
