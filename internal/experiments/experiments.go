// Package experiments implements every reproduction experiment from
// DESIGN.md: one entry per paper table row, figure, and ablation. The
// same registry backs cmd/ftrsim (run one experiment), cmd/ftrbench
// (regenerate everything), and the root-level Go benchmarks.
//
// Default parameters are scaled so the full suite completes in minutes
// on a laptop; Params lets callers restore the paper's scale (n = 2^17,
// 1000 trials × 100 messages for Figure 6).
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Params tunes an experiment run. Zero values select per-experiment
// defaults.
type Params struct {
	// N is the network size (nodes / grid points). For Dim >= 2 it is
	// resolved to Side^Dim.
	N int
	// Dim is the metric-space dimension for the dimension-aware
	// experiments (fig6*, fig7, ext.2d): 0/1 selects the paper's 1-D
	// ring, >= 2 a torus of §7's higher-dimensional extension.
	Dim int
	// Side is the torus side length for Dim >= 2; 0 derives it from N
	// as the nearest integer d-th root.
	Side int
	// Links is ℓ; 0 selects the experiment's default (usually lg n).
	Links int
	// Trials is the number of independently built networks.
	Trials int
	// Msgs is the number of searches per network.
	Msgs int
	// Seed drives all randomness; equal seeds reproduce results
	// exactly.
	Seed uint64
	// Workers bounds parallelism; 0 uses GOMAXPROCS.
	Workers int
	// Shards partitions the live event loop across cores (ftrsim
	// -shards); 0 selects 1, the sequential reference. Results are
	// identical for every value.
	Shards int
	// Workload names the traffic generator of the ext.load.*
	// experiments ("uniform", "zipf", "sources", "flood"); empty
	// selects each experiment's default.
	Workload string
	// Skew is the Zipf exponent of the skewed load workloads; 0
	// selects the P2P-typical 1.0.
	Skew float64
	// Capacity is the per-node service capacity of the load
	// experiments, in message-hops per virtual tick; 0 selects 1.
	Capacity float64
	// Penalty is the congestion-penalty weight of the load-aware
	// routing policy; 0 selects 1.
	Penalty float64
	// DepthPenalty is the instantaneous-queue-depth penalty of the
	// depth-aware routing policy; 0 selects 1 where that policy runs.
	DepthPenalty float64
	// Arrival names the arrival model of the traffic experiments
	// ("periodic", "poisson", "closed"); empty selects each
	// experiment's default (fixed-rate for ext.load.*, Poisson for the
	// ext.saturation.* sweeps).
	Arrival string
	// Rate is the open-loop injection rate in messages per tick; 0
	// selects 1 for the fixed-rate experiments and the sweep's own
	// bracket for ext.saturation.*.
	Rate float64
	// Clients is the closed-loop client population; 0 selects 16.
	Clients int
	// Think is the closed-loop think time in ticks between a client's
	// lookups.
	Think float64
	// Replicas is the hot-key replica count k of the ext.replica.*
	// experiments (and, through loadConfig, of any traffic experiment);
	// 0/1 disables static replication.
	Replicas int
	// Cache is the popularity threshold of cache-on-path replication;
	// 0 disables caching.
	Cache int
	// Live switches the traffic experiments to the event-driven engine
	// mode: forwarding decisions read live load, queue depth, and
	// replica placement instead of batch snapshots.
	Live bool
	// Aggregate additionally coalesces same-key lookups that meet in a
	// node's queue (implies the live engine requirement; ftrsim -live
	// -aggregate).
	Aggregate bool
	// PIT switches the live engine to the response-path mode: every
	// request service plants a pending-interest entry, same-key lookups
	// arriving behind it are suppressed network-wide, and answers
	// retrace the reverse path, multicasting to recorded waiters
	// (implies the live engine requirement; ftrsim -pit).
	PIT bool
	// PITTimeout is the interest lifetime in virtual ticks before a
	// suppressed lookup re-forwards; 0 selects the load layer's default
	// (64 service times).
	PITTimeout float64
	// PITWaiters bounds a pending interest's waiter list; lookups
	// arriving past the bound forward normally. 0 selects the default
	// (16).
	PITWaiters int
	// Telemetry, when non-nil, attaches the virtual-time observability
	// recorder to every engine run the experiment performs (ftrsim
	// -telemetry). Observation only: results are byte-identical with
	// it nil or set.
	Telemetry *telemetry.Recorder
	// ChurnRate is the background churn intensity in lifecycle events
	// per virtual tick (ftrsim -churn): nodes crash and rejoin while
	// traffic runs, detected by probe timeout and repaired by gossip
	// membership. Churn requires the live engine (-live); 0 disables
	// background churn.
	ChurnRate float64
	// KillFrac crashes this fraction of the alive nodes in one
	// correlated regional kill (ftrsim -killfrac) at KillAt virtual
	// ticks (ftrsim -killat; 0 = one third of the injection horizon).
	KillFrac float64
	KillAt   float64
	// GossipFanout is the membership rumor push fanout (ftrsim
	// -gossipfanout); 0 selects the load layer's default (2).
	GossipFanout int
}

func (p Params) withDefaults(n, trials, msgs int) Params {
	if p.Dim == 0 {
		p.Dim = 1
	}
	if p.N == 0 {
		p.N = n
	}
	if p.Dim >= 2 {
		if p.Side == 0 {
			p.Side = int(math.Round(math.Pow(float64(p.N), 1/float64(p.Dim))))
		}
		if p.Side < 2 {
			p.Side = 2
		}
		p.N = mathx.IPow(p.Side, p.Dim)
	}
	if p.Trials == 0 {
		p.Trials = trials
	}
	if p.Msgs == 0 {
		p.Msgs = msgs
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Workers == 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// space returns the metric space the (resolved) parameters select: the
// paper's ring for dimension 1, a torus for dimension >= 2. The
// dimension-aware experiments build every trial network through this
// one call, so d = 1 and d >= 2 sweeps share the whole pipeline.
func (p Params) space() (metric.Space, error) {
	if p.Dim >= 2 {
		return metric.NewTorus(p.Side, p.Dim)
	}
	return metric.NewRing(p.N)
}

// spaceDesc names the selected space in table titles, carrying the
// dimension into text/CSV output.
func (p Params) spaceDesc() string {
	if p.Dim >= 2 {
		return fmt.Sprintf("torus d=%d side=%d", p.Dim, p.Side)
	}
	return "ring d=1"
}

// lgLinks returns ℓ defaulted to lg n, as in the paper's simulations.
func (p Params) lgLinks() int {
	if p.Links > 0 {
		return p.Links
	}
	lg := 0
	for v := p.N; v > 1; v >>= 1 {
		lg++
	}
	if lg < 1 {
		lg = 1
	}
	return lg
}

// Experiment is one reproducible artifact: a paper table row, figure,
// or ablation.
type Experiment struct {
	// ID is the stable identifier used on the command line and in
	// DESIGN.md's experiment index.
	ID string
	// Artifact names the paper artifact this regenerates.
	Artifact string
	// Description summarizes the workload.
	Description string
	// Run executes the experiment.
	Run func(Params) (*sim.Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Get returns the experiment registered under id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (see IDs())", id)
	}
	return e, nil
}

// Run executes the experiment registered under id.
func Run(id string, p Params) (*sim.Table, error) {
	e, err := Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(p)
}
