package experiments

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/analysis"
	"repro/internal/construct"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:          "ablation.replacement",
		Artifact:    "§5 design choice: inverse-distance vs oldest-link replacement",
		Description: "grow networks under both strategies; compare distribution error and routing",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 3, 100)
			links := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("Replacement strategy ablation (n=%d, l=%d)", p.N, links),
				"strategy", "max abs error vs ideal", "failed frac @ p=0.5", "mean hops @ p=0.5")
			for _, strat := range []construct.ReplacementStrategy{construct.InverseDistance, construct.Oldest} {
				strat := strat
				maxD := (p.N - 1) / 2
				probs := make([]float64, maxD+1)
				var mu sync.Mutex
				stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
					ring, err := metric.NewRing(p.N)
					if err != nil {
						return sim.SearchStats{}, err
					}
					g, err := construct.Grow(ring, construct.Config{Links: links, Strategy: strat}, src)
					if err != nil {
						return sim.SearchStats{}, err
					}
					h := g.LinkLengthHistogram()
					mu.Lock()
					for d := 1; d <= maxD; d++ {
						probs[d] += h.Probability(d-1) / float64(p.Trials)
					}
					mu.Unlock()
					if _, err := failure.FailNodesFraction(g, 0.5, src); err != nil {
						return sim.SearchStats{}, err
					}
					r := route.New(g, route.Options{DeadEnd: route.Backtrack})
					return sim.MeasureSearches(g, r, src, p.Msgs)
				})
				if err != nil {
					return nil, err
				}
				hm := mathx.Harmonic(maxD)
				worst := 0.0
				for d := 1; d <= maxD; d++ {
					if e := math.Abs(probs[d] - 1/(float64(d)*hm)); e > worst {
						worst = e
					}
				}
				t.AddValues(strat.String(), worst, stats.FailedFraction(), stats.MeanHops())
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "ablation.backtrack",
		Artifact:    "§6 design choice: backtracking memory size (paper fixes 5)",
		Description: "sweep backtrack history length at 50% node failure",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<13, 5, 100)
			links := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("Backtrack memory ablation (n=%d, l=%d, p=0.5)", p.N, links),
				"memory", "failed frac", "mean hops", "backtracks/search")
			for _, mem := range []int{1, 2, 5, 10, 20} {
				mem := mem
				stats, err := measureIdeal(p, p.N, links,
					route.Options{DeadEnd: route.Backtrack, BacktrackMemory: mem},
					func(g *graph.Graph, src *rng.Source) error {
						_, err := failure.FailNodesFraction(g, 0.5, src)
						return err
					})
				if err != nil {
					return nil, err
				}
				t.AddValues(mem, stats.FailedFraction(), stats.MeanHops(),
					float64(stats.Backtracks)/float64(stats.Searches))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "ablation.sidedness",
		Artifact:    "§4.2 models: one-sided vs two-sided greedy routing",
		Description: "compare hop counts of the two lower-bound models, no failures",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 5, 100)
			t := sim.NewTable(fmt.Sprintf("Sidedness ablation (n=%d)", p.N),
				"links", "two-sided hops", "one-sided hops", "one/two ratio")
			for _, l := range sweepLinks(p.lgLinks()) {
				two, err := measureIdeal(p, p.N, l, route.Options{Sidedness: route.TwoSided}, nil)
				if err != nil {
					return nil, err
				}
				one, err := measureIdeal(p, p.N, l, route.Options{Sidedness: route.OneSided}, nil)
				if err != nil {
					return nil, err
				}
				ratio := 0.0
				if two.MeanHops() > 0 {
					ratio = one.MeanHops() / two.MeanHops()
				}
				t.AddValues(l, two.MeanHops(), one.MeanHops(), ratio)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "ablation.exponent",
		Artifact:    "link-distribution exponent sweep (Kleinberg-style sensitivity)",
		Description: "exponent 1 should minimize hops, matching the lower-bound optimality claim",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<13, 5, 100)
			links := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("Exponent ablation (n=%d, l=%d)", p.N, links),
				"exponent", "mean hops")
			for _, exp := range []float64{0, 0.5, 1, 1.5, 2} {
				exp := exp
				stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
					ring, err := metric.NewRing(p.N)
					if err != nil {
						return sim.SearchStats{}, err
					}
					g, err := graph.BuildIdeal(ring, graph.BuildConfig{Links: links, Exponent: exp}, src)
					if err != nil {
						return sim.SearchStats{}, err
					}
					r := route.New(g, route.Options{})
					return sim.MeasureSearches(g, r, src, p.Msgs)
				})
				if err != nil {
					return nil, err
				}
				t.AddValues(exp, stats.MeanHops())
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "theory",
		Artifact:    "Table 1 cross-check: measured hop counts vs upper and lower bounds",
		Description: "evaluate the analysis package formulas against simulation",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 5, 100)
			t := sim.NewTable(fmt.Sprintf("Theory vs measurement (n=%d)", p.N),
				"config", "measured hops", "lower bound", "upper bound", "within bounds")
			configs := []struct {
				name  string
				links int
				side  route.Sidedness
			}{
				{"l=1 two-sided", 1, route.TwoSided},
				{"l=4 two-sided", 4, route.TwoSided},
				{"l=lg n two-sided", p.lgLinks(), route.TwoSided},
				{"l=lg n one-sided", p.lgLinks(), route.OneSided},
			}
			for _, cfg := range configs {
				cfg := cfg
				stats, err := measureIdeal(p, p.N, cfg.links,
					route.Options{Sidedness: cfg.side, DirectedOnly: true}, nil)
				if err != nil {
					return nil, err
				}
				oneSided := cfg.side == route.OneSided
				lower := analysis.Theorem10LowerBound(p.N, cfg.links, oneSided)
				var upper float64
				if cfg.links == 1 {
					upper = analysis.SingleLinkUpperBound(p.N)
				} else {
					upper = analysis.MultiLinkUpperBound(p.N, cfg.links)
				}
				measured := stats.MeanHops()
				t.AddValues(cfg.name, measured, lower, upper,
					measured >= lower*0.1 && measured <= upper)
			}
			return t, nil
		},
	})
}
