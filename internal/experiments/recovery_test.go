package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestChurnRecoveryRepairWins pins the ext.churn.recovery claim at the
// default scale: with gossip repair on, the network must climb back to
// ≥ RecoverFrac of its pre-kill flood-knee throughput in finite
// positive virtual time, faster than the never-repaired baseline, and
// the repair ledger must show the machinery actually ran.
func TestChurnRecoveryRepairWins(t *testing.T) {
	on, err := MeasureRecovery(Params{}, true)
	if err != nil {
		t.Fatal(err)
	}
	off, err := MeasureRecovery(Params{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if on.RecoveryTime <= 0 {
		t.Errorf("repair on: recovery time %g, want finite positive", on.RecoveryTime)
	}
	if on.Recovered < RecoverFrac {
		t.Errorf("repair on: recovered fraction %g < %g", on.Recovered, RecoverFrac)
	}
	if on.Crashes == 0 || on.LinksRebuilt == 0 || on.GossipSends == 0 {
		t.Errorf("repair on: empty repair ledger (crashes=%d rebuilt=%d gossip=%d)",
			on.Crashes, on.LinksRebuilt, on.GossipSends)
	}
	if !(on.PreKill > 0) || !(on.Knee > 0) {
		t.Errorf("repair on: degenerate throughput profile (knee=%g preKill=%g)", on.Knee, on.PreKill)
	}
	if off.LinksRebuilt != 0 {
		t.Errorf("repair off rebuilt %d links; the baseline must stay broken", off.LinksRebuilt)
	}
	if off.RecoveryTime > 0 && on.RecoveryTime > off.RecoveryTime {
		t.Errorf("repair on recovered in %g ticks, slower than the unrepaired baseline's %g",
			on.RecoveryTime, off.RecoveryTime)
	}
	if off.Recovered > 0 && on.Recovered < off.Recovered {
		t.Errorf("repair on peaked at %g of pre-kill, below the baseline's %g",
			on.Recovered, off.Recovered)
	}
	// Same Params, same result: the measurement is deterministic.
	again, err := MeasureRecovery(Params{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(on, again) {
		t.Errorf("MeasureRecovery is not deterministic: %+v vs %+v", on, again)
	}
}

// TestChurnRecoveryExperimentTable runs the registered experiment and
// checks the table's shape and verdicts.
func TestChurnRecoveryExperimentTable(t *testing.T) {
	tbl, err := Run("ext.churn.recovery", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("want 2 rows (repair on / off), got %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Rows[0][0], "repair on") {
		t.Errorf("first row should be the repaired run: %v", tbl.Rows[0])
	}
	verdict := tbl.Rows[0][len(tbl.Rows[0])-1]
	if !strings.Contains(verdict, "recovered") {
		t.Errorf("repair-on verdict %q should report recovery", verdict)
	}
}
