package experiments

import (
	"strings"
	"testing"
)

// Each extension experiment carries a qualitative claim; these tests
// pin the claims at small scale so regressions in the underlying
// machinery surface as semantic failures, not just number drift.

func TestByzantineRedundancyHelps(t *testing.T) {
	tbl, err := Run("ext.byzantine", Params{N: 1 << 11, Trials: 2, Msgs: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		p := parseF(t, row[0])
		direct := parseF(t, row[1])
		four := parseF(t, row[3])
		if p == 0 {
			if direct != 1 || four != 1 {
				t.Errorf("no malicious nodes should mean full delivery: %v", row)
			}
			continue
		}
		if four < direct {
			t.Errorf("p=%v: 4 copies (%v) should not deliver less than direct (%v)", p, four, direct)
		}
	}
	// At moderate attack rates redundancy must help strictly.
	mid := tbl.Rows[2] // p = 0.1
	if parseF(t, mid[3]) <= parseF(t, mid[1]) {
		t.Errorf("at p=0.1 redundancy should strictly help: %v", mid)
	}
}

func TestFaultCompareBacktrackWins(t *testing.T) {
	tbl, err := Run("ext.faultcompare", Params{N: 1 << 11, Trials: 2, Msgs: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1] // p = 0.7
	ours := parseF(t, last[1])
	chord := parseF(t, last[3])
	kleinberg := parseF(t, last[4])
	if ours >= chord || ours >= kleinberg {
		t.Errorf("backtracking overlay (%v) should beat chord (%v) and kleinberg (%v) at p=0.7",
			ours, chord, kleinberg)
	}
}

func TestPhysicalFailuresMatchIndependent(t *testing.T) {
	tbl, err := Run("ext.physical", Params{N: 1 << 12, Trials: 3, Msgs: 150, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		machine := parseF(t, row[1])
		independent := parseF(t, row[2])
		// The hash de-correlates machine crashes: the two failure
		// modes must land within a small absolute gap.
		if diff := machine - independent; diff > 0.12 || diff < -0.12 {
			t.Errorf("fraction %s: machine %v vs independent %v differ too much",
				row[0], machine, independent)
		}
	}
}

func TestChurnRepairsRecover(t *testing.T) {
	tbl, err := Run("ext.churn", Params{N: 1 << 10, Trials: 2, Msgs: 100, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if !strings.Contains(row[0], "repaired") {
			continue
		}
		if frac := parseF(t, row[1]); frac > 0.02 {
			t.Errorf("phase %q: failed frac %v after repair, want ≈ 0", row[0], frac)
		}
	}
}

func TestSpaceAblationComparable(t *testing.T) {
	tbl, err := Run("ablation.space", Params{N: 1 << 11, Trials: 2, Msgs: 100, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	// Same links on line vs ring: hops within 40% of each other.
	hops := map[string]float64{}
	for _, row := range tbl.Rows {
		hops[row[0]+"/"+row[1]] = parseF(t, row[2])
	}
	for _, links := range []string{"1"} {
		r, l := hops["ring/"+links], hops["line/"+links]
		if r == 0 || l == 0 {
			t.Fatalf("missing rows: %v", hops)
		}
		if l/r > 1.4 || r/l > 1.4 {
			t.Errorf("links=%s: line %v vs ring %v diverge beyond boundary effects", links, l, r)
		}
	}
}

func TestBoundsTablePure(t *testing.T) {
	tbl, err := Run("table1.bounds", Params{N: 1 << 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("Table 1 has 7 bound rows, got %d", len(tbl.Rows))
	}
	// Upper bounds must be positive and the deterministic row equals
	// ceil(log2 n) = 14.
	for _, row := range tbl.Rows {
		if parseF(t, row[2]) <= 0 {
			t.Errorf("non-positive upper bound: %v", row)
		}
	}
	if parseF(t, tbl.Rows[2][2]) != 14 {
		t.Errorf("deterministic bound = %v, want 14", tbl.Rows[2][2])
	}
}
