package experiments

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/construct"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

// derivedDistribution grows `trials` networks with the §5 heuristic and
// returns the averaged empirical link-length probability for every
// distance, together with the space's max distance.
func derivedDistribution(p Params, n, links, trials int) ([]float64, int, error) {
	maxD := (n - 1) / 2
	probs := make([]float64, maxD+1)
	var mu sync.Mutex

	_, err := sim.Run(p.Seed, trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
		ring, err := metric.NewRing(n)
		if err != nil {
			return sim.SearchStats{}, err
		}
		g, err := construct.Grow(ring, construct.Config{Links: links}, src)
		if err != nil {
			return sim.SearchStats{}, err
		}
		h := g.LinkLengthHistogram()
		mu.Lock()
		for d := 1; d <= maxD; d++ {
			probs[d] += h.Probability(d-1) / float64(trials)
		}
		mu.Unlock()
		return sim.SearchStats{}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	return probs, maxD, nil
}

// fig5Distances picks the log-spaced sample distances reported in the
// Figure 5 tables.
func fig5Distances(maxD int) []int {
	ds := []int{}
	for d := 1; d <= maxD; d *= 2 {
		ds = append(ds, d)
	}
	if ds[len(ds)-1] != maxD {
		ds = append(ds, maxD)
	}
	return ds
}

func init() {
	register(Experiment{
		ID:          "fig5a",
		Artifact:    "Figure 5(a): derived vs ideal link-length distribution",
		Description: "grow networks with the §5 heuristic; compare P(link length) to 1/(d·H)",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 5, 0) // paper: n=2^14, 14 links, 10 networks
			links := p.lgLinks()
			trials := p.Trials
			probs, maxD, err := derivedDistribution(p, p.N, links, trials)
			if err != nil {
				return nil, err
			}
			hm := mathx.Harmonic(maxD)
			t := sim.NewTable(fmt.Sprintf("Figure 5(a) (n=%d, l=%d, %d networks)", p.N, links, trials),
				"link length", "derived P", "ideal P", "ratio")
			for _, d := range fig5Distances(maxD) {
				ideal := 1 / (float64(d) * hm)
				ratio := 0.0
				if ideal > 0 {
					ratio = probs[d] / ideal
				}
				t.AddValues(d, probs[d], ideal, ratio)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "fig5b",
		Artifact:    "Figure 5(b): absolute error of the derived distribution",
		Description: "same networks as fig5a; |derived − ideal| per distance, plus the maximum",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 5, 0)
			links := p.lgLinks()
			probs, maxD, err := derivedDistribution(p, p.N, links, p.Trials)
			if err != nil {
				return nil, err
			}
			hm := mathx.Harmonic(maxD)
			t := sim.NewTable(fmt.Sprintf("Figure 5(b) (n=%d, l=%d)", p.N, links),
				"link length", "abs error")
			worst, worstD := 0.0, 0
			for d := 1; d <= maxD; d++ {
				e := math.Abs(probs[d] - 1/(float64(d)*hm))
				if e > worst {
					worst, worstD = e, d
				}
			}
			for _, d := range fig5Distances(maxD) {
				t.AddValues(d, math.Abs(probs[d]-1/(float64(d)*hm)))
			}
			t.Add("max", sim.F(worst))
			t.Add("argmax", sim.F(worstD))
			return t, nil
		},
	})

	register(Experiment{
		ID:          "fig6a",
		Artifact:    "Figure 6(a): fraction of failed searches vs fraction of failed nodes",
		Description: "three dead-end strategies on an ideal network under mass node failure (any -dim)",
		Run:         func(p Params) (*sim.Table, error) { return figure6(p, false) },
	})

	register(Experiment{
		ID:          "fig6b",
		Artifact:    "Figure 6(b): mean delivery time of successful searches",
		Description: "same sweep as fig6a, reporting hops of delivered messages (any -dim)",
		Run:         func(p Params) (*sim.Table, error) { return figure6(p, true) },
	})

	register(Experiment{
		ID:          "fig6a.d2",
		Artifact:    "Figure 6(a) replayed on a 2-D torus (§7's higher-dimensional extension)",
		Description: "the identical node-failure sweep and dead-end strategies, dimension 2",
		Run: func(p Params) (*sim.Table, error) {
			if p.Dim <= 1 {
				p.Dim = 2
			}
			return figure6(p, false)
		},
	})

	register(Experiment{
		ID:          "fig6b.d2",
		Artifact:    "Figure 6(b) replayed on a 2-D torus (§7's higher-dimensional extension)",
		Description: "mean delivery time of the 2-D node-failure sweep",
		Run: func(p Params) (*sim.Table, error) {
			if p.Dim <= 1 {
				p.Dim = 2
			}
			return figure6(p, true)
		},
	})

	register(Experiment{
		ID:          "fig7",
		Artifact:    "Figure 7: failed searches, heuristic-built vs ideal network",
		Description: "compare §5-constructed networks to directly sampled ones under node failure (any -dim)",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 3, 100) // paper: 16384 nodes, 10 nets, 1000 msgs
			links := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("Figure 7 (%s, n=%d, l=%d)", p.spaceDesc(), p.N, links),
				"p(node fail)", "constructed failed frac", "ideal failed frac",
				"constructed stderr", "ideal stderr")
			for _, prob := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
				prob := prob
				row := make([]float64, 2)
				stderrs := make([]float64, 2)
				for i, heuristic := range []bool{true, false} {
					heuristic := heuristic
					trialStats, err := sim.RunDetailed(p.Seed+uint64(i), p.Trials, p.Workers,
						func(trial int, src *rng.Source) (sim.SearchStats, error) {
							sp, err := p.space()
							if err != nil {
								return sim.SearchStats{}, err
							}
							var g *graph.Graph
							if heuristic {
								g, err = construct.Grow(sp, construct.Config{Links: links}, src)
							} else {
								g, err = graph.BuildIdeal(sp, graph.PaperConfigFor(sp, links), src)
							}
							if err != nil {
								return sim.SearchStats{}, err
							}
							if _, err := failure.FailNodesFraction(g, prob, src); err != nil {
								return sim.SearchStats{}, err
							}
							r := route.New(g, route.Options{DeadEnd: route.Terminate})
							return sim.MeasureSearches(g, r, src, p.Msgs)
						})
					if err != nil {
						return nil, err
					}
					iv := sim.FailedFractionInterval(trialStats)
					row[i] = iv.Mean
					stderrs[i] = iv.StdErr
				}
				t.AddValues(prob, row[0], row[1], stderrs[0], stderrs[1])
			}
			return t, nil
		},
	})
}

// figure6 runs the §6 failure sweep over the space Params selects —
// the same harness drives the paper's 1-D ring and the d-dimensional
// torus replay. When meanHops is false it reports the failed-search
// fraction (Figure 6a); when true, the mean delivery time of successful
// searches (Figure 6b).
func figure6(p Params, meanHops bool) (*sim.Table, error) {
	p = p.withDefaults(1<<14, 5, 100) // paper: n=2^17, 1000 sims x 100 msgs
	links := p.lgLinks()
	strategies := []route.DeadEndPolicy{route.Terminate, route.RandomReroute, route.Backtrack}
	metricName := "failed frac"
	if meanHops {
		metricName = "mean hops"
	}
	t := sim.NewTable(
		fmt.Sprintf("Figure 6 [%s] (%s, n=%d, l=%d, %d trials x %d msgs)",
			metricName, p.spaceDesc(), p.N, links, p.Trials, p.Msgs),
		"p(node fail)", "terminate", "random-reroute", "backtracking")
	for _, prob := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
		prob := prob
		row := make([]float64, len(strategies))
		for si, strat := range strategies {
			strat := strat
			stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
				sp, err := p.space()
				if err != nil {
					return sim.SearchStats{}, err
				}
				g, err := graph.BuildIdeal(sp, graph.PaperConfigFor(sp, links), src)
				if err != nil {
					return sim.SearchStats{}, err
				}
				if _, err := failure.FailNodesFraction(g, prob, src); err != nil {
					return sim.SearchStats{}, err
				}
				r := route.New(g, route.Options{DeadEnd: strat})
				return sim.MeasureSearches(g, r, src, p.Msgs)
			})
			if err != nil {
				return nil, err
			}
			if meanHops {
				row[si] = stats.MeanHops()
			} else {
				row[si] = stats.FailedFraction()
			}
		}
		t.AddValues(prob, row[0], row[1], row[2])
	}
	return t, nil
}
