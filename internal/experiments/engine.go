package experiments

import (
	"fmt"

	"repro/internal/load"
	"repro/internal/replica"
	"repro/internal/sim"
)

// The ext.engine.* experiments measure what the discrete-event engine
// buys over the batch-snapshot pipeline: live per-hop congestion state
// (Config.Live), per-hop service aggregation of same-key lookups
// (Config.Aggregate), and the pending-interest response path
// (Config.PIT). Aggregation attacks the flood knee directly — the
// victim's in-neighbourhood serves one aggregated lookup for every
// queueful of duplicates — which is the lever past the replica ceiling
// PR 4 established; PIT suppression generalizes the collapse
// network-wide and charges the answer's return trip, the accounting
// the ext.pit.* experiments break down. Like every traffic experiment,
// results are independent of Params.Workers.

// engineModes is the snapshot / live / live+aggregate / live+pit
// ladder every ext.engine experiment sweeps.
var engineModes = []struct {
	label                string
	live, aggregate, pit bool
}{
	{"snapshot", false, false, false},
	{"live", true, false, false},
	{"live+aggregate", true, true, false},
	{"live+pit", true, false, true},
}

func init() {
	register(Experiment{
		ID:       "ext.engine.flood",
		Artifact: "engine extension: live routing & service aggregation vs the flood knee",
		Description: "single-target flood on 30%-failed torus and ring with k = 4 replicas plus " +
			"cache-on-path, swept in the engine's four modes — batch-snapshot routing, " +
			"live per-hop state, live with same-key service aggregation, and live with " +
			"the pending-interest response path. The headline is the aggregated knee: " +
			"duplicates meeting in a queue collapse into one service, lifting the flood " +
			"knee past the replication-only ceiling",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<10, 1, 0)
			t := sim.NewTable(
				fmt.Sprintf("Flood knee by engine mode, k=4+cache (n≈%d, l=%d, seed=%d)",
					p.N, p.lgLinks(), p.Seed),
				"config", "mode", "knee", "knee thr", "p99@knee", "aggregated", "lift", "verdict")
			scenarios := []loadScenario{
				{"torus 30% failed", 2, 0.3},
				{"ring 30% failed", 1, 0.3},
			}
			k := p.Replicas
			if k <= 1 {
				k = 4
			}
			cache := p.Cache
			if cache == 0 {
				cache = floodCacheThreshold
			}
			for i, sc := range scenarios {
				g, err := buildLoadGraph(sc, p, p.Seed+uint64(i))
				if err != nil {
					return nil, err
				}
				var base float64
				for _, mode := range engineModes {
					gen, err := workloadFor(p, "flood")
					if err != nil {
						return nil, err
					}
					cfg := sweepConfigFor(p, saturationPolicy{name: "greedy"})
					cfg.Live = mode.live
					cfg.Aggregate = mode.aggregate
					cfg.PIT = mode.pit
					cfg.Replication = &replica.Options{
						K: k, CacheThreshold: cache, CacheCopies: floodCacheCopies,
					}
					res, err := load.Sweep(g, gen, cfg, p.Seed+uint64(8000+i))
					if err != nil {
						return nil, err
					}
					kp := res.KneePoint()
					if kp == nil {
						t.AddValues(sc.label, mode.label, res.Knee, 0.0, 0.0, 0, 0.0, "UNSTABLE at min load")
						continue
					}
					// Lift is relative to the snapshot row; 0 marks "no
					// baseline" (the snapshot sweep was unstable), not a
					// neutral 1.0.
					lift := 0.0
					if !mode.live {
						base = res.KneeThroughput
						lift = 1
					} else if base > 0 {
						lift = res.KneeThroughput / base
					}
					t.AddValues(sc.label, mode.label, res.Knee, res.KneeThroughput, res.KneeP99,
						kp.Result.Aggregated, lift, capMark(res.Saturated))
					t.Note("%s: plan=%s — %s", mode.label, kp.Result.Plan, kp.Result.PlanReason)
				}
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.engine.modes",
		Artifact: "engine extension: snapshot vs live congestion signals under Zipf traffic",
		Description: "fixed-rate Zipf traffic on healthy and 30%-failed networks routed with the " +
			"depth-aware policy in snapshot mode (signal frozen per batch) and live mode " +
			"(every forwarding decision reads the queues now): hottest node, queue depth, " +
			"latency tail, and the aggregation count when same-key coalescing is on",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 1, 2000)
			t := sim.NewTable(
				fmt.Sprintf("Engine modes under Zipf traffic (n≈%d, l=%d, msgs=%d, seed=%d)",
					p.N, p.lgLinks(), p.Msgs, p.Seed),
				"config", "mode", "max load", "max/mean", "p99 lat", "queue depth",
				"aggregated", "mean hops")
			scenarios := []loadScenario{
				{"ring healthy", 1, 0},
				{"torus 30% failed", 2, 0.3},
			}
			for i, sc := range scenarios {
				g, err := buildLoadGraph(sc, p, p.Seed+uint64(i))
				if err != nil {
					return nil, err
				}
				for _, mode := range engineModes {
					gen, err := workloadFor(p, "zipf")
					if err != nil {
						return nil, err
					}
					cfg, err := loadConfig(p)
					if err != nil {
						return nil, err
					}
					cfg.Live = mode.live
					cfg.Aggregate = mode.aggregate
					cfg.PIT = mode.pit
					cfg.DepthPenalty = 1
					if cfg.Rate == 0 {
						// Push past capacity so the live depth signal has
						// backlog to react to.
						cfg.Rate = 8
					}
					r, err := load.Run(g, gen, cfg, p.Seed+uint64(9000+i))
					if err != nil {
						return nil, err
					}
					t.AddValues(sc.label, r.Mode, r.MaxLoad, r.MaxMeanRatio(), r.LatencyP99,
						r.MaxQueueDepth, r.Aggregated, r.Search.MeanHops())
					t.Note("%s: plan=%s — %s", mode.label, r.Plan, r.PlanReason)
				}
			}
			return t, nil
		},
	})
}
