package experiments

import (
	"fmt"

	"repro/internal/load"
	"repro/internal/replica"
	"repro/internal/sim"
)

// The ext.replica.* experiments measure what replication — the one
// lever routing policy cannot substitute for — buys under hot-key
// traffic. PR 3 established that the capacity knee of a single-target
// flood is pinned by the victim's in-neighbourhood; these experiments
// replicate the hot key k ways (internal/replica) and route every
// lookup to the nearest live replica (route.RouteAny), then re-locate
// the knee. Like every traffic experiment, results are independent of
// Params.Workers.

// floodCacheThreshold and floodCacheCopies are the cache-on-path
// defaults of the flood experiment's headline row: promote a hot key's
// eight busiest forwarders once 16 lookups have been observed. The
// threshold is low and the copy budget wide because the flood bottleneck
// is the last hop — each replica's in-neighbour — and caching there is
// exactly what breaks it.
const (
	floodCacheThreshold = 16
	floodCacheCopies    = 8
)

// floodVariant is one row of the flood-knee ladder.
type floodVariant struct {
	label string
	opt   *replica.Options
}

// floodLadder resolves the replica configurations the flood experiment
// sweeps: no replication, pure hash-spread at k = 2 and k, and the
// headline row — k static replicas plus popularity-triggered
// cache-on-path. -replicas overrides k (default 4), -cache the
// threshold.
func floodLadder(p Params) []floodVariant {
	k := p.Replicas
	if k <= 1 {
		k = 4
	}
	cache := p.Cache
	if cache == 0 {
		cache = floodCacheThreshold
	}
	return []floodVariant{
		{"k=1", nil},
		{"k=2", &replica.Options{K: 2}},
		{fmt.Sprintf("k=%d", k), &replica.Options{K: k}},
		{fmt.Sprintf("k=%d+cache", k), &replica.Options{
			K: k, CacheThreshold: cache, CacheCopies: floodCacheCopies,
		}},
	}
}

// replicationFor builds the load.Config replication block for k
// replicas, honouring a -cache threshold override.
func replicationFor(p Params, k int) *replica.Options {
	if k <= 1 && p.Cache == 0 {
		return nil
	}
	return &replica.Options{K: k, CacheThreshold: p.Cache}
}

func init() {
	register(Experiment{
		ID:       "ext.replica.flood",
		Artifact: "replication extension: hot-key replicas break the flood knee",
		Description: "single-target flood on 30%-failed torus and ring: the capacity knee with no " +
			"replication, hash-spread k = 2 and k = 4, and k = 4 plus popularity-triggered " +
			"cache-on-path, all under nearest-replica greedy routing — the headline claim " +
			"is a >= 3x knee-throughput lift at k = 4 (+cache) on the failed torus",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<10, 1, 0)
			t := sim.NewTable(
				fmt.Sprintf("Flood knee by replica configuration (n≈%d, l=%d, seed=%d)",
					p.N, p.lgLinks(), p.Seed),
				"config", "replicas", "knee", "knee thr", "p99@knee", "lift", "verdict")
			scenarios := []loadScenario{
				{"torus 30% failed", 2, 0.3},
				{"ring 30% failed", 1, 0.3},
			}
			for i, sc := range scenarios {
				g, err := buildLoadGraph(sc, p, p.Seed+uint64(i))
				if err != nil {
					return nil, err
				}
				var base float64
				for _, v := range floodLadder(p) {
					gen, err := workloadFor(p, "flood")
					if err != nil {
						return nil, err
					}
					cfg := sweepConfigFor(p, saturationPolicy{name: "greedy"})
					cfg.Replication = v.opt
					res, err := load.Sweep(g, gen, cfg, p.Seed+uint64(5000+i))
					if err != nil {
						return nil, err
					}
					if res.KneePoint() == nil {
						t.AddValues(sc.label, v.label, res.Knee, 0.0, 0.0, 0.0, "UNSTABLE at min load")
						continue
					}
					lift := 0.0
					if v.opt == nil {
						base = res.KneeThroughput
						lift = 1
					} else if base > 0 {
						lift = res.KneeThroughput / base
					}
					t.AddValues(sc.label, v.label, res.Knee, res.KneeThroughput, res.KneeP99,
						lift, capMark(res.Saturated))
				}
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.replica.zipf",
		Artifact: "replication extension: placement strategies under Zipf hot keys",
		Description: "Zipf-popular lookups on a healthy ring and torus routed with no replication, " +
			"hash-spread and antipodal k = 4 replicas, and popularity-triggered " +
			"cache-on-path: hottest-node load, delivery concentration, and latency tail",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<12, 1, 1000)
			cacheAt := p.Cache
			if cacheAt == 0 {
				cacheAt = 25
			}
			k := p.Replicas
			if k <= 1 {
				k = 4
			}
			t := sim.NewTable(
				fmt.Sprintf("Zipf traffic by replica placement (n≈%d, l=%d, msgs=%d, seed=%d)",
					p.N, p.lgLinks(), p.Msgs, p.Seed),
				"config", "placement", "max load", "max/mean", "max served", "p99 lat",
				"mean hops", "cached")
			scenarios := []loadScenario{
				{"ring healthy", 1, 0},
				{"torus healthy", 2, 0},
			}
			placements := []struct {
				label string
				opt   *replica.Options
			}{
				{"none", nil},
				{"hash", &replica.Options{K: k}},
				{"antipodal", &replica.Options{K: k, Strategy: "antipodal"}},
				{"cache-on-path", &replica.Options{CacheThreshold: cacheAt}},
			}
			for i, sc := range scenarios {
				g, err := buildLoadGraph(sc, p, p.Seed+uint64(i))
				if err != nil {
					return nil, err
				}
				for _, pl := range placements {
					gen, err := workloadFor(p, "zipf")
					if err != nil {
						return nil, err
					}
					cfg, err := loadConfig(p)
					if err != nil {
						return nil, err
					}
					cfg.Replication = pl.opt
					r, err := load.Run(g, gen, cfg, p.Seed+uint64(6000+i))
					if err != nil {
						return nil, err
					}
					t.AddValues(sc.label, pl.label, r.MaxLoad, r.MaxMeanRatio(),
						r.MaxServed(), r.LatencyP99, r.Search.MeanHops(), r.CacheCopies)
				}
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.replica.churn",
		Artifact: "replication extension: replica survivability as failures deepen",
		Description: "single-target flood on a torus at 0/15/30/45% node failures, k = 1 vs k = 4: " +
			"delivered fraction, surviving replicas actually serving, hottest-node load " +
			"and latency tail — replicas keep the hot key reachable and spread as the " +
			"primary's neighbourhood crumbles (dead replicas degrade to plain greedy)",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<10, 1, 800)
			k := p.Replicas
			if k <= 1 {
				k = 4
			}
			t := sim.NewTable(
				fmt.Sprintf("Flood under deepening failures (n≈%d, l=%d, msgs=%d, k=%d, seed=%d)",
					p.N, p.lgLinks(), p.Msgs, k, p.Seed),
				"failed frac", "k", "delivered", "serving", "max load", "max/mean", "p99 lat")
			for i, failFrac := range []float64{0, 0.15, 0.30, 0.45} {
				sc := loadScenario{fmt.Sprintf("torus %.0f%%", failFrac*100), 2, failFrac}
				g, err := buildLoadGraph(sc, p, p.Seed+uint64(i))
				if err != nil {
					return nil, err
				}
				for _, kk := range []int{1, k} {
					gen, err := workloadFor(p, "flood")
					if err != nil {
						return nil, err
					}
					cfg, err := loadConfig(p)
					if err != nil {
						return nil, err
					}
					cfg.Replication = replicationFor(p, kk)
					r, err := load.Run(g, gen, cfg, p.Seed+uint64(7000+i))
					if err != nil {
						return nil, err
					}
					t.AddValues(failFrac, kk,
						float64(r.Delivered)/float64(r.Injected), r.ServingPoints(),
						r.MaxLoad, r.MaxMeanRatio(), r.LatencyP99)
				}
			}
			return t, nil
		},
	})
}
