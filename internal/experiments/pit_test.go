package experiments

import (
	"strings"
	"testing"
)

// TestPITExperimentsRegistered pins the ext.pit.* ids the CLI and
// bench harness depend on.
func TestPITExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"ext.pit.flood", "ext.pit.suppression"} {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
}

// TestPITSuppressionTable runs the ledger experiment at a reduced
// scale and checks its shape: the rate ladder, the shortened-lifetime
// rows, and the ledger columns. The experiment itself errors on any
// ledger imbalance, so a non-nil table is already a correctness check.
func TestPITSuppressionTable(t *testing.T) {
	table, err := Run("ext.pit.suppression", Params{N: 256, Msgs: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{"suppressed", "released", "expired", "lifetime"} {
		if !strings.Contains(s, want) {
			t.Errorf("suppression table missing %q:\n%s", want, s)
		}
	}
}

// TestParamsPITThreading checks the flag plumbing: -pit implies live
// mode and carries both knobs into the load config.
func TestParamsPITThreading(t *testing.T) {
	cfg, err := loadConfig(Params{Msgs: 10, PIT: true, PITTimeout: 32, PITWaiters: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Live || !cfg.PIT || cfg.PITTimeout != 32 || cfg.PITWaiters != 8 {
		t.Errorf("PIT params mis-threaded: %+v", cfg)
	}
	cfg, err = loadConfig(Params{Msgs: 10, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PIT || cfg.PITTimeout != 0 || cfg.PITWaiters != 0 {
		t.Errorf("PIT knobs leaked into a live-only config: %+v", cfg)
	}
}
