package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

// measureIdeal builds an ideal network of size n with `links` long
// links per node and measures msgs random searches, averaged over
// trials networks. damage, when non-nil, is applied to each fresh
// network before routing.
func measureIdeal(p Params, n, links int, opt route.Options,
	damage func(g *graph.Graph, src *rng.Source) error) (sim.SearchStats, error) {
	return sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
		ring, err := metric.NewRing(n)
		if err != nil {
			return sim.SearchStats{}, err
		}
		g, err := graph.BuildIdeal(ring, graph.PaperConfig(links), src)
		if err != nil {
			return sim.SearchStats{}, err
		}
		if damage != nil {
			if err := damage(g, src); err != nil {
				return sim.SearchStats{}, err
			}
		}
		r := route.New(g, opt)
		return sim.MeasureSearches(g, r, src, p.Msgs)
	})
}

func init() {
	register(Experiment{
		ID:          "table1.nofail.l1",
		Artifact:    "Table 1, row 1 (no failures, ℓ=1): O(log²n) vs Ω(log²n/log log n)",
		Description: "sweep n, one long link per node, two-sided greedy, no failures",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 5, 100)
			t := sim.NewTable("Table 1 / no failures, ℓ=1",
				"n", "mean hops", "upper 2H_n^2", "lower Thm10", "hops/upper")
			for _, n := range sweepSizes(p.N) {
				stats, err := measureIdeal(p, n, 1, route.Options{DirectedOnly: true}, nil)
				if err != nil {
					return nil, err
				}
				upper := analysis.SingleLinkUpperBound(n)
				lower := analysis.Theorem10LowerBound(n, 1, false)
				t.AddValues(n, stats.MeanHops(), upper, lower, stats.MeanHops()/upper)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "table1.nofail.multi",
		Artifact:    "Table 1, row 2 (no failures, ℓ∈[1,lg n]): O(log²n/ℓ)",
		Description: "fixed n, sweep ℓ from 1 to lg n",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 5, 100)
			lg := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("Table 1 / no failures, multi-link (n=%d)", p.N),
				"links", "mean hops", "upper 8(1+lgn)H_n/l", "hops*l (flat => 1/l law)")
			for _, l := range sweepLinks(lg) {
				stats, err := measureIdeal(p, p.N, l, route.Options{DirectedOnly: true}, nil)
				if err != nil {
					return nil, err
				}
				t.AddValues(l, stats.MeanHops(), analysis.MultiLinkUpperBound(p.N, l),
					stats.MeanHops()*float64(l))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "table1.nofail.detb",
		Artifact:    "Table 1, row 3 (no failures, deterministic): O(log n/log b)",
		Description: "Theorem 14 base-b digit overlay, sweep b",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 3, 200)
			t := sim.NewTable(fmt.Sprintf("Table 1 / deterministic base-b (n=%d)", p.N),
				"base b", "mean hops", "bound ceil(log_b n)", "max hops ok")
			for _, b := range []int{2, 4, 8, 16} {
				b := b
				stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
					ring, err := metric.NewRing(p.N)
					if err != nil {
						return sim.SearchStats{}, err
					}
					g, err := graph.BuildDeterministic(ring, b, src)
					if err != nil {
						return sim.SearchStats{}, err
					}
					r := route.New(g, route.Options{DirectedOnly: true})
					return sim.MeasureSearches(g, r, src, p.Msgs)
				})
				if err != nil {
					return nil, err
				}
				bound := analysis.DeterministicUpperBound(p.N, b)
				t.AddValues(b, stats.MeanHops(), bound, stats.MeanHops() <= bound)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "table1.linkfail.multi",
		Artifact:    "Table 1, row 4 (link failure, ℓ∈[1,lg n]): O(log²n/pℓ)",
		Description: "links present independently w.p. p, sweep p",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 5, 100)
			links := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("Table 1 / link failures (n=%d, l=%d)", p.N, links),
				"p(link up)", "mean hops", "failed frac", "upper 8(1+lgn)H_n/pl", "hops*p (flat => 1/p law)")
			for _, prob := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
				prob := prob
				stats, err := measureIdeal(p, p.N, links, route.Options{DirectedOnly: true},
					func(g *graph.Graph, src *rng.Source) error {
						_, err := failure.FailLinks(g, prob, src)
						return err
					})
				if err != nil {
					return nil, err
				}
				upper, err := analysis.LinkFailureUpperBound(p.N, links, prob)
				if err != nil {
					return nil, err
				}
				t.AddValues(prob, stats.MeanHops(), stats.FailedFraction(), upper,
					stats.MeanHops()*prob)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "table1.linkfail.detb",
		Artifact:    "Table 1, row 5 (link failure, deterministic): O(b·log n/p)",
		Description: "Theorem 16 powers-of-b overlay under link failures",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 3, 200)
			const b = 2
			t := sim.NewTable(fmt.Sprintf("Table 1 / deterministic link failures (n=%d, b=%d)", p.N, b),
				"p(link up)", "mean hops", "upper 1+2(b-q)H_n/p")
			for _, prob := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
				prob := prob
				stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
					ring, err := metric.NewRing(p.N)
					if err != nil {
						return sim.SearchStats{}, err
					}
					g, err := graph.BuildDeterministicPowers(ring, b)
					if err != nil {
						return sim.SearchStats{}, err
					}
					if _, err := failure.FailLinks(g, prob, src); err != nil {
						return sim.SearchStats{}, err
					}
					r := route.New(g, route.Options{DirectedOnly: true})
					return sim.MeasureSearches(g, r, src, p.Msgs)
				})
				if err != nil {
					return nil, err
				}
				upper, err := analysis.DetLinkFailureUpperBound(p.N, b, prob)
				if err != nil {
					return nil, err
				}
				t.AddValues(prob, stats.MeanHops(), upper)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "table1.nodefail.binomial",
		Artifact:    "Table 1, row 6 / Theorem 17 (binomially present nodes): O(log²n)",
		Description: "each point hosts a node w.p. p; links drawn conditioned on presence",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 5, 100)
			t := sim.NewTable(fmt.Sprintf("Theorem 17 / binomial node presence (n=%d, l=1)", p.N),
				"p(present)", "mean hops", "failed frac", "upper 2H_n^2")
			for _, prob := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
				prob := prob
				stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
					ring, err := metric.NewRing(p.N)
					if err != nil {
						return sim.SearchStats{}, err
					}
					mask, err := failure.BinomialPresence(p.N, prob, src)
					if err != nil {
						return sim.SearchStats{}, err
					}
					g, err := graph.BuildIdealWithPresence(ring, graph.PaperConfig(1), mask, src)
					if err != nil {
						return sim.SearchStats{}, err
					}
					r := route.New(g, route.Options{DirectedOnly: true})
					return sim.MeasureSearches(g, r, src, p.Msgs)
				})
				if err != nil {
					return nil, err
				}
				t.AddValues(prob, stats.MeanHops(), stats.FailedFraction(),
					analysis.BinomialNodesUpperBound(p.N))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:          "table1.nodefail.general",
		Artifact:    "Theorem 18 (general node failures): O(log²n/(1−p)ℓ)",
		Description: "nodes fail w.p. p after linking; terminate policy",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<14, 5, 100)
			links := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("Theorem 18 / node failures (n=%d, l=%d)", p.N, links),
				"p(fail)", "mean hops", "failed frac", "upper 8(1+lgn)H_n/(1-p)l")
			for _, prob := range []float64{0, 0.2, 0.4, 0.6} {
				prob := prob
				stats, err := measureIdeal(p, p.N, links, route.Options{DirectedOnly: true},
					func(g *graph.Graph, src *rng.Source) error {
						_, err := failure.FailNodesProb(g, prob, src)
						return err
					})
				if err != nil {
					return nil, err
				}
				upper, err := analysis.NodeFailureUpperBound(p.N, links, prob)
				if err != nil {
					return nil, err
				}
				t.AddValues(prob, stats.MeanHops(), stats.FailedFraction(), upper)
			}
			return t, nil
		},
	})
}

// sweepSizes returns the n values swept by scaling experiments, capped
// by the configured maximum.
func sweepSizes(max int) []int {
	sizes := []int{}
	for n := 1 << 10; n <= max; n <<= 1 {
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		sizes = append(sizes, max)
	}
	return sizes
}

// sweepLinks returns the ℓ values 1, 2, 4, … up to lg.
func sweepLinks(lg int) []int {
	links := []int{}
	for l := 1; l <= lg; l <<= 1 {
		links = append(links, l)
	}
	if links[len(links)-1] != lg {
		links = append(links, lg)
	}
	return links
}
