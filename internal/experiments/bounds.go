package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "table1.bounds",
		Artifact: "Table 1 itself: every bound evaluated from the analysis formulas",
		Description: "no simulation — the paper's summary table regenerated from the " +
			"closed forms, at the configured n and ℓ",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<17, 1, 1) // paper quotes n=2^17 in §6
			n := p.N
			l := p.lgLinks()
			const b = 2
			t := sim.NewTable(fmt.Sprintf("Table 1 bounds (n=%d, l=%d, b=%d, p=0.5 where applicable)", n, l, b),
				"model", "links", "upper bound", "lower bound")

			linkFail, err := analysis.LinkFailureUpperBound(n, l, 0.5)
			if err != nil {
				return nil, err
			}
			detLinkFail, err := analysis.DetLinkFailureUpperBound(n, b, 0.5)
			if err != nil {
				return nil, err
			}
			nodeFail, err := analysis.NodeFailureUpperBound(n, l, 0.5)
			if err != nil {
				return nil, err
			}
			rows := []struct {
				model string
				links string
				upper float64
				lower float64
			}{
				{"no failures", "1",
					analysis.SingleLinkUpperBound(n),
					analysis.Theorem10LowerBound(n, 1, false)},
				{"no failures", fmt.Sprintf("[1, lg n]=%d", l),
					analysis.MultiLinkUpperBound(n, l),
					analysis.Theorem10LowerBound(n, l, true)},
				{"no failures (deterministic)", fmt.Sprintf("(lg n, n^c], b=%d", b),
					analysis.DeterministicUpperBound(n, b),
					analysis.LargeLBound(n, l)},
				{"Pr[link present]=0.5", fmt.Sprintf("%d", l), linkFail, 0},
				{"Pr[link present]=0.5 (deterministic)", fmt.Sprintf("b=%d", b), detLinkFail, 0},
				{"Pr[node present]=0.5 (binomial)", "1",
					analysis.BinomialNodesUpperBound(n), 0},
				{"Pr[node fails]=0.5 (Thm 18)", fmt.Sprintf("%d", l), nodeFail, 0},
			}
			for _, r := range rows {
				lowerCell := "-" // the paper leaves these cells blank
				if r.lower > 0 {
					lowerCell = sim.F(r.lower)
				}
				t.Add(r.model, r.links, sim.F(r.upper), lowerCell)
			}
			return t, nil
		},
	})
}
