package experiments

import (
	"fmt"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/keyspace"
	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "ext.2d",
		Artifact: "§7 future work: the design in a 2-D metric space",
		Description: "exponent sweep and failure sweep on a torus through the generic pipeline; " +
			"exponent d=2 is the asymptotic optimum (its win over lower exponents emerges beyond laptop n)",
		Run: func(p Params) (*sim.Table, error) {
			if p.Dim <= 1 {
				p.Dim = 2
			}
			p = p.withDefaults(1<<12, 3, 150)
			if p.Side < 8 {
				p.Side = 8
				p.N = mathx.IPow(p.Side, p.Dim)
			}
			links := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("2-D extension (%s, n=%d, l=%d)", p.spaceDesc(), p.N, links),
				"config", "mean hops", "failed frac")

			maxHops := 4*p.Side + 64
			measure := func(label string, exponent, failFrac float64, backtrack bool) error {
				stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
					sp, err := p.space()
					if err != nil {
						return sim.SearchStats{}, err
					}
					g, err := graph.BuildIdeal(sp, graph.BuildConfig{Links: links, Exponent: exponent}, src)
					if err != nil {
						return sim.SearchStats{}, err
					}
					if failFrac > 0 {
						if _, err := failure.FailNodesFraction(g, failFrac, src); err != nil {
							return sim.SearchStats{}, err
						}
					}
					opt := route.Options{DeadEnd: route.Terminate, MaxHops: maxHops}
					if backtrack {
						opt.DeadEnd = route.Backtrack
					}
					r := route.New(g, opt)
					return sim.MeasureSearches(g, r, src, p.Msgs)
				})
				if err != nil {
					return err
				}
				t.AddValues(label, stats.MeanHops(), stats.FailedFraction())
				return nil
			}

			const exponentUniform = -1.0
			for _, exp := range []float64{1, 2, 3, exponentUniform} {
				label := fmt.Sprintf("exponent %g, no failures", exp)
				e := exp
				if exp == exponentUniform {
					label = "uniform targets, no failures"
					e = 0
				}
				if err := measure(label, e, 0, false); err != nil {
					return nil, err
				}
			}
			for _, f := range []float64{0.3, 0.5} {
				if err := measure(fmt.Sprintf("exponent 2, %g failed, terminate", f), 2, f, false); err != nil {
					return nil, err
				}
				if err := measure(fmt.Sprintf("exponent 2, %g failed, backtrack", f), 2, f, true); err != nil {
					return nil, err
				}
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:       "ext.byzantine",
		Artifact: "§7 future work: robustness against Byzantine (message-dropping) nodes",
		Description: "malicious nodes silently drop traffic; Valiant-style redundant routing " +
			"through random relays recovers deliverability",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<13, 3, 150)
			links := p.lgLinks()
			t := sim.NewTable(fmt.Sprintf("Byzantine extension (n=%d, l=%d)", p.N, links),
				"p(malicious)", "direct success", "2 copies", "4 copies")
			for _, prob := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
				prob := prob
				row := make([]float64, 3)
				for ci, copies := range []int{1, 2, 4} {
					copies := copies
					stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
						ring, err := metric.NewRing(p.N)
						if err != nil {
							return sim.SearchStats{}, err
						}
						g, err := graph.BuildIdeal(ring, graph.PaperConfig(links), src)
						if err != nil {
							return sim.SearchStats{}, err
						}
						if _, err := failure.MarkMalicious(g, prob, src); err != nil {
							return sim.SearchStats{}, err
						}
						r := route.New(g, route.Options{})
						var s sim.SearchStats
						for i := 0; i < p.Msgs; i++ {
							from, ok1 := honestNode(g, src)
							to, ok2 := honestNode(g, src)
							if !ok1 || !ok2 || from == to {
								continue
							}
							res, err := r.RouteRedundant(src, from, to, copies)
							if err != nil {
								return s, err
							}
							s.Record(res)
						}
						return s, nil
					})
					if err != nil {
						return nil, err
					}
					row[ci] = 1 - stats.FailedFraction()
				}
				t.AddValues(prob, row[0], row[1], row[2])
			}
			return t, nil
		},
	})
}

func init() {
	register(Experiment{
		ID:       "ext.physical",
		Artifact: "§2 / Figure 1: physical machines vs virtual points under failure",
		Description: "machines own many hashed points; crashing machines (correlated point " +
			"deaths) should look identical to independent point failures — the hash " +
			"de-correlates failures, which is what makes §6's model faithful",
		Run: func(p Params) (*sim.Table, error) {
			p = p.withDefaults(1<<13, 3, 150)
			const resourcesPerMachine = 16
			links := p.lgLinks()
			t := sim.NewTable(
				fmt.Sprintf("Physical vs virtual failures (n=%d, %d resources/machine)", p.N, resourcesPerMachine),
				"fraction dead", "failed frac (machine crashes)", "failed frac (independent points)")
			for _, frac := range []float64{0.2, 0.4, 0.6} {
				frac := frac
				row := make([]float64, 2)
				for mode := 0; mode < 2; mode++ {
					mode := mode
					stats, err := sim.Run(p.Seed, p.Trials, p.Workers, func(trial int, src *rng.Source) (sim.SearchStats, error) {
						mapping, err := keyspace.NewMapping(p.N)
						if err != nil {
							return sim.SearchStats{}, err
						}
						machines := p.N / resourcesPerMachine / 2 // half-full space
						for mID := 0; mID < machines; mID++ {
							for r := 0; r < resourcesPerMachine; r++ {
								key := keyspace.Key(fmt.Sprintf("t%d-m%d-r%d", trial, mID, r))
								// Skip collisions: the space is half
								// empty, so a retry-free skip only
								// shaves a few resources.
								_, _ = mapping.Add(keyspace.PhysID(mID), key)
							}
						}
						ring, err := metric.NewRing(p.N)
						if err != nil {
							return sim.SearchStats{}, err
						}
						g, err := graph.BuildIdealWithPresence(ring, graph.PaperConfig(links),
							mapping.PresenceMask(), src)
						if err != nil {
							return sim.SearchStats{}, err
						}
						if mode == 0 {
							// Crash whole machines until the desired
							// fraction of points is dead.
							targetDead := int(frac * float64(g.AliveCount()))
							dead := 0
							for _, mID := range src.Perm(machines) {
								if dead >= targetDead {
									break
								}
								for _, pt := range mapping.FailPhysical(keyspace.PhysID(mID)) {
									if g.Fail(pt) {
										dead++
									}
								}
							}
						} else {
							if _, err := failure.FailNodesFraction(g, frac, src); err != nil {
								return sim.SearchStats{}, err
							}
						}
						r := route.New(g, route.Options{DeadEnd: route.Backtrack})
						return sim.MeasureSearches(g, r, src, p.Msgs)
					})
					if err != nil {
						return nil, err
					}
					row[mode] = stats.FailedFraction()
				}
				t.AddValues(frac, row[0], row[1])
			}
			return t, nil
		},
	})
}

// honestNode draws a random live, non-malicious node.
func honestNode(g *graph.Graph, src *rng.Source) (metric.Point, bool) {
	for i := 0; i < 256; i++ {
		p, ok := g.RandomAlive(src)
		if !ok {
			return 0, false
		}
		if !g.Malicious(p) {
			return p, true
		}
	}
	return 0, false
}
