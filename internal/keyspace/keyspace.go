// Package keyspace implements the resource embedding of §2 (Figure 1):
// physical network nodes provide resources; each resource's key hashes
// to a point of the metric space, so one physical node owns the set
// V_n of points corresponding to the resources it provides. The
// overlay's vertices are these virtual points, not the machines.
//
// The distinction matters for failures: a crashing machine takes down
// all of its points at once. Because the hash spreads a machine's
// resources uniformly over the space, those correlated physical
// failures look exactly like independent point failures to the overlay
// — the property that makes §6's independent-failure experiments
// faithful to machine-level reality. The ext.physical experiment
// verifies this empirically.
package keyspace

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/metric"
)

// Key identifies a resource (the paper's key(r) ∈ K).
type Key string

// PhysID identifies a physical network node (a machine).
type PhysID int

// Hash is the paper's h : K → V, mapping a key to a point of a space
// with n grid points. FNV-1a spreads keys evenly, which §2 assumes of
// its hash function.
func Hash(k Key, n int) (metric.Point, error) {
	if n < 1 {
		return 0, fmt.Errorf("keyspace: space size must be >= 1, got %d", n)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(k))
	return metric.Point(h.Sum64() % uint64(n)), nil
}

// Mapping tracks which physical node provides the resource at each
// occupied point — the owner(r) relation of §2.
type Mapping struct {
	n      int
	owner  map[metric.Point]PhysID
	keys   map[metric.Point]Key
	points map[PhysID][]metric.Point
}

// NewMapping returns an empty mapping over a space of n points.
func NewMapping(n int) (*Mapping, error) {
	if n < 1 {
		return nil, fmt.Errorf("keyspace: space size must be >= 1, got %d", n)
	}
	return &Mapping{
		n:      n,
		owner:  make(map[metric.Point]PhysID),
		keys:   make(map[metric.Point]Key),
		points: make(map[PhysID][]metric.Point),
	}, nil
}

// SpaceSize returns n.
func (m *Mapping) SpaceSize() int { return m.n }

// Add registers that physical node `owner` provides the resource with
// key k, and returns the point the resource occupies. Adding two keys
// that hash to the same point is a collision and returns an error; §2
// assumes the space is sparse enough that collisions are negligible,
// and callers retry with a salted key if needed.
func (m *Mapping) Add(owner PhysID, k Key) (metric.Point, error) {
	p, err := Hash(k, m.n)
	if err != nil {
		return 0, err
	}
	if prev, taken := m.owner[p]; taken {
		return 0, fmt.Errorf("keyspace: point %d already occupied by node %d (key %q)",
			p, prev, m.keys[p])
	}
	m.owner[p] = owner
	m.keys[p] = k
	m.points[owner] = append(m.points[owner], p)
	return p, nil
}

// OwnerOf returns the physical node providing the resource at p.
func (m *Mapping) OwnerOf(p metric.Point) (PhysID, bool) {
	id, ok := m.owner[p]
	return id, ok
}

// KeyAt returns the resource key occupying p.
func (m *Mapping) KeyAt(p metric.Point) (Key, bool) {
	k, ok := m.keys[p]
	return k, ok
}

// PointsOf returns the virtual points owned by a physical node (V_n of
// §2), sorted for determinism.
func (m *Mapping) PointsOf(owner PhysID) []metric.Point {
	pts := make([]metric.Point, len(m.points[owner]))
	copy(pts, m.points[owner])
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// Owners returns all registered physical nodes, sorted.
func (m *Mapping) Owners() []PhysID {
	ids := make([]PhysID, 0, len(m.points))
	for id := range m.points {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OccupiedPoints returns the number of points hosting a resource.
func (m *Mapping) OccupiedPoints() int { return len(m.owner) }

// PresenceMask returns the []bool mask (length n) of occupied points,
// suitable for graph.NewWithPresence: the overlay only has vertices
// where resources exist.
func (m *Mapping) PresenceMask() []bool {
	mask := make([]bool, m.n)
	for p := range m.owner {
		mask[p] = true
	}
	return mask
}

// Remove unregisters the resource at p (the physical node stopped
// providing it).
func (m *Mapping) Remove(p metric.Point) error {
	owner, ok := m.owner[p]
	if !ok {
		return fmt.Errorf("keyspace: no resource at point %d", p)
	}
	delete(m.owner, p)
	delete(m.keys, p)
	pts := m.points[owner]
	for i, q := range pts {
		if q == p {
			m.points[owner] = append(pts[:i], pts[i+1:]...)
			break
		}
	}
	if len(m.points[owner]) == 0 {
		delete(m.points, owner)
	}
	return nil
}

// FailPhysical removes every resource of a physical node (machine
// crash) and returns the virtual points that died with it.
func (m *Mapping) FailPhysical(owner PhysID) []metric.Point {
	pts := m.PointsOf(owner)
	for _, p := range pts {
		delete(m.owner, p)
		delete(m.keys, p)
	}
	delete(m.points, owner)
	return pts
}
