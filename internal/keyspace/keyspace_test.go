package keyspace

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestHashValidation(t *testing.T) {
	if _, err := Hash("x", 0); err == nil {
		t.Error("n=0 should error")
	}
}

func TestHashDeterministicAndInRange(t *testing.T) {
	f := func(s string) bool {
		const n = 4096
		a, err := Hash(Key(s), n)
		if err != nil {
			return false
		}
		b, err := Hash(Key(s), n)
		if err != nil {
			return false
		}
		return a == b && a >= 0 && int(a) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSpreadsEvenly(t *testing.T) {
	// §2 assumes the hash populates the space evenly: bucket 10k keys
	// into 16 regions and check against the uniform expectation.
	const n, keys, regions = 1 << 12, 10000, 16
	counts := make([]int, regions)
	for i := 0; i < keys; i++ {
		p, err := Hash(Key(fmt.Sprintf("resource-%d", i)), n)
		if err != nil {
			t.Fatal(err)
		}
		counts[int(p)*regions/n]++
	}
	want := float64(keys) / regions
	for r, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("region %d has %d keys, want ≈ %v", r, c, want)
		}
	}
}

func TestMappingAddAndLookup(t *testing.T) {
	if _, err := NewMapping(0); err == nil {
		t.Error("n=0 should error")
	}
	m, err := NewMapping(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Add(7, "song.ogg")
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := m.OwnerOf(p)
	if !ok || owner != 7 {
		t.Errorf("owner = %v,%v", owner, ok)
	}
	k, ok := m.KeyAt(p)
	if !ok || k != "song.ogg" {
		t.Errorf("key = %v,%v", k, ok)
	}
	if m.OccupiedPoints() != 1 || m.SpaceSize() != 1<<16 {
		t.Error("bookkeeping wrong")
	}
	if _, ok := m.OwnerOf(p + 1); ok {
		t.Error("empty point should have no owner")
	}
}

func TestMappingCollision(t *testing.T) {
	m, err := NewMapping(1) // every key collides
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(1, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(2, "b"); err == nil {
		t.Error("collision should error")
	}
}

func TestPointsOfSortedAndComplete(t *testing.T) {
	m, err := NewMapping(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	var added []Key
	for i := 0; i < 20; i++ {
		k := Key(fmt.Sprintf("file-%d", i))
		if _, err := m.Add(3, k); err != nil {
			t.Fatal(err)
		}
		added = append(added, k)
	}
	pts := m.PointsOf(3)
	if len(pts) != len(added) {
		t.Fatalf("points = %d, want %d", len(pts), len(added))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1] >= pts[i] {
			t.Fatal("points not sorted")
		}
	}
	if owners := m.Owners(); len(owners) != 1 || owners[0] != 3 {
		t.Errorf("owners = %v", owners)
	}
}

func TestPresenceMask(t *testing.T) {
	m, err := NewMapping(64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Add(1, "only")
	if err != nil {
		t.Fatal(err)
	}
	mask := m.PresenceMask()
	if len(mask) != 64 {
		t.Fatalf("mask length = %d", len(mask))
	}
	for i, present := range mask {
		if present != (i == int(p)) {
			t.Errorf("mask[%d] = %v", i, present)
		}
	}
}

func TestRemove(t *testing.T) {
	m, err := NewMapping(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Add(5, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.OwnerOf(p); ok {
		t.Error("removed point still owned")
	}
	if len(m.Owners()) != 0 {
		t.Error("empty owner should be dropped")
	}
	if err := m.Remove(p); err == nil {
		t.Error("double remove should error")
	}
}

func TestFailPhysicalKillsAllPoints(t *testing.T) {
	m, err := NewMapping(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Add(9, Key(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Add(2, "other"); err != nil {
		t.Fatal(err)
	}
	dead := m.FailPhysical(9)
	if len(dead) != 10 {
		t.Fatalf("failed points = %d, want 10", len(dead))
	}
	for _, p := range dead {
		if _, ok := m.OwnerOf(p); ok {
			t.Errorf("point %d survived its machine", p)
		}
	}
	if m.OccupiedPoints() != 1 {
		t.Errorf("occupied = %d, want 1 (the other machine)", m.OccupiedPoints())
	}
	if got := m.FailPhysical(9); len(got) != 0 {
		t.Error("double crash should kill nothing")
	}
}
