package failure

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
)

// This file is the dynamic side of the package: where the injectors
// above apply a failure pattern to a graph once, before traffic starts,
// a ChurnSpec describes node dynamics *over virtual time* — crashes and
// joins as timestamped events the discrete-event engine interleaves
// with traffic (engine.Config.Churn). The spec is the validated,
// fuzzable schedule description; Generate expands it into the concrete
// event list; AliveView replays that list to answer "who was alive at
// time t", the dynamic counterpart of graph.Alive.

// ChurnKind is the kind of one churn event.
type ChurnKind uint8

const (
	// ChurnCrash: the node at Node fails at Time.
	ChurnCrash ChurnKind = iota
	// ChurnJoin: the (previously failed) node at Node revives at Time.
	ChurnJoin
)

func (k ChurnKind) String() string {
	if k == ChurnJoin {
		return "join"
	}
	return "crash"
}

// ChurnEvent is one node-dynamics event on the engine's virtual clock.
type ChurnEvent struct {
	Time float64
	Kind ChurnKind
	Node metric.Point
}

// ChurnSpec describes a churn schedule: background Poisson churn, an
// optional correlated regional kill, an optional flash-crowd join, and
// the knobs of the gossip membership layer that detects and repairs the
// damage. The zero value is fully disabled; setting any field enables
// the engine's churn machinery (an event-less spec with only gossip
// knobs set attaches the machinery without scheduling any dynamics —
// the differential-test configuration).
type ChurnSpec struct {
	// Rate is the background churn rate: crash/join events arrive as a
	// Poisson process at Rate events per virtual tick over [0, Horizon).
	// Each event crashes a random alive node or revives a random dead
	// one (an even coin when both pools are non-empty).
	Rate float64
	// Horizon bounds the background Poisson stream. Required positive
	// when Rate is positive.
	Horizon float64
	// KillFrac, when positive, schedules a correlated regional kill at
	// KillAt: a contiguous interval of round(KillFrac·n) grid points in
	// the space's point order crashes at one instant — the adversarial
	// counterpart of FailInterval, on the clock.
	KillFrac float64
	// KillAt is the virtual time of the regional kill.
	KillAt float64
	// FlashJoin, when positive, schedules a flash crowd: FlashJoin dead
	// nodes revive simultaneously at FlashAt.
	FlashJoin int
	// FlashAt is the virtual time of the flash-crowd join.
	FlashAt float64
	// ProbeTimeout is the failure-detection delay in virtual ticks: how
	// long after a crash the dead node's neighbours notice (probes stop
	// being answered), and how long an in-flight message stranded at a
	// dying node waits before re-forwarding. Resolved by the caller
	// (package load defaults it to 4 service times).
	ProbeTimeout float64
	// GossipInterval is the cadence of gossip rounds in virtual ticks.
	GossipInterval float64
	// GossipFanout is how many random alive peers a node pushes its hot
	// rumors to per round; each transmission charges one FIFO service at
	// the sender, so dissemination competes with traffic for capacity.
	GossipFanout int
	// Repair turns on gossip-driven link repair: a node that *learns* of
	// a crash (not an oracle) redraws its long links into the dead node
	// from the paper's §5 power-law distribution, resolved to the
	// nearest alive node.
	Repair bool
	// Protect lists points the schedule never crashes (experiment
	// targets and their replicas).
	Protect []metric.Point
}

// Enabled reports whether the spec engages the engine's churn
// machinery at all.
func (s ChurnSpec) Enabled() bool {
	return s.Rate > 0 || s.KillFrac > 0 || s.FlashJoin > 0 ||
		s.ProbeTimeout > 0 || s.GossipInterval > 0 || s.GossipFanout > 0 || s.Repair
}

// Validate rejects a malformed spec. It is the fuzzed entry point: any
// input the fuzzer produces must either pass here or fail here — never
// panic downstream.
func (s ChurnSpec) Validate() error {
	for name, v := range map[string]float64{
		"rate": s.Rate, "horizon": s.Horizon, "kill time": s.KillAt,
		"flash time": s.FlashAt, "probe timeout": s.ProbeTimeout,
		"gossip interval": s.GossipInterval, "kill fraction": s.KillFrac,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("failure: churn %s %g is not finite", name, v)
		}
		if v < 0 {
			return fmt.Errorf("failure: churn %s %g must be non-negative", name, v)
		}
	}
	if s.KillFrac > 1 {
		return fmt.Errorf("failure: churn kill fraction %g outside [0,1]", s.KillFrac)
	}
	if s.Rate > 0 && s.Horizon == 0 {
		return fmt.Errorf("failure: churn rate %g needs a positive horizon", s.Rate)
	}
	if s.FlashJoin < 0 {
		return fmt.Errorf("failure: churn flash-join count %d must be non-negative", s.FlashJoin)
	}
	if s.GossipFanout < 0 {
		return fmt.Errorf("failure: churn gossip fanout %d must be non-negative", s.GossipFanout)
	}
	return nil
}

// Generate expands the spec into a concrete event list over g's current
// alive set, sorted by (Time, order drawn). The draw simulates the
// alive set forward as it goes — a crash only picks a node that is
// alive at that instant, a join only a dead one — so applying the
// events in order to g is always a sequence of valid transitions. The
// graph is not mutated.
func (s ChurnSpec) Generate(g *graph.Graph, src *rng.Source) ([]ChurnEvent, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	protected := make(map[metric.Point]bool, len(s.Protect))
	for _, p := range s.Protect {
		protected[p] = true
	}
	view := NewAliveView(g)

	// The fixed instants (regional kill, flash crowd) and the Poisson
	// stream interleave; draws must happen in time order because each
	// consults the alive set its predecessors left behind.
	type instant struct {
		at   float64
		kind int // 0 = poisson, 1 = kill, 2 = flash
	}
	var times []instant
	if s.Rate > 0 {
		t := 0.0
		for {
			u := src.Float64()
			for u == 0 {
				u = src.Float64()
			}
			t += -math.Log(u) / s.Rate
			if t >= s.Horizon {
				break
			}
			times = append(times, instant{at: t, kind: 0})
		}
	}
	if s.KillFrac > 0 {
		times = append(times, instant{at: s.KillAt, kind: 1})
	}
	if s.FlashJoin > 0 {
		times = append(times, instant{at: s.FlashAt, kind: 2})
	}
	// Stable insertion sort by time (the Poisson times are already
	// sorted; at most two fixed instants move).
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j].at < times[j-1].at; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}

	var events []ChurnEvent
	emit := func(ev ChurnEvent) {
		if view.Apply(ev) {
			events = append(events, ev)
		}
	}
	for _, in := range times {
		switch in.kind {
		case 1:
			// Contiguous interval in point order, like FailInterval.
			width := int(math.Round(s.KillFrac * float64(g.Size())))
			cur := metric.Point(src.Intn(g.Size()))
			for i := 0; i < width; i++ {
				if view.Alive(cur) && !protected[cur] {
					emit(ChurnEvent{Time: in.at, Kind: ChurnCrash, Node: cur})
				}
				next, ok := g.Space().Step(cur, +1)
				if !ok {
					break
				}
				cur = next
			}
		case 2:
			for i := 0; i < s.FlashJoin; i++ {
				p, ok := view.randomDead(g, src)
				if !ok {
					break
				}
				emit(ChurnEvent{Time: in.at, Kind: ChurnJoin, Node: p})
			}
		default:
			crash := true
			if view.Count() <= 1 {
				crash = false // never extinguish the network
			} else if view.deadCount(g) > 0 {
				crash = src.Bool(0.5)
			}
			if crash {
				p, ok := view.randomAliveExcept(g, src, protected)
				if !ok {
					continue
				}
				emit(ChurnEvent{Time: in.at, Kind: ChurnCrash, Node: p})
			} else {
				p, ok := view.randomDead(g, src)
				if !ok {
					continue
				}
				emit(ChurnEvent{Time: in.at, Kind: ChurnJoin, Node: p})
			}
		}
	}
	return events, nil
}

// AliveView is a dynamic alive set: a snapshot of a graph's liveness
// that replays churn events without touching the graph. The engine
// mutates the real graph as events fire; tests and the schedule
// generator use an AliveView to know the truth at any point of the
// timeline.
type AliveView struct {
	exists []bool
	alive  []bool
	count  int
}

// NewAliveView snapshots g's current liveness.
func NewAliveView(g *graph.Graph) *AliveView {
	v := &AliveView{
		exists: make([]bool, g.Size()),
		alive:  make([]bool, g.Size()),
	}
	for i := 0; i < g.Size(); i++ {
		p := metric.Point(i)
		v.exists[i] = g.Exists(p)
		if g.Alive(p) {
			v.alive[i] = true
			v.count++
		}
	}
	return v
}

// Apply replays one event, reporting whether it changed the view (a
// crash of a dead node or a join of an alive/absent one is a no-op).
func (v *AliveView) Apply(ev ChurnEvent) bool {
	i := int(ev.Node)
	if i < 0 || i >= len(v.alive) || !v.exists[i] {
		return false
	}
	switch ev.Kind {
	case ChurnCrash:
		if !v.alive[i] {
			return false
		}
		v.alive[i] = false
		v.count--
	case ChurnJoin:
		if v.alive[i] {
			return false
		}
		v.alive[i] = true
		v.count++
	default:
		return false
	}
	return true
}

// Alive reports whether p is alive in the view.
func (v *AliveView) Alive(p metric.Point) bool {
	return p >= 0 && int(p) < len(v.alive) && v.alive[p]
}

// Count returns the number of alive nodes in the view.
func (v *AliveView) Count() int { return v.count }

func (v *AliveView) deadCount(g *graph.Graph) int {
	dead := 0
	for i := range v.alive {
		if v.exists[i] && !v.alive[i] {
			dead++
		}
	}
	return dead
}

// randomDead draws a uniformly random dead-but-existing node.
func (v *AliveView) randomDead(g *graph.Graph, src *rng.Source) (metric.Point, bool) {
	dead := v.deadCount(g)
	if dead == 0 {
		return 0, false
	}
	k := src.Intn(dead)
	for i := range v.alive {
		if v.exists[i] && !v.alive[i] {
			if k == 0 {
				return metric.Point(i), true
			}
			k--
		}
	}
	return 0, false
}

// randomAliveExcept draws a uniformly random alive node outside the
// protected set.
func (v *AliveView) randomAliveExcept(g *graph.Graph, src *rng.Source, protected map[metric.Point]bool) (metric.Point, bool) {
	n := 0
	for i := range v.alive {
		if v.alive[i] && !protected[metric.Point(i)] {
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	k := src.Intn(n)
	for i := range v.alive {
		if v.alive[i] && !protected[metric.Point(i)] {
			if k == 0 {
				return metric.Point(i), true
			}
			k--
		}
	}
	return 0, false
}
