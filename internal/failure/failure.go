// Package failure implements the failure models of §4.3.3–§4.3.4 and §6:
// independent link failures, post-construction node crashes, the
// binomially-present node model, and an adversarial contiguous-interval
// model used for robustness testing beyond the paper.
//
// The models come in two kinds. The static injectors (FailLinks,
// FailNodes, and friends) mutate a graph.Graph in place before an
// experiment starts. ChurnSpec is the dynamic side: it describes node
// lifecycle behaviour over virtual time — background crash/join churn,
// a correlated regional kill, a flash-crowd join — and Generate
// expands it into a timestamped ChurnEvent schedule without touching
// the graph; the discrete-event engine applies those events on the
// same clock as the traffic (see internal/load's Config.Churn).
// AliveView replays a schedule over a graph's initial alive set for
// validation. Everything is deterministic given an rng.Source, so
// experiments remain reproducible.
package failure

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
)

// FailLinks takes each long-distance link down independently with
// probability 1−p, i.e. each link remains present with probability p
// (the model of Theorem 15/16; short links never fail, matching the
// paper's assumption that "links to the immediate neighbors are always
// present"). It returns the number of links taken down.
func FailLinks(g *graph.Graph, p float64, src *rng.Source) (down int, err error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("failure: link-present probability %v outside [0,1]", p)
	}
	for i := 0; i < g.Size(); i++ {
		pt := metric.Point(i)
		for k := range g.Long(pt) {
			if !src.Bool(p) {
				if err := g.SetLongUp(pt, k, false); err != nil {
					return down, err
				}
				down++
			}
		}
	}
	return down, nil
}

// FailNodesFraction crashes an exact fraction f of the currently-alive
// nodes, chosen uniformly at random, never touching the points listed in
// protect (the experiment protocol of §6 picks source and destination
// among surviving nodes, so harness code protects them or selects them
// afterwards). It returns the number of nodes crashed.
func FailNodesFraction(g *graph.Graph, f float64, src *rng.Source, protect ...metric.Point) (int, error) {
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("failure: fraction %v outside [0,1]", f)
	}
	protected := make(map[metric.Point]bool, len(protect))
	for _, p := range protect {
		protected[p] = true
	}
	// Collect candidates.
	candidates := make([]metric.Point, 0, g.AliveCount())
	for i := 0; i < g.Size(); i++ {
		p := metric.Point(i)
		if g.Alive(p) && !protected[p] {
			candidates = append(candidates, p)
		}
	}
	target := int(f * float64(g.AliveCount()))
	if target > len(candidates) {
		target = len(candidates)
	}
	// Partial Fisher–Yates: select the first `target` of a shuffle.
	for i := 0; i < target; i++ {
		j := i + src.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		g.Fail(candidates[i])
	}
	return target, nil
}

// FailNodesProb crashes each alive node independently with probability
// p (the model of Theorem 18), never touching protected points. It
// returns the number of nodes crashed.
func FailNodesProb(g *graph.Graph, p float64, src *rng.Source, protect ...metric.Point) (int, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("failure: probability %v outside [0,1]", p)
	}
	protected := make(map[metric.Point]bool, len(protect))
	for _, pt := range protect {
		protected[pt] = true
	}
	crashed := 0
	for i := 0; i < g.Size(); i++ {
		pt := metric.Point(i)
		if g.Alive(pt) && !protected[pt] && src.Bool(p) {
			g.Fail(pt)
			crashed++
		}
	}
	return crashed, nil
}

// BinomialPresence returns a presence mask in which each of the n grid
// points hosts a node independently with probability p (§4.3.4.1). The
// mask is guaranteed non-empty: if the draw leaves no nodes, one
// uniformly random point is forced present so the graph constructor
// does not reject it.
func BinomialPresence(n int, p float64, src *rng.Source) ([]bool, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("failure: presence probability %v outside [0,1]", p)
	}
	if n <= 0 {
		return nil, fmt.Errorf("failure: presence mask needs n >= 1, got %d", n)
	}
	mask := make([]bool, n)
	any := false
	for i := range mask {
		mask[i] = src.Bool(p)
		any = any || mask[i]
	}
	if !any {
		mask[src.Intn(n)] = true
	}
	return mask, nil
}

// MarkMalicious turns each live node Byzantine independently with
// probability p (§7 names robustness against Byzantine failures as
// future work; the ext.byzantine experiment explores it). Malicious
// nodes stay in the overlay but silently drop messages routed through
// them. It returns the number of nodes marked.
func MarkMalicious(g *graph.Graph, p float64, src *rng.Source) (int, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("failure: malicious probability %v outside [0,1]", p)
	}
	marked := 0
	for i := 0; i < g.Size(); i++ {
		pt := metric.Point(i)
		if g.Alive(pt) && src.Bool(p) {
			if err := g.SetMalicious(pt, true); err != nil {
				return marked, err
			}
			marked++
		}
	}
	return marked, nil
}

// FailInterval crashes every alive node in the contiguous interval of
// `width` points starting at `start` (wrapping on a ring, clipped on a
// line). Contiguous loss is the worst case for a structure whose short
// links are the fallback route; the paper's random-failure experiments
// never produce it at scale, so this injector is used by robustness
// tests. It returns the number of nodes crashed.
func FailInterval(g *graph.Graph, start metric.Point, width int, protect ...metric.Point) int {
	protected := make(map[metric.Point]bool, len(protect))
	for _, p := range protect {
		protected[p] = true
	}
	crashed := 0
	cur := start
	for i := 0; i < width; i++ {
		if g.Alive(cur) && !protected[cur] {
			if g.Fail(cur) {
				crashed++
			}
		}
		next, ok := g.Space().Step(cur, +1)
		if !ok {
			break
		}
		cur = next
	}
	return crashed
}
