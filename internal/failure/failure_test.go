package failure

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
)

func ringGraph(t testing.TB, n, links int, seed uint64) *graph.Graph {
	t.Helper()
	sp, err := metric.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(sp, graph.PaperConfig(links), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFailLinksValidation(t *testing.T) {
	g := ringGraph(t, 16, 2, 1)
	if _, err := FailLinks(g, -0.1, rng.New(1)); err == nil {
		t.Error("negative p should error")
	}
	if _, err := FailLinks(g, 1.1, rng.New(1)); err == nil {
		t.Error("p > 1 should error")
	}
}

func TestFailLinksProportion(t *testing.T) {
	const n, links = 512, 8
	g := ringGraph(t, n, links, 2)
	p := 0.7
	down, err := FailLinks(g, p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	total := n * links
	wantDown := float64(total) * (1 - p)
	if math.Abs(float64(down)-wantDown) > 4*math.Sqrt(wantDown) {
		t.Errorf("down = %d, want ≈ %v", down, wantDown)
	}
	// Verify flags actually changed.
	upCount := 0
	for i := 0; i < n; i++ {
		for _, lk := range g.Long(metric.Point(i)) {
			if lk.Up {
				upCount++
			}
		}
	}
	if upCount != total-down {
		t.Errorf("up count %d inconsistent with down %d of %d", upCount, down, total)
	}
}

func TestFailLinksExtremes(t *testing.T) {
	g := ringGraph(t, 64, 4, 4)
	down, err := FailLinks(g, 1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if down != 0 {
		t.Errorf("p=1 should keep all links, downed %d", down)
	}
	down, err = FailLinks(g, 0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if down != 64*4 {
		t.Errorf("p=0 should down all links, downed %d", down)
	}
}

func TestFailNodesFraction(t *testing.T) {
	g := ringGraph(t, 1000, 2, 6)
	crashed, err := FailNodesFraction(g, 0.3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if crashed != 300 {
		t.Errorf("crashed = %d, want exactly 300", crashed)
	}
	if g.AliveCount() != 700 {
		t.Errorf("alive = %d, want 700", g.AliveCount())
	}
}

func TestFailNodesFractionProtect(t *testing.T) {
	g := ringGraph(t, 100, 2, 8)
	src := rng.New(9)
	for i := 0; i < 20; i++ {
		// Repeat to make accidental passes unlikely.
		g2 := ringGraph(t, 100, 2, uint64(i))
		if _, err := FailNodesFraction(g2, 0.9, src, 7, 42); err != nil {
			t.Fatal(err)
		}
		if !g2.Alive(7) || !g2.Alive(42) {
			t.Fatal("protected nodes were crashed")
		}
	}
	if _, err := FailNodesFraction(g, 2, src); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestFailNodesFractionFull(t *testing.T) {
	g := ringGraph(t, 50, 1, 10)
	crashed, err := FailNodesFraction(g, 1, rng.New(11), 3)
	if err != nil {
		t.Fatal(err)
	}
	if crashed != 49 {
		t.Errorf("crashed = %d, want 49 (one protected)", crashed)
	}
	if !g.Alive(3) {
		t.Error("protected node crashed")
	}
}

func TestFailNodesProb(t *testing.T) {
	g := ringGraph(t, 2000, 1, 12)
	crashed, err := FailNodesProb(g, 0.25, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25 * 2000
	if math.Abs(float64(crashed)-want) > 4*math.Sqrt(want) {
		t.Errorf("crashed = %d, want ≈ %v", crashed, want)
	}
	if _, err := FailNodesProb(g, -1, rng.New(1)); err == nil {
		t.Error("invalid probability should error")
	}
}

func TestBinomialPresence(t *testing.T) {
	src := rng.New(14)
	mask, err := BinomialPresence(5000, 0.6, src)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, m := range mask {
		if m {
			count++
		}
	}
	want := 0.6 * 5000
	if math.Abs(float64(count)-want) > 4*math.Sqrt(want) {
		t.Errorf("present = %d, want ≈ %v", count, want)
	}
}

func TestBinomialPresenceNeverEmpty(t *testing.T) {
	src := rng.New(15)
	for i := 0; i < 50; i++ {
		mask, err := BinomialPresence(10, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		any := false
		for _, m := range mask {
			any = any || m
		}
		if !any {
			t.Fatal("mask must never be empty")
		}
	}
	if _, err := BinomialPresence(0, 0.5, src); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := BinomialPresence(10, 1.5, src); err == nil {
		t.Error("p>1 should error")
	}
}

func TestFailInterval(t *testing.T) {
	g := ringGraph(t, 32, 1, 16)
	crashed := FailInterval(g, 30, 5) // wraps: 30,31,0,1,2
	if crashed != 5 {
		t.Errorf("crashed = %d, want 5", crashed)
	}
	for _, p := range []metric.Point{30, 31, 0, 1, 2} {
		if g.Alive(p) {
			t.Errorf("node %d should be dead", p)
		}
	}
	if !g.Alive(3) || !g.Alive(29) {
		t.Error("interval overshot")
	}
}

func TestFailIntervalProtectAndClip(t *testing.T) {
	sp, err := metric.NewLine(10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildIdeal(sp, graph.PaperConfig(1), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	crashed := FailInterval(g, 7, 10, 8) // clipped at line end, 8 protected
	if crashed != 2 {                    // 7 and 9
		t.Errorf("crashed = %d, want 2", crashed)
	}
	if !g.Alive(8) {
		t.Error("protected node crashed")
	}
}
