package failure

import (
	"math"
	"strings"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

func TestChurnSpecEnabled(t *testing.T) {
	if (ChurnSpec{}).Enabled() {
		t.Error("zero spec must be disabled")
	}
	cases := []ChurnSpec{
		{Rate: 0.1},
		{KillFrac: 0.3},
		{FlashJoin: 5},
		{ProbeTimeout: 1},
		{GossipInterval: 1},
		{GossipFanout: 2},
		{Repair: true},
	}
	for i, s := range cases {
		if !s.Enabled() {
			t.Errorf("case %d: %+v should be enabled", i, s)
		}
	}
}

func TestChurnSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ChurnSpec
		want string // error substring, "" = valid
	}{
		{"zero", ChurnSpec{}, ""},
		{"full", ChurnSpec{Rate: 0.5, Horizon: 100, KillFrac: 0.3, KillAt: 40,
			FlashJoin: 8, FlashAt: 60, ProbeTimeout: 2, GossipInterval: 1,
			GossipFanout: 2, Repair: true}, ""},
		{"nan rate", ChurnSpec{Rate: math.NaN(), Horizon: 1}, "is not finite"},
		{"inf horizon", ChurnSpec{Rate: 1, Horizon: math.Inf(1)}, "is not finite"},
		{"negative rate", ChurnSpec{Rate: -1, Horizon: 1}, "must be non-negative"},
		{"negative kill time", ChurnSpec{KillFrac: 0.1, KillAt: -3}, "must be non-negative"},
		{"nan kill fraction", ChurnSpec{KillFrac: math.NaN()}, "is not finite"},
		{"kill fraction above one", ChurnSpec{KillFrac: 1.5}, "outside [0,1]"},
		{"rate without horizon", ChurnSpec{Rate: 0.5}, "needs a positive horizon"},
		{"negative flash join", ChurnSpec{FlashJoin: -2}, "must be non-negative"},
		{"negative fanout", ChurnSpec{GossipFanout: -1}, "must be non-negative"},
		{"negative probe", ChurnSpec{ProbeTimeout: -0.5}, "must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestChurnGenerateDeterministic(t *testing.T) {
	g := ringGraph(t, 256, 4, 20)
	spec := ChurnSpec{Rate: 0.2, Horizon: 200, KillFrac: 0.25, KillAt: 80,
		ProbeTimeout: 1, GossipInterval: 1, GossipFanout: 2}
	a, err := spec.Generate(g, rng.New(21).Derive(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(g, rng.New(21).Derive(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("schedule should not be empty")
	}
	if len(a) != len(b) {
		t.Fatalf("reruns differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := spec.Generate(g, rng.New(99).Derive(4))
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seed produced an identical schedule")
	}
}

// TestChurnGenerateValidTransitions replays the generated schedule
// through an AliveView: every event must be a valid transition (crash
// of an alive node, join of a dead one), times must be nondecreasing,
// protected nodes must never crash, and the network never goes
// extinct.
func TestChurnGenerateValidTransitions(t *testing.T) {
	g := ringGraph(t, 128, 4, 22)
	protect := []metric.Point{7, 42, 100}
	spec := ChurnSpec{Rate: 1, Horizon: 300, KillFrac: 0.4, KillAt: 100,
		FlashJoin: 10, FlashAt: 180, ProbeTimeout: 1, GossipInterval: 1,
		GossipFanout: 2, Protect: protect}
	events, err := spec.Generate(g, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("schedule should not be empty")
	}
	view := NewAliveView(g)
	last := math.Inf(-1)
	for i, ev := range events {
		if ev.Time < last {
			t.Fatalf("event %d out of order: %g after %g", i, ev.Time, last)
		}
		last = ev.Time
		if ev.Kind == ChurnCrash {
			for _, p := range protect {
				if ev.Node == p {
					t.Fatalf("event %d crashes protected node %d", i, p)
				}
			}
		}
		if !view.Apply(ev) {
			t.Fatalf("event %d (%s node %d at %g) is not a valid transition",
				i, ev.Kind, ev.Node, ev.Time)
		}
		if view.Count() == 0 {
			t.Fatalf("event %d extinguished the network", i)
		}
	}
	// The graph itself must be untouched: Generate only simulates.
	if g.AliveCount() != g.Size() {
		t.Errorf("Generate mutated the graph: alive %d of %d", g.AliveCount(), g.Size())
	}
}

// TestChurnGenerateKill pins the regional kill's exact shape: on a
// fully-alive ring with no protection, the kill crashes exactly
// round(frac·n) contiguous points in point order at KillAt.
func TestChurnGenerateKill(t *testing.T) {
	const n = 100
	g := ringGraph(t, n, 2, 24)
	spec := ChurnSpec{KillFrac: 0.3, KillAt: 10, ProbeTimeout: 1,
		GossipInterval: 1, GossipFanout: 1}
	events, err := spec.Generate(g, rng.New(25))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 30 {
		t.Fatalf("kill emitted %d events, want 30", len(events))
	}
	for i, ev := range events {
		if ev.Kind != ChurnCrash || ev.Time != 10 {
			t.Fatalf("event %d = %+v, want a crash at t=10", i, ev)
		}
		if i > 0 {
			next, ok := g.Space().Step(events[i-1].Node, +1)
			if !ok || next != ev.Node {
				t.Fatalf("kill interval not contiguous at %d: %d then %d",
					i, events[i-1].Node, ev.Node)
			}
		}
	}
}

func TestChurnGenerateFlash(t *testing.T) {
	g := ringGraph(t, 64, 2, 26)
	for p := 0; p < 20; p++ {
		g.Fail(metric.Point(p))
	}
	spec := ChurnSpec{FlashJoin: 12, FlashAt: 5, ProbeTimeout: 1,
		GossipInterval: 1, GossipFanout: 1}
	events, err := spec.Generate(g, rng.New(27))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 12 {
		t.Fatalf("flash emitted %d events, want 12", len(events))
	}
	seen := map[metric.Point]bool{}
	for i, ev := range events {
		if ev.Kind != ChurnJoin || ev.Time != 5 {
			t.Fatalf("event %d = %+v, want a join at t=5", i, ev)
		}
		if g.Alive(ev.Node) {
			t.Fatalf("event %d joins node %d, which is alive", i, ev.Node)
		}
		if seen[ev.Node] {
			t.Fatalf("event %d joins node %d twice", i, ev.Node)
		}
		seen[ev.Node] = true
	}
	// A flash bigger than the dead pool clips to the pool.
	spec.FlashJoin = 100
	events, err = spec.Generate(g, rng.New(27))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 20 {
		t.Fatalf("oversized flash emitted %d events, want the dead pool of 20", len(events))
	}
}

func TestAliveViewApply(t *testing.T) {
	g := ringGraph(t, 16, 1, 28)
	g.Fail(3)
	v := NewAliveView(g)
	if v.Count() != 15 {
		t.Fatalf("count = %d, want 15", v.Count())
	}
	if v.Alive(3) || !v.Alive(4) {
		t.Fatal("view does not match graph liveness")
	}
	if v.Apply(ChurnEvent{Kind: ChurnCrash, Node: 3}) {
		t.Error("crashing a dead node must be a no-op")
	}
	if !v.Apply(ChurnEvent{Kind: ChurnJoin, Node: 3}) {
		t.Error("joining a dead node must apply")
	}
	if v.Apply(ChurnEvent{Kind: ChurnJoin, Node: 3}) {
		t.Error("joining an alive node must be a no-op")
	}
	if v.Apply(ChurnEvent{Kind: ChurnCrash, Node: 999}) {
		t.Error("out-of-range node must be a no-op")
	}
	if !v.Apply(ChurnEvent{Kind: ChurnCrash, Node: 5}) {
		t.Error("crashing an alive node must apply")
	}
	if v.Count() != 15 {
		t.Fatalf("count after join+crash = %d, want 15", v.Count())
	}
}

// FuzzChurnSpecValidate is the schedule validator's fuzz target: any
// input must either pass Validate or fail it with an error — never
// panic, in Validate or downstream in Generate. A spec that validates
// must expand into a schedule that replays as valid transitions.
func FuzzChurnSpecValidate(f *testing.F) {
	f.Add(0.5, 100.0, 0.3, 40.0, 8, 60.0, 2.0, 1.0, 2)
	f.Add(math.NaN(), 1.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0)
	f.Add(-1.0, 10.0, 0.0, 0.0, 0, 0.0, 1.0, 1.0, 1)
	f.Add(0.0, 0.0, 1.5, 5.0, 0, 0.0, 1.0, 1.0, 1)
	f.Add(0.0, 0.0, -0.25, 0.0, -3, -1.0, 0.0, 0.0, -2)
	f.Add(1e300, 1e300, 1.0, 0.0, 1<<20, 0.0, 1e-9, 1e-9, 64)
	g := ringGraph(f, 32, 2, 1)
	f.Fuzz(func(t *testing.T, rate, horizon, killFrac, killAt float64,
		flash int, flashAt, probe, interval float64, fanout int) {
		spec := ChurnSpec{
			Rate: rate, Horizon: horizon,
			KillFrac: killFrac, KillAt: killAt,
			FlashJoin: flash, FlashAt: flashAt,
			ProbeTimeout: probe, GossipInterval: interval,
			GossipFanout: fanout,
		}
		if err := spec.Validate(); err != nil {
			return // rejected: the contract is "no panic", satisfied
		}
		if horizon > 1e6 {
			return // valid but enormous Poisson stream; skip expansion
		}
		events, err := spec.Generate(g, rng.New(1))
		if err != nil {
			t.Fatalf("Validate passed but Generate failed: %v", err)
		}
		view := NewAliveView(g)
		last := math.Inf(-1)
		for i, ev := range events {
			if ev.Time < last {
				t.Fatalf("event %d out of order", i)
			}
			last = ev.Time
			if !view.Apply(ev) {
				t.Fatalf("event %d invalid transition", i)
			}
		}
	})
}
