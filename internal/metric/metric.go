// Package metric defines the metric spaces into which the overlay
// embeds resources and nodes (§2 of the paper).
//
// The paper's analysis lives on a one-dimensional space: nodes occupy
// grid points of a real line (Line) or of a circle (Ring, distances
// measured along the circumference, as in Chord). A two-dimensional
// torus (Grid2D) is provided for the Kleinberg small-world baseline.
//
// Points are identified with integers in [0, Size); a Space knows how to
// measure distances and enumerate the points at a given distance, which
// is all the routing and construction layers need.
package metric

import "fmt"

// Point identifies a grid point of a metric space. For one-dimensional
// spaces it is the coordinate itself; Grid2D packs (x, y) as x*side+y.
type Point int

// Space is a finite metric space over points [0, Size).
type Space interface {
	// Size returns the number of grid points.
	Size() int
	// Distance returns the metric distance between two points.
	Distance(a, b Point) int
	// Contains reports whether p is a valid point of the space.
	Contains(p Point) bool
	// Name returns a short identifier used in experiment output.
	Name() string
}

// Line is the paper's primary space: points 0..n-1 on the real line with
// d(a, b) = |a − b|. A line has boundaries, which makes one-sided greedy
// routing natural near them (§4.2.1).
type Line struct {
	n int
}

// NewLine returns a line with n grid points. It returns an error if
// n < 1.
func NewLine(n int) (*Line, error) {
	if n < 1 {
		return nil, fmt.Errorf("metric: line needs n >= 1, got %d", n)
	}
	return &Line{n: n}, nil
}

// Size returns the number of grid points.
func (l *Line) Size() int { return l.n }

// Contains reports whether p lies on the line.
func (l *Line) Contains(p Point) bool { return p >= 0 && int(p) < l.n }

// Distance returns |a − b|.
func (l *Line) Distance(a, b Point) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}

// Name returns "line".
func (l *Line) Name() string { return "line" }

// Ring is the circular variant: n points on a circle with distance
// measured along the shorter arc, as in Chord's identifier circle. The
// ring has no boundary, so two-sided greedy routing is the natural
// model.
type Ring struct {
	n int
}

// NewRing returns a ring with n grid points. It returns an error if
// n < 1.
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("metric: ring needs n >= 1, got %d", n)
	}
	return &Ring{n: n}, nil
}

// Size returns the number of grid points.
func (r *Ring) Size() int { return r.n }

// Contains reports whether p lies on the ring.
func (r *Ring) Contains(p Point) bool { return p >= 0 && int(p) < r.n }

// Distance returns min(|a−b|, n−|a−b|).
func (r *Ring) Distance(a, b Point) int {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	if alt := r.n - d; alt < d {
		return alt
	}
	return d
}

// Name returns "ring".
func (r *Ring) Name() string { return "ring" }

// Add returns the point at offset delta clockwise from p (mod n).
func (r *Ring) Add(p Point, delta int) Point {
	v := (int(p) + delta) % r.n
	if v < 0 {
		v += r.n
	}
	return Point(v)
}

// ClockwiseDistance returns the distance travelling only clockwise from
// a to b (the one-sided distance Chord uses).
func (r *Ring) ClockwiseDistance(a, b Point) int {
	d := (int(b) - int(a)) % r.n
	if d < 0 {
		d += r.n
	}
	return d
}

// Grid2D is a side×side torus with Manhattan (L1) distance; the space of
// Kleinberg's small-world construction, used by the baseline package.
type Grid2D struct {
	side int
}

// NewGrid2D returns a torus with side*side points. It returns an error
// if side < 1.
func NewGrid2D(side int) (*Grid2D, error) {
	if side < 1 {
		return nil, fmt.Errorf("metric: grid needs side >= 1, got %d", side)
	}
	return &Grid2D{side: side}, nil
}

// Size returns side².
func (g *Grid2D) Size() int { return g.side * g.side }

// Side returns the torus side length.
func (g *Grid2D) Side() int { return g.side }

// Contains reports whether p is on the torus.
func (g *Grid2D) Contains(p Point) bool { return p >= 0 && int(p) < g.Size() }

// Coords unpacks p into (x, y).
func (g *Grid2D) Coords(p Point) (x, y int) { return int(p) / g.side, int(p) % g.side }

// PointAt packs (x, y) into a Point, reducing coordinates mod side.
func (g *Grid2D) PointAt(x, y int) Point {
	x %= g.side
	if x < 0 {
		x += g.side
	}
	y %= g.side
	if y < 0 {
		y += g.side
	}
	return Point(x*g.side + y)
}

// Distance returns the L1 torus distance.
func (g *Grid2D) Distance(a, b Point) int {
	ax, ay := g.Coords(a)
	bx, by := g.Coords(b)
	return g.axisDist(ax, bx) + g.axisDist(ay, by)
}

func (g *Grid2D) axisDist(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := g.side - d; alt < d {
		return alt
	}
	return d
}

// Name returns "grid2d".
func (g *Grid2D) Name() string { return "grid2d" }

// Interface compliance checks.
var (
	_ Space = (*Line)(nil)
	_ Space = (*Ring)(nil)
	_ Space = (*Grid2D)(nil)
)
