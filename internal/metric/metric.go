// Package metric defines the metric spaces into which the overlay
// embeds resources and nodes (§2 of the paper), generalized to
// arbitrary dimension (§7's first direction for future work).
//
// The paper's analysis lives on a one-dimensional space: nodes occupy
// grid points of a real line (Line) or of a circle (Ring, distances
// measured along the circumference, as in Chord). Torus lifts the same
// structure to d dimensions: side^d grid points under wrapped L1
// (Manhattan) distance, the space of Kleinberg's small-world
// construction when d = 2.
//
// Points are identified with integers in [0, Size); a Space knows how
// to measure distances, walk the grid (Step/Offset — the short-link
// structure), and sample long-link targets from the inverse power-law
// family (NewLinkSampler), which is everything the graph, routing, and
// construction layers need. All of them are therefore
// dimension-agnostic: the same pipeline builds and routes 1-D rings and
// d-D tori.
package metric

import "fmt"

// Point identifies a grid point of a metric space. For one-dimensional
// spaces it is the coordinate itself; a Torus packs coordinates
// lexicographically (for d=2: x*side+y).
type Point int

// Space is a finite metric space over grid points [0, Size). It is the
// single interface behind which every space — the paper's 1-D line and
// ring, and the d-dimensional torus of §7 — looks identical to the
// graph construction, routing, failure, and simulation layers.
type Space interface {
	// Size returns the number of grid points.
	Size() int
	// Dim returns the dimension d: grid points have up to 2d grid
	// neighbours, one per signed axis direction.
	Dim() int
	// Distance returns the metric distance between two points.
	Distance(a, b Point) int
	// Contains reports whether p is a valid point of the space.
	Contains(p Point) bool
	// Step returns the point one grid step from p along the signed
	// axis direction dir ∈ {±1, …, ±Dim} (+a steps axis a forward, −a
	// backward), and whether such a point exists (a line has
	// boundaries; rings and tori wrap).
	Step(p Point, dir int) (Point, bool)
	// Offset returns the point delta grid steps from p along the
	// signed axis direction dir, and whether it exists. A negative
	// delta reverses the direction.
	Offset(p Point, dir, delta int) (Point, bool)
	// NewLinkSampler returns a sampler drawing long-link targets v ≠ p
	// with Pr[v] ∝ d(p, v)^(−exponent) — the inverse power-law family
	// of §4.3; exponent Dim is the harmonic (routing-optimal) member.
	NewLinkSampler(exponent float64) (LinkSampler, error)
	// Name returns a short identifier used in experiment output.
	Name() string
}

// Line is the paper's primary space: points 0..n-1 on the real line with
// d(a, b) = |a − b|. A line has boundaries, which makes one-sided greedy
// routing natural near them (§4.2.1).
type Line struct {
	n int
}

// NewLine returns a line with n grid points. It returns an error if
// n < 1.
func NewLine(n int) (*Line, error) {
	if n < 1 {
		return nil, fmt.Errorf("metric: line needs n >= 1, got %d", n)
	}
	return &Line{n: n}, nil
}

// Size returns the number of grid points.
func (l *Line) Size() int { return l.n }

// Dim returns 1.
func (l *Line) Dim() int { return 1 }

// Contains reports whether p lies on the line.
func (l *Line) Contains(p Point) bool { return p >= 0 && int(p) < l.n }

// Distance returns |a − b|.
func (l *Line) Distance(a, b Point) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}

// Name returns "line".
func (l *Line) Name() string { return "line" }

// Ring is the circular variant: n points on a circle with distance
// measured along the shorter arc, as in Chord's identifier circle. The
// ring has no boundary, so two-sided greedy routing is the natural
// model.
type Ring struct {
	n int
}

// NewRing returns a ring with n grid points. It returns an error if
// n < 1.
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("metric: ring needs n >= 1, got %d", n)
	}
	return &Ring{n: n}, nil
}

// Size returns the number of grid points.
func (r *Ring) Size() int { return r.n }

// Dim returns 1.
func (r *Ring) Dim() int { return 1 }

// Contains reports whether p lies on the ring.
func (r *Ring) Contains(p Point) bool { return p >= 0 && int(p) < r.n }

// Distance returns min(|a−b|, n−|a−b|).
func (r *Ring) Distance(a, b Point) int {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	if alt := r.n - d; alt < d {
		return alt
	}
	return d
}

// Name returns "ring".
func (r *Ring) Name() string { return "ring" }

// Add returns the point at offset delta clockwise from p (mod n).
func (r *Ring) Add(p Point, delta int) Point {
	v := (int(p) + delta) % r.n
	if v < 0 {
		v += r.n
	}
	return Point(v)
}

// ClockwiseDistance returns the distance travelling only clockwise from
// a to b (the one-sided distance Chord uses).
func (r *Ring) ClockwiseDistance(a, b Point) int {
	d := (int(b) - int(a)) % r.n
	if d < 0 {
		d += r.n
	}
	return d
}

// Interface compliance checks.
var (
	_ Space = (*Line)(nil)
	_ Space = (*Ring)(nil)
	_ Space = (*Torus)(nil)
)
