package metric

import (
	"testing"
	"testing/quick"
)

func TestLineBasics(t *testing.T) {
	if _, err := NewLine(0); err == nil {
		t.Error("NewLine(0) should error")
	}
	l, err := NewLine(10)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 10 || l.Name() != "line" {
		t.Error("line accessors wrong")
	}
	if !l.Contains(0) || !l.Contains(9) || l.Contains(10) || l.Contains(-1) {
		t.Error("Contains wrong")
	}
	if l.Distance(3, 7) != 4 || l.Distance(7, 3) != 4 || l.Distance(5, 5) != 0 {
		t.Error("Distance wrong")
	}
}

func TestRingBasics(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) should error")
	}
	r, err := NewRing(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Distance(0, 9) != 1 {
		t.Errorf("ring d(0,9) = %d, want 1", r.Distance(0, 9))
	}
	if r.Distance(0, 5) != 5 {
		t.Errorf("ring d(0,5) = %d, want 5", r.Distance(0, 5))
	}
	if r.Distance(2, 8) != 4 {
		t.Errorf("ring d(2,8) = %d, want 4", r.Distance(2, 8))
	}
	if r.Name() != "ring" || r.Size() != 10 {
		t.Error("ring accessors wrong")
	}
}

func TestRingAdd(t *testing.T) {
	r, err := NewRing(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Add(8, 3) != 1 {
		t.Errorf("Add(8,3) = %d", r.Add(8, 3))
	}
	if r.Add(2, -5) != 7 {
		t.Errorf("Add(2,-5) = %d", r.Add(2, -5))
	}
	if r.Add(0, -10) != 0 {
		t.Errorf("Add(0,-10) = %d", r.Add(0, -10))
	}
}

func TestRingClockwiseDistance(t *testing.T) {
	r, err := NewRing(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.ClockwiseDistance(8, 2) != 4 {
		t.Errorf("cw(8,2) = %d", r.ClockwiseDistance(8, 2))
	}
	if r.ClockwiseDistance(2, 8) != 6 {
		t.Errorf("cw(2,8) = %d", r.ClockwiseDistance(2, 8))
	}
	if r.ClockwiseDistance(5, 5) != 0 {
		t.Errorf("cw(5,5) = %d", r.ClockwiseDistance(5, 5))
	}
}

// Metric axioms, property-checked for all three spaces.
func TestMetricAxioms(t *testing.T) {
	line, err := NewLine(257)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(257)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewTorus(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	torus3, err := NewTorus(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []Space{line, ring, grid, torus3} {
		sp := sp
		f := func(aa, bb, cc uint16) bool {
			n := sp.Size()
			a := Point(int(aa) % n)
			b := Point(int(bb) % n)
			c := Point(int(cc) % n)
			dab := sp.Distance(a, b)
			dba := sp.Distance(b, a)
			dac := sp.Distance(a, c)
			dcb := sp.Distance(c, b)
			switch {
			case dab != dba: // symmetry
				return false
			case dab < 0: // non-negativity
				return false
			case a == b && dab != 0: // identity
				return false
			case a != b && dab == 0:
				return false
			case dab > dac+dcb: // triangle inequality
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s violates metric axioms: %v", sp.Name(), err)
		}
	}
}

func TestRingDistanceBounded(t *testing.T) {
	r, err := NewRing(100)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aa, bb uint16) bool {
		a := Point(int(aa) % 100)
		b := Point(int(bb) % 100)
		return r.Distance(a, b) <= 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error("ring distance must be at most n/2:", err)
	}
}

func TestTorus2D(t *testing.T) {
	if _, err := NewTorus(0, 2); err == nil {
		t.Error("NewTorus(0, 2) should error")
	}
	if _, err := NewTorus(4, 0); err == nil {
		t.Error("NewTorus(4, 0) should error")
	}
	if _, err := NewTorus(1<<20, 4); err == nil {
		t.Error("oversized torus should error")
	}
	g, err := NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 16 || g.Side() != 4 || g.Dim() != 2 || g.Name() != "torus2d" {
		t.Error("torus accessors wrong")
	}
	p := g.At(1, 2)
	if x, y := g.Coord(p, 0), g.Coord(p, 1); x != 1 || y != 2 {
		t.Errorf("coords round-trip = (%d,%d)", x, y)
	}
	// Wrap-around distances on the torus.
	if d := g.Distance(g.At(0, 0), g.At(3, 3)); d != 2 {
		t.Errorf("torus d((0,0),(3,3)) = %d, want 2", d)
	}
	if d := g.Distance(g.At(0, 0), g.At(2, 2)); d != 4 {
		t.Errorf("torus d((0,0),(2,2)) = %d, want 4", d)
	}
	if g.At(-1, -1) != g.At(3, 3) {
		t.Error("At must reduce negative coords")
	}
}

func TestTorusStepOffset(t *testing.T) {
	g, err := NewTorus(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := g.At(0, 0, 0)
	for dir := 1; dir <= 3; dir++ {
		fwd, ok := g.Step(p, dir)
		if !ok || g.Distance(p, fwd) != 1 {
			t.Errorf("Step(+%d) not adjacent", dir)
		}
		back, ok := g.Step(fwd, -dir)
		if !ok || back != p {
			t.Errorf("Step(-%d) did not invert Step(+%d)", dir, dir)
		}
	}
	if _, ok := g.Step(p, 4); ok {
		t.Error("axis 4 of a 3-D torus must not exist")
	}
	if _, ok := g.Step(p, 0); ok {
		t.Error("direction 0 must not exist")
	}
	// Offsets wrap: 5 steps along any axis return home.
	for dir := 1; dir <= 3; dir++ {
		q, ok := g.Offset(p, dir, 5)
		if !ok || q != p {
			t.Errorf("Offset(+%d, 5) should wrap home, got %d", dir, q)
		}
	}
	if q, _ := g.Offset(p, -2, 2); q != g.At(0, 3, 0) {
		t.Errorf("Offset(-2, 2) = %d, want %d", q, g.At(0, 3, 0))
	}
	// Coords slice agrees with Coord.
	c := g.Coords(g.At(1, 2, 3))
	if len(c) != 3 || c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Errorf("Coords = %v", c)
	}
}

func TestTorusDim1MatchesRing(t *testing.T) {
	tor, err := NewTorus(17, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(17)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aa, bb uint16) bool {
		a, b := Point(int(aa)%17), Point(int(bb)%17)
		return tor.Distance(a, b) == ring.Distance(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineVsRingRelation(t *testing.T) {
	// Ring distance never exceeds line distance on identical coordinates.
	l, err := NewLine(64)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aa, bb uint16) bool {
		a := Point(int(aa) % 64)
		b := Point(int(bb) % 64)
		return r.Distance(a, b) <= l.Distance(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
