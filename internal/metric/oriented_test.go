package metric

import (
	"testing"
	"testing/quick"
)

func TestLineStep(t *testing.T) {
	l, err := NewLine(5)
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := l.Step(2, 1); !ok || q != 3 {
		t.Errorf("Step(2,+1) = %v,%v", q, ok)
	}
	if q, ok := l.Step(2, -1); !ok || q != 1 {
		t.Errorf("Step(2,-1) = %v,%v", q, ok)
	}
	if _, ok := l.Step(4, 1); ok {
		t.Error("stepping off the right boundary should fail")
	}
	if _, ok := l.Step(0, -1); ok {
		t.Error("stepping off the left boundary should fail")
	}
}

func TestRingStepWraps(t *testing.T) {
	r, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := r.Step(4, 1); !ok || q != 0 {
		t.Errorf("Step(4,+1) = %v,%v", q, ok)
	}
	if q, ok := r.Step(0, -1); !ok || q != 4 {
		t.Errorf("Step(0,-1) = %v,%v", q, ok)
	}
}

func TestLineBetween(t *testing.T) {
	l, err := NewLine(10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p, q, t Point
		want    bool
	}{
		{7, 5, 2, true},  // moving left toward 2
		{7, 2, 2, true},  // landing on target
		{7, 1, 2, false}, // overshoot
		{7, 8, 2, false}, // wrong direction
		{7, 7, 2, false}, // staying put
		{2, 5, 7, true},  // moving right
		{2, 7, 7, true},  // landing on target
		{2, 8, 7, false}, // overshoot right
		{2, 1, 7, false}, // wrong direction
		{5, 5, 5, false}, // degenerate
	}
	for _, c := range cases {
		if got := l.Between(c.p, c.q, c.t); got != c.want {
			t.Errorf("line Between(%d,%d,%d) = %v, want %v", c.p, c.q, c.t, got, c.want)
		}
	}
}

func TestRingBetween(t *testing.T) {
	r, err := NewRing(10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p, q, t Point
		want    bool
	}{
		{8, 9, 2, true}, // clockwise through the wrap
		{8, 0, 2, true},
		{8, 2, 2, true},  // landing on target
		{8, 3, 2, false}, // overshoot
		{8, 7, 2, false}, // counter-clockwise
		{8, 8, 2, false}, // staying put
	}
	for _, c := range cases {
		if got := r.Between(c.p, c.q, c.t); got != c.want {
			t.Errorf("ring Between(%d,%d,%d) = %v, want %v", c.p, c.q, c.t, got, c.want)
		}
	}
}

// One-sided progress property: if Between(p,q,t) holds, then q is
// strictly closer to t than p is (in the one-sided sense) — on the line
// via |·|, on the ring via clockwise distance.
func TestBetweenImpliesProgressLine(t *testing.T) {
	l, err := NewLine(64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pp, qq, tt uint16) bool {
		p, q, tp := Point(pp%64), Point(qq%64), Point(tt%64)
		if !l.Between(p, q, tp) {
			return true
		}
		return l.Distance(q, tp) < l.Distance(p, tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetweenImpliesProgressRing(t *testing.T) {
	r, err := NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pp, qq, tt uint16) bool {
		p, q, tp := Point(pp%64), Point(qq%64), Point(tt%64)
		if !r.Between(p, q, tp) {
			return true
		}
		return r.ClockwiseDistance(q, tp) < r.ClockwiseDistance(p, tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepAdjacent(t *testing.T) {
	r, err := NewRing(97)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLine(97)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []Space1D{r, l} {
		f := func(pp uint16, dd bool) bool {
			p := Point(pp % 97)
			dir := 1
			if dd {
				dir = -1
			}
			q, ok := sp.Step(p, dir)
			if !ok {
				return true
			}
			return sp.Distance(p, q) == 1
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", sp.Name(), err)
		}
	}
}
