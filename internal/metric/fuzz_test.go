package metric

import "testing"

// FuzzTorusStepOffset: for every reachable torus geometry, Offset must
// round-trip (delta forward then delta backward lands home), Step must
// agree with Offset-by-1, invalid axes must be rejected, and the
// distance of a single-axis move must equal the wrapped per-axis
// distance exactly. These are the grid-walk contracts the routing and
// construction layers lean on at every hop.
func FuzzTorusStepOffset(f *testing.F) {
	f.Add(8, 2, 5, 1, 3)
	f.Add(32, 1, 0, -1, 100)
	f.Add(5, 3, 124, 3, -7)
	f.Add(1, 1, 0, 1, 1)
	f.Add(16, 2, 255, -2, 0)
	f.Add(4, 4, 17, 5, 2) // axis out of range
	f.Fuzz(func(t *testing.T, side, dim, point, dir, delta int) {
		// Clamp the geometry to the practical range (NewTorus rejects
		// the rest anyway) and the walk length to avoid signed-overflow
		// territory that says nothing about the torus.
		side = 1 + abs(side)%128
		dim = 1 + abs(dim)%4
		delta %= 1 << 20
		tor, err := NewTorus(side, dim)
		if err != nil {
			t.Skip()
		}
		p := Point(abs(point) % tor.Size())
		if !tor.Contains(p) {
			t.Fatalf("clamped point %d outside torus of size %d", p, tor.Size())
		}

		q, ok := tor.Offset(p, dir, delta)
		axis := abs(dir)
		if axis < 1 || axis > dim {
			if ok {
				t.Fatalf("Offset accepted invalid axis %d on dim %d", dir, dim)
			}
			return
		}
		if !ok {
			t.Fatalf("Offset(%d, %d, %d) failed on a wrapping torus", p, dir, delta)
		}
		if !tor.Contains(q) {
			t.Fatalf("Offset(%d, %d, %d) left the space: %d", p, dir, delta, q)
		}
		back, ok := tor.Offset(q, dir, -delta)
		if !ok || back != p {
			t.Fatalf("Offset round-trip %d -> %d -> %d (ok=%v)", p, q, back, ok)
		}

		// A single-axis move of delta steps sits at exactly the wrapped
		// axis distance, and distance is symmetric.
		want := abs(delta) % side
		if alt := side - want; alt < want {
			want = alt
		}
		if d := tor.Distance(p, q); d != want {
			t.Fatalf("Distance(%d, %d) = %d after %d steps on side %d, want %d", p, q, d, delta, side, want)
		}
		if tor.Distance(p, q) != tor.Distance(q, p) {
			t.Fatalf("Distance not symmetric between %d and %d", p, q)
		}

		// Step is Offset by one, and reverses with the opposite dir.
		s, ok := tor.Step(p, dir)
		if !ok {
			t.Fatalf("Step(%d, %d) failed on a wrapping torus", p, dir)
		}
		if o, _ := tor.Offset(p, dir, 1); o != s {
			t.Fatalf("Step(%d, %d) = %d but Offset-by-1 = %d", p, dir, s, o)
		}
		backStep, ok := tor.Step(s, -dir)
		if !ok || backStep != p {
			t.Fatalf("Step round-trip %d -> %d -> %d (ok=%v)", p, s, backStep, ok)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Avoid the lone overflowing negation.
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}
