package metric

import (
	"fmt"
	"math"
)

// Torus is a d-dimensional torus: side^d grid points under wrapped L1
// (Manhattan) distance. For d = 2 it is the space of Kleinberg's
// small-world construction; for d = 1 it coincides with Ring. Every
// point has 2d grid neighbours, so the short-link structure of the
// paper generalizes directly.
//
// Coordinates pack lexicographically: p = Σ_i c_i · side^(d−1−i), so a
// 2-D point is x*side + y, matching the historical Grid2D layout.
type Torus struct {
	side, dim int
	size      int
	stride    []int // stride[i] = side^(dim-1-i)
}

// NewTorus returns a torus with the given side length and dimension.
// It returns an error if side < 1, dim < 1, or side^dim overflows a
// practical point range.
func NewTorus(side, dim int) (*Torus, error) {
	if side < 1 {
		return nil, fmt.Errorf("metric: torus needs side >= 1, got %d", side)
	}
	if dim < 1 {
		return nil, fmt.Errorf("metric: torus needs dim >= 1, got %d", dim)
	}
	size := 1
	stride := make([]int, dim)
	for i := dim - 1; i >= 0; i-- {
		stride[i] = size
		if size > math.MaxInt32/side {
			return nil, fmt.Errorf("metric: torus side=%d dim=%d exceeds the point range", side, dim)
		}
		size *= side
	}
	return &Torus{side: side, dim: dim, size: size, stride: stride}, nil
}

// Size returns side^dim.
func (t *Torus) Size() int { return t.size }

// Side returns the torus side length.
func (t *Torus) Side() int { return t.side }

// Dim returns the dimension.
func (t *Torus) Dim() int { return t.dim }

// Contains reports whether p is on the torus.
func (t *Torus) Contains(p Point) bool { return p >= 0 && int(p) < t.size }

// Coord returns p's coordinate along the given axis in [0, Dim).
func (t *Torus) Coord(p Point, axis int) int {
	return (int(p) / t.stride[axis]) % t.side
}

// Coords unpacks p into its Dim coordinates.
func (t *Torus) Coords(p Point) []int {
	c := make([]int, t.dim)
	for i := range c {
		c[i] = t.Coord(p, i)
	}
	return c
}

// At packs coordinates into a Point, reducing each modulo side. It
// panics if len(coords) != Dim.
func (t *Torus) At(coords ...int) Point {
	if len(coords) != t.dim {
		panic(fmt.Sprintf("metric: Torus.At got %d coords for dim %d", len(coords), t.dim))
	}
	v := 0
	for i, c := range coords {
		c %= t.side
		if c < 0 {
			c += t.side
		}
		v += c * t.stride[i]
	}
	return Point(v)
}

// Distance returns the wrapped L1 distance.
func (t *Torus) Distance(a, b Point) int {
	d := 0
	for axis := 0; axis < t.dim; axis++ {
		d += t.axisDist(t.Coord(a, axis), t.Coord(b, axis))
	}
	return d
}

// axisDist returns the wrapped distance of two coordinates on one axis.
func (t *Torus) axisDist(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := t.side - d; alt < d {
		return alt
	}
	return d
}

// offsetAxis returns the point reached from p by moving delta steps
// (wrapping) along the given axis index.
func (t *Torus) offsetAxis(p Point, axis, delta int) Point {
	c := t.Coord(p, axis)
	nc := (c + delta) % t.side
	if nc < 0 {
		nc += t.side
	}
	return p + Point((nc-c)*t.stride[axis])
}

// Step returns the point one grid step along signed axis direction
// dir ∈ {±1, …, ±Dim}; tori wrap, so it succeeds for every valid dir.
func (t *Torus) Step(p Point, dir int) (Point, bool) {
	return t.Offset(p, dir, 1)
}

// Offset returns the point delta steps along signed axis direction dir.
func (t *Torus) Offset(p Point, dir, delta int) (Point, bool) {
	axis := dir
	if axis < 0 {
		axis = -axis
	}
	if axis < 1 || axis > t.dim {
		return 0, false
	}
	if dir < 0 {
		delta = -delta
	}
	return t.offsetAxis(p, axis-1, delta), true
}

// Name returns "torus<d>d", e.g. "torus2d".
func (t *Torus) Name() string { return fmt.Sprintf("torus%dd", t.dim) }

// axisCount returns how many residues on one axis lie at wrapped
// distance k from a fixed coordinate: 1 at distance 0, 2 for
// 0 < k < side/2, and 1 at the antipode when side is even.
func (t *Torus) axisCount(k int) int {
	switch {
	case k == 0:
		return 1
	case 2*k < t.side:
		return 2
	case 2*k == t.side:
		return 1
	default:
		return 0
	}
}
