package metric

// Oriented is implemented by spaces with a global linear orientation —
// the 1-D line and ring. Between supplies the orientation test
// one-sided greedy routing needs (§4.2.1: a one-sided router never
// traverses a link that would take it past its target), and
// ForwardDistance is the one-directional distance the one-sided greedy
// rule minimizes (clockwise arc length on a ring, as in Chord; plain
// distance on a line, where Between already constrains the direction).
// Higher-dimensional tori have no such orientation and do not implement
// this interface, so one-sided routing is a 1-D-only policy.
type Oriented interface {
	Space
	// Between reports whether q lies on the segment travelled when
	// routing from p toward t without passing t — excluding p itself,
	// including t. One-sided greedy routing restricts its candidate
	// next hops to points with Between(p, q, t) == true.
	Between(p, q, t Point) bool
	// ForwardDistance returns the one-directional distance from a to b.
	ForwardDistance(a, b Point) int
}

// Space1D is the historical name for the oriented one-dimensional
// interface.
//
// Deprecated: use Oriented (or plain Space — every grid operation the
// old Space1D carried now lives there).
type Space1D = Oriented

// Step on a line fails at the boundaries. Only the single axis ±1 is
// valid.
func (l *Line) Step(p Point, dir int) (Point, bool) {
	return l.Offset(p, dir, 1)
}

// Offset on a line moves delta steps along ±1, failing when the result
// leaves the line.
func (l *Line) Offset(p Point, dir, delta int) (Point, bool) {
	if dir != 1 && dir != -1 {
		return 0, false
	}
	q := Point(int(p) + dir*delta)
	if !l.Contains(q) {
		return 0, false
	}
	return q, true
}

// Between on a line: q strictly between p and t, or equal to t.
func (l *Line) Between(p, q, t Point) bool {
	if q == p {
		return false
	}
	if p <= t {
		return p < q && q <= t
	}
	return t <= q && q < p
}

// ForwardDistance on a line is the plain distance: Between already
// restricts one-sided candidates to the target's side.
func (l *Line) ForwardDistance(a, b Point) int { return l.Distance(a, b) }

// Step on a ring always succeeds, wrapping modulo n. Only the single
// axis ±1 is valid.
func (r *Ring) Step(p Point, dir int) (Point, bool) {
	return r.Offset(p, dir, 1)
}

// Offset on a ring wraps modulo n.
func (r *Ring) Offset(p Point, dir, delta int) (Point, bool) {
	if dir != 1 && dir != -1 {
		return 0, false
	}
	return r.Add(p, dir*delta), true
}

// Between on a ring: one-sided routing travels only clockwise (as in
// Chord); q qualifies when it lies strictly inside the clockwise arc
// from p to t, or equals t.
func (r *Ring) Between(p, q, t Point) bool {
	if q == p {
		return false
	}
	return r.ClockwiseDistance(p, q) <= r.ClockwiseDistance(p, t)
}

// ForwardDistance on a ring is the clockwise arc length.
func (r *Ring) ForwardDistance(a, b Point) int { return r.ClockwiseDistance(a, b) }

var (
	_ Oriented = (*Line)(nil)
	_ Oriented = (*Ring)(nil)
)
