package metric

// Space1D is a one-dimensional space (Line or Ring) that supports the
// short-link structure of the paper: every node is connected to its
// immediate neighbour on either side. Step exposes that structure, and
// Between supplies the orientation test one-sided greedy routing needs
// (§4.2.1: a one-sided router never traverses a link that would take it
// past its target).
type Space1D interface {
	Space
	// Step returns the point one grid step from p in direction dir
	// (+1 or −1) and whether such a point exists (a line has
	// boundaries; a ring does not).
	Step(p Point, dir int) (Point, bool)
	// Between reports whether q lies on the segment travelled when
	// routing from p toward t without passing t — excluding p itself,
	// including t. One-sided greedy routing restricts its candidate
	// next hops to points with Between(p, q, t) == true.
	Between(p, q, t Point) bool
}

// Step on a line fails at the boundaries.
func (l *Line) Step(p Point, dir int) (Point, bool) {
	q := Point(int(p) + sign(dir))
	if !l.Contains(q) {
		return 0, false
	}
	return q, true
}

// Between on a line: q strictly between p and t, or equal to t.
func (l *Line) Between(p, q, t Point) bool {
	if q == p {
		return false
	}
	if p <= t {
		return p < q && q <= t
	}
	return t <= q && q < p
}

// Step on a ring always succeeds, wrapping modulo n.
func (r *Ring) Step(p Point, dir int) (Point, bool) {
	return r.Add(p, sign(dir)), true
}

// Between on a ring: one-sided routing travels only clockwise (as in
// Chord); q qualifies when it lies strictly inside the clockwise arc
// from p to t, or equals t.
func (r *Ring) Between(p, q, t Point) bool {
	if q == p {
		return false
	}
	return r.ClockwiseDistance(p, q) <= r.ClockwiseDistance(p, t)
}

func sign(d int) int {
	if d < 0 {
		return -1
	}
	return 1
}

var (
	_ Space1D = (*Line)(nil)
	_ Space1D = (*Ring)(nil)
)
