package metric

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// samplerSpaces returns one space of each kind at small size.
func samplerSpaces(t *testing.T) []Space {
	t.Helper()
	ring, err := NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	line, err := NewLine(64)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := NewTorus(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	torus3, err := NewTorus(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []Space{ring, line, torus, torus3}
}

func TestLinkSamplerNeverSelf(t *testing.T) {
	for _, sp := range samplerSpaces(t) {
		for _, exp := range []float64{0, 1, 2, 1.5} {
			s, err := sp.NewLinkSampler(exp)
			if err != nil {
				t.Fatalf("%s exp %v: %v", sp.Name(), exp, err)
			}
			src := rng.New(1)
			for i := 0; i < 2000; i++ {
				p := Point(src.Intn(sp.Size()))
				q, ok := s.Sample(p, src)
				if !ok {
					t.Fatalf("%s exp %v: sampler gave up", sp.Name(), exp)
				}
				if q == p {
					t.Fatalf("%s exp %v: sampled self-link", sp.Name(), exp)
				}
				if !sp.Contains(q) {
					t.Fatalf("%s exp %v: sampled %d outside the space", sp.Name(), exp, q)
				}
			}
		}
	}
}

// The torus sampler's distance marginal must match shell(r)·r^(−e)
// exactly (up to Monte Carlo noise), and targets must be uniform within
// a shell.
func TestTorusSamplerMarginal(t *testing.T) {
	torus, err := NewTorus(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	const exponent = 2
	s, err := torus.NewLinkSampler(exponent)
	if err != nil {
		t.Fatal(err)
	}
	// Exact shell sizes for side=8, dim=2: per-axis counts are
	// 1,2,2,2,1 for distances 0..4.
	shell := map[int]float64{}
	axis := []float64{1, 2, 2, 2, 1}
	for a := 0; a <= 4; a++ {
		for b := 0; b <= 4; b++ {
			shell[a+b] += axis[a] * axis[b]
		}
	}
	var want []float64
	var total float64
	maxD := 8
	for r := 1; r <= maxD; r++ {
		w := shell[r] / float64(r*r)
		want = append(want, w)
		total += w
	}
	const n = 200000
	src := rng.New(99)
	counts := make([]int, maxD+1)
	perPoint := map[Point]int{}
	p := torus.At(3, 5)
	for i := 0; i < n; i++ {
		q, ok := s.Sample(p, src)
		if !ok {
			t.Fatal("sampler gave up")
		}
		d := torus.Distance(p, q)
		if d < 1 || d > maxD {
			t.Fatalf("sampled distance %d outside [1,%d]", d, maxD)
		}
		counts[d]++
		if d == 3 {
			perPoint[q]++
		}
	}
	for r := 1; r <= maxD; r++ {
		got := float64(counts[r]) / n
		exp := want[r-1] / total
		if math.Abs(got-exp) > 0.01 {
			t.Errorf("P(distance=%d) = %.4f, want %.4f", r, got, exp)
		}
	}
	// Uniformity within the distance-3 shell (12 points for side 8).
	if len(perPoint) != int(shell[3]) {
		t.Errorf("distance-3 shell hit %d distinct points, want %v", len(perPoint), shell[3])
	}
	shellTotal := 0
	for _, c := range perPoint {
		shellTotal += c
	}
	for q, c := range perPoint {
		got := float64(c) / float64(shellTotal)
		exp := 1 / shell[3]
		if math.Abs(got-exp) > 0.02 {
			t.Errorf("point %d within shell 3: frequency %.4f, want %.4f", q, got, exp)
		}
	}
}

// Exponent 0 must be uniform over all points ≠ p on the torus.
func TestTorusSamplerUniform(t *testing.T) {
	torus, err := NewTorus(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := torus.NewLinkSampler(0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 120000
	src := rng.New(3)
	counts := map[Point]int{}
	for i := 0; i < n; i++ {
		q, ok := s.Sample(0, src)
		if !ok {
			t.Fatal("sampler gave up")
		}
		counts[q]++
	}
	if len(counts) != torus.Size()-1 {
		t.Fatalf("uniform sampler hit %d points, want %d", len(counts), torus.Size()-1)
	}
	for q, c := range counts {
		got := float64(c) / n
		exp := 1 / float64(torus.Size()-1)
		if math.Abs(got-exp) > 0.01 {
			t.Errorf("P(%d) = %.4f, want %.4f", q, got, exp)
		}
	}
}

func TestDegenerateSamplers(t *testing.T) {
	one, err := NewRing(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := one.NewLinkSampler(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sample(0, rng.New(1)); ok {
		t.Error("singleton ring must have no targets")
	}
	t1, err := NewTorus(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := t1.NewLinkSampler(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Sample(0, rng.New(1)); ok {
		t.Error("singleton torus must have no targets")
	}
}
