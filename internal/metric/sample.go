package metric

import (
	"math"
	"sort"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// LinkSampler draws long-distance link targets around a point from the
// inverse power law Pr[v] ∝ d(p, v)^(−exponent), normalized over all
// points v ≠ p of the space (§4.3: "each long-distance neighbor v is
// chosen with probability inversely proportional to the distance
// between u and v", generalized to arbitrary exponent and dimension).
// Samplers are immutable and safe for concurrent use with per-goroutine
// rng sources.
type LinkSampler interface {
	// Sample draws one target. ok is false when the space has no
	// admissible target for p (e.g. it has no other point).
	Sample(p Point, src *rng.Source) (Point, bool)
}

// ringSampler draws targets on a ring: a distance in [1, ⌊(n−1)/2⌋]
// from the configured power law, then a uniform side. By symmetry each
// side carries equal mass; the (even-n) antipodal point is reachable
// from either side, which double counts a single O(1/n) mass —
// negligible and unbiased.
type ringSampler struct {
	r        *Ring
	exponent float64
	table    *rng.PowerLawSampler // nil for the analytic exponents 0 and 1
}

// NewLinkSampler returns the ring's target sampler. Exponents 0
// (uniform) and 1 (the paper's harmonic distribution) sample
// analytically; other exponents precompute a CDF table.
func (r *Ring) NewLinkSampler(exponent float64) (LinkSampler, error) {
	s := &ringSampler{r: r, exponent: exponent}
	if exponent != 0 && exponent != 1 {
		maxD := (r.n - 1) / 2
		if maxD < 1 {
			maxD = 1
		}
		table, err := rng.NewPowerLawSampler(maxD, exponent)
		if err != nil {
			return nil, err
		}
		s.table = table
	}
	return s, nil
}

func (s *ringSampler) Sample(p Point, src *rng.Source) (Point, bool) {
	n := s.r.n
	if n < 2 {
		return 0, false
	}
	maxD := (n - 1) / 2
	if maxD < 1 {
		maxD = 1
	}
	d := sampleDistance(src, maxD, s.exponent, s.table)
	dir := 1
	if src.Bool(0.5) {
		dir = -1
	}
	return s.r.Add(p, dir*d), true
}

// lineSampler draws targets on a line: the left side offers distances
// 1..p, the right side 1..n−1−p. It chooses the side in proportion to
// its total mass, then the distance within the side, so boundary nodes
// are handled exactly.
type lineSampler struct {
	l        *Line
	exponent float64
	table    *rng.PowerLawSampler // nil for the analytic exponents 0 and 1
}

// NewLinkSampler returns the line's target sampler.
func (l *Line) NewLinkSampler(exponent float64) (LinkSampler, error) {
	s := &lineSampler{l: l, exponent: exponent}
	if exponent != 0 && exponent != 1 {
		maxD := l.n - 1
		if maxD < 1 {
			maxD = 1
		}
		table, err := rng.NewPowerLawSampler(maxD, exponent)
		if err != nil {
			return nil, err
		}
		s.table = table
	}
	return s, nil
}

func (s *lineSampler) Sample(p Point, src *rng.Source) (Point, bool) {
	n := s.l.n
	if n < 2 {
		return 0, false
	}
	left := int(p)
	right := n - 1 - int(p)
	if left == 0 && right == 0 {
		return 0, false
	}
	lMass := sideMass(left, s.exponent, s.table)
	rMass := sideMass(right, s.exponent, s.table)
	goLeft := src.Float64()*(lMass+rMass) < lMass
	if goLeft && left > 0 {
		return p - Point(sampleDistance(src, left, s.exponent, s.table)), true
	}
	if right > 0 {
		return p + Point(sampleDistance(src, right, s.exponent, s.table)), true
	}
	return p - Point(sampleDistance(src, left, s.exponent, s.table)), true
}

// sideMass returns the unnormalized probability mass of distances
// 1..max under the configured exponent.
func sideMass(max int, exponent float64, table *rng.PowerLawSampler) float64 {
	if max <= 0 {
		return 0
	}
	if exponent == 1 || table == nil && exponent == 0 {
		if exponent == 1 {
			return mathx.Harmonic(max)
		}
		return float64(max)
	}
	// General exponent: use the table's CDF by rescaling. The table is
	// normalized over [1, table.Max()]; relative masses are what we
	// need, so cumulative probability up to max is proportional.
	var m float64
	if table != nil {
		for d := 1; d <= max && d <= table.Max(); d++ {
			m += table.Prob(d)
		}
	}
	return m
}

// sampleDistance draws a link length in [1, max].
func sampleDistance(src *rng.Source, max int, exponent float64, table *rng.PowerLawSampler) int {
	switch {
	case exponent == 1:
		return rng.SampleHarmonic(src, max)
	case exponent == 0:
		return src.Intn(max) + 1
	default:
		for i := 0; i < 64; i++ {
			if d := table.Sample(src); d <= max {
				return d
			}
		}
		return src.Intn(max) + 1
	}
}

// torusSampler draws targets on a d-dimensional torus. The distance
// marginal is Pr[r] ∝ shell(r)·r^(−exponent), where shell(r) is the
// exact number of grid points on the wrapped-L1 sphere of radius r
// (computed by convolving the per-axis distance distribution); the
// target is then uniform on that shell, decomposed axis by axis from
// the same convolution tables. Both steps are exact — no rejection, no
// shell-size approximation.
type torusSampler struct {
	t *Torus
	// ways[j][s] counts the coordinate tuples of axes j..dim-1 whose
	// wrapped distances sum to s; ways[0] is the shell-size vector.
	ways [][]float64
	cdf  []float64 // cdf[i] = P(distance <= i+1); empty when no target exists
}

// NewLinkSampler returns the torus's target sampler. The harmonic
// (routing-optimal) exponent of a d-dimensional torus is d, after
// Kleinberg's d-dimensional small-world theorem.
func (t *Torus) NewLinkSampler(exponent float64) (LinkSampler, error) {
	axisMax := t.side / 2
	maxD := t.dim * axisMax
	ways := make([][]float64, t.dim+1)
	ways[t.dim] = []float64{1}
	for j := t.dim - 1; j >= 0; j-- {
		row := make([]float64, (t.dim-j)*axisMax+1)
		for k := 0; k <= axisMax; k++ {
			c := t.axisCount(k)
			if c == 0 {
				continue
			}
			for s, w := range ways[j+1] {
				row[s+k] += float64(c) * w
			}
		}
		ways[j] = row
	}
	var cdf []float64
	var total float64
	if maxD >= 1 {
		cdf = make([]float64, maxD)
		for r := 1; r <= maxD; r++ {
			total += ways[0][r] * powNeg(float64(r), exponent)
			cdf[r-1] = total
		}
		for i := range cdf {
			cdf[i] /= total
		}
	}
	if total <= 0 {
		cdf = nil
	}
	return &torusSampler{t: t, ways: ways, cdf: cdf}, nil
}

func (s *torusSampler) Sample(p Point, src *rng.Source) (Point, bool) {
	if len(s.cdf) == 0 {
		return 0, false
	}
	u := src.Float64()
	i := sort.SearchFloat64s(s.cdf, u)
	if i >= len(s.cdf) {
		i = len(s.cdf) - 1
	}
	r := i + 1
	// Decompose r into per-axis wrapped distances, uniformly over the
	// shell: axis by axis, distance k is chosen with probability
	// axisCount(k)·ways[axis+1][r−k] / ways[axis][r], then the sign is
	// uniform over the residues realizing k.
	t := s.t
	axisMax := t.side / 2
	q := p
	rem := r
	for axis := 0; axis < t.dim; axis++ {
		rest := s.ways[axis+1]
		w := src.Float64() * s.ways[axis][rem]
		k, chosen := 0, false
		maxK := axisMax
		if rem < maxK {
			maxK = rem
		}
		for cand := 0; cand <= maxK; cand++ {
			c := t.axisCount(cand)
			if c == 0 || rem-cand >= len(rest) {
				continue
			}
			mass := float64(c) * rest[rem-cand]
			if w < mass {
				k, chosen = cand, true
				break
			}
			w -= mass
		}
		if !chosen {
			// Float drift: fall back to the largest feasible distance.
			for cand := maxK; cand >= 0; cand-- {
				if t.axisCount(cand) > 0 && rem-cand < len(rest) && rest[rem-cand] > 0 {
					k = cand
					break
				}
			}
		}
		delta := k
		if k > 0 && t.axisCount(k) == 2 && src.Bool(0.5) {
			delta = -k
		}
		q = t.offsetAxis(q, axis, delta)
		rem -= k
	}
	if q == p {
		return 0, false
	}
	return q, true
}

// powNeg returns x^(−e), special-casing the common exponents so table
// construction avoids math.Pow in the usual cases.
func powNeg(x, e float64) float64 {
	switch e {
	case 0:
		return 1
	case 1:
		return 1 / x
	case 2:
		return 1 / (x * x)
	}
	return math.Pow(x, -e)
}
