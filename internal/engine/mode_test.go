package engine

import (
	"math"
	"testing"

	"repro/internal/metric"
	"repro/internal/replica"
)

// TestModeStrings pins the mode and plan names: they appear verbatim
// in load.Result, the ftrsim banner, and the ftrbench headline.
func TestModeStrings(t *testing.T) {
	modes := map[Mode]string{
		ModeSnapshot:      "snapshot",
		ModeLive:          "live",
		ModeLiveAggregate: "live+aggregate",
		ModeLivePIT:       "live+pit",
	}
	for m, want := range modes {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", uint8(m), got, want)
		}
	}
	plans := map[ExecutionPlan]string{
		PlanSnapshot:       "snapshot",
		PlanLiveSequential: "live-sequential",
		PlanLiveSharded:    "live-sharded",
	}
	for p, want := range plans {
		if got := p.String(); got != want {
			t.Errorf("ExecutionPlan(%d).String() = %q, want %q", uint8(p), got, want)
		}
	}
}

// TestModePredicates pins the predicate lattice the loops dispatch on.
func TestModePredicates(t *testing.T) {
	cases := []struct {
		mode                 Mode
		live, aggregate, pit bool
	}{
		{ModeSnapshot, false, false, false},
		{ModeLive, true, false, false},
		{ModeLiveAggregate, true, true, false},
		{ModeLivePIT, true, false, true},
	}
	for _, tc := range cases {
		if tc.mode.Live() != tc.live || tc.mode.Aggregate() != tc.aggregate || tc.mode.PIT() != tc.pit {
			t.Errorf("%v: Live=%v Aggregate=%v PIT=%v, want %v/%v/%v",
				tc.mode, tc.mode.Live(), tc.mode.Aggregate(), tc.mode.PIT(),
				tc.live, tc.aggregate, tc.pit)
		}
	}
}

// TestConfigPlanReasons pins every (config, schedule) → (plan, reason)
// resolution: the reasons are API surface — ftrsim prints them and
// ftrbench records them — so their wording is part of the contract.
func TestConfigPlanReasons(t *testing.T) {
	open := Schedule{Initial: []Injection{{Msg: 0, Time: 0}}}
	closed := Schedule{
		Initial:   open.Initial,
		Completed: func(msg int, at float64) (Injection, bool) { return Injection{}, false },
	}
	congested := func() Config {
		cfg := baseConfig()
		cfg.Mode = ModeLive
		cfg.Shards = 4
		cfg.Penalty = 2
		return cfg
	}
	sharded := func(m Mode) Config {
		cfg := baseConfig()
		cfg.Mode = m
		cfg.Shards = 4
		if m.PIT() {
			cfg.PITTimeout = 64
			cfg.PITWaiters = 16
		}
		return cfg
	}
	single := sharded(ModeLive)
	single.Shards = 1
	depth := sharded(ModeLive)
	depth.DepthPenalty = 1
	routed := sharded(ModeLive)
	routed.Route.Congestion = func(q metric.Point) float64 { return 0 }
	g := testGraph(t, 64, 6, 3, 0)
	cached := sharded(ModeLive)
	p, err := replica.NewPlacement(g.Space(), replica.Options{K: 4, CacheThreshold: 16, CacheCopies: 8}, 77)
	if err != nil {
		t.Fatal(err)
	}
	cached.Placement = p
	churned := sharded(ModeLive)
	churned.Churn = churnKnobs() // ProbeTimeout 2 ≥ 1/Capacity: eligible
	fastProbe := sharded(ModeLive)
	fastProbe.Churn = churnKnobs()
	fastProbe.Churn.ProbeTimeout = 0.25 // under the service time: fallback
	cases := []struct {
		name   string
		cfg    Config
		sched  Schedule
		plan   ExecutionPlan
		reason string
	}{
		{"snapshot", baseConfig(), open, PlanSnapshot, PlanReasonSnapshot},
		{"single-shard", single, open, PlanLiveSequential, PlanReasonSingleShard},
		{"penalty", congested(), open, PlanLiveSequential, PlanReasonCongestion},
		{"depth-penalty", depth, open, PlanLiveSequential, PlanReasonCongestion},
		{"route-congestion", routed, open, PlanLiveSequential, PlanReasonCongestion},
		{"caching", cached, open, PlanLiveSequential, PlanReasonCaching},
		{"aggregate+closedloop", sharded(ModeLiveAggregate), closed, PlanLiveSequential, PlanReasonClosedLoopAggregate},
		{"aggregate+openloop", sharded(ModeLiveAggregate), open, PlanLiveSharded, PlanReasonSharded},
		{"live", sharded(ModeLive), open, PlanLiveSharded, PlanReasonSharded},
		{"live+closedloop", sharded(ModeLive), closed, PlanLiveSharded, PlanReasonSharded},
		{"pit+closedloop", sharded(ModeLivePIT), closed, PlanLiveSharded, PlanReasonSharded},
		{"churn", churned, open, PlanLiveSharded, PlanReasonSharded},
		{"churn+fast-probe", fastProbe, open, PlanLiveSequential, PlanReasonChurn},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, reason := tc.cfg.Plan(tc.sched)
			if plan != tc.plan {
				t.Errorf("plan = %v, want %v", plan, tc.plan)
			}
			if reason != tc.reason {
				t.Errorf("reason = %q, want %q", reason, tc.reason)
			}
		})
	}
}

// TestConfigValidatePIT pins the PIT knob cross-checks: the knobs are
// required in ModeLivePIT and rejected anywhere else.
func TestConfigValidatePIT(t *testing.T) {
	pitless := func(mutate func(*Config)) Config {
		cfg := baseConfig()
		mutate(&cfg)
		return cfg
	}
	bad := []Config{
		pitless(func(c *Config) { c.Mode = ModeLivePIT }),                                       // knobs unset
		pitless(func(c *Config) { c.Mode = ModeLivePIT; c.PITTimeout = 64 }),                    // waiters unset
		pitless(func(c *Config) { c.Mode = ModeLivePIT; c.PITWaiters = 16 }),                    // timeout unset
		pitless(func(c *Config) { c.Mode = ModeLivePIT; c.PITTimeout = -1; c.PITWaiters = 16 }), // negative
		pitless(func(c *Config) { c.Mode = ModeLivePIT; c.PITTimeout = math.NaN(); c.PITWaiters = 16 }),
		pitless(func(c *Config) { c.Mode = ModeLivePIT; c.PITTimeout = math.Inf(1); c.PITWaiters = 16 }),
		pitless(func(c *Config) { c.Mode = ModeLive; c.PITTimeout = 64 }),     // knobs outside PIT mode
		pitless(func(c *Config) { c.Mode = ModeSnapshot; c.PITWaiters = 16 }), // knobs outside PIT mode
		pitless(func(c *Config) { c.Mode = modeEnd }),                         // unknown mode
	}
	g := testGraph(t, 64, 6, 3, 0)
	msgs := testMessages(t, g, 1, 4)
	for i, cfg := range bad {
		if _, err := Run(g, msgs, periodicSchedule(1, 1), cfg, nil); err == nil {
			t.Errorf("bad config %d accepted (mode %v, timeout %g, waiters %d)",
				i, cfg.Mode, cfg.PITTimeout, cfg.PITWaiters)
		}
	}
}
