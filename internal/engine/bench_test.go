package engine

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/route"
)

// The hot-path contract these benchmarks pin: once slices are warm,
// processing one event — heap pop, queue mechanics, forwarding
// decision, heap push — allocates nothing. Walker creation (one struct,
// one path slab, one rng stream per message) and latency recording are
// per-message costs, amortized over a message's hops; the per-event
// path itself is allocation-free in both modes.

// newCyclicSnapshotRunner builds a snapshot-mode runner whose single
// message replays a pathLen-hop tour of the ring over and over — pure
// event-loop mechanics, no routing.
func newCyclicSnapshotRunner(tb testing.TB, nodes, pathLen int) *runner {
	tb.Helper()
	g := testGraph(tb, nodes, 1, 23, 0)
	r := newRunner(g, []Message{{From: 0, Key: 1}}, Schedule{}, baseConfig(), rng.New(1))
	path := make([]metric.Point, pathLen)
	for i := range path {
		path[i] = metric.Point(i % nodes)
	}
	r.paths[0] = path
	r.delivered[0] = false
	r.routed = 1
	return r
}

// stepEvents drives k events through the loop, re-injecting the
// message after its path exhausts so the loop never goes idle.
func (r *runner) stepEvents(k int) {
	for i := 0; i < k; i++ {
		if r.h.Len() == 0 {
			r.enqueue(Injection{Msg: 0, Time: r.out.Makespan + 1})
		}
		r.processOne(r.h.Pop())
	}
}

// TestSnapshotHotPathAllocs pins the snapshot event loop at zero
// allocations per event — including the telemetry hook branches, which
// a default config leaves nil: disabled telemetry must stay free.
func TestSnapshotHotPathAllocs(t *testing.T) {
	r := newCyclicSnapshotRunner(t, 64, 4096)
	r.stepEvents(4096) // warm the heap, every queue, and the counters
	if avg := testing.AllocsPerRun(50, func() { r.stepEvents(256) }); avg != 0 {
		t.Errorf("snapshot event processing allocates %.2f per 256-event run, want 0", avg)
	}
}

func BenchmarkProcessOneSnapshot(b *testing.B) {
	r := newCyclicSnapshotRunner(b, 64, 4096)
	r.stepEvents(4096)
	b.ReportAllocs()
	b.ResetTimer()
	r.stepEvents(b.N)
}

// newGreedyLiveRunner builds a live-mode runner on a bare ring (no
// long links), where greedy routing from 0 to the antipode advances
// one ring edge per service: the longest possible steady-state walk,
// so thousands of live forwarding decisions run without a walker
// creation in between.
func newGreedyLiveRunner(tb testing.TB, nodes int) *runner {
	tb.Helper()
	ring, err := metric.NewRing(nodes)
	if err != nil {
		tb.Fatal(err)
	}
	g, err := graph.BuildIdeal(ring, graph.PaperConfig(0), rng.New(7))
	if err != nil {
		tb.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Mode = ModeLive
	cfg.Route = route.Options{MaxHops: nodes} // the walk is nodes/2 hops; don't cap it
	msgs := []Message{{From: 0, Key: metric.Point(nodes / 2)}}
	r := newRunner(g, msgs, Schedule{}, cfg, rng.New(1))
	ropt := cfg.Route
	ropt.TracePath = true
	r.router = route.New(g, ropt)
	for i := range r.queues {
		// Each ring node is visited once per tour; pre-size the queue
		// slabs the first tour would otherwise allocate lazily.
		r.queues[i].finish = make([]float64, 0, 4)
	}
	return r
}

// TestLiveHotPathAllocs pins the live forwarding path at zero
// allocations per event with the (default) nil telemetry recorder —
// the observability layer's disabled-is-free contract.
func TestLiveHotPathAllocs(t *testing.T) {
	r := newGreedyLiveRunner(t, 8192)
	r.enqueue(Injection{Msg: 0, Time: 0})
	// 15 calls x 256 events stay inside the 4096-hop walk: every
	// measured event is a pure forwarding step.
	if avg := testing.AllocsPerRun(14, func() { r.stepEvents(256) }); avg != 0 {
		t.Errorf("live event processing allocates %.2f per 256-event run, want 0", avg)
	}
	if r.err != nil {
		t.Fatal(r.err)
	}
}

func BenchmarkProcessOneLive(b *testing.B) {
	r := newGreedyLiveRunner(b, 8192)
	r.enqueue(Injection{Msg: 0, Time: 0})
	b.ReportAllocs()
	b.ResetTimer()
	r.stepEvents(b.N) // re-injection restarts the tour when a walk delivers
	b.StopTimer()
	if r.err != nil {
		b.Fatal(r.err)
	}
}

// BenchmarkLiveEngine runs a whole live engine scenario per shard
// count — the end-to-end events/sec number, meaningful on multi-core
// hardware (ftrbench's engine headline records the same ratio as
// events_per_sec_per_core).
func BenchmarkLiveEngine(b *testing.B) {
	torus, err := metric.NewTorus(64, 2)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.BuildIdeal(torus, graph.PaperConfigFor(torus, 12), rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	msgs := testMessages(b, g, 1<<14, 3)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := baseConfig()
			cfg.Mode = ModeLive
			cfg.Shards = shards
			var events int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := Run(g, msgs, periodicSchedule(len(msgs), 256), cfg, rng.New(9))
				if err != nil {
					b.Fatal(err)
				}
				events = out.Services
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds()/float64(b.N), "events/s")
		})
	}
}
