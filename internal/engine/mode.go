package engine

import "fmt"

// Mode selects the engine's simulation discipline. It replaces the
// former Live/Aggregate bool pair (which was about to grow a third
// flag): exactly one mode is in force per run, the zero value is the
// historical default, and validate() cross-checks every mode-dependent
// knob so an inconsistent configuration is an error, not a silent
// reinterpretation.
type Mode uint8

const (
	// ModeSnapshot (the zero value) is the classic route-then-replay
	// pipeline: whole paths computed in congestion-snapshot batches,
	// then replayed through the FIFO queues.
	ModeSnapshot Mode = iota
	// ModeLive is event-driven routing: messages advance hop-by-hop at
	// their service completions and every forwarding decision reads
	// live load, queue depth, and replica placement.
	ModeLive
	// ModeLiveAggregate is live routing plus per-queue coalescing:
	// same-key lookups that meet in a node's queue merge into one
	// aggregated service and complete with their carrier.
	ModeLiveAggregate
	// ModeLivePIT is live routing plus per-node pending-interest
	// tables: a delivered lookup spawns an answer that retraces the
	// reverse path hop by hop, every request service plants a PIT
	// entry, a same-key request arriving while an entry is pending is
	// suppressed network-wide (it parks as a waiter instead of
	// forwarding), and a returning answer multicasts to every recorded
	// waiter. PIT supersedes aggregation: the in-queue merge is a
	// special case of the in-network suppression, so the two are not
	// composed.
	ModeLivePIT

	modeEnd // sentinel: first invalid value
)

// Live reports whether the mode runs the event-driven loop (any mode
// but snapshot).
func (m Mode) Live() bool { return m == ModeLive || m == ModeLiveAggregate || m == ModeLivePIT }

// Aggregate reports whether same-key lookups coalesce in queues.
func (m Mode) Aggregate() bool { return m == ModeLiveAggregate }

// PIT reports whether per-node pending-interest tables and the answer
// leg are in force.
func (m Mode) PIT() bool { return m == ModeLivePIT }

func (m Mode) String() string {
	switch m {
	case ModeSnapshot:
		return "snapshot"
	case ModeLive:
		return "live"
	case ModeLiveAggregate:
		return "live+aggregate"
	case ModeLivePIT:
		return "live+pit"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ExecutionPlan is the loop a run resolves to. The engine used to pick
// it silently (requesting Shards > 1 on an ineligible configuration
// just ran sequentially); Config.Plan makes the choice, and the reason
// for it, a first-class inspectable output.
type ExecutionPlan uint8

const (
	// PlanSnapshot: the batched route-then-replay pipeline.
	PlanSnapshot ExecutionPlan = iota
	// PlanLiveSequential: the single event heap, one goroutine.
	PlanLiveSequential
	// PlanLiveSharded: per-core event heaps over contiguous node
	// regions, synchronized in conservative virtual-time windows.
	PlanLiveSharded
)

func (p ExecutionPlan) String() string {
	switch p {
	case PlanSnapshot:
		return "snapshot"
	case PlanLiveSequential:
		return "live-sequential"
	case PlanLiveSharded:
		return "live-sharded"
	default:
		return fmt.Sprintf("plan(%d)", uint8(p))
	}
}

// The pinned Plan reasons, one per way a live run declines sharding
// (and one per trivially-resolved plan). Tests pin these strings; they
// are part of the API surface ftrsim prints and ftrbench records.
const (
	// PlanReasonSnapshot: snapshot mode has no live event loop to
	// partition — Shards applies only to live modes.
	PlanReasonSnapshot = "snapshot mode routes whole paths in batches; Shards applies only to the live loop"
	// PlanReasonSingleShard: one shard is the sequential loop by
	// definition.
	PlanReasonSingleShard = "one shard requested: the sequential loop is the single-core plan"
	// PlanReasonChurn: churn itself is shard-eligible — membership
	// mutations apply only at window barriers, with the safe horizon
	// clipped at the next churn-op instant — but that argument needs
	// every strand resumption to land at or beyond the window horizon,
	// which holds exactly when ProbeTimeout covers the lookahead
	// (one service time). A faster probe could resume a stranded
	// message inside the window being drained.
	PlanReasonChurn = "churn probe timeout is shorter than the service time, so a stranded message could resume inside a window; the sequential loop is the fallback"
	// PlanReasonCongestion: Penalty/DepthPenalty/Route.Congestion read
	// globally-accumulated charge and arbitrary nodes' instantaneous
	// queue depths at every hop.
	PlanReasonCongestion = "congestion feedback (Penalty, DepthPenalty, or Route.Congestion) reads global live state at every hop"
	// PlanReasonCaching: cache-on-path placements mutate the shared
	// replica sets on delivery and read them at injection.
	PlanReasonCaching = "cache-on-path placement mutates shared replica sets on delivery"
	// PlanReasonClosedLoopAggregate: an aggregation merge settles at
	// its carrier's completion time, which may lie inside the window
	// being drained, so a closed-loop schedule could unlock an
	// injection at a past instant.
	PlanReasonClosedLoopAggregate = "closed-loop aggregation can settle merges at past instants, unlocking injections inside the window"
	// PlanReasonSharded: the eligible case — every forwarding decision
	// is message-local, so shards can drain windows independently.
	PlanReasonSharded = "forwarding decisions are message-local; shards drain virtual-time windows in parallel"
)

// Plan resolves the execution plan for this configuration driving
// sched, and the pinned reason for the choice. Eligibility depends on
// the schedule's shape (a closed-loop Completed hook interacts with
// aggregation), which is why the schedule is an argument rather than a
// Config field. Plan is a pure function of its inputs; Run dispatches
// on exactly this result and reports it in Outcome.Plan/PlanReason.
//
// PIT runs stay shard-eligible under a closed-loop schedule, unlike
// aggregation: every PIT completion is recorded at a service finish
// time, which lies at or beyond the window horizon by the lookahead
// argument, so the injections it unlocks always belong to a later
// window.
//
// Churn runs are shard-eligible too: the schedule is materialized
// before the run, so the sharded loop clips each window at the next
// churn-op instant and applies membership mutations only at barriers
// (see horizon.go). The one knob that can break the window argument is
// a probe timeout shorter than the lookahead — a stranded message
// would resume before the horizon — so exactly those configurations
// fall back (PlanReasonChurn).
func (c Config) Plan(sched Schedule) (ExecutionPlan, string) {
	if !c.Mode.Live() {
		return PlanSnapshot, PlanReasonSnapshot
	}
	if c.Shards <= 1 {
		return PlanLiveSequential, PlanReasonSingleShard
	}
	if c.Churn.Enabled() && c.Churn.ProbeTimeout < 1/c.Capacity {
		return PlanLiveSequential, PlanReasonChurn
	}
	if c.Penalty > 0 || c.DepthPenalty > 0 || c.Route.Congestion != nil {
		return PlanLiveSequential, PlanReasonCongestion
	}
	if c.Placement != nil && c.Placement.Caching() {
		return PlanLiveSequential, PlanReasonCaching
	}
	if c.Mode.Aggregate() && sched.Completed != nil {
		return PlanLiveSequential, PlanReasonClosedLoopAggregate
	}
	return PlanLiveSharded, PlanReasonSharded
}
