package engine

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/metric"
	"repro/internal/rng"
)

// Crash B is born while crash A's gossip rounds are still running:
// B should converge after its own detection, not be abandoned.
func TestZZStaggeredCrashRumor(t *testing.T) {
	g := testGraph(t, 64, 8, 31, 0)
	cfg := baseConfig()
	cfg.Mode = ModeLive
	cfg.Churn = churnKnobs(
		failure.ChurnEvent{Time: 0, Kind: failure.ChurnCrash, Node: metric.Point(10)},
		failure.ChurnEvent{Time: 3.5, Kind: failure.ChurnCrash, Node: metric.Point(40)},
	)
	out, err := Run(g, []Message{{From: 0, Key: 32}},
		Schedule{Initial: []Injection{{Msg: 0, Time: 0}}}, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("converged=%d abandoned=%d lag=%g", out.RumorsConverged, out.RumorsAbandoned, out.MembershipLag)
	if out.RumorsAbandoned != 0 {
		t.Errorf("second rumor abandoned before detection: converged=%d abandoned=%d",
			out.RumorsConverged, out.RumorsAbandoned)
	}
}
