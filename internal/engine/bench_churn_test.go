package engine

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

// The churn hot-path contract these tests pin: once the scratch
// buffers are warm, the recurring churn work — parking and resuming a
// stranded message, a gossip round, a repair link redraw — allocates
// nothing. Per-rumor costs (the known bitmap, a node's first hot-list
// entry) are paid at birth and recycled at retirement; the steady
// state is allocation-free, so sustained churn cannot out-allocate the
// traffic it competes with.

// newChurnBenchRunner builds a live runner with the churn machinery
// attached (knobs, no scheduled events) on a ring with a contiguous
// dead stretch, so strand parks, nearest-alive searches, and link
// redraws all have real work to do.
func newChurnBenchRunner(tb testing.TB, nodes int) *runner {
	tb.Helper()
	g := testGraph(tb, nodes, 4, 23, 0)
	cfg := baseConfig()
	cfg.Mode = ModeLive
	cfg.Churn = churnKnobs()
	r := newRunner(g, []Message{{From: 0, Key: metric.Point(nodes / 2)}}, Schedule{}, cfg, rng.New(1))
	// A dead arc a quarter of the way around: nearestAlive must BFS
	// across it, and node nodes/4 is a dead park spot for strands.
	for p := nodes / 4; p < nodes/4+8; p++ {
		g.Fail(metric.Point(p))
	}
	r.alive = g.AliveCount()
	return r
}

// TestStrandHotPathAllocs pins the strand park/resume cycle at zero
// allocations per op once the op queue and event heap are warm: a
// message parks at its node, waits out the probe window, and resumes —
// the full churnOpResume round trip, heap push to heap pop.
func TestStrandHotPathAllocs(t *testing.T) {
	r := newChurnBenchRunner(t, 256)
	c := r.churn
	r.doneAt[0] = -1
	t0 := 0.0
	cycle := func() {
		r.pos[0] = 1 // alive: the resume replays the arrival there
		r.strand(0, 3, t0)
		op := c.ops.Pop()
		r.churnOp(op) // resumeStranded: pushes the replay event
		r.h.Pop()     // discard it; the loop mechanics are pinned elsewhere
		t0 += 1
	}
	cycle() // warm the op queue and event heap
	if avg := testing.AllocsPerRun(50, func() { cycle() }); avg != 0 {
		t.Errorf("strand park/resume allocates %.2f per cycle, want 0", avg)
	}
	if r.err != nil {
		t.Fatal(r.err)
	}
}

// TestGossipRoundHotPathAllocs pins one gossip round at zero
// allocations in steady state: every alive node already knows the
// rumor (so teach hits the known-bitmap early return instead of
// growing hot lists), and the round's sends land on queues that drain
// between rounds.
func TestGossipRoundHotPathAllocs(t *testing.T) {
	r := newChurnBenchRunner(t, 256)
	c := r.churn
	known := make([]bool, r.g.Size())
	for i := range known {
		known[i] = true
	}
	c.rumors = append(c.rumors, rumor{node: 1, crash: false, born: 0, detected: true, known: known})
	c.hot[1] = append(c.hot[1], 0)
	c.hot[2] = append(c.hot[2], 0)
	t0 := 1000.0
	round := func() {
		// Re-arm the converged rumor; the resets recycle warm storage.
		ru := &c.rumors[0]
		ru.done = false
		ru.known = known
		c.pending = 1
		c.freeKnown = c.freeKnown[:0]
		// Pop the round ensureRound queued (or push one the first time).
		if c.ops.Len() == 0 {
			c.push(churnOp{time: t0, kind: churnOpRound})
		}
		op := c.ops.Pop()
		c.round(r, op.time)
		t0 += 1000 // far enough that every gossip queue drains and resets
	}
	round() // warm the send queues and the op heap
	if avg := testing.AllocsPerRun(50, func() { round() }); avg != 0 {
		t.Errorf("gossip round allocates %.2f per round, want 0", avg)
	}
	if r.out.GossipSends == 0 {
		t.Fatal("the benchmark rounds sent nothing; the pin is vacuous")
	}
}

// TestLinkRedrawHotPathAllocs pins the repair draw — a §5 power-law
// sample resolved to the nearest alive node via the stamped BFS — at
// zero allocations once the sampler and the BFS scratch are warm.
func TestLinkRedrawHotPathAllocs(t *testing.T) {
	r := newChurnBenchRunner(t, 256)
	c := r.churn
	draws := 0
	draw := func() {
		if _, ok := c.drawLink(r, metric.Point(3)); ok {
			draws++
		}
	}
	draw() // warm the sampler, the visit stamps, and the BFS queue
	if avg := testing.AllocsPerRun(50, func() { draw() }); avg != 0 {
		t.Errorf("link redraw allocates %.2f per draw, want 0", avg)
	}
	if draws == 0 {
		t.Fatal("no draw resolved; the pin is vacuous")
	}
}

func BenchmarkGossipRound(b *testing.B) {
	r := newChurnBenchRunner(b, 256)
	c := r.churn
	known := make([]bool, r.g.Size())
	for i := range known {
		known[i] = true
	}
	c.rumors = append(c.rumors, rumor{node: 1, detected: true, known: known})
	c.hot[1] = append(c.hot[1], 0)
	t0 := 1000.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ru := &c.rumors[0]
		ru.done = false
		ru.known = known
		c.pending = 1
		c.freeKnown = c.freeKnown[:0]
		if c.ops.Len() > 0 {
			c.ops.Pop()
		}
		c.round(r, t0)
		t0 += 1000
	}
}

func BenchmarkLinkRedraw(b *testing.B) {
	r := newChurnBenchRunner(b, 256)
	c := r.churn
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.drawLink(r, metric.Point(3))
	}
}
