package engine

import (
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// Message is one lookup entering the simulation: a source node and the
// logical key being looked up. The key is the aggregation identity and
// the replica-placement key; without replication it is also the
// routing target.
type Message struct {
	From metric.Point
	Key  metric.Point
}

// Config parameterizes one engine run. The engine takes a *resolved*
// configuration — the caller (package load) owns defaulting — so every
// field here must already be valid: a positive Capacity and BatchSize,
// at least one worker and one shard.
type Config struct {
	// Capacity is the per-node service capacity in message-hops per
	// virtual tick; a node serves one message every 1/Capacity ticks.
	Capacity float64
	// Workers bounds the goroutines snapshot mode spreads one routing
	// batch across (routeRange); it has no other effect anywhere.
	// Live mode — sequential or sharded — computes one hop per
	// service, so there are no whole-path routing batches to spread,
	// and it ignores Workers entirely: live parallelism comes from
	// Shards. Must be at least 1 (the caller owns defaulting), and
	// results are byte-identical for every value in every mode.
	Workers int
	// Shards partitions live mode's event loop across cores: the node
	// set splits into Shards contiguous regions of the space's point
	// order, each with its own event heap, advancing in lockstep
	// virtual-time windows of length 1/Capacity — the safe horizon
	// under which no event can affect another shard's same-window
	// decisions (see shard.go). Results are byte-identical for every
	// value; 1 is the sequential reference mode. Sharding applies only
	// to live configurations whose forwarding decisions are
	// message-local: congestion feedback (Penalty, DepthPenalty, or a
	// caller-supplied Route.Congestion) and cache-on-path placements
	// read global live state at every hop, and closed-loop schedules
	// under ModeLiveAggregate can unlock past-time injections, so those
	// runs use the sequential loop whatever Shards says. The resolution
	// is not silent: Config.Plan reports the loop a run will use and
	// the pinned reason, and every Outcome carries the pair. Snapshot
	// mode ignores Shards. Must be at least 1, and at most the node
	// count in live mode.
	Shards int
	// Route configures the routing layer. TracePath is forced on; the
	// congestion feedback owns Congestion/CongestionWeight whenever
	// Penalty or DepthPenalty is positive.
	Route route.Options
	// Penalty is the cumulative-load congestion weight: detour budget
	// in distance units per multiple-of-mean charged load.
	Penalty float64
	// DepthPenalty is the instantaneous-queue-depth congestion weight:
	// distance units per message sitting in a candidate's queue.
	DepthPenalty float64
	// BatchSize is the congestion-snapshot cadence of snapshot mode —
	// how many messages route against one frozen signal — and the decay
	// cadence of cache-on-path in both modes. In live mode it has no
	// other effect: every forwarding decision is fresh.
	BatchSize int
	// Mode selects the simulation discipline: ModeSnapshot (the zero
	// value, the classic route-then-replay pipeline), ModeLive,
	// ModeLiveAggregate, or ModeLivePIT. See the Mode constants.
	Mode Mode
	// PITTimeout is the pending-interest lifetime in virtual ticks
	// (ModeLivePIT only): a PIT entry planted by a request service
	// expires PITTimeout after that service finishes, and a suppressed
	// waiter re-forwards on its own after waiting PITTimeout for an
	// answer. Must be positive and finite in PIT mode, zero otherwise.
	PITTimeout float64
	// PITWaiters bounds one PIT entry's waiter list (ModeLivePIT
	// only): a request arriving at a full entry is not suppressed and
	// forwards normally. Must be at least 1 in PIT mode, zero
	// otherwise.
	PITWaiters int
	// Churn attaches node dynamics: a schedule of crash/join events
	// interleaved with traffic on the virtual clock, detected and
	// repaired by a gossip membership layer charged to the same per-node
	// FIFOs (see churn.go). Enabled churn requires a live mode. Churn
	// runs shard: membership mutations apply only at window barriers,
	// with each window clipped at the next churn-op instant — provided
	// ProbeTimeout is at least the service time 1/Capacity, so strand
	// resumptions land beyond the window horizon; faster probes fall
	// back to the sequential loop (Config.Plan, PlanReasonChurn).
	Churn ChurnConfig
	// Placement, when non-nil, replicates every key: messages route to
	// the nearest live member of Placement.Targets(key). Cache-on-path
	// observation and decay are driven from engine events (batch
	// boundaries in snapshot mode, delivery events and the BatchSize
	// injection cadence in live mode).
	Placement *replica.Placement
	// Telemetry, when non-nil, attaches the observability layer: the
	// run feeds the recorder's window timeseries, flight recorder, and
	// scheduler profile as it executes. A recorder only observes — it
	// consumes no simulation randomness and feeds nothing back — so
	// every outcome byte is identical with Telemetry nil or set, at
	// every Workers and Shards value. Nil is the zero-cost disabled
	// state: each hook site is one predictable branch, no allocations
	// (pinned by the engine's hot-path alloc tests).
	Telemetry *telemetry.Recorder
}

// validate rejects an unresolved or inconsistent configuration.
func (c Config) validate() error {
	if !(c.Capacity > 0) || math.IsInf(c.Capacity, 0) {
		return fmt.Errorf("engine: capacity %g must be positive and finite", c.Capacity)
	}
	if c.Workers < 1 {
		return fmt.Errorf("engine: workers %d must be at least 1", c.Workers)
	}
	if c.Shards < 1 {
		return fmt.Errorf("engine: shards %d must be at least 1", c.Shards)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("engine: batch size %d must be at least 1", c.BatchSize)
	}
	if c.Penalty < 0 || c.DepthPenalty < 0 ||
		math.IsNaN(c.Penalty) || math.IsNaN(c.DepthPenalty) {
		return fmt.Errorf("engine: congestion penalties %g/%g must be non-negative",
			c.Penalty, c.DepthPenalty)
	}
	if c.Mode >= modeEnd {
		return fmt.Errorf("engine: unknown mode %d", uint8(c.Mode))
	}
	if c.Mode.PIT() {
		if !(c.PITTimeout > 0) || math.IsInf(c.PITTimeout, 0) {
			return fmt.Errorf("engine: PIT timeout %g must be positive and finite", c.PITTimeout)
		}
		if c.PITWaiters < 1 {
			return fmt.Errorf("engine: PIT waiter bound %d must be at least 1", c.PITWaiters)
		}
	} else if c.PITTimeout != 0 || c.PITWaiters != 0 {
		return fmt.Errorf("engine: PIT knobs (timeout %g, waiters %d) are only meaningful in ModeLivePIT",
			c.PITTimeout, c.PITWaiters)
	}
	if err := c.Churn.validate(c.Mode); err != nil {
		return err
	}
	return nil
}

// Outcome reports one engine run: the per-message routing results in
// message order, the queueing picture, and the aggregation headline.
type Outcome struct {
	// Results holds each message's search outcome. Under live
	// aggregation a coalesced message reports its own partial path and
	// hops but its carrier's Delivered/Target — it was answered at the
	// aggregation point.
	Results []route.Result
	// Loads counts message-hop services per grid point.
	Loads []int
	// Services is the total message-hops serviced (the sum of Loads).
	Services int
	// MaxQueueDepth is the deepest any node's FIFO got, including the
	// message in service.
	MaxQueueDepth int
	// Latencies holds each delivered message's completion minus
	// injection time, in completion order. Zero-hop lookups (source
	// already a target) never enter a queue and contribute none.
	Latencies []float64
	// Injected counts injections the schedule actually performed;
	// LastInject is the latest injection time.
	Injected   int
	LastInject float64
	// Makespan is the finish time of the last service.
	Makespan float64
	// Aggregated counts the lookups coalesced onto a same-key carrier
	// (live aggregation only).
	Aggregated int
	// Suppressed counts PIT suppressions: request arrivals that parked
	// as waiters on a pending same-key interest instead of forwarding
	// (a lookup that times out and re-forwards can be suppressed again,
	// so this counts events, not messages). ModeLivePIT only.
	Suppressed int
	// MulticastFanout counts waiters released by returning answers —
	// the total fan-out of every PIT multicast. ModeLivePIT only.
	MulticastFanout int
	// PITExpired counts waits that ended by timeout rather than by an
	// answer: the waiter re-forwarded on its own. ModeLivePIT only.
	PITExpired int
	// Churn ledger (Config.Churn enabled only). Crashes/Joins count the
	// schedule events actually applied. Stranded counts arrivals that
	// found their node dead; each resolves exactly once as StrandResumed
	// (the lookup continued — moved on, replayed at the revived node, or
	// completed delivered) or StrandDropped (it ended undelivered at the
	// resume), so Stranded == StrandResumed + StrandDropped always.
	// Reattached counts injections whose dead source was re-homed to the
	// nearest alive node.
	Crashes       int
	Joins         int
	Stranded      int
	StrandResumed int
	StrandDropped int
	Reattached    int
	// GossipSends counts membership transmissions (gossip pushes and
	// join bootstraps), each charged as one FIFO service at its sender;
	// LinksRebuilt counts long links redrawn by repair and rejoin.
	GossipSends  int
	LinksRebuilt int
	// RumorsConverged/RumorsAbandoned partition the resolved rumors:
	// known by every alive node, or orphaned (every knower crashed).
	// MembershipLag is the worst event-to-convergence time observed.
	RumorsConverged int
	RumorsAbandoned int
	MembershipLag   float64
	// Plan is the execution plan the run resolved to, and PlanReason
	// the pinned explanation for the choice (see Config.Plan).
	Plan       ExecutionPlan
	PlanReason string
}

// Run simulates msgs over g under cfg and sched. Message i draws its
// routing randomness from root.Derive(16+i) — the traffic pipeline's
// historical per-message stream contract — so a snapshot-mode run
// reproduces the pre-engine route-then-replay pipeline byte-for-byte
// and is independent of cfg.Workers; a live run is deterministic in
// (g, msgs, sched, cfg, root) and independent of cfg.Shards: the
// sharded loop replays every globally-ordered side effect in the
// sequential loop's exact (time, msg, idx) event order (see shard.go).
func Run(g *graph.Graph, msgs []Message, sched Schedule, cfg Config, root *rng.Source) (*Outcome, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Mode.Live() && cfg.Shards > g.Size() {
		return nil, fmt.Errorf("engine: shards %d exceed the node count %d", cfg.Shards, g.Size())
	}
	r := newRunner(g, msgs, sched, cfg, root)
	plan, reason := cfg.Plan(sched)
	r.out.Plan, r.out.PlanReason = plan, reason
	var started time.Time
	if r.tel != nil {
		r.tel.BeginRun(cfg.Capacity, len(msgs))
		started = time.Now()
	}
	switch plan {
	case PlanLiveSharded:
		r.runSharded()
	case PlanLiveSequential:
		r.runLive()
	default:
		r.runSnapshot()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.tel != nil {
		r.tel.EndRun(time.Since(started).Seconds(), r.out.Services)
	}
	return r.out, nil
}
