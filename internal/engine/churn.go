package engine

import (
	"fmt"
	"math"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// This file is the engine's node-dynamics layer: churn events (crashes
// and joins) share the virtual clock with traffic, and the damage is
// detected and repaired by a gossip membership protocol instead of an
// oracle mask.
//
// Mechanics. The schedule's events, failure detections, gossip rounds,
// and stranded-message resumptions live in a churn op queue ordered by
// (time, push order), drained interleaved with the event heap; at equal
// instants churn ops run before message events, so a message arriving
// at t sees the world as of t (the horizon-boundary tests pin this
// tie rule). A crash takes effect between services: the service a node
// already committed to completes (die-after-commit — "dies
// mid-service" loses nothing it had accepted), but every later arrival
// finds the node dead and *strands*: it parks where it is, waits one
// ProbeTimeout (the sender's unanswered probe), and then re-forwards
// from the dead node without a service — the same one-lifetime-then-
// move-on discipline as the PIT path's expiredOnce re-route. A join
// revives the node, redraws its long links from the paper's §5
// power-law distribution (resolved to the nearest alive node), and
// bootstraps its membership view from its alive neighbours.
//
// Membership. Every crash and join becomes a *rumor*. ProbeTimeout
// after the event, the affected node's alive neighbours (link holders
// plus the point-order successors whose skip-hole short links now cross
// the gap — the nodes whose probes went unanswered) learn it; from
// then on, every GossipInterval, each node holding rumors that have not
// reached the whole network pushes them to GossipFanout uniformly
// random alive peers. Each transmission charges one FIFO service at
// the sender, so dissemination competes with traffic for the same
// capacity. A rumor stays hot at its knowers until every alive node
// knows it — a stand-in for ack-driven rumor retirement that keeps the
// charged cost honest and terminates with probability 1 — and the time
// from event to full knowledge is the membership lag the telemetry
// layer reports. Repair is gossip-driven, not oracular: only when a
// node *learns* of a crash does it redraw its long links into the dead
// node.
//
// Sharding. Churn runs scale across cores: the schedule is fully
// materialized before the run, so the sharded loop clips every safe-
// horizon window at the next churn-op instant, drains the shards in
// parallel up to the clip, and applies membership mutations (crashes,
// joins, link redraws, rumor rounds) sequentially at the barrier under
// the same ops-before-messages tie rule — byte-identical to the
// sequential reference at every shard count. Within a window the graph
// is immutable; the only churn artifact a parallel drain produces is a
// strand park, deferred as a doneRec and replayed at the barrier in
// global event order so op sequence numbers match the sequential
// loop's. The eligibility condition is ProbeTimeout ≥ 1/Capacity (a
// resume must land at or beyond the window horizon); faster probes
// fall back to the sequential loop (Config.Plan, PlanReasonChurn).
//
// Hot paths. Strand handling, gossip rounds, and link redraws run
// allocation-free in steady state, pinned at 0 allocs/op by
// bench_churn_test.go: detection dedups monitors through reusable
// scratch, nearest-alive resolution uses a stamped BFS instead of a
// per-call map, and retired rumors recycle their known bitmaps.

// ChurnConfig attaches node dynamics to a live engine run. The zero
// value is disabled. A config with knobs but no events attaches the
// machinery without scheduling any dynamics — runs byte-identical to
// the churn-free engine (the differential-test configuration).
type ChurnConfig struct {
	// Events is the churn schedule, sorted by time (package failure's
	// ChurnSpec.Generate produces one). The engine applies each event to
	// the graph at its instant, interleaved with traffic.
	Events []failure.ChurnEvent
	// ProbeTimeout is the failure-detection delay in virtual ticks: how
	// long after a crash the neighbours' probes give up (the rumor is
	// born), and how long a stranded message waits before re-forwarding.
	// Must be positive and finite when churn is enabled.
	ProbeTimeout float64
	// GossipInterval is the cadence of gossip rounds in virtual ticks.
	// Must be positive and finite when churn is enabled.
	GossipInterval float64
	// GossipFanout is how many random alive peers a node pushes its hot
	// rumors to per round. Must be at least 1 when churn is enabled.
	GossipFanout int
	// Repair turns on gossip-driven link repair: a node that learns of a
	// crash redraws its long links into the dead node from the §5
	// power-law distribution, resolved to the nearest alive node.
	Repair bool
}

// Enabled reports whether the run carries churn machinery at all.
func (c ChurnConfig) Enabled() bool {
	return len(c.Events) > 0 || c.ProbeTimeout > 0 || c.GossipInterval > 0 ||
		c.GossipFanout > 0 || c.Repair
}

// validate cross-checks the churn knobs against the mode, mirroring
// the PIT-knob discipline: enabled churn requires the live loop and
// fully resolved gossip knobs.
func (c ChurnConfig) validate(mode Mode) error {
	if !c.Enabled() {
		return nil
	}
	if !mode.Live() {
		return fmt.Errorf("engine: churn requires a live mode (snapshot routes whole paths against a static graph)")
	}
	if !(c.ProbeTimeout > 0) || math.IsInf(c.ProbeTimeout, 0) {
		return fmt.Errorf("engine: churn probe timeout %g must be positive and finite", c.ProbeTimeout)
	}
	if !(c.GossipInterval > 0) || math.IsInf(c.GossipInterval, 0) {
		return fmt.Errorf("engine: churn gossip interval %g must be positive and finite", c.GossipInterval)
	}
	if c.GossipFanout < 1 {
		return fmt.Errorf("engine: churn gossip fanout %d must be at least 1", c.GossipFanout)
	}
	last := math.Inf(-1)
	for i, ev := range c.Events {
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) || ev.Time < 0 {
			return fmt.Errorf("engine: churn event %d time %g must be finite and non-negative", i, ev.Time)
		}
		if ev.Time < last {
			return fmt.Errorf("engine: churn events out of time order at %d (%g after %g)", i, ev.Time, last)
		}
		last = ev.Time
	}
	return nil
}

// Churn op kinds, in no particular precedence — ordering is purely
// (time, seq), so at one instant ops run in the order they were
// created: schedule events (pushed first, at init) before the
// detections and resumptions they caused.
const (
	churnOpEvent  = iota // apply cfg.Events[ref] to the graph
	churnOpDetect        // rumor ref's monitors notice, ProbeTimeout after the event
	churnOpRound         // one gossip round
	churnOpResume        // stranded message ref re-forwards (idx = its event chain position)
)

// churnOp is one entry of the churn op queue.
type churnOp struct {
	time float64
	seq  int // creation order: the deterministic tie-break
	kind uint8
	ref  int // event index, rumor index, or message — by kind
	idx  int // churnOpResume: the event idx the message's chain continues from
}

func churnOpLess(a, b churnOp) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// rumor is one membership fact in flight: "node crashed" or "node
// joined", spreading epidemically until every alive node knows it.
type rumor struct {
	node     metric.Point
	crash    bool
	born     float64
	known    []bool // per grid point: has this node heard the rumor
	detected bool   // the ProbeTimeout detection has fired
	done     bool   // converged (all alive know) or abandoned (no alive knower)
}

// churnState is the runner's node-dynamics state: the op queue, the
// rumor table, and the per-node hot lists of rumors still spreading.
type churnState struct {
	cfg     ChurnConfig
	src     *rng.Source // gossip peer draws and repair link redraws (root stream 5)
	ops     *mathx.Heap[churnOp]
	seq     int
	rumors  []rumor
	hot     [][]int // per node: indices of rumors it knows and still spreads
	pending int     // rumors not yet done; rounds self-schedule while > 0
	rounds  bool    // a churnOpRound is already queued
	sampler metric.LinkSampler

	// Reusable scratch keeping the churn hot paths at 0 allocs/op
	// (bench_churn_test.go pins the contract).
	mon        []metric.Point     // detect: this call's deduped monitor set
	collectMon func(metric.Point) // detect: the ForEachNeighbor visitor, built once
	visited    []uint32           // nearestAlive: BFS visit stamps, one per grid point
	stamp      uint32             // current BFS generation
	bfs        []metric.Point     // nearestAlive: BFS queue
	freeKnown  [][]bool           // retired rumors' known bitmaps, recycled by born
}

func newChurnState(g *graph.Graph, cfg ChurnConfig, src *rng.Source) *churnState {
	c := &churnState{
		cfg: cfg,
		src: src,
		ops: mathx.NewHeap(churnOpLess, len(cfg.Events)+16),
		hot: make([][]int, g.Size()),
	}
	// Built once so detect's neighbour sweep costs no per-call closure.
	c.collectMon = func(q metric.Point) {
		if g.Alive(q) {
			c.addMonitor(q)
		}
	}
	for i, ev := range cfg.Events {
		c.push(churnOp{time: ev.Time, kind: churnOpEvent, ref: i})
	}
	return c
}

func (c *churnState) push(op churnOp) {
	op.seq = c.seq
	c.seq++
	c.ops.Push(op)
}

// nextOpBefore reports whether a churn op is due at or before t — the
// drain loop's interleave test (ops win ties, so an event popped at t
// sees the world as of t).
func (c *churnState) nextOpBefore(t float64, heapEmpty bool) bool {
	if c == nil || c.ops.Len() == 0 {
		return false
	}
	return heapEmpty || c.ops.Peek().time <= t
}

// churnOp dispatches one popped op.
func (r *runner) churnOp(op churnOp) {
	c := r.churn
	switch op.kind {
	case churnOpEvent:
		r.applyChurnEvent(c.cfg.Events[op.ref])
	case churnOpDetect:
		c.detect(r, op.ref, op.time)
	case churnOpRound:
		c.round(r, op.time)
	case churnOpResume:
		r.resumeStranded(op.ref, op.idx, op.time)
	}
}

// applyChurnEvent mutates the graph at the event's instant and births
// the membership rumor. Invalid transitions (crashing a dead node,
// reviving an alive one) are dropped — Generate never emits them, but
// hand-built schedules may.
func (r *runner) applyChurnEvent(ev failure.ChurnEvent) {
	c := r.churn
	switch ev.Kind {
	case failure.ChurnCrash:
		if !r.g.Fail(ev.Node) {
			return
		}
		r.alive--
		r.out.Crashes++
		// A dead node neither relays rumors nor counts toward their
		// convergence; whatever it knew dies with it.
		c.hot[ev.Node] = nil
		if r.tel != nil {
			r.tel.Churn(ev.Time, true)
		}
		c.born(r, ev, true)
	case failure.ChurnJoin:
		if !r.g.Revive(ev.Node) {
			return
		}
		r.alive++
		r.out.Joins++
		if r.tel != nil {
			r.tel.Churn(ev.Time, false)
		}
		// The joiner rebuilds its long links per the §5 construction and
		// pulls the membership state its neighbours hold — the bootstrap
		// exchange every real join protocol starts with, charged to the
		// consulted neighbours' FIFOs.
		c.rebuildLinks(r, ev.Node)
		c.bootstrap(r, ev.Node, ev.Time)
		ri := c.born(r, ev, false)
		// The joiner knows its own arrival from the first instant.
		c.teach(r, ri, ev.Node, ev.Time)
	}
}

// born creates the event's rumor and schedules its detection one
// ProbeTimeout later, returning the rumor's index. Retired rumors'
// known bitmaps are recycled, so sustained churn grows the rumor set
// without growing the heap.
func (c *churnState) born(r *runner, ev failure.ChurnEvent, crash bool) int {
	ri := len(c.rumors)
	var known []bool
	if n := len(c.freeKnown); n > 0 {
		known = c.freeKnown[n-1]
		c.freeKnown[n-1] = nil
		c.freeKnown = c.freeKnown[:n-1]
		for i := range known {
			known[i] = false
		}
	} else {
		known = make([]bool, r.g.Size())
	}
	c.rumors = append(c.rumors, rumor{
		node:  ev.Node,
		crash: crash,
		born:  ev.Time,
		known: known,
	})
	c.pending++
	c.push(churnOp{time: ev.Time + c.cfg.ProbeTimeout, kind: churnOpDetect, ref: ri})
	return ri
}

// detect fires ProbeTimeout after the event: the affected node's
// monitors — its alive link holders plus the nearest alive point-order
// successor in each direction, the nodes whose probes went unanswered
// (or who the joiner contacted) — learn the rumor and start spreading
// it. Detection itself charges nothing: the probes are the ambient
// heartbeat traffic every failure detector pays regardless.
func (c *churnState) detect(r *runner, ri int, t float64) {
	ru := &c.rumors[ri]
	if ru.done {
		return
	}
	ru.detected = true
	c.mon = c.mon[:0]
	r.g.ForEachNeighbor(ru.node, c.collectMon)
	for _, dir := range [2]int{+1, -1} {
		if q, ok := nearestAliveDir(r.g, ru.node, dir); ok {
			c.addMonitor(q)
		}
	}
	for _, q := range c.mon {
		c.teach(r, ri, q, t)
	}
	c.checkDone(r, ri, t)
	c.ensureRound(r, t)
}

// addMonitor dedups one node into the scratch monitor set. Monitor
// sets are a handful of nodes (link holders plus two probe
// successors), so the linear scan beats a map and allocates nothing.
func (c *churnState) addMonitor(q metric.Point) {
	for _, m := range c.mon {
		if m == q {
			return
		}
	}
	c.mon = append(c.mon, q)
}

// teach marks one node as knowing one rumor: it joins the rumor's
// spreaders, and — when repair is on and the rumor is a crash — redraws
// its own long links into the dead node.
func (c *churnState) teach(r *runner, ri int, q metric.Point, t float64) {
	ru := &c.rumors[ri]
	if ru.done || ru.known[q] {
		return
	}
	ru.known[q] = true
	c.hot[q] = append(c.hot[q], ri)
	if ru.crash && c.cfg.Repair {
		c.repairAt(r, q, ru.node)
	}
}

// round is one gossip round: every node holding live rumors pushes
// them to GossipFanout uniformly random alive peers, one FIFO service
// charged at the sender per transmission. Knowledge learned earlier in
// the same round relays immediately (push gossip with immediate
// relay) — deterministic, since nodes run in point order and peers come
// from the churn rng stream.
func (c *churnState) round(r *runner, t float64) {
	c.rounds = false
	if c.pending == 0 {
		return
	}
	sent := 0
	for i := range c.hot {
		if len(c.hot[i]) == 0 {
			continue
		}
		p := metric.Point(i)
		if !r.g.Alive(p) {
			c.hot[i] = nil
			continue
		}
		live := c.hot[i][:0]
		for _, ri := range c.hot[i] {
			if !c.rumors[ri].done {
				live = append(live, ri)
			}
		}
		c.hot[i] = live
		if len(live) == 0 {
			continue
		}
		for k := 0; k < c.cfg.GossipFanout; k++ {
			q, ok := r.g.RandomAlive(c.src)
			if !ok || q == p {
				continue
			}
			r.serveAt(p, t)
			sent++
			for _, ri := range live {
				c.teach(r, ri, q, t)
			}
		}
	}
	if sent > 0 {
		r.out.GossipSends += sent
		if r.tel != nil {
			r.tel.Gossip(t, sent)
		}
	}
	for ri := range c.rumors {
		c.checkDone(r, ri, t)
	}
	c.ensureRound(r, t)
}

// checkDone resolves a rumor that has finished spreading: converged
// when every alive node knows it (the membership lag is recorded), or
// abandoned when no alive node knows it any more (all its knowers
// crashed; nothing can revive it). A rumor born but not yet detected
// has no knowers by construction — abandonment only applies once its
// detection has fired (a gossip round between birth and detection must
// not orphan it; the staggered-crash repro pins this).
func (c *churnState) checkDone(r *runner, ri int, t float64) {
	ru := &c.rumors[ri]
	if ru.done {
		return
	}
	aliveTotal, aliveKnow := 0, 0
	for i := range ru.known {
		if !r.g.Alive(metric.Point(i)) {
			continue
		}
		aliveTotal++
		if ru.known[i] {
			aliveKnow++
		}
	}
	switch {
	case aliveTotal > 0 && aliveKnow == aliveTotal:
		ru.done = true
		c.pending--
		r.out.RumorsConverged++
		if lag := t - ru.born; lag > r.out.MembershipLag {
			r.out.MembershipLag = lag
		}
	case ru.detected && aliveKnow == 0:
		ru.done = true
		c.pending--
		r.out.RumorsAbandoned++
	}
	if ru.done {
		// A done rumor is never read again (teach and round both gate on
		// done first): recycle its bitmap for the next born.
		c.freeKnown = append(c.freeKnown, ru.known)
		ru.known = nil
	}
}

// ensureRound keeps exactly one future gossip round queued while any
// rumor is unresolved; the loop drains to quiescence, so Run returns
// only after membership has converged (or every rumor was orphaned).
func (c *churnState) ensureRound(r *runner, t float64) {
	if c.pending == 0 || c.rounds {
		return
	}
	c.rounds = true
	c.push(churnOp{time: t + c.cfg.GossipInterval, kind: churnOpRound})
}

// bootstrap is the join handshake: the joiner consults up to 2·dim
// alive neighbours (its short-link span) and learns every unresolved
// rumor they collectively hold, one FIFO service charged at each
// consulted neighbour.
func (c *churnState) bootstrap(r *runner, p metric.Point, t float64) {
	limit := 2 * r.g.Space().Dim()
	consulted := 0
	r.g.ForEachNeighbor(p, func(q metric.Point) {
		if consulted >= limit || !r.g.Alive(q) {
			return
		}
		consulted++
		r.serveAt(q, t)
		r.out.GossipSends++
		if r.tel != nil {
			r.tel.Gossip(t, 1)
		}
		for _, ri := range c.hot[q] {
			c.teach(r, ri, p, t)
		}
	})
}

// rebuildLinks redraws every long link of a (re)joining node per §5.
func (c *churnState) rebuildLinks(r *runner, p metric.Point) {
	for i := range r.g.Long(p) {
		if to, ok := c.drawLink(r, p); ok {
			if r.g.ReplaceLong(p, i, to) == nil {
				r.out.LinksRebuilt++
			}
		}
	}
}

// repairAt redraws q's long links whose target is the dead node — the
// §5 construction re-run for the broken slots, from q's own power-law
// distribution, resolved to the nearest alive node.
func (c *churnState) repairAt(r *runner, q, dead metric.Point) {
	for i, l := range r.g.Long(q) {
		if l.To != dead || !l.Up {
			continue
		}
		if to, ok := c.drawLink(r, q); ok && to != dead {
			if r.g.ReplaceLong(q, i, to) == nil {
				r.out.LinksRebuilt++
			}
		}
	}
}

// drawLink samples one long-link target for p from the paper's
// harmonic distribution (exponent = dimension), resolved to the
// nearest alive node, with the construction's retry discipline.
func (c *churnState) drawLink(r *runner, p metric.Point) (metric.Point, bool) {
	if c.sampler == nil {
		s, err := r.g.Space().NewLinkSampler(float64(r.g.Space().Dim()))
		if err != nil {
			return 0, false
		}
		c.sampler = s
	}
	for attempt := 0; attempt < 32; attempt++ {
		q, ok := c.sampler.Sample(p, c.src)
		if !ok {
			continue
		}
		if v, ok := c.nearestAlive(r.g, q); ok && v != p {
			return v, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Stranding: in-flight messages at a dying node.
// ---------------------------------------------------------------------

// pushEvent routes a churn-path event to the live loop: the single
// sequential heap, or — from barrier-time op application in sharded
// mode — the owning shard's heap. Always called from sequential code;
// the destination is the message's current node, which every caller
// sets before pushing.
func (r *runner) pushEvent(e event) {
	if r.sharded != nil {
		r.sharded.owner(r.pos[e.msg]).h.Push(e)
		return
	}
	r.h.Push(e)
}

// strand parks a message whose arrival found its node dead: no service
// happens (the node cannot serve), and one ProbeTimeout later — the
// sender's probe giving up — the message resumes.
func (r *runner) strand(m, idx int, t float64) {
	r.out.Stranded++
	if r.tel != nil {
		r.tel.Strand(t)
	}
	r.churn.push(churnOp{time: t + r.churn.cfg.ProbeTimeout, kind: churnOpResume, ref: m, idx: idx})
}

// resumeStranded continues a stranded message after its probe window.
// If the node revived in the meantime the arrival simply replays there
// (and is served normally); otherwise the message moves on without a
// service — an answer leg skips the dead relays on its recorded
// reverse path, a request leg re-steps its walker from the dead node,
// exactly the expiredOnce re-route discipline.
func (r *runner) resumeStranded(m, idx int, t float64) {
	if r.doneAt[m] >= 0 {
		return // completed while parked (e.g. a carrier's cascade)
	}
	node := r.pos[m]
	if r.g.Alive(node) {
		r.out.StrandResumed++
		r.pushEvent(event{time: t, msg: m, idx: idx})
		return
	}
	if r.answering != nil && r.answering[m] {
		for r.ansAt[m] >= 0 && !r.g.Alive(r.ansPath[m][r.ansAt[m]]) {
			r.ansAt[m]--
		}
		r.out.StrandResumed++
		if r.ansAt[m] < 0 {
			// Every remaining relay (the origin included) is dead: the
			// answer's journey ends here, receipt at the resume instant.
			r.completeLive(m, t, r.answerResult(m))
			return
		}
		r.pos[m] = r.ansPath[m][r.ansAt[m]]
		r.pushEvent(event{time: t, msg: m, idx: idx + 1})
		return
	}
	r.stepWithoutService(m, idx, t)
}

// stepWithoutService advances a request walker parked at a dead node:
// the dead node does no work, so the step is free — the cost was the
// ProbeTimeout already paid. The walker's own policy (greedy,
// backtrack, random re-route) picks the escape, filtered to alive
// candidates as always.
func (r *runner) stepWithoutService(m, idx int, t float64) {
	w := r.walkers[m]
	r.now = t
	stepped := w.Step()
	if r.tel != nil {
		r.tel.Hop(m, r.pos[m], t, t, t, 0, telemetry.DecisionReroute)
	}
	if stepped {
		r.out.StrandResumed++
		r.pos[m] = w.At()
		r.pushEvent(event{time: t, msg: m, idx: idx + 1})
		return
	}
	res := w.Result()
	if !res.Delivered {
		r.out.StrandDropped++
		r.completeLive(m, t, res)
		return
	}
	r.out.StrandResumed++
	if r.pit != nil {
		// Delivered from the strand: the answer leg spawns as usual, its
		// generation service at the target.
		r.spawnAnswer(m, t, res)
		r.pushEvent(event{time: t, msg: m, idx: idx + 1})
		return
	}
	r.completeLive(m, t, res)
}

// errExtinct: churn killed every node; nothing can be injected.
var errExtinct = fmt.Errorf("engine: churn extinguished the network (no alive node to inject at)")

// bornFailed completes a lookup that could not even start — every
// replica of its key dead at injection. It is a failed search with an
// empty path, finalized at its injection instant.
func (r *runner) bornFailed(m int, at float64) {
	r.doneAt[m] = at
	if r.tel != nil {
		r.tel.Complete(m, at, false, telemetry.ServedNone)
	}
	if r.sched.Completed != nil {
		if next, ok := r.sched.Completed(m, at); ok {
			r.unlock(next)
		}
	}
}

// reattachOrigin finds the entry point for a lookup whose source node
// is dead at injection time: the nearest alive node stands in (the
// client behind the dead portal retries via the next one). Reports
// ok=false only when the whole network is dead.
func (r *runner) reattachOrigin(from metric.Point) (metric.Point, bool) {
	p, ok := r.churn.nearestAlive(r.g, from)
	if ok {
		r.out.Reattached++
	}
	return p, ok
}

// nearestAlive returns the alive node nearest to target: breadth-first
// over unit grid steps, so level k is the L1 sphere of radius k and the
// first alive point found is nearest (the alive-filtered sibling of
// graph.NearestExisting). The visit set is a reusable stamp array and
// the queue a reusable slice, so the link-redraw hot path allocates
// nothing once warm; the expansion order (−axis before +axis, axes
// ascending) matches the old map-based walk exactly.
func (c *churnState) nearestAlive(g *graph.Graph, target metric.Point) (metric.Point, bool) {
	if g.Alive(target) {
		return target, true
	}
	if g.AliveCount() == 0 {
		return 0, false
	}
	if len(c.visited) < g.Size() {
		c.visited = make([]uint32, g.Size())
		c.stamp = 0
	}
	c.stamp++
	if c.stamp == 0 {
		// Stamp wrapped (2^32 searches): clear and restart the epoch.
		for i := range c.visited {
			c.visited[i] = 0
		}
		c.stamp = 1
	}
	c.bfs = c.bfs[:0]
	c.visited[target] = c.stamp
	c.bfs = append(c.bfs, target)
	for head := 0; head < len(c.bfs); head++ {
		p := c.bfs[head]
		if g.Alive(p) {
			return p, true
		}
		for axis := 1; axis <= g.Space().Dim(); axis++ {
			for _, dir := range [2]int{-axis, +axis} {
				if q, ok := g.Space().Step(p, dir); ok && c.visited[q] != c.stamp {
					c.visited[q] = c.stamp
					c.bfs = append(c.bfs, q)
				}
			}
		}
	}
	return 0, false
}

// nearestAliveDir walks the point order from p in one direction to the
// first alive node — the probe neighbour whose skip-hole short link
// now crosses the gap.
func nearestAliveDir(g *graph.Graph, p metric.Point, dir int) (metric.Point, bool) {
	cur := p
	for i := 0; i < g.Size(); i++ {
		next, ok := g.Space().Step(cur, dir)
		if !ok {
			return 0, false
		}
		cur = next
		if cur == p {
			return 0, false
		}
		if g.Alive(cur) {
			return cur, true
		}
	}
	return 0, false
}
