package engine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/rng"
)

func churnKnobs(events ...failure.ChurnEvent) ChurnConfig {
	return ChurnConfig{Events: events, ProbeTimeout: 2, GossipInterval: 1, GossipFanout: 1}
}

func TestChurnConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  ChurnConfig
		mode Mode
		want string // error substring, "" = valid
	}{
		{"disabled snapshot", ChurnConfig{}, ModeSnapshot, ""},
		{"knobs live", churnKnobs(), ModeLive, ""},
		{"events pit", churnKnobs(failure.ChurnEvent{Time: 1}), ModeLivePIT, ""},
		{"snapshot", churnKnobs(), ModeSnapshot, "churn requires a live mode"},
		{"no probe", ChurnConfig{GossipInterval: 1, GossipFanout: 1}, ModeLive,
			"churn probe timeout"},
		{"no interval", ChurnConfig{ProbeTimeout: 1, GossipFanout: 1}, ModeLive,
			"churn gossip interval"},
		{"no fanout", ChurnConfig{ProbeTimeout: 1, GossipInterval: 1}, ModeLive,
			"churn gossip fanout"},
		{"negative event time", churnKnobs(failure.ChurnEvent{Time: -1}), ModeLive,
			"must be finite and non-negative"},
		{"events out of order", churnKnobs(
			failure.ChurnEvent{Time: 5}, failure.ChurnEvent{Time: 2}), ModeLive,
			"out of time order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.validate(tc.mode)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}
}

// TestPlanChurnEligibility pins churn's execution plan: churn on a
// multi-shard live config shards whenever the probe timeout covers the
// one-service-time lookahead (a strand resume then lands at or beyond
// the window horizon); a faster probe falls back to the sequential
// loop with the pinned PlanReasonChurn. A single shard keeps its own
// (earlier) reason.
func TestPlanChurnEligibility(t *testing.T) {
	cfg := baseConfig()
	cfg.Mode = ModeLive
	cfg.Shards = 4
	cfg.Churn = churnKnobs() // ProbeTimeout 2 ≥ 1/Capacity 1: eligible
	plan, reason := cfg.Plan(Schedule{})
	if plan != PlanLiveSharded || reason != PlanReasonSharded {
		t.Errorf("eligible churn: plan = %v (%q), want live-sharded", plan, reason)
	}
	cfg.Churn.ProbeTimeout = 0.5 // shorter than the service time: fallback
	plan, reason = cfg.Plan(Schedule{})
	if plan != PlanLiveSequential || reason != PlanReasonChurn {
		t.Errorf("fast probe: plan = %v (%q), want live-sequential with PlanReasonChurn", plan, reason)
	}
	cfg.Churn.ProbeTimeout = 1 // exactly the service time: eligible
	plan, reason = cfg.Plan(Schedule{})
	if plan != PlanLiveSharded || reason != PlanReasonSharded {
		t.Errorf("boundary probe: plan = %v (%q), want live-sharded", plan, reason)
	}
	cfg.Shards = 1
	plan, reason = cfg.Plan(Schedule{})
	if plan != PlanLiveSequential || reason != PlanReasonSingleShard {
		t.Errorf("single shard: plan = %v (%q), want the single-shard reason", plan, reason)
	}
}

// TestChurnKnobsOnlyByteIdentical: attaching the churn machinery with
// gossip knobs but no events must not perturb a single outcome byte —
// the engine half of the differential contract regress pins at golden
// level.
func TestChurnKnobsOnlyByteIdentical(t *testing.T) {
	g := testGraph(t, 512, 9, 3, 5)
	msgs := testMessages(t, g, 200, 4)
	cfg := baseConfig()
	cfg.Mode = ModeLive
	plain, err := Run(g, msgs, periodicSchedule(len(msgs), 2), cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Churn = churnKnobs()
	knobs, err := Run(g, msgs, periodicSchedule(len(msgs), 2), cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, knobs) {
		t.Error("knobs-only churn perturbed a churn-free live run")
	}
}

// oneShot runs a single From→Key lookup on g in plain live mode,
// injected at time `at` with unit capacity; injected at 0, the walk
// visits Path[i] at virtual time i and Path[i]'s service occupies
// [i, i+1).
func oneShot(t *testing.T, g *graph.Graph, churn ChurnConfig, mode Mode, at float64) *Outcome {
	t.Helper()
	cfg := baseConfig()
	cfg.Mode = mode
	cfg.Churn = churn
	out, err := Run(g, []Message{{From: 0, Key: 32}},
		Schedule{Initial: []Injection{{Msg: 0, Time: at}}}, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// relayOf returns the first relay (second path node) of the lookup's
// churn-free walk — the node the edge-case tests crash.
func relayOf(t *testing.T, g *graph.Graph) (metric.Point, *Outcome) {
	t.Helper()
	out := oneShot(t, g, ChurnConfig{}, ModeLive, 0)
	path := out.Results[0].Path
	if !out.Results[0].Delivered || len(path) < 3 {
		t.Fatalf("baseline walk unsuitable: delivered=%v path=%v",
			out.Results[0].Delivered, path)
	}
	return path[1], out
}

// TestChurnDieAfterCommit: the relay crashes mid-service — after the
// arrival committed, before the service finishes. Die-after-commit
// means the committed service completes and the lookup proceeds
// undisturbed: nothing strands, nothing is lost.
func TestChurnDieAfterCommit(t *testing.T) {
	g := testGraph(t, 64, 8, 31, 0)
	relay, base := relayOf(t, g)
	// The relay is visited at t=1 and serves over [1,2); crash at 1.5.
	out := oneShot(t, g, churnKnobs(
		failure.ChurnEvent{Time: 1.5, Kind: failure.ChurnCrash, Node: relay}), ModeLive, 0)
	if out.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", out.Crashes)
	}
	if out.Stranded != 0 {
		t.Errorf("stranded = %d, want 0: the committed service must complete", out.Stranded)
	}
	if !out.Results[0].Delivered {
		t.Error("lookup must deliver despite the mid-service crash")
	}
	if out.Loads[relay] < 1 {
		t.Error("the dying relay's committed service was not charged")
	}
	if len(out.Latencies) != 1 || len(base.Latencies) != 1 ||
		out.Latencies[0] != base.Latencies[0] {
		t.Errorf("latency %v changed from churn-free %v: the walk should be undisturbed",
			out.Latencies, base.Latencies)
	}
}

// TestChurnStrandReroute: the relay crashes before the lookup arrives.
// The arrival strands, waits one ProbeTimeout, and re-forwards without
// a service — delivered late, with the strand ledger balancing.
func TestChurnStrandReroute(t *testing.T) {
	g := testGraph(t, 64, 8, 31, 0)
	relay, base := relayOf(t, g)
	out := oneShot(t, g, churnKnobs(
		failure.ChurnEvent{Time: 0.5, Kind: failure.ChurnCrash, Node: relay}), ModeLive, 0)
	if out.Stranded == 0 {
		t.Fatal("arrival at the dead relay must strand")
	}
	if out.Stranded != out.StrandResumed+out.StrandDropped {
		t.Errorf("strand ledger broken: %d stranded != %d resumed + %d dropped",
			out.Stranded, out.StrandResumed, out.StrandDropped)
	}
	if !out.Results[0].Delivered {
		t.Error("the re-routed lookup should still deliver")
	}
	if len(out.Latencies) == 1 && len(base.Latencies) == 1 &&
		out.Latencies[0] <= base.Latencies[0] {
		t.Errorf("latency %g should exceed the churn-free %g by the probe window",
			out.Latencies[0], base.Latencies[0])
	}
}

// TestChurnTieAtHorizonBoundary pins the tie rule at a window-horizon
// instant (t=1 is a horizon multiple at unit capacity): churn ops run
// before message events at equal times, so a message popped at t sees
// the world as of t. A crash at exactly the arrival instant strands
// the arrival; a revival at exactly the arrival instant serves it.
func TestChurnTieAtHorizonBoundary(t *testing.T) {
	g := testGraph(t, 64, 8, 31, 0)
	relay, _ := relayOf(t, g)
	// Crash at exactly t=1, the arrival instant: the op wins the tie,
	// so the arrival finds the relay dead.
	out := oneShot(t, g, churnKnobs(
		failure.ChurnEvent{Time: 1, Kind: failure.ChurnCrash, Node: relay}), ModeLive, 0)
	if out.Stranded == 0 {
		t.Error("crash at the arrival instant must win the tie and strand the arrival")
	}

	// Crash early, revive at exactly t=1: the join op wins the tie, so
	// the arrival finds the relay alive again and nothing strands.
	g2 := testGraph(t, 64, 8, 31, 0)
	out = oneShot(t, g2, churnKnobs(
		failure.ChurnEvent{Time: 0.25, Kind: failure.ChurnCrash, Node: relay},
		failure.ChurnEvent{Time: 1, Kind: failure.ChurnJoin, Node: relay}), ModeLive, 0)
	if out.Stranded != 0 {
		t.Errorf("revival at the arrival instant must win the tie; stranded = %d", out.Stranded)
	}
	if out.Crashes != 1 || out.Joins != 1 {
		t.Errorf("ledger: crashes=%d joins=%d, want 1/1", out.Crashes, out.Joins)
	}
}

// TestChurnPITWaiterExpires: a lookup parks as a PIT waiter at a node
// that then dies. The pending interest there can never multicast, so
// the waiter must expire on its own timeout — not leak — strand at the
// dead wait node, and re-forward to completion.
func TestChurnPITWaiterExpires(t *testing.T) {
	g := testGraph(t, 32, 6, 31, 0)
	cfg := baseConfig()
	cfg.Mode = ModeLivePIT
	cfg.PITTimeout = 4
	cfg.PITWaiters = 4
	// m0 plants an interest for the key at node 0 during [0,1); m1
	// arrives at node 0 at t=1.5, inside the interest lifetime, and
	// parks. Node 0 crashes at t=2 with the waiter still parked.
	cfg.Churn = churnKnobs(failure.ChurnEvent{Time: 2, Kind: failure.ChurnCrash, Node: 0})
	msgs := []Message{{From: 0, Key: 16}, {From: 0, Key: 16}}
	sched := Schedule{Initial: []Injection{{Msg: 0, Time: 0}, {Msg: 1, Time: 1.5}}}
	out, err := Run(g, msgs, sched, cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if out.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want exactly the parked waiter", out.Suppressed)
	}
	if out.PITExpired != 1 {
		t.Errorf("expired = %d, want 1: the orphaned waiter must time out, not leak", out.PITExpired)
	}
	if out.MulticastFanout != 0 {
		t.Errorf("fanout = %d, want 0: the interest at the dead node can never multicast",
			out.MulticastFanout)
	}
	if out.Stranded == 0 || out.Stranded != out.StrandResumed+out.StrandDropped {
		t.Errorf("strand ledger: %d stranded, %d resumed, %d dropped",
			out.Stranded, out.StrandResumed, out.StrandDropped)
	}
	for i, res := range out.Results {
		if !res.Delivered {
			t.Errorf("lookup %d did not complete delivered", i)
		}
	}
}

// TestChurnFlashCrowdRacesKill: a flash-crowd join scheduled at the
// same instant as a correlated regional kill. Generate orders the kill
// before the flash at the shared instant, so the flash draws from the
// post-kill dead pool (it may revive just-killed nodes), and the engine
// applies both deterministically.
func TestChurnFlashCrowdRacesKill(t *testing.T) {
	build := func() *graph.Graph {
		g := testGraph(t, 128, 8, 41, 0)
		for p := 100; p < 110; p++ {
			g.Fail(metric.Point(p))
		}
		return g
	}
	spec := failure.ChurnSpec{
		KillFrac: 0.2, KillAt: 3,
		FlashJoin: 6, FlashAt: 3,
		ProbeTimeout: 2, GossipInterval: 1, GossipFanout: 1,
	}
	run := func(g *graph.Graph) (*Outcome, []failure.ChurnEvent) {
		events, err := spec.Generate(g, rng.New(43))
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig()
		cfg.Mode = ModeLive
		cfg.Churn = ChurnConfig{Events: events, ProbeTimeout: spec.ProbeTimeout,
			GossipInterval: spec.GossipInterval, GossipFanout: spec.GossipFanout}
		msgs := testMessages(t, g, 60, 44)
		out, err := Run(g, msgs, periodicSchedule(len(msgs), 4), cfg, rng.New(45))
		if err != nil {
			t.Fatal(err)
		}
		return out, events
	}
	out1, events := run(build())
	// The schedule interleaves both same-instant groups, kills first.
	lastKill, firstFlash := -1, -1
	for i, ev := range events {
		if ev.Time != 3 {
			t.Fatalf("event %d at %g, want every event at the shared instant 3", i, ev.Time)
		}
		if ev.Kind == failure.ChurnCrash {
			lastKill = i
		} else if firstFlash == -1 {
			firstFlash = i
		}
	}
	if lastKill == -1 || firstFlash == -1 || lastKill > firstFlash {
		t.Fatalf("kill must precede flash at the shared instant (lastKill=%d firstFlash=%d)",
			lastKill, firstFlash)
	}
	if out1.Crashes == 0 || out1.Joins == 0 {
		t.Fatalf("ledger: crashes=%d joins=%d, want both positive", out1.Crashes, out1.Joins)
	}
	if out1.Stranded != out1.StrandResumed+out1.StrandDropped {
		t.Errorf("strand ledger broken: %d != %d + %d",
			out1.Stranded, out1.StrandResumed, out1.StrandDropped)
	}
	out2, _ := run(build())
	if !reflect.DeepEqual(out1, out2) {
		t.Error("identical flash-vs-kill runs diverged")
	}
}

// TestChurnGossipConvergesWithoutTraffic: with zero messages the run is
// pure membership dynamics — every rumor must resolve (converged or
// abandoned), gossip must charge sends, and rejoin must rebuild links.
func TestChurnGossipConvergesWithoutTraffic(t *testing.T) {
	g := testGraph(t, 64, 8, 51, 0)
	cfg := baseConfig()
	cfg.Mode = ModeLive
	cfg.Churn = ChurnConfig{
		Events: []failure.ChurnEvent{
			{Time: 1, Kind: failure.ChurnCrash, Node: 10},
			{Time: 2, Kind: failure.ChurnCrash, Node: 40},
			{Time: 10, Kind: failure.ChurnJoin, Node: 10},
		},
		ProbeTimeout: 1, GossipInterval: 1, GossipFanout: 2, Repair: true,
	}
	out, err := Run(g, nil, Schedule{}, cfg, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashes != 2 || out.Joins != 1 {
		t.Fatalf("ledger: crashes=%d joins=%d, want 2/1", out.Crashes, out.Joins)
	}
	if got := out.RumorsConverged + out.RumorsAbandoned; got != 3 {
		t.Errorf("rumors resolved = %d, want every event's rumor (3)", got)
	}
	if out.GossipSends == 0 {
		t.Error("gossip dissemination charged no sends")
	}
	if out.MembershipLag <= 0 {
		t.Errorf("membership lag %g must be positive", out.MembershipLag)
	}
	if out.LinksRebuilt == 0 {
		t.Error("repair and rejoin rebuilt no links")
	}
	if !g.Alive(10) || g.Alive(40) {
		t.Error("final graph liveness does not match the schedule")
	}
	if g.AliveCount() != 63 {
		t.Errorf("alive count %d, want 63", g.AliveCount())
	}
}

// TestChurnDeadKeyBornFailed: every replica of a key dead at injection
// is a failed search (empty path, completed at injection), not a
// configuration error.
func TestChurnDeadKeyBornFailed(t *testing.T) {
	g := testGraph(t, 64, 8, 61, 0)
	out := oneShot(t, g, churnKnobs(
		failure.ChurnEvent{Time: 0.5, Kind: failure.ChurnCrash, Node: 32}), ModeLive, 1)
	if out.Results[0].Delivered {
		t.Error("lookup for an all-dead key must fail, not deliver")
	}
	if out.Injected != 1 {
		t.Errorf("injected = %d, want 1", out.Injected)
	}
	if len(out.Latencies) != 0 {
		t.Errorf("a born-failed lookup contributes no latency, got %v", out.Latencies)
	}
}

// TestChurnDeadOriginReattach: a lookup whose source died before its
// injection enters at the nearest alive node instead.
func TestChurnDeadOriginReattach(t *testing.T) {
	g := testGraph(t, 64, 8, 71, 0)
	out := oneShot(t, g, churnKnobs(
		failure.ChurnEvent{Time: 0.5, Kind: failure.ChurnCrash, Node: 0}), ModeLive, 1)
	if out.Reattached != 1 {
		t.Fatalf("reattached = %d, want 1", out.Reattached)
	}
	if !out.Results[0].Delivered {
		t.Error("the reattached lookup should deliver")
	}
	if p := out.Results[0].Path[0]; p == 0 || !g.Alive(p) {
		t.Errorf("walk starts at %d, want a live stand-in for the dead origin", p)
	}
}

// TestChurnExtinctNetwork: churn that kills every node makes later
// injection impossible — a reported error, not a hang or panic.
func TestChurnExtinctNetwork(t *testing.T) {
	g := testGraph(t, 16, 2, 81, 0)
	events := make([]failure.ChurnEvent, 16)
	for i := range events {
		events[i] = failure.ChurnEvent{Time: 0.5, Kind: failure.ChurnCrash, Node: metric.Point(i)}
	}
	cfg := baseConfig()
	cfg.Mode = ModeLive
	cfg.Churn = churnKnobs(events...)
	_, err := Run(g, []Message{{From: 0, Key: 8}},
		Schedule{Initial: []Injection{{Msg: 0, Time: 1}}}, cfg, rng.New(83))
	if err == nil || !strings.Contains(err.Error(), "extinguished") {
		t.Fatalf("err = %v, want the extinct-network error", err)
	}
}
