package engine

import (
	"repro/internal/mathx"
	"repro/internal/metric"
)

// Injection schedules message Msg to enter the network at virtual time
// Time. (Package load re-exports this type as load.Injection, so the
// arrival models there feed the engine directly.)
type Injection struct {
	Msg  int
	Time float64
}

// Schedule is the arrival side of a run: the injections known before
// the event loop starts, plus the closed-loop feedback hook. Completed
// is consulted whenever a message leaves the system — its last service
// finished, delivered or not — and returns the injection that
// completion unlocks, if any; the returned time must not precede the
// completion time. Both fields are consumed only from sequential
// event-loop code: the sharded live loop consults them at admission
// and during the barrier's ordered replay, never from a parallel
// drain.
type Schedule struct {
	Initial   []Injection
	Completed func(msg int, at float64) (Injection, bool)
}

// event is one message reaching its idx-th visited node at a virtual
// time: the engine's single event type. Events are ordered by
// (time, msg, idx) — a strict total order, since no message reaches
// two nodes at the same instant — so the heap's pop sequence, and with
// it the whole simulation, is independent of push order. The
// pending-interest response path reuses the type for interest
// timeouts, marked by a negative idx (the per-message suppression
// ordinal; see pit.go), which keeps the order total because a hop
// event's idx is never negative.
type event struct {
	time float64
	msg  int // message index; the deterministic tie-break
	idx  int // position in the message's visited sequence
}

// eventLess is the engine's total event order.
func eventLess(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.msg != b.msg {
		return a.msg < b.msg
	}
	return a.idx < b.idx
}

// newEventHeap returns an event heap with room for capacity events.
func newEventHeap(capacity int) *mathx.Heap[event] {
	return mathx.NewHeap(eventLess, capacity)
}

// nodeQueue tracks one node's FIFO: the virtual time its server frees
// up, and the finish times of messages still in the system (for queue-
// depth accounting). finish is consumed front-to-back, so a head index
// replaces repeated slicing.
type nodeQueue struct {
	busyUntil float64
	finish    []float64
	head      int
}

// depthAt drains completed services and returns how many messages are
// still queued or in service at time t. A service finishing exactly at
// t has left the system; one arriving exactly at t is in it. This is
// the engine's O(1)-amortized live depth lookup: each finish entry is
// pushed once and drained once, however often routing probes the
// queue.
func (q *nodeQueue) depthAt(t float64) int {
	for q.head < len(q.finish) && q.finish[q.head] <= t {
		q.head++
	}
	if q.head == len(q.finish) {
		q.finish = q.finish[:0]
		q.head = 0
	}
	return len(q.finish) - q.head
}

// replayMsg is one pre-routed message entering a scratch replay: an
// injection time (assigned by the schedule during the replay), the
// node sequence its search serviced, and whether it delivered.
type replayMsg struct {
	inject    float64
	path      []metric.Point
	delivered bool
}

// replayOutcome aggregates one scratch replay.
type replayOutcome struct {
	loads         []int     // services charged per grid point
	maxQueueDepth int       // peak of any node's queue (incl. in service)
	latencies     []float64 // end-to-end latency of each delivered message
	services      int       // total message-hops serviced
	injected      int       // messages the schedule actually injected
	lastInject    float64   // latest injection time that occurred
	makespan      float64   // finish time of the last service
	probeDepths   []int     // per-node in-system count at the probe time (nil unless probed)
}

// replay runs pre-routed messages against per-node FIFO queues in
// virtual time: the whole-schedule form of the engine's event loop,
// kept as a standalone function because the depth probes of
// closed-loop snapshot runs need to replay a traffic prefix in
// isolation (see runner.prefixDepths) and because it is the executable
// specification the engine's incremental loop is tested against.
//
// Every node of a message's path serves it for serviceTime ticks, one
// message at a time; the message leaves node i the instant its service
// there completes and joins node i+1's queue. A message's latency is
// the completion of service at its final path node minus its injection
// time. Injection times come from `initial` plus the `completed` hook
// (the closed-loop feedback path); a message with an empty path
// occupies no queue and completes the instant it is injected, still
// unlocking its successor.
//
// A non-negative probe time additionally records, per node, how many
// messages were in system (queued or in service) at that instant: a
// service with arrival time ≤ probe and finish > probe counts,
// matching depthAt's boundary convention.
func replay(size int, msgs []replayMsg, serviceTime float64,
	initial []Injection, completed func(msg int, at float64) (Injection, bool),
	probe float64) replayOutcome {
	out := replayOutcome{loads: make([]int, size)}
	if probe >= 0 {
		out.probeDepths = make([]int, size)
	}
	queues := make([]nodeQueue, size)
	h := newEventHeap(len(initial))
	// enqueue admits one injection, chasing chains of path-less messages
	// (which complete immediately and may unlock further injections).
	enqueue := func(inj Injection) {
		for {
			msgs[inj.Msg].inject = inj.Time
			out.injected++
			if inj.Time > out.lastInject {
				out.lastInject = inj.Time
			}
			if len(msgs[inj.Msg].path) > 0 {
				h.Push(event{time: inj.Time, msg: inj.Msg, idx: 0})
				return
			}
			if completed == nil {
				return
			}
			next, ok := completed(inj.Msg, inj.Time)
			if !ok {
				return
			}
			inj = next
		}
	}
	for _, inj := range initial {
		enqueue(inj)
	}
	for h.Len() > 0 {
		a := h.Pop()
		msg := &msgs[a.msg]
		node := msg.path[a.idx]
		q := &queues[node]
		if depth := q.depthAt(a.time) + 1; depth > out.maxQueueDepth {
			out.maxQueueDepth = depth
		}
		start := a.time
		if q.busyUntil > start {
			start = q.busyUntil
		}
		finish := start + serviceTime
		q.busyUntil = finish
		q.finish = append(q.finish, finish)
		out.loads[node]++
		out.services++
		if finish > out.makespan {
			out.makespan = finish
		}
		if out.probeDepths != nil && a.time <= probe && probe < finish {
			out.probeDepths[node]++
		}
		if a.idx+1 < len(msg.path) {
			h.Push(event{time: finish, msg: a.msg, idx: a.idx + 1})
			continue
		}
		if msg.delivered {
			out.latencies = append(out.latencies, finish-msg.inject)
		}
		if completed != nil {
			if next, ok := completed(a.msg, finish); ok {
				enqueue(next)
			}
		}
	}
	return out
}
