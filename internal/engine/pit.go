package engine

import (
	"repro/internal/metric"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// This file is ModeLivePIT: per-node pending-interest tables and the
// answer leg, in both the sequential loop (runner methods) and the
// sharded loop (shard methods — structural twins, with globally-ordered
// side effects deferred to the barrier like the rest of shard.go).
//
// The request leg works like plain live mode — one FIFO service per
// hop, the walker deciding the next hop at each service — with two
// differences. Every request service plants (or refreshes) a pending
// interest at its node, keyed (node, key), expiring PITTimeout after
// the service finishes. And a request *arriving* at a node whose
// same-key interest is still pending does not enter the queue at all:
// it parks as a waiter on that entry, with its own timeout event in
// case the answer never comes. That suppression is the network-wide
// generalization of per-queue aggregation — the two requests need not
// be queued at the same instant, only within an interest lifetime.
// Suppression is once per lifetime per lookup: a wait that expires
// marks its message expiredOnce, and such a lookup forwards past every
// later pending interest (while still planting its own). Without that
// rule a retrying waiter could park behind another stranded carrier
// and chain timeout upon timeout; with it, the protocol's worst lawful
// wait is exactly one interest lifetime.
//
// Delivery flips the message onto its answer leg: the answer retraces
// the reverse of the request path hop by hop, charging the same FIFO
// capacity (one service per node, the delivery target and the origin
// included). Each answer service consumes the node's pending interest
// and multicasts to its waiters: every waiter forks its own answer leg
// from the release point back down its own partial path to its origin.
// A lookup's latency is measured to *answer receipt* — the finish of
// the answer service at its origin — not to delivery.
//
// Event encoding. Request and answer arrivals use the usual
// nonnegative monotone idx chain (each service pushes the popped
// idx+1; a released waiter continues from its suppressed arrival's
// idx). Timeout events carry idx = -waits[msg], the per-message
// suppression ordinal — negative so they collide with nothing, unique
// so a stale timeout (its wait already ended by answer or by an
// earlier expiry) is detected by comparing against the pitWait
// registry and dropped. In the sharded loop pitWait is shard-local:
// a waiter parks at one node, so its suppression, release, and
// timeout all pop at that node's shard, and a stale timeout touches
// nothing but that shard's own map.
//
// Shard eligibility. PIT runs stay shardable even under closed-loop
// schedules (unlike aggregation, see Config.Plan): every completion —
// leader at its origin's answer service, waiter at its release
// service or its origin's answer service — carries a service finish
// time, which lies at or beyond the window horizon, so the injections
// it unlocks always belong to later windows.

// pitEntry is one pending interest: when it lapses and the suppressed
// lookups waiting on the answer. The waiter list may hold stale
// entries (waits ended by timeout); refreshes compact it and releases
// check the pitWait registry, so staleness costs nothing but slack in
// the PITWaiters bound.
type pitEntry struct {
	expiry  float64
	waiters []int
	// owner is the lookup whose service most recently planted or
	// refreshed this interest. A backtracking walk can revisit a node
	// it already forwarded through; suppressing it against its own
	// interest would park it waiting for itself until the timeout, so
	// the owner is exempt.
	owner int
}

// ---------------------------------------------------------------------
// Sequential loop.
// ---------------------------------------------------------------------

// processPIT is the PIT-mode arrival dispatcher, the ModeLivePIT twin
// of processOne's live path.
func (r *runner) processPIT(a event) {
	m := a.msg
	if a.idx < 0 {
		// Timeout candidate: valid only if it is the waiter's current
		// timeout — a release or an earlier expiry consumed stale ones.
		if c, ok := r.pitWait[m]; !ok || c != -a.idx {
			return
		}
		delete(r.pitWait, m)
		r.expiredOnce[m] = true
		r.out.PITExpired++
		if r.tel != nil {
			r.tel.PITExpire(a.time)
		}
		if r.churn != nil && !r.g.Alive(r.pos[m]) {
			// The wait node died under the waiter: no service can happen
			// here, so the re-forward goes through the strand discipline —
			// one more probe window, then a serviceless step out.
			r.strand(m, r.waitIdx[m], a.time)
			return
		}
		// The wait is over: re-forward from the wait node, skipping the
		// suppression check — the entry here demonstrably failed to
		// produce an answer within an interest lifetime.
		r.servePIT(a.time, r.waitIdx[m], m)
		return
	}
	if a.idx == 0 && !r.admitLive(a) {
		return
	}
	if r.churn != nil && !r.g.Alive(r.pos[m]) {
		// Request or answer, the arrival found its node dead: strand.
		// An interest pending here will never multicast — its waiters
		// expire on their own timeouts, the waiters-must-expire rule.
		r.strand(m, a.idx, a.time)
		return
	}
	if r.answering[m] {
		r.serveAnswer(a)
		return
	}
	node := r.pos[m]
	if e, ok := r.pit[aggKey{node: node, key: r.msgs[m].Key}]; ok &&
		e.owner != m && !r.expiredOnce[m] && a.time < e.expiry && len(e.waiters) < r.cfg.PITWaiters {
		// A same-key interest is pending here: park instead of
		// forwarding, with a timeout in case the answer never comes.
		r.waits[m]++
		r.pitWait[m] = r.waits[m]
		r.waitIdx[m] = a.idx
		e.waiters = append(e.waiters, m)
		r.out.Suppressed++
		if r.tel != nil {
			r.tel.Suppress(a.time)
		}
		r.h.Push(event{time: a.time + r.cfg.PITTimeout, msg: m, idx: -r.waits[m]})
		return
	}
	r.servePIT(a.time, a.idx, m)
}

// serveAt runs one FIFO service at node for an arrival at time `at`,
// accounting it to the outcome and the congestion counters.
func (r *runner) serveAt(node metric.Point, at float64) (start, finish float64, depth int) {
	q := &r.queues[node]
	depth = q.depthAt(at) + 1
	if depth > r.out.MaxQueueDepth {
		r.out.MaxQueueDepth = depth
	}
	start = at
	if q.busyUntil > start {
		start = q.busyUntil
	}
	finish = start + r.serviceTime
	q.busyUntil = finish
	q.finish = append(q.finish, finish)
	r.out.Loads[node]++
	r.out.Services++
	if r.tel != nil {
		r.tel.Service(at, depth)
	}
	if finish > r.out.Makespan {
		r.out.Makespan = finish
	}
	r.charged[node]++
	r.totalCharged++
	return start, finish, depth
}

// servePIT services message m's request arrival (popped with event
// index `idx`) at its current node: plant or refresh the interest,
// step the walker, and either forward, fail, or flip onto the answer
// leg.
func (r *runner) servePIT(at float64, idx, m int) {
	node := r.pos[m]
	start, finish, depth := r.serveAt(node, at)
	pk := aggKey{node: node, key: r.msgs[m].Key}
	e := r.pit[pk]
	if e == nil {
		e = &pitEntry{}
		r.pit[pk] = e
	} else if len(e.waiters) > 0 {
		e.waiters = r.liveWaiters(r.pitWait, node, e.waiters)
	}
	e.expiry = finish + r.cfg.PITTimeout
	e.owner = m
	w := r.walkers[m]
	r.now = at
	stepped := w.Step()
	if r.tel != nil {
		r.tel.Hop(m, node, at, start, finish, depth, hopDecision(w))
	}
	if stepped {
		r.pos[m] = w.At()
		r.h.Push(event{time: finish, msg: m, idx: idx + 1})
		return
	}
	res := w.Result()
	if !res.Delivered {
		r.completeLive(m, finish, res)
		return
	}
	r.spawnAnswer(m, finish, res)
	r.h.Push(event{time: finish, msg: m, idx: idx + 1})
}

// spawnAnswer flips a delivered lookup onto its answer leg: the
// reverse of the full visited path, starting with a generation service
// at the delivery target itself. Delivery, not answer receipt, is the
// popularity signal, so cache-on-path observes here.
func (r *runner) spawnAnswer(m int, finish float64, res route.Result) {
	if r.caching {
		r.cfg.Placement.Observe(r.msgs[m].Key, res.Path)
		if r.tel != nil {
			r.cacheDelta(finish)
		}
	}
	r.answering[m] = true
	r.ansPath[m] = res.Path
	r.ansAt[m] = len(res.Path) - 1
	// The delivering step ended the walk without a service at the
	// target (live-mode discipline: delivery is decided during the
	// penultimate node's service), so the generation service is the
	// target's first and the answer leg is one service per path node.
	r.pos[m] = res.Path[len(res.Path)-1]
	r.ansTarget[m] = res.Target
}

// serveAnswer services one answer arrival: the answer passes through
// this node, satisfying its pending interest (multicast), and moves
// one hop down the reverse path — or, at index -1, has reached the
// lookup's origin: receipt, the completion instant.
func (r *runner) serveAnswer(a event) {
	m := a.msg
	node := r.pos[m]
	start, finish, depth := r.serveAt(node, a.time)
	if r.tel != nil {
		r.tel.Hop(m, node, a.time, start, finish, depth, telemetry.DecisionAnswer)
	}
	r.multicast(node, r.msgs[m].Key, r.ansTarget[m], finish)
	r.ansAt[m]--
	if r.ansAt[m] >= 0 {
		r.pos[m] = r.ansPath[m][r.ansAt[m]]
		r.h.Push(event{time: finish, msg: m, idx: a.idx + 1})
		return
	}
	r.completeLive(m, finish, r.answerResult(m))
}

// multicast releases every still-valid waiter on this node's pending
// interest for key: each forks its own answer leg from the release
// point back down its partial path. A waiter suppressed at its own
// origin has no leg to retrace — this service is its receipt.
func (r *runner) multicast(node, key, target metric.Point, finish float64) {
	pk := aggKey{node: node, key: key}
	e, ok := r.pit[pk]
	if !ok {
		return
	}
	delete(r.pit, pk)
	fan := 0
	for _, w := range e.waiters {
		if _, waiting := r.pitWait[w]; !waiting || r.pos[w] != node {
			continue // wait already ended, or re-parked elsewhere
		}
		delete(r.pitWait, w)
		fan++
		path := r.walkers[w].Visited()
		r.answering[w] = true
		r.ansPath[w] = path
		r.ansAt[w] = len(path) - 2
		r.ansTarget[w] = target
		if r.ansAt[w] < 0 {
			r.completeLive(w, finish, r.answerResult(w))
			continue
		}
		r.pos[w] = path[r.ansAt[w]]
		r.h.Push(event{time: finish, msg: w, idx: r.waitIdx[w] + 1})
	}
	if fan > 0 {
		r.out.MulticastFanout += fan
		if r.tel != nil {
			r.tel.Multicast(finish, fan)
		}
	}
}

// answerResult is a completing lookup's final Result: its own walk so
// far, marked delivered at the answering target. For a released waiter
// that is a partial path ending at the release point — the same
// carrier-answered shape aggregation reports for coalesced lookups.
func (r *runner) answerResult(m int) route.Result {
	res := r.walkers[m].Result()
	res.Delivered = true
	res.Target = r.ansTarget[m]
	return res
}

// liveWaiters compacts a waiter list in place, keeping only lookups
// still parked at this node. pitWait is passed in because the sharded
// loop keys validity per shard.
func (r *runner) liveWaiters(pitWait map[int]int, node metric.Point, ws []int) []int {
	kept := ws[:0]
	for _, w := range ws {
		if _, ok := pitWait[w]; ok && r.pos[w] == node {
			kept = append(kept, w)
		}
	}
	return kept
}

// ---------------------------------------------------------------------
// Sharded loop. Same discipline; message and node state is shard-owned
// at every pop (a waiter parks at one node, so its whole wait lives on
// one shard), and completions defer to the barrier as doneRecs. One
// answer service can complete several messages — origin-parked waiters
// plus possibly the answering lookup itself — so records carry a
// within-pop ordinal to keep the barrier replay in the sequential
// loop's exact side-effect order.
// ---------------------------------------------------------------------

// processPIT is the sharded twin of runner.processPIT. Admission
// already created the walker (horizon.go), so there is no idx-0
// branch.
func (sh *shard) processPIT(r *runner, s *shardSet, a event) {
	m := a.msg
	if a.idx < 0 {
		if c, ok := sh.pitWait[m]; !ok || c != -a.idx {
			return
		}
		delete(sh.pitWait, m)
		r.expiredOnce[m] = true
		sh.expired++
		if sh.telView != nil {
			sh.telView.PITExpire(a.time)
		}
		if r.churn != nil && !r.g.Alive(r.pos[m]) {
			// The wait node died under the waiter: no service can happen
			// here, so the re-forward goes through the strand discipline,
			// parked at the barrier (see shard.process).
			sh.done = append(sh.done, doneRec{at: a, msg: m, strand: true, leader: r.waitIdx[m]})
			return
		}
		sh.servePIT(r, s, a, r.waitIdx[m])
		return
	}
	if r.churn != nil && !r.g.Alive(r.pos[m]) {
		// Request or answer, the arrival found its node dead: strand,
		// deferred to the barrier in global event order.
		sh.done = append(sh.done, doneRec{at: a, msg: m, strand: true, leader: a.idx})
		return
	}
	if r.answering[m] {
		sh.serveAnswer(r, s, a)
		return
	}
	node := r.pos[m]
	if e, ok := sh.pit[aggKey{node: node, key: r.msgs[m].Key}]; ok &&
		e.owner != m && !r.expiredOnce[m] && a.time < e.expiry && len(e.waiters) < r.cfg.PITWaiters {
		r.waits[m]++
		sh.pitWait[m] = r.waits[m]
		r.waitIdx[m] = a.idx
		e.waiters = append(e.waiters, m)
		sh.suppressed++
		if sh.telView != nil {
			sh.telView.Suppress(a.time)
		}
		// PITTimeout may be shorter than the lookahead, so the timeout
		// can land inside the current window — safe, because it fires at
		// the wait node: same shard, same heap, same pop order as the
		// sequential loop.
		sh.h.Push(event{time: a.time + r.cfg.PITTimeout, msg: m, idx: -r.waits[m]})
		return
	}
	sh.servePIT(r, s, a, a.idx)
}

// serveAt is the sharded FIFO service: window-local counters, no
// congestion charge (a shardable run has no congestion signal).
func (sh *shard) serveAt(r *runner, node metric.Point, at float64) (start, finish float64, depth int) {
	q := &r.queues[node]
	depth = q.depthAt(at) + 1
	if depth > sh.maxQueueDepth {
		sh.maxQueueDepth = depth
	}
	start = at
	if q.busyUntil > start {
		start = q.busyUntil
	}
	finish = start + r.serviceTime
	q.busyUntil = finish
	q.finish = append(q.finish, finish)
	r.out.Loads[node]++
	sh.services++
	if sh.telView != nil {
		sh.telView.Service(at, depth)
	}
	if finish > sh.makespan {
		sh.makespan = finish
	}
	return start, finish, depth
}

// push routes a successor event to its node's shard: own heap or
// outbox. Cross-shard events always carry time ≥ the window horizon
// (they are service finishes of events popped at or after the window
// start), so merging them at the barrier preserves the lookahead.
func (sh *shard) push(s *shardSet, node metric.Point, e event) {
	if d := s.owner(node); d == sh {
		sh.h.Push(e)
	} else {
		sh.outbox[d.id] = append(sh.outbox[d.id], e)
	}
}

// servePIT is the sharded twin of runner.servePIT. a is the popped
// event (the doneRec replay key); fwdIdx is the idx the forward chain
// continues from — a.idx normally, the suppressed arrival's idx on a
// timeout re-forward.
func (sh *shard) servePIT(r *runner, s *shardSet, a event, fwdIdx int) {
	m := a.msg
	node := r.pos[m]
	start, finish, depth := sh.serveAt(r, node, a.time)
	pk := aggKey{node: node, key: r.msgs[m].Key}
	e := sh.pit[pk]
	if e == nil {
		e = &pitEntry{}
		sh.pit[pk] = e
	} else if len(e.waiters) > 0 {
		e.waiters = r.liveWaiters(sh.pitWait, node, e.waiters)
	}
	e.expiry = finish + r.cfg.PITTimeout
	e.owner = m
	w := r.walkers[m]
	stepped := w.Step()
	if sh.telView != nil {
		sh.telView.Hop(m, node, a.time, start, finish, depth, hopDecision(w))
	}
	if stepped {
		next := w.At()
		r.pos[m] = next
		sh.push(s, next, event{time: finish, msg: m, idx: fwdIdx + 1})
		return
	}
	res := w.Result()
	if !res.Delivered {
		sh.done = append(sh.done, doneRec{at: a, msg: m, finish: finish, res: res})
		return
	}
	// Delivered: flip onto the answer leg. No cache observation here —
	// caching configurations never reach the sharded loop (Config.Plan).
	// The generation service happens at the target, which may live on
	// another shard; the event carries a service finish ≥ the window
	// horizon, so the outbox hand-off is as safe as a forwarding hop.
	r.answering[m] = true
	r.ansPath[m] = res.Path
	r.ansAt[m] = len(res.Path) - 1
	target := res.Path[len(res.Path)-1]
	r.pos[m] = target
	r.ansTarget[m] = res.Target
	sh.push(s, target, event{time: finish, msg: m, idx: fwdIdx + 1})
}

// serveAnswer is the sharded twin of runner.serveAnswer: multicast
// releases write waiter state owned by this shard (waiters park at
// this node), released legs hop away through push, and completions
// defer with within-pop ordinals.
func (sh *shard) serveAnswer(r *runner, s *shardSet, a event) {
	m := a.msg
	node := r.pos[m]
	start, finish, depth := sh.serveAt(r, node, a.time)
	if sh.telView != nil {
		sh.telView.Hop(m, node, a.time, start, finish, depth, telemetry.DecisionAnswer)
	}
	seq := 0
	pk := aggKey{node: node, key: r.msgs[m].Key}
	if e, ok := sh.pit[pk]; ok {
		delete(sh.pit, pk)
		fan := 0
		for _, w := range e.waiters {
			if _, waiting := sh.pitWait[w]; !waiting || r.pos[w] != node {
				continue
			}
			delete(sh.pitWait, w)
			fan++
			path := r.walkers[w].Visited()
			r.answering[w] = true
			r.ansPath[w] = path
			r.ansAt[w] = len(path) - 2
			r.ansTarget[w] = r.ansTarget[m]
			if r.ansAt[w] < 0 {
				sh.done = append(sh.done, doneRec{at: a, seq: seq, msg: w, finish: finish, res: r.answerResult(w)})
				seq++
				continue
			}
			next := path[r.ansAt[w]]
			r.pos[w] = next
			sh.push(s, next, event{time: finish, msg: w, idx: r.waitIdx[w] + 1})
		}
		if fan > 0 {
			sh.fanout += fan
			if sh.telView != nil {
				sh.telView.Multicast(finish, fan)
			}
		}
	}
	r.ansAt[m]--
	if r.ansAt[m] >= 0 {
		next := r.ansPath[m][r.ansAt[m]]
		r.pos[m] = next
		sh.push(s, next, event{time: finish, msg: m, idx: a.idx + 1})
		return
	}
	sh.done = append(sh.done, doneRec{at: a, seq: seq, msg: m, finish: finish, res: r.answerResult(m)})
}
