package engine

import (
	"reflect"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

// shardCounts is the acceptance matrix: 1 is the sequential reference,
// 2 and 4 are even splits, 7 leaves shards of unequal width and
// exercises the partition rounding.
var shardCounts = []int{1, 2, 4, 7}

// TestShardOfPartition pins the partition's shape: every node owned by
// exactly one shard, ownership monotone in the point order (so regions
// are contiguous), and every shard nonempty whenever shards ≤ size.
func TestShardOfPartition(t *testing.T) {
	for _, size := range []int{1, 2, 7, 64, 1000} {
		for shards := 1; shards <= size && shards <= 9; shards++ {
			seen := make([]int, shards)
			prev := 0
			for p := 0; p < size; p++ {
				s := shardOf(metric.Point(p), shards, size)
				if s < 0 || s >= shards {
					t.Fatalf("size=%d shards=%d: shardOf(%d)=%d out of range", size, shards, p, s)
				}
				if s < prev {
					t.Fatalf("size=%d shards=%d: ownership not monotone at %d", size, shards, p)
				}
				prev = s
				seen[s]++
			}
			for s, n := range seen {
				if n == 0 {
					t.Fatalf("size=%d shards=%d: shard %d owns no nodes", size, shards, s)
				}
			}
		}
	}
}

// runShardScenario runs one live scenario at a given shard count.
func runShardScenario(t *testing.T, cfg Config, sched Schedule, shards int) (*Outcome, error) {
	t.Helper()
	g := testGraph(t, 512, 9, 3, 5)
	msgs := testMessages(t, g, 300, 4)
	cfg.Shards = shards
	return Run(g, msgs, sched, cfg, rng.New(9))
}

// TestShardCountInvariance is the tentpole acceptance property at the
// engine level: live outcomes are byte-identical for every shard
// count, across the eligible configurations (plain live, live with
// static replication, live+aggregate open-loop, closed-loop live) and
// the documented sequential fallbacks (congestion feedback, and
// aggregation under a closed-loop schedule).
func TestShardCountInvariance(t *testing.T) {
	closed := func(n, clients int, think float64) Schedule {
		initial := make([]Injection, clients)
		for i := range initial {
			initial[i] = Injection{Msg: i, Time: float64(i) * 0.01}
		}
		return Schedule{
			Initial: initial,
			Completed: func(msg int, at float64) (Injection, bool) {
				next := msg + clients
				if next >= n {
					return Injection{}, false
				}
				return Injection{Msg: next, Time: at + think}, true
			},
		}
	}
	cases := []struct {
		name  string
		cfg   func(t *testing.T) Config
		sched Schedule
	}{
		{"live", func(t *testing.T) Config {
			cfg := baseConfig()
			cfg.Mode = ModeLive
			return cfg
		}, periodicSchedule(300, 8)},
		{"live+replicas", func(t *testing.T) Config {
			cfg := baseConfig()
			cfg.Mode = ModeLive
			g := testGraph(t, 512, 9, 3, 5)
			cfg.Placement = newTestPlacement(t, g, 4, 77)
			return cfg
		}, periodicSchedule(300, 8)},
		{"live+aggregate", func(t *testing.T) Config {
			cfg := baseConfig()
			cfg.Mode = ModeLiveAggregate
			return cfg
		}, periodicSchedule(300, 32)},
		{"live+closedloop", func(t *testing.T) Config {
			cfg := baseConfig()
			cfg.Mode = ModeLive
			return cfg
		}, closed(300, 16, 0.5)},
		{"live+closedloop+zerothink", func(t *testing.T) Config {
			cfg := baseConfig()
			cfg.Mode = ModeLive
			return cfg
		}, closed(300, 16, 0)},
		// Sequential fallbacks: invariance must hold trivially.
		{"fallback:depth-penalty", func(t *testing.T) Config {
			cfg := baseConfig()
			cfg.Mode = ModeLive
			cfg.DepthPenalty = 1
			return cfg
		}, periodicSchedule(300, 8)},
		{"fallback:aggregate+closedloop", func(t *testing.T) Config {
			cfg := baseConfig()
			cfg.Mode = ModeLiveAggregate
			return cfg
		}, closed(300, 16, 0.5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := runShardScenario(t, tc.cfg(t), tc.sched, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range shardCounts[1:] {
				// Placements memoize internally; rebuild the config so each
				// shard count sees an identically fresh placement.
				got, err := runShardScenario(t, tc.cfg(t), tc.sched, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				// The resolved plan legitimately differs across shard
				// counts; the invariance contract covers the simulation.
				got.Plan, got.PlanReason = base.Plan, base.PlanReason
				if !reflect.DeepEqual(base, got) {
					t.Errorf("shards=%d diverged from the sequential reference", shards)
				}
			}
		})
	}
}

// TestShardedErrorMatchesSequential pins the failure contract: a
// walker-creation error (dead origin) aborts the run with the same
// error at every shard count — admission processes injections in the
// same (time, msg) order the sequential loop pops them in.
func TestShardedErrorMatchesSequential(t *testing.T) {
	g := testGraph(t, 512, 9, 3, 5)
	msgs := testMessages(t, g, 64, 4)
	msgs[17].From = 5 // failEvery=5 kills node 5: injection 17 must error
	cfg := baseConfig()
	cfg.Mode = ModeLive
	var want error
	for _, shards := range shardCounts {
		cfg.Shards = shards
		_, err := Run(g, msgs, periodicSchedule(len(msgs), 8), cfg, rng.New(9))
		if err == nil {
			t.Fatalf("shards=%d: dead origin accepted", shards)
		}
		if shards == 1 {
			want = err
		} else if err.Error() != want.Error() {
			t.Errorf("shards=%d error %q, want %q", shards, err, want)
		}
	}
}
