package engine

import (
	"testing"

	"repro/internal/metric"
)

// pretimed turns the messages' pre-set inject fields into the up-front
// schedule replay expects — the open-loop shape of every test that
// does not exercise the completion feedback.
func pretimed(msgs []replayMsg) []Injection {
	out := make([]Injection, len(msgs))
	for i, m := range msgs {
		out[i] = Injection{Msg: i, Time: m.inject}
	}
	return out
}

func TestReplaySingleMessage(t *testing.T) {
	// One message over three nodes at capacity 1: one tick of service
	// per node, no queueing, latency 3.
	msgs := []replayMsg{{
		inject:    0,
		path:      []metric.Point{0, 1, 2},
		delivered: true,
	}}
	out := replay(4, msgs, 1, pretimed(msgs), nil, -1)
	if out.services != 3 {
		t.Errorf("services = %d, want 3", out.services)
	}
	for p, want := range []int{1, 1, 1, 0} {
		if out.loads[p] != want {
			t.Errorf("loads[%d] = %d, want %d", p, out.loads[p], want)
		}
	}
	if out.maxQueueDepth != 1 {
		t.Errorf("maxQueueDepth = %d, want 1", out.maxQueueDepth)
	}
	if len(out.latencies) != 1 || out.latencies[0] != 3 {
		t.Errorf("latencies = %v, want [3]", out.latencies)
	}
	if out.makespan != 3 {
		t.Errorf("makespan = %v, want 3", out.makespan)
	}
	if out.injected != 1 || out.lastInject != 0 {
		t.Errorf("injected = %d at %v, want 1 at 0", out.injected, out.lastInject)
	}
}

func TestReplayContention(t *testing.T) {
	// Two messages injected simultaneously through the same single
	// node: FIFO order by message id, the second waits a full service.
	msgs := []replayMsg{
		{inject: 0, path: []metric.Point{5}, delivered: true},
		{inject: 0, path: []metric.Point{5}, delivered: true},
	}
	out := replay(8, msgs, 2, pretimed(msgs), nil, -1)
	if out.loads[5] != 2 {
		t.Errorf("loads[5] = %d, want 2", out.loads[5])
	}
	if out.maxQueueDepth != 2 {
		t.Errorf("maxQueueDepth = %d, want 2", out.maxQueueDepth)
	}
	want := []float64{2, 4}
	if len(out.latencies) != 2 || out.latencies[0] != want[0] || out.latencies[1] != want[1] {
		t.Errorf("latencies = %v, want %v", out.latencies, want)
	}
}

func TestReplayFailedMessageChargesLoad(t *testing.T) {
	msgs := []replayMsg{
		{inject: 0, path: []metric.Point{1, 2}, delivered: false},
	}
	out := replay(4, msgs, 1, pretimed(msgs), nil, -1)
	if out.loads[1] != 1 || out.loads[2] != 1 {
		t.Errorf("failed message should still be charged: %v", out.loads)
	}
	if len(out.latencies) != 0 {
		t.Errorf("failed message must not contribute latency: %v", out.latencies)
	}
}

func TestReplayIdleServerDrains(t *testing.T) {
	// Two messages far apart in time never queue behind each other.
	msgs := []replayMsg{
		{inject: 0, path: []metric.Point{3}, delivered: true},
		{inject: 100, path: []metric.Point{3}, delivered: true},
	}
	out := replay(4, msgs, 1, pretimed(msgs), nil, -1)
	if out.maxQueueDepth != 1 {
		t.Errorf("maxQueueDepth = %d, want 1", out.maxQueueDepth)
	}
	if out.latencies[1] != 1 {
		t.Errorf("second latency = %v, want 1 (no waiting)", out.latencies[1])
	}
}

func TestReplayEmpty(t *testing.T) {
	// No messages at all: the replay must return a zero outcome, not
	// panic or fabricate services.
	out := replay(4, nil, 1, nil, nil, -1)
	if out.services != 0 || out.maxQueueDepth != 0 || out.injected != 0 {
		t.Errorf("empty replay produced work: %+v", out)
	}
	if out.makespan != 0 || len(out.latencies) != 0 {
		t.Errorf("empty replay produced time: %+v", out)
	}
	// Messages whose searches produced no path (an exhausted graph)
	// occupy no queues but still count as injected.
	msgs := []replayMsg{{inject: 2}, {inject: 5}}
	out = replay(4, msgs, 1, pretimed(msgs), nil, -1)
	if out.services != 0 || out.injected != 2 || out.lastInject != 5 {
		t.Errorf("path-less messages: services=%d injected=%d last=%v",
			out.services, out.injected, out.lastInject)
	}
}

func TestDepthAtBoundaries(t *testing.T) {
	// depthAt's convention: a service finishing exactly at t has left;
	// the count never goes negative, and draining resets the buffer.
	q := nodeQueue{finish: []float64{1, 2, 2, 4}}
	for _, tc := range []struct {
		t    float64
		want int
	}{
		{0, 4},
		{1 - 1e-12, 4},
		{1, 3}, // finish == t drains
		{2, 1}, // both t=2 departures drain together
		{3.999, 1},
		{4, 0},
		{100, 0},
	} {
		if got := q.depthAt(tc.t); got != tc.want {
			t.Errorf("depthAt(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	if len(q.finish) != 0 || q.head != 0 {
		t.Errorf("fully drained queue should reset its buffer: %+v", q)
	}
}

func TestReplayProbeBoundaries(t *testing.T) {
	// One message served on node 1 over [0,1), then node 2 over [1,2).
	// The probe convention matches depthAt: in system when
	// arrival ≤ probe < finish.
	msgs := []replayMsg{{inject: 0, path: []metric.Point{1, 2}, delivered: true}}
	for _, tc := range []struct {
		probe float64
		want  []int
	}{
		{0, []int{0, 1, 0, 0}},   // arrival instant counts
		{0.5, []int{0, 1, 0, 0}}, // mid-service
		{1, []int{0, 0, 1, 0}},   // finish instant has left node 1, entered node 2
		{2, []int{0, 0, 0, 0}},   // everything drained
	} {
		out := replay(4, msgs, 1, pretimed(msgs), nil, tc.probe)
		for p, want := range tc.want {
			if out.probeDepths[p] != want {
				t.Errorf("probe %v: depth[%d] = %d, want %d", tc.probe, p, out.probeDepths[p], want)
			}
		}
	}
	// Without a probe the depth vector stays nil.
	if out := replay(4, msgs, 1, pretimed(msgs), nil, -1); out.probeDepths != nil {
		t.Errorf("unprobed replay allocated probeDepths: %v", out.probeDepths)
	}
}

func TestReplayClosedLoopFeedback(t *testing.T) {
	// Two messages chained by a completion hook: message 1 may only
	// inject once message 0 completes, plus 3 ticks of think time.
	msgs := []replayMsg{
		{path: []metric.Point{0, 1}, delivered: true},
		{path: []metric.Point{0}, delivered: true},
	}
	completed := func(m int, at float64) (Injection, bool) {
		if m == 0 {
			return Injection{Msg: 1, Time: at + 3}, true
		}
		return Injection{}, false
	}
	out := replay(4, msgs, 1, []Injection{{Msg: 0, Time: 0}}, completed, -1)
	if out.injected != 2 {
		t.Fatalf("injected = %d, want 2", out.injected)
	}
	// Message 0 completes at 2, message 1 injects at 5 and finishes at 6.
	if out.lastInject != 5 {
		t.Errorf("lastInject = %v, want 5", out.lastInject)
	}
	if out.makespan != 6 {
		t.Errorf("makespan = %v, want 6", out.makespan)
	}
	if out.maxQueueDepth != 1 {
		t.Errorf("maxQueueDepth = %d, want 1 (feedback serializes the messages)", out.maxQueueDepth)
	}
	// A path-less head message must still unlock its successor, at its
	// own injection instant.
	msgs = []replayMsg{
		{path: nil, delivered: false},
		{path: []metric.Point{2}, delivered: true},
	}
	out = replay(4, msgs, 1, []Injection{{Msg: 0, Time: 7}}, completed, -1)
	if out.injected != 2 || out.lastInject != 10 || out.services != 1 {
		t.Errorf("path-less chain: injected=%d last=%v services=%d, want 2/10/1",
			out.injected, out.lastInject, out.services)
	}
}
