// Package engine is the discrete-event core of the traffic subsystem:
// one virtual-time event loop in which routing, queueing, replication,
// and caching share a clock. It folds the pipeline's historical
// route-then-replay split — compute every path against a frozen
// congestion snapshot, then replay hops through FIFO queues — into a
// single simulation, so forwarding decisions can read *live* state.
//
// # The event loop
//
// There is one event type: "message m reaches its idx-th visited node
// at time t". Events are processed in the strict total order
// (time, msg, idx); each event parks the message in the node's FIFO,
// serves it for 1/Capacity ticks once the server frees up, and decides
// what happens at the service:
//
//	          ┌────────────────────────────────────────────────┐
//	          │                 event heap                      │
//	          │        pop min (time, msg, idx)                 │
//	          └───────────────┬────────────────────────────────┘
//	                          ▼
//	          node FIFO: wait ≤ busyUntil, serve 1/Capacity
//	                          │ charge load, update depth
//	                          ▼
//	    snapshot mode                     live mode
//	next := path[idx+1]          next := Walker.Step()   ← reads live
//	(path precomputed per        (decision made now:       load, depth,
//	 congestion batch)            Penalty/DepthPenalty     replicas
//	                              over live queues)
//	                          │
//	          ┌───────────────┴───────────────┐
//	          ▼                               ▼
//	 push (finish, msg, idx+1)        message completes:
//	                                  latency, cache Observe,
//	                                  closed-loop injection
//
// # Snapshot mode (Config.Live = false)
//
// Messages route in batches of Config.BatchSize against a congestion
// signal frozen at the batch boundary, exactly as the pre-engine
// pipeline did — byte-for-byte: the per-message rng streams, the
// batch cadence, the queue mechanics and the tie-breaking all match,
// so the seeded goldens pinned before the engine existed still pass,
// for any worker count. What changed is the cost of the
// instantaneous-depth probe (Config.DepthPenalty): the engine advances
// its own loop to the batch's first injection and reads each node's
// depth off the live queue in O(1) amortized, where the old pipeline
// re-replayed the whole routed prefix every batch — O(n²/batch) heap
// work. (Closed-loop schedules, whose later injections are not yet
// known at the boundary, still replay the prefix in a scratch loop to
// keep the historical estimate bit-exact.)
//
// # Live mode (Config.Live = true)
//
// Every forwarding decision happens at the service that forwards the
// message, through the resumable route.Walker: the congestion penalty
// reads the load charged so far, the depth penalty reads the
// candidate's queue depth at the decision instant, and replica targets
// and cache-on-path placements are consulted per injection and per
// delivery instead of per batch. This is the paper's online model —
// each node forwards on what it can observe locally at forwarding time
// — extended to congestion state.
//
// With Config.Aggregate on, same-key lookups that meet in a node's
// queue coalesce: a lookup arriving while another lookup for the same
// key is queued or in service there rides along — it occupies no
// queue anywhere downstream and completes the instant its carrier
// completes. Under a hot-key flood this collapses the duplicate
// service load on the victim's in-neighbourhood, which is what moves
// the flood knee past what replication alone buys.
//
// The Mode enum names the four mode combinations (ModeSnapshot,
// ModeLive, ModeLiveAggregate, ModeLivePIT); Config.Mode() resolves
// the boolean knobs to one, and Config.Plan reports — ahead of Run —
// which loop a configuration will take and the pinned reason string.
//
// # Response path (Config.PIT)
//
// With Config.PIT on (live mode's third variant), a delivered lookup
// is not the end of the story: the answer travels back. Every request
// service plants a pending interest for the message's key at the
// serving node, and the lifecycle of a lookup becomes:
//
//	      request leg                       answer leg
//	inject ─► hop ─► hop ─► deliver ─► answer retraces the visited
//	    │serve: plant interest │       path in reverse, hop by hop,
//	    │at each node, FIFO as │       through the same per-node
//	    │usual                 │       FIFOs; latency is measured to
//	    │                      │       answer receipt at the origin
//	    ▼                      ▼
//	a later same-key lookup    each answer service consumes the
//	reaching any node with a   node's interest entry and multicasts
//	pending interest parks     to its waiters: a released waiter
//	there (network-wide        forks its own answer leg from the
//	suppression): it occupies  release point back down its own
//	no queue and spawns no     partial path to its origin
//	events while parked
//
// Each interest entry is bounded: at most Config.PITWaiters lookups
// park on it (later arrivals forward normally), and a parked lookup
// waits at most Config.PITTimeout virtual ticks — an interest timeout
// (a heap event with negative idx; see pit.go) re-forwards the waiter
// from where it parked, and a lookup whose wait has expired once is
// never suppressed again, so the protocol adds at most one interest
// lifetime to any lookup's latency. The suppression ledger balances
// exactly: Suppressed = MulticastFanout + PITExpired. Under a hot-key
// flood, suppression collapses duplicate work network-wide — not just
// per queue as aggregation does — at the price of charging every
// delivery its answer's return trip.
//
// # Sharded live mode (Config.Shards > 1)
//
// The live loop partitions across cores as a conservative
// parallel discrete-event simulation: nodes split into Shards
// contiguous regions of the metric space (shardOf), each shard owns a
// private event heap, and shards advance together through virtual-time
// windows bounded by the safe horizon W + 1/Capacity — the service
// time is the lookahead, since any event at t ≥ W spawns its successor
// no earlier than t + 1/Capacity:
//
//	        W = min over shards (and pending injections)
//	                       │
//	                       ▼
//	  admit: injections with time < W + 1/Capacity,
//	         sequentially in (time, msg) order
//	                       │
//	                       ▼
//	┌─ shard 0 ─┐   ┌─ shard 1 ─┐   ┌─ shard k ─┐
//	│ drain own │   │ drain own │…  │ drain own │   (parallel:
//	│ heap to   │   │ heap to   │   │ heap to   │    own nodes'
//	│ horizon   │   │ horizon   │   │ horizon   │    queues only)
//	└─────┬─────┘   └─────┬─────┘   └─────┬─────┘
//	      │   outboxes: cross-shard hops  │
//	      │   done-records: completions   │
//	      └───────────────┬───────────────┘
//	                       ▼
//	  barrier: merge outboxes and replay completions
//	           in (time, msg, idx) order; fold tallies
//	                       │
//	                       ▼  next window
//
// Cross-shard forwards buffer in per-destination outboxes and are
// pushed at the barrier; completions, latencies, and aggregation
// settlements are recorded during the parallel drain and replayed
// sequentially in the global event order, so every observable byte —
// loads, latencies in completion order, aggregation bookkeeping, error
// choice — matches the sequential loop exactly. Configurations whose
// forwarding decisions read global mutable signals (congestion
// penalties, depth probes, cache churn, closed-loop aggregation) fall
// back to the sequential loop; see Config.Shards.
//
// Churn rides the same window machinery by becoming part of the
// barrier: the churn schedule is materialized before the run, so each
// window's horizon is clipped at the next churn-op instant and the
// membership mutation applies between drains, where one goroutine owns
// everything:
//
//	  churn ops due at the window start W apply sequentially
//	  (crash/join, link redraws, rumor rounds, strand resumes)
//	                       │
//	                       ▼
//	  horizon = min(W + 1/Capacity, next churn-op instant)
//	                       │
//	                       ▼
//	┌─ shard 0 ─┐   ┌─ shard 1 ─┐   ┌─ shard k ─┐   graph and
//	│ drain to  │   │ drain to  │…  │ drain to  │   membership
//	│ horizon   │   │ horizon   │   │ horizon   │   frozen
//	└─────┬─────┘   └─────┬─────┘   └─────┬─────┘
//	      │  arrivals at dead nodes defer │
//	      │  as strand records            │
//	      └───────────────┬───────────────┘
//	                       ▼
//	  barrier: replay completions and strand parks in
//	           (time, msg, idx) order — op seq numbers
//	           assigned exactly as the sequential loop's
//	                       │
//	                       ▼  next window
//
// Gossip sends and rumor-round events route to the owning shard's
// heap, and a strand's probe-timeout resume lands at or beyond the
// horizon because eligibility requires ProbeTimeout ≥ 1/Capacity
// (Config.Plan; faster probes fall back with PlanReasonChurn).
//
// # Node dynamics (Config.Churn)
//
// With Config.Churn enabled (live mode only), nodes crash and join
// *during* the run: a failure.ChurnSpec expands into a timestamped
// schedule whose events share the virtual clock with the traffic. The
// churn op queue — schedule events, probe-timeout detections, gossip
// rounds, stranded-message resumptions — drains interleaved with the
// event heap, churn ops first at equal instants, so a message arriving
// at t sees the world as of t. A crash is die-after-commit: the
// service the node already committed to completes, every later arrival
// strands, waits one ProbeTimeout, and re-forwards from the dead node.
// Repair is gossip membership, not an oracle: neighbours detect the
// event when their probes go unanswered, rumors push to GossipFanout
// random alive peers every GossipInterval (each transmission one FIFO
// service at the sender, so dissemination competes with traffic), and
// a node redraws its long links into a dead node only once it has
// *learned* of the crash. A join revives the node, redraws its §5
// long-range links, and bootstraps its view from alive neighbours.
// Churn runs shard like any other live run — mutations apply at
// window barriers, windows clip at churn-op instants (see the diagram
// above) — as long as ProbeTimeout covers the one-service-time
// lookahead; see churn.go for the full mechanics and internal/failure
// for the schedule model.
//
// Determinism: both modes are pure functions of (graph, messages,
// schedule, config, root source). Snapshot mode parallelizes path
// computation but keys every message to its own derived rng stream;
// the live loop runs sequentially at Shards = 1 and partitioned as
// above at higher counts. Either way, results are byte-identical for
// every Config.Workers and Config.Shards value.
//
// Observability: a telemetry.Recorder (Config.Telemetry) hooks the
// loops at their sequential choke points — injection admission,
// completion/merge bookkeeping, and cache-churn polling all run from
// sequential code in every mode — plus the per-event service and hop
// records, which the sharded loop routes through per-shard
// telemetry.View values (one writer each, folded at EndRun) and the
// barrier profiles with wall-clock drain/wait splits. The recorder
// never feeds back into routing, consumes no simulation randomness,
// and keys its window timeseries to virtual time, so outcomes and the
// virtual-time telemetry stream are byte-identical at every shard
// count; only the wall-clock scheduler profile varies. A nil recorder
// reduces every hook site to one predictable branch — the hot-path
// alloc tests pin that disabled cost at zero.
package engine
