package engine

import (
	"repro/internal/mathx"
	"repro/internal/route"
)

// This file is the sequential half of the sharded live loop (shard.go
// has the model overview and the parallel half): the window
// coordinator and the admission pass that turns pending injections
// into walkers and first-arrival events. The eligibility gate is
// Config.Plan (mode.go): Run dispatches here only when the plan
// resolved to PlanLiveSharded.

// injectionLess orders pending injections by (time, msg) — the order
// the sequential loop pops their idx-0 events in, since no message is
// injected twice.
func injectionLess(a, b Injection) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Msg < b.Msg
}

// runSharded drives the partitioned live loop: pick the earliest
// pending instant, admit every injection below that window's horizon,
// drain all shards in parallel below it, then barrier. The horizon is
// one service time past the window start — the engine's lookahead:
// every successor of a processed event finishes at least one service
// time later, so nothing processed this window can add same-window
// work anywhere, and every injection a completion unlocks belongs to
// a later window too (completion times are successor finish times).
//
// With churn attached the membership layer becomes a window barrier:
// churn ops due at or before the window start apply here, sequentially,
// before any admission or drain (ops win ties, so an event at w sees
// the world as of w — the same tie rule the sequential drain pins), and
// the horizon is clipped at the next pending op instant, so the graph
// and membership state are immutable while the shards drain. The one
// op kind born during a drain — a strand's probe-timeout resumption —
// is deferred as a doneRec and replayed at the barrier in global event
// order, and lands at t + ProbeTimeout ≥ horizon by the eligibility
// gate (Config.Plan requires ProbeTimeout ≥ the lookahead), so it
// never belongs to the window that created it.
func (r *runner) runSharded() {
	cfg := r.cfg
	ropt := cfg.Route
	ropt.TracePath = true
	r.router = route.New(r.g, ropt)
	r.pend = mathx.NewHeap(injectionLess, len(r.sched.Initial))
	for _, inj := range r.sched.Initial {
		r.pend.Push(inj)
	}
	s := newShardSet(r)
	r.sharded = s
	for r.err == nil {
		w, ok := s.nextTime(r)
		if !ok {
			return
		}
		if r.churn != nil {
			// Barrier-time membership mutation: crashes, joins, link
			// redraws, rumor rounds, and strand resumptions due at or
			// before the window start run now, on one goroutine, against
			// quiescent shard heaps. Events they push route to the owning
			// shard (runner.pushEvent) and carry time ≥ w.
			for r.churn.ops.Len() > 0 && r.churn.ops.Peek().time <= w {
				r.churnOp(r.churn.ops.Pop())
				if r.err != nil {
					return
				}
			}
		}
		horizon := w + r.serviceTime
		if r.churn != nil && r.churn.ops.Len() > 0 && r.churn.ops.Peek().time < horizon {
			// Clip the window at the next churn-op instant: nothing may
			// mutate membership while the shards drain, and the op applies
			// at the next window's start under the ops-first tie rule.
			horizon = r.churn.ops.Peek().time
		}
		if r.admitWindow(s, horizon); r.err != nil {
			return
		}
		s.drainWindow(r, horizon)
		s.barrier(r)
	}
}

// admitWindow processes pending injections below the horizon in
// (time, msg) order: the walker is created here — sequentially, so
// placement lookups and the per-message rng streams behave exactly as
// in the sequential loop — and the first-arrival event goes to the
// origin's shard. Born-delivered lookups complete on the spot; their
// closed-loop successors can land back under the horizon (a think
// time of zero re-injects at the same instant), so the loop keeps
// consuming the pending heap until it clears the window.
//
// Creating walkers at admission rather than at the event pop is the
// one scheduling difference from the sequential loop, and it is
// unobservable: for a shardable configuration walker creation is a
// pure function of the graph, the placement, and the message (no
// congestion signal, no cache churn), consumes no rng, and touches no
// queue state. That argument survives churn because membership only
// mutates between windows — every churn op at or below the window
// start has applied before admission, and none is pending below the
// horizon — so the graph an admitted walker reads is exactly the graph
// the sequential loop's pop would have read.
func (r *runner) admitWindow(s *shardSet, horizon float64) {
	for r.pend.Len() > 0 && r.pend.Peek().Time < horizon {
		inj := r.pend.Pop()
		msg := inj.Msg
		r.inject[msg] = inj.Time
		r.out.Injected++
		if inj.Time > r.out.LastInject {
			r.out.LastInject = inj.Time
		}
		if r.tel != nil {
			r.tel.Inject(msg, inj.Time, r.msgs[msg].From, r.msgs[msg].Key)
		}
		r.injected++
		from := r.msgs[msg].From
		if r.churn != nil && !r.g.Alive(from) {
			// The source died before this lookup was injected: the client
			// behind the dead portal enters at the nearest alive node.
			// Membership is frozen for the whole window, so resolving this
			// at admission matches the sequential loop's pop-time answer.
			p, ok := r.reattachOrigin(from)
			if !ok {
				r.err = errExtinct
				return
			}
			from = p
		}
		w, err := r.router.Walker(r.root.Derive(16+uint64(msg)), from, r.targetsFor(msg))
		if err != nil {
			if r.churn != nil {
				// Born unroutable — every replica of its key dead at this
				// instant. A failed search, not a configuration error.
				r.bornFailed(msg, inj.Time)
				continue
			}
			r.err = err
			return
		}
		r.walkers[msg] = w
		if w.Done() {
			// Born delivered: completes at its injection instant without
			// entering a queue; the successor it unlocks joins r.pend.
			r.completeBorn(msg, inj.Time)
			continue
		}
		r.pos[msg] = w.At()
		s.owner(w.At()).h.Push(event{time: inj.Time, msg: msg, idx: 0})
	}
}
