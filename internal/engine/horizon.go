package engine

import (
	"repro/internal/mathx"
	"repro/internal/route"
)

// This file is the sequential half of the sharded live loop (shard.go
// has the model overview and the parallel half): the window
// coordinator and the admission pass that turns pending injections
// into walkers and first-arrival events. The eligibility gate is
// Config.Plan (mode.go): Run dispatches here only when the plan
// resolved to PlanLiveSharded.

// injectionLess orders pending injections by (time, msg) — the order
// the sequential loop pops their idx-0 events in, since no message is
// injected twice.
func injectionLess(a, b Injection) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Msg < b.Msg
}

// runSharded drives the partitioned live loop: pick the earliest
// pending instant, admit every injection below that window's horizon,
// drain all shards in parallel below it, then barrier. The horizon is
// one service time past the window start — the engine's lookahead:
// every successor of a processed event finishes at least one service
// time later, so nothing processed this window can add same-window
// work anywhere, and every injection a completion unlocks belongs to
// a later window too (completion times are successor finish times).
func (r *runner) runSharded() {
	cfg := r.cfg
	ropt := cfg.Route
	ropt.TracePath = true
	r.router = route.New(r.g, ropt)
	r.pend = mathx.NewHeap(injectionLess, len(r.sched.Initial))
	for _, inj := range r.sched.Initial {
		r.pend.Push(inj)
	}
	s := newShardSet(r)
	for r.err == nil {
		w, ok := s.nextTime(r)
		if !ok {
			return
		}
		horizon := w + r.serviceTime
		if r.admitWindow(s, horizon); r.err != nil {
			return
		}
		s.drainWindow(r, horizon)
		s.barrier(r)
	}
}

// admitWindow processes pending injections below the horizon in
// (time, msg) order: the walker is created here — sequentially, so
// placement lookups and the per-message rng streams behave exactly as
// in the sequential loop — and the first-arrival event goes to the
// origin's shard. Born-delivered lookups complete on the spot; their
// closed-loop successors can land back under the horizon (a think
// time of zero re-injects at the same instant), so the loop keeps
// consuming the pending heap until it clears the window.
//
// Creating walkers at admission rather than at the event pop is the
// one scheduling difference from the sequential loop, and it is
// unobservable: for a shardable configuration walker creation is a
// pure function of the graph, the placement, and the message (no
// congestion signal, no cache churn), consumes no rng, and touches no
// queue state.
func (r *runner) admitWindow(s *shardSet, horizon float64) {
	for r.pend.Len() > 0 && r.pend.Peek().Time < horizon {
		inj := r.pend.Pop()
		msg := inj.Msg
		r.inject[msg] = inj.Time
		r.out.Injected++
		if inj.Time > r.out.LastInject {
			r.out.LastInject = inj.Time
		}
		if r.tel != nil {
			r.tel.Inject(msg, inj.Time, r.msgs[msg].From, r.msgs[msg].Key)
		}
		r.injected++
		w, err := r.router.Walker(r.root.Derive(16+uint64(msg)), r.msgs[msg].From, r.targetsFor(msg))
		if err != nil {
			r.err = err
			return
		}
		r.walkers[msg] = w
		if w.Done() {
			// Born delivered: completes at its injection instant without
			// entering a queue; the successor it unlocks joins r.pend.
			r.completeBorn(msg, inj.Time)
			continue
		}
		r.pos[msg] = w.At()
		s.owner(w.At()).h.Push(event{time: inj.Time, msg: msg, idx: 0})
	}
}
